// Package entity implements the object model behind §5's language
// operators: entities (tuples with identity) that carry scalar fields,
// set-valued fields (unnested by the * operator) and entity-valued
// reference fields (followed by the --> operator).
//
// Following §5.2, the store exports relational views with object
// identifiers as ordinary columns, so that the special predicates become
// plain OID equalities:
//
//	NestedIn(@r, @value)  ≡  r.@oid   = value.@owner
//	LinkedTo(@r, @value)  ≡  r.field@ = value.@oid
//
// Both are equality comparisons, hence strong — one half of §5.3's
// argument that every query block is freely reorderable.
package entity

import (
	"fmt"
	"sort"

	"freejoin/internal/relation"
)

// OID is an object identifier (the paper's @-prefixed identifier, "e.g. a
// physical address on disk"). Zero is the null reference.
type OID int64

// OIDColumn is the column name under which an entity's identifier is
// exposed in relational views.
const OIDColumn = "@oid"

// OwnerColumn is the column in an unnested-value view naming the owning
// entity.
const OwnerColumn = "@owner"

// RefColumn returns the view column name of an entity-valued field (the
// stored OID of the referenced entity).
func RefColumn(field string) string { return field + "@" }

// TypeDef declares an entity type.
type TypeDef struct {
	Name    string
	Scalars []string          // scalar field names, in view column order
	Sets    []string          // set-valued field names
	Refs    map[string]string // entity-valued field -> target type name
}

// Entity is one stored object.
type Entity struct {
	ID      OID
	Type    string
	Scalars map[string]relation.Value
	Sets    map[string][]relation.Value
	Refs    map[string]OID
}

// Store is an in-memory entity database.
type Store struct {
	types    map[string]TypeDef
	entities map[string][]*Entity // by type, in creation order
	byOID    map[OID]*Entity
	nextOID  OID
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		types:    map[string]TypeDef{},
		entities: map[string][]*Entity{},
		byOID:    map[OID]*Entity{},
		nextOID:  1,
	}
}

// Define registers an entity type. Referenced target types may be defined
// later; they are checked at insertion time.
func (s *Store) Define(def TypeDef) error {
	if def.Name == "" {
		return fmt.Errorf("entity: type needs a name")
	}
	if _, dup := s.types[def.Name]; dup {
		return fmt.Errorf("entity: type %s already defined", def.Name)
	}
	seen := map[string]bool{}
	for _, f := range def.Scalars {
		if seen[f] {
			return fmt.Errorf("entity: duplicate field %s in type %s", f, def.Name)
		}
		seen[f] = true
	}
	for _, f := range def.Sets {
		if seen[f] {
			return fmt.Errorf("entity: duplicate field %s in type %s", f, def.Name)
		}
		seen[f] = true
	}
	for f := range def.Refs {
		if seen[f] {
			return fmt.Errorf("entity: duplicate field %s in type %s", f, def.Name)
		}
		seen[f] = true
	}
	s.types[def.Name] = def
	return nil
}

// Type returns a type definition.
func (s *Store) Type(name string) (TypeDef, error) {
	d, ok := s.types[name]
	if !ok {
		return TypeDef{}, fmt.Errorf("entity: unknown type %s", name)
	}
	return d, nil
}

// Types lists defined type names, sorted.
func (s *Store) Types() []string {
	out := make([]string, 0, len(s.types))
	for n := range s.types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasSetField reports whether the type has a set-valued field.
func (s *Store) HasSetField(typeName, field string) bool {
	d, ok := s.types[typeName]
	if !ok {
		return false
	}
	for _, f := range d.Sets {
		if f == field {
			return true
		}
	}
	return false
}

// RefTarget returns the target type of an entity-valued field.
func (s *Store) RefTarget(typeName, field string) (string, bool) {
	d, ok := s.types[typeName]
	if !ok {
		return "", false
	}
	t, ok := d.Refs[field]
	return t, ok
}

// New creates an entity with the given scalar values, returning its OID.
// Missing scalars are null; unknown fields are an error.
func (s *Store) New(typeName string, scalars map[string]relation.Value) (OID, error) {
	def, err := s.Type(typeName)
	if err != nil {
		return 0, err
	}
	known := map[string]bool{}
	for _, f := range def.Scalars {
		known[f] = true
	}
	for f := range scalars {
		if !known[f] {
			return 0, fmt.Errorf("entity: type %s has no scalar field %s", typeName, f)
		}
	}
	e := &Entity{
		ID:      s.nextOID,
		Type:    typeName,
		Scalars: map[string]relation.Value{},
		Sets:    map[string][]relation.Value{},
		Refs:    map[string]OID{},
	}
	for f, v := range scalars {
		e.Scalars[f] = v
	}
	s.nextOID++
	s.entities[typeName] = append(s.entities[typeName], e)
	s.byOID[e.ID] = e
	return e.ID, nil
}

// Get returns an entity by OID.
func (s *Store) Get(oid OID) (*Entity, error) {
	e, ok := s.byOID[oid]
	if !ok {
		return nil, fmt.Errorf("entity: unknown oid %d", oid)
	}
	return e, nil
}

// AddToSet appends a value to a set-valued field.
func (s *Store) AddToSet(oid OID, field string, v relation.Value) error {
	e, err := s.Get(oid)
	if err != nil {
		return err
	}
	if !s.HasSetField(e.Type, field) {
		return fmt.Errorf("entity: type %s has no set field %s", e.Type, field)
	}
	e.Sets[field] = append(e.Sets[field], v)
	return nil
}

// SetRef points an entity-valued field at a target entity (0 clears it).
// The target's type must match the field declaration.
func (s *Store) SetRef(oid OID, field string, target OID) error {
	e, err := s.Get(oid)
	if err != nil {
		return err
	}
	want, ok := s.RefTarget(e.Type, field)
	if !ok {
		return fmt.Errorf("entity: type %s has no reference field %s", e.Type, field)
	}
	if target != 0 {
		te, err := s.Get(target)
		if err != nil {
			return err
		}
		if te.Type != want {
			return fmt.Errorf("entity: field %s.%s expects %s, got %s", e.Type, field, want, te.Type)
		}
	}
	e.Refs[field] = target
	return nil
}

// BaseRelation materializes the relational view of a type under tuple
// variable varName: columns varName.@oid, the scalar fields, and one
// OID-valued column per reference field.
func (s *Store) BaseRelation(typeName, varName string) (*relation.Relation, error) {
	def, err := s.Type(typeName)
	if err != nil {
		return nil, err
	}
	cols := []string{OIDColumn}
	cols = append(cols, def.Scalars...)
	refFields := make([]string, 0, len(def.Refs))
	for f := range def.Refs {
		refFields = append(refFields, f)
	}
	sort.Strings(refFields)
	for _, f := range refFields {
		cols = append(cols, RefColumn(f))
	}
	out := relation.New(relation.SchemeOf(varName, cols...))
	for _, e := range s.entities[typeName] {
		row := make([]relation.Value, 0, len(cols))
		row = append(row, relation.Int(int64(e.ID)))
		for _, f := range def.Scalars {
			row = append(row, e.Scalars[f]) // zero Value is null
		}
		for _, f := range refFields {
			if t := e.Refs[f]; t != 0 {
				row = append(row, relation.Int(int64(t)))
			} else {
				row = append(row, relation.Null())
			}
		}
		out.AppendRaw(row)
	}
	return out, nil
}

// NestedRelation materializes the paper's ValueOfField view for a
// set-valued field under tuple variable varName: one row per element,
// with columns varName.@owner (the owning entity) and varName.<field>.
// Entities with empty sets contribute no rows — the unnesting outerjoin
// supplies their null row.
func (s *Store) NestedRelation(typeName, field, varName string) (*relation.Relation, error) {
	if _, err := s.Type(typeName); err != nil {
		return nil, err
	}
	if !s.HasSetField(typeName, field) {
		return nil, fmt.Errorf("entity: type %s has no set field %s", typeName, field)
	}
	out := relation.New(relation.SchemeOf(varName, OwnerColumn, field))
	for _, e := range s.entities[typeName] {
		for _, v := range e.Sets[field] {
			out.AppendRaw([]relation.Value{relation.Int(int64(e.ID)), v})
		}
	}
	return out, nil
}

// Count returns the number of entities of a type.
func (s *Store) Count(typeName string) int { return len(s.entities[typeName]) }
