package entity

import (
	"testing"

	"freejoin/internal/relation"
)

// sampleStore builds the paper's §5 schema: EMPLOYEE with set-valued
// ChildName, DEPARTMENT with EMPLOYEE-valued Manager and REPORT-valued
// Audit.
func sampleStore(t *testing.T) (*Store, OID, OID, OID, OID) {
	t.Helper()
	s := NewStore()
	for _, def := range []TypeDef{
		{Name: "EMPLOYEE", Scalars: []string{"Name", "D#", "Rank"}, Sets: []string{"ChildName"}},
		{Name: "REPORT", Scalars: []string{"Title"}},
		{Name: "DEPARTMENT", Scalars: []string{"D#", "Location"},
			Refs: map[string]string{"Manager": "EMPLOYEE", "Audit": "REPORT"}},
	} {
		if err := s.Define(def); err != nil {
			t.Fatal(err)
		}
	}
	emp, err := s.New("EMPLOYEE", map[string]relation.Value{
		"Name": relation.Str("ana"), "D#": relation.Int(1), "Rank": relation.Int(11)})
	if err != nil {
		t.Fatal(err)
	}
	emp2, err := s.New("EMPLOYEE", map[string]relation.Value{
		"Name": relation.Str("bo"), "D#": relation.Int(2), "Rank": relation.Int(3)})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.New("REPORT", map[string]relation.Value{"Title": relation.Str("audit-1")})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := s.New("DEPARTMENT", map[string]relation.Value{
		"D#": relation.Int(1), "Location": relation.Str("Zurich")})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddToSet(emp, "ChildName", relation.Str("kim")); err != nil {
		t.Fatal(err)
	}
	if err := s.AddToSet(emp, "ChildName", relation.Str("lee")); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef(dep, "Manager", emp); err != nil {
		t.Fatal(err)
	}
	if err := s.SetRef(dep, "Audit", rep); err != nil {
		t.Fatal(err)
	}
	return s, emp, emp2, rep, dep
}

func TestDefineValidation(t *testing.T) {
	s := NewStore()
	if err := s.Define(TypeDef{}); err == nil {
		t.Error("nameless type must fail")
	}
	if err := s.Define(TypeDef{Name: "T", Scalars: []string{"a", "a"}}); err == nil {
		t.Error("duplicate scalar must fail")
	}
	if err := s.Define(TypeDef{Name: "T", Scalars: []string{"a"}, Sets: []string{"a"}}); err == nil {
		t.Error("scalar/set clash must fail")
	}
	if err := s.Define(TypeDef{Name: "T", Scalars: []string{"a"}, Refs: map[string]string{"a": "T"}}); err == nil {
		t.Error("scalar/ref clash must fail")
	}
	if err := s.Define(TypeDef{Name: "T", Scalars: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Define(TypeDef{Name: "T"}); err == nil {
		t.Error("redefinition must fail")
	}
	if _, err := s.Type("NOPE"); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestNewAndGet(t *testing.T) {
	s, emp, _, _, _ := sampleStore(t)
	e, err := s.Get(emp)
	if err != nil || e.Type != "EMPLOYEE" {
		t.Fatalf("Get = %v, %v", e, err)
	}
	if _, err := s.Get(999); err == nil {
		t.Error("unknown oid must fail")
	}
	if _, err := s.New("NOPE", nil); err == nil {
		t.Error("unknown type must fail")
	}
	if _, err := s.New("EMPLOYEE", map[string]relation.Value{"Bogus": relation.Int(1)}); err == nil {
		t.Error("unknown scalar field must fail")
	}
	if s.Count("EMPLOYEE") != 2 || s.Count("NOPE") != 0 {
		t.Error("Count broken")
	}
	types := s.Types()
	if len(types) != 3 || types[0] != "DEPARTMENT" {
		t.Errorf("Types = %v", types)
	}
}

func TestSetAndRefValidation(t *testing.T) {
	s, emp, _, rep, dep := sampleStore(t)
	if err := s.AddToSet(emp, "Nope", relation.Int(1)); err == nil {
		t.Error("unknown set field must fail")
	}
	if err := s.AddToSet(999, "ChildName", relation.Int(1)); err == nil {
		t.Error("unknown oid must fail")
	}
	if err := s.SetRef(dep, "Nope", emp); err == nil {
		t.Error("unknown ref field must fail")
	}
	if err := s.SetRef(dep, "Manager", rep); err == nil {
		t.Error("type-mismatched ref must fail")
	}
	if err := s.SetRef(dep, "Manager", 999); err == nil {
		t.Error("dangling ref must fail")
	}
	if err := s.SetRef(999, "Manager", emp); err == nil {
		t.Error("unknown source oid must fail")
	}
	if err := s.SetRef(dep, "Audit", 0); err != nil {
		t.Error("clearing a ref is legal")
	}
}

func TestFieldLookups(t *testing.T) {
	s, _, _, _, _ := sampleStore(t)
	if !s.HasSetField("EMPLOYEE", "ChildName") || s.HasSetField("EMPLOYEE", "Name") {
		t.Error("HasSetField broken")
	}
	if s.HasSetField("NOPE", "x") {
		t.Error("unknown type has no fields")
	}
	if tgt, ok := s.RefTarget("DEPARTMENT", "Manager"); !ok || tgt != "EMPLOYEE" {
		t.Error("RefTarget broken")
	}
	if _, ok := s.RefTarget("DEPARTMENT", "D#"); ok {
		t.Error("scalar is not a ref")
	}
	if _, ok := s.RefTarget("NOPE", "x"); ok {
		t.Error("unknown type has no refs")
	}
}

func TestBaseRelation(t *testing.T) {
	s, emp, _, rep, dep := sampleStore(t)
	r, err := s.BaseRelation("DEPARTMENT", "D")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("rows = %d", r.Len())
	}
	row := r.Row(0)
	if row.MustGet(relation.A("D", OIDColumn)) != relation.Int(int64(dep)) {
		t.Error("@oid column broken")
	}
	if row.MustGet(relation.A("D", "Location")) != relation.Str("Zurich") {
		t.Error("scalar column broken")
	}
	if row.MustGet(relation.A("D", RefColumn("Manager"))) != relation.Int(int64(emp)) {
		t.Error("ref column broken")
	}
	if row.MustGet(relation.A("D", RefColumn("Audit"))) != relation.Int(int64(rep)) {
		t.Error("second ref column broken")
	}
	if _, err := s.BaseRelation("NOPE", "X"); err == nil {
		t.Error("unknown type must fail")
	}
	// Cleared ref renders null.
	if err := s.SetRef(dep, "Audit", 0); err != nil {
		t.Fatal(err)
	}
	r2, _ := s.BaseRelation("DEPARTMENT", "D")
	if !r2.Row(0).MustGet(relation.A("D", RefColumn("Audit"))).IsNull() {
		t.Error("cleared ref must be null")
	}
}

func TestNestedRelation(t *testing.T) {
	s, emp, _, _, _ := sampleStore(t)
	r, err := s.NestedRelation("EMPLOYEE", "ChildName", "CH")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("rows = %d:\n%v", r.Len(), r)
	}
	for i := 0; i < r.Len(); i++ {
		if r.Row(i).MustGet(relation.A("CH", OwnerColumn)) != relation.Int(int64(emp)) {
			t.Error("owner column broken")
		}
	}
	if _, err := s.NestedRelation("EMPLOYEE", "Name", "X"); err == nil {
		t.Error("scalar field must fail")
	}
	if _, err := s.NestedRelation("NOPE", "x", "X"); err == nil {
		t.Error("unknown type must fail")
	}
}

func TestRefColumnName(t *testing.T) {
	if RefColumn("Manager") != "Manager@" {
		t.Errorf("RefColumn = %q", RefColumn("Manager"))
	}
}
