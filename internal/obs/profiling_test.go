package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The runtime sampler fills the oj_go_* gauges with live values, both on
// an explicit sample and via the registry's scrape hook, so a bare
// /metrics scrape always carries fresh runtime numbers.
func TestRuntimeMetricsSample(t *testing.T) {
	SampleRuntime()
	if v := GoGoroutines.Value(); v <= 0 {
		t.Errorf("oj_go_goroutines = %d, want > 0", v)
	}
	if v := GoHeapObjectBytes.Value(); v <= 0 {
		t.Errorf("oj_go_heap_objects_bytes = %d, want > 0", v)
	}
	if v := GoMemTotalBytes.Value(); v <= GoHeapObjectBytes.Value() {
		t.Errorf("oj_go_mem_total_bytes = %d, want > heap objects %d",
			v, GoHeapObjectBytes.Value())
	}

	// A plain scrape runs the OnScrape hook and renders the series.
	var b strings.Builder
	if err := Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"oj_go_goroutines", "oj_go_heap_objects_bytes", "oj_go_mem_total_bytes",
		"oj_go_gc_cycles", "oj_go_gc_pause_p50_seconds", "oj_go_gc_pause_p99_seconds",
		"oj_go_sched_latency_p50_seconds", "oj_go_sched_latency_p99_seconds",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// The background sampler stops cleanly: Close waits for the goroutine,
// repeated and nil Closes are no-ops.
func TestRuntimeMetricsSamplerLifecycle(t *testing.T) {
	s := StartRuntimeSampler(time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	s.Close()
	s.Close()
	var nilS *RuntimeSampler
	nilS.Close()
	if v := GoGoroutines.Value(); v <= 0 {
		t.Errorf("sampler never sampled: oj_go_goroutines = %d", v)
	}
}

// Exemplars ride only the opt-in OpenMetrics exposition: a histogram
// observed with ObserveExemplar annotates the landing bucket with the
// query ID, the plain Prometheus form stays untouched, and the latest
// observation per bucket wins.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "test latency", []float64{0.1, 1, 10})
	h.ObserveExemplar(0.05, 7)
	h.ObserveExemplar(0.5, 8)
	h.ObserveExemplar(0.06, 9) // replaces ID 7 in the first bucket
	h.ObserveExemplar(50, 10)  // +Inf bucket

	var plain, om strings.Builder
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteExemplars(&om); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "# {") {
		t.Errorf("plain exposition carries exemplars:\n%s", plain.String())
	}
	for _, want := range []string{`# {query_id="9"}`, `# {query_id="8"}`, `# {query_id="10"}`} {
		if !strings.Contains(om.String(), want) {
			t.Errorf("exemplar exposition missing %s:\n%s", want, om.String())
		}
	}
	if strings.Contains(om.String(), `query_id="7"`) {
		t.Errorf("stale exemplar survived a newer observation in its bucket:\n%s", om.String())
	}

	// Exemplars() is indexed like the buckets: 4 slots (3 bounds + +Inf),
	// of which the 0.1–1 and 1–10 split leaves one never-hit slot nil.
	got := h.Exemplars()
	if len(got) != 4 {
		t.Fatalf("Exemplars() = %d slots, want 4", len(got))
	}
	live := 0
	for _, e := range got {
		if e != nil {
			live++
		}
	}
	if live != 3 {
		t.Fatalf("Exemplars() holds %d live entries, want 3", live)
	}
}

// The file-backed slow-query log is bounded: when an entry would push
// the file past the cap it rotates to <path>.1, keeping at most two
// generations on disk, and keeps accepting entries afterwards.
func TestSlowLogRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "slow.jsonl")
	var s SlowLog
	s.SetThreshold(time.Nanosecond)
	const cap = 256
	if err := s.SetJSONFile(path, cap); err != nil {
		t.Fatal(err)
	}

	rec := &QueryRecord{Query: "R -[R.a = S.a] S", Duration: time.Second}
	for i := 0; i < 40; i++ {
		rec.ID = uint64(i)
		if !s.Observe(rec) {
			t.Fatal("record above threshold not observed")
		}
	}
	s.CloseJSONFile()

	st, err := os.Stat(path)
	if err != nil {
		t.Fatalf("live log missing after rotation: %v", err)
	}
	st1, err := os.Stat(path + ".1")
	if err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}
	if st.Size() > cap || st1.Size() > cap {
		t.Errorf("size cap not enforced: live %d, rotated %d, cap %d",
			st.Size(), st1.Size(), cap)
	}
	if files, _ := filepath.Glob(path + "*"); len(files) != 2 {
		t.Errorf("rotation left %d generations, want 2: %v", len(files), files)
	}

	// Every surviving line is intact JSON (rotation never splits a line).
	for _, p := range []string{path, path + ".1"} {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			var got QueryRecord
			if err := json.Unmarshal([]byte(line), &got); err != nil {
				t.Errorf("%s: corrupt line %q: %v", p, line, err)
			}
		}
	}

	// An empty path closes the file and disables file logging.
	if err := s.SetJSONFile("", 0); err != nil {
		t.Fatal(err)
	}
	s.Observe(rec) // must not panic or write
}

// fakeGov is a GovernorUsage for live-progress tests.
type fakeGov struct{ used, spill atomic.Int64 }

func (g *fakeGov) UsedBytes() int64      { return g.used.Load() }
func (g *fakeGov) UsedSpillBytes() int64 { return g.spill.Load() }

// The live-progress view is consistent under concurrency: while the
// query's goroutine advances phase and counters, concurrent Active()
// snapshots always see rows-so-far monotonically non-decreasing and the
// published identity fields.
func TestTracerActiveLiveProgress(t *testing.T) {
	tr := NewTracer()
	qt := tr.Start("R -[R.a = S.a] S")
	defer qt.Finish(nil)
	qt.SetLabels("dp", "fp123")
	qt.SetAdmissionWait(5 * time.Millisecond)

	var rows, tuples atomic.Int64
	gov := &fakeGov{}
	qt.AttachProgress(rows.Load, tuples.Load, gov)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the "query": advances progress and phases
		defer wg.Done()
		phases := []string{"parse", "optimize", "execute"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rows.Add(1)
			tuples.Add(3)
			gov.used.Store(int64(i) * 64)
			done := qt.Span(phases[i%len(phases)])
			done()
		}
	}()

	var last int64 = -1
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		live := tr.Active()
		if len(live) != 1 {
			t.Fatalf("Active() = %d queries, want 1", len(live))
		}
		lq := live[0]
		if lq.ID != qt.Rec.ID || lq.Query != qt.Rec.Query {
			t.Fatalf("identity mismatch: %+v", lq)
		}
		if lq.Strategy != "dp" || lq.Fingerprint != "fp123" {
			t.Fatalf("labels not visible: %+v", lq)
		}
		if lq.AdmissionWait != 5*time.Millisecond {
			t.Fatalf("admission wait = %v", lq.AdmissionWait)
		}
		if lq.Rows < last {
			t.Fatalf("rows-so-far went backwards: %d after %d", lq.Rows, last)
		}
		last = lq.Rows
		if lq.Tuples < lq.Rows*3-3 { // tuples advance with rows (±1 iteration)
			t.Fatalf("tuples %d lag rows %d", lq.Tuples, lq.Rows)
		}
	}
	close(stop)
	wg.Wait()
	if last <= 0 {
		t.Fatal("progress never advanced during the poll window")
	}

	// Finish removes the query from the live set.
	qt.Finish(nil)
	if live := tr.Active(); len(live) != 0 {
		t.Fatalf("finished query still live: %+v", live)
	}
}
