// Package obs is the process-wide observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms), a query tracer
// with Chrome-trace span export, a ring buffer of recent queries, a
// threshold-driven slow-query log, and an HTTP monitoring endpoint.
//
// Where PR 1's EXPLAIN ANALYZE and PR 2's governor events die with the
// query that produced them, obs aggregates across executions: every
// optimization records its strategy, every execution its rows and
// tuples, every governor trip its kind — scrapeable at /metrics in
// Prometheus text exposition format (hand-rolled, no dependencies).
//
// The package is a leaf: it imports only the standard library, so the
// engine layers (resource, storage, exec, optimizer) and the commands
// can all hook into it without cycles. All instruments are safe for
// concurrent use and allocation-free on the hot path (see
// BenchmarkCounterAdd / BenchmarkHistogramObserve).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// counterStripes is the number of cache-line-padded cells a Counter is
// striped across. Eight stripes keep ParallelHashJoin-scale fan-out from
// serializing on one cache line while costing only 512 bytes per counter.
const counterStripes = 8

// cell is one counter stripe, padded to a 64-byte cache line so
// neighboring stripes never false-share.
type cell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing instrument, striped so that
// concurrent writers (parallel join workers, multiple shell sessions)
// do not contend on a single cache line. Add charges stripe 0 — the
// right default for per-query hooks; genuinely hot concurrent paths
// spread themselves with AddAt, passing any stable per-worker hint
// (partition index, worker id). Reads sum the stripes.
type Counter struct {
	desc
	cells [counterStripes]cell
}

// Inc adds one.
func (c *Counter) Inc() { c.cells[0].n.Add(1) }

// Add adds n (stripe 0).
func (c *Counter) Add(n int64) { c.cells[0].n.Add(n) }

// AddAt adds n on the stripe selected by hint, for writers that already
// carry a worker identity. Any hint value is valid.
func (c *Counter) AddAt(hint uint32, n int64) {
	c.cells[hint%counterStripes].n.Add(n)
}

// Value returns the current total across all stripes.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.cells {
		t += c.cells[i].n.Load()
	}
	return t
}

// Gauge is an instrument that can go up and down (active queries,
// current budget usage).
type Gauge struct {
	desc
	n atomic.Int64
}

// FloatGauge is a gauge holding a float64 (quantiles, seconds) — the
// runtime sampler's GC-pause and scheduler-latency exports. Reads and
// writes are atomic on the value's bit pattern.
type FloatGauge struct {
	desc
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.n.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.n.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.n.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: Observe finds the first upper bound ≥ v and increments that
// bucket; exposition emits cumulative `_bucket{le="..."}` lines plus
// `_sum` and `_count`. Bounds are fixed at construction, observations
// are lock-free atomics, and Observe allocates nothing.
type Histogram struct {
	desc
	bounds []float64      // strictly increasing upper bounds
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
	// exemplars holds, per bucket, the most recent (value, query ID)
	// observed with ObserveExemplar — the link from a latency bucket back
	// to a concrete query in the recent-query ring. Lazily allocated slots
	// swapped atomically; plain Observe never touches them.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar ties one histogram observation to the query that produced
// it, OpenMetrics-style: the observed value, the query ID (look it up in
// /debug/queries), and when it was recorded.
type Exemplar struct {
	Value   float64   `json:"value"`
	QueryID uint64    `json:"query_id"`
	Time    time.Time `json:"time"`
}

// DefBuckets are latency buckets in seconds, 100µs to ~100s, suitable
// for the query-duration histogram.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 100,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := floatBits(bitsFloat(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one value and stamps the bucket it lands in
// with an exemplar naming the query that produced the observation, so a
// scrape with ?exemplars=1 (or the Exemplars accessor) can link latency
// buckets to concrete recent query IDs.
func (h *Histogram) ObserveExemplar(v float64, queryID uint64) {
	h.Observe(v)
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.exemplars[i].Store(&Exemplar{Value: v, QueryID: queryID, Time: time.Now()})
}

// Exemplars returns the per-bucket exemplars, indexed like the buckets
// (len(bounds)+1, last is +Inf); nil entries are buckets that never saw
// an exemplar observation.
func (h *Histogram) Exemplars() []*Exemplar {
	out := make([]*Exemplar, len(h.exemplars))
	for i := range h.exemplars {
		out[i] = h.exemplars[i].Load()
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return bitsFloat(h.sum.Load()) }

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// desc is the exposition identity of an instrument: metric name, help
// text, and a pre-rendered label set (`strategy="reordered"`).
type desc struct {
	name   string
	help   string
	labels string
}

// Name returns the metric name.
func (d *desc) Name() string { return d.name }

// metric is anything the registry can expose.
type metric interface {
	describe() *desc
	// write appends the sample line(s), name and labels included; when
	// exemplars is set, histograms annotate bucket lines OpenMetrics-style.
	write(b *strings.Builder, exemplars bool)
}

func (c *Counter) describe() *desc    { return &c.desc }
func (g *Gauge) describe() *desc      { return &g.desc }
func (g *FloatGauge) describe() *desc { return &g.desc }
func (h *Histogram) describe() *desc  { return &h.desc }

func (c *Counter) write(b *strings.Builder, _ bool) {
	sampleLine(b, c.name, c.labels, "", fmt.Sprintf("%d", c.Value()))
}

func (g *Gauge) write(b *strings.Builder, _ bool) {
	sampleLine(b, g.name, g.labels, "", fmt.Sprintf("%d", g.Value()))
}

func (g *FloatGauge) write(b *strings.Builder, _ bool) {
	sampleLine(b, g.name, g.labels, "", fmt.Sprintf("%g", g.Value()))
}

func (h *Histogram) write(b *strings.Builder, exemplars bool) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		sampleLine(b, h.name+"_bucket", h.labels, fmt.Sprintf(`le="%v"`, bound),
			fmt.Sprintf("%d", cum)+h.exemplarSuffix(i, exemplars))
	}
	cum += h.counts[len(h.bounds)].Load()
	sampleLine(b, h.name+"_bucket", h.labels, `le="+Inf"`,
		fmt.Sprintf("%d", cum)+h.exemplarSuffix(len(h.bounds), exemplars))
	sampleLine(b, h.name+"_sum", h.labels, "", fmt.Sprintf("%g", h.Sum()))
	sampleLine(b, h.name+"_count", h.labels, "", fmt.Sprintf("%d", h.count.Load()))
}

// exemplarSuffix renders the OpenMetrics exemplar annotation for bucket
// i (` # {query_id="17"} 0.0042 1700000000.123`), or "" when exemplars
// are off or the bucket has never seen one.
func (h *Histogram) exemplarSuffix(i int, enabled bool) string {
	if !enabled {
		return ""
	}
	e := h.exemplars[i].Load()
	if e == nil {
		return ""
	}
	return fmt.Sprintf(` # {query_id="%d"} %g %.3f`,
		e.QueryID, e.Value, float64(e.Time.UnixMilli())/1000)
}

// sampleLine writes `name{labels,extra} value\n`, omitting empty braces.
func sampleLine(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// typeOf returns the Prometheus TYPE keyword for a metric.
func typeOf(m metric) string {
	switch m.(type) {
	case *Counter:
		return "counter"
	case *Gauge, *FloatGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds a set of instruments and renders them in Prometheus
// text exposition format. Registration is cheap and infrequent (package
// init, test setup); reads and writes of the instruments themselves
// never touch the registry lock.
type Registry struct {
	mu       sync.Mutex
	metrics  []metric
	onScrape []func()
}

// OnScrape registers a hook run at the start of every WritePrometheus
// call, before instruments are read — the refresh point for pull-style
// sources like the runtime/metrics sampler, so a scrape always sees
// fresh values even without a background sampler running.
func (r *Registry) OnScrape(f func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onScrape = append(r.onScrape, f)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// register appends m; duplicate (name, labels) pairs are a programming
// error and panic at registration time, not scrape time.
func (r *Registry) register(m metric) {
	d := m.describe()
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, old := range r.metrics {
		od := old.describe()
		if od.name == d.name && od.labels == d.labels {
			panic(fmt.Sprintf("obs: duplicate metric %s{%s}", d.name, d.labels))
		}
	}
	r.metrics = append(r.metrics, m)
}

// NewCounter registers a counter. kv are alternating label keys and
// values ("strategy", "reordered").
func (r *Registry) NewCounter(name, help string, kv ...string) *Counter {
	c := &Counter{desc: desc{name: name, help: help, labels: renderLabels(kv)}}
	r.register(c)
	return c
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string, kv ...string) *Gauge {
	g := &Gauge{desc: desc{name: name, help: help, labels: renderLabels(kv)}}
	r.register(g)
	return g
}

// NewHistogram registers a histogram over the given strictly increasing
// upper bounds (a +Inf bucket is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64, kv ...string) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not increasing at %d", name, i))
		}
	}
	h := &Histogram{
		desc:      desc{name: name, help: help, labels: renderLabels(kv)},
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
	r.register(h)
	return h
}

// NewFloatGauge registers a float-valued gauge.
func (r *Registry) NewFloatGauge(name, help string, kv ...string) *FloatGauge {
	g := &FloatGauge{desc: desc{name: name, help: help, labels: renderLabels(kv)}}
	r.register(g)
	return g
}

// renderLabels renders alternating key/value pairs as `k="v",k2="v2"`.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s=%q`, kv[i], kv[i+1])
	}
	return b.String()
}

// WritePrometheus renders every registered instrument in text exposition
// format, grouped by metric name (one HELP/TYPE header per name, label
// variants as separate sample lines under it), names sorted for stable
// output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteExemplars is WritePrometheus with OpenMetrics exemplar
// annotations on histogram bucket lines — served at /metrics?exemplars=1
// so the default scrape stays strict Prometheus text format.
func (r *Registry) WriteExemplars(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, exemplars bool) error {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	hooks := append([]func(){}, r.onScrape...)
	r.mu.Unlock()
	for _, f := range hooks {
		f()
	}

	sort.SliceStable(ms, func(i, j int) bool {
		di, dj := ms[i].describe(), ms[j].describe()
		if di.name != dj.name {
			return di.name < dj.name
		}
		return di.labels < dj.labels
	})
	var b strings.Builder
	prev := ""
	for _, m := range ms {
		d := m.describe()
		if d.name != prev {
			fmt.Fprintf(&b, "# HELP %s %s\n", d.name, d.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", d.name, typeOf(m))
			prev = d.name
		}
		m.write(&b, exemplars)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
