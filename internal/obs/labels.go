package obs

import (
	"context"
	"runtime/pprof"
	"strconv"
)

// WithQueryLabels runs f with pprof goroutine labels identifying the
// query: query_id (the tracer's ID — look it up in /debug/queries),
// fingerprint (the plan-cache identity of the query graph) and strategy
// (the optimizer's choice). Goroutine labels are inherited by every
// goroutine f spawns, so labelling the executing goroutine covers
// ParallelHashJoin workers and spill writers for free — a CPU profile
// captured at /debug/pprof/profile slices by query shape.
//
// Empty fingerprint/strategy values are omitted rather than recorded as
// "" (pprof drops empty label values anyway, and omitting keeps the
// label set tidy for queries that bypass the plan cache).
func WithQueryLabels(ctx context.Context, id uint64, fingerprint, strategy string, f func(context.Context)) {
	kv := make([]string, 0, 6)
	kv = append(kv, "query_id", strconv.FormatUint(id, 10))
	if fingerprint != "" {
		kv = append(kv, "fingerprint", fingerprint)
	}
	if strategy != "" {
		kv = append(kv, "strategy", strategy)
	}
	pprof.Do(ctx, pprof.Labels(kv...), f)
}
