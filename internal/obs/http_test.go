package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHealthz is the CI smoke test for the endpoint wiring: /healthz
// must answer 200 with status ok as long as the handler is mounted.
func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body = %q (err %v)", body, err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("unit_total", "unit test counter")
	c.Add(7)
	srv := httptest.NewServer(Handler(reg, NewRecent(4)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "unit_total 7") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
}

func TestDebugQueriesEndpoint(t *testing.T) {
	ring := NewRecent(4)
	ring.Add(QueryRecord{ID: 1, Query: "R -[R.a = S.a] S", Strategy: "reordered",
		Duration: 3 * time.Millisecond, Rows: 2})
	ring.Add(QueryRecord{ID: 2, Query: "bad", Err: "parse error"})
	srv := httptest.NewServer(Handler(NewRegistry(), ring))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []QueryRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != 2 || recs[1].Strategy != "reordered" {
		t.Fatalf("debug/queries = %+v", recs)
	}
}

func TestStartServerResolvesAddr(t *testing.T) {
	s, err := StartServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}
