package obs

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHealthz is the CI smoke test for the endpoint wiring: /healthz
// must answer 200 with status ok as long as the handler is mounted.
func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body = %q (err %v)", body, err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("unit_total", "unit test counter")
	c.Add(7)
	srv := httptest.NewServer(Handler(reg, NewRecent(4)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "unit_total 7") {
		t.Fatalf("metrics body missing counter:\n%s", body)
	}
}

func TestDebugQueriesEndpoint(t *testing.T) {
	ring := NewRecent(4)
	ring.Add(QueryRecord{ID: 1, Query: "R -[R.a = S.a] S", Strategy: "reordered",
		Duration: 3 * time.Millisecond, Rows: 2})
	ring.Add(QueryRecord{ID: 2, Query: "bad", Err: "parse error"})
	srv := httptest.NewServer(Handler(NewRegistry(), ring))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []QueryRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != 2 || recs[1].Strategy != "reordered" {
		t.Fatalf("debug/queries = %+v", recs)
	}
}

func TestStartServerResolvesAddr(t *testing.T) {
	s, err := StartServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// The rebind regression: "set metrics_addr" issued twice must not leak
// the previous listener or its accept goroutine. Two successive binds to
// 127.0.0.1:0 with a Close in between; the first address must stop
// answering (listener really closed) while the second serves.
func TestServerRebindNoLeak(t *testing.T) {
	first, err := StartServer("127.0.0.1:0", nil, NewRecent(4))
	if err != nil {
		t.Fatal(err)
	}
	firstAddr := first.Addr()
	if _, err := http.Get("http://" + firstAddr + "/healthz"); err != nil {
		t.Fatalf("first bind not serving: %v", err)
	}
	if err := first.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	second, err := StartServer("127.0.0.1:0", nil, NewRecent(4))
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	defer second.Close()
	// The old address must be dead — a lingering listener would accept.
	if conn, err := net.DialTimeout("tcp", firstAddr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("first listener still accepting after Close")
	}
	resp, err := http.Get("http://" + second.Addr() + "/healthz")
	if err != nil {
		t.Fatalf("second bind not serving: %v", err)
	}
	resp.Body.Close()
	if err := second.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent — repeated and on nil.
	if err := second.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	// Close waits on the Serve goroutine's exit channel, so both accept
	// goroutines are provably gone here; no global count needed (other
	// tests' transport goroutines would make one flaky).
}

// Close must drain an in-flight handler rather than cut it off.
func TestServerCloseDrainsHandlers(t *testing.T) {
	reg := NewRegistry()
	srv, err := StartServer("127.0.0.1:0", reg, NewRecent(4))
	if err != nil {
		t.Fatal(err)
	}
	// A slow scrape: hold the response open by requesting /metrics on a
	// raw connection and reading after Close begins.
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			done <- err
			return
		}
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- err
	}()
	// Give the request a moment to be in flight, then close.
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("in-flight scrape was cut off: %v", err)
	}
}
