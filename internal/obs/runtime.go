package obs

import (
	"runtime/metrics"
	"sync"
	"time"
)

// The oj_go_* instruments: the Go runtime's own health, sampled from
// runtime/metrics into the Default registry so one /metrics scrape
// carries both engine counters and runtime state. Values refresh on
// every scrape (via OnScrape) and, when a server runs with
// RuntimeEvery set, on a background cadence too — so a dashboard sees
// fresh values either way.
var (
	GoGoroutines = Default.NewGauge("oj_go_goroutines",
		"Live goroutines (runtime/metrics /sched/goroutines).")
	GoHeapObjectBytes = Default.NewGauge("oj_go_heap_objects_bytes",
		"Bytes of live heap objects (/memory/classes/heap/objects).")
	GoMemTotalBytes = Default.NewGauge("oj_go_mem_total_bytes",
		"Total bytes of memory mapped by the Go runtime (/memory/classes/total).")
	GoGCCycles = Default.NewGauge("oj_go_gc_cycles",
		"Completed GC cycles (/gc/cycles/total).")
	GoGCPauseP50 = Default.NewFloatGauge("oj_go_gc_pause_p50_seconds",
		"Median stop-the-world GC pause (/gc/pauses distribution).")
	GoGCPauseP99 = Default.NewFloatGauge("oj_go_gc_pause_p99_seconds",
		"99th-percentile stop-the-world GC pause (/gc/pauses distribution).")
	GoSchedLatencyP50 = Default.NewFloatGauge("oj_go_sched_latency_p50_seconds",
		"Median time goroutines spend runnable before running (/sched/latencies).")
	GoSchedLatencyP99 = Default.NewFloatGauge("oj_go_sched_latency_p99_seconds",
		"99th-percentile time goroutines spend runnable (/sched/latencies).")
)

// runtimeSampleNames are the runtime/metrics keys SampleRuntime reads,
// in the order the update switch expects.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

func init() {
	// Scrape-time refresh: every WritePrometheus re-samples the runtime,
	// so even without a background sampler /metrics is never stale.
	Default.OnScrape(SampleRuntime)
}

// SampleRuntime reads the runtime/metrics snapshot into the oj_go_*
// instruments. Safe for concurrent callers (each gets its own sample
// buffer); cheap enough to run per scrape.
func SampleRuntime() {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Name {
		case "/sched/goroutines:goroutines":
			if s.Value.Kind() == metrics.KindUint64 {
				GoGoroutines.Set(int64(s.Value.Uint64()))
			}
		case "/memory/classes/heap/objects:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				GoHeapObjectBytes.Set(int64(s.Value.Uint64()))
			}
		case "/memory/classes/total:bytes":
			if s.Value.Kind() == metrics.KindUint64 {
				GoMemTotalBytes.Set(int64(s.Value.Uint64()))
			}
		case "/gc/cycles/total:gc-cycles":
			if s.Value.Kind() == metrics.KindUint64 {
				GoGCCycles.Set(int64(s.Value.Uint64()))
			}
		case "/gc/pauses:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				GoGCPauseP50.Set(histQuantile(h, 0.50))
				GoGCPauseP99.Set(histQuantile(h, 0.99))
			}
		case "/sched/latencies:seconds":
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				GoSchedLatencyP50.Set(histQuantile(h, 0.50))
				GoSchedLatencyP99.Set(histQuantile(h, 0.99))
			}
		}
	}
}

// histQuantile computes a nearest-rank quantile from a runtime/metrics
// Float64Histogram, returning the upper bound of the bucket holding the
// q-th observation (0 for an empty histogram). The runtime's bucket
// boundaries can include ±Inf; an infinite upper bound falls back to
// the bucket's finite lower bound.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Counts[i] covers Buckets[i] (lower) to Buckets[i+1] (upper).
			upper := h.Buckets[i+1]
			if upper > 1e308 || upper != upper { // +Inf or NaN guard
				return h.Buckets[i]
			}
			return upper
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RuntimeSampler re-samples the runtime/metrics instruments on a fixed
// cadence — continuous profiling's heartbeat, so gauges move even
// between scrapes (e.g. for exemplar timestamps or push-style
// collectors tailing the registry).
type RuntimeSampler struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartRuntimeSampler samples immediately and then every period until
// Close.
func StartRuntimeSampler(every time.Duration) *RuntimeSampler {
	s := &RuntimeSampler{stop: make(chan struct{}), done: make(chan struct{})}
	SampleRuntime()
	go func() {
		defer close(s.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				SampleRuntime()
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Close stops the sampler and waits for its goroutine to exit.
// Idempotent and nil-safe.
func (s *RuntimeSampler) Close() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
