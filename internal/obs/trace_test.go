package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestQueryTraceLifecycleMetrics(t *testing.T) {
	tr := NewTracer()
	started0 := QueriesStarted.Value()
	done0 := QueriesCompleted.Value()
	failed0 := QueriesFailed.Value()
	durs0 := QueryDuration.Count()

	qt := tr.Start("R -[R.a = S.a] S")
	if QueriesActive.Value() < 1 {
		t.Error("active gauge not incremented")
	}
	qt.Finish(nil)
	qt.Finish(nil) // idempotent

	qf := tr.Start("bad query")
	qf.Finish(errors.New("parse error"))

	if d := QueriesStarted.Value() - started0; d != 2 {
		t.Errorf("started delta = %d, want 2", d)
	}
	if d := QueriesCompleted.Value() - done0; d != 1 {
		t.Errorf("completed delta = %d, want 1", d)
	}
	if d := QueriesFailed.Value() - failed0; d != 1 {
		t.Errorf("failed delta = %d, want 1", d)
	}
	if d := QueryDuration.Count() - durs0; d != 2 {
		t.Errorf("duration observations delta = %d, want 2", d)
	}
	if tr.Ring().Len() != 2 {
		t.Errorf("ring holds %d records, want 2", tr.Ring().Len())
	}
	recs := tr.Ring().Snapshot()
	if recs[0].Err == "" || recs[1].Err != "" {
		t.Errorf("snapshot order wrong (want newest first): %+v", recs)
	}
}

func TestNilQueryTraceSafe(t *testing.T) {
	var qt *QueryTrace
	done := qt.Span("x")
	done()
	qt.AddSpan(Span{Name: "y"})
	qt.AddSpans([]Span{{Name: "z"}})
	if qt.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
	qt.Finish(nil)
}

func TestChromeExport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	tr := NewTracer()
	tr.Enable(path)

	qt := tr.Start("R -[R.a = S.a] S")
	done := qt.Span("parse")
	done()
	qt.AddSpan(Span{Name: "execute", Cat: "phase", Start: time.Now(), Dur: time.Millisecond})
	qt.AddSpan(Span{Name: "scan R", Cat: "operator", Start: time.Now(), Dur: time.Millisecond, Err: "boom"})
	qt.Finish(nil)
	if err := tr.Disable(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace.json is not valid JSON: %v", err)
	}
	// 1 metadata + 3 spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4: %s", len(doc.TraceEvents), raw)
	}
	byName := map[string]map[string]any{}
	for _, ev := range doc.TraceEvents {
		byName[ev["name"].(string)] = ev
	}
	meta := byName["thread_name"]
	if meta["ph"] != "M" || !strings.Contains(fmt.Sprint(meta["args"]), "R -[R.a = S.a] S") {
		t.Errorf("metadata event wrong: %v", meta)
	}
	for _, name := range []string{"parse", "execute", "scan R"} {
		ev := byName[name]
		if ev == nil {
			t.Fatalf("missing event %q", name)
		}
		if ev["ph"] != "X" || ev["pid"] != float64(1) {
			t.Errorf("event %q: ph=%v pid=%v", name, ev["ph"], ev["pid"])
		}
	}
	if args := fmt.Sprint(byName["scan R"]["args"]); !strings.Contains(args, "boom") {
		t.Errorf("error span lost its error: %v", args)
	}
}

func TestTracerDisabledCollectsNoEvents(t *testing.T) {
	tr := NewTracer()
	qt := tr.Start("q")
	qt.AddSpan(Span{Name: "parse", Cat: "phase"})
	qt.Finish(nil)
	var b strings.Builder
	if err := tr.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(doc.TraceEvents))
	}
}

func TestRecentEviction(t *testing.T) {
	r := NewRecent(3)
	for i := 1; i <= 5; i++ {
		r.Add(QueryRecord{ID: uint64(i)})
	}
	got := r.Snapshot()
	if len(got) != 3 || got[0].ID != 5 || got[1].ID != 4 || got[2].ID != 3 {
		t.Fatalf("snapshot = %+v, want IDs 5,4,3", got)
	}
}

func TestSlowLog(t *testing.T) {
	slow0 := SlowQueries.Value()
	var text, jsonl strings.Builder
	var s SlowLog
	s.SetThreshold(10 * time.Millisecond)
	s.SetText(&text)
	s.SetJSON(&jsonl)

	fast := QueryRecord{Query: "fast", Duration: time.Millisecond}
	if s.Observe(&fast) {
		t.Error("fast query marked slow")
	}
	rec := QueryRecord{
		Query: "R -[R.a = S.a] S", Duration: 50 * time.Millisecond,
		Strategy: "fixed", FallbackReason: "not freely reorderable",
		PlanTree: "(R ⋈ S)", Rows: 10, Tuples: 30, QError: 2.5,
		GovernorEvents: []string{"resource: memory budget exceeded in hashjoin"},
	}
	if !s.Observe(&rec) {
		t.Fatal("slow query not marked slow")
	}
	if d := SlowQueries.Value() - slow0; d != 1 {
		t.Errorf("slow counter delta = %d, want 1", d)
	}
	out := text.String()
	for _, want := range []string{"slow query", "R -[R.a = S.a] S",
		"strategy: fixed", "fallback: not freely reorderable",
		"plan: (R ⋈ S)", "rows: 10", "tuples: 30", "q-err: 2.50", "governor:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text log missing %q:\n%s", want, out)
		}
	}
	var parsed QueryRecord
	if err := json.Unmarshal([]byte(jsonl.String()), &parsed); err != nil {
		t.Fatalf("JSONL line invalid: %v", err)
	}
	if parsed.PlanTree != "(R ⋈ S)" || parsed.QError != 2.5 {
		t.Errorf("JSONL round-trip lost fields: %+v", parsed)
	}

	s.SetThreshold(0)
	if s.Observe(&rec) {
		t.Error("disabled slow log still firing")
	}
}
