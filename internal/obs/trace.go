package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed section of a query: a pipeline phase (parse,
// analyze, optimize, build, execute) or an operator synthesized from the
// executed plan's stats tree. Depth is the span's nesting level within
// its category — pre-order operator spans carry their tree depth so the
// exported trace (and tests) can rebuild the hierarchy.
type Span struct {
	Name  string        `json:"name"`
	Cat   string        `json:"cat"` // "phase" or "operator"
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
	Depth int           `json:"depth"`
	Err   string        `json:"err,omitempty"`
}

// QueryRecord is the condensed outcome of one traced query: what the
// ring buffer holds, what /debug/queries serves, and what the slow-query
// log records — including the implementing tree the optimizer chose and
// why, so a slow query can be traced back to its plan.
type QueryRecord struct {
	ID       uint64        `json:"id"`
	Query    string        `json:"query"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Strategy and FallbackReason mirror the optimizer trace; PlanTree is
	// the chosen implementing tree in the expression syntax.
	Strategy       string   `json:"strategy,omitempty"`
	FallbackReason string   `json:"fallback_reason,omitempty"`
	PlanTree       string   `json:"plan_tree,omitempty"`
	Rows           int64    `json:"rows"`
	Tuples         int64    `json:"tuples"`
	QError         float64  `json:"q_error,omitempty"`
	GovernorEvents []string `json:"governor_events,omitempty"`
	Err            string   `json:"error,omitempty"`
	Slow           bool     `json:"slow,omitempty"`
	// Stack is the goroutine stack captured when the query died in a
	// recovered panic; panic records always reach the slow-query log,
	// threshold or not.
	Stack string `json:"stack,omitempty"`
}

// Tracer assigns trace IDs, collects spans per query, maintains the
// recent-query ring buffer and the slow-query log, and — when enabled —
// exports finished queries as Chrome trace-event JSON that loads in
// chrome://tracing and Perfetto. The metrics side-effects (queries
// started/completed/failed, latency histogram) fire on Start/Finish
// whether or not span export is enabled.
type Tracer struct {
	nextID  atomic.Uint64
	enabled atomic.Bool
	epoch   time.Time

	mu     sync.Mutex
	path   string
	events []chromeEvent

	// active indexes in-flight traces by ID — the /debug/queries?live=1
	// payload. Entries are added by Start and removed by Finish/Reject;
	// the fields Active reads off a live trace are all immutable or
	// atomic, so a scrape never races the query's own goroutine.
	activeMu sync.Mutex
	active   map[uint64]*QueryTrace

	ring *Recent
	slow *SlowLog
}

// NewTracer returns a tracer with a 64-entry ring buffer and a disabled
// slow-query log; span export starts disabled.
func NewTracer() *Tracer {
	return &Tracer{
		epoch:  time.Now(),
		active: make(map[uint64]*QueryTrace),
		ring:   NewRecent(64),
		slow:   &SlowLog{},
	}
}

// DefaultTracer is the process-wide tracer the commands share.
var DefaultTracer = NewTracer()

// Ring returns the tracer's recent-query buffer.
func (t *Tracer) Ring() *Recent { return t.ring }

// Slow returns the tracer's slow-query log.
func (t *Tracer) Slow() *SlowLog { return t.slow }

// Enable turns on span export; finished queries append to the in-memory
// event list and, when path is non-empty, the full Chrome trace JSON is
// rewritten to path after every query so the file is always loadable.
func (t *Tracer) Enable(path string) {
	t.mu.Lock()
	t.path = path
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable turns span export off after flushing any configured file. The
// collected events are kept so a later Enable appends to the same
// timeline.
func (t *Tracer) Disable() error {
	t.enabled.Store(false)
	return t.Flush()
}

// Enabled reports whether span export is on.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Flush writes the Chrome trace JSON to the configured path (a no-op
// without one).
func (t *Tracer) Flush() error {
	t.mu.Lock()
	path := t.path
	t.mu.Unlock()
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteChrome writes the collected events as a Chrome trace-event JSON
// document ({"traceEvents": [...]}).
func (t *Tracer) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	evs := append([]chromeEvent(nil), t.events...)
	t.mu.Unlock()
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Start begins a traced query. It always returns a usable trace (the
// lifecycle metrics fire regardless); span collection is skipped when
// export is disabled, keeping the per-query overhead to a few atomic
// adds.
func (t *Tracer) Start(query string) *QueryTrace {
	QueriesStarted.Inc()
	QueriesActive.Inc()
	qt := &QueryTrace{
		t:   t,
		Rec: QueryRecord{ID: t.nextID.Add(1), Query: query, Start: time.Now()},
	}
	t.activeMu.Lock()
	t.active[qt.Rec.ID] = qt
	t.activeMu.Unlock()
	return qt
}

// QueryTrace collects the spans and outcome of one query between Start
// and Finish. A nil *QueryTrace is valid everywhere and records nothing,
// so library paths can thread one through unconditionally.
//
// The atomic fields at the bottom are the live-progress surface: the
// query's own goroutine publishes phase, labels, progress callbacks and
// admission wait as it goes, and Tracer.Active reads them from scrape
// goroutines without touching the non-atomic Rec/spans state.
type QueryTrace struct {
	t     *Tracer
	Rec   QueryRecord
	spans []Span
	done  bool

	phase         atomic.Pointer[string]
	labels        atomic.Pointer[queryLabels]
	prog          atomic.Pointer[progress]
	admissionWait atomic.Int64 // nanoseconds
}

// queryLabels is the atomic snapshot of a live query's plan identity.
type queryLabels struct{ strategy, fingerprint string }

// progress is the atomic snapshot of a live query's progress sources:
// row/tuple counter reads and the governor's byte usage.
type progress struct {
	rows, tuples func() int64
	gov          GovernorUsage
}

// GovernorUsage is the subset of resource.Governor the live-progress
// snapshot reads. Declared here (obs is a leaf package) so exec/resource
// can hand their governor in without an import cycle; implementations
// must be nil-receiver-safe, as resource.Governor's accessors are.
type GovernorUsage interface {
	UsedBytes() int64
	UsedSpillBytes() int64
}

// Span opens a phase span and returns its closer:
//
//	done := qt.Span("optimize")
//	... work ...
//	done()
//
// Opening a span also publishes its name as the query's current phase
// for the live-progress view.
func (qt *QueryTrace) Span(name string) func() {
	if qt == nil {
		return func() {}
	}
	qt.phase.Store(&name)
	start := time.Now()
	return func() {
		qt.AddSpan(Span{Name: name, Cat: "phase", Start: start, Dur: time.Since(start)})
	}
}

// SetLabels publishes the optimizer's chosen strategy and the plan
// fingerprint for the live-progress view (the same values the pprof
// goroutine labels carry). Nil-safe.
func (qt *QueryTrace) SetLabels(strategy, fingerprint string) {
	if qt == nil {
		return
	}
	qt.labels.Store(&queryLabels{strategy: strategy, fingerprint: fingerprint})
}

// AttachProgress publishes live progress sources: rows/tuples callbacks
// (typically exec.Counters loads — atomic, monotonic) and the query's
// governor for byte usage. Any of the three may be nil. Nil-safe.
func (qt *QueryTrace) AttachProgress(rows, tuples func() int64, gov GovernorUsage) {
	if qt == nil {
		return
	}
	qt.prog.Store(&progress{rows: rows, tuples: tuples, gov: gov})
}

// SetAdmissionWait publishes how long the query waited for admission.
// Nil-safe.
func (qt *QueryTrace) SetAdmissionWait(d time.Duration) {
	if qt == nil {
		return
	}
	qt.admissionWait.Store(int64(d))
}

// AddSpan appends a pre-timed span (phases with synthesized bounds,
// operator spans from a stats tree).
func (qt *QueryTrace) AddSpan(sp Span) {
	if qt == nil {
		return
	}
	qt.spans = append(qt.spans, sp)
}

// AddSpans appends several spans.
func (qt *QueryTrace) AddSpans(sps []Span) {
	if qt == nil {
		return
	}
	qt.spans = append(qt.spans, sps...)
}

// Spans returns the spans collected so far.
func (qt *QueryTrace) Spans() []Span {
	if qt == nil {
		return nil
	}
	return qt.spans
}

// Finish seals the trace: it stamps the duration and error, fires the
// lifecycle metrics, pushes the record into the ring buffer, feeds the
// slow-query log, and — when export is enabled — converts the spans to
// Chrome trace events and flushes the trace file. Finish is idempotent;
// calling it on a nil trace is a no-op.
func (qt *QueryTrace) Finish(err error) {
	if qt == nil || qt.done {
		return
	}
	qt.done = true
	qt.Rec.Duration = time.Since(qt.Rec.Start)
	if err != nil {
		qt.Rec.Err = err.Error()
		QueriesFailed.Inc()
	} else {
		QueriesCompleted.Inc()
	}
	QueriesActive.Dec()
	// The exemplar ties this latency bucket back to the query ID in the
	// ring, so a scrape with ?exemplars=1 links buckets to real queries.
	QueryDuration.ObserveExemplar(qt.Rec.Duration.Seconds(), qt.Rec.ID)

	t := qt.t
	if t == nil {
		return
	}
	t.activeMu.Lock()
	delete(t.active, qt.Rec.ID)
	t.activeMu.Unlock()
	qt.Rec.Slow = t.slow.Observe(&qt.Rec)
	t.ring.Add(qt.Rec)
	if t.enabled.Load() {
		t.appendChrome(qt)
		// Flush errors are swallowed: tracing must never fail a query. The
		// next Disable surfaces them.
		_ = t.Flush()
	}
}

// FinishPanic seals the trace for a query that died in a recovered
// panic: the stack lands in the record (forcing it into the slow-query
// log regardless of threshold) and the query counts as failed, so the
// lifecycle invariant started = completed + failed + rejected includes
// panics. Idempotent and nil-safe, like Finish.
func (qt *QueryTrace) FinishPanic(p any, stack []byte) {
	if qt == nil || qt.done {
		return
	}
	qt.Rec.Stack = string(stack)
	qt.Finish(fmt.Errorf("panic: %v", p))
}

// RecordPanic logs a panic recovered outside any traced query (e.g. in
// command dispatch before a query starts): the record reaches the ring
// buffer and the slow-query log with its stack, without touching the
// query lifecycle counters.
func (t *Tracer) RecordPanic(query string, p any, stack []byte) {
	rec := QueryRecord{
		ID:    t.nextID.Add(1),
		Query: query,
		Start: time.Now(),
		Err:   fmt.Sprintf("panic: %v", p),
		Stack: string(stack),
	}
	t.slow.Observe(&rec)
	t.ring.Add(rec)
}

// Reject seals the trace for a query turned away by admission control
// before execution started. It counts as rejected — not failed — so the
// server invariant `started = completed + failed + rejected` holds over
// the lifecycle counters. The record still lands in the ring buffer
// (with the rejection text as its error) so /debug/queries shows what
// was turned away. Idempotent and nil-safe, like Finish.
func (qt *QueryTrace) Reject(err error) {
	if qt == nil || qt.done {
		return
	}
	qt.done = true
	qt.Rec.Duration = time.Since(qt.Rec.Start)
	if err != nil {
		qt.Rec.Err = err.Error()
	}
	QueriesRejected.Inc()
	QueriesActive.Dec()
	if qt.t != nil {
		qt.t.activeMu.Lock()
		delete(qt.t.active, qt.Rec.ID)
		qt.t.activeMu.Unlock()
		qt.t.ring.Add(qt.Rec)
	}
}

// LiveQuery is one in-flight query as /debug/queries?live=1 reports it:
// identity, current phase, elapsed time, progress so far, governor byte
// usage, and how long admission made it wait.
type LiveQuery struct {
	ID                uint64        `json:"id"`
	Query             string        `json:"query"`
	Phase             string        `json:"phase"`
	Elapsed           time.Duration `json:"elapsed_ns"`
	Strategy          string        `json:"strategy,omitempty"`
	Fingerprint       string        `json:"fingerprint,omitempty"`
	Rows              int64         `json:"rows"`
	Tuples            int64         `json:"tuples"`
	GovernorBytes     int64         `json:"governor_bytes"`
	GovernorSpillByte int64         `json:"governor_spill_bytes"`
	AdmissionWait     time.Duration `json:"admission_wait_ns"`
}

// Active snapshots the in-flight queries, ordered by ID (oldest first).
// It reads only immutable (ID, Query, Start) or atomic fields off each
// live trace, so it is safe against the queries' own goroutines.
func (t *Tracer) Active() []LiveQuery {
	t.activeMu.Lock()
	qts := make([]*QueryTrace, 0, len(t.active))
	for _, qt := range t.active {
		qts = append(qts, qt)
	}
	t.activeMu.Unlock()
	sort.Slice(qts, func(i, j int) bool { return qts[i].Rec.ID < qts[j].Rec.ID })

	out := make([]LiveQuery, 0, len(qts))
	for _, qt := range qts {
		lq := LiveQuery{
			ID:            qt.Rec.ID,
			Query:         qt.Rec.Query,
			Elapsed:       time.Since(qt.Rec.Start),
			AdmissionWait: time.Duration(qt.admissionWait.Load()),
		}
		if p := qt.phase.Load(); p != nil {
			lq.Phase = *p
		}
		if l := qt.labels.Load(); l != nil {
			lq.Strategy, lq.Fingerprint = l.strategy, l.fingerprint
		}
		if pr := qt.prog.Load(); pr != nil {
			if pr.rows != nil {
				lq.Rows = pr.rows()
			}
			if pr.tuples != nil {
				lq.Tuples = pr.tuples()
			}
			if pr.gov != nil {
				lq.GovernorBytes = pr.gov.UsedBytes()
				lq.GovernorSpillByte = pr.gov.UsedSpillBytes()
			}
		}
		out = append(out, lq)
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event with explicit duration, "M" = metadata). Timestamps
// and durations are microseconds; tid groups one query's spans onto one
// timeline row.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// appendChrome converts a finished trace's spans to Chrome events on the
// query's own tid, preceded by a thread_name metadata event carrying the
// query text.
func (t *Tracer) appendChrome(qt *QueryTrace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tid := qt.Rec.ID
	t.events = append(t.events, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"name": fmt.Sprintf("q%d: %s", tid, clip(qt.Rec.Query, 120))},
	})
	for _, sp := range qt.spans {
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			Ts:  float64(sp.Start.Sub(t.epoch)) / float64(time.Microsecond),
			Dur: float64(sp.Dur) / float64(time.Microsecond),
			Pid: 1, Tid: tid,
		}
		if sp.Err != "" {
			ev.Args = map[string]any{"error": sp.Err}
		}
		t.events = append(t.events, ev)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// Recent is a bounded ring buffer of finished query records, newest
// first on read — the /debug/queries payload.
type Recent struct {
	mu   sync.Mutex
	buf  []QueryRecord
	next int
	full bool
}

// NewRecent returns a ring holding the last n records.
func NewRecent(n int) *Recent {
	if n < 1 {
		n = 1
	}
	return &Recent{buf: make([]QueryRecord, n)}
}

// Add records one finished query, evicting the oldest when full.
func (r *Recent) Add(rec QueryRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Snapshot returns the held records, newest first.
func (r *Recent) Snapshot() []QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]QueryRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len returns the number of held records.
func (r *Recent) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// SlowLog records queries whose duration exceeds a threshold, as
// human-readable text and/or JSON lines. A zero threshold disables it.
// The JSON side can log straight to a size-bounded file (SetJSONFile)
// so a long soak cannot fill the disk.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 = off

	mu    sync.Mutex
	textW io.Writer
	jsonW io.Writer

	// File-backed JSON log with rotation: when jsonFile is set and an
	// entry would push jsonSize past jsonMaxBytes, the file is renamed to
	// <path>.1 (replacing any previous .1) and a fresh file is opened —
	// at most 2×maxBytes on disk, and recent entries always survive.
	jsonFile     *os.File
	jsonPath     string
	jsonMaxBytes int64
	jsonSize     int64
}

// SetThreshold sets the slow-query duration (0 disables).
func (s *SlowLog) SetThreshold(d time.Duration) { s.threshold.Store(int64(d)) }

// Threshold returns the current threshold (0 = off).
func (s *SlowLog) Threshold() time.Duration { return time.Duration(s.threshold.Load()) }

// SetText directs the text log to w (nil to stop).
func (s *SlowLog) SetText(w io.Writer) {
	s.mu.Lock()
	s.textW = w
	s.mu.Unlock()
}

// SetJSON directs the JSON-lines log to w (nil to stop). It closes any
// file previously attached with SetJSONFile.
func (s *SlowLog) SetJSON(w io.Writer) {
	s.mu.Lock()
	s.closeFileLocked()
	s.jsonW = w
	s.mu.Unlock()
}

// SetJSONFile directs the JSON-lines log to the file at path, appending
// if it exists, rotating to <path>.1 whenever the file would exceed
// maxBytes (maxBytes <= 0 means no bound). An empty path closes the
// current file and stops JSON logging.
func (s *SlowLog) SetJSONFile(path string, maxBytes int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closeFileLocked()
	if path == "" {
		s.jsonW = nil
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: slow-query log: %w", err)
	}
	size := int64(0)
	if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	s.jsonFile, s.jsonPath, s.jsonMaxBytes, s.jsonSize = f, path, maxBytes, size
	s.jsonW = f
	return nil
}

// CloseJSONFile closes a file attached with SetJSONFile and stops JSON
// logging to it; a no-op when none is attached.
func (s *SlowLog) CloseJSONFile() {
	s.mu.Lock()
	s.closeFileLocked()
	s.mu.Unlock()
}

// closeFileLocked closes the managed file (if any) and clears the
// file-backed state. Callers hold s.mu.
func (s *SlowLog) closeFileLocked() {
	if s.jsonFile == nil {
		return
	}
	if s.jsonW == io.Writer(s.jsonFile) {
		s.jsonW = nil
	}
	s.jsonFile.Close()
	s.jsonFile, s.jsonPath, s.jsonMaxBytes, s.jsonSize = nil, "", 0, 0
}

// writeJSONLocked appends one encoded entry to the JSON log, rotating a
// file-backed log first when the entry would push it past the size cap.
// Callers hold s.mu.
func (s *SlowLog) writeJSONLocked(line []byte) {
	if s.jsonFile != nil && s.jsonMaxBytes > 0 && s.jsonSize+int64(len(line)) > s.jsonMaxBytes && s.jsonSize > 0 {
		s.jsonFile.Close()
		os.Rename(s.jsonPath, s.jsonPath+".1")
		f, err := os.OpenFile(s.jsonPath, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			// Could not reopen: drop the file-backed log rather than crash
			// the query path; the next SetJSONFile can re-establish it.
			s.jsonFile, s.jsonW, s.jsonPath, s.jsonMaxBytes, s.jsonSize = nil, nil, "", 0, 0
			return
		}
		s.jsonFile, s.jsonW, s.jsonSize = f, f, 0
	}
	if s.jsonW != nil {
		n, _ := s.jsonW.Write(line)
		s.jsonSize += int64(n)
	}
}

// Observe checks rec against the threshold; when slow it writes the
// configured logs, bumps the slow-query counter, and reports true.
// Records carrying a panic stack are written to the configured logs
// regardless of the threshold — a panic is always worth the entry — but
// only genuinely slow queries count toward oj_slow_queries_total and
// report true.
func (s *SlowLog) Observe(rec *QueryRecord) bool {
	th := s.threshold.Load()
	slow := th > 0 && int64(rec.Duration) >= th
	if !slow && rec.Stack == "" {
		return false
	}
	if slow {
		SlowQueries.Inc()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.textW != nil {
		fmt.Fprint(s.textW, renderSlow(rec))
	}
	if s.jsonW != nil {
		if b, err := json.Marshal(rec); err == nil {
			s.writeJSONLocked(append(b, '\n'))
		}
	}
	return slow
}

// renderSlow renders the text form of a slow-query entry: the duration
// and query on the first line, then the plan the optimizer chose and
// why, the effort counters, and any governor events.
func renderSlow(rec *QueryRecord) string {
	var b strings.Builder
	head := "slow query"
	if rec.Stack != "" {
		head = "query panic"
	}
	fmt.Fprintf(&b, "%s (%s): %s\n", head, rec.Duration.Round(time.Microsecond), rec.Query)
	if rec.Strategy != "" {
		fmt.Fprintf(&b, "  strategy: %s", rec.Strategy)
		if rec.FallbackReason != "" {
			fmt.Fprintf(&b, " (fallback: %s)", rec.FallbackReason)
		}
		b.WriteByte('\n')
	}
	if rec.PlanTree != "" {
		fmt.Fprintf(&b, "  plan: %s\n", rec.PlanTree)
	}
	fmt.Fprintf(&b, "  rows: %d  tuples: %d", rec.Rows, rec.Tuples)
	if rec.QError > 0 {
		fmt.Fprintf(&b, "  q-err: %.2f", rec.QError)
	}
	b.WriteByte('\n')
	for _, ev := range rec.GovernorEvents {
		fmt.Fprintf(&b, "  governor: %s\n", ev)
	}
	if rec.Err != "" {
		fmt.Fprintf(&b, "  error: %s\n", rec.Err)
	}
	if rec.Stack != "" {
		b.WriteString("  stack:\n")
		for _, line := range strings.Split(strings.TrimRight(rec.Stack, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
