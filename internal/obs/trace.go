package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed section of a query: a pipeline phase (parse,
// analyze, optimize, build, execute) or an operator synthesized from the
// executed plan's stats tree. Depth is the span's nesting level within
// its category — pre-order operator spans carry their tree depth so the
// exported trace (and tests) can rebuild the hierarchy.
type Span struct {
	Name  string        `json:"name"`
	Cat   string        `json:"cat"` // "phase" or "operator"
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur"`
	Depth int           `json:"depth"`
	Err   string        `json:"err,omitempty"`
}

// QueryRecord is the condensed outcome of one traced query: what the
// ring buffer holds, what /debug/queries serves, and what the slow-query
// log records — including the implementing tree the optimizer chose and
// why, so a slow query can be traced back to its plan.
type QueryRecord struct {
	ID       uint64        `json:"id"`
	Query    string        `json:"query"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Strategy and FallbackReason mirror the optimizer trace; PlanTree is
	// the chosen implementing tree in the expression syntax.
	Strategy       string   `json:"strategy,omitempty"`
	FallbackReason string   `json:"fallback_reason,omitempty"`
	PlanTree       string   `json:"plan_tree,omitempty"`
	Rows           int64    `json:"rows"`
	Tuples         int64    `json:"tuples"`
	QError         float64  `json:"q_error,omitempty"`
	GovernorEvents []string `json:"governor_events,omitempty"`
	Err            string   `json:"error,omitempty"`
	Slow           bool     `json:"slow,omitempty"`
	// Stack is the goroutine stack captured when the query died in a
	// recovered panic; panic records always reach the slow-query log,
	// threshold or not.
	Stack string `json:"stack,omitempty"`
}

// Tracer assigns trace IDs, collects spans per query, maintains the
// recent-query ring buffer and the slow-query log, and — when enabled —
// exports finished queries as Chrome trace-event JSON that loads in
// chrome://tracing and Perfetto. The metrics side-effects (queries
// started/completed/failed, latency histogram) fire on Start/Finish
// whether or not span export is enabled.
type Tracer struct {
	nextID  atomic.Uint64
	enabled atomic.Bool
	epoch   time.Time

	mu     sync.Mutex
	path   string
	events []chromeEvent

	ring *Recent
	slow *SlowLog
}

// NewTracer returns a tracer with a 64-entry ring buffer and a disabled
// slow-query log; span export starts disabled.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), ring: NewRecent(64), slow: &SlowLog{}}
}

// DefaultTracer is the process-wide tracer the commands share.
var DefaultTracer = NewTracer()

// Ring returns the tracer's recent-query buffer.
func (t *Tracer) Ring() *Recent { return t.ring }

// Slow returns the tracer's slow-query log.
func (t *Tracer) Slow() *SlowLog { return t.slow }

// Enable turns on span export; finished queries append to the in-memory
// event list and, when path is non-empty, the full Chrome trace JSON is
// rewritten to path after every query so the file is always loadable.
func (t *Tracer) Enable(path string) {
	t.mu.Lock()
	t.path = path
	t.mu.Unlock()
	t.enabled.Store(true)
}

// Disable turns span export off after flushing any configured file. The
// collected events are kept so a later Enable appends to the same
// timeline.
func (t *Tracer) Disable() error {
	t.enabled.Store(false)
	return t.Flush()
}

// Enabled reports whether span export is on.
func (t *Tracer) Enabled() bool { return t.enabled.Load() }

// Flush writes the Chrome trace JSON to the configured path (a no-op
// without one).
func (t *Tracer) Flush() error {
	t.mu.Lock()
	path := t.path
	t.mu.Unlock()
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteChrome writes the collected events as a Chrome trace-event JSON
// document ({"traceEvents": [...]}).
func (t *Tracer) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	evs := append([]chromeEvent(nil), t.events...)
	t.mu.Unlock()
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Start begins a traced query. It always returns a usable trace (the
// lifecycle metrics fire regardless); span collection is skipped when
// export is disabled, keeping the per-query overhead to a few atomic
// adds.
func (t *Tracer) Start(query string) *QueryTrace {
	QueriesStarted.Inc()
	QueriesActive.Inc()
	return &QueryTrace{
		t:   t,
		Rec: QueryRecord{ID: t.nextID.Add(1), Query: query, Start: time.Now()},
	}
}

// QueryTrace collects the spans and outcome of one query between Start
// and Finish. A nil *QueryTrace is valid everywhere and records nothing,
// so library paths can thread one through unconditionally.
type QueryTrace struct {
	t     *Tracer
	Rec   QueryRecord
	spans []Span
	done  bool
}

// Span opens a phase span and returns its closer:
//
//	done := qt.Span("optimize")
//	... work ...
//	done()
func (qt *QueryTrace) Span(name string) func() {
	if qt == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		qt.AddSpan(Span{Name: name, Cat: "phase", Start: start, Dur: time.Since(start)})
	}
}

// AddSpan appends a pre-timed span (phases with synthesized bounds,
// operator spans from a stats tree).
func (qt *QueryTrace) AddSpan(sp Span) {
	if qt == nil {
		return
	}
	qt.spans = append(qt.spans, sp)
}

// AddSpans appends several spans.
func (qt *QueryTrace) AddSpans(sps []Span) {
	if qt == nil {
		return
	}
	qt.spans = append(qt.spans, sps...)
}

// Spans returns the spans collected so far.
func (qt *QueryTrace) Spans() []Span {
	if qt == nil {
		return nil
	}
	return qt.spans
}

// Finish seals the trace: it stamps the duration and error, fires the
// lifecycle metrics, pushes the record into the ring buffer, feeds the
// slow-query log, and — when export is enabled — converts the spans to
// Chrome trace events and flushes the trace file. Finish is idempotent;
// calling it on a nil trace is a no-op.
func (qt *QueryTrace) Finish(err error) {
	if qt == nil || qt.done {
		return
	}
	qt.done = true
	qt.Rec.Duration = time.Since(qt.Rec.Start)
	if err != nil {
		qt.Rec.Err = err.Error()
		QueriesFailed.Inc()
	} else {
		QueriesCompleted.Inc()
	}
	QueriesActive.Dec()
	QueryDuration.ObserveDuration(qt.Rec.Duration)

	t := qt.t
	if t == nil {
		return
	}
	qt.Rec.Slow = t.slow.Observe(&qt.Rec)
	t.ring.Add(qt.Rec)
	if t.enabled.Load() {
		t.appendChrome(qt)
		// Flush errors are swallowed: tracing must never fail a query. The
		// next Disable surfaces them.
		_ = t.Flush()
	}
}

// FinishPanic seals the trace for a query that died in a recovered
// panic: the stack lands in the record (forcing it into the slow-query
// log regardless of threshold) and the query counts as failed, so the
// lifecycle invariant started = completed + failed + rejected includes
// panics. Idempotent and nil-safe, like Finish.
func (qt *QueryTrace) FinishPanic(p any, stack []byte) {
	if qt == nil || qt.done {
		return
	}
	qt.Rec.Stack = string(stack)
	qt.Finish(fmt.Errorf("panic: %v", p))
}

// RecordPanic logs a panic recovered outside any traced query (e.g. in
// command dispatch before a query starts): the record reaches the ring
// buffer and the slow-query log with its stack, without touching the
// query lifecycle counters.
func (t *Tracer) RecordPanic(query string, p any, stack []byte) {
	rec := QueryRecord{
		ID:    t.nextID.Add(1),
		Query: query,
		Start: time.Now(),
		Err:   fmt.Sprintf("panic: %v", p),
		Stack: string(stack),
	}
	t.slow.Observe(&rec)
	t.ring.Add(rec)
}

// Reject seals the trace for a query turned away by admission control
// before execution started. It counts as rejected — not failed — so the
// server invariant `started = completed + failed + rejected` holds over
// the lifecycle counters. The record still lands in the ring buffer
// (with the rejection text as its error) so /debug/queries shows what
// was turned away. Idempotent and nil-safe, like Finish.
func (qt *QueryTrace) Reject(err error) {
	if qt == nil || qt.done {
		return
	}
	qt.done = true
	qt.Rec.Duration = time.Since(qt.Rec.Start)
	if err != nil {
		qt.Rec.Err = err.Error()
	}
	QueriesRejected.Inc()
	QueriesActive.Dec()
	if qt.t != nil {
		qt.t.ring.Add(qt.Rec)
	}
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event with explicit duration, "M" = metadata). Timestamps
// and durations are microseconds; tid groups one query's spans onto one
// timeline row.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// appendChrome converts a finished trace's spans to Chrome events on the
// query's own tid, preceded by a thread_name metadata event carrying the
// query text.
func (t *Tracer) appendChrome(qt *QueryTrace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tid := qt.Rec.ID
	t.events = append(t.events, chromeEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"name": fmt.Sprintf("q%d: %s", tid, clip(qt.Rec.Query, 120))},
	})
	for _, sp := range qt.spans {
		ev := chromeEvent{
			Name: sp.Name, Cat: sp.Cat, Ph: "X",
			Ts:  float64(sp.Start.Sub(t.epoch)) / float64(time.Microsecond),
			Dur: float64(sp.Dur) / float64(time.Microsecond),
			Pid: 1, Tid: tid,
		}
		if sp.Err != "" {
			ev.Args = map[string]any{"error": sp.Err}
		}
		t.events = append(t.events, ev)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

// Recent is a bounded ring buffer of finished query records, newest
// first on read — the /debug/queries payload.
type Recent struct {
	mu   sync.Mutex
	buf  []QueryRecord
	next int
	full bool
}

// NewRecent returns a ring holding the last n records.
func NewRecent(n int) *Recent {
	if n < 1 {
		n = 1
	}
	return &Recent{buf: make([]QueryRecord, n)}
}

// Add records one finished query, evicting the oldest when full.
func (r *Recent) Add(rec QueryRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// Snapshot returns the held records, newest first.
func (r *Recent) Snapshot() []QueryRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]QueryRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len returns the number of held records.
func (r *Recent) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// SlowLog records queries whose duration exceeds a threshold, as
// human-readable text and/or JSON lines. A zero threshold disables it.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 = off

	mu    sync.Mutex
	textW io.Writer
	jsonW io.Writer
}

// SetThreshold sets the slow-query duration (0 disables).
func (s *SlowLog) SetThreshold(d time.Duration) { s.threshold.Store(int64(d)) }

// Threshold returns the current threshold (0 = off).
func (s *SlowLog) Threshold() time.Duration { return time.Duration(s.threshold.Load()) }

// SetText directs the text log to w (nil to stop).
func (s *SlowLog) SetText(w io.Writer) {
	s.mu.Lock()
	s.textW = w
	s.mu.Unlock()
}

// SetJSON directs the JSON-lines log to w (nil to stop).
func (s *SlowLog) SetJSON(w io.Writer) {
	s.mu.Lock()
	s.jsonW = w
	s.mu.Unlock()
}

// Observe checks rec against the threshold; when slow it writes the
// configured logs, bumps the slow-query counter, and reports true.
// Records carrying a panic stack are written to the configured logs
// regardless of the threshold — a panic is always worth the entry — but
// only genuinely slow queries count toward oj_slow_queries_total and
// report true.
func (s *SlowLog) Observe(rec *QueryRecord) bool {
	th := s.threshold.Load()
	slow := th > 0 && int64(rec.Duration) >= th
	if !slow && rec.Stack == "" {
		return false
	}
	if slow {
		SlowQueries.Inc()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.textW != nil {
		fmt.Fprint(s.textW, renderSlow(rec))
	}
	if s.jsonW != nil {
		if b, err := json.Marshal(rec); err == nil {
			s.jsonW.Write(append(b, '\n'))
		}
	}
	return slow
}

// renderSlow renders the text form of a slow-query entry: the duration
// and query on the first line, then the plan the optimizer chose and
// why, the effort counters, and any governor events.
func renderSlow(rec *QueryRecord) string {
	var b strings.Builder
	head := "slow query"
	if rec.Stack != "" {
		head = "query panic"
	}
	fmt.Fprintf(&b, "%s (%s): %s\n", head, rec.Duration.Round(time.Microsecond), rec.Query)
	if rec.Strategy != "" {
		fmt.Fprintf(&b, "  strategy: %s", rec.Strategy)
		if rec.FallbackReason != "" {
			fmt.Fprintf(&b, " (fallback: %s)", rec.FallbackReason)
		}
		b.WriteByte('\n')
	}
	if rec.PlanTree != "" {
		fmt.Fprintf(&b, "  plan: %s\n", rec.PlanTree)
	}
	fmt.Fprintf(&b, "  rows: %d  tuples: %d", rec.Rows, rec.Tuples)
	if rec.QError > 0 {
		fmt.Fprintf(&b, "  q-err: %.2f", rec.QError)
	}
	b.WriteByte('\n')
	for _, ev := range rec.GovernorEvents {
		fmt.Fprintf(&b, "  governor: %s\n", ev)
	}
	if rec.Err != "" {
		fmt.Fprintf(&b, "  error: %s\n", rec.Err)
	}
	if rec.Stack != "" {
		b.WriteString("  stack:\n")
		for _, line := range strings.Split(strings.TrimRight(rec.Stack, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
