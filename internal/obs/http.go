package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Handler returns the monitoring mux:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/queries  the recent-query ring buffer as JSON, newest first
//	/healthz        health: {"status":"ok|degraded|draining", ...}
//
// reg and ring default to the process-wide Default registry and the
// DefaultTracer's ring when nil. An optional health callback supplies
// the /healthz status ("ok" when absent or nil): "ok" and "degraded"
// answer 200 (degraded = serving but shedding load), "draining" answers
// 503 so load balancers stop routing to a server that is shutting down.
func Handler(reg *Registry, ring *Recent, health ...func() string) http.Handler {
	if reg == nil {
		reg = Default
	}
	if ring == nil {
		ring = DefaultTracer.Ring()
	}
	var healthFn func() string
	if len(health) > 0 {
		healthFn = health[0]
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ring.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		if healthFn != nil {
			if s := healthFn(); s != "" {
				status = s
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if status == "draining" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"status\":%q,\"uptime_seconds\":%.0f,\"queries_completed\":%d}\n",
			status, time.Since(start).Seconds(), QueriesCompleted.Value())
	})
	return mux
}

// Server is a monitoring HTTP server bound to a live listener; Addr
// reports the resolved address (useful with ":0"), Close shuts it down.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	closed atomic.Bool
	done   chan struct{} // closed when Serve has returned
}

// CloseDrainTimeout bounds how long Close waits for in-flight handlers
// before forcing connections shut.
const CloseDrainTimeout = 2 * time.Second

// StartServer binds addr and serves Handler(reg, ring, health...) on it
// in a background goroutine. Pass nil for the process-wide defaults; an
// optional health callback feeds /healthz.
func StartServer(addr string, reg *Registry, ring *Recent, health ...func() string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg, ring, health...)}, done: make(chan struct{})}
	go func() {
		s.srv.Serve(ln) // returns ErrServerClosed on Close
		close(s.done)
	}()
	return s, nil
}

// Addr returns the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down: the listener closes immediately (so the
// address can be rebound — `set metrics_addr` twice must not leak the
// first listener) and in-flight handlers get CloseDrainTimeout to
// finish before their connections are forced shut. Idempotent and
// nil-safe; concurrent and repeated calls return nil without waiting
// twice.
func (s *Server) Close() error {
	if s == nil || s.closed.Swap(true) {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), CloseDrainTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Drain timed out (or the context failed): force-close whatever
		// is still open so nothing leaks.
		if cerr := s.srv.Close(); err == context.DeadlineExceeded && cerr != nil {
			err = cerr
		}
	}
	<-s.done // Serve has returned; the accept goroutine is gone
	return err
}
