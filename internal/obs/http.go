package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"
)

// ServerOptions configures the monitoring endpoint. The zero value
// serves the process-wide defaults with profiling off.
type ServerOptions struct {
	// Reg is the registry /metrics exposes (Default when nil).
	Reg *Registry
	// Tracer supplies the recent-query ring for /debug/queries and the
	// in-flight set for /debug/queries?live=1 (DefaultTracer when nil).
	Tracer *Tracer
	// Health feeds /healthz ("ok" when nil or empty).
	Health func() string
	// Pprof mounts net/http/pprof under /debug/pprof/. Off by default:
	// profiling endpoints expose stacks and should be opted into.
	Pprof bool
	// RuntimeEvery starts a background runtime/metrics sampler at this
	// period (0 = scrape-time sampling only, which OnScrape already
	// provides). The sampler stops with the server.
	RuntimeEvery time.Duration
}

// Handler returns the monitoring mux:
//
//	/metrics          Prometheus text exposition of reg
//	/metrics?exemplars=1   same, with OpenMetrics exemplars on histogram buckets
//	/debug/queries    the recent-query ring buffer as JSON, newest first
//	/debug/queries?live=1  in-flight queries: phase, elapsed, rows, governor bytes
//	/debug/pprof/*    net/http/pprof (only with ServerOptions.Pprof)
//	/healthz          health: {"status":"ok|degraded|draining", ...}
//
// reg and ring default to the process-wide Default registry and the
// DefaultTracer's ring when nil. An optional health callback supplies
// the /healthz status ("ok" when absent or nil): "ok" and "degraded"
// answer 200 (degraded = serving but shedding load), "draining" answers
// 503 so load balancers stop routing to a server that is shutting down.
func Handler(reg *Registry, ring *Recent, health ...func() string) http.Handler {
	o := ServerOptions{Reg: reg}
	if len(health) > 0 {
		o.Health = health[0]
	}
	return buildMux(o, ring)
}

// HandlerOpts is Handler driven by ServerOptions: it adds the pprof
// mount (when o.Pprof) and serves ?live=1 from o.Tracer's in-flight set.
func HandlerOpts(o ServerOptions) http.Handler {
	return buildMux(o, nil)
}

// buildMux assembles the monitoring mux. ring overrides the tracer's
// ring when non-nil (the legacy Handler signature).
func buildMux(o ServerOptions, ring *Recent) http.Handler {
	reg := o.Reg
	if reg == nil {
		reg = Default
	}
	tracer := o.Tracer
	if tracer == nil {
		tracer = DefaultTracer
	}
	if ring == nil {
		ring = tracer.Ring()
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("exemplars") == "1" {
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			reg.WriteExemplars(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("live") == "1" {
			json.NewEncoder(w).Encode(tracer.Active())
			return
		}
		json.NewEncoder(w).Encode(ring.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status := "ok"
		if o.Health != nil {
			if s := o.Health(); s != "" {
				status = s
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if status == "draining" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "{\"status\":%q,\"uptime_seconds\":%.0f,\"queries_completed\":%d}\n",
			status, time.Since(start).Seconds(), QueriesCompleted.Value())
	})
	if o.Pprof {
		// The explicit registrations (not _ "net/http/pprof") keep the
		// profiling endpoints off http.DefaultServeMux and behind config.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a monitoring HTTP server bound to a live listener; Addr
// reports the resolved address (useful with ":0"), Close shuts it down.
type Server struct {
	ln      net.Listener
	srv     *http.Server
	sampler *RuntimeSampler
	closed  atomic.Bool
	done    chan struct{} // closed when Serve has returned
}

// CloseDrainTimeout bounds how long Close waits for in-flight handlers
// before forcing connections shut.
const CloseDrainTimeout = 2 * time.Second

// StartServer binds addr and serves Handler(reg, ring, health...) on it
// in a background goroutine. Pass nil for the process-wide defaults; an
// optional health callback feeds /healthz.
func StartServer(addr string, reg *Registry, ring *Recent, health ...func() string) (*Server, error) {
	return startServer(addr, Handler(reg, ring, health...), 0)
}

// StartServerOpts binds addr and serves HandlerOpts(o) on it in a
// background goroutine. When o.RuntimeEvery > 0 a background
// runtime/metrics sampler runs for the server's lifetime.
func StartServerOpts(addr string, o ServerOptions) (*Server, error) {
	return startServer(addr, HandlerOpts(o), o.RuntimeEvery)
}

func startServer(addr string, h http.Handler, runtimeEvery time.Duration) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, done: make(chan struct{})}
	if runtimeEvery > 0 {
		s.sampler = StartRuntimeSampler(runtimeEvery)
	}
	go func() {
		s.srv.Serve(ln) // returns ErrServerClosed on Close
		close(s.done)
	}()
	return s, nil
}

// Addr returns the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down: the listener closes immediately (so the
// address can be rebound — `set metrics_addr` twice must not leak the
// first listener) and in-flight handlers get CloseDrainTimeout to
// finish before their connections are forced shut. Any background
// runtime sampler stops with the server. Idempotent and nil-safe;
// concurrent and repeated calls return nil without waiting twice.
func (s *Server) Close() error {
	if s == nil || s.closed.Swap(true) {
		return nil
	}
	s.sampler.Close()
	ctx, cancel := context.WithTimeout(context.Background(), CloseDrainTimeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Drain timed out (or the context failed): force-close whatever
		// is still open so nothing leaks.
		if cerr := s.srv.Close(); err == context.DeadlineExceeded && cerr != nil {
			err = cerr
		}
	}
	<-s.done // Serve has returned; the accept goroutine is gone
	return err
}
