package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// Handler returns the monitoring mux:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/queries  the recent-query ring buffer as JSON, newest first
//	/healthz        liveness: {"status":"ok", ...}
//
// reg and ring default to the process-wide Default registry and the
// DefaultTracer's ring when nil.
func Handler(reg *Registry, ring *Recent) http.Handler {
	if reg == nil {
		reg = Default
	}
	if ring == nil {
		ring = DefaultTracer.Ring()
	}
	start := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(ring.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_seconds\":%.0f,\"queries_completed\":%d}\n",
			time.Since(start).Seconds(), QueriesCompleted.Value())
	})
	return mux
}

// Server is a monitoring HTTP server bound to a live listener; Addr
// reports the resolved address (useful with ":0"), Close shuts it down.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	closed atomic.Bool
}

// StartServer binds addr and serves Handler(reg, ring) on it in a
// background goroutine. Pass nil for the process-wide defaults.
func StartServer(addr string, reg *Registry, ring *Recent) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg, ring)}}
	go s.srv.Serve(ln) // returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the listener's resolved address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down; idempotent.
func (s *Server) Close() error {
	if s == nil || s.closed.Swap(true) {
		return nil
	}
	return s.srv.Close()
}
