package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("t_total", "test")
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddAt(uint32(w), 1)
			}
		}(w)
	}
	wg.Wait()
	c.Inc()
	c.Add(2)
	if got, want := c.Value(), int64(workers*per+3); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("g", "test")
	g.Inc()
	g.Add(5)
	g.Dec()
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	g.Set(-2)
	if g.Value() != -2 {
		t.Fatalf("gauge = %d, want -2", g.Value())
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h_seconds", "test", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`h_seconds_bucket{le="0.01"} 1`,
		`h_seconds_bucket{le="0.1"} 2`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_sum 5.555`,
		`h_seconds_count 4`,
		"# TYPE h_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	h.ObserveDuration(50 * time.Millisecond)
	if h.Count() != 5 {
		t.Fatalf("count after duration = %d, want 5", h.Count())
	}
}

func TestWritePrometheusGroupsLabels(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("multi_total", "by kind", "kind", "a")
	b2 := r.NewCounter("multi_total", "by kind", "kind", "b")
	a.Add(3)
	b2.Add(4)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# HELP multi_total") != 1 {
		t.Errorf("HELP emitted more than once:\n%s", out)
	}
	if !strings.Contains(out, `multi_total{kind="a"} 3`) || !strings.Contains(out, `multi_total{kind="b"} 4`) {
		t.Errorf("missing labeled samples:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r.NewCounter("dup_total", "x")
}

func TestDefaultInstrumentsRegistered(t *testing.T) {
	var b strings.Builder
	if err := Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"oj_queries_started_total", "oj_queries_completed_total",
		"oj_queries_failed_total", "oj_rows_produced_total",
		"oj_tuples_retrieved_total", "oj_optimize_strategy_total",
		"oj_dp_subsets_total", "oj_governor_trips_total",
		"oj_fault_injections_total", "oj_query_duration_seconds_bucket",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("default exposition missing %s", name)
		}
	}
}

func TestStrategyAndTripLookups(t *testing.T) {
	if StrategyCounter("reordered") != StrategyReordered ||
		StrategyCounter("fixed") != StrategyFixed ||
		StrategyCounter("goj") != StrategyGOJ ||
		StrategyCounter("bogus") != nil {
		t.Fatal("StrategyCounter mapping wrong")
	}
	if GovernorTrip("cancelled") != GovernorTripsCancel ||
		GovernorTrip("deadline exceeded") != GovernorTripsDeadln ||
		GovernorTrip("memory budget exceeded") != GovernorTripsMemory ||
		GovernorTrip("bogus") != nil {
		t.Fatal("GovernorTrip mapping wrong")
	}
}

// BenchmarkCounterAdd checks the hot-path cost of a counter increment:
// one atomic add, zero allocations.
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterAddParallel measures striped counters under
// contention (AddAt spreads writers across cache lines).
func BenchmarkCounterAddParallel(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("benchp_total", "bench")
	b.ReportAllocs()
	var next uint32
	b.RunParallel(func(pb *testing.PB) {
		hint := next
		next++
		for pb.Next() {
			c.AddAt(hint, 1)
		}
	})
}

// BenchmarkHistogramObserve checks a fixed-bucket observation is
// allocation-free.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("benchh_seconds", "bench", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.003)
	}
}
