package predicate

import (
	"fmt"

	"freejoin/internal/relation"
)

// Bound is a predicate compiled against a fixed scheme: attribute lookups
// are resolved to row positions once, so per-tuple evaluation touches no
// maps. Join operators bind their predicate against the concatenated
// scheme before scanning.
type Bound struct {
	eval func(row []relation.Value) Tri
}

// EvalRow evaluates the bound predicate on a positional row over the
// scheme it was bound against.
func (b Bound) EvalRow(row []relation.Value) Tri { return b.eval(row) }

// Holds reports whether the bound predicate selects the row.
func (b Bound) Holds(row []relation.Value) bool { return b.eval(row) == True }

// Bind compiles p against scheme. Every attribute p references must exist
// in the scheme; a missing attribute is an error (unlike Predicate.Eval,
// which reads missing attributes as null — Bind is the strict form used
// inside operators, where a miss indicates a planner bug).
func Bind(p Predicate, scheme *relation.Scheme) (Bound, error) {
	f, err := compile(p, scheme)
	if err != nil {
		return Bound{}, err
	}
	return Bound{eval: f}, nil
}

// MustBind is Bind that panics on error.
func MustBind(p Predicate, scheme *relation.Scheme) Bound {
	b, err := Bind(p, scheme)
	if err != nil {
		panic(err)
	}
	return b
}

type evalFn func(row []relation.Value) Tri

func compile(p Predicate, scheme *relation.Scheme) (evalFn, error) {
	switch q := p.(type) {
	case *Comparison:
		left, err := compileTerm(q.Left, scheme)
		if err != nil {
			return nil, err
		}
		right, err := compileTerm(q.Right, scheme)
		if err != nil {
			return nil, err
		}
		op := q.Op
		return func(row []relation.Value) Tri { return op.eval(left(row), right(row)) }, nil
	case *And:
		subs, err := compileAll(q.Conj, scheme)
		if err != nil {
			return nil, err
		}
		return func(row []relation.Value) Tri {
			out := True
			for _, f := range subs {
				out = out.And(f(row))
				if out == False {
					return False
				}
			}
			return out
		}, nil
	case *Or:
		subs, err := compileAll(q.Disj, scheme)
		if err != nil {
			return nil, err
		}
		return func(row []relation.Value) Tri {
			out := False
			for _, f := range subs {
				out = out.Or(f(row))
				if out == True {
					return True
				}
			}
			return out
		}, nil
	case *Not:
		sub, err := compile(q.P, scheme)
		if err != nil {
			return nil, err
		}
		return func(row []relation.Value) Tri { return sub(row).Not() }, nil
	case *IsNull:
		i := scheme.IndexOf(q.A)
		if i < 0 {
			return nil, fmt.Errorf("predicate: attribute %s not in scheme %s", q.A, scheme)
		}
		neg := q.Negated
		return func(row []relation.Value) Tri {
			if row[i].IsNull() != neg {
				return True
			}
			return False
		}, nil
	case *Literal:
		v := q.V
		return func([]relation.Value) Tri { return v }, nil
	default:
		return nil, fmt.Errorf("predicate: cannot bind predicate of type %T", p)
	}
}

func compileAll(ps []Predicate, scheme *relation.Scheme) ([]evalFn, error) {
	out := make([]evalFn, len(ps))
	for i, p := range ps {
		f, err := compile(p, scheme)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func compileTerm(t Term, scheme *relation.Scheme) (func(row []relation.Value) relation.Value, error) {
	if t.IsConst() {
		v := t.Value()
		return func([]relation.Value) relation.Value { return v }, nil
	}
	i := scheme.IndexOf(t.Attr())
	if i < 0 {
		return nil, fmt.Errorf("predicate: attribute %s not in scheme %s", t.Attr(), scheme)
	}
	return func(row []relation.Value) relation.Value { return row[i] }, nil
}

// EquiParts inspects a predicate and, when it is a pure conjunction of
// attribute equalities that split across the two schemes, returns the
// paired key columns: left[i] in lsch equates with right[i] in rsch. Hash
// and merge joins use this to choose a fast path; ok is false for any
// other predicate shape (they fall back to nested loops).
func EquiParts(p Predicate, lsch, rsch *relation.Scheme) (left, right []relation.Attr, ok bool) {
	for _, c := range Conjuncts(p) {
		cmp, isCmp := c.(*Comparison)
		if !isCmp || cmp.Op != EqOp || cmp.Left.IsConst() || cmp.Right.IsConst() {
			return nil, nil, false
		}
		a, b := cmp.Left.Attr(), cmp.Right.Attr()
		switch {
		case lsch.Contains(a) && rsch.Contains(b):
			left = append(left, a)
			right = append(right, b)
		case lsch.Contains(b) && rsch.Contains(a):
			left = append(left, b)
			right = append(right, a)
		default:
			return nil, nil, false
		}
	}
	return left, right, len(left) > 0
}
