package predicate

import (
	"testing"
	"testing/quick"

	"freejoin/internal/relation"
)

func TestBindMatchesEval(t *testing.T) {
	sch := relation.MustScheme(ra, rb, sa)
	preds := []Predicate{
		Eq(ra, sa),
		EqConst(rb, relation.Int(2)),
		Cmp(GtOp, Col(ra), Col(rb)),
		NewAnd(Eq(ra, sa), Cmp(LeOp, Col(rb), Const(relation.Int(5)))),
		NewOr(NewIsNull(ra), Eq(rb, sa)),
		NewNot(Eq(ra, rb)),
		NewIsNotNull(sa),
		TruePred, FalsePred,
	}
	f := func(a, b, c int8, na, nb, nc bool) bool {
		mk := func(x int8, null bool) relation.Value {
			if null {
				return relation.Null()
			}
			return relation.Int(int64(x % 4))
		}
		row := []relation.Value{mk(a, na), mk(b, nb), mk(c, nc)}
		tp := relation.MustTuple(sch, row...)
		for _, p := range preds {
			bound := MustBind(p, sch)
			if bound.EvalRow(row) != p.Eval(tp) {
				return false
			}
			if bound.Holds(row) != (p.Eval(tp) == True) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBindMissingAttrFails(t *testing.T) {
	sch := relation.MustScheme(ra)
	for _, p := range []Predicate{
		Eq(ra, sa),
		NewIsNull(sa),
		NewAnd(EqConst(ra, relation.Int(1)), Eq(ra, sa)),
		NewOr(EqConst(ra, relation.Int(1)), Eq(ra, sa)),
		NewNot(Eq(ra, sa)),
	} {
		if _, err := Bind(p, sch); err == nil {
			t.Errorf("Bind(%v) over %v should fail", p, sch)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustBind should panic")
			}
		}()
		MustBind(Eq(ra, sa), sch)
	}()
}

func TestBindShortCircuit(t *testing.T) {
	sch := relation.MustScheme(ra, rb)
	row := []relation.Value{relation.Int(1), relation.Null()}
	and := MustBind(NewAnd(EqConst(ra, relation.Int(2)), Eq(ra, rb)), sch)
	if and.EvalRow(row) != False {
		t.Error("F and U must be False")
	}
	or := MustBind(NewOr(EqConst(ra, relation.Int(1)), Eq(ra, rb)), sch)
	if or.EvalRow(row) != True {
		t.Error("T or U must be True")
	}
}

func TestEquiParts(t *testing.T) {
	lsch := relation.SchemeOf("R", "a", "b")
	rsch := relation.SchemeOf("S", "a", "b")
	sb := relation.A("S", "b")

	// Simple equijoin.
	l, r, ok := EquiParts(Eq(ra, sa), lsch, rsch)
	if !ok || len(l) != 1 || l[0] != ra || r[0] != sa {
		t.Fatalf("EquiParts simple: %v %v %v", l, r, ok)
	}
	// Reversed operand order still resolves.
	l, r, ok = EquiParts(Eq(sa, ra), lsch, rsch)
	if !ok || l[0] != ra || r[0] != sa {
		t.Fatalf("EquiParts reversed: %v %v %v", l, r, ok)
	}
	// Multi-conjunct equijoin.
	l, r, ok = EquiParts(NewAnd(Eq(ra, sa), Eq(rb, sb)), lsch, rsch)
	if !ok || len(l) != 2 {
		t.Fatalf("EquiParts multi: %v %v %v", l, r, ok)
	}
	// Non-equi conjunct disables the fast path.
	if _, _, ok = EquiParts(NewAnd(Eq(ra, sa), Cmp(LtOp, Col(rb), Col(sb))), lsch, rsch); ok {
		t.Error("non-equi conjunct must disable EquiParts")
	}
	// Constant comparison disables it.
	if _, _, ok = EquiParts(EqConst(ra, relation.Int(1)), lsch, rsch); ok {
		t.Error("constant comparison must disable EquiParts")
	}
	// Same-side equality disables it.
	if _, _, ok = EquiParts(Eq(ra, rb), lsch, rsch); ok {
		t.Error("same-side equality must disable EquiParts")
	}
	// Disjunction disables it.
	if _, _, ok = EquiParts(NewOr(Eq(ra, sa), Eq(rb, sb)), lsch, rsch); ok {
		t.Error("Or must disable EquiParts")
	}
}
