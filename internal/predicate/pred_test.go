package predicate

import (
	"testing"

	"freejoin/internal/relation"
)

var (
	ra = relation.A("R", "a")
	rb = relation.A("R", "b")
	sa = relation.A("S", "a")
)

func tup(vals ...relation.Value) relation.Tuple {
	attrs := []relation.Attr{ra, rb, sa}
	return relation.MustTuple(relation.MustScheme(attrs[:len(vals)]...), vals...)
}

func TestTriTables(t *testing.T) {
	vals := []Tri{False, Unknown, True}
	andTable := [3][3]Tri{
		{False, False, False},
		{False, Unknown, Unknown},
		{False, Unknown, True},
	}
	orTable := [3][3]Tri{
		{False, Unknown, True},
		{Unknown, Unknown, True},
		{True, True, True},
	}
	notTable := [3]Tri{True, Unknown, False}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != andTable[i][j] {
				t.Errorf("%v AND %v = %v", a, b, got)
			}
			if got := a.Or(b); got != orTable[i][j] {
				t.Errorf("%v OR %v = %v", a, b, got)
			}
		}
		if got := a.Not(); got != notTable[i] {
			t.Errorf("NOT %v = %v", a, got)
		}
	}
	if !True.Holds() || False.Holds() || Unknown.Holds() {
		t.Error("Holds must select only True")
	}
	if False.String() != "false" || Unknown.String() != "unknown" || True.String() != "true" {
		t.Error("Tri.String broken")
	}
}

func TestComparisonEval(t *testing.T) {
	i := relation.Int
	cases := []struct {
		op   CmpOp
		a, b relation.Value
		want Tri
	}{
		{EqOp, i(1), i(1), True},
		{EqOp, i(1), i(2), False},
		{NeOp, i(1), i(2), True},
		{LtOp, i(1), i(2), True},
		{LeOp, i(2), i(2), True},
		{GtOp, i(3), i(2), True},
		{GeOp, i(1), i(2), False},
		{EqOp, relation.Null(), i(1), Unknown},
		{EqOp, i(1), relation.Null(), Unknown},
		{EqOp, relation.Null(), relation.Null(), Unknown},
		{LtOp, i(1), relation.Str("x"), Unknown}, // heterogeneous
		{EqOp, i(2), relation.Float(2.0), True},  // numeric coercion
	}
	for _, tc := range cases {
		p := Cmp(tc.op, Col(ra), Col(rb))
		got := p.Eval(tup(tc.a, tc.b))
		if got != tc.want {
			t.Errorf("%v %v %v = %v, want %v", tc.a, tc.op, tc.b, got, tc.want)
		}
	}
}

func TestComparisonMissingAttrReadsNull(t *testing.T) {
	p := Eq(ra, relation.A("Z", "z"))
	if got := p.Eval(tup(relation.Int(1))); got != Unknown {
		t.Errorf("missing attr should evaluate as null -> Unknown, got %v", got)
	}
}

func TestAndOrNotEval(t *testing.T) {
	pT := EqConst(ra, relation.Int(1))
	pF := EqConst(ra, relation.Int(2))
	row := tup(relation.Int(1), relation.Null())
	pU := Eq(ra, rb) // b null -> Unknown

	if NewAnd(pT, pT).Eval(row) != True {
		t.Error("T and T")
	}
	if NewAnd(pT, pF).Eval(row) != False {
		t.Error("T and F")
	}
	if NewAnd(pT, pU).Eval(row) != Unknown {
		t.Error("T and U")
	}
	if NewAnd(pF, pU).Eval(row) != False {
		t.Error("F and U short-circuits to F")
	}
	if NewOr(pF, pT).Eval(row) != True {
		t.Error("F or T")
	}
	if NewOr(pF, pU).Eval(row) != Unknown {
		t.Error("F or U")
	}
	if NewNot(pU).Eval(row) != Unknown {
		t.Error("not U = U")
	}
	if NewNot(pT).Eval(row) != False {
		t.Error("not T = F")
	}
}

func TestNewAndFlattensAndSingleton(t *testing.T) {
	p1, p2, p3 := Eq(ra, rb), Eq(ra, sa), Eq(rb, sa)
	a := NewAnd(NewAnd(p1, p2), p3)
	and, ok := a.(*And)
	if !ok || len(and.Conj) != 3 {
		t.Fatalf("flattening failed: %v", a)
	}
	if NewAnd(p1) != p1 {
		t.Error("singleton And must unwrap")
	}
	o := NewOr(NewOr(p1, p2), p3)
	or, ok := o.(*Or)
	if !ok || len(or.Disj) != 3 {
		t.Fatalf("Or flattening failed: %v", o)
	}
	if NewOr(p2) != p2 {
		t.Error("singleton Or must unwrap")
	}
}

func TestIsNullEval(t *testing.T) {
	row := tup(relation.Null(), relation.Int(1))
	if NewIsNull(ra).Eval(row) != True {
		t.Error("a is null")
	}
	if NewIsNull(rb).Eval(row) != False {
		t.Error("b is null must be false")
	}
	if NewIsNotNull(ra).Eval(row) != False {
		t.Error("a is not null must be false")
	}
	if NewIsNotNull(rb).Eval(row) != True {
		t.Error("b is not null")
	}
}

func TestLiteral(t *testing.T) {
	row := tup(relation.Int(1))
	if TruePred.Eval(row) != True || FalsePred.Eval(row) != False {
		t.Error("literals broken")
	}
	if len(TruePred.Attrs()) != 0 {
		t.Error("literal references no attrs")
	}
}

func TestAttrs(t *testing.T) {
	p := NewAnd(Eq(ra, sa), NewOr(EqConst(rb, relation.Int(1)), NewIsNull(ra)))
	attrs := p.Attrs()
	if len(attrs) != 3 || !attrs.Contains(ra) || !attrs.Contains(rb) || !attrs.Contains(sa) {
		t.Errorf("Attrs = %v", attrs.Sorted())
	}
	if rels := Rels(p); len(rels) != 2 || rels[0] != "R" || rels[1] != "S" {
		t.Errorf("Rels = %v", rels)
	}
}

func TestStrongness(t *testing.T) {
	rSet := relation.NewAttrSet(ra, rb)
	sSet := relation.NewAttrSet(sa)

	cases := []struct {
		name string
		p    Predicate
		set  relation.AttrSet
		want bool
	}{
		{"equality is strong wrt its operand", Eq(ra, sa), rSet, true},
		{"equality is strong wrt the other side too", Eq(ra, sa), sSet, true},
		{"equality not referencing the set", Eq(ra, rb), sSet, false},
		{"comparison vs constant is strong", EqConst(ra, relation.Int(1)), rSet, true},
		{"is-null is NOT strong (Example 3)", NewIsNull(ra), rSet, false},
		{"is-not-null is strong", NewIsNotNull(ra), rSet, true},
		{"eq OR is-null is NOT strong (Example 3's P_bc)",
			NewOr(Eq(ra, sa), NewIsNull(ra)), rSet, false},
		{"eq OR eq is strong when both reference the set",
			NewOr(Eq(ra, sa), Eq(rb, sa)), rSet, true},
		{"eq OR eq not strong when one disjunct misses the set",
			NewOr(Eq(ra, sa), EqConst(sa, relation.Int(1))), rSet, false},
		{"conjunction is strong if any conjunct is",
			NewAnd(NewIsNull(ra), Eq(rb, sa)), rSet, true},
		{"negated comparison still cannot be True on nulls",
			NewNot(Eq(ra, sa)), rSet, true},
		{"negated is-null is strong", NewNot(NewIsNull(ra)), rSet, true},
		{"negated is-not-null is not strong", NewNot(NewIsNotNull(ra)), rSet, false},
		{"true literal is not strong", TruePred, rSet, false},
		{"false literal is vacuously strong", FalsePred, rSet, true},
		{"constant-false comparison is strong",
			Cmp(EqOp, Const(relation.Int(1)), Const(relation.Int(2))), rSet, true},
		{"constant-true comparison is not strong",
			Cmp(EqOp, Const(relation.Int(1)), Const(relation.Int(1))), rSet, false},
	}
	for _, tc := range cases {
		if got := StrongWRT(tc.p, tc.set); got != tc.want {
			t.Errorf("%s: StrongWRT(%v, %v) = %v, want %v", tc.name, tc.p, tc.set.Sorted(), got, tc.want)
		}
	}
}

// TestStrongnessSound verifies the analysis is sound: whenever StrongWRT
// says a predicate is strong w.r.t. {a}, evaluating it on tuples with a
// null never yields True.
func TestStrongnessSound(t *testing.T) {
	preds := []Predicate{
		Eq(ra, rb), Eq(ra, sa), NewIsNull(ra), NewIsNotNull(ra),
		NewOr(Eq(ra, sa), NewIsNull(ra)),
		NewAnd(Eq(ra, sa), NewIsNull(rb)),
		NewNot(Eq(ra, sa)),
		NewNot(NewAnd(NewIsNull(ra), NewIsNull(rb))),
		TruePred, FalsePred,
	}
	vals := []relation.Value{relation.Null(), relation.Int(0), relation.Int(1), relation.Str("x")}
	set := relation.NewAttrSet(ra)
	for _, p := range preds {
		if !StrongWRT(p, set) {
			continue
		}
		for _, bv := range vals {
			for _, sv := range vals {
				row := tup(relation.Null(), bv, sv)
				if p.Eval(row) == True {
					t.Errorf("unsound: %v declared strong wrt {R.a} but True on %v", p, row)
				}
			}
		}
	}
}

func TestStrongWRTScheme(t *testing.T) {
	sch := relation.SchemeOf("R", "a", "b")
	if !StrongWRTScheme(Eq(ra, sa), sch) {
		t.Error("eq referencing R.a is strong wrt scheme of R")
	}
	if StrongWRTScheme(EqConst(sa, relation.Int(1)), sch) {
		t.Error("predicate not touching R cannot be strong wrt R")
	}
}

func TestConjuncts(t *testing.T) {
	p1, p2 := Eq(ra, sa), Eq(rb, sa)
	cs := Conjuncts(NewAnd(p1, p2))
	if len(cs) != 2 {
		t.Fatalf("Conjuncts = %d", len(cs))
	}
	if cs := Conjuncts(p1); len(cs) != 1 || cs[0] != Predicate(p1) {
		t.Error("single predicate is its own conjunct")
	}
}

func TestStringRendering(t *testing.T) {
	p := NewAnd(
		Eq(ra, sa),
		NewOr(EqConst(rb, relation.Str("x")), NewIsNull(rb)),
		NewNot(Cmp(LtOp, Col(ra), Const(relation.Int(3)))),
	)
	got := p.String()
	want := "R.a = S.a and (R.b = 'x' or R.b is null) and not (R.a < 3)"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if NewIsNotNull(ra).String() != "R.a is not null" {
		t.Error("is not null rendering")
	}
	for op, s := range map[CmpOp]string{EqOp: "=", NeOp: "<>", LtOp: "<", LeOp: "<=", GtOp: ">", GeOp: ">=", CmpOp(77): "?"} {
		if op.String() != s {
			t.Errorf("op %d renders %q", op, op.String())
		}
	}
}
