package predicate

import (
	"fmt"
	"strings"

	"freejoin/internal/relation"
)

// Predicate is a truth-valued function of a tuple. Implementations are
// immutable; they may be shared freely between expression trees.
type Predicate interface {
	// Eval computes the predicate's truth value on a tuple. Attributes the
	// predicate references that are missing from the tuple's scheme are
	// treated as null; operators normally Bind predicates instead, which
	// validates the scheme up front.
	Eval(t relation.Tuple) Tri

	// Attrs returns the set of attributes the predicate references.
	Attrs() relation.AttrSet

	// possible abstractly evaluates the predicate given that every
	// attribute in nulled is null and every other attribute is arbitrary.
	// It returns the set of truth values the predicate could take.
	possible(nulled relation.AttrSet) triSet

	fmt.Stringer
}

// StrongWRT reports whether p is provably strong with respect to the
// attribute set s: whenever all attributes of s are null, p cannot hold.
// The analysis is conservative — a false answer means "not provably
// strong", never that a counterexample exists.
func StrongWRT(p Predicate, s relation.AttrSet) bool {
	return !p.possible(s).has(True)
}

// StrongWRTScheme reports strongness with respect to all attributes of a
// scheme (the paper's "strong with respect to a relation R").
func StrongWRTScheme(p Predicate, sch *relation.Scheme) bool {
	return StrongWRT(p, sch.AttrSet())
}

// Rels returns the sorted ground-relation names the predicate references.
func Rels(p Predicate) []string { return p.Attrs().Rels() }

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	EqOp CmpOp = iota
	NeOp
	LtOp
	LeOp
	GtOp
	GeOp
)

// String returns the SQL spelling of the operator.
func (o CmpOp) String() string {
	switch o {
	case EqOp:
		return "="
	case NeOp:
		return "<>"
	case LtOp:
		return "<"
	case LeOp:
		return "<="
	case GtOp:
		return ">"
	case GeOp:
		return ">="
	default:
		return "?"
	}
}

func (o CmpOp) eval(a, b relation.Value) Tri {
	if a.IsNull() || b.IsNull() {
		return Unknown
	}
	if !a.Comparable(b) {
		// Heterogeneous comparison: SQL would reject it statically; our
		// dynamically-typed evaluator treats it as Unknown, which keeps
		// comparisons strong and evaluation total.
		return Unknown
	}
	c := a.Compare(b)
	var ok bool
	switch o {
	case EqOp:
		ok = c == 0
	case NeOp:
		ok = c != 0
	case LtOp:
		ok = c < 0
	case LeOp:
		ok = c <= 0
	case GtOp:
		ok = c > 0
	case GeOp:
		ok = c >= 0
	}
	if ok {
		return True
	}
	return False
}

// Term is an operand of a comparison: an attribute or a constant.
type Term struct {
	attr    relation.Attr
	isConst bool
	val     relation.Value
}

// Col makes an attribute term.
func Col(a relation.Attr) Term { return Term{attr: a} }

// Const makes a constant term.
func Const(v relation.Value) Term { return Term{isConst: true, val: v} }

// IsConst reports whether the term is a constant.
func (t Term) IsConst() bool { return t.isConst }

// Attr returns the attribute of a column term (zero Attr for constants).
func (t Term) Attr() relation.Attr { return t.attr }

// Value returns the constant of a constant term.
func (t Term) Value() relation.Value { return t.val }

func (t Term) get(tp relation.Tuple) relation.Value {
	if t.isConst {
		return t.val
	}
	v, _ := tp.Get(t.attr) // absent attribute reads as null
	return v
}

// String renders the term.
func (t Term) String() string {
	if t.isConst {
		if t.val.Kind() == relation.KindString {
			return "'" + t.val.String() + "'"
		}
		return t.val.String()
	}
	return t.attr.String()
}

// Comparison is "left op right" under SQL null semantics.
type Comparison struct {
	Op          CmpOp
	Left, Right Term
}

// Cmp builds a comparison predicate.
func Cmp(op CmpOp, left, right Term) *Comparison {
	return &Comparison{Op: op, Left: left, Right: right}
}

// Eq builds the equality "a = b" of two attributes — the common equijoin
// conjunct.
func Eq(a, b relation.Attr) *Comparison { return Cmp(EqOp, Col(a), Col(b)) }

// EqConst builds "a = v".
func EqConst(a relation.Attr, v relation.Value) *Comparison {
	return Cmp(EqOp, Col(a), Const(v))
}

// Eval implements Predicate.
func (c *Comparison) Eval(t relation.Tuple) Tri {
	return c.Op.eval(c.Left.get(t), c.Right.get(t))
}

// Attrs implements Predicate.
func (c *Comparison) Attrs() relation.AttrSet {
	s := relation.NewAttrSet()
	if !c.Left.isConst {
		s.Add(c.Left.attr)
	}
	if !c.Right.isConst {
		s.Add(c.Right.attr)
	}
	return s
}

func (c *Comparison) possible(nulled relation.AttrSet) triSet {
	leftNull := !c.Left.isConst && nulled.Contains(c.Left.attr)
	rightNull := !c.Right.isConst && nulled.Contains(c.Right.attr)
	if leftNull || rightNull {
		return setUnknown
	}
	if c.Left.isConst && c.Right.isConst {
		return single(c.Op.eval(c.Left.val, c.Right.val))
	}
	// An attribute outside the nulled set may itself hold null at run
	// time, so Unknown stays possible.
	return setAll
}

// String implements Predicate.
func (c *Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// And is n-ary conjunction. Conjuncts at the top level of a join predicate
// become the individual edges of the query graph.
type And struct{ Conj []Predicate }

// NewAnd conjoins predicates, flattening nested Ands.
func NewAnd(ps ...Predicate) Predicate {
	flat := make([]Predicate, 0, len(ps))
	for _, p := range ps {
		if a, ok := p.(*And); ok {
			flat = append(flat, a.Conj...)
		} else {
			flat = append(flat, p)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &And{Conj: flat}
}

// Eval implements Predicate.
func (a *And) Eval(t relation.Tuple) Tri {
	out := True
	for _, p := range a.Conj {
		out = out.And(p.Eval(t))
		if out == False {
			return False
		}
	}
	return out
}

// Attrs implements Predicate.
func (a *And) Attrs() relation.AttrSet {
	s := relation.NewAttrSet()
	for _, p := range a.Conj {
		s.AddAll(p.Attrs())
	}
	return s
}

func (a *And) possible(nulled relation.AttrSet) triSet {
	out := single(True)
	for _, p := range a.Conj {
		out = out.apply2(p.possible(nulled), Tri.And)
	}
	return out
}

// String implements Predicate.
func (a *And) String() string { return joinStrings(a.Conj, " and ") }

// Or is n-ary disjunction.
type Or struct{ Disj []Predicate }

// NewOr disjoins predicates, flattening nested Ors.
func NewOr(ps ...Predicate) Predicate {
	flat := make([]Predicate, 0, len(ps))
	for _, p := range ps {
		if o, ok := p.(*Or); ok {
			flat = append(flat, o.Disj...)
		} else {
			flat = append(flat, p)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return &Or{Disj: flat}
}

// Eval implements Predicate.
func (o *Or) Eval(t relation.Tuple) Tri {
	out := False
	for _, p := range o.Disj {
		out = out.Or(p.Eval(t))
		if out == True {
			return True
		}
	}
	return out
}

// Attrs implements Predicate.
func (o *Or) Attrs() relation.AttrSet {
	s := relation.NewAttrSet()
	for _, p := range o.Disj {
		s.AddAll(p.Attrs())
	}
	return s
}

func (o *Or) possible(nulled relation.AttrSet) triSet {
	out := single(False)
	for _, p := range o.Disj {
		out = out.apply2(p.possible(nulled), Tri.Or)
	}
	return out
}

// String implements Predicate.
func (o *Or) String() string { return "(" + joinStrings(o.Disj, " or ") + ")" }

// Not negates a predicate under Kleene logic.
type Not struct{ P Predicate }

// NewNot builds a negation.
func NewNot(p Predicate) *Not { return &Not{P: p} }

// Eval implements Predicate.
func (n *Not) Eval(t relation.Tuple) Tri { return n.P.Eval(t).Not() }

// Attrs implements Predicate.
func (n *Not) Attrs() relation.AttrSet { return n.P.Attrs() }

func (n *Not) possible(nulled relation.AttrSet) triSet {
	return n.P.possible(nulled).apply1(Tri.Not)
}

// String implements Predicate.
func (n *Not) String() string { return "not (" + n.P.String() + ")" }

// IsNull tests an attribute for null; it never yields Unknown. A predicate
// containing "a is null" positively is the canonical non-strong predicate
// (Example 3 of the paper).
type IsNull struct {
	A       relation.Attr
	Negated bool // "is not null"
}

// NewIsNull builds "a is null".
func NewIsNull(a relation.Attr) *IsNull { return &IsNull{A: a} }

// NewIsNotNull builds "a is not null".
func NewIsNotNull(a relation.Attr) *IsNull { return &IsNull{A: a, Negated: true} }

// Eval implements Predicate.
func (p *IsNull) Eval(t relation.Tuple) Tri {
	v, _ := t.Get(p.A)
	if v.IsNull() != p.Negated {
		return True
	}
	return False
}

// Attrs implements Predicate.
func (p *IsNull) Attrs() relation.AttrSet { return relation.NewAttrSet(p.A) }

func (p *IsNull) possible(nulled relation.AttrSet) triSet {
	if nulled.Contains(p.A) {
		if p.Negated {
			return setFalse
		}
		return setTrue
	}
	return setFalse | setTrue
}

// String implements Predicate.
func (p *IsNull) String() string {
	if p.Negated {
		return p.A.String() + " is not null"
	}
	return p.A.String() + " is null"
}

// Literal is a constant truth value; TruePred and FalsePred are the usual
// instances.
type Literal struct{ V Tri }

// TruePred always holds; FalsePred never holds.
var (
	TruePred  = &Literal{V: True}
	FalsePred = &Literal{V: False}
)

// Eval implements Predicate.
func (l *Literal) Eval(relation.Tuple) Tri { return l.V }

// Attrs implements Predicate.
func (l *Literal) Attrs() relation.AttrSet { return relation.NewAttrSet() }

func (l *Literal) possible(relation.AttrSet) triSet { return single(l.V) }

// String implements Predicate.
func (l *Literal) String() string { return l.V.String() }

// Conjuncts splits a predicate into its top-level conjuncts; a non-And
// predicate is its own single conjunct. Query-graph construction gives
// each conjunct of a join its own edge.
func Conjuncts(p Predicate) []Predicate {
	if a, ok := p.(*And); ok {
		return append([]Predicate(nil), a.Conj...)
	}
	return []Predicate{p}
}

func joinStrings(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, sep)
}
