// Package predicate implements restriction and join predicates over the
// relational model of package relation, using SQL-style three-valued logic
// (comparisons against null are Unknown, and only True selects a tuple).
//
// Its central analysis is the paper's notion of a predicate being *strong*
// with respect to a set of attributes S: whenever a tuple is null on all of
// S, the predicate does not hold. Strongness of outerjoin predicates with
// respect to the null-supplied relation is one of the two preconditions of
// the free-reorderability theorem (Theorem 1) and of identity 12.
package predicate

// Tri is a three-valued truth value.
type Tri uint8

// Truth values. The zero value is False.
const (
	False Tri = iota
	Unknown
	True
)

// String returns the truth value's name.
func (t Tri) String() string {
	switch t {
	case False:
		return "false"
	case Unknown:
		return "unknown"
	case True:
		return "true"
	default:
		return "Tri(?)"
	}
}

// Holds reports whether the truth value selects a tuple: only True does.
// This makes every comparison automatically strong w.r.t. its operands,
// matching the paper's treatment of join predicates over nullable columns.
func (t Tri) Holds() bool { return t == True }

// And is Kleene conjunction.
func (t Tri) And(u Tri) Tri {
	if t == False || u == False {
		return False
	}
	if t == Unknown || u == Unknown {
		return Unknown
	}
	return True
}

// Or is Kleene disjunction.
func (t Tri) Or(u Tri) Tri {
	if t == True || u == True {
		return True
	}
	if t == Unknown || u == Unknown {
		return Unknown
	}
	return False
}

// Not is Kleene negation.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// triSet is a set of possible truth values, used by the abstract
// interpreter behind the strongness analysis.
type triSet uint8

const (
	setFalse   triSet = 1 << False
	setUnknown triSet = 1 << Unknown
	setTrue    triSet = 1 << True
	setAll            = setFalse | setUnknown | setTrue
)

func single(t Tri) triSet { return 1 << t }

func (s triSet) has(t Tri) bool { return s&(1<<t) != 0 }

// apply lifts a binary Tri operation to sets (cross product).
func (s triSet) apply2(u triSet, op func(Tri, Tri) Tri) triSet {
	var out triSet
	for a := False; a <= True; a++ {
		if !s.has(a) {
			continue
		}
		for b := False; b <= True; b++ {
			if u.has(b) {
				out |= single(op(a, b))
			}
		}
	}
	return out
}

// apply1 lifts a unary Tri operation to sets.
func (s triSet) apply1(op func(Tri) Tri) triSet {
	var out triSet
	for a := False; a <= True; a++ {
		if s.has(a) {
			out |= single(op(a))
		}
	}
	return out
}
