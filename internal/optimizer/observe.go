package optimizer

import (
	"time"

	"freejoin/internal/obs"
)

// recordTrace feeds a finished optimization decision into the
// process-wide metrics: one strategy count per optimization plus the DP
// search volume. Called once per public entry point (OptimizeTrace,
// OptimizeWithGOJTrace, PlanQueryTrace, OptimizeGraphTrace) after the
// strategy is final, so an OptimizeWithGOJ run that upgrades "fixed" to
// "goj" counts once, under the strategy actually returned.
func recordTrace(tr *Trace) {
	if tr == nil {
		return
	}
	if c := obs.StrategyCounter(tr.Strategy); c != nil {
		c.Inc()
	}
	obs.DPSubsets.Add(int64(tr.Subsets))
	obs.DPCandidates.Add(int64(tr.Candidates))
}

// PhaseSpans converts a measured optimize call into its tracer spans:
// the "analyze" phase (the free-reorderability / nice-graph check, whose
// duration the trace records) followed by the "optimize" phase (the DP
// and plan construction, the remainder of the interval), laid out back
// to back from start. Callers time the optimize entry point themselves:
//
//	t0 := time.Now()
//	p, tr, err := o.PlanQueryTrace(q)
//	qt.AddSpans(optimizer.PhaseSpans(tr, t0, time.Since(t0)))
func PhaseSpans(tr *Trace, start time.Time, total time.Duration) []obs.Span {
	var analyze time.Duration
	if tr != nil {
		analyze = tr.AnalyzeTime
	}
	if analyze > total {
		analyze = total
	}
	return []obs.Span{
		{Name: "analyze", Cat: "phase", Start: start, Dur: analyze},
		{Name: "optimize", Cat: "phase", Start: start.Add(analyze), Dur: total - analyze},
	}
}
