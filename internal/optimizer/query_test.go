package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

func restOn(rel string, v int64) predicate.Predicate {
	return predicate.EqConst(relation.A(rel, "a"), relation.Int(v))
}

// TestPlanQueryCorrectness: the full pipeline (simplify + pushdown + DP +
// filters) matches reference evaluation on randomized restricted queries.
func TestPlanQueryCorrectness(t *testing.T) {
	rnd := rand.New(rand.NewSource(71))
	reorderedCount := 0
	for trial := 0; trial < 120; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		q := its[rnd.Intn(len(its))]
		rels := q.Relations()
		for k := rnd.Intn(3); k > 0; k-- {
			q = expr.NewRestrict(q, restOn(rels[rnd.Intn(len(rels))], int64(rnd.Intn(3))))
		}
		db := workload.RandomDB(rnd, g, 6)
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		o := New(catalogFor(db))
		p, reordered, err := o.PlanQuery(q)
		if err != nil {
			t.Fatalf("trial %d: %v\nq=%s", trial, err, q.StringWithPreds())
		}
		if reordered {
			reorderedCount++
		}
		got, _, err := o.Execute(p)
		if err != nil {
			t.Fatalf("trial %d: %v\nplan:\n%s", trial, err, p.Explain())
		}
		if !got.EqualBag(want) {
			t.Fatalf("trial %d: PlanQuery changed the result\nq=%s\nplan tree=%s",
				trial, q.StringWithPreds(), p.Tree())
		}
	}
	if reorderedCount == 0 {
		t.Error("pipeline never reordered")
	}
}

// TestPlanQueryPushesFilterBelowJoin: a restriction over one relation of
// a reorderable join block folds into that relation's scan, and the DP
// still reorders.
func TestPlanQueryPushesFilterBelowJoin(t *testing.T) {
	rnd := rand.New(rand.NewSource(72))
	cat := storage.NewCatalog()
	cat.AddRelation("R", workload.UniformRelation(rnd, "R", 1000, 100))
	cat.AddRelation("S", workload.UniformRelation(rnd, "S", 1000, 100))
	o := New(cat)
	q := expr.NewRestrict(
		expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		restOn("R", 7))
	p, reordered, err := o.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reordered {
		t.Fatal("restricted join block should still reorder")
	}
	ex := p.Explain()
	// The filter must sit under the join, directly over scan R.
	if !strings.Contains(ex, "filter") {
		t.Fatalf("no filter in plan:\n%s", ex)
	}
	if p.Op == expr.Restrict {
		t.Fatalf("filter should be pushed below the join:\n%s", ex)
	}
	out, _, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("rows = %d, want 1 (key-key join on a filtered key)", out.Len())
	}
}

// TestPlanQuerySimplifiesOuterjoin: a strong restriction over the
// null-supplied side converts the outerjoin, after which the block is a
// plain join and reorders.
func TestPlanQuerySimplifiesOuterjoin(t *testing.T) {
	rnd := rand.New(rand.NewSource(73))
	db := expr.DB{
		"R": workload.RandomRelation(rnd, "R", 20),
		"S": workload.RandomRelation(rnd, "S", 20),
	}
	o := New(catalogFor(db))
	q := expr.NewRestrict(
		expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		restOn("S", 1))
	p, reordered, err := o.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reordered {
		t.Fatal("after simplification the block is a plain join")
	}
	if strings.Contains(p.Explain(), "leftouterjoin") {
		t.Fatalf("outerjoin should have been simplified:\n%s", p.Explain())
	}
	want, _ := q.Eval(db)
	got, _, err := o.Execute(p)
	if err != nil || !got.EqualBag(want) {
		t.Fatal("pipeline changed the result")
	}
}

// TestPlanQueryFixedFallback: non-reorderable shapes still plan and run.
func TestPlanQueryFixedFallback(t *testing.T) {
	rnd := rand.New(rand.NewSource(74))
	db := expr.DB{
		"X": workload.RandomRelation(rnd, "X", 8),
		"Y": workload.RandomRelation(rnd, "Y", 8),
		"Z": workload.RandomRelation(rnd, "Z", 8),
	}
	o := New(catalogFor(db))
	q := expr.NewRestrict(
		expr.NewOuter(expr.NewLeaf("X"),
			expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), eqp("Y", "Z")),
			eqp("X", "Y")),
		predicate.NewIsNull(relation.A("Y", "a"))) // non-strong: no simplification
	p, reordered, err := o.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if reordered {
		t.Fatal("Example 2 shape must not reorder")
	}
	want, _ := q.Eval(db)
	got, _, err := o.Execute(p)
	if err != nil || !got.EqualBag(want) {
		t.Fatal("fixed fallback wrong")
	}
}

func TestPlanQueryErrors(t *testing.T) {
	o := New(storage.NewCatalog())
	q := expr.NewRestrict(expr.NewLeaf("NOPE"), restOn("NOPE", 1))
	if _, _, err := o.PlanQuery(q); err == nil {
		t.Error("unknown table must fail")
	}
	anti := expr.NewAnti(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S"))
	if _, _, err := o.PlanQuery(anti); err == nil {
		t.Error("antijoin plans unsupported")
	}
}

// TestPlanQueryIndexScan: a pushed-down constant equality over an
// indexed column becomes an index scan, collapsing the whole pipeline to
// a handful of retrieved tuples.
func TestPlanQueryIndexScan(t *testing.T) {
	rnd := rand.New(rand.NewSource(75))
	cat := storage.NewCatalog()
	for _, name := range []string{"R", "S"} {
		cat.AddRelation(name, workload.UniformRelation(rnd, name, 5000, 1<<30))
		tb, _ := cat.Table(name)
		if _, err := tb.BuildHashIndex("a"); err != nil {
			t.Fatal(err)
		}
	}
	o := New(cat)
	q := expr.NewRestrict(
		expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		restOn("R", 42))
	p, reordered, err := o.PlanQuery(q)
	if err != nil || !reordered {
		t.Fatalf("plan failed: %v reordered=%v", err, reordered)
	}
	if !strings.Contains(p.Explain(), "indexscan R.a = 42") {
		t.Fatalf("no index scan in plan:\n%s", p.Explain())
	}
	out, c, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("rows = %d", out.Len())
	}
	if c.TuplesRetrieved() > 5 {
		t.Errorf("retrieved %d tuples, want <= 5:\n%s", c.TuplesRetrieved(), p.Explain())
	}
	// ToExpr reflects the restriction, so the plan stays auditable.
	back := p.ToExpr()
	want, err := back.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualBag(want) {
		t.Error("ToExpr of an index-scan plan is not equivalent")
	}
}

// TestLeafPlanResidualFilter: a conjunction of an indexable equality and
// a non-indexable comparison splits into indexscan + residual filter.
func TestLeafPlanResidualFilter(t *testing.T) {
	rnd := rand.New(rand.NewSource(76))
	cat := storage.NewCatalog()
	cat.AddRelation("R", workload.UniformRelation(rnd, "R", 100, 10))
	tb, _ := cat.Table("R")
	if _, err := tb.BuildHashIndex("a"); err != nil {
		t.Fatal(err)
	}
	o := New(cat)
	filter := predicate.NewAnd(
		restOn("R", 3),
		predicate.Cmp(predicate.GtOp, predicate.Col(relation.A("R", "b")), predicate.Const(relation.Int(-1))))
	p, err := o.leafPlan("R", filter)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != expr.Restrict || p.Left.Algo != AlgoIndexScan {
		t.Fatalf("shape:\n%s", p.Explain())
	}
	out, _, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Errorf("rows = %d", out.Len())
	}
	// No index on the column: plain filter over scan.
	p2, err := o.leafPlan("R", predicate.EqConst(relation.A("R", "b"), relation.Int(1)))
	if err != nil || p2.Op != expr.Restrict || p2.Left.Algo != AlgoScan {
		t.Fatalf("non-indexed filter shape: %v %v", p2, err)
	}
	// Null constant never uses the index (null = x is Unknown).
	p3, err := o.leafPlan("R", predicate.EqConst(relation.A("R", "a"), relation.Null()))
	if err != nil || p3.Left == nil || p3.Left.Algo != AlgoScan {
		t.Fatalf("null-const filter shape: %v %v", p3, err)
	}
}

func TestStripLeafFilters(t *testing.T) {
	q := expr.NewJoin(
		expr.NewRestrict(expr.NewLeaf("R"), restOn("R", 1)),
		expr.NewRestrict(expr.NewLeaf("S"), restOn("S", 2)),
		eqp("R", "S"))
	stripped, filters, pure := stripLeafFilters(q)
	if !pure || len(filters) != 2 {
		t.Fatalf("strip: pure=%v filters=%v", pure, filters)
	}
	if stripped.Left.Op != expr.Leaf || stripped.Right.Op != expr.Leaf {
		t.Fatal("leaves not bare after strip")
	}
	// Interior restriction blocks purity.
	q2 := expr.NewJoin(
		expr.NewRestrict(
			expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
			restOn("R", 1)),
		expr.NewLeaf("T"), eqp("S", "T"))
	if _, _, pure := stripLeafFilters(q2); pure {
		t.Fatal("interior restrict must block the DP path")
	}
	// Stacked leaf filters conjoin.
	q3 := expr.NewRestrict(expr.NewLeaf("R"), restOn("R", 1))
	q3 = expr.NewJoin(q3, expr.NewLeaf("S"), eqp("R", "S"))
	_, f3, _ := stripLeafFilters(expr.NewJoin(
		expr.NewRestrict(expr.NewRestrict(expr.NewLeaf("T"), restOn("T", 1)), restOn("T", 2)),
		expr.NewLeaf("U"), eqp("T", "U")))
	if p, ok := f3["T"]; !ok || len(predicate.Conjuncts(p)) != 2 {
		t.Fatalf("stacked filters = %v", f3)
	}
}
