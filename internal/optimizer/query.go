package optimizer

import (
	"fmt"
	"time"

	"freejoin/internal/core"
	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// PlanQuery is the full §4 planning pipeline for queries that carry
// restrictions:
//
//  1. Simplify: strong restrictions convert outerjoins to joins;
//  2. PushRestrictions: conjuncts sink to the base tables they cover;
//  3. if the remaining operator block (restrictions now only at leaves
//     or on top) is freely reorderable, run the DP over its graph with
//     the leaf filters folded into the scans; otherwise keep the written
//     order. Residual top-level restrictions become Filter operators.
//
// The boolean reports whether reordering applied.
func (o *Optimizer) PlanQuery(q *expr.Node) (*Plan, bool, error) {
	p, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		return nil, false, err
	}
	return p, tr.Reordered(), nil
}

// PlanQueryTrace is PlanQuery with the decision record attached. Unlike
// OptimizeTrace, an undefined query graph is not an error here: the shell
// pipeline must still execute such queries, so they keep their written
// order and the trace records why.
func (o *Optimizer) PlanQueryTrace(q *expr.Node) (*Plan, *Trace, error) {
	q, _ = core.Simplify(q, core.SimplifyOptions{})
	q = core.PushRestrictions(q)

	// Peel restrictions that stayed on top.
	var top []predicate.Predicate
	for q.Op == expr.Restrict {
		top = append(top, q.Pred)
		q = q.Left
	}

	plan, tr, err := o.planBlock(q)
	if err != nil {
		return nil, nil, err
	}
	for i := len(top) - 1; i >= 0; i-- {
		plan = o.filterPlan(plan, top[i])
	}
	recordTrace(tr)
	return plan, tr, nil
}

// planBlock plans a join/outerjoin block whose only restrictions sit
// directly over leaves.
func (o *Optimizer) planBlock(q *expr.Node) (*Plan, *Trace, error) {
	tr := &Trace{Strategy: "fixed"}
	stripped, filters, pure := stripLeafFilters(q)
	aStart := time.Now()
	if !pure {
		tr.FallbackReason = "block is not a pure join/outerjoin tree over (filtered) base tables"
	} else if a, err := analyzeTimed(stripped, tr, aStart); err != nil {
		tr.FallbackReason = "query graph undefined: " + err.Error()
	} else if !a.Free {
		tr.FallbackReason = a.String()
	} else if a.SemiExtension {
		tr.FallbackReason = "freely reorderable only under the §6.3 semijoin extension (no physical semijoin operators)"
	} else {
		p, err := o.optimizeGraphCached(a.Graph, filters, tr)
		if err == nil {
			tr.Strategy = strategyFor(p)
			return p, tr, nil
		}
		tr.FallbackReason = "DP failed: " + err.Error()
	}
	p, err := o.planFixedRestricted(q)
	return p, tr, err
}

// analyzeTimed runs the free-reorderability analysis and records its
// duration (measured from start, which callers take before any
// pre-analysis work they want attributed to the phase) into the trace.
func analyzeTimed(q *expr.Node, tr *Trace, start time.Time) (*core.Analysis, error) {
	a, err := core.Analyze(q)
	tr.AnalyzeTime = time.Since(start)
	return a, err
}

// stripLeafFilters removes σ-over-leaf wrappers, returning the bare tree,
// the per-relation filter map, and whether the remainder is a pure
// join/outerjoin tree (no interior restrictions or other operators).
func stripLeafFilters(q *expr.Node) (*expr.Node, map[string]predicate.Predicate, bool) {
	filters := map[string]predicate.Predicate{}
	var walk func(n *expr.Node) (*expr.Node, bool)
	walk = func(n *expr.Node) (*expr.Node, bool) {
		switch n.Op {
		case expr.Leaf:
			return n, true
		case expr.Restrict:
			inner, ok := walk(n.Left)
			if ok && inner.Op == expr.Leaf {
				rel := inner.Rel
				if prev, ok := filters[rel]; ok {
					filters[rel] = predicate.NewAnd(prev, n.Pred)
				} else {
					filters[rel] = n.Pred
				}
				return inner, true
			}
			return n, false
		case expr.Join, expr.LeftOuter, expr.RightOuter:
			l, okL := walk(n.Left)
			if !okL {
				return n, false
			}
			r, okR := walk(n.Right)
			if !okR {
				return n, false
			}
			return &expr.Node{Op: n.Op, Left: l, Right: r, Pred: n.Pred}, true
		default:
			return n, false
		}
	}
	out, ok := walk(q)
	return out, filters, ok
}

// optimizeGraph is the DP of OptimizeGraph with per-relation filters
// folded into the leaf plans. When tr is non-nil the search statistics
// (subsets, splits, candidates, pruned) are recorded into it.
func (o *Optimizer) optimizeGraph(g *graph.Graph, filters map[string]predicate.Predicate, tr *Trace) (*Plan, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("optimizer: empty graph")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("optimizer: graph is not connected")
	}
	best := make(map[graph.NodeSet]*Plan)
	for _, name := range g.Nodes() {
		p, err := o.leafPlan(name, filters[name])
		if err != nil {
			return nil, err
		}
		s, err := g.SetOf(name)
		if err != nil {
			return nil, err
		}
		best[s] = p
	}
	all := g.AllNodes()
	// One ascending pass over the subset masks suffices: every proper
	// subset of s is numerically smaller than s, so both halves of any
	// split are planned before s itself is reached. The SplitMemo shares
	// connectivity flood fills and split lists across subsets — the same
	// half recurs under many supersets (Trace.MemoHits counts the wins).
	sm := expr.NewSplitMemo(g)
	for s := graph.NodeSet(1); s <= all; s++ {
		if s&all != s || s.Count() < 2 || !sm.Connected(s) {
			continue
		}
		splits := sm.Splits(s)
		if tr != nil {
			tr.Subsets++
			tr.Splits += len(splits)
		}
		var bestPlan *Plan
		cands := 0
		for _, sp := range splits {
			p1, p2 := best[sp.S1], best[sp.S2]
			if p1 == nil || p2 == nil {
				continue
			}
			for _, cand := range o.joinPlans(sp, p1, p2) {
				cands++
				if bestPlan == nil || cand.Cost < bestPlan.Cost {
					bestPlan = cand
				}
			}
		}
		if tr != nil {
			tr.Candidates += cands
		}
		if bestPlan != nil {
			best[s] = bestPlan
			if tr != nil {
				tr.Pruned += cands - 1
			}
		}
	}
	if tr != nil {
		tr.MemoHits += sm.Hits()
	}
	p := best[all]
	if p == nil {
		return nil, fmt.Errorf("optimizer: no plan (graph admits no implementing tree)")
	}
	return p, nil
}

// leafPlan plans a base-table access under an optional pushed-down
// filter. A conjunct of the form col = const over a hash-indexed column
// upgrades the access path to an index scan; remaining conjuncts apply as
// a residual filter.
func (o *Optimizer) leafPlan(name string, filter predicate.Predicate) (*Plan, error) {
	scan, err := o.scanPlan(name)
	if err != nil {
		return nil, err
	}
	if filter == nil {
		return scan, nil
	}
	t, err := o.cat.Table(name)
	if err != nil {
		return nil, err
	}
	conjuncts := predicate.Conjuncts(filter)
	for i, c := range conjuncts {
		col, val, ok := constEquality(c, name)
		if !ok {
			continue
		}
		if _, hasIdx := t.HashIndexOn(col); !hasIdx {
			continue
		}
		rows := float64(t.Stats().Rows) / ndvOf(t, col)
		if rows < 1 {
			rows = 1
		}
		p := &Plan{
			Table: name, Algo: AlgoIndexScan, IndexCol: col, IndexVal: val,
			Scheme: scan.Scheme, EstRows: rows,
			Cost: rows * costLookup,
		}
		rest := append(append([]predicate.Predicate(nil), conjuncts[:i]...), conjuncts[i+1:]...)
		if len(rest) > 0 {
			return o.filterPlan(p, predicate.NewAnd(rest...)), nil
		}
		return p, nil
	}
	return o.filterPlan(scan, filter), nil
}

// constEquality matches "rel.col = const" (either operand order).
func constEquality(p predicate.Predicate, rel string) (string, relation.Value, bool) {
	cmp, ok := p.(*predicate.Comparison)
	if !ok || cmp.Op != predicate.EqOp {
		return "", relation.Value{}, false
	}
	a, b := cmp.Left, cmp.Right
	if a.IsConst() {
		a, b = b, a
	}
	if a.IsConst() || !b.IsConst() {
		return "", relation.Value{}, false
	}
	if a.Attr().Rel != rel || b.Value().IsNull() {
		return "", relation.Value{}, false
	}
	return a.Attr().Name, b.Value(), true
}

// filterPlan wraps a plan in a Filter with a selectivity-scaled estimate.
func (o *Optimizer) filterPlan(child *Plan, pred predicate.Predicate) *Plan {
	sel := 1.0
	for _, c := range predicate.Conjuncts(pred) {
		sel *= o.conjunctSelectivity(c, child, child)
	}
	rows := child.EstRows * sel
	if rows < 1 {
		rows = 1
	}
	return &Plan{
		Op: expr.Restrict, Left: child, Pred: pred,
		Scheme: child.Scheme, EstRows: rows,
		Cost: child.Cost + child.EstRows + rows*costOutputPerRow,
	}
}

// planFixedRestricted is PlanFixed extended with Restrict nodes.
func (o *Optimizer) planFixedRestricted(q *expr.Node) (*Plan, error) {
	if q.Op == expr.Restrict {
		child, err := o.planFixedRestricted(q.Left)
		if err != nil {
			return nil, err
		}
		return o.filterPlan(child, q.Pred), nil
	}
	if q.Op == expr.Leaf {
		return o.scanPlan(q.Rel)
	}
	if q.Op != expr.Join && q.Op != expr.LeftOuter && q.Op != expr.RightOuter {
		return nil, fmt.Errorf("optimizer: cannot plan operator %s", q.Op)
	}
	l, err := o.planFixedRestricted(q.Left)
	if err != nil {
		return nil, err
	}
	r, err := o.planFixedRestricted(q.Right)
	if err != nil {
		return nil, err
	}
	op := q.Op
	if op == expr.RightOuter {
		l, r = r, l
		op = expr.LeftOuter
	}
	sp := expr.Split{Op: op, Pred: q.Pred, S1Preserved: true}
	return cheapest(o.fixedJoinPlans(sp, l, r))
}

// buildFilter lowers a Restrict plan node.
func (o *Optimizer) buildFilter(p *Plan, c *exec.Counters, ins bool, tr *Trace) (exec.Iterator, *exec.StatsNode, error) {
	child, cnode, err := o.build(p.Left, c, ins, tr)
	if err != nil {
		return nil, nil, err
	}
	var it exec.Iterator
	if size, on := o.batchRows(); on {
		it, err = exec.NewBatchFilter(child, p.Pred, size)
	} else {
		it, err = exec.NewFilter(child, p.Pred)
	}
	if err != nil {
		return nil, nil, err
	}
	wrapped, node := wrapNode(it, p, c, ins, cnode)
	return wrapped, node, nil
}
