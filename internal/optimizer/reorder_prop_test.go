package optimizer

// The metamorphic free-reorderability suite. Theorem 1 provides a free
// test oracle: for a nice query graph with strong predicates, EVERY
// implementing tree must evaluate to the same bag — so any two trees of
// the same graph are metamorphic variants of one query, and a
// disagreement anywhere (algebra evaluation, physical execution, or the
// plan cache treating two trees as different queries) is a bug with a
// reproducible seed.

import (
	"math/rand"
	"testing"

	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/plancache"
	"freejoin/internal/relation"
	"freejoin/internal/workload"
)

const (
	// metamorphicInstances is the number of successfully checked random
	// graph instances; the acceptance floor for the suite.
	metamorphicInstances = 200
	// metamorphicITCap skips graphs with too many implementing trees to
	// execute exhaustively in test time.
	metamorphicITCap = 100
	// metamorphicBaseSeed anchors the deterministic seed stream: attempt
	// k always uses seed metamorphicBaseSeed+k, so a failure log line
	// pinpoints the instance regardless of how many were skipped.
	metamorphicBaseSeed = int64(0x0990)
)

// TestMetamorphicFreeReorderability generates random nice query graphs
// with strong predicates and random NULL-bearing data, enumerates all
// implementing trees (modulo reversal, up to a size cap), and asserts:
//
//  1. the analyzer certifies the graph freely reorderable,
//  2. every tree's algebra evaluation equals the first tree's (bag
//     equality) — the paper's Theorem 1,
//  3. every tree's physical execution through the optimizer matches too,
//  4. the plan cache fingerprints every tree of the graph identically:
//     the first tree misses, every later tree hits the same plan object.
func TestMetamorphicFreeReorderability(t *testing.T) {
	// The full suite runs once per execution mode: the batched
	// evaluators and the row-at-a-time ones must both satisfy every
	// oracle, and through the shared algebra reference their bags agree
	// with each other as well.
	for _, mode := range []struct {
		name string
		size int
	}{{"batch", 0}, {"row", BatchOff}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) { runMetamorphicFreeReorderability(t, mode.size) })
	}
}

func runMetamorphicFreeReorderability(t *testing.T, batchSize int) {
	success, attempt := 0, 0
	for ; success < metamorphicInstances; attempt++ {
		if attempt >= metamorphicInstances*10 {
			t.Fatalf("only %d/%d instances after %d attempts (IT cap too tight?)",
				success, metamorphicInstances, attempt)
		}
		seed := metamorphicBaseSeed + int64(attempt)
		rnd := rand.New(rand.NewSource(seed))
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))

		count, err := expr.CountITs(g, true)
		if err != nil {
			t.Fatalf("seed %d: CountITs: %v", seed, err)
		}
		if count < 2 || count > metamorphicITCap {
			continue // deterministic skip; the seed stream moves on
		}
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatalf("seed %d: EnumerateITs: %v", seed, err)
		}
		if a := core.AnalyzeGraph(g); !a.Free {
			t.Fatalf("seed %d: generated nice graph not certified free: %s", seed, a)
		}

		db := workload.RandomDB(rnd, g, 6)
		o := New(catalogFor(db))
		o.Cache = plancache.New(metamorphicITCap)
		o.BatchSize = batchSize

		var ref *relation.Relation
		var fp string
		var shared *Plan
		for i, it := range its {
			// Oracle 1: reference algebra evaluation.
			got, err := it.Eval(db)
			if err != nil {
				t.Fatalf("seed %d tree %d: Eval: %v\ntree: %s", seed, i, err, it.StringWithPreds())
			}
			if ref == nil {
				ref = got
			} else if !got.EqualBag(ref) {
				t.Fatalf("seed %d tree %d: algebra result differs from tree 0\ntree: %s\ngraph:\n%s",
					seed, i, it.StringWithPreds(), g)
			}

			// Oracle 2: physical execution of the tree as written (no
			// reordering) through the executor.
			pf, err := o.PlanFixed(it)
			if err != nil {
				t.Fatalf("seed %d tree %d: PlanFixed: %v", seed, i, err)
			}
			rel, _, err := o.Execute(pf)
			if err != nil {
				t.Fatalf("seed %d tree %d: execute fixed: %v", seed, i, err)
			}
			if !rel.EqualBag(ref) {
				t.Fatalf("seed %d tree %d: fixed-order execution differs from algebra result\ntree: %s",
					seed, i, it.StringWithPreds())
			}

			// Oracle 3: the plan cache must see every tree of this graph
			// as the same query.
			p, tr, err := o.OptimizeTrace(it)
			if err != nil {
				t.Fatalf("seed %d tree %d: OptimizeTrace: %v", seed, i, err)
			}
			if !tr.Reordered() {
				t.Fatalf("seed %d tree %d: nice query not reordered (%s)", seed, i, tr.FallbackReason)
			}
			if i == 0 {
				if tr.CacheOutcome != "miss" {
					t.Fatalf("seed %d: first tree outcome %q; want miss", seed, tr.CacheOutcome)
				}
				fp, shared = tr.Fingerprint, p
				// The optimized plan agrees with the oracle as well.
				orel, _, err := o.Execute(p)
				if err != nil {
					t.Fatalf("seed %d: execute optimized: %v", seed, err)
				}
				if !orel.EqualBag(ref) {
					t.Fatalf("seed %d: optimized execution differs from algebra result", seed)
				}
			} else {
				if tr.Fingerprint != fp {
					t.Fatalf("seed %d tree %d: fingerprint %s != tree 0's %s\ntree: %s",
						seed, i, tr.Fingerprint, fp, it.StringWithPreds())
				}
				if tr.CacheOutcome != "hit" {
					t.Fatalf("seed %d tree %d: outcome %q; want hit", seed, i, tr.CacheOutcome)
				}
				if p != shared {
					t.Fatalf("seed %d tree %d: cache returned a different plan object", seed, i)
				}
			}
		}
		if o.Cache.Len() != 1 {
			t.Fatalf("seed %d: cache holds %d entries after one graph; want 1", seed, o.Cache.Len())
		}
		success++
	}
	t.Logf("verified %d instances (%d attempts, %d skipped)", success, attempt, attempt-success)
}

// TestNegativeOracle guards the analyzer against silently over-approving:
// random graphs that violate niceness or predicate strength must either
// be rejected by the analysis, or — if the analysis certifies them —
// actually be freely reorderable on random data. Across the corpus, the
// rejected graphs must also produce genuine counterexamples (differing
// implementing-tree results), proving the rejections are not vacuous.
func TestNegativeOracle(t *testing.T) {
	const instances = 120
	rejected, witnesses := 0, 0
	for attempt := 0; attempt < instances; attempt++ {
		seed := metamorphicBaseSeed + 100_000 + int64(attempt)
		rnd := rand.New(rand.NewSource(seed))

		var g = workload.RandomConnectedGraph(rnd, 3+rnd.Intn(2))
		if attempt%3 == 0 {
			// Example 3's shape: a nice topology whose outerjoin
			// predicate is not strong ("u.a = v.a or v.a is null").
			g = workload.JoinChainGraph(2 + rnd.Intn(2))
			nodes := g.Nodes()
			last := nodes[len(nodes)-1]
			if err := g.AddOuterEdge(last, "Z", workload.NonStrongPredicate(last, "Z")); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}

		count, err := expr.CountITs(g, false)
		if err != nil || count < 2 || count > 512 {
			continue
		}
		db := workload.RandomDB(rnd, g, 6)
		a := core.AnalyzeGraph(g)
		res, err := core.Verify(g, db)
		if err != nil {
			t.Fatalf("seed %d: Verify: %v", seed, err)
		}
		if a.Free {
			// The analyzer approved: Theorem 1 must hold on this data.
			if !res.AllEqual {
				t.Fatalf("seed %d: analyzer certified free but trees disagree\n%s vs %s\ngraph:\n%s",
					seed, res.WitnessA, res.WitnessB, g)
			}
			continue
		}
		rejected++
		if !res.AllEqual {
			witnesses++
		}
	}
	if rejected == 0 {
		t.Fatal("corpus produced no analyzer-rejected graphs; generator broken")
	}
	if witnesses == 0 {
		t.Fatalf("none of the %d rejected graphs produced a differing implementing-tree result; rejections unverified", rejected)
	}
	t.Logf("%d rejected graphs, %d with concrete counterexamples", rejected, witnesses)
}
