package optimizer

import (
	"fmt"
	"sort"

	"freejoin/internal/graph"
	"freejoin/internal/plancache"
	"freejoin/internal/predicate"
)

// optimizeGraphCached is optimizeGraph behind the plan cache. With no
// cache attached it is a plain passthrough. With one, the lookup key is
// the canonical fingerprint of the query graph plus the pushed-down
// leaf filters and the optimizer configuration, and the entry is scoped
// to the catalog's current stats epoch — any statistics or access-path
// change strands the old plan. Concurrent identical misses run the DP
// once (singleflight); only the computing caller's trace carries DP
// statistics, the others record the coalesced outcome.
//
// Cached plans are shared by every hit and must stay immutable; the
// builder never mutates a Plan (it decorates iterators), so sharing is
// safe.
func (o *Optimizer) optimizeGraphCached(g *graph.Graph, filters map[string]predicate.Predicate, tr *Trace) (*Plan, error) {
	if o.Cache == nil {
		return o.planGraph(g, filters, tr)
	}
	fp := o.fingerprintFor(g, filters)
	if tr != nil {
		tr.Fingerprint = fp.String()
	}
	v, outcome, err := o.Cache.DoAt(fp, o.cat.StatsEpoch, func() (any, error) {
		return o.planGraph(g, filters, tr)
	})
	if tr != nil {
		tr.CacheOutcome = outcome.String()
	}
	if err != nil {
		return nil, err
	}
	return v.(*Plan), nil
}

// fingerprintFor canonicalizes everything that determines the DP's
// output beyond the graph itself: pushed-down leaf filters (sorted per
// relation, conjuncts canonicalized) and planner configuration. Two
// queries collide in the cache only if all of it matches.
func (o *Optimizer) fingerprintFor(g *graph.Graph, filters map[string]predicate.Predicate) plancache.Fingerprint {
	extras := make([]string, 0, len(filters)+1)
	for rel, p := range filters {
		if p == nil {
			continue
		}
		extras = append(extras, "filter "+rel+": "+plancache.CanonPred(p))
	}
	sort.Strings(extras)
	if o.LeftDeepOnly {
		extras = append(extras, "config: left-deep-only")
	}
	if o.Spill {
		// Spilling changes the degradation wiring built into the plan's
		// iterators; toggling it must not reuse the other mode's entry.
		extras = append(extras, "config: spill")
	}
	switch o.Strategy {
	case "", "dp":
		// The default DP; both spellings produce the same plan.
	default:
		// A strategy toggle must never be served the other mode's plan.
		extras = append(extras, "config: strategy "+o.Strategy)
	}
	switch {
	case o.BatchSize < 0:
		// Row-mode plans carry different iterators than batch-mode plans;
		// a cached batch plan must never serve a row-mode request.
		extras = append(extras, "config: batch=off")
	case o.BatchSize > 0:
		extras = append(extras, fmt.Sprintf("config: batch=%d", o.BatchSize))
	}
	return plancache.Of(g, extras...)
}
