package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/workload"
)

// chainSetup builds a three-relation join chain over a random database.
func chainSetup(t testing.TB, rows int) (*Optimizer, *expr.Node, expr.DB) {
	rnd := rand.New(rand.NewSource(91))
	g := workload.JoinChainGraph(3)
	db := expr.DB{}
	for _, name := range g.Nodes() {
		db[name] = workload.UniformRelation(rnd, name, rows, int64(rows/4+1))
	}
	its, err := expr.EnumerateITs(g, true)
	if err != nil || len(its) == 0 {
		t.Fatalf("no ITs: %v", err)
	}
	return New(catalogFor(db)), its[0], db
}

func TestExplainReordered(t *testing.T) {
	o, q, _ := chainSetup(t, 20)
	p, tr, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Reordered() || tr.Strategy != "reordered" {
		t.Fatalf("trace = %+v, want reordered", tr)
	}
	if tr.Subsets == 0 || tr.Splits == 0 || tr.Candidates == 0 {
		t.Errorf("DP statistics missing: %+v", tr)
	}
	if tr.Pruned >= tr.Candidates {
		t.Errorf("pruned %d of %d candidates (must keep at least one)", tr.Pruned, tr.Candidates)
	}
	text := Explain(p, tr)
	for _, want := range []string{"scan ", "strategy: reordered", "dp: "} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain output missing %q:\n%s", want, text)
		}
	}
}

func TestExplainFallbackReason(t *testing.T) {
	rnd := rand.New(rand.NewSource(92))
	db := expr.DB{
		"X": workload.RandomRelation(rnd, "X", 6),
		"Y": workload.RandomRelation(rnd, "Y", 6),
		"Z": workload.RandomRelation(rnd, "Z", 6),
	}
	// Example 2 shape: X -> (Y - Z) is not freely reorderable.
	q := expr.NewOuter(expr.NewLeaf("X"),
		expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), eqp("Y", "Z")),
		eqp("X", "Y"))
	o := New(catalogFor(db))
	_, tr, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Reordered() {
		t.Fatal("Example 2 shape must not reorder")
	}
	if tr.FallbackReason == "" {
		t.Error("fixed-order trace must carry the analysis verdict")
	}
	if !strings.Contains(tr.String(), "fallback: ") {
		t.Errorf("trace rendering missing fallback line:\n%s", tr)
	}
}

func TestExplainAnalyze(t *testing.T) {
	o, q, db := chainSetup(t, 20)
	p, tr, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	out, c, text, err := o.ExplainAnalyze(p, tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualBag(want) {
		t.Fatal("ExplainAnalyze changed the result")
	}
	if c.RowsProduced() != int64(out.Len()) {
		t.Errorf("counters RowsProduced = %d, want %d", c.RowsProduced(), out.Len())
	}
	for _, wantStr := range []string{"actual rows=", "q-err=", "tuples=", "-- totals: "} {
		if !strings.Contains(text, wantStr) {
			t.Errorf("ExplainAnalyze output missing %q:\n%s", wantStr, text)
		}
	}
}

// TestExplainAnalyzeIndexPhantom: an index-join plan renders its inner
// table as present but not separately executed.
func TestExplainAnalyzeIndexPhantom(t *testing.T) {
	rnd := rand.New(rand.NewSource(93))
	g := workload.JoinChainGraph(2)
	db := workload.RandomDB(rnd, g, 8)
	o := New(catalogFor(db))
	for _, name := range o.CatalogOf().Tables() {
		tb, err := o.CatalogOf().Table(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range workload.NodeColumns {
			if _, err := tb.BuildHashIndex(col); err != nil {
				t.Fatal(err)
			}
		}
	}
	its, err := expr.EnumerateITs(g, true)
	if err != nil || len(its) == 0 {
		t.Fatal(err)
	}
	l, err := o.PlanFixed(its[0].Left)
	if err != nil {
		t.Fatal(err)
	}
	r, err := o.PlanFixed(its[0].Right)
	if err != nil {
		t.Fatal(err)
	}
	sp := expr.Split{Op: its[0].Op, Pred: its[0].Pred, S1Preserved: true}
	var idx *Plan
	for _, cand := range o.fixedJoinPlans(sp, l, r) {
		if cand.Algo == AlgoIndex {
			idx = cand
		}
	}
	if idx == nil {
		t.Skip("no index candidate for this predicate")
	}
	_, _, text, err := o.ExplainAnalyze(idx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "not separately executed") {
		t.Errorf("index join inner table should render as a phantom node:\n%s", text)
	}
}

func TestQErr(t *testing.T) {
	cases := []struct {
		est    float64
		actual int64
		want   float64
	}{
		{10, 10, 1}, {10, 5, 2}, {5, 10, 2}, {0, 0, 1}, {0, 4, 4}, {8, 0, 8},
	}
	for _, tc := range cases {
		if got := qerr(tc.est, tc.actual); got != tc.want {
			t.Errorf("qerr(%v, %d) = %v, want %v", tc.est, tc.actual, got, tc.want)
		}
	}
}

// BenchmarkStatsOverhead compares the uninstrumented execution path (the
// default — structurally identical to a build without the observability
// layer, since disabled instrumentation attaches no wrappers at all)
// against the instrumented path. Run with -bench StatsOverhead and
// compare the two sub-benchmarks; "disabled" is the <5%-overhead
// acceptance gate and should be indistinguishable from the seed.
func BenchmarkStatsOverhead(b *testing.B) {
	o, q, _ := chainSetup(b, 400)
	p, _, err := o.OptimizeTrace(q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var c exec.Counters
			it, err := o.Build(p, &c)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(it, &c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var c exec.Counters
			it, _, err := o.BuildInstrumented(p, &c)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(it, &c); err != nil {
				b.Fatal(err)
			}
		}
	})
}
