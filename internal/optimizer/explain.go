package optimizer

import (
	"fmt"
	"strings"
	"time"

	"freejoin/internal/exec"
	"freejoin/internal/obs"
	"freejoin/internal/relation"
)

// Trace records how the optimizer arrived at a plan: which strategy was
// chosen, why reordering was skipped when it was, and the size of the DP
// search the reordering path explored. EXPLAIN renders it under the plan
// tree so a surprising join order can be traced back to the decision that
// produced it.
type Trace struct {
	// Strategy is "reordered" (DP over the query graph), "yannakakis"
	// (the acyclic fast path: semijoin full reducer plus reduced join),
	// "fixed" (the written association, algorithm selection only), or
	// "goj" (the §6.2 generalized-outerjoin reassociation).
	Strategy string
	// FallbackReason explains a non-"reordered" strategy: the analysis
	// verdict, an undefined query graph, or a DP failure.
	FallbackReason string

	// DP search statistics (zero unless the reordering path ran).
	Subsets    int // connected subsets of size ≥ 2 considered
	Splits     int // valid splits enumerated across those subsets
	Candidates int // physical candidates generated
	Pruned     int // candidates discarded by cost comparison

	// MemoHits counts split/connectivity lookups answered by the DP's
	// SplitMemo instead of recomputed flood fills.
	MemoHits int64

	// CacheOutcome is "hit", "miss" or "coalesced" when a plan cache was
	// consulted, empty when no cache is attached. Fingerprint is the
	// compact hex form of the canonical query-graph fingerprint the
	// lookup used.
	CacheOutcome string
	Fingerprint  string

	// AnalyzeTime is the time spent in the free-reorderability analysis
	// (the nice-graph check), so the tracer can split an optimize call
	// into its analyze and DP phases.
	AnalyzeTime time.Duration

	// Degradation names the budget-pressure escape hatch wired into the
	// plan's hash joins at lowering time: "grace-hash spill" when
	// spilling is enabled (preferred — it keeps the hash strategy), or
	// the index alternative otherwise. Empty when a memory trip would
	// simply abort. Filled by BuildInstrumentedTraced, not by planning.
	Degradation string
}

// Reordered reports whether the optimizer chose the operator order (the
// DP over the query graph, or the Yannakakis fast path over its join
// tree) rather than keeping the query's written association.
func (tr *Trace) Reordered() bool {
	return tr.Strategy == "reordered" || tr.Strategy == "yannakakis"
}

// String renders the trace as indented "-- " comment lines.
func (tr *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "-- strategy: %s\n", tr.Strategy)
	if tr.FallbackReason != "" {
		fmt.Fprintf(&b, "-- fallback: %s\n", tr.FallbackReason)
	}
	if tr.Subsets > 0 {
		fmt.Fprintf(&b, "-- dp: %d connected subsets, %d splits, %d candidates (%d pruned)\n",
			tr.Subsets, tr.Splits, tr.Candidates, tr.Pruned)
	}
	if tr.MemoHits > 0 {
		fmt.Fprintf(&b, "-- memo: %d split/connectivity lookups served from the DP memo\n", tr.MemoHits)
	}
	if tr.CacheOutcome != "" {
		fmt.Fprintf(&b, "-- plancache: %s (fp %s)\n", tr.CacheOutcome, tr.Fingerprint)
	}
	if tr.Degradation != "" {
		fmt.Fprintf(&b, "-- degradation: %s\n", tr.Degradation)
	}
	return b.String()
}

// Explain renders a plan with its estimates followed by the optimizer
// trace (when one is supplied) — the static half of EXPLAIN.
func Explain(p *Plan, tr *Trace) string {
	var b strings.Builder
	b.WriteString(p.Explain())
	if tr != nil {
		b.WriteString(tr.String())
	}
	return b.String()
}

// ExplainAnalyze executes p with per-operator instrumentation and renders
// the plan tree with estimates AND actuals side by side: rows emitted,
// base tuples retrieved by each operator itself, peak buffered rows, wall
// time, and the q-error of the row estimate. The result relation and the
// global counters are returned alongside the rendering.
func (o *Optimizer) ExplainAnalyze(p *Plan, tr *Trace) (*relation.Relation, *exec.Counters, string, error) {
	return o.ExplainAnalyzeCtx(nil, p, tr)
}

// ExplainAnalyzeCtx is ExplainAnalyze under an execution context. When a
// resource limit aborts the run, the partial stats tree is still
// rendered — with the tripping operator marked — followed by governor
// events and an "aborted" trailer, and the error is returned alongside
// the text so callers can show both.
func (o *Optimizer) ExplainAnalyzeCtx(ec *exec.ExecContext, p *Plan, tr *Trace) (*relation.Relation, *exec.Counters, string, error) {
	return o.ExplainAnalyzeTraced(ec, p, tr, nil)
}

// ExplainAnalyzeTraced is ExplainAnalyzeCtx feeding a query trace: the
// build and execute phases become spans, the executed stats tree is
// synthesized into per-operator spans, and the trace's record is filled
// with the chosen implementing tree, the optimizer's strategy and
// fallback reason, the effort counters, the root q-error, and any
// governor events — everything the slow-query log and /debug/queries
// report. qt may be nil (plain ExplainAnalyzeCtx behavior).
func (o *Optimizer) ExplainAnalyzeTraced(ec *exec.ExecContext, p *Plan, tr *Trace, qt *obs.QueryTrace) (*relation.Relation, *exec.Counters, string, error) {
	var c exec.Counters
	buildStart := time.Now()
	it, root, err := o.BuildInstrumentedTraced(p, &c, tr)
	qt.AddSpan(obs.Span{Name: "build", Cat: "phase", Start: buildStart, Dur: time.Since(buildStart)})
	if err != nil {
		return nil, nil, "", err // build failed; nothing ran
	}
	execStart := time.Now()
	out, err := exec.CollectCtx(ec, it, &c)
	qt.AddSpan(obs.Span{Name: "execute", Cat: "phase", Start: execStart, Dur: time.Since(execStart)})
	qt.AddSpans(exec.SpanTree(root, execStart))
	if qt != nil {
		rec := &qt.Rec
		if tr != nil {
			rec.Strategy = tr.Strategy
			rec.FallbackReason = tr.FallbackReason
		}
		rec.PlanTree = p.Tree()
		rec.Rows = c.RowsProduced()
		rec.Tuples = c.TuplesRetrieved()
		if p.EstRows >= 0 && root.Executed() {
			rec.QError = qerr(p.EstRows, root.Stats.RowsOut)
		}
		rec.GovernorEvents = ec.Governor().Events()
	}
	var b strings.Builder
	b.WriteString(RenderStats(root))
	if tr != nil {
		b.WriteString(tr.String())
	}
	for _, ev := range ec.Governor().Events() {
		fmt.Fprintf(&b, "-- governor: %s\n", ev)
	}
	if err != nil {
		fmt.Fprintf(&b, "-- aborted: %v\n", err)
		return nil, &c, b.String(), err
	}
	fmt.Fprintf(&b, "-- totals: %d rows, %d base tuples retrieved\n",
		c.RowsProduced(), c.TuplesRetrieved())
	return out, &c, b.String(), nil
}

// RenderStats renders an executed stats tree, one indented line per
// operator.
func RenderStats(root *exec.StatsNode) string {
	var b strings.Builder
	root.Walk(func(depth int, n *exec.StatsNode) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Label)
		if n.EstRows >= 0 {
			fmt.Fprintf(&b, " (est rows=%.0f cost=%.0f)", n.EstRows, n.EstCost)
		}
		if !n.Executed() {
			// e.g. an index join's inner table: present in the plan, fetched
			// through the index rather than opened as an iterator.
			b.WriteString(" (not separately executed)\n")
			return
		}
		fmt.Fprintf(&b, " (actual rows=%d next=%d tuples=%d", n.Stats.RowsOut, n.Stats.NextCalls, n.SelfTuples())
		if n.Stats.PeakBuffered > 0 {
			fmt.Fprintf(&b, " peak=%d", n.Stats.PeakBuffered)
		}
		if sp := n.Stats.Spill; sp.Spilled() {
			fmt.Fprintf(&b, " spill-runs=%d spill-bytes=%d", sp.Runs, sp.Bytes)
			if sp.Partitions > 0 {
				fmt.Fprintf(&b, " spill-partitions=%d", sp.Partitions)
			}
			if sp.MergePasses > 0 {
				fmt.Fprintf(&b, " merge-passes=%d", sp.MergePasses)
			}
		}
		fmt.Fprintf(&b, " time=%s", n.Stats.WallTime.Round(time.Microsecond))
		if n.EstRows >= 0 {
			fmt.Fprintf(&b, " q-err=%.2f", qerr(n.EstRows, n.Stats.RowsOut))
		}
		b.WriteString(")")
		if n.Err != nil && !childErrored(n) {
			// Mark the deepest errored node: that operator tripped; its
			// ancestors merely propagated.
			fmt.Fprintf(&b, " <-- error: %v", n.Err)
		}
		b.WriteString("\n")
	})
	return b.String()
}

// childErrored reports whether any child of n recorded an error (the
// error then originated below n, not at n).
func childErrored(n *exec.StatsNode) bool {
	for _, c := range n.Children {
		if c.Err != nil {
			return true
		}
	}
	return false
}

// qerr is the q-error of a cardinality estimate: max(est/actual,
// actual/est), with both sides floored at one row so empty results do not
// divide by zero.
func qerr(est float64, actual int64) float64 {
	a := float64(actual)
	if a < 1 {
		a = 1
	}
	if est < 1 {
		est = 1
	}
	if est > a {
		return est / a
	}
	return a / est
}
