package optimizer

import (
	"freejoin/internal/algebra"
	"freejoin/internal/core"
	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// Generalized-outerjoin planning (§6.2). Example 2's shape X → (Y — Z)
// is not freely reorderable, so the DP cannot touch it; identity 15
// nevertheless allows (X → Y) GOJ[sch(X)] Z, letting the engine evaluate
// the cheap X → Y side first. OptimizeWithGOJ extends Optimize with that
// rewrite, and the Plan/Build layers gain a GOJ operator (hash-based when
// the predicate is a pure equijoin, reference algebra otherwise).

// planGOJ builds a plan node for GOJ[S][pred](l, r).
func (o *Optimizer) planGOJ(l, r *Plan, pred predicate.Predicate, s []relation.Attr) (*Plan, error) {
	scheme, err := l.Scheme.Concat(r.Scheme)
	if err != nil {
		return nil, err
	}
	// Cardinality: the join rows plus at most one row per distinct
	// S-projection; approximate with the outerjoin-style floor.
	sp := expr.Split{Op: expr.LeftOuter, Pred: pred, S1Preserved: true}
	outRows := o.estimateJoinRows(sp, l, r)
	cost := l.EstRows*costProbePerRow + r.EstRows*costBuildPerRow
	return &Plan{
		Left: l, Right: r, Op: expr.GOJ, Pred: pred, GOJAttrs: s,
		Scheme: scheme, EstRows: outRows,
		Cost: l.Cost + r.Cost + cost + outRows*costOutputPerRow,
	}, nil
}

// buildGOJ lowers a GOJ plan node.
func (o *Optimizer) buildGOJ(p *Plan, c *exec.Counters) (exec.Iterator, error) {
	left, err := o.Build(p.Left, c)
	if err != nil {
		return nil, err
	}
	right, err := o.Build(p.Right, c)
	if err != nil {
		return nil, err
	}
	if lk, rk, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme); ok {
		return exec.NewHashGOJ(left, right, lk, rk, p.GOJAttrs)
	}
	// General predicate: materialize and use the reference algebra.
	lrel, err := exec.Collect(left, nil)
	if err != nil {
		return nil, err
	}
	rrel, err := exec.Collect(right, nil)
	if err != nil {
		return nil, err
	}
	out, err := algebra.GeneralizedOuterJoin(lrel, rrel, p.Pred, p.GOJAttrs)
	if err != nil {
		return nil, err
	}
	return exec.NewRelationScan(out), nil
}

// OptimizeWithGOJ plans q like Optimize, but when q is not freely
// reorderable it additionally tries the §6.2 GOJ reassociation at the
// root and keeps whichever of {fixed-order plan, GOJ plan} the cost model
// prefers. The string result names the strategy used: "reordered",
// "fixed", or "goj".
func (o *Optimizer) OptimizeWithGOJ(q *expr.Node) (*Plan, string, error) {
	p, reordered, err := o.Optimize(q)
	if err != nil {
		return nil, "", err
	}
	if reordered {
		return p, "reordered", nil
	}
	rw, ok, err := core.GOJReassociate(q, o.cat)
	if err != nil || !ok {
		return p, "fixed", err
	}
	gp, err := o.planExprWithGOJ(rw)
	if err != nil {
		// The rewrite exists but cannot be planned; keep the fixed plan.
		return p, "fixed", nil
	}
	if gp.Cost < p.Cost {
		return gp, "goj", nil
	}
	return p, "fixed", nil
}

// planForcedGOJ applies the §6.2 rewrite when it matches and plans it
// regardless of estimated cost (an exploration hook used by tests and the
// experiment harness).
func (o *Optimizer) planForcedGOJ(q *expr.Node) (*Plan, bool, error) {
	rw, ok, err := core.GOJReassociate(q, o.cat)
	if err != nil || !ok {
		return nil, ok, err
	}
	p, err := o.planExprWithGOJ(rw)
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}

// planExprWithGOJ is PlanFixed extended with GOJ nodes.
func (o *Optimizer) planExprWithGOJ(q *expr.Node) (*Plan, error) {
	if q.Op != expr.GOJ {
		return o.PlanFixed(q)
	}
	l, err := o.planExprWithGOJ(q.Left)
	if err != nil {
		return nil, err
	}
	r, err := o.planExprWithGOJ(q.Right)
	if err != nil {
		return nil, err
	}
	return o.planGOJ(l, r, q.Pred, q.GOJAttrs)
}
