package optimizer

import (
	"freejoin/internal/algebra"
	"freejoin/internal/core"
	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// Generalized-outerjoin planning (§6.2). Example 2's shape X → (Y — Z)
// is not freely reorderable, so the DP cannot touch it; identity 15
// nevertheless allows (X → Y) GOJ[sch(X)] Z, letting the engine evaluate
// the cheap X → Y side first. OptimizeWithGOJ extends Optimize with that
// rewrite, and the Plan/Build layers gain a GOJ operator (hash-based when
// the predicate is a pure equijoin, reference algebra otherwise).

// planGOJ builds a plan node for GOJ[S][pred](l, r).
func (o *Optimizer) planGOJ(l, r *Plan, pred predicate.Predicate, s []relation.Attr) (*Plan, error) {
	scheme, err := l.Scheme.Concat(r.Scheme)
	if err != nil {
		return nil, err
	}
	// Cardinality: the join rows plus at most one row per distinct
	// S-projection; approximate with the outerjoin-style floor.
	sp := expr.Split{Op: expr.LeftOuter, Pred: pred, S1Preserved: true}
	outRows := o.estimateJoinRows(sp, l, r)
	cost := l.EstRows*costProbePerRow + r.EstRows*costBuildPerRow
	return &Plan{
		Left: l, Right: r, Op: expr.GOJ, Pred: pred, GOJAttrs: s,
		Scheme: scheme, EstRows: outRows,
		Cost: l.Cost + r.Cost + cost + outRows*costOutputPerRow,
	}, nil
}

// buildGOJ lowers a GOJ plan node.
func (o *Optimizer) buildGOJ(p *Plan, c *exec.Counters, ins bool, tr *Trace) (exec.Iterator, *exec.StatsNode, error) {
	left, lnode, err := o.build(p.Left, c, ins, tr)
	if err != nil {
		return nil, nil, err
	}
	right, rnode, err := o.build(p.Right, c, ins, tr)
	if err != nil {
		return nil, nil, err
	}
	if lk, rk, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme); ok {
		it, err := exec.NewHashGOJ(left, right, lk, rk, p.GOJAttrs)
		if err != nil {
			return nil, nil, err
		}
		wrapped, node := wrapNode(it, p, c, ins, lnode, rnode)
		return wrapped, node, nil
	}
	// General predicate: materialize and use the reference algebra. The
	// children drain here, at build time, so their stats are already
	// complete when the wrapping RelationScan starts streaming.
	lrel, err := exec.Collect(left, nil)
	if err != nil {
		return nil, nil, err
	}
	rrel, err := exec.Collect(right, nil)
	if err != nil {
		return nil, nil, err
	}
	out, err := algebra.GeneralizedOuterJoin(lrel, rrel, p.Pred, p.GOJAttrs)
	if err != nil {
		return nil, nil, err
	}
	wrapped, node := wrapNode(exec.NewRelationScan(out), p, c, ins, lnode, rnode)
	return wrapped, node, nil
}

// OptimizeWithGOJ plans q like Optimize, but when q is not freely
// reorderable it additionally tries the §6.2 GOJ reassociation at the
// root and keeps whichever of {fixed-order plan, GOJ plan} the cost model
// prefers. The string result names the strategy used: "reordered",
// "fixed", or "goj".
func (o *Optimizer) OptimizeWithGOJ(q *expr.Node) (*Plan, string, error) {
	p, tr, err := o.OptimizeWithGOJTrace(q)
	if tr == nil {
		return p, "", err
	}
	return p, tr.Strategy, err
}

// OptimizeWithGOJTrace is OptimizeWithGOJ with the decision record
// attached; on strategy "goj" the trace keeps the not-free verdict that
// made the reassociation worth trying.
func (o *Optimizer) OptimizeWithGOJTrace(q *expr.Node) (*Plan, *Trace, error) {
	// Uses the unrecorded optimizeTrace so the strategy metric counts the
	// final decision, not the intermediate "fixed" verdict a successful
	// GOJ upgrade replaces.
	p, tr, err := o.optimizeTrace(q)
	if err != nil {
		return nil, nil, err
	}
	defer func() { recordTrace(tr) }()
	if tr.Reordered() {
		return p, tr, nil
	}
	rw, ok, err := core.GOJReassociate(q, o.cat)
	if err != nil || !ok {
		return p, tr, err
	}
	gp, err := o.planExprWithGOJ(rw)
	if err != nil {
		// The rewrite exists but cannot be planned; keep the fixed plan.
		return p, tr, nil
	}
	if gp.Cost < p.Cost {
		tr.Strategy = "goj"
		return gp, tr, nil
	}
	return p, tr, nil
}

// planForcedGOJ applies the §6.2 rewrite when it matches and plans it
// regardless of estimated cost (an exploration hook used by tests and the
// experiment harness).
func (o *Optimizer) planForcedGOJ(q *expr.Node) (*Plan, bool, error) {
	rw, ok, err := core.GOJReassociate(q, o.cat)
	if err != nil || !ok {
		return nil, ok, err
	}
	p, err := o.planExprWithGOJ(rw)
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}

// planExprWithGOJ is PlanFixed extended with GOJ nodes.
func (o *Optimizer) planExprWithGOJ(q *expr.Node) (*Plan, error) {
	if q.Op != expr.GOJ {
		return o.PlanFixed(q)
	}
	l, err := o.planExprWithGOJ(q.Left)
	if err != nil {
		return nil, err
	}
	r, err := o.planExprWithGOJ(q.Right)
	if err != nil {
		return nil, err
	}
	return o.planGOJ(l, r, q.Pred, q.GOJAttrs)
}
