package optimizer

import (
	"math/rand"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

// example2Catalog: 1-row X, n-row Y and Z with indexed keys — the
// Example 2 shape where the GOJ rewrite pays off.
func example2Catalog(t *testing.T, n int) *storage.Catalog {
	t.Helper()
	rnd := rand.New(rand.NewSource(91))
	cat := storage.NewCatalog()
	x := relation.New(relation.SchemeOf("X", "a", "b"))
	x.AppendRaw([]relation.Value{relation.Int(int64(n / 2)), relation.Int(0)})
	cat.AddRelation("X", x)
	cat.AddRelation("Y", workload.UniformRelation(rnd, "Y", n, 1<<40))
	cat.AddRelation("Z", workload.UniformRelation(rnd, "Z", n, 1<<40))
	for _, tn := range []string{"Y", "Z"} {
		tb, _ := cat.Table(tn)
		if _, err := tb.BuildHashIndex("a"); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

func example2Query() *expr.Node {
	return expr.NewOuter(expr.NewLeaf("X"),
		expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), eqp("Y", "Z")),
		eqp("X", "Y"))
}

func TestOptimizeWithGOJPrefersRewrite(t *testing.T) {
	cat := example2Catalog(t, 5000)
	o := New(cat)
	q := example2Query()

	p, strategy, err := o.OptimizeWithGOJ(q)
	if err != nil {
		t.Fatal(err)
	}
	if strategy != "goj" {
		t.Fatalf("strategy = %q, plan %s", strategy, p.Tree())
	}
	// Correctness: GOJ plan result equals the fixed-order reference.
	want, err := q.Eval(cat)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualBag(want) {
		t.Fatalf("GOJ plan changed the result:\nplan %s", p.Explain())
	}
	// Efficiency: fixed order scans Y and Z through the hash join; the
	// GOJ plan drives from the 1-row X.
	fixed, err := o.PlanFixed(q)
	if err != nil {
		t.Fatal(err)
	}
	_, cf, err := o.Execute(fixed)
	if err != nil {
		t.Fatal(err)
	}
	_, cg, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if cg.TuplesRetrieved() >= cf.TuplesRetrieved() {
		t.Errorf("GOJ plan should retrieve fewer tuples: goj=%d fixed=%d",
			cg.TuplesRetrieved(), cf.TuplesRetrieved())
	}
}

func TestOptimizeWithGOJKeepsReorderedPlans(t *testing.T) {
	rnd := rand.New(rand.NewSource(92))
	db := expr.DB{
		"A": workload.RandomRelation(rnd, "A", 5),
		"B": workload.RandomRelation(rnd, "B", 5),
	}
	o := New(catalogFor(db))
	q := expr.NewOuter(expr.NewLeaf("A"), expr.NewLeaf("B"), eqp("A", "B"))
	_, strategy, err := o.OptimizeWithGOJ(q)
	if err != nil || strategy != "reordered" {
		t.Fatalf("strategy = %q, err %v", strategy, err)
	}
}

func TestOptimizeWithGOJFixedFallback(t *testing.T) {
	rnd := rand.New(rand.NewSource(93))
	db := expr.DB{
		"X": workload.RandomRelation(rnd, "X", 5),
		"Y": workload.RandomRelation(rnd, "Y", 5),
		"Z": workload.RandomRelation(rnd, "Z", 5),
	}
	o := New(catalogFor(db))
	// Outer predicate spans X and Z: identity 15's scope does not apply,
	// so the rewrite is unavailable and the fixed plan is kept.
	q := expr.NewOuter(expr.NewLeaf("X"),
		expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), eqp("Y", "Z")),
		eqp("X", "Z"))
	_, strategy, err := o.OptimizeWithGOJ(q)
	if err != nil || strategy != "fixed" {
		t.Fatalf("strategy = %q, err %v", strategy, err)
	}
}

// TestGOJPlanNonEquiPredicate exercises the algebra-fallback path of
// buildGOJ.
func TestGOJPlanNonEquiPredicate(t *testing.T) {
	rnd := rand.New(rand.NewSource(94))
	db := expr.DB{
		"X": workload.RandomRelation(rnd, "X", 6).Dedup(),
		"Y": workload.RandomRelation(rnd, "Y", 6).Dedup(),
		"Z": workload.RandomRelation(rnd, "Z", 6).Dedup(),
	}
	o := New(catalogFor(db))
	gt := predicate.Cmp(predicate.GtOp,
		predicate.Col(relation.A("Y", "a")), predicate.Col(relation.A("Z", "a")))
	q := expr.NewOuter(expr.NewLeaf("X"),
		expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), gt),
		eqp("X", "Y"))
	p, strategy, err := o.OptimizeWithGOJ(q)
	if err != nil {
		t.Fatal(err)
	}
	if strategy == "goj" {
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := o.Execute(p)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualBag(want) {
			t.Fatal("non-equi GOJ plan changed the result")
		}
	}
	// Force the GOJ plan regardless of cost to cover the fallback.
	rw, ok, err := o.planForcedGOJ(q)
	if err != nil || !ok {
		t.Fatalf("forced GOJ: %v %v", ok, err)
	}
	want, _ := q.Eval(db)
	got, _, err := o.Execute(rw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualBag(want) {
		t.Fatal("forced non-equi GOJ plan changed the result")
	}
}

func TestGOJPlanRendering(t *testing.T) {
	cat := example2Catalog(t, 100)
	o := New(cat)
	p, strategy, err := o.OptimizeWithGOJ(example2Query())
	if err != nil || strategy != "goj" {
		t.Fatalf("strategy %q err %v", strategy, err)
	}
	if p.Tree() != "((X -> Y) goj Z)" {
		t.Errorf("Tree = %q", p.Tree())
	}
	if back := p.ToExpr(); back.Op != expr.GOJ {
		t.Errorf("ToExpr = %v", back)
	}
}
