package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"freejoin/internal/core"
	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/obs"
	"freejoin/internal/workload"
)

// The Yannakakis acyclic fast path: the metamorphic oracle against the
// DP and fixed-order execution on dangling-heavy data, the intermediate-
// cardinality guarantee, strategy dispatch and fallback, cost-based auto
// selection, and plan-cache keying.

// yannakakisFixture builds a deterministic tree-shaped query (join chain
// core with an outerjoin chain) and its catalog.
func yannakakisFixture(t *testing.T, seed int64) (*Optimizer, *graph.Graph) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	g := workload.CoreWithTreesGraph(3, 2)
	db := workload.RandomDanglingDB(rnd, g, 12, 0.6)
	return New(catalogFor(db)), g
}

// TestMetamorphicYannakakisOracle is the acyclic edition of the
// metamorphic suite: for random TREE-shaped nice graphs (outerjoin-heavy
// included) over heavily dangling, skewed data, the full-reducer plan
// must produce exactly the bag of the classic DP plan, of a fixed-order
// execution, and of the reference algebra — and, per the Yannakakis
// guarantee, after full reduction no join-phase operator may produce
// more rows than the final result.
func TestMetamorphicYannakakisOracle(t *testing.T) {
	in0, out0 := obs.SemiReduceInputRows.Value(), obs.SemiReduceOutputRows.Value()
	reducedSomewhere := false
	success := 0
	for attempt := 0; success < metamorphicInstances; attempt++ {
		if attempt >= metamorphicInstances*10 {
			t.Fatalf("only %d/%d instances after %d attempts", success, metamorphicInstances, attempt)
		}
		seed := metamorphicBaseSeed + 300_000 + int64(attempt)
		rnd := rand.New(rand.NewSource(seed))
		// Trees only (the fast path's domain), skewed toward outerjoin
		// chains: up to three null-supplied relations per instance.
		g := workload.RandomTreeGraph(rnd, 1+rnd.Intn(3), rnd.Intn(4))
		if g.NumNodes() < 2 {
			continue
		}
		if a := core.AnalyzeGraph(g); !a.Free {
			t.Fatalf("seed %d: generated tree graph not certified free: %s", seed, a)
		}

		// At least half of every relation dangles; some relations nearly
		// all of it.
		db := workload.RandomDanglingDB(rnd, g, 8, 0.5+rnd.Float64()*0.45)
		cat := catalogFor(db)

		// Ground truth: the reference algebra over one implementing tree.
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatalf("seed %d: EnumerateITs: %v", seed, err)
		}
		ref, err := its[0].Eval(db)
		if err != nil {
			t.Fatalf("seed %d: Eval: %v", seed, err)
		}

		// Oracle 1: classic DP.
		oDP := New(cat)
		pDP, trDP, err := oDP.OptimizeGraphTrace(g)
		if err != nil {
			t.Fatalf("seed %d: DP optimize: %v", seed, err)
		}
		if trDP.Strategy != "reordered" {
			t.Fatalf("seed %d: default strategy = %q; want reordered", seed, trDP.Strategy)
		}
		relDP, _, err := oDP.Execute(pDP)
		if err != nil {
			t.Fatalf("seed %d: DP execute: %v", seed, err)
		}
		if !relDP.EqualBag(ref) {
			t.Fatalf("seed %d: DP execution differs from algebra result\ngraph:\n%s", seed, g)
		}

		// Oracle 2: fixed-order execution of the written tree.
		pFix, err := oDP.PlanFixed(its[0])
		if err != nil {
			t.Fatalf("seed %d: PlanFixed: %v", seed, err)
		}
		relFix, _, err := oDP.Execute(pFix)
		if err != nil {
			t.Fatalf("seed %d: fixed execute: %v", seed, err)
		}
		if !relFix.EqualBag(ref) {
			t.Fatalf("seed %d: fixed-order execution differs\ntree: %s", seed, its[0].StringWithPreds())
		}

		// The candidate: forced Yannakakis. On a tree it must apply, not
		// fall back.
		oY := New(cat)
		oY.Strategy = "yannakakis"
		pY, trY, err := oY.OptimizeGraphTrace(g)
		if err != nil {
			t.Fatalf("seed %d: yannakakis optimize: %v", seed, err)
		}
		if trY.Strategy != "yannakakis" || trY.FallbackReason != "" {
			t.Fatalf("seed %d: forced yannakakis on a tree fell back: strategy %q (%s)\ngraph:\n%s",
				seed, trY.Strategy, trY.FallbackReason, g)
		}
		relY, _, stats, err := oY.ExecuteAnalyzed(pY)
		if err != nil {
			t.Fatalf("seed %d: yannakakis execute: %v\nplan:\n%s", seed, err, pY.Explain())
		}
		if !relY.EqualBag(ref) {
			t.Fatalf("seed %d: yannakakis bag differs from DP/algebra result: want %d rows, got %d\ngraph:\n%s\nplan:\n%s",
				seed, ref.Len(), relY.Len(), g, pY.Explain())
		}

		// The Yannakakis guarantee: after full reduction, every join-phase
		// operator's output is bounded by the final result (reducer steps
		// themselves are exempt — a partial reduction may still exceed it).
		final := stats.Stats.RowsOut
		stats.Walk(func(_ int, n *exec.StatsNode) {
			if !n.Executed() {
				return
			}
			if strings.HasPrefix(n.Label, "join ") || strings.HasPrefix(n.Label, "leftouterjoin ") {
				if n.Stats.RowsOut > final {
					t.Fatalf("seed %d: join-phase intermediate exceeds output: %q produced %d rows, final %d\nplan:\n%s",
						seed, n.Label, n.Stats.RowsOut, final, pY.Explain())
				}
			}
		})
		if in, out := obs.SemiReduceInputRows.Value(), obs.SemiReduceOutputRows.Value(); out-out0 < in-in0 {
			reducedSomewhere = true
		}
		success++
	}
	if obs.SemiReduceInputRows.Value() == in0 {
		t.Error("the suite never ran a reducer step; yannakakis plans did not execute")
	}
	if !reducedSomewhere {
		t.Error("no reducer step ever deleted a tuple; the dangling generator is not producing dangling tuples")
	}
	t.Logf("verified %d instances", success)
}

// TestYannakakisFallsBackOnCycles: a cyclic (still nice) graph has no
// join tree; the forced strategy must fall back to the DP, record why,
// and still report the plan's true strategy.
func TestYannakakisFallsBackOnCycles(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	g := graph.New()
	for _, e := range [][2]string{{"A", "B"}, {"B", "C"}, {"A", "C"}} {
		if err := g.AddJoinEdge(e[0], e[1], workload.RandomPredicate(rnd, e[0], e[1])); err != nil {
			t.Fatal(err)
		}
	}
	db := workload.RandomDB(rnd, g, 6)
	o := New(catalogFor(db))
	o.Strategy = "yannakakis"
	p, tr, err := o.OptimizeGraphTrace(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Strategy != "reordered" {
		t.Errorf("strategy = %q; want reordered (DP fallback)", tr.Strategy)
	}
	if !strings.Contains(tr.FallbackReason, "yannakakis inapplicable") {
		t.Errorf("fallback reason %q must name the yannakakis rejection", tr.FallbackReason)
	}
	if planUsesSemiReduce(p) {
		t.Error("fallback plan still contains reducer steps")
	}
}

// TestUnknownStrategyErrors: a typo'd strategy must fail loudly, not
// silently plan with the default.
func TestUnknownStrategyErrors(t *testing.T) {
	o, g := yannakakisFixture(t, 11)
	o.Strategy = "yannakaki"
	if _, err := o.OptimizeGraph(g); err == nil || !strings.Contains(err.Error(), "unknown strategy") {
		t.Fatalf("err = %v; want unknown strategy", err)
	}
}

// TestAutoStrategyPicksCheaper: "auto" must return exactly the cheaper
// of the two candidate plans (ties to the DP), and its execution must
// agree with both.
func TestAutoStrategyPicksCheaper(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		o, g := yannakakisFixture(t, 40+seed)
		pDP, err := o.OptimizeGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		o.Strategy = "yannakakis"
		pY, err := o.OptimizeGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		o.Strategy = "auto"
		pAuto, err := o.OptimizeGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		wantYann := pY.Cost < pDP.Cost
		if gotYann := planUsesSemiReduce(pAuto); gotYann != wantYann {
			t.Errorf("seed %d: auto chose yannakakis=%v; want %v (dp cost %.0f, yannakakis cost %.0f)",
				seed, gotYann, wantYann, pDP.Cost, pY.Cost)
		}
		want, _, err := o.Execute(pDP)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := o.Execute(pAuto)
		if err != nil {
			t.Fatal(err)
		}
		if !want.EqualBag(got) {
			t.Errorf("seed %d: auto plan's bag differs from the DP's", seed)
		}
	}
}

// TestStrategyToggleMissesPlanCache: the strategy keys the plan cache —
// toggling it must produce a fresh fingerprint and entry, never the
// other mode's plan, and each mode must hit its own entry on repeat.
func TestStrategyToggleMissesPlanCache(t *testing.T) {
	o, q := cacheFixture(t, 78)

	_, tr1, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.CacheOutcome != "miss" {
		t.Fatalf("first optimize outcome %q; want miss", tr1.CacheOutcome)
	}

	o.Strategy = "yannakakis"
	p2, tr2, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.CacheOutcome != "miss" {
		t.Fatalf("strategy-toggled optimize outcome %q; want miss (must not reuse the DP plan)", tr2.CacheOutcome)
	}
	if tr1.Fingerprint == tr2.Fingerprint {
		t.Fatalf("strategy toggle did not change the fingerprint: %s", tr1.Fingerprint)
	}
	if !planUsesSemiReduce(p2) {
		t.Error("yannakakis plan over a tree query has no reducer steps")
	}
	if tr2.Strategy != "yannakakis" {
		t.Errorf("strategy = %q; want yannakakis", tr2.Strategy)
	}

	_, tr3, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr3.CacheOutcome != "hit" || tr3.Fingerprint != tr2.Fingerprint {
		t.Fatalf("yannakakis repeat: outcome %q fp %q; want hit on %q", tr3.CacheOutcome, tr3.Fingerprint, tr2.Fingerprint)
	}
	if tr3.Strategy != "yannakakis" {
		t.Errorf("cache-hit strategy = %q; want yannakakis (attributed from the plan shape)", tr3.Strategy)
	}
	o.Strategy = ""
	_, tr4, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr4.CacheOutcome != "hit" || tr4.Fingerprint != tr1.Fingerprint {
		t.Fatalf("default repeat: outcome %q fp %q; want hit on %q", tr4.CacheOutcome, tr4.Fingerprint, tr1.Fingerprint)
	}
	if o.Cache.Len() != 2 {
		t.Fatalf("cache holds %d entries; want one per strategy", o.Cache.Len())
	}
}

// TestYannakakisObservability: a forced yannakakis optimization counts
// under oj_optimize_strategy_total{strategy="yannakakis"}, renders
// reducer steps in EXPLAIN, and the reduction counters absorb executed
// traffic.
func TestYannakakisObservability(t *testing.T) {
	o, g := yannakakisFixture(t, 5)
	o.Strategy = "yannakakis"
	strat0 := obs.StrategyYannakakis.Value()
	in0 := obs.SemiReduceInputRows.Value()
	p, tr, err := o.OptimizeGraphTrace(g)
	if err != nil {
		t.Fatal(err)
	}
	if obs.StrategyYannakakis.Value() != strat0+1 {
		t.Error("oj_optimize_strategy_total{yannakakis} did not count the optimization")
	}
	if !strings.Contains(p.Explain(), "semireduce") {
		t.Errorf("EXPLAIN must render reducer steps:\n%s", p.Explain())
	}
	if !strings.Contains(tr.String(), "strategy: yannakakis") {
		t.Errorf("trace must carry the strategy:\n%s", tr.String())
	}
	if _, _, err := o.Execute(p); err != nil {
		t.Fatal(err)
	}
	if obs.SemiReduceInputRows.Value() == in0 {
		t.Error("oj_semijoin_reduce_input_rows_total did not move")
	}
}

// TestYannakakisRoundTrip: the reducer plan converts back to a logical
// expression (semijoins included) whose algebra evaluation equals the
// physical execution.
func TestYannakakisRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	g := workload.CoreWithTreesGraph(3, 2)
	db := workload.RandomDanglingDB(rnd, g, 10, 0.6)
	o := New(catalogFor(db))
	o.Strategy = "yannakakis"
	p, err := o.OptimizeGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !planUsesSemiReduce(p) {
		t.Fatal("expected a reducer plan")
	}
	want, err := p.ToExpr().Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualBag(got) {
		t.Fatalf("algebra evaluation of the round-tripped plan differs from execution\n%s", p.Explain())
	}
}
