package optimizer

import (
	"math"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// estimator tests: the cardinality model's fixed points.

func estimatorCatalog(t *testing.T) *Optimizer {
	t.Helper()
	cat := storage.NewCatalog()
	// R: 100 rows, a has 100 distinct values (a key), b has 10.
	r := relation.New(relation.SchemeOf("R", "a", "b"))
	for i := 0; i < 100; i++ {
		r.AppendRaw([]relation.Value{relation.Int(int64(i)), relation.Int(int64(i % 10))})
	}
	cat.AddRelation("R", r)
	// S: 50 rows, a has 50 distinct values.
	s := relation.New(relation.SchemeOf("S", "a"))
	for i := 0; i < 50; i++ {
		s.AppendRaw([]relation.Value{relation.Int(int64(i))})
	}
	cat.AddRelation("S", s)
	return New(cat)
}

func TestEstimateEquijoinUsesMaxNDV(t *testing.T) {
	o := estimatorCatalog(t)
	l, _ := o.scanPlan("R")
	r, _ := o.scanPlan("S")
	sp := expr.Split{Op: expr.Join, Pred: eqp("R", "S")}
	// sel = 1/max(ndv) = 1/100 → 100*50/100 = 50 rows.
	if got := o.estimateJoinRows(sp, l, r); got != 50 {
		t.Errorf("equijoin estimate = %v, want 50", got)
	}
}

func TestEstimateNonEquiDefaultSelectivity(t *testing.T) {
	o := estimatorCatalog(t)
	l, _ := o.scanPlan("R")
	r, _ := o.scanPlan("S")
	gt := predicate.Cmp(predicate.GtOp,
		predicate.Col(relation.A("R", "a")), predicate.Col(relation.A("S", "a")))
	sp := expr.Split{Op: expr.Join, Pred: gt}
	want := 100.0 * 50.0 * defaultSel
	if got := o.estimateJoinRows(sp, l, r); math.Abs(got-want) > 1e-9 {
		t.Errorf("theta estimate = %v, want %v", got, want)
	}
}

func TestEstimateOuterjoinFloor(t *testing.T) {
	o := estimatorCatalog(t)
	l, _ := o.scanPlan("R")
	r, _ := o.scanPlan("S")
	// Very selective predicate: join estimate below |L|, but outerjoin
	// preserves every left row.
	p := predicate.NewAnd(eqp("R", "S"), predicate.Eq(relation.A("R", "b"), relation.A("S", "a")))
	sp := expr.Split{Op: expr.LeftOuter, Pred: p, S1Preserved: true}
	if got := o.estimateJoinRows(sp, l, r); got != 100 {
		t.Errorf("outerjoin floor = %v, want |L| = 100", got)
	}
}

func TestEstimateFloorsAtOne(t *testing.T) {
	o := estimatorCatalog(t)
	l, _ := o.scanPlan("S")
	r, _ := o.scanPlan("S")
	// Conjunction of many equalities drives the estimate below 1.
	p := predicate.NewAnd(eqp("R", "S"), eqp("R", "S"), eqp("R", "S"))
	sp := expr.Split{Op: expr.Join, Pred: p}
	if got := o.estimateJoinRows(sp, l, r); got != 1 {
		t.Errorf("estimate floor = %v, want 1", got)
	}
}

func TestEstimateUnknownTableDefaults(t *testing.T) {
	o := estimatorCatalog(t)
	if got := o.attrNDV(relation.A("NOPE", "x")); got != defaultNDV {
		t.Errorf("unknown table ndv = %v", got)
	}
	// Non-comparison conjunct → default selectivity.
	l, _ := o.scanPlan("R")
	r, _ := o.scanPlan("S")
	if got := o.conjunctSelectivity(predicate.NewIsNull(relation.A("R", "a")), l, r); got != defaultSel {
		t.Errorf("is-null selectivity = %v", got)
	}
	// Constant comparison: ndv from the single column side.
	c := predicate.EqConst(relation.A("R", "b"), relation.Int(1))
	if got := o.conjunctSelectivity(c, l, r); got != 0.1 {
		t.Errorf("const eq selectivity = %v, want 0.1", got)
	}
}
