package optimizer

import (
	"math/rand"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

// indexedCatalogFor is catalogFor with hash indexes on every node column,
// so the candidate generators can also emit index-join and index-scan
// plans.
func indexedCatalogFor(t *testing.T, db expr.DB) *storage.Catalog {
	t.Helper()
	cat := catalogFor(db)
	for _, name := range cat.Tables() {
		tb, err := cat.Table(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range workload.NodeColumns {
			if _, err := tb.BuildHashIndex(col); err != nil {
				t.Fatal(err)
			}
		}
	}
	return cat
}

// TestFixedPlanRoundTrip: every implementing tree of a random graph must
// plan (PlanFixed), lower (Build) and execute to the same bag as the
// reference algebra evaluation of the tree itself.
func TestFixedPlanRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		g := workload.RandomConnectedGraph(rnd, 2+rnd.Intn(3))
		db := workload.RandomDB(rnd, g, 6)
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		o := New(indexedCatalogFor(t, db))
		for i, q := range its {
			if len(its) > 8 && i%3 != 0 {
				continue // sample large IT sets
			}
			want, err := q.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			p, err := o.PlanFixed(q)
			if err != nil {
				t.Fatalf("trial %d: PlanFixed: %v\nq=%s", trial, err, q.StringWithPreds())
			}
			got, _, err := o.Execute(p)
			if err != nil {
				t.Fatalf("trial %d: execute: %v\nq=%s\nplan:\n%s", trial, err, q.StringWithPreds(), p.Explain())
			}
			if !got.EqualBag(want) {
				t.Fatalf("trial %d: plan result differs from algebra\nq=%s\nplan:\n%s",
					trial, q.StringWithPreds(), p.Explain())
			}
		}
	}
}

// TestJoinCandidatesAllBuildable: every candidate fixedJoinPlans emits —
// hash, sort-merge, index, nested loops — must lower through Build and
// produce the same bag; no candidate may be generated that the build
// layer later rejects.
func TestJoinCandidatesAllBuildable(t *testing.T) {
	rnd := rand.New(rand.NewSource(72))
	for trial := 0; trial < 60; trial++ {
		g := workload.RandomConnectedGraph(rnd, 2)
		db := workload.RandomDB(rnd, g, 8)
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(its) == 0 {
			continue
		}
		q := its[rnd.Intn(len(its))]
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		o := New(indexedCatalogFor(t, db))
		l, err := o.PlanFixed(q.Left)
		if err != nil {
			t.Fatal(err)
		}
		r, err := o.PlanFixed(q.Right)
		if err != nil {
			t.Fatal(err)
		}
		op := q.Op
		if op == expr.RightOuter {
			l, r = r, l
			op = expr.LeftOuter
		}
		sp := expr.Split{Op: op, Pred: q.Pred, S1Preserved: true}
		cands := o.fixedJoinPlans(sp, l, r)
		if len(cands) == 0 {
			t.Fatalf("trial %d: no candidates for %s", trial, q.StringWithPreds())
		}
		for _, cand := range cands {
			got, _, err := o.Execute(cand)
			if err != nil {
				t.Fatalf("trial %d: candidate [%s] failed to build/run: %v\nq=%s",
					trial, cand.Algo, err, q.StringWithPreds())
			}
			if !got.EqualBag(want) {
				t.Fatalf("trial %d: candidate [%s] wrong result\nq=%s", trial, cand.Algo, q.StringWithPreds())
			}
		}
	}
}

// TestPlanQueryRoundTrip: the full planning pipeline (simplify, push,
// DP-or-fixed, residual filters) over random restricted queries matches
// direct algebra evaluation.
func TestPlanQueryRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(73))
	for trial := 0; trial < 60; trial++ {
		g := workload.RandomConnectedGraph(rnd, 2+rnd.Intn(3))
		db := workload.RandomDB(rnd, g, 6)
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		if len(its) == 0 {
			continue
		}
		q := its[rnd.Intn(len(its))]
		if rnd.Intn(2) == 0 {
			// Wrap a restriction over a random relation's column.
			rel := g.Nodes()[rnd.Intn(g.NumNodes())]
			q = expr.NewRestrict(q, predicate.Cmp(predicate.GtOp,
				predicate.Col(relation.A(rel, "a")),
				predicate.Const(relation.Int(int64(rnd.Intn(4))))))
		}
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		o := New(indexedCatalogFor(t, db))
		p, tr, err := o.PlanQueryTrace(q)
		if err != nil {
			t.Fatalf("trial %d: %v\nq=%s", trial, err, q.StringWithPreds())
		}
		if !tr.Reordered() && tr.FallbackReason == "" {
			t.Fatalf("trial %d: fixed-order plan without a recorded reason", trial)
		}
		got, _, err := o.Execute(p)
		if err != nil {
			t.Fatalf("trial %d: execute: %v\nplan:\n%s", trial, err, p.Explain())
		}
		if !got.EqualBag(want) {
			t.Fatalf("trial %d: pipeline changed the result\nq=%s\nplan:\n%s",
				trial, q.StringWithPreds(), p.Explain())
		}
	}
}

// TestOptimizeRejectsUndefinedGraph: a query whose graph is undefined
// (here, the same relation on both sides) must surface an error from both
// Optimize and PlanFixed — not a panic, and not a silent wrong plan.
func TestOptimizeRejectsUndefinedGraph(t *testing.T) {
	cat := storage.NewCatalog()
	cat.AddRelation("R", relation.FromRows("R", []string{"a"}, []any{1}, []any{2}))
	o := New(cat)
	q := expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("R"), eqp("R", "R"))
	if _, _, err := o.Optimize(q); err == nil {
		t.Error("Optimize must reject a query with an undefined graph")
	}
	if _, err := o.PlanFixed(q); err == nil {
		t.Error("PlanFixed must reject operands with overlapping schemes")
	}
}
