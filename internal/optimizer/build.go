package optimizer

import (
	"fmt"

	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// Build lowers a plan to a physical iterator tree, wiring the counter
// through scans and index lookups. No instrumentation is attached: the
// returned tree is exactly the operators themselves (the zero-overhead
// path measured by BenchmarkStatsOverhead).
func (o *Optimizer) Build(p *Plan, c *exec.Counters) (exec.Iterator, error) {
	it, _, err := o.build(p, c, false, nil)
	return it, err
}

// BuildInstrumented lowers p like Build but wraps every operator in an
// exec.Instrument stats collector, returning the root of the parallel
// StatsNode tree. Estimates (rows, cost) are copied onto each node so
// EXPLAIN ANALYZE can report estimation error next to actuals.
func (o *Optimizer) BuildInstrumented(p *Plan, c *exec.Counters) (exec.Iterator, *exec.StatsNode, error) {
	return o.build(p, c, true, nil)
}

// BuildInstrumentedTraced is BuildInstrumented recording lowering
// decisions — which degradation path hash joins were wired with — into
// tr (which may be nil).
func (o *Optimizer) BuildInstrumentedTraced(p *Plan, c *exec.Counters, tr *Trace) (exec.Iterator, *exec.StatsNode, error) {
	return o.build(p, c, true, tr)
}

// build is the shared lowering; when ins is set every operator is wrapped
// and the second result is its stats node (nil otherwise).
func (o *Optimizer) build(p *Plan, c *exec.Counters, ins bool, tr *Trace) (exec.Iterator, *exec.StatsNode, error) {
	if p.IsLeaf() {
		t, err := o.cat.Table(p.Table)
		if err != nil {
			return nil, nil, err
		}
		var it exec.Iterator
		if p.Algo == AlgoIndexScan {
			if it, err = exec.NewIndexScan(t, p.IndexCol, p.IndexVal, c); err != nil {
				return nil, nil, err
			}
		} else if size, on := o.batchRows(); on {
			it = exec.NewBatchScan(t, c, size)
		} else {
			it = exec.NewScan(t, c)
		}
		wrapped, node := wrapNode(it, p, c, ins)
		return wrapped, node, nil
	}
	if p.Op == expr.GOJ {
		return o.buildGOJ(p, c, ins, tr)
	}
	if p.Op == expr.Restrict {
		return o.buildFilter(p, c, ins, tr)
	}
	left, lnode, err := o.build(p.Left, c, ins, tr)
	if err != nil {
		return nil, nil, err
	}
	mode := exec.InnerMode
	if p.Op == expr.LeftOuter {
		mode = exec.LeftOuterMode
	}
	switch p.Algo {
	case AlgoIndex:
		t, err := o.cat.Table(p.Right.Table)
		if err != nil {
			return nil, nil, err
		}
		lk, rk, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme)
		if !ok || len(lk) != 1 || rk[0].Name != p.IndexCol {
			return nil, nil, fmt.Errorf("optimizer: index plan predicate mismatch: %v", p.Pred)
		}
		var it exec.Iterator
		if size, on := o.batchRows(); on {
			it, err = exec.NewBatchIndexJoin(left, t, p.IndexCol, lk[0], nil, mode, c, size)
		} else {
			it, err = exec.NewIndexJoin(left, t, p.IndexCol, lk[0], nil, mode, c)
		}
		if err != nil {
			return nil, nil, err
		}
		var kids []*exec.StatsNode
		if ins {
			// The inner table is never opened as an iterator — the join
			// fetches its rows through the index. A phantom entry keeps the
			// rendered tree congruent with the plan.
			kids = []*exec.StatsNode{lnode, {Label: nodeLabel(p.Right), EstRows: p.Right.EstRows}}
		}
		wrapped, node := wrapNode(it, p, c, ins, kids...)
		return wrapped, node, nil
	case AlgoHash:
		right, rnode, err := o.build(p.Right, c, ins, tr)
		if err != nil {
			return nil, nil, err
		}
		lk, rk, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme)
		if !ok {
			return nil, nil, fmt.Errorf("optimizer: hash plan predicate mismatch: %v", p.Pred)
		}
		var it hashJoinIterator
		if size, on := o.batchRows(); on {
			it, err = exec.NewBatchHashJoin(left, right, lk, rk, nil, mode, size)
		} else {
			it, err = exec.NewHashJoin(left, right, lk, rk, nil, mode)
		}
		if err != nil {
			return nil, nil, err
		}
		o.attachFallback(it, p, lk, rk, mode, c, tr)
		wrapped, node := wrapNode(it, p, c, ins, lnode, rnode)
		return wrapped, node, nil
	case AlgoNL:
		right, rnode, err := o.build(p.Right, c, ins, tr)
		if err != nil {
			return nil, nil, err
		}
		var it exec.Iterator
		if size, on := o.batchRows(); on {
			it, err = exec.NewBatchNestedLoopJoin(left, right, p.Pred, mode, size)
		} else {
			it, err = exec.NewNestedLoopJoin(left, right, p.Pred, mode)
		}
		if err != nil {
			return nil, nil, err
		}
		wrapped, node := wrapNode(it, p, c, ins, lnode, rnode)
		return wrapped, node, nil
	case AlgoSemiReduce:
		// A Yannakakis reducer step shares its source subplan with other
		// occurrences in the plan DAG; each occurrence lowers to its own
		// iterator subtree, so sharing stays read-only.
		right, rnode, err := o.build(p.Right, c, ins, tr)
		if err != nil {
			return nil, nil, err
		}
		var it exec.Iterator
		size, on := o.batchRows()
		_, _, equi := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme)
		if on && equi {
			it, err = exec.NewBatchSemiReduce(left, right, p.Pred, size)
		} else {
			it, err = exec.NewSemiReduce(left, right, p.Pred)
		}
		if err != nil {
			return nil, nil, err
		}
		wrapped, node := wrapNode(it, p, c, ins, lnode, rnode)
		return wrapped, node, nil
	case AlgoMerge:
		right, rnode, err := o.build(p.Right, c, ins, tr)
		if err != nil {
			return nil, nil, err
		}
		lk, rk, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme)
		if !ok || len(lk) != 1 {
			return nil, nil, fmt.Errorf("optimizer: merge plan predicate mismatch: %v", p.Pred)
		}
		ls, err := exec.NewSort(left, lk)
		if err != nil {
			return nil, nil, err
		}
		rs, err := exec.NewSort(right, rk)
		if err != nil {
			return nil, nil, err
		}
		var sortedL, sortedR exec.Iterator = ls, rs
		var sortNodes []*exec.StatsNode
		if ins {
			// The sorts a merge join inserts have no plan node of their own;
			// they still get stats entries (they buffer the whole input).
			wl := exec.Instrument(ls, "sort on "+lk[0].String(), c, lnode)
			wr := exec.Instrument(rs, "sort on "+rk[0].String(), c, rnode)
			sortedL, sortedR = wl, wr
			sortNodes = []*exec.StatsNode{wl.Node(), wr.Node()}
		}
		it, err := exec.NewMergeJoin(sortedL, sortedR, lk[0], rk[0], mode)
		if err != nil {
			return nil, nil, err
		}
		wrapped, node := wrapNode(it, p, c, ins, sortNodes...)
		return wrapped, node, nil
	default:
		return nil, nil, fmt.Errorf("optimizer: cannot build algorithm %s", p.Algo)
	}
}

// attachFallback marks a graceful-degradation path on a hash join when
// one is available: if the build side is a plain scan of a base table
// with a hash index on the single equi-key, a memory-budget trip during
// the build can be served by an index join over the same left input
// instead of aborting. Both strategies produce the same bag (null keys
// never match in either).
//
// When the optimizer runs with spilling enabled, the grace hash join is
// the preferred degradation — it keeps the planned hash strategy and
// needs no index — and the executor picks it over the index fallback at
// trip time. The index fallback is still wired as the path for
// spill-disabled contexts; the trace records whichever path this
// session would actually take.
func (o *Optimizer) attachFallback(it hashJoinIterator, p *Plan, lk, rk []relation.Attr, mode exec.JoinMode, c *exec.Counters, tr *Trace) {
	if o.Spill && tr != nil && tr.Degradation == "" {
		tr.Degradation = "grace-hash spill"
	}
	if len(lk) != 1 || !p.Right.IsLeaf() || p.Right.Algo != AlgoScan {
		return
	}
	t, err := o.cat.Table(p.Right.Table)
	if err != nil {
		return
	}
	if _, ok := t.HashIndexOn(rk[0].Name); !ok {
		return
	}
	if !o.Spill && tr != nil && tr.Degradation == "" {
		tr.Degradation = fmt.Sprintf("index join via %s.%s", p.Right.Table, rk[0].Name)
	}
	it.SetFallback(func(left exec.Iterator) (exec.Iterator, error) {
		return exec.NewIndexJoin(left, t, rk[0].Name, lk[0], nil, mode, c)
	})
}

// hashJoinIterator is the common surface of the row and batch hash
// joins the lowering wires degradation paths onto.
type hashJoinIterator interface {
	exec.Iterator
	SetFallback(mk func(left exec.Iterator) (exec.Iterator, error))
	DegradedTo() exec.Iterator
}

// wrapNode instruments it as the physical realization of plan node p,
// preserving the operator's batch capability.
func wrapNode(it exec.Iterator, p *Plan, c *exec.Counters, ins bool, kids ...*exec.StatsNode) (exec.Iterator, *exec.StatsNode) {
	if !ins {
		return it, nil
	}
	w, n := exec.InstrumentIterator(it, nodeLabel(p), c, kids...)
	n.EstRows = p.EstRows
	n.EstCost = p.Cost
	return w, n
}

// nodeLabel renders a plan node's one-line operator description (the same
// vocabulary as Plan.Explain).
func nodeLabel(p *Plan) string {
	if p.IsLeaf() {
		if p.Algo == AlgoIndexScan {
			return fmt.Sprintf("indexscan %s.%s = %s", p.Table, p.IndexCol, p.IndexVal)
		}
		return "scan " + p.Table
	}
	if p.Op == expr.Restrict {
		return fmt.Sprintf("filter on %v", p.Pred)
	}
	opName := "join"
	switch p.Op {
	case expr.LeftOuter:
		opName = "leftouterjoin"
	case expr.GOJ:
		opName = "generalizedouterjoin"
	case expr.Semijoin:
		opName = "semireduce"
	}
	algo := p.Algo.String()
	switch {
	case p.Algo == AlgoIndex:
		algo = fmt.Sprintf("index(%s.%s)", p.Right.Table, p.IndexCol)
	case p.Algo == AlgoSemiReduce:
		if _, _, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme); ok {
			algo = "hash"
		} else {
			algo = "scan"
		}
	case p.Op == expr.GOJ:
		if _, _, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme); ok {
			algo = "hash"
		} else {
			algo = "algebra"
		}
	}
	return fmt.Sprintf("%s [%s] on %v", opName, algo, p.Pred)
}

// Execute lowers and runs a plan ungoverned, returning the result
// relation and the execution counters (tuples retrieved, rows produced).
func (o *Optimizer) Execute(p *Plan) (*relation.Relation, *exec.Counters, error) {
	return o.ExecuteCtx(nil, p)
}

// ExecuteCtx runs p under an execution context carrying cancellation,
// deadline and memory budgets; ec may be nil for ungoverned execution.
func (o *Optimizer) ExecuteCtx(ec *exec.ExecContext, p *Plan) (*relation.Relation, *exec.Counters, error) {
	var c exec.Counters
	out, err := o.ExecuteCtxCounted(ec, p, &c)
	return out, &c, err
}

// ExecuteCtxCounted is ExecuteCtx with caller-owned counters: the
// caller allocates c before execution and may read it concurrently
// while the query runs (Counters is atomic), which is how the server's
// live-progress view streams rows-so-far for in-flight queries.
func (o *Optimizer) ExecuteCtxCounted(ec *exec.ExecContext, p *Plan, c *exec.Counters) (*relation.Relation, error) {
	it, err := o.Build(p, c)
	if err != nil {
		return nil, err
	}
	return exec.CollectCtx(ec, it, c)
}

// ExecuteAnalyzed lowers p with instrumentation, runs it, and returns the
// result, the counters, and the root of the collected per-operator stats
// tree — the data behind EXPLAIN ANALYZE.
func (o *Optimizer) ExecuteAnalyzed(p *Plan) (*relation.Relation, *exec.Counters, *exec.StatsNode, error) {
	return o.ExecuteAnalyzedCtx(nil, p)
}

// ExecuteAnalyzedCtx is ExecuteAnalyzed under an execution context. On
// error the partially-filled stats tree is still returned so EXPLAIN
// ANALYZE can render what ran and name the failing operator.
func (o *Optimizer) ExecuteAnalyzedCtx(ec *exec.ExecContext, p *Plan) (*relation.Relation, *exec.Counters, *exec.StatsNode, error) {
	var c exec.Counters
	it, root, err := o.BuildInstrumented(p, &c)
	if err != nil {
		return nil, nil, nil, err
	}
	out, err := exec.CollectCtx(ec, it, &c)
	if err != nil {
		return nil, &c, root, err
	}
	return out, &c, root, nil
}

// Run optimizes and executes a query in one call, reporting whether
// reordering applied.
func (o *Optimizer) Run(q *expr.Node) (*relation.Relation, *exec.Counters, bool, error) {
	p, reordered, err := o.Optimize(q)
	if err != nil {
		return nil, nil, false, err
	}
	out, c, err := o.Execute(p)
	return out, c, reordered, err
}

// CatalogOf exposes the optimizer's catalog (a storage.Catalog implements
// both expr.Source and core.SchemeSource, which callers often need
// alongside planning).
func (o *Optimizer) CatalogOf() *storage.Catalog { return o.cat }
