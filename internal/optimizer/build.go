package optimizer

import (
	"fmt"

	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// Build lowers a plan to a physical iterator tree, wiring the counter
// through scans and index lookups.
func (o *Optimizer) Build(p *Plan, c *exec.Counters) (exec.Iterator, error) {
	if p.IsLeaf() {
		t, err := o.cat.Table(p.Table)
		if err != nil {
			return nil, err
		}
		if p.Algo == AlgoIndexScan {
			return exec.NewIndexScan(t, p.IndexCol, p.IndexVal, c)
		}
		return exec.NewScan(t, c), nil
	}
	if p.Op == expr.GOJ {
		return o.buildGOJ(p, c)
	}
	if p.Op == expr.Restrict {
		return o.buildFilter(p, c)
	}
	left, err := o.Build(p.Left, c)
	if err != nil {
		return nil, err
	}
	mode := exec.InnerMode
	if p.Op == expr.LeftOuter {
		mode = exec.LeftOuterMode
	}
	switch p.Algo {
	case AlgoIndex:
		t, err := o.cat.Table(p.Right.Table)
		if err != nil {
			return nil, err
		}
		lk, rk, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme)
		if !ok || len(lk) != 1 || rk[0].Name != p.IndexCol {
			return nil, fmt.Errorf("optimizer: index plan predicate mismatch: %v", p.Pred)
		}
		return exec.NewIndexJoin(left, t, p.IndexCol, lk[0], nil, mode, c)
	case AlgoHash:
		right, err := o.Build(p.Right, c)
		if err != nil {
			return nil, err
		}
		lk, rk, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme)
		if !ok {
			return nil, fmt.Errorf("optimizer: hash plan predicate mismatch: %v", p.Pred)
		}
		return exec.NewHashJoin(left, right, lk, rk, nil, mode)
	case AlgoNL:
		right, err := o.Build(p.Right, c)
		if err != nil {
			return nil, err
		}
		return exec.NewNestedLoopJoin(left, right, p.Pred, mode)
	case AlgoMerge:
		right, err := o.Build(p.Right, c)
		if err != nil {
			return nil, err
		}
		lk, rk, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme)
		if !ok || len(lk) != 1 {
			return nil, fmt.Errorf("optimizer: merge plan predicate mismatch: %v", p.Pred)
		}
		ls, err := exec.NewSort(left, lk)
		if err != nil {
			return nil, err
		}
		rs, err := exec.NewSort(right, rk)
		if err != nil {
			return nil, err
		}
		return exec.NewMergeJoin(ls, rs, lk[0], rk[0], mode)
	default:
		return nil, fmt.Errorf("optimizer: cannot build algorithm %s", p.Algo)
	}
}

// Execute lowers and runs a plan, returning the result relation and the
// execution counters (tuples retrieved, rows produced).
func (o *Optimizer) Execute(p *Plan) (*relation.Relation, *exec.Counters, error) {
	var c exec.Counters
	it, err := o.Build(p, &c)
	if err != nil {
		return nil, nil, err
	}
	out, err := exec.Collect(it, &c)
	if err != nil {
		return nil, nil, err
	}
	return out, &c, nil
}

// Run optimizes and executes a query in one call, reporting whether
// reordering applied.
func (o *Optimizer) Run(q *expr.Node) (*relation.Relation, *exec.Counters, bool, error) {
	p, reordered, err := o.Optimize(q)
	if err != nil {
		return nil, nil, false, err
	}
	out, c, err := o.Execute(p)
	return out, c, reordered, err
}

// CatalogOf exposes the optimizer's catalog (a storage.Catalog implements
// both expr.Source and core.SchemeSource, which callers often need
// alongside planning).
func (o *Optimizer) CatalogOf() *storage.Catalog { return o.cat }
