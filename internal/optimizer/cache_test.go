package optimizer

import (
	"math/rand"
	"sync"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/obs"
	"freejoin/internal/plancache"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

// cacheFixture builds a catalog and a freely-reorderable query over it.
func cacheFixture(t *testing.T, seed int64) (*Optimizer, *expr.Node) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	g := workload.CoreWithTreesGraph(3, 2)
	db := workload.RandomDB(rnd, g, 8)
	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		t.Fatal(err)
	}
	o := New(catalogFor(db))
	o.Cache = plancache.New(16)
	return o, its[0]
}

// A repeated query must hit the cache and share the identical plan
// object; the trace records the outcome and fingerprint.
func TestPlanCacheHit(t *testing.T) {
	o, q := cacheFixture(t, 101)
	hits0, misses0 := obs.PlanCacheHits.Value(), obs.PlanCacheMisses.Value()

	p1, tr1, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.CacheOutcome != "miss" || tr1.Fingerprint == "" {
		t.Fatalf("first optimize: outcome %q, fp %q; want miss with a fingerprint", tr1.CacheOutcome, tr1.Fingerprint)
	}
	p2, tr2, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.CacheOutcome != "hit" {
		t.Fatalf("second optimize outcome = %q; want hit", tr2.CacheOutcome)
	}
	if p1 != p2 {
		t.Fatal("cache hit returned a different plan object")
	}
	if tr1.Fingerprint != tr2.Fingerprint {
		t.Fatalf("fingerprints differ: %s vs %s", tr1.Fingerprint, tr2.Fingerprint)
	}
	if tr2.Subsets != 0 {
		t.Fatalf("cache hit ran the DP (%d subsets)", tr2.Subsets)
	}
	if d := obs.PlanCacheMisses.Value() - misses0; d != 1 {
		t.Fatalf("miss counter delta = %d; want 1", d)
	}
	if d := obs.PlanCacheHits.Value() - hits0; d != 1 {
		t.Fatalf("hit counter delta = %d; want 1", d)
	}
}

// Every implementing tree of one graph is the same query to the cache:
// Theorem 1 says they agree on results, and the fingerprint is computed
// from the graph, so tree #2 must hit what tree #1 populated.
func TestPlanCacheAcrossImplementingTrees(t *testing.T) {
	o, _ := cacheFixture(t, 102)
	g := workload.CoreWithTreesGraph(3, 2)
	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(its) < 2 {
		t.Fatalf("fixture graph has %d ITs; want >= 2", len(its))
	}
	var fp string
	for i, it := range its {
		_, tr, err := o.OptimizeTrace(it)
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		if i == 0 {
			fp = tr.Fingerprint
			if tr.CacheOutcome != "miss" {
				t.Fatalf("tree 0 outcome = %q; want miss", tr.CacheOutcome)
			}
			continue
		}
		if tr.Fingerprint != fp {
			t.Fatalf("tree %d fingerprint %s != tree 0 fingerprint %s\ntree: %s",
				i, tr.Fingerprint, fp, it.StringWithPreds())
		}
		if tr.CacheOutcome != "hit" {
			t.Fatalf("tree %d outcome = %q; want hit", i, tr.CacheOutcome)
		}
	}
}

// Building an index bumps the stats epoch, so the cached plan — costed
// without that access path — must be invalidated and re-optimized.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	o, q := cacheFixture(t, 103)
	inval0 := obs.PlanCacheInvalidations.Value()

	if _, tr, err := o.OptimizeTrace(q); err != nil || tr.CacheOutcome != "miss" {
		t.Fatalf("first optimize: %v, outcome %q", err, tr.CacheOutcome)
	}
	// Any table will do: the epoch is per catalog.
	name := o.CatalogOf().Tables()[0]
	tab, err := o.CatalogOf().Table(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.BuildHashIndex("a"); err != nil {
		t.Fatal(err)
	}
	_, tr, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CacheOutcome != "miss" {
		t.Fatalf("post-index optimize outcome = %q; want miss (stale epoch)", tr.CacheOutcome)
	}
	if d := obs.PlanCacheInvalidations.Value() - inval0; d != 1 {
		t.Fatalf("invalidation counter delta = %d; want 1", d)
	}
}

// Different pushed-down filters are different cache keys.
func TestPlanCacheFilterKeys(t *testing.T) {
	rnd := rand.New(rand.NewSource(104))
	g := workload.JoinChainGraph(3)
	db := workload.RandomDB(rnd, g, 8)
	o := New(catalogFor(db))
	o.Cache = plancache.New(16)

	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		t.Fatal(err)
	}
	q := its[0]
	sigma := expr.NewRestrict(q, predicate.EqConst(relation.A("A", "a"), relation.Int(1)))

	_, tr1, err := o.PlanQueryTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	_, tr2, err := o.PlanQueryTrace(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.CacheOutcome != "miss" {
		t.Fatalf("bare query outcome = %q; want miss", tr1.CacheOutcome)
	}
	if tr2.CacheOutcome == "hit" && tr2.Fingerprint == tr1.Fingerprint {
		t.Fatalf("filtered query aliased the unfiltered plan (fp %s)", tr2.Fingerprint)
	}
}

// The concurrency satellite: N goroutines issue the same uncached
// query; exactly one DP run happens (singleflight), the obs counters
// account for every lookup, and the run is race-clean.
func TestPlanCacheConcurrentSingleflight(t *testing.T) {
	o, q := cacheFixture(t, 105)

	// Reference DP size for this query, measured without a cache.
	ref := New(o.CatalogOf())
	_, refTr, err := ref.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if refTr.Subsets == 0 {
		t.Fatal("fixture query did not exercise the DP")
	}

	hits0 := obs.PlanCacheHits.Value()
	misses0 := obs.PlanCacheMisses.Value()
	coal0 := obs.PlanCacheCoalesced.Value()
	subsets0 := obs.DPSubsets.Value()

	const n = 16
	var wg sync.WaitGroup
	plans := make([]*Plan, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			p, _, err := o.OptimizeTrace(q)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = p
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("goroutine %d got a different plan object", i)
		}
	}
	misses := obs.PlanCacheMisses.Value() - misses0
	hits := obs.PlanCacheHits.Value() - hits0
	coalesced := obs.PlanCacheCoalesced.Value() - coal0
	if misses != 1 {
		t.Fatalf("misses = %d; want exactly 1 (singleflight)", misses)
	}
	if hits+coalesced != n-1 {
		t.Fatalf("hits (%d) + coalesced (%d) = %d; want %d", hits, coalesced, hits+coalesced, n-1)
	}
	// Exactly one DP run across all N optimizations.
	if d := obs.DPSubsets.Value() - subsets0; d != int64(refTr.Subsets) {
		t.Fatalf("DP subsets delta = %d; want %d (one run)", d, refTr.Subsets)
	}
}

// The epoch-race satellite: concurrent catalog Adds (driving
// Table.onChange epoch bumps) while identical queries plan and execute
// through the shared cache. Under -race this exercises the catalog and
// table locks; the cache's insert-time epoch revalidation keeps any
// plan computed across an Add from being served stale. The re-added
// table carries the same rows, so every execution must agree with the
// pre-storm reference result.
func TestPlanCacheConcurrentAddExecute(t *testing.T) {
	o, q := cacheFixture(t, 106)
	cat := o.CatalogOf()
	name := cat.Tables()[0]
	tab, err := cat.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	rel := tab.Relation()

	refPlan, _, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := o.ExecuteCtx(nil, refPlan)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the concurrent Add: same data, fresh Table, epoch bumps
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cat.Add(storage.NewTable(name, rel))
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p, _, err := o.OptimizeTrace(q)
				if err != nil {
					t.Error(err)
					return
				}
				got, _, err := o.ExecuteCtx(nil, p)
				if err != nil {
					t.Error(err)
					return
				}
				if !got.EqualBag(want) {
					t.Error("execution under concurrent Add diverged from reference")
					return
				}
			}
		}()
	}
	close(stop)
	wg.Wait()
}
