package optimizer

import (
	"math/rand"
	"strings"
	"testing"

	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
	"freejoin/internal/workload"
)

func eqp(u, v string) predicate.Predicate {
	return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
}

// catalogFor wraps a random database into a catalog.
func catalogFor(db expr.DB) *storage.Catalog {
	cat := storage.NewCatalog()
	for name, rel := range db {
		cat.AddRelation(name, rel)
	}
	return cat
}

func TestScanPlan(t *testing.T) {
	cat := storage.NewCatalog()
	cat.AddRelation("R", relation.FromRows("R", []string{"a"}, []any{1}, []any{2}))
	o := New(cat)
	p, err := o.scanPlan("R")
	if err != nil || !p.IsLeaf() || p.EstRows != 2 {
		t.Fatalf("scanPlan = %+v, %v", p, err)
	}
	if _, err := o.scanPlan("NOPE"); err == nil {
		t.Error("unknown table must fail")
	}
	if o.CatalogOf() != cat {
		t.Error("CatalogOf broken")
	}
}

// TestOptimizerCorrectness: for random freely-reorderable queries, the
// optimized plan's execution matches the reference algebra evaluation of
// the original expression.
func TestOptimizerCorrectness(t *testing.T) {
	rnd := rand.New(rand.NewSource(55))
	for trial := 0; trial < 120; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		db := workload.RandomDB(rnd, g, 6)
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		q := its[rnd.Intn(len(its))]
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		o := New(catalogFor(db))
		got, _, reordered, err := o.Run(q)
		if err != nil {
			t.Fatalf("trial %d: %v\nq=%s", trial, err, q.StringWithPreds())
		}
		if !reordered {
			t.Fatalf("trial %d: nice query should be reordered", trial)
		}
		if !got.EqualBag(want) {
			t.Fatalf("trial %d: optimizer changed the result\nq=%s", trial, q.StringWithPreds())
		}
	}
}

// TestFixedOrderCorrectness: non-reorderable queries run in the given
// order and still produce the reference result.
func TestFixedOrderCorrectness(t *testing.T) {
	rnd := rand.New(rand.NewSource(56))
	for trial := 0; trial < 80; trial++ {
		db := expr.DB{
			"X": workload.RandomRelation(rnd, "X", 6),
			"Y": workload.RandomRelation(rnd, "Y", 6),
			"Z": workload.RandomRelation(rnd, "Z", 6),
		}
		// Example 2 shape: X -> (Y - Z): not freely reorderable.
		q := expr.NewOuter(expr.NewLeaf("X"),
			expr.NewJoin(expr.NewLeaf("Y"), expr.NewLeaf("Z"), workload.RandomPredicate(rnd, "Y", "Z")),
			workload.RandomPredicate(rnd, "X", "Y"))
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		o := New(catalogFor(db))
		got, _, reordered, err := o.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		if reordered {
			t.Fatal("Example 2 query must not be reordered")
		}
		if !got.EqualBag(want) {
			t.Fatalf("trial %d: fixed-order plan wrong\nq=%s", trial, q.StringWithPreds())
		}
	}
}

func TestFixedOrderRightOuterNormalized(t *testing.T) {
	rnd := rand.New(rand.NewSource(57))
	db := expr.DB{
		"X": workload.RandomRelation(rnd, "X", 6),
		"Y": workload.RandomRelation(rnd, "Y", 6),
	}
	q := expr.NewRightOuter(expr.NewLeaf("X"), expr.NewLeaf("Y"), eqp("X", "Y"))
	want, err := q.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	o := New(catalogFor(db))
	p, err := o.PlanFixed(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != expr.LeftOuter || p.Left.Table != "Y" {
		t.Fatalf("RightOuter not normalized: %s", p.Tree())
	}
	got, _, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualBag(want) {
		t.Fatal("normalized plan wrong")
	}
}

func TestPlanFixedRejectsOtherOps(t *testing.T) {
	o := New(storage.NewCatalog())
	q := expr.NewAnti(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S"))
	if _, err := o.PlanFixed(q); err == nil {
		t.Error("antijoin plans unsupported")
	}
}

// TestExample1PlanChoice reproduces the paper's Example 1 preference:
// with a 1-row R1 and key indexes on R2, R3, the optimizer must pick an
// index-driven left-deep plan starting from R1, and execution must
// retrieve ~3 tuples instead of ~2N.
func TestExample1PlanChoice(t *testing.T) {
	const n = 20000
	rnd := rand.New(rand.NewSource(58))
	cat := storage.NewCatalog()
	r1 := relation.New(relation.SchemeOf("R1", "a", "b"))
	r1.AppendRaw([]relation.Value{relation.Int(7), relation.Int(0)})
	cat.AddRelation("R1", r1)
	cat.AddRelation("R2", workload.UniformRelation(rnd, "R2", n, 1<<40))
	cat.AddRelation("R3", workload.UniformRelation(rnd, "R3", n, 1<<40))
	for _, tn := range []string{"R2", "R3"} {
		tb, _ := cat.Table(tn)
		if _, err := tb.BuildHashIndex("a"); err != nil {
			t.Fatal(err)
		}
	}
	// R1 - (R2 -> R3), equijoining keys.
	q := expr.NewJoin(expr.NewLeaf("R1"),
		expr.NewOuter(expr.NewLeaf("R2"), expr.NewLeaf("R3"), eqp("R2", "R3")),
		eqp("R1", "R2"))
	o := New(cat)
	p, reordered, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reordered {
		t.Fatal("Example 1 query is freely reorderable")
	}
	out, c, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("result rows = %d", out.Len())
	}
	if c.TuplesRetrieved() > 10 {
		t.Fatalf("optimized plan retrieved %d tuples (plan:\n%s)", c.TuplesRetrieved(), p.Explain())
	}
	// The join-before-outerjoin association must have been chosen with R1
	// driving.
	if !strings.HasPrefix(p.Tree(), "((R1") {
		t.Errorf("plan tree = %s, want R1-driven left-deep", p.Tree())
	}

	// Baseline: fixed-order plan of the user's tree evaluates R2 -> R3
	// first and must retrieve ~2N tuples.
	fixed, err := o.PlanFixed(q)
	if err != nil {
		t.Fatal(err)
	}
	_, cf, err := o.Execute(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if cf.TuplesRetrieved() < int64(n) {
		t.Errorf("fixed plan retrieved only %d tuples; expected ~2N", cf.TuplesRetrieved())
	}
	if cf.TuplesRetrieved() <= 100*c.TuplesRetrieved() {
		t.Errorf("expected >=100x gap: fixed=%d optimized=%d", cf.TuplesRetrieved(), c.TuplesRetrieved())
	}
}

func TestExplainAndTree(t *testing.T) {
	cat := storage.NewCatalog()
	cat.AddRelation("R", relation.FromRows("R", []string{"a"}, []any{1}))
	cat.AddRelation("S", relation.FromRows("S", []string{"a"}, []any{1}))
	o := New(cat)
	q := expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S"))
	p, _, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	ex := p.Explain()
	if !strings.Contains(ex, "leftouterjoin") || !strings.Contains(ex, "scan R") {
		t.Errorf("Explain = %q", ex)
	}
	if p.Tree() != "(R -> S)" {
		t.Errorf("Tree = %q", p.Tree())
	}
	// Round-trip to expression.
	back := p.ToExpr()
	if back.String() != "(R -> S)" {
		t.Errorf("ToExpr = %v", back)
	}
}

func TestOptimizeGraphErrors(t *testing.T) {
	o := New(storage.NewCatalog())
	g := workload.JoinChainGraph(2)
	if _, err := o.OptimizeGraph(g); err == nil {
		t.Error("missing tables must fail")
	}
	rnd := rand.New(rand.NewSource(59))
	db := workload.RandomDB(rnd, g, 3)
	o2 := New(catalogFor(db))
	if _, err := o2.OptimizeGraph(g); err != nil {
		t.Errorf("valid graph failed: %v", err)
	}
}

// TestMergePlanBuildsAndRuns forces the sort-merge candidate and checks
// it computes the same result as the reference algebra.
func TestMergePlanBuildsAndRuns(t *testing.T) {
	rnd := rand.New(rand.NewSource(61))
	db := expr.DB{
		"A": workload.RandomRelation(rnd, "A", 20),
		"B": workload.RandomRelation(rnd, "B", 20),
	}
	o := New(catalogFor(db))
	for _, op := range []expr.Op{expr.Join, expr.LeftOuter} {
		q := &expr.Node{Op: op, Left: expr.NewLeaf("A"), Right: expr.NewLeaf("B"), Pred: eqp("A", "B")}
		l, err := o.scanPlan("A")
		if err != nil {
			t.Fatal(err)
		}
		r, err := o.scanPlan("B")
		if err != nil {
			t.Fatal(err)
		}
		sp := expr.Split{Op: op, Pred: q.Pred, S1Preserved: true}
		var merge *Plan
		for _, cand := range o.fixedJoinPlans(sp, l, r) {
			if cand.Algo == AlgoMerge {
				merge = cand
			}
		}
		if merge == nil {
			t.Fatal("no merge candidate generated")
		}
		got, _, err := o.Execute(merge)
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualBag(want) {
			t.Fatalf("merge plan wrong for %s", op)
		}
	}
	if sortCostOf(1) != 0 {
		t.Error("sortCostOf(1) must be 0")
	}
	if sortCostOf(8) <= 0 {
		t.Error("sortCostOf must grow")
	}
}

// TestLeftDeepOnly: the restricted search still finds correct plans
// (every right operand a base table) and never beats the bushy optimum.
func TestLeftDeepOnly(t *testing.T) {
	rnd := rand.New(rand.NewSource(62))
	for trial := 0; trial < 60; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(4), rnd.Intn(3))
		db := workload.RandomDB(rnd, g, 6)
		bushy := New(catalogFor(db))
		leftDeep := New(catalogFor(db))
		leftDeep.LeftDeepOnly = true

		pb, err := bushy.OptimizeGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := leftDeep.OptimizeGraph(g)
		if err != nil {
			t.Fatalf("trial %d: left-deep plan must exist for nice graphs: %v\n%v", trial, err, g)
		}
		if pl.Cost < pb.Cost {
			t.Fatalf("trial %d: left-deep cost %v beats bushy %v", trial, pl.Cost, pb.Cost)
		}
		assertLeftDeep(t, pl)
		// Both compute the same result.
		rb, _, err := bushy.Execute(pb)
		if err != nil {
			t.Fatal(err)
		}
		rl, _, err := leftDeep.Execute(pl)
		if err != nil {
			t.Fatal(err)
		}
		if !rb.EqualBag(rl) {
			t.Fatalf("trial %d: left-deep result differs", trial)
		}
	}
}

func assertLeftDeep(t *testing.T, p *Plan) {
	t.Helper()
	if p.IsLeaf() || p.Op == expr.Restrict {
		return
	}
	if !singleTable(p.Right) {
		t.Fatalf("plan not left-deep: %s", p.Tree())
	}
	assertLeftDeep(t, p.Left)
}

func TestAlgoString(t *testing.T) {
	for a, want := range map[Algo]string{AlgoScan: "scan", AlgoHash: "hash", AlgoIndex: "index", AlgoNL: "nestedloop", AlgoMerge: "sortmerge"} {
		if a.String() != want {
			t.Errorf("algo %d renders %q", a, a.String())
		}
	}
	if Algo(9).String() == "" {
		t.Error("unknown algo rendering")
	}
}

// TestOptimizerUsesCheapAlgorithms: on a pure join with indexes the DP
// should not pick nested loops.
func TestOptimizerPrefersIndexOrHash(t *testing.T) {
	rnd := rand.New(rand.NewSource(60))
	cat := storage.NewCatalog()
	cat.AddRelation("A", workload.UniformRelation(rnd, "A", 1000, 100))
	cat.AddRelation("B", workload.UniformRelation(rnd, "B", 1000, 100))
	tb, _ := cat.Table("B")
	if _, err := tb.BuildHashIndex("a"); err != nil {
		t.Fatal(err)
	}
	o := New(cat)
	q := expr.NewJoin(expr.NewLeaf("A"), expr.NewLeaf("B"), eqp("A", "B"))
	p, _, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algo == AlgoNL {
		t.Errorf("DP picked nested loops:\n%s", p.Explain())
	}
	var c exec.Counters
	it, err := o.Build(p, &c)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(it, &c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1000 {
		t.Errorf("key-key join rows = %d", out.Len())
	}
}
