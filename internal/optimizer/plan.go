// Package optimizer is a cost-based join/outerjoin optimizer built on the
// paper's result (§6.1): when a query is freely reorderable, a
// conventional dynamic-programming optimizer may enumerate every
// implementing tree of the query graph — filling in Join or Outerjoin
// (preserving the edge direction) — with no additional legality analysis.
// Queries that are not freely reorderable fall back to a fixed-order plan
// that keeps the user's association and only selects physical algorithms.
package optimizer

import (
	"fmt"
	"strings"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// Algo is the physical algorithm implementing a join operator.
type Algo uint8

// Physical join algorithms.
const (
	AlgoScan Algo = iota // leaves
	AlgoHash
	AlgoIndex
	AlgoNL
	AlgoMerge
	AlgoIndexScan  // leaf fetched through a hash index on a constant key
	AlgoSemiReduce // semijoin filter step of the Yannakakis full reducer
)

// String returns the algorithm name.
func (a Algo) String() string {
	switch a {
	case AlgoScan:
		return "scan"
	case AlgoHash:
		return "hash"
	case AlgoIndex:
		return "index"
	case AlgoNL:
		return "nestedloop"
	case AlgoMerge:
		return "sortmerge"
	case AlgoIndexScan:
		return "indexscan"
	case AlgoSemiReduce:
		return "semireduce"
	default:
		return fmt.Sprintf("Algo(%d)", uint8(a))
	}
}

// Plan is a physical plan node: a base-table scan or a binary join-family
// operator with a chosen algorithm and cost/cardinality estimates.
type Plan struct {
	// Leaves.
	Table string

	// Internal nodes.
	Left, Right *Plan
	Op          expr.Op // Join, LeftOuter (left side preserved), or GOJ
	Pred        predicate.Predicate
	Algo        Algo
	IndexCol    string          // AlgoIndex / AlgoIndexScan: the indexed column
	IndexVal    relation.Value  // AlgoIndexScan: the constant key
	GOJAttrs    []relation.Attr // Op == GOJ: the S attribute set

	// Estimates.
	Scheme  *relation.Scheme
	EstRows float64
	Cost    float64
}

// IsLeaf reports whether the plan is a base-table scan.
func (p *Plan) IsLeaf() bool { return p.Table != "" }

// Tree renders the plan as its logical expression string.
func (p *Plan) Tree() string {
	if p.IsLeaf() {
		if p.Algo == AlgoIndexScan {
			return "sigma(" + p.Table + ")"
		}
		return p.Table
	}
	if p.Op == expr.Restrict {
		return "sigma(" + p.Left.Tree() + ")"
	}
	op := "-"
	switch p.Op {
	case expr.LeftOuter:
		op = "->"
	case expr.GOJ:
		op = "goj"
	case expr.Semijoin:
		op = "semi"
	}
	return "(" + p.Left.Tree() + " " + op + " " + p.Right.Tree() + ")"
}

// Explain renders the plan as an indented operator tree with estimates.
func (p *Plan) Explain() string {
	var b strings.Builder
	p.explainTo(&b, 0)
	return b.String()
}

func (p *Plan) explainTo(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if p.IsLeaf() {
		if p.Algo == AlgoIndexScan {
			fmt.Fprintf(b, "%sindexscan %s.%s = %s (rows=%.0f cost=%.0f)\n",
				indent, p.Table, p.IndexCol, p.IndexVal, p.EstRows, p.Cost)
			return
		}
		fmt.Fprintf(b, "%sscan %s (rows=%.0f cost=%.0f)\n", indent, p.Table, p.EstRows, p.Cost)
		return
	}
	if p.Op == expr.Restrict {
		fmt.Fprintf(b, "%sfilter on %s (rows=%.0f cost=%.0f)\n", indent, p.Pred, p.EstRows, p.Cost)
		p.Left.explainTo(b, depth+1)
		return
	}
	opName := "join"
	switch p.Op {
	case expr.LeftOuter:
		opName = "leftouterjoin"
	case expr.GOJ:
		opName = "generalizedouterjoin"
	case expr.Semijoin:
		opName = "semireduce"
	}
	algo := p.Algo.String()
	switch {
	case p.Algo == AlgoIndex:
		algo = fmt.Sprintf("index(%s.%s)", p.Right.Table, p.IndexCol)
	case p.Algo == AlgoSemiReduce:
		if _, _, ok := predicate.EquiParts(p.Pred, p.Left.Scheme, p.Right.Scheme); ok {
			algo = "hash"
		} else {
			algo = "scan"
		}
	}
	fmt.Fprintf(b, "%s%s [%s] on %s (rows=%.0f cost=%.0f)\n", indent, opName, algo, p.Pred, p.EstRows, p.Cost)
	p.Left.explainTo(b, depth+1)
	p.Right.explainTo(b, depth+1)
}

// ToExpr converts the plan back to a logical expression tree (for
// verification against the reference algebra).
func (p *Plan) ToExpr() *expr.Node {
	if p.IsLeaf() {
		leaf := expr.NewLeaf(p.Table)
		if p.Algo == AlgoIndexScan {
			return expr.NewRestrict(leaf, predicate.EqConst(
				relation.A(p.Table, p.IndexCol), p.IndexVal))
		}
		return leaf
	}
	if p.Op == expr.Restrict {
		return expr.NewRestrict(p.Left.ToExpr(), p.Pred)
	}
	l, r := p.Left.ToExpr(), p.Right.ToExpr()
	switch p.Op {
	case expr.LeftOuter:
		return expr.NewOuter(l, r, p.Pred)
	case expr.GOJ:
		return expr.NewGOJ(l, r, p.Pred, p.GOJAttrs)
	case expr.Semijoin:
		return expr.NewSemi(l, r, p.Pred)
	default:
		return expr.NewJoin(l, r, p.Pred)
	}
}
