package optimizer

import (
	"math/rand"
	"testing"

	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/workload"
)

// FuzzJoinTree decodes arbitrary byte strings into small query graphs
// and drives them through the Yannakakis front door: BuildJoinTree and
// ReducerProgram must never panic (cyclic, disconnected, misoriented
// and semijoin graphs must come back as errors), and whenever the graph
// both has a join tree and is certified freely reorderable, the forced
// yannakakis plan must execute to exactly the reference algebra's bag
// on a small seeded database.
//
// Byte codec, one candidate edge per byte over nodes A..H:
//
//	bits 0-2  v endpoint
//	bits 3-5  u endpoint
//	bit 6     edge kind (0 join, 1 outerjoin u -> v)
//	bit 7     predicate (0: u.a = v.a, 1: u.a < v.b)
//
// Self-loops and edges the graph rejects (parallel pairs, second outer
// edge into one node) are skipped.
func FuzzJoinTree(f *testing.F) {
	f.Add([]byte{0x01, 0x0a})             // join chain A - B - C
	f.Add([]byte{0x41, 0x4a})             // outer chain A -> B -> C
	f.Add([]byte{0x01, 0x42})             // join A - B with outer leaf A -> C
	f.Add([]byte{0x01, 0x0a, 0x02})       // triangle: no join tree
	f.Add([]byte{0x01, 0x02, 0x03})       // join star at A
	f.Add([]byte{0x81, 0xc2})             // non-equi predicates, mixed kinds
	f.Add([]byte{0x41, 0x0a})             // outer A -> B then join B - C: tree but not nice
	f.Add([]byte{0x01, 0x0a, 0x13, 0x1c}) // longer chain

	names := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graph.New()
		edges := 0
		for _, b := range data {
			u, v := names[(b>>3)&0x07], names[b&0x07]
			if u == v {
				continue
			}
			var p predicate.Predicate
			if b&0x80 != 0 {
				p = predicate.Cmp(predicate.LtOp,
					predicate.Col(relation.A(u, "a")), predicate.Col(relation.A(v, "b")))
			} else {
				p = predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
			}
			var err error
			if b&0x40 != 0 {
				err = g.AddOuterEdge(u, v, p)
			} else {
				err = g.AddJoinEdge(u, v, p)
			}
			if err == nil {
				edges++
			}
		}
		if edges == 0 {
			return
		}

		jt, err := graph.BuildJoinTree(g) // must not panic on any input
		if err != nil {
			return
		}
		steps := jt.ReducerProgram() // nor here
		if g.NumNodes() >= 2 && len(steps) == 0 {
			t.Fatalf("join tree over %d nodes produced an empty reducer program", g.NumNodes())
		}
		if g.NumNodes() > 5 || !core.AnalyzeGraph(g).Free {
			// Execution equivalence is only promised for freely-reorderable
			// graphs; keep the executed instances small.
			return
		}

		var seed int64
		for _, b := range data {
			seed = seed*131 + int64(b)
		}
		rnd := rand.New(rand.NewSource(seed))
		db := workload.RandomDanglingDB(rnd, g, 5, 0.4)
		o := New(catalogFor(db))
		o.Strategy = "yannakakis"
		p, err := o.OptimizeGraph(g)
		if err != nil {
			t.Fatalf("yannakakis plan over a valid join tree failed: %v\ngraph:\n%s", err, g)
		}
		its, err := expr.EnumerateITs(g, true)
		if err != nil || len(its) == 0 {
			t.Fatalf("EnumerateITs: %v (%d trees)\ngraph:\n%s", err, len(its), g)
		}
		ref, err := its[0].Eval(db)
		if err != nil {
			t.Fatalf("algebra eval: %v", err)
		}
		got, _, err := o.Execute(p)
		if err != nil {
			t.Fatalf("yannakakis execute: %v\nplan:\n%s", err, p.Explain())
		}
		if !got.EqualBag(ref) {
			t.Fatalf("reduce-then-join bag differs from the reference algebra: want %d rows, got %d\ngraph:\n%s\nplan:\n%s",
				ref.Len(), got.Len(), g, p.Explain())
		}
	})
}
