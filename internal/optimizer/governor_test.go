package optimizer

import (
	"context"
	"errors"
	"strings"
	"testing"

	"freejoin/internal/exec"
	"freejoin/internal/parse"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// Governor trips through the full pipeline: parse → PlanQuery → build →
// instrumented execute under limits, asserting typed errors, clean
// release, and that EXPLAIN ANALYZE names the tripping operator.

func governorCatalog(t *testing.T) *storage.Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	mk := func(name string, n int) {
		r := relation.New(relation.SchemeOf(name, "a", "b"))
		for i := 0; i < n; i++ {
			r.AppendRaw([]relation.Value{relation.Int(int64(i % 7)), relation.Int(int64(i))})
		}
		cat.AddRelation(name, r)
	}
	mk("R", 40)
	mk("S", 40)
	mk("T", 40)
	return cat
}

func governorQuery(t *testing.T) (*Optimizer, *Plan) {
	t.Helper()
	q, err := parse.Expr("(R -[R.a = S.a] S) -[S.a = T.a] T")
	if err != nil {
		t.Fatal(err)
	}
	o := New(governorCatalog(t))
	p, _, err := o.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return o, p
}

func TestGovernorTripThroughOptimizer(t *testing.T) {
	o, p := governorQuery(t)

	// Sanity: the ungoverned plan executes.
	if _, _, err := o.Execute(p); err != nil {
		t.Fatalf("ungoverned: %v", err)
	}

	gov := exec.NewGovernor(1, 0) // one buffered row: any join build trips
	ec := exec.NewExecContext(context.Background(), gov)
	_, _, err := o.ExecuteCtx(ec, p)
	var re *exec.ResourceError
	if !errors.As(err, &re) || re.Kind != exec.MemoryExceeded {
		t.Fatalf("want MemoryExceeded through the optimizer path, got %v", err)
	}
	if re.Operator == "" {
		t.Error("trip must name the operator")
	}
	if gov.UsedRows() != 0 || gov.UsedBytes() != 0 {
		t.Errorf("governor not drained: rows=%d bytes=%d", gov.UsedRows(), gov.UsedBytes())
	}
}

func TestCancelledContextThroughOptimizer(t *testing.T) {
	o, p := governorQuery(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := o.ExecuteCtx(exec.NewExecContext(ctx, nil), p)
	var re *exec.ResourceError
	if !errors.As(err, &re) || re.Kind != exec.Cancelled {
		t.Fatalf("want Cancelled through the optimizer path, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("cause must unwrap to context.Canceled")
	}
}

// TestExplainAnalyzeNamesTrippingOperator: an aborted EXPLAIN ANALYZE
// must render the partial tree, mark the tripping operator, record
// governor events, and carry the plan-node label in the typed error.
func TestExplainAnalyzeNamesTrippingOperator(t *testing.T) {
	o, p := governorQuery(t)
	gov := exec.NewGovernor(1, 0)
	ec := exec.NewExecContext(context.Background(), gov)
	_, _, text, err := o.ExplainAnalyzeCtx(ec, p, nil)
	var re *exec.ResourceError
	if !errors.As(err, &re) || re.Kind != exec.MemoryExceeded {
		t.Fatalf("want MemoryExceeded, got %v", err)
	}
	if re.Node == "" {
		t.Error("instrumented execution must stamp the plan-node label")
	}
	if !strings.Contains(text, "-- aborted:") {
		t.Errorf("rendering must carry the abort trailer:\n%s", text)
	}
	if !strings.Contains(text, "<-- error:") {
		t.Errorf("rendering must mark the tripping node:\n%s", text)
	}
	if !strings.Contains(text, "-- governor:") {
		t.Errorf("rendering must list governor events:\n%s", text)
	}
	if !strings.Contains(text, re.Node) {
		t.Errorf("tripping node %q absent from rendering:\n%s", re.Node, text)
	}
	if gov.UsedRows() != 0 {
		t.Errorf("governor not drained after abort: %d rows", gov.UsedRows())
	}
}

// TestExplainAnalyzeCtxCleanRun: the governed path with room to spare
// behaves exactly like the ungoverned one.
func TestExplainAnalyzeCtxCleanRun(t *testing.T) {
	o, p := governorQuery(t)
	want, _, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	gov := exec.NewGovernor(1_000_000, 0)
	got, _, text, err := o.ExplainAnalyzeCtx(exec.NewExecContext(context.Background(), gov), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualBag(got) {
		t.Error("governed execution changed the result")
	}
	if !strings.Contains(text, "-- totals:") {
		t.Errorf("clean run must render totals:\n%s", text)
	}
	if gov.UsedRows() != 0 {
		t.Errorf("governor not drained: %d rows", gov.UsedRows())
	}
}

// TestOptimizerFallbackWiring: when the build side is a scan of a table
// with a hash index on the equi-key, the built hash join degrades under
// budget pressure instead of failing, and the result matches.
func TestOptimizerFallbackWiring(t *testing.T) {
	cat := governorCatalog(t)
	tb, err := cat.Table("S")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.BuildHashIndex("a"); err != nil {
		t.Fatal(err)
	}
	q, err := parse.Expr("R -[R.a = S.a] S")
	if err != nil {
		t.Fatal(err)
	}
	o := New(cat)
	p, _, err := o.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algo != AlgoHash {
		t.Skipf("planner chose %v, not a hash join; fallback wiring not exercised", p.Algo)
	}
	// A 50-row budget admits neither side's 40-row build, but the index
	// strategy buffers almost nothing.
	gov := exec.NewGovernor(30, 0)
	got, _, err := o.ExecuteCtx(exec.NewExecContext(context.Background(), gov), p)
	if err != nil {
		t.Fatalf("expected graceful degradation, got %v", err)
	}
	if !want.EqualBag(got) {
		t.Error("degraded plan changed the result")
	}
	found := false
	for _, ev := range gov.Events() {
		if strings.Contains(ev, "degraded to index strategy") {
			found = true
		}
	}
	if !found {
		t.Errorf("degradation must be recorded as a governor event: %v", gov.Events())
	}
}
