package optimizer

import (
	"fmt"

	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/predicate"
)

// The Yannakakis acyclic fast path. When the query graph is a tree (every
// nice graph with n-1 edges is), the DP's O(3^n) enumeration can be
// sidestepped entirely: root the join tree, run a semijoin full-reducer
// program over it — a bottom-up pass followed by a top-down pass, each
// step deleting tuples that cannot contribute to the final result — and
// then join the reduced relations along the tree. After full reduction
// every intermediate join result is no larger than the final output, so
// the plan's worst case is O(input + output) regardless of join order.
//
// Outerjoin edges constrain the program (the reducer must never delete a
// preserved tuple that the outerjoin would have padded):
//
//   - the tree is rooted so every OuterEdge points parent → child
//     (graph.BuildJoinTree rejects graphs where no such root exists);
//   - the bottom-up pass reduces a parent only across JoinEdges — a
//     preserved parent is never filtered by its null-supplied child;
//   - the top-down pass reduces children across every edge kind: a child
//     tuple that matches no surviving parent tuple appears in no output
//     row whether the edge is a join (no match at all) or an outerjoin
//     (the parent row pads with nulls instead of pairing).

// planYannakakis builds the reducer-then-join plan for a tree-shaped
// query graph, or reports why the fast path does not apply (cyclic or
// disconnected graph, semijoin edges, no sound root). The caller decides
// whether an error means fallback (strategy dispatch) or failure.
func (o *Optimizer) planYannakakis(g *graph.Graph, filters map[string]predicate.Predicate) (*Plan, error) {
	jt, err := graph.BuildJoinTree(g)
	if err != nil {
		return nil, err
	}

	// Leaf plans, shared by reference: every reducer step replaces the
	// current plan for its target, and later steps (and the join phase)
	// pick up whichever reduction is most recent. The result is a DAG of
	// immutable *Plan nodes — a reduced relation's plan appears both as
	// the source of later reductions and in the join phase.
	cur := make(map[string]*Plan, g.NumNodes())
	for _, name := range g.Nodes() {
		p, err := o.leafPlan(name, filters[name])
		if err != nil {
			return nil, err
		}
		cur[name] = p
	}

	for _, step := range jt.ReducerProgram() {
		cur[step.Target] = o.semiReducePlan(cur[step.Target], cur[step.Source], step.Pred)
	}

	// Join phase: fold each node's reduced relation with its children's
	// subtree plans, bottom-up. Each tree edge is consumed exactly once
	// with its own kind — Join for JoinEdge, LeftOuter (parent side
	// preserved) for OuterEdge — so the result is an implementing tree
	// of g over the reduced relations.
	sub := make(map[string]*Plan, g.NumNodes())
	for _, n := range jt.PostOrder() {
		acc := cur[n]
		for _, c := range jt.Children(n) {
			_, e, _ := jt.Parent(c)
			op := expr.Join
			if e.Kind == graph.OuterEdge {
				op = expr.LeftOuter
			}
			sp := expr.Split{Op: op, Pred: e.Pred, S1Preserved: true}
			cands := o.fixedJoinPlans(sp, acc, sub[c])
			if op == expr.Join {
				cands = append(cands, o.fixedJoinPlans(sp, sub[c], acc)...)
			}
			best, err := cheapest(cands)
			if err != nil {
				return nil, fmt.Errorf("yannakakis join phase at %s: %w", n, err)
			}
			acc = best
		}
		sub[n] = acc
	}
	return sub[jt.Root()], nil
}

// semiReducePlan builds one reducer step: target ⋉ source on pred. The
// output scheme is the target's own; the estimate is the target scaled
// by the predicate's selectivity against the source, never exceeding the
// target (a filter cannot grow its input).
func (o *Optimizer) semiReducePlan(target, source *Plan, pred predicate.Predicate) *Plan {
	sel := 1.0
	for _, c := range predicate.Conjuncts(pred) {
		sel *= o.conjunctSelectivity(c, target, source)
	}
	rows := target.EstRows * source.EstRows * sel
	if rows > target.EstRows {
		rows = target.EstRows
	}
	if rows < 1 {
		rows = 1
	}
	return &Plan{
		Left: target, Right: source, Op: expr.Semijoin, Pred: pred,
		Algo:   AlgoSemiReduce,
		Scheme: target.Scheme, EstRows: rows,
		Cost: target.Cost + source.Cost +
			target.EstRows*costProbePerRow + source.EstRows*costBuildPerRow +
			rows*costOutputPerRow,
	}
}

// planUsesSemiReduce reports whether any node of p is a reducer step —
// the plan-shape marker of the Yannakakis strategy, robust across plan
// cache hits (the cached plan carries its own shape).
func planUsesSemiReduce(p *Plan) bool {
	if p == nil || p.IsLeaf() {
		return false
	}
	if p.Algo == AlgoSemiReduce {
		return true
	}
	return planUsesSemiReduce(p.Left) || planUsesSemiReduce(p.Right)
}

// strategyFor names the strategy that produced a reordered plan, by
// inspecting the plan itself.
func strategyFor(p *Plan) string {
	if planUsesSemiReduce(p) {
		return "yannakakis"
	}
	return "reordered"
}

// planGraph dispatches a freely-reorderable graph to the configured
// strategy. It sits between the plan cache and the planners: cached or
// not, every reordered plan flows through here.
func (o *Optimizer) planGraph(g *graph.Graph, filters map[string]predicate.Predicate, tr *Trace) (*Plan, error) {
	switch o.Strategy {
	case "", "dp":
		return o.optimizeGraph(g, filters, tr)
	case "yannakakis":
		p, err := o.planYannakakis(g, filters)
		if err == nil {
			return p, nil
		}
		if tr != nil && tr.FallbackReason == "" {
			tr.FallbackReason = "yannakakis inapplicable: " + err.Error()
		}
		return o.optimizeGraph(g, filters, tr)
	case "auto":
		dp, err := o.optimizeGraph(g, filters, tr)
		if err != nil {
			return nil, err
		}
		if y, yerr := o.planYannakakis(g, filters); yerr == nil && y.Cost < dp.Cost {
			return y, nil
		}
		return dp, nil
	default:
		return nil, fmt.Errorf("optimizer: unknown strategy %q", o.Strategy)
	}
}
