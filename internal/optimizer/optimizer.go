package optimizer

import (
	"fmt"
	"math"
	"time"

	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/plancache"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// Cost model constants: everything is measured in "tuples touched", the
// unit of the paper's Example 1.
const (
	costScanPerRow   = 1.0
	costBuildPerRow  = 1.0
	costProbePerRow  = 1.0
	costLookup       = 1.0 // per index probe
	costNLPerPair    = 1.0
	costSortPerRow   = 0.5 // multiplied by log2(rows)
	costMergePerRow  = 1.0
	costOutputPerRow = 0.2
	defaultNDV       = 10.0
	defaultSel       = 1.0 / 3.0
)

// Optimizer plans queries over a catalog.
type Optimizer struct {
	cat *storage.Catalog

	// LeftDeepOnly restricts the DP to left-deep trees (every right
	// operand a base table), the classic System R search-space trade-off.
	// Bushy plans are searched by default; the flag exists for the
	// ablation in BenchmarkLeftDeepVsBushy.
	LeftDeepOnly bool

	// Spill declares that plans from this optimizer run on execution
	// contexts with spill-to-disk enabled, so blocking operators degrade
	// to external algorithms (grace hash join, external sort) instead of
	// index fallbacks or aborts on a memory-budget trip. The flag is
	// planner-side configuration: it selects the degradation path
	// recorded in the trace and keys the plan cache (a plan whose
	// fallback wiring assumed spilling must not be served to a
	// non-spilling session, and vice versa). The execution context's
	// EnableSpill carries the actual directory and fan-out.
	Spill bool

	// Strategy selects how freely-reorderable graphs are planned:
	//
	//	""            — classic DP over implementing trees (the default);
	//	"dp"          — same, spelled out;
	//	"yannakakis"  — force the acyclic fast path (a semijoin full
	//	                reducer over the join tree followed by the reduced
	//	                join) whenever the graph is a tree, falling back to
	//	                the DP otherwise;
	//	"auto"        — plan both and keep whichever the cost model says
	//	                is cheaper (ties go to the DP).
	//
	// The strategy keys the plan cache: toggling it never aliases plans.
	Strategy string

	// BatchSize selects the vectorized-execution lowering. Zero (the
	// default) lowers the batch-capable operators — full scans, filters,
	// hash joins, equi semireduces — to their batch implementations with
	// exec.DefaultBatchSize rows per batch; a positive value sets an
	// explicit batch size; BatchOff forces the row-at-a-time operators.
	// The mode keys the plan cache: a fingerprint must never alias
	// across row and batch lowering (or across explicit sizes).
	BatchSize int

	// Cache, when set, is consulted before the reordering DP: queries
	// whose canonical graph fingerprint is resident skip optimization
	// entirely and share the cached plan (Theorem 1 makes the graph the
	// correct key — every implementing tree has the same result). Nil
	// disables caching. Several optimizers may share one cache; it is
	// safe for concurrent use.
	Cache *plancache.Cache
}

// BatchOff disables the batch lowering (Optimizer.BatchSize): every
// operator is built row-at-a-time.
const BatchOff = -1

// New returns an optimizer over the catalog.
func New(cat *storage.Catalog) *Optimizer { return &Optimizer{cat: cat} }

// batchRows resolves BatchSize for lowering: on reports whether the
// batch operators should be built at all, and size is the explicit
// per-operator batch size (0 lets the operator pick its default).
func (o *Optimizer) batchRows() (size int, on bool) {
	switch {
	case o.BatchSize < 0:
		return 0, false
	case o.BatchSize == 0:
		return 0, true // operators fall back to exec.DefaultBatchSize
	default:
		return o.BatchSize, true
	}
}

// Optimize plans q. Per §6.1: if q is freely reorderable, the optimizer
// enumerates every implementing tree of graph(q) by dynamic programming
// and returns the cheapest; otherwise it returns a fixed-order plan that
// honors q's own association (reordered, the query could change meaning).
// The second result reports whether reordering was performed.
func (o *Optimizer) Optimize(q *expr.Node) (*Plan, bool, error) {
	p, tr, err := o.OptimizeTrace(q)
	if err != nil {
		return nil, false, err
	}
	return p, tr.Reordered(), nil
}

// OptimizeTrace is Optimize with the decision record attached. A query
// whose graph is undefined (Definition 1 fails: a relation used twice, a
// predicate not spanning exactly the two operand sides, an operator
// outside the join/outerjoin set) is an error, not a fixed-order plan —
// the fallback is reserved for well-formed queries that are merely not
// provably freely reorderable, and the trace records that verdict.
func (o *Optimizer) OptimizeTrace(q *expr.Node) (*Plan, *Trace, error) {
	p, tr, err := o.optimizeTrace(q)
	if err == nil {
		recordTrace(tr)
	}
	return p, tr, err
}

// optimizeTrace is OptimizeTrace without the metrics hook, for callers
// (OptimizeWithGOJTrace) that may still revise the strategy.
func (o *Optimizer) optimizeTrace(q *expr.Node) (*Plan, *Trace, error) {
	aStart := time.Now()
	analysis, err := core.Analyze(q)
	if err != nil {
		return nil, nil, fmt.Errorf("optimizer: query graph undefined: %w", err)
	}
	tr := &Trace{AnalyzeTime: time.Since(aStart)}
	if analysis.Free {
		p, err := o.optimizeGraphCached(analysis.Graph, nil, tr)
		if err != nil {
			return nil, nil, err
		}
		tr.Strategy = strategyFor(p)
		return p, tr, nil
	}
	tr.Strategy = "fixed"
	tr.FallbackReason = analysis.String()
	p, err := o.PlanFixed(q)
	return p, tr, err
}

// OptimizeGraph finds the cheapest plan among all implementing trees of a
// connected query graph, by dynamic programming over connected node
// subsets (the classic DP, with outerjoin edges handled like join edges
// but orientation-pinned).
func (o *Optimizer) OptimizeGraph(g *graph.Graph) (*Plan, error) {
	return o.optimizeGraphCached(g, nil, nil)
}

// OptimizeGraphTrace is OptimizeGraph with DP search statistics attached.
func (o *Optimizer) OptimizeGraphTrace(g *graph.Graph) (*Plan, *Trace, error) {
	tr := &Trace{Strategy: "reordered"}
	p, err := o.optimizeGraphCached(g, nil, tr)
	if err == nil {
		tr.Strategy = strategyFor(p)
		recordTrace(tr)
	}
	return p, tr, err
}

// PlanFixed produces a physical plan honoring q's own operator order:
// only algorithm selection, no reordering. It supports join and outerjoin
// operators (the IT operator set).
func (o *Optimizer) PlanFixed(q *expr.Node) (*Plan, error) {
	switch q.Op {
	case expr.Leaf:
		return o.scanPlan(q.Rel)
	case expr.Join, expr.LeftOuter, expr.RightOuter:
		l, err := o.PlanFixed(q.Left)
		if err != nil {
			return nil, err
		}
		r, err := o.PlanFixed(q.Right)
		if err != nil {
			return nil, err
		}
		op := q.Op
		if op == expr.RightOuter {
			// Normalize to left-preserved by swapping operands.
			l, r = r, l
			op = expr.LeftOuter
		}
		sp := expr.Split{Op: op, Pred: q.Pred, S1Preserved: true}
		return cheapest(o.fixedJoinPlans(sp, l, r))
	default:
		return nil, fmt.Errorf("optimizer: cannot plan operator %s", q.Op)
	}
}

// cheapest picks the lowest-cost candidate. An empty slice is an error
// (the operand schemes overlap, so no physical operator applies), not a
// panic: fixedJoinPlans legitimately returns nothing for e.g. a query
// that names the same relation on both sides.
func cheapest(cands []*Plan) (*Plan, error) {
	if len(cands) == 0 {
		return nil, fmt.Errorf("optimizer: no physical candidate (operand schemes overlap?)")
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.Cost < best.Cost {
			best = c
		}
	}
	return best, nil
}

// scanPlan builds a leaf plan for a base table.
func (o *Optimizer) scanPlan(name string) (*Plan, error) {
	t, err := o.cat.Table(name)
	if err != nil {
		return nil, err
	}
	rows := float64(t.Stats().Rows)
	return &Plan{
		Table:   name,
		Scheme:  t.Scheme(),
		EstRows: rows,
		Cost:    rows * costScanPerRow,
	}, nil
}

// joinPlans generates candidate physical plans for a DP split: for a join
// both operand orders, for an outerjoin only the preserved-left order.
func (o *Optimizer) joinPlans(sp expr.Split, p1, p2 *Plan) []*Plan {
	var out []*Plan
	if sp.Op != expr.Join && sp.Op != expr.LeftOuter {
		// Semijoin splits (the §6.3 extension) have no physical operators
		// in this optimizer yet; such graphs simply get no DP plan.
		return nil
	}
	if o.LeftDeepOnly && sp.S1.Count() > 1 && sp.S2.Count() > 1 {
		return nil // bushy split excluded
	}
	if sp.Op == expr.Join {
		out = append(out, o.fixedJoinPlans(sp, p1, p2)...)
		out = append(out, o.fixedJoinPlans(sp, p2, p1)...)
	} else if sp.S1Preserved {
		// Outerjoin: the preserved side drives (left).
		out = o.fixedJoinPlans(sp, p1, p2)
	} else {
		out = o.fixedJoinPlans(sp, p2, p1)
	}
	if o.LeftDeepOnly {
		// Keep only candidates whose right operand is a single (possibly
		// filtered) base table.
		kept := out[:0]
		for _, c := range out {
			if singleTable(c.Right) {
				kept = append(kept, c)
			}
		}
		return kept
	}
	return out
}

// singleTable reports whether a plan reads exactly one base table.
func singleTable(p *Plan) bool {
	if p.IsLeaf() {
		return true
	}
	return p.Op == expr.Restrict && p.Left.IsLeaf()
}

// fixedJoinPlans generates the applicable algorithm candidates for l ⋈ r.
func (o *Optimizer) fixedJoinPlans(sp expr.Split, l, r *Plan) []*Plan {
	scheme, err := l.Scheme.Concat(r.Scheme)
	if err != nil {
		// Overlapping schemes cannot occur for well-formed queries; skip.
		return nil
	}
	outRows := o.estimateJoinRows(sp, l, r)
	mk := func(algo Algo, idxCol string, cost float64) *Plan {
		return &Plan{
			Left: l, Right: r, Op: sp.Op, Pred: sp.Pred,
			Algo: algo, IndexCol: idxCol,
			Scheme: scheme, EstRows: outRows,
			Cost: l.Cost + r.Cost + cost + outRows*costOutputPerRow,
		}
	}
	var out []*Plan
	lk, rk, equi := predicate.EquiParts(sp.Pred, l.Scheme, r.Scheme)
	if equi {
		out = append(out, mk(AlgoHash, "", l.EstRows*costProbePerRow+r.EstRows*costBuildPerRow))
		// Sort-merge: pay an n·log n sort on each input plus the merge.
		// Without interesting-order tracking this rarely beats hash, but
		// the candidate keeps the cost model honest and the executor path
		// exercised (single-key equijoins only).
		if len(lk) == 1 {
			sortCost := sortCostOf(l.EstRows) + sortCostOf(r.EstRows)
			out = append(out, mk(AlgoMerge, "", sortCost+(l.EstRows+r.EstRows)*costMergePerRow))
		}
		// Index join: right side must be an unfiltered base table with a
		// hash index on a single equi column. Its cost does NOT scan the
		// right table — the Example 1 effect. (A filtered leaf cannot use
		// this path: the index fetch would bypass the filter.)
		if r.IsLeaf() && r.Algo == AlgoScan && len(rk) == 1 {
			if t, err := o.cat.Table(r.Table); err == nil {
				if _, ok := t.HashIndexOn(rk[0].Name); ok {
					matches := r.EstRows / ndvOf(t, rk[0].Name)
					// The index plan does not pay the right scan cost.
					cost := l.EstRows * (costLookup + matches)
					p := mk(AlgoIndex, rk[0].Name, cost)
					p.Cost -= r.Cost // right table never scanned
					out = append(out, p)
				}
			}
		}
	}
	out = append(out, mk(AlgoNL, "", l.EstRows*r.EstRows*costNLPerPair))
	return out
}

// estimateJoinRows estimates the operator's output cardinality.
func (o *Optimizer) estimateJoinRows(sp expr.Split, l, r *Plan) float64 {
	sel := 1.0
	for _, c := range predicate.Conjuncts(sp.Pred) {
		sel *= o.conjunctSelectivity(c, l, r)
	}
	rows := l.EstRows * r.EstRows * sel
	if sp.Op == expr.LeftOuter && rows < l.EstRows {
		rows = l.EstRows // every preserved tuple appears at least once
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

func (o *Optimizer) conjunctSelectivity(c predicate.Predicate, l, r *Plan) float64 {
	cmp, ok := c.(*predicate.Comparison)
	if !ok {
		return defaultSel
	}
	if cmp.Op != predicate.EqOp {
		return defaultSel
	}
	ndv := 1.0
	for _, term := range []predicate.Term{cmp.Left, cmp.Right} {
		if term.IsConst() {
			continue
		}
		if d := o.attrNDV(term.Attr()); d > ndv {
			ndv = d
		}
	}
	if ndv < 1 {
		ndv = defaultNDV
	}
	return 1.0 / ndv
}

// attrNDV looks up the base-table distinct count for an attribute.
func (o *Optimizer) attrNDV(a relation.Attr) float64 {
	t, err := o.cat.Table(a.Rel)
	if err != nil {
		return defaultNDV
	}
	return ndvOf(t, a.Name)
}

// sortCostOf models an in-memory sort of n rows.
func sortCostOf(n float64) float64 {
	if n < 2 {
		return 0
	}
	return n * costSortPerRow * math.Log2(n)
}

func ndvOf(t *storage.Table, col string) float64 {
	d := t.Stats().Distinct[col]
	if d <= 0 {
		return 1
	}
	return float64(d)
}
