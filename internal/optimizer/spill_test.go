package optimizer

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"freejoin/internal/core"
	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/obs"
	"freejoin/internal/parse"
	"freejoin/internal/plancache"
	"freejoin/internal/workload"
)

// Spilling through the planner: cache keying, trace annotation, EXPLAIN
// ANALYZE counters, and the metamorphic spill oracle.

// TestSpillToggleMissesPlanCache: a plan built with spilling enabled has
// different degradation wiring than one built without; toggling the
// optimizer's spill mode must never serve the other mode's cached plan.
func TestSpillToggleMissesPlanCache(t *testing.T) {
	o, q := cacheFixture(t, 77)

	_, tr1, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.CacheOutcome != "miss" {
		t.Fatalf("first optimize outcome %q; want miss", tr1.CacheOutcome)
	}

	o.Spill = true
	_, tr2, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.CacheOutcome != "miss" {
		t.Fatalf("spill-enabled optimize outcome %q; want miss (must not reuse the spill-off plan)", tr2.CacheOutcome)
	}
	if tr1.Fingerprint == tr2.Fingerprint {
		t.Fatalf("spill toggle did not change the fingerprint: %s", tr1.Fingerprint)
	}

	// Each mode hits its own entry on repeat.
	_, tr3, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr3.CacheOutcome != "hit" || tr3.Fingerprint != tr2.Fingerprint {
		t.Fatalf("spill-enabled repeat: outcome %q fp %q; want hit on %q", tr3.CacheOutcome, tr3.Fingerprint, tr2.Fingerprint)
	}
	o.Spill = false
	_, tr4, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr4.CacheOutcome != "hit" || tr4.Fingerprint != tr1.Fingerprint {
		t.Fatalf("spill-off repeat: outcome %q fp %q; want hit on %q", tr4.CacheOutcome, tr4.Fingerprint, tr1.Fingerprint)
	}
	if o.Cache.Len() != 2 {
		t.Fatalf("cache holds %d entries; want one per spill mode", o.Cache.Len())
	}
}

// TestTraceDegradationAnnotation: lowering records which budget-pressure
// path the plan's hash joins were wired with — grace-hash when spilling,
// the index alternative otherwise.
func TestTraceDegradationAnnotation(t *testing.T) {
	cat := governorCatalog(t)
	tb, err := cat.Table("S")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.BuildHashIndex("a"); err != nil {
		t.Fatal(err)
	}
	q, err := parse.Expr("R -[R.a = S.a] S")
	if err != nil {
		t.Fatal(err)
	}
	o := New(cat)
	p, _, err := o.PlanQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Algo != AlgoHash {
		t.Skipf("planner chose %v, not a hash join", p.Algo)
	}
	var c exec.Counters
	tr := &Trace{}
	if _, _, err := o.BuildInstrumentedTraced(p, &c, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tr.Degradation, "index join via S.a") {
		t.Errorf("spill-off degradation = %q; want the index fallback", tr.Degradation)
	}
	if !strings.Contains(tr.String(), "-- degradation:") {
		t.Errorf("trace rendering must carry the degradation line:\n%s", tr.String())
	}

	o.Spill = true
	tr = &Trace{}
	if _, _, err := o.BuildInstrumentedTraced(p, &c, tr); err != nil {
		t.Fatal(err)
	}
	if tr.Degradation != "grace-hash spill" {
		t.Errorf("spill-on degradation = %q; want grace-hash spill", tr.Degradation)
	}
}

// TestExplainAnalyzeSpillCounters: a governed run that spills must
// complete, match the ungoverned bag, render nonzero spill counters in
// the stats tree, note the degradation in governor events, and move the
// process-wide oj_spill_* metrics.
func TestExplainAnalyzeSpillCounters(t *testing.T) {
	o, p := governorQuery(t)
	want, _, err := o.Execute(p)
	if err != nil {
		t.Fatal(err)
	}

	runs0, bytes0 := obs.SpillRuns.Value(), obs.SpillBytes.Value()
	dir := t.TempDir()
	gov := exec.NewGovernor(0, 600)
	ec := exec.NewExecContext(context.Background(), gov)
	ec.EnableSpill(exec.SpillConfig{Dir: dir})
	o.Spill = true

	got, _, text, err := o.ExplainAnalyzeCtx(ec, p, &Trace{})
	if err != nil {
		t.Fatalf("spilling EXPLAIN ANALYZE failed: %v\n%s", err, text)
	}
	if !want.EqualBag(got) {
		t.Error("spilled execution changed the result bag")
	}
	if !strings.Contains(text, "spill-runs=") || !strings.Contains(text, "spill-bytes=") {
		t.Errorf("stats tree must render spill counters:\n%s", text)
	}
	if !strings.Contains(text, "-- governor:") {
		t.Errorf("spill degradation must surface as a governor event:\n%s", text)
	}
	if obs.SpillRuns.Value() == runs0 {
		t.Error("oj_spill_runs_total did not move")
	}
	if obs.SpillBytes.Value() == bytes0 {
		t.Error("oj_spill_bytes_total did not move")
	}
	if gov.UsedRows() != 0 || gov.UsedBytes() != 0 || gov.UsedSpillBytes() != 0 {
		t.Errorf("governor not drained: rows=%d bytes=%d spill=%d",
			gov.UsedRows(), gov.UsedBytes(), gov.UsedSpillBytes())
	}
	files, err := filepath.Glob(filepath.Join(dir, "ojspill-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("run files leaked: %v", files)
	}
}

// TestMetamorphicSpillOracle is the spill edition of the metamorphic
// free-reorderability suite: for every random nice-graph instance, the
// optimized plan executed under a byte budget small enough to force
// every blocking operator to disk must produce exactly the bag of the
// unbudgeted in-memory run.
func TestMetamorphicSpillOracle(t *testing.T) {
	// Once per execution mode: spilled row plans and spilled batch
	// plans must both reproduce their in-memory bags, and the two
	// modes' in-memory bags are compared against each other directly.
	for _, mode := range []struct {
		name string
		size int
	}{{"batch", 0}, {"row", BatchOff}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) { runMetamorphicSpillOracle(t, mode.size) })
	}
}

func runMetamorphicSpillOracle(t *testing.T, batchSize int) {
	runs0 := obs.SpillRuns.Value()
	success := 0
	for attempt := 0; success < metamorphicInstances; attempt++ {
		if attempt >= metamorphicInstances*10 {
			t.Fatalf("only %d/%d instances after %d attempts", success, metamorphicInstances, attempt)
		}
		seed := metamorphicBaseSeed + 200_000 + int64(attempt)
		rnd := rand.New(rand.NewSource(seed))
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		count, err := expr.CountITs(g, true)
		if err != nil {
			t.Fatalf("seed %d: CountITs: %v", seed, err)
		}
		if count < 2 || count > metamorphicITCap {
			continue
		}
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatalf("seed %d: EnumerateITs: %v", seed, err)
		}
		if a := core.AnalyzeGraph(g); !a.Free {
			t.Fatalf("seed %d: nice graph not certified free: %s", seed, a)
		}

		// Alternate plain and dangling-heavy databases: spilled runs must
		// agree with the in-memory bag whether or not most tuples dangle.
		db := workload.RandomDB(rnd, g, 6)
		if attempt%2 == 1 {
			db = workload.RandomDanglingDB(rnd, g, 6, 0.5+rnd.Float64()*0.4)
		}
		o := New(catalogFor(db))
		o.Cache = plancache.New(metamorphicITCap)
		o.Spill = true
		o.BatchSize = batchSize

		p, _, err := o.OptimizeTrace(its[0])
		if err != nil {
			t.Fatalf("seed %d: OptimizeTrace: %v", seed, err)
		}
		ref, _, err := o.Execute(p)
		if err != nil {
			t.Fatalf("seed %d: unbudgeted execute: %v", seed, err)
		}

		// Cross-mode oracle: the opposite evaluator mode, unbudgeted,
		// produces exactly the same bag.
		other := New(catalogFor(db))
		other.Spill = true
		if batchSize == BatchOff {
			other.BatchSize = 0
		} else {
			other.BatchSize = BatchOff
		}
		po, _, err := other.Optimize(its[0])
		if err != nil {
			t.Fatalf("seed %d: cross-mode optimize: %v", seed, err)
		}
		orel, _, err := other.Execute(po)
		if err != nil {
			t.Fatalf("seed %d: cross-mode execute: %v", seed, err)
		}
		if !orel.EqualBag(ref) {
			t.Fatalf("seed %d: row and batch evaluators disagree\ngraph:\n%s", seed, g)
		}

		// 96 bytes admits one ~80-byte row and trips on the second: every
		// blocking operator in the plan is forced through its spill path.
		dir := t.TempDir()
		gov := exec.NewGovernor(0, 96)
		ec := exec.NewExecContext(context.Background(), gov)
		ec.EnableSpill(exec.SpillConfig{Dir: dir})
		got, _, err := o.ExecuteCtx(ec, p)
		if err != nil {
			t.Fatalf("seed %d: spilled execute: %v\ngraph:\n%s", seed, err, g)
		}
		if !got.EqualBag(ref) {
			t.Fatalf("seed %d: spilled execution differs from in-memory run\ngraph:\n%s", seed, g)
		}
		if gov.UsedRows() != 0 || gov.UsedBytes() != 0 || gov.UsedSpillBytes() != 0 {
			t.Fatalf("seed %d: governor not drained: rows=%d bytes=%d spill=%d",
				seed, gov.UsedRows(), gov.UsedBytes(), gov.UsedSpillBytes())
		}
		if files, _ := filepath.Glob(filepath.Join(dir, "ojspill-*")); len(files) != 0 {
			t.Fatalf("seed %d: run files leaked: %v", seed, files)
		}
		success++
	}
	if obs.SpillRuns.Value() == runs0 {
		t.Error("the suite never actually spilled; the budget is not forcing the disk path")
	}
	t.Logf("verified %d spilled instances", success)
}

// TestBatchToggleMissesPlanCache: a plan lowered with the batch
// evaluators contains different physical operators than a row plan (and
// an explicit size is baked into the operators at lowering), so every
// distinct batch mode must key its own cache entry and hit only itself
// on repeat.
func TestBatchToggleMissesPlanCache(t *testing.T) {
	o, q := cacheFixture(t, 78)

	_, tr1, err := o.OptimizeTrace(q) // default: batched
	if err != nil {
		t.Fatal(err)
	}
	if tr1.CacheOutcome != "miss" {
		t.Fatalf("first optimize outcome %q; want miss", tr1.CacheOutcome)
	}

	o.BatchSize = BatchOff
	_, tr2, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.CacheOutcome != "miss" {
		t.Fatalf("row-mode optimize outcome %q; want miss (must not reuse the batched plan)", tr2.CacheOutcome)
	}
	if tr1.Fingerprint == tr2.Fingerprint {
		t.Fatalf("batch toggle did not change the fingerprint: %s", tr1.Fingerprint)
	}

	o.BatchSize = 256
	_, tr3, err := o.OptimizeTrace(q)
	if err != nil {
		t.Fatal(err)
	}
	if tr3.CacheOutcome != "miss" {
		t.Fatalf("explicit-size optimize outcome %q; want miss", tr3.CacheOutcome)
	}
	if tr3.Fingerprint == tr1.Fingerprint || tr3.Fingerprint == tr2.Fingerprint {
		t.Fatalf("explicit batch size shares a fingerprint with another mode")
	}

	// Each mode hits its own entry on repeat.
	for _, step := range []struct {
		size int
		fp   string
	}{{0, tr1.Fingerprint}, {BatchOff, tr2.Fingerprint}, {256, tr3.Fingerprint}} {
		o.BatchSize = step.size
		_, tr, err := o.OptimizeTrace(q)
		if err != nil {
			t.Fatal(err)
		}
		if tr.CacheOutcome != "hit" || tr.Fingerprint != step.fp {
			t.Fatalf("batch=%d repeat: outcome %q fp %q; want hit on %q",
				step.size, tr.CacheOutcome, tr.Fingerprint, step.fp)
		}
	}
	if o.Cache.Len() != 3 {
		t.Fatalf("cache holds %d entries; want one per batch mode", o.Cache.Len())
	}
}
