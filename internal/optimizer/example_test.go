package optimizer_test

import (
	"fmt"
	"log"

	"freejoin/internal/expr"
	"freejoin/internal/optimizer"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// The §6.1 recipe: a freely-reorderable query gets the full DP treatment
// — the optimizer picks the cheap association regardless of how the user
// wrote the query.
func ExampleOptimizer_Optimize() {
	cat := storage.NewCatalog()
	one := relation.New(relation.SchemeOf("R1", "a"))
	one.MustAppend(relation.Int(500))
	cat.AddRelation("R1", one)
	big := func(name string) {
		r := relation.New(relation.SchemeOf(name, "a"))
		for i := 0; i < 1000; i++ {
			r.MustAppend(relation.Int(int64(i)))
		}
		cat.AddRelation(name, r)
		t, _ := cat.Table(name)
		if _, err := t.BuildHashIndex("a"); err != nil {
			log.Fatal(err)
		}
	}
	big("R2")
	big("R3")

	key := func(u, v string) predicate.Predicate {
		return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
	}
	// The user writes the expensive association of Example 1.
	q := expr.NewJoin(expr.NewLeaf("R1"),
		expr.NewOuter(expr.NewLeaf("R2"), expr.NewLeaf("R3"), key("R2", "R3")),
		key("R1", "R2"))

	o := optimizer.New(cat)
	plan, reordered, err := o.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	out, counters, err := o.Execute(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reordered:", reordered)
	fmt.Println("plan:", plan.Tree())
	fmt.Println("rows:", out.Len(), "tuples retrieved:", counters.TuplesRetrieved())
	// Output:
	// reordered: true
	// plan: ((R1 - R2) -> R3)
	// rows: 1 tuples retrieved: 3
}
