package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// fakeConn is a scripted net.Conn: Read drains a fixed payload, Write
// appends to a buffer, Close latches.
type fakeConn struct {
	net.Conn // panics if an unimplemented method is hit
	in       *bytes.Reader
	out      bytes.Buffer
	closed   bool
}

func newFakeConn(payload string) *fakeConn {
	return &fakeConn{in: bytes.NewReader([]byte(payload))}
}

func (f *fakeConn) Read(p []byte) (int, error) {
	if f.closed {
		return 0, io.ErrClosedPipe
	}
	return f.in.Read(p)
}

func (f *fakeConn) Write(p []byte) (int, error) {
	if f.closed {
		return 0, io.ErrClosedPipe
	}
	return f.out.Write(p)
}

func (f *fakeConn) Close() error { f.closed = true; return nil }

// opLog drives a fixed I/O schedule against a chaos Conn and records
// every outcome, so two runs can be compared byte for byte.
func opLog(t *testing.T, cfg Config, seed int64, payload string) []string {
	t.Helper()
	c := WrapConn(newFakeConn(payload), cfg, seed)
	var log []string
	buf := make([]byte, 8)
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			n, err := c.Read(buf)
			log = append(log, fmt.Sprintf("read n=%d data=%q err=%v", n, buf[:n], err))
		} else {
			n, err := c.Write([]byte("response line\n"))
			log = append(log, fmt.Sprintf("write n=%d err=%v", n, err))
		}
	}
	return log
}

// The same seed must replay the same fault schedule: a failing soak run
// reproduces from its seed.
func TestConnDeterministicPerSeed(t *testing.T) {
	cfg := Config{Rate: 0.5, MaxStall: time.Microsecond}
	payload := strings.Repeat("query R -[R.a = S.a] S\n", 20)
	a := opLog(t, cfg, 7, payload)
	b := opLog(t, cfg, 7, payload)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverges under one seed:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	c := opLog(t, cfg, 8, payload)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical fault schedules")
	}
}

// Corruption must only ever produce 0x01 bytes — a byte in no valid
// protocol token — and injection must never fabricate a newline, so a
// faulty read can produce a typed error but never a different valid
// command or a desynced response stream.
func TestReadFaultsAreFramingSafe(t *testing.T) {
	cfg := Config{Rate: 1, MaxStall: time.Microsecond} // every op faults
	payload := strings.Repeat("tables\n", 200)
	c := WrapConn(newFakeConn(payload), cfg, 3)
	buf := make([]byte, 64)
	sawCorrupt, sawInject := false, false
	for i := 0; i < 300; i++ {
		n, err := c.Read(buf)
		for _, b := range buf[:n] {
			switch {
			case b == 0x01:
				sawCorrupt = true
			case b == 'Z':
				sawInject = true
			case strings.ContainsRune("tables\n", rune(b)):
			default:
				t.Fatalf("read delivered unexpected byte %q", b)
			}
		}
		if err != nil {
			if !errors.Is(err, ErrInjected) && err != io.EOF && err != io.ErrClosedPipe {
				t.Fatalf("unexpected read error: %v", err)
			}
			return // dropped: the schedule closed the conn, as designed
		}
		_ = sawCorrupt
		_ = sawInject
	}
}

// A write drop delivers a strict prefix then reports the byte offset; a
// partial write reports how much reached the wire. Either way the
// number reported never exceeds what the fake saw.
func TestWriteFaultsReportPrefix(t *testing.T) {
	cfg := Config{Rate: 1, MaxStall: time.Microsecond}
	for seed := int64(0); seed < 20; seed++ {
		fake := newFakeConn("")
		c := WrapConn(fake, cfg, seed)
		msg := []byte(`{"ok":true,"output":"pong"}` + "\n")
		n, err := c.Write(msg)
		if n > fake.out.Len() {
			t.Fatalf("seed %d: reported %d bytes written, wire saw %d", seed, n, fake.out.Len())
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("seed %d: unexpected write error: %v", seed, err)
		}
		if fake.closed && err == nil {
			t.Fatalf("seed %d: connection closed without reporting an error", seed)
		}
	}
}

// Disabled configs must wrap nothing: the production accept path pays
// zero overhead when chaos is off.
func TestWrapListenerDisabledIsIdentity(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if got := WrapListener(ln, Config{}); got != ln {
		t.Fatalf("disabled WrapListener returned %T, want the original listener", got)
	}
	if got := WrapListener(ln, Config{Seed: 9, Rate: 0.5}); got == ln {
		t.Fatal("enabled WrapListener returned the unwrapped listener")
	}
}

// Accepted connections draw decorrelated per-connection RNG streams:
// two connections from one listener see different schedules, and the
// same accept sequence under the same seed replays identically.
func TestListenerPerConnectionStreams(t *testing.T) {
	run := func(seed int64) []string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		wrapped := WrapListener(ln, Config{Seed: seed, Rate: 1, MaxStall: time.Microsecond})
		var logs []string
		for i := 0; i < 2; i++ {
			cl, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			sv, err := wrapped.Accept()
			if err != nil {
				t.Fatal(err)
			}
			go cl.Write([]byte(strings.Repeat("x", 1024)))
			buf := make([]byte, 16)
			var ops []string
			for j := 0; j < 8; j++ {
				n, err := sv.Read(buf)
				ops = append(ops, fmt.Sprintf("n=%d data=%q injerr=%v", n, buf[:n], errors.Is(err, ErrInjected)))
				if err != nil {
					break
				}
			}
			logs = append(logs, strings.Join(ops, ";"))
			sv.Close()
			cl.Close()
		}
		return logs
	}
	a := run(11)
	b := run(11)
	if a[0] != b[0] {
		t.Fatalf("first connection schedule not reproducible:\n  %s\n  %s", a[0], b[0])
	}
	if a[0] == a[1] {
		t.Fatal("two connections drew identical fault schedules")
	}
}
