// Package chaos is the network fault-injection layer for the query
// server: a listener/connection wrapper that — deterministically, from a
// seed — drops connections at arbitrary byte offsets, leaves writes
// half-done, stalls reads and writes, corrupts inbound protocol bytes,
// and injects garbage that never frames into a valid line. It extends
// the storage fault-injection philosophy (internal/storage.Fault) one
// layer up, to the session and wire boundary: the server's contract is
// that under any of these faults every query still produces either the
// correct bag or a clean typed error — never a hang, a leak, or a
// crash — and the chaos soak drives that contract under load.
//
// Determinism: every connection draws its own rand.Rand seeded from the
// listener seed and an accept sequence number, so a failing soak run
// replays byte-for-byte from its seed.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"freejoin/internal/obs"
)

// Kind names one injected fault class (the metrics label values of
// oj_chaos_injections_total).
type Kind string

// The injected fault kinds.
const (
	// KindDrop closes the connection mid-operation: a read drop while a
	// query executes is a client vanishing mid-execute; a write drop at a
	// byte offset truncates a response on the wire.
	KindDrop Kind = "drop"
	// KindPartialWrite writes a strict prefix of the buffer and errors.
	KindPartialWrite Kind = "partial_write"
	// KindStall sleeps before the operation (bounded by Config.MaxStall).
	KindStall Kind = "stall"
	// KindCorrupt overwrites bytes of an inbound read with 0x01 — a byte
	// no protocol token contains, so a corrupted line can only produce a
	// typed error, never a different valid query.
	KindCorrupt Kind = "corrupt"
	// KindInject returns garbage bytes that were never sent; without a
	// newline they glue onto the next real line, exercising truncated and
	// oversized line handling.
	KindInject Kind = "inject"
)

// ErrInjected is the error injected faults wrap; tests and clients can
// errors.Is against it.
var ErrInjected = errors.New("chaos: injected network fault")

// Config parameterizes the fault mix. The zero value injects nothing.
type Config struct {
	// Seed derives every connection's RNG; the same seed replays the
	// same fault schedule against the same traffic.
	Seed int64
	// Rate is the per-I/O-operation fault probability in [0,1]; each
	// Read and Write rolls once. 0 disables injection entirely.
	Rate float64
	// MaxStall bounds one injected stall (default 5ms). Keep it below
	// the server's idle timeout or stalls escalate into disconnects.
	MaxStall time.Duration
}

// Enabled reports whether this configuration injects anything.
func (c Config) Enabled() bool { return c.Rate > 0 }

func (c Config) maxStall() time.Duration {
	if c.MaxStall <= 0 {
		return 5 * time.Millisecond
	}
	return c.MaxStall
}

// Listener wraps an accept loop so every accepted connection injects
// faults per cfg. It implements net.Listener.
type Listener struct {
	net.Listener
	cfg Config
	seq atomic.Int64
}

// WrapListener wraps ln. With cfg.Enabled() false the listener is
// returned unwrapped, so callers can wire the flag through
// unconditionally.
func WrapListener(ln net.Listener, cfg Config) net.Listener {
	if !cfg.Enabled() {
		return ln
	}
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept returns the next connection wrapped in a fault-injecting Conn.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	// splitmix-style step keeps per-connection streams decorrelated even
	// for adjacent sequence numbers.
	seed := int64(uint64(l.cfg.Seed) + 0x9e3779b97f4a7c15*uint64(l.seq.Add(1)))
	return &Conn{Conn: c, cfg: l.cfg, rng: rand.New(rand.NewSource(seed))}, nil
}

// WrapConn wraps one connection with an explicitly seeded fault
// injector — the unit-test entry point below the listener.
func WrapConn(c net.Conn, cfg Config, seed int64) net.Conn {
	return &Conn{Conn: c, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Conn injects faults into one connection's Reads and Writes. Reads and
// Writes may run concurrently (the server reads from a reader goroutine
// while writing responses), so the RNG is mutex-guarded.
type Conn struct {
	net.Conn
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand
}

// roll draws the fault decision for one I/O operation: the kind to
// inject ("" for none) plus the RNG values the kind needs, under one
// lock so concurrent Read/Write stay deterministic per-stream.
func (c *Conn) roll(kinds []Kind) (Kind, float64, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng.Float64() >= c.cfg.Rate {
		return "", 0, 0
	}
	k := kinds[c.rng.Intn(len(kinds))]
	frac := c.rng.Float64()
	stall := time.Duration(c.rng.Int63n(int64(c.cfg.maxStall()) + 1))
	return k, frac, stall
}

var (
	readKinds  = []Kind{KindDrop, KindStall, KindCorrupt, KindInject}
	writeKinds = []Kind{KindDrop, KindPartialWrite, KindStall}
)

// Read implements net.Conn. Injected faults: stall before the read,
// drop (the underlying connection is closed), corruption of delivered
// bytes, or injection of garbage bytes that were never on the wire.
func (c *Conn) Read(p []byte) (int, error) {
	kind, frac, stall := c.roll(readKinds)
	switch kind {
	case KindStall:
		note(KindStall)
		time.Sleep(stall)
	case KindDrop:
		note(KindDrop)
		c.Conn.Close()
		return 0, fmt.Errorf("read: %w (dropped)", ErrInjected)
	case KindInject:
		if len(p) > 0 {
			note(KindInject)
			n := 1 + int(frac*float64(min(len(p), 256)-1))
			for i := 0; i < n; i++ {
				p[i] = 'Z' // printable garbage, never a newline
			}
			return n, nil
		}
	}
	n, err := c.Conn.Read(p)
	if kind == KindCorrupt && err == nil && n > 0 {
		note(KindCorrupt)
		// Overwrite a deterministic fraction of the delivered bytes with
		// 0x01: not whitespace, not printable, in no valid token — the
		// lexer rejects it, so corruption cannot alias another query.
		// Line terminators are spared: eating a '\n' would stall the
		// framing until the idle timeout, which is the stall and drop
		// kinds' job — corrupt garbles content, not message boundaries.
		stride := 1 + int(frac*8)
		for i := 0; i < n; i += stride {
			if p[i] == '\n' || p[i] == '\r' {
				continue
			}
			p[i] = 0x01
		}
	}
	return n, err
}

// Write implements net.Conn. Injected faults: stall before the write,
// drop at an arbitrary byte offset (a strict prefix reaches the wire,
// then the connection closes), or a partial write reported as an error.
func (c *Conn) Write(p []byte) (int, error) {
	kind, frac, stall := c.roll(writeKinds)
	switch kind {
	case KindStall:
		note(KindStall)
		time.Sleep(stall)
	case KindDrop:
		note(KindDrop)
		n := int(frac * float64(len(p)))
		if n > 0 {
			n, _ = c.Conn.Write(p[:n])
		}
		c.Conn.Close()
		return n, fmt.Errorf("write: %w (dropped at byte offset %d)", ErrInjected, n)
	case KindPartialWrite:
		note(KindPartialWrite)
		n := int(frac * float64(len(p)))
		if n > 0 {
			var werr error
			if n, werr = c.Conn.Write(p[:n]); werr != nil {
				return n, werr
			}
		}
		return n, fmt.Errorf("write: %w (partial, %d of %d bytes)", ErrInjected, n, len(p))
	}
	return c.Conn.Write(p)
}

// note records one injected fault in the process metrics.
func note(k Kind) {
	if c := kindCounter(k); c != nil {
		c.Inc()
	}
}

// kindCounter maps a fault kind to its oj_chaos_injections_total series.
func kindCounter(k Kind) *obs.Counter {
	switch k {
	case KindDrop:
		return obs.ChaosDrops
	case KindPartialWrite:
		return obs.ChaosPartialWrites
	case KindStall:
		return obs.ChaosStalls
	case KindCorrupt:
		return obs.ChaosCorruptions
	case KindInject:
		return obs.ChaosInjected
	default:
		return nil
	}
}
