package algebra

import (
	"fmt"

	"freejoin/internal/relation"
)

// Grouped aggregation. The paper's introduction lists Count queries
// [MURA89] among the workloads that force outerjoins into relational
// plans: counting employees per department must not lose departments with
// zero employees, so the count runs over DEPARTMENT → EMPLOYEE and counts
// non-null employee keys. GroupBy provides exactly the SQL-flavored
// semantics that makes that work: COUNT(col) skips nulls, group keys
// treat null as equal to null.

// AggKind selects an aggregate function.
type AggKind uint8

// Aggregate functions.
const (
	CountRows AggKind = iota // COUNT(*): rows per group
	CountCol                 // COUNT(col): non-null values per group
	SumCol                   // SUM(col): numeric sum, null when no non-null input
	MinCol                   // MIN(col)
	MaxCol                   // MAX(col)
)

// String returns the SQL spelling.
func (k AggKind) String() string {
	switch k {
	case CountRows:
		return "count(*)"
	case CountCol:
		return "count"
	case SumCol:
		return "sum"
	case MinCol:
		return "min"
	case MaxCol:
		return "max"
	default:
		return fmt.Sprintf("AggKind(%d)", uint8(k))
	}
}

// Agg is one aggregate column specification.
type Agg struct {
	Kind AggKind
	Col  relation.Attr // input column (ignored for CountRows)
	As   relation.Attr // output column name
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count   int64
	sum     float64
	sumIsFl bool
	seen    bool
	min     relation.Value
	max     relation.Value
}

func (st *aggState) add(kind AggKind, v relation.Value) {
	switch kind {
	case CountRows:
		st.count++
	case CountCol:
		if !v.IsNull() {
			st.count++
		}
	case SumCol:
		if v.IsNull() {
			return
		}
		st.seen = true
		if v.Kind() == relation.KindFloat {
			st.sumIsFl = true
		}
		st.sum += v.AsFloat()
	case MinCol:
		if v.IsNull() {
			return
		}
		if !st.seen || v.Compare(st.min) < 0 {
			st.min = v
		}
		st.seen = true
	case MaxCol:
		if v.IsNull() {
			return
		}
		if !st.seen || v.Compare(st.max) > 0 {
			st.max = v
		}
		st.seen = true
	}
}

func (st *aggState) result(kind AggKind) relation.Value {
	switch kind {
	case CountRows, CountCol:
		return relation.Int(st.count)
	case SumCol:
		if !st.seen {
			return relation.Null()
		}
		if st.sumIsFl {
			return relation.Float(st.sum)
		}
		return relation.Int(int64(st.sum))
	case MinCol:
		if !st.seen {
			return relation.Null()
		}
		return st.min
	case MaxCol:
		if !st.seen {
			return relation.Null()
		}
		return st.max
	default:
		return relation.Null()
	}
}

// GroupBy groups r by the given columns (nulls group together, as in SQL
// GROUP BY) and computes the aggregates. The output scheme is the group
// columns followed by each aggregate's As attribute. With no group
// columns the whole input is one group (and, unlike SQL aggregates over
// empty input, an empty relation yields one row of zero counts / null
// sums, matching the single-group reading).
func GroupBy(r *relation.Relation, groupCols []relation.Attr, aggs []Agg) (*relation.Relation, error) {
	gpos := make([]int, len(groupCols))
	for i, a := range groupCols {
		p := r.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("algebra: group column %s not in scheme %s", a, r.Scheme())
		}
		gpos[i] = p
	}
	apos := make([]int, len(aggs))
	outAttrs := append([]relation.Attr(nil), groupCols...)
	for i, ag := range aggs {
		if ag.Kind == CountRows {
			apos[i] = -1
		} else {
			p := r.Scheme().IndexOf(ag.Col)
			if p < 0 {
				return nil, fmt.Errorf("algebra: aggregate column %s not in scheme %s", ag.Col, r.Scheme())
			}
			apos[i] = p
		}
		outAttrs = append(outAttrs, ag.As)
	}
	outScheme, err := relation.NewScheme(outAttrs...)
	if err != nil {
		return nil, fmt.Errorf("algebra: group-by output scheme: %w", err)
	}

	type group struct {
		key    []relation.Value
		states []aggState
	}
	groups := map[string]*group{}
	var order []string // deterministic first-seen order
	var buf []byte
	for i := 0; i < r.Len(); i++ {
		row := r.RawRow(i)
		buf = buf[:0]
		for _, p := range gpos {
			buf = relation.AppendKey(buf, row[p])
		}
		g, ok := groups[string(buf)]
		if !ok {
			key := make([]relation.Value, len(gpos))
			for k, p := range gpos {
				key[k] = row[p]
			}
			g = &group{key: key, states: make([]aggState, len(aggs))}
			groups[string(buf)] = g
			order = append(order, string(buf))
		}
		for ai, ag := range aggs {
			var v relation.Value
			if apos[ai] >= 0 {
				v = row[apos[ai]]
			}
			g.states[ai].add(ag.Kind, v)
		}
	}
	if len(groups) == 0 && len(groupCols) == 0 {
		g := &group{states: make([]aggState, len(aggs))}
		groups[""] = g
		order = append(order, "")
	}
	out := relation.New(outScheme)
	for _, k := range order {
		g := groups[k]
		row := make([]relation.Value, 0, outScheme.Len())
		row = append(row, g.key...)
		for ai, ag := range aggs {
			row = append(row, g.states[ai].result(ag.Kind))
		}
		out.AppendRaw(row)
	}
	return out, nil
}
