package algebra

import (
	"fmt"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// GeneralizedOuterJoin computes GOJ[S][p](l, r) per the paper's eqn (14):
//
//	JN(R1,R2) ∪ (π[S](R1) − π[S] JN(R1,R2)) × null_{sch(R1)∪sch(R2)−S}
//
// i.e. the join, plus the S-projections of R1 tuples whose S-projection
// did not appear in the join, padded with nulls outside S. S must be a
// subset of sch(R1). π removes duplicates, and "−" here is set
// difference, so each missing S-projection contributes exactly one padded
// tuple — this is the refinement over Dayal's Generalized-Join that the
// paper calls out.
//
// GOJ generalizes both join and outerjoin:
//
//	GOJ[∅]        = JN   (the empty projection appears in any non-empty join)
//	GOJ[sch(R1)]  = OJ   (on duplicate-free R1)
func GeneralizedOuterJoin(l, r *relation.Relation, p predicate.Predicate, s []relation.Attr) (*relation.Relation, error) {
	for _, a := range s {
		if !l.Scheme().Contains(a) {
			return nil, fmt.Errorf("algebra: GOJ attribute %s not in left scheme %s", a, l.Scheme())
		}
	}
	join, err := Join(l, r, p)
	if err != nil {
		return nil, err
	}
	out := join.Clone()

	// Degenerate S = ∅: π[∅](X) is one empty tuple when X is non-empty.
	// The padded all-null row is added only when R1 is non-empty and the
	// join is empty.
	if len(s) == 0 {
		if l.Len() > 0 && join.Len() == 0 {
			out.AppendRaw(make([]relation.Value, out.Scheme().Len()))
		}
		return out, nil
	}

	projL, err := Project(l, s, true)
	if err != nil {
		return nil, err
	}
	projJ, err := Project(join, s, true)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, projJ.Len())
	for i := 0; i < projJ.Len(); i++ {
		seen[projJ.Row(i).Key()] = struct{}{}
	}
	outSch := out.Scheme()
	pos := make([]int, len(s))
	for i, a := range s {
		pos[i] = outSch.IndexOf(a)
	}
	for i := 0; i < projL.Len(); i++ {
		if _, matched := seen[projL.Row(i).Key()]; matched {
			continue
		}
		row := make([]relation.Value, outSch.Len())
		src := projL.RawRow(i)
		for j, dst := range pos {
			row[dst] = src[j]
		}
		out.AppendRaw(row)
	}
	return out, nil
}
