package algebra

import (
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func aggInput() *relation.Relation {
	return relation.FromRows("R", []string{"g", "v"},
		[]any{1, 10}, []any{1, nil}, []any{1, 30},
		[]any{2, 5},
		[]any{nil, 7}, []any{nil, nil},
	)
}

func TestGroupByCounts(t *testing.T) {
	r := aggInput()
	out, err := GroupBy(r,
		[]relation.Attr{relation.A("R", "g")},
		[]Agg{
			{Kind: CountRows, As: relation.A("out", "n")},
			{Kind: CountCol, Col: relation.A("R", "v"), As: relation.A("out", "nv")},
		})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("groups = %d:\n%v", out.Len(), out)
	}
	byKey := map[string][2]int64{}
	for i := 0; i < out.Len(); i++ {
		row := out.Row(i)
		byKey[row.At(0).String()] = [2]int64{row.At(1).AsInt(), row.At(2).AsInt()}
	}
	if byKey["1"] != [2]int64{3, 2} {
		t.Errorf("group 1 = %v", byKey["1"])
	}
	if byKey["2"] != [2]int64{1, 1} {
		t.Errorf("group 2 = %v", byKey["2"])
	}
	// Nulls group together (SQL GROUP BY).
	if byKey["-"] != [2]int64{2, 1} {
		t.Errorf("null group = %v", byKey["-"])
	}
}

func TestGroupBySumMinMax(t *testing.T) {
	r := aggInput()
	out, err := GroupBy(r,
		[]relation.Attr{relation.A("R", "g")},
		[]Agg{
			{Kind: SumCol, Col: relation.A("R", "v"), As: relation.A("out", "s")},
			{Kind: MinCol, Col: relation.A("R", "v"), As: relation.A("out", "lo")},
			{Kind: MaxCol, Col: relation.A("R", "v"), As: relation.A("out", "hi")},
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.Len(); i++ {
		row := out.Row(i)
		switch row.At(0).String() {
		case "1":
			if row.At(1) != relation.Int(40) || row.At(2) != relation.Int(10) || row.At(3) != relation.Int(30) {
				t.Errorf("group 1: %v", row)
			}
		case "2":
			if row.At(1) != relation.Int(5) {
				t.Errorf("group 2: %v", row)
			}
		}
	}
}

func TestGroupBySumAllNull(t *testing.T) {
	r := relation.FromRows("R", []string{"g", "v"}, []any{1, nil})
	out, err := GroupBy(r, []relation.Attr{relation.A("R", "g")},
		[]Agg{
			{Kind: SumCol, Col: relation.A("R", "v"), As: relation.A("o", "s")},
			{Kind: MinCol, Col: relation.A("R", "v"), As: relation.A("o", "lo")},
			{Kind: MaxCol, Col: relation.A("R", "v"), As: relation.A("o", "hi")},
		})
	if err != nil {
		t.Fatal(err)
	}
	row := out.Row(0)
	if !row.At(1).IsNull() || !row.At(2).IsNull() || !row.At(3).IsNull() {
		t.Errorf("all-null aggregates must be null: %v", row)
	}
}

func TestGroupByFloatSum(t *testing.T) {
	r := relation.FromRows("R", []string{"v"}, []any{1}, []any{2.5})
	out, err := GroupBy(r, nil, []Agg{{Kind: SumCol, Col: relation.A("R", "v"), As: relation.A("o", "s")}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Row(0).At(0) != relation.Float(3.5) {
		t.Errorf("sum = %v", out.Row(0).At(0))
	}
}

func TestGroupByEmptyInputSingleGroup(t *testing.T) {
	r := relation.New(relation.SchemeOf("R", "v"))
	out, err := GroupBy(r, nil, []Agg{
		{Kind: CountRows, As: relation.A("o", "n")},
		{Kind: SumCol, Col: relation.A("R", "v"), As: relation.A("o", "s")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Row(0).At(0) != relation.Int(0) || !out.Row(0).At(1).IsNull() {
		t.Errorf("empty input: %v", out)
	}
}

func TestGroupByErrors(t *testing.T) {
	r := aggInput()
	if _, err := GroupBy(r, []relation.Attr{relation.A("Z", "z")}, nil); err == nil {
		t.Error("unknown group column must fail")
	}
	if _, err := GroupBy(r, nil, []Agg{{Kind: SumCol, Col: relation.A("Z", "z"), As: relation.A("o", "s")}}); err == nil {
		t.Error("unknown aggregate column must fail")
	}
	if _, err := GroupBy(r, []relation.Attr{relation.A("R", "g")},
		[]Agg{{Kind: CountRows, As: relation.A("R", "g")}}); err == nil {
		t.Error("output name clash must fail")
	}
}

func TestAggKindString(t *testing.T) {
	for k, want := range map[AggKind]string{
		CountRows: "count(*)", CountCol: "count", SumCol: "sum", MinCol: "min", MaxCol: "max",
	} {
		if k.String() != want {
			t.Errorf("%d renders %q", k, k.String())
		}
	}
	if AggKind(9).String() == "" {
		t.Error("unknown kind rendering")
	}
}

// TestCountsNeedOuterjoin is the [MURA89] motivation: counting employees
// per department over a plain join loses empty departments; over the
// outerjoin with COUNT(non-null employee key) it does not.
func TestCountsNeedOuterjoin(t *testing.T) {
	dept := relation.FromRows("D", []string{"dno"}, []any{1}, []any{2}, []any{3})
	emp := relation.FromRows("E", []string{"dno", "id"},
		[]any{1, 100}, []any{1, 101}, []any{2, 200})
	p := predicate.Eq(relation.A("D", "dno"), relation.A("E", "dno"))

	countPer := func(joined *relation.Relation) map[string]int64 {
		out, err := GroupBy(joined,
			[]relation.Attr{relation.A("D", "dno")},
			[]Agg{{Kind: CountCol, Col: relation.A("E", "id"), As: relation.A("o", "n")}})
		if err != nil {
			t.Fatal(err)
		}
		m := map[string]int64{}
		for i := 0; i < out.Len(); i++ {
			m[out.Row(i).At(0).String()] = out.Row(i).At(1).AsInt()
		}
		return m
	}

	jn, err := Join(dept, emp, p)
	if err != nil {
		t.Fatal(err)
	}
	viaJoin := countPer(jn)
	if _, ok := viaJoin["3"]; ok {
		t.Fatal("plain join should lose department 3")
	}

	oj, err := LeftOuterJoin(dept, emp, p)
	if err != nil {
		t.Fatal(err)
	}
	viaOuter := countPer(oj)
	if viaOuter["1"] != 2 || viaOuter["2"] != 1 || viaOuter["3"] != 0 {
		t.Fatalf("outerjoin counts = %v", viaOuter)
	}
}
