// Package algebra implements the paper's join-like operators as reference
// (logical) bag semantics over package relation:
//
//	JN  [p](R1, R2)  regular join           R1 — R2
//	OJ  [p](R1, R2)  left outerjoin         R1 → R2
//	AJ  [p](R1, R2)  antijoin               R1 ▷ R2
//	SJ  [p](R1, R2)  semijoin               (used by §6.3's outlook)
//	GOJ [p,S](R1,R2) generalized outerjoin  (§6.2, eqn 14)
//
// plus Restrict, Project, Product, FullOuterJoin and the padding Union the
// paper's identities are stated with. These definitions are the ground
// truth the rewrite engine (package expr) and the physical executor
// (package exec) are validated against.
package algebra

import (
	"fmt"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// Restrict returns the tuples of r on which p holds (evaluates to True).
func Restrict(r *relation.Relation, p predicate.Predicate) (*relation.Relation, error) {
	bound, err := predicate.Bind(p, r.Scheme())
	if err != nil {
		return nil, fmt.Errorf("algebra: restrict: %w", err)
	}
	out := relation.New(r.Scheme())
	for i := 0; i < r.Len(); i++ {
		if bound.Holds(r.RawRow(i)) {
			out.AppendRaw(r.RawRow(i))
		}
	}
	return out, nil
}

// Project returns r restricted to the given attributes. With dedup true it
// is the paper's π (projection with removal of duplicates); with dedup
// false it keeps bag multiplicities.
func Project(r *relation.Relation, attrs []relation.Attr, dedup bool) (*relation.Relation, error) {
	sch, err := r.Scheme().Project(attrs)
	if err != nil {
		return nil, fmt.Errorf("algebra: project: %w", err)
	}
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		pos[i] = r.Scheme().IndexOf(a)
	}
	out := relation.New(sch)
	for i := 0; i < r.Len(); i++ {
		row := r.RawRow(i)
		nv := make([]relation.Value, len(pos))
		for j, p := range pos {
			nv[j] = row[p]
		}
		out.AppendRaw(nv)
	}
	if dedup {
		out = out.Dedup()
	}
	return out, nil
}

// Product returns the Cartesian product of two relations on disjoint
// schemes. Query graphs exclude products (joins without edges), but the
// operator is needed as a building block and baseline.
func Product(l, r *relation.Relation) (*relation.Relation, error) {
	sch, err := l.Scheme().Concat(r.Scheme())
	if err != nil {
		return nil, fmt.Errorf("algebra: product: %w", err)
	}
	out := relation.New(sch)
	for i := 0; i < l.Len(); i++ {
		lrow := l.RawRow(i)
		for j := 0; j < r.Len(); j++ {
			out.AppendRaw(concatRows(lrow, r.RawRow(j)))
		}
	}
	return out, nil
}

// Union returns the bag union of two relations after padding both to the
// union scheme, per the paper's convention ("we first pad the tuples of
// each relation to scheme sch(X) ∪ sch(Y)"). This makes expressions like
// (R − S) ∪ (R ▷ S) well-formed.
func Union(l, r *relation.Relation) (*relation.Relation, error) {
	target := l.Scheme().UnionFor(r.Scheme())
	lp, err := l.PadTo(target)
	if err != nil {
		return nil, fmt.Errorf("algebra: union: %w", err)
	}
	rp, err := r.PadTo(target)
	if err != nil {
		return nil, fmt.Errorf("algebra: union: %w", err)
	}
	out := lp.Clone()
	for i := 0; i < rp.Len(); i++ {
		out.AppendRaw(rp.RawRow(i))
	}
	return out, nil
}

// matchState captures, for each pair of inputs and a predicate, which
// pairs matched and which left rows matched at least once. All join-like
// operators derive from it.
type matchState struct {
	out          *relation.Relation // concatenated matching rows (the join)
	leftMatched  []bool
	rightMatched []bool
}

func matchRows(l, r *relation.Relation, p predicate.Predicate, needJoinRows bool) (*matchState, error) {
	sch, err := l.Scheme().Concat(r.Scheme())
	if err != nil {
		return nil, fmt.Errorf("algebra: join schemes overlap: %w", err)
	}
	st := &matchState{
		out:          relation.New(sch),
		leftMatched:  make([]bool, l.Len()),
		rightMatched: make([]bool, r.Len()),
	}

	// Hash fast path for pure conjunctive equijoins. Null keys never match
	// (null = x is Unknown), so rows with a null key column are skipped on
	// the probe side and never inserted on the build side — exactly the
	// three-valued semantics of the nested-loop path.
	if lk, rk, ok := predicate.EquiParts(p, l.Scheme(), r.Scheme()); ok {
		st.hashMatch(l, r, lk, rk, needJoinRows)
		return st, nil
	}

	bound, err := predicate.Bind(p, sch)
	if err != nil {
		return nil, fmt.Errorf("algebra: join predicate: %w", err)
	}
	buf := make([]relation.Value, sch.Len())
	for i := 0; i < l.Len(); i++ {
		lrow := l.RawRow(i)
		copy(buf, lrow)
		for j := 0; j < r.Len(); j++ {
			copy(buf[len(lrow):], r.RawRow(j))
			if bound.Holds(buf) {
				st.leftMatched[i] = true
				st.rightMatched[j] = true
				if needJoinRows {
					st.out.AppendRaw(concatRows(lrow, r.RawRow(j)))
				}
			}
		}
	}
	return st, nil
}

func (st *matchState) hashMatch(l, r *relation.Relation, lk, rk []relation.Attr, needJoinRows bool) {
	rpos := make([]int, len(rk))
	for i, a := range rk {
		rpos[i] = r.Scheme().IndexOf(a)
	}
	lpos := make([]int, len(lk))
	for i, a := range lk {
		lpos[i] = l.Scheme().IndexOf(a)
	}
	table := make(map[string][]int, r.Len())
	var buf []byte
buildLoop:
	for j := 0; j < r.Len(); j++ {
		row := r.RawRow(j)
		buf = buf[:0]
		for _, p := range rpos {
			if row[p].IsNull() {
				continue buildLoop
			}
			buf = relation.AppendJoinKey(buf, row[p])
		}
		table[string(buf)] = append(table[string(buf)], j)
	}
probeLoop:
	for i := 0; i < l.Len(); i++ {
		row := l.RawRow(i)
		buf = buf[:0]
		for _, p := range lpos {
			if row[p].IsNull() {
				continue probeLoop
			}
			buf = relation.AppendJoinKey(buf, row[p])
		}
		for _, j := range table[string(buf)] {
			st.leftMatched[i] = true
			st.rightMatched[j] = true
			if needJoinRows {
				st.out.AppendRaw(concatRows(row, r.RawRow(j)))
			}
		}
	}
}

// Join computes JN[p](l, r): concatenations of tuples satisfying p.
func Join(l, r *relation.Relation, p predicate.Predicate) (*relation.Relation, error) {
	st, err := matchRows(l, r, p, true)
	if err != nil {
		return nil, err
	}
	return st.out, nil
}

// LeftOuterJoin computes OJ[p](l, r): the join plus each unmatched tuple
// of l (the preserved relation) padded with nulls on the attributes of r
// (the null-supplied relation).
func LeftOuterJoin(l, r *relation.Relation, p predicate.Predicate) (*relation.Relation, error) {
	st, err := matchRows(l, r, p, true)
	if err != nil {
		return nil, err
	}
	out := st.out
	width := r.Scheme().Len()
	for i, matched := range st.leftMatched {
		if !matched {
			out.AppendRaw(padRight(l.RawRow(i), width))
		}
	}
	return out, nil
}

// FullOuterJoin computes the two-sided outerjoin: join rows plus unmatched
// tuples of both sides, each null-padded on the other side. The paper sets
// two-sided outerjoin aside; it is provided for §4's remark on converting
// 2-sided to 1-sided outerjoins and for completeness.
func FullOuterJoin(l, r *relation.Relation, p predicate.Predicate) (*relation.Relation, error) {
	st, err := matchRows(l, r, p, true)
	if err != nil {
		return nil, err
	}
	out := st.out
	rw := r.Scheme().Len()
	for i, matched := range st.leftMatched {
		if !matched {
			out.AppendRaw(padRight(l.RawRow(i), rw))
		}
	}
	lw := l.Scheme().Len()
	for j, matched := range st.rightMatched {
		if !matched {
			out.AppendRaw(padLeft(lw, r.RawRow(j)))
		}
	}
	return out, nil
}

// Antijoin computes AJ[p](l, r) = l ▷ r: the tuples of l with no match in
// r. Its scheme is sch(l).
func Antijoin(l, r *relation.Relation, p predicate.Predicate) (*relation.Relation, error) {
	st, err := matchRows(l, r, p, false)
	if err != nil {
		return nil, err
	}
	out := relation.New(l.Scheme())
	for i, matched := range st.leftMatched {
		if !matched {
			out.AppendRaw(l.RawRow(i))
		}
	}
	return out, nil
}

// Semijoin computes l ⋉ r: the tuples of l with at least one match in r.
func Semijoin(l, r *relation.Relation, p predicate.Predicate) (*relation.Relation, error) {
	st, err := matchRows(l, r, p, false)
	if err != nil {
		return nil, err
	}
	out := relation.New(l.Scheme())
	for i, matched := range st.leftMatched {
		if matched {
			out.AppendRaw(l.RawRow(i))
		}
	}
	return out, nil
}

func concatRows(a, b []relation.Value) []relation.Value {
	nv := make([]relation.Value, 0, len(a)+len(b))
	nv = append(nv, a...)
	return append(nv, b...)
}

func padRight(a []relation.Value, n int) []relation.Value {
	nv := make([]relation.Value, len(a)+n)
	copy(nv, a)
	return nv
}

func padLeft(n int, b []relation.Value) []relation.Value {
	nv := make([]relation.Value, n+len(b))
	copy(nv[n:], b)
	return nv
}
