package algebra

import (
	"math/rand"
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func mustEq(t *testing.T, got, want *relation.Relation, msg string) {
	t.Helper()
	if !got.EqualBag(want) {
		t.Fatalf("%s:\ngot:\n%v\nwant:\n%v", msg, got, want)
	}
}

func TestRestrict(t *testing.T) {
	r := relation.FromRows("R", []string{"a"}, []any{1}, []any{2}, []any{nil}, []any{3})
	out, err := Restrict(r, predicate.Cmp(predicate.GtOp,
		predicate.Col(relation.A("R", "a")), predicate.Const(relation.Int(1))))
	if err != nil {
		t.Fatal(err)
	}
	want := relation.FromRows("R", []string{"a"}, []any{2}, []any{3})
	mustEq(t, out, want, "restrict drops non-True rows incl. null (Unknown)")

	if _, err := Restrict(r, predicate.NewIsNull(relation.A("Z", "z"))); err == nil {
		t.Error("restrict with unbound attribute must fail")
	}
}

func TestProject(t *testing.T) {
	r := relation.FromRows("R", []string{"a", "b"},
		[]any{1, "x"}, []any{1, "y"}, []any{1, "x"})
	bag, err := Project(r, []relation.Attr{relation.A("R", "a")}, false)
	if err != nil {
		t.Fatal(err)
	}
	if bag.Len() != 3 {
		t.Errorf("bag projection must keep duplicates, got %d rows", bag.Len())
	}
	set, err := Project(r, []relation.Attr{relation.A("R", "a")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Errorf("π must dedup, got %d rows", set.Len())
	}
	if _, err := Project(r, []relation.Attr{relation.A("Z", "z")}, false); err == nil {
		t.Error("projecting unknown attribute must fail")
	}
}

func TestProduct(t *testing.T) {
	l := relation.FromRows("R", []string{"a"}, []any{1}, []any{2})
	r := relation.FromRows("S", []string{"b"}, []any{"x"}, []any{"y"}, []any{"z"})
	out, err := Product(l, r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 6 || out.Scheme().Len() != 2 {
		t.Errorf("product: %d rows, scheme %v", out.Len(), out.Scheme())
	}
	if _, err := Product(l, l); err == nil {
		t.Error("product of overlapping schemes must fail")
	}
}

func TestUnionPads(t *testing.T) {
	l := relation.FromRows("R", []string{"a"}, []any{1})
	r := relation.FromRows("S", []string{"b"}, []any{"x"})
	out, err := Union(l, r)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New(relation.MustScheme(relation.A("R", "a"), relation.A("S", "b")))
	want.MustAppend(relation.Int(1), relation.Null())
	want.MustAppend(relation.Null(), relation.Str("x"))
	mustEq(t, out, want, "union pads to sch(X) ∪ sch(Y)")
}

func joinPred() predicate.Predicate {
	return predicate.Eq(relation.A("R", "k"), relation.A("S", "k"))
}

func sampleRS() (*relation.Relation, *relation.Relation) {
	l := relation.FromRows("R", []string{"k", "v"},
		[]any{1, "r1"}, []any{2, "r2"}, []any{nil, "r3"})
	r := relation.FromRows("S", []string{"k", "w"},
		[]any{1, "s1"}, []any{1, "s1b"}, []any{3, "s3"}, []any{nil, "s4"})
	return l, r
}

func TestJoin(t *testing.T) {
	l, r := sampleRS()
	out, err := Join(l, r, joinPred())
	if err != nil {
		t.Fatal(err)
	}
	want := relation.New(relation.MustScheme(
		relation.A("R", "k"), relation.A("R", "v"),
		relation.A("S", "k"), relation.A("S", "w")))
	want.MustAppend(relation.Int(1), relation.Str("r1"), relation.Int(1), relation.Str("s1"))
	want.MustAppend(relation.Int(1), relation.Str("r1"), relation.Int(1), relation.Str("s1b"))
	mustEq(t, out, want, "equijoin: nulls never match, duplicates multiply")
}

func TestLeftOuterJoin(t *testing.T) {
	l, r := sampleRS()
	out, err := LeftOuterJoin(l, r, joinPred())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 { // 2 matches + r2, r3 preserved
		t.Fatalf("outerjoin row count = %d, want 4\n%v", out.Len(), out)
	}
	// Every l row appears at least once.
	proj, err := Project(out, []relation.Attr{relation.A("R", "v")}, true)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Len() != 3 {
		t.Errorf("outerjoin must preserve all left tuples, got %v", proj)
	}
}

func TestFullOuterJoin(t *testing.T) {
	l, r := sampleRS()
	out, err := FullOuterJoin(l, r, joinPred())
	if err != nil {
		t.Fatal(err)
	}
	// 2 matches + 2 left-unmatched + 2 right-unmatched (s3, s4).
	if out.Len() != 6 {
		t.Fatalf("full outerjoin row count = %d, want 6\n%v", out.Len(), out)
	}
}

func TestAntijoinAndSemijoin(t *testing.T) {
	l, r := sampleRS()
	aj, err := Antijoin(l, r, joinPred())
	if err != nil {
		t.Fatal(err)
	}
	wantAJ := relation.FromRows("R", []string{"k", "v"},
		[]any{2, "r2"}, []any{nil, "r3"})
	mustEq(t, aj, wantAJ, "antijoin keeps unmatched left tuples (incl. null key)")

	sj, err := Semijoin(l, r, joinPred())
	if err != nil {
		t.Fatal(err)
	}
	wantSJ := relation.FromRows("R", []string{"k", "v"}, []any{1, "r1"})
	mustEq(t, sj, wantSJ, "semijoin keeps matched left tuples once")
}

func TestJoinSemijoinAntijoinPartitionLeft(t *testing.T) {
	l, r := sampleRS()
	sj, _ := Semijoin(l, r, joinPred())
	aj, _ := Antijoin(l, r, joinPred())
	both, err := Union(sj, aj)
	if err != nil {
		t.Fatal(err)
	}
	if !both.EqualBag(l) {
		t.Errorf("semijoin ∪ antijoin must equal the left input:\n%v", both)
	}
}

// TestHashAndNestedLoopAgree drives the same equijoin through the hash
// fast path and through a predicate shape that forces nested loops, and
// checks the results agree — including on mixed int/float keys, which is
// what AppendJoinKey canonicalizes.
func TestHashAndNestedLoopAgree(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	mkVal := func() relation.Value {
		switch rnd.Intn(5) {
		case 0:
			return relation.Null()
		case 1:
			return relation.Float(float64(rnd.Intn(4)))
		default:
			return relation.Int(int64(rnd.Intn(4)))
		}
	}
	for trial := 0; trial < 50; trial++ {
		l := relation.New(relation.SchemeOf("R", "k"))
		r := relation.New(relation.SchemeOf("S", "k"))
		for i := 0; i < rnd.Intn(12); i++ {
			l.MustAppend(mkVal())
		}
		for i := 0; i < rnd.Intn(12); i++ {
			r.MustAppend(mkVal())
		}
		eq := joinPred() // hash path
		// Wrapping in a no-op disjunction disables EquiParts => nested loop.
		slow := predicate.NewOr(joinPred(), predicate.FalsePred)
		for _, op := range []func(*relation.Relation, *relation.Relation, predicate.Predicate) (*relation.Relation, error){
			Join, LeftOuterJoin, FullOuterJoin, Antijoin, Semijoin,
		} {
			fast, err := op(l, r, eq)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := op(l, r, slow)
			if err != nil {
				t.Fatal(err)
			}
			if !fast.EqualBag(ref) {
				t.Fatalf("trial %d: hash and nested-loop disagree\nl=%v\nr=%v\nfast=%v\nref=%v",
					trial, l, r, fast, ref)
			}
		}
	}
}

func TestJoinErrors(t *testing.T) {
	l, _ := sampleRS()
	if _, err := Join(l, l, joinPred()); err == nil {
		t.Error("join of overlapping schemes must fail")
	}
	r := relation.FromRows("S", []string{"k"}, []any{1})
	bad := predicate.NewIsNull(relation.A("Z", "z"))
	if _, err := Join(l, r, bad); err == nil {
		t.Error("join with unbindable predicate must fail")
	}
	if _, err := Union(l, relation.FromRows("R", []string{"k", "v", "x"}, []any{1, "a", "b"})); err != nil {
		t.Errorf("union of overlapping schemes pads fine: %v", err)
	}
}

// TestExample2NonAssociative reproduces the paper's Example 2 (E3 in
// DESIGN.md): R1 → (R2 − R3) and (R1 → R2) − R3 share a query graph but
// differ when (r2, r3) does not satisfy the join predicate.
func TestExample2NonAssociative(t *testing.T) {
	r1 := relation.FromRows("R1", []string{"a"}, []any{1})
	r2 := relation.FromRows("R2", []string{"b"}, []any{1})
	r3 := relation.FromRows("R3", []string{"c"}, []any{99}) // no match for r2

	pOJ := predicate.Eq(relation.A("R1", "a"), relation.A("R2", "b"))
	pJN := predicate.Eq(relation.A("R2", "b"), relation.A("R3", "c"))

	// R1 → (R2 − R3)
	inner, err := Join(r2, r3, pJN)
	if err != nil {
		t.Fatal(err)
	}
	lhs, err := LeftOuterJoin(r1, inner, pOJ)
	if err != nil {
		t.Fatal(err)
	}
	// (R1 → R2) − R3
	oj, err := LeftOuterJoin(r1, r2, pOJ)
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := Join(oj, r3, pJN)
	if err != nil {
		t.Fatal(err)
	}

	if lhs.Len() != 1 {
		t.Fatalf("LHS must be {(r1,-,-)}, got\n%v", lhs)
	}
	row := lhs.Row(0)
	if row.At(0) != relation.Int(1) || !row.At(1).IsNull() || !row.At(2).IsNull() {
		t.Fatalf("LHS row = %v, want (1, -, -)", row)
	}
	if rhs.Len() != 0 {
		t.Fatalf("RHS must be empty, got\n%v", rhs)
	}
}
