package algebra

// Property-based tests (testing/quick) for the operator invariants the
// identities build on. Each property takes a compact seed, expands it
// into relations/predicates deterministically, and asserts a structural
// invariant of the algebra.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// seedRel expands a byte-slice seed into a small relation.
func seedRel(name string, seed []byte) *relation.Relation {
	r := relation.New(relation.SchemeOf(name, "a"))
	for _, b := range seed {
		if len(seed) > 10 && int(b)%7 == 0 {
			r.MustAppend(relation.Null())
		} else {
			r.MustAppend(relation.Int(int64(b % 5)))
		}
	}
	return r
}

func seedPred(op byte, l, r string) predicate.Predicate {
	ops := []predicate.CmpOp{predicate.EqOp, predicate.NeOp, predicate.LtOp,
		predicate.LeOp, predicate.GtOp, predicate.GeOp}
	return predicate.Cmp(ops[int(op)%len(ops)],
		predicate.Col(relation.A(l, "a")), predicate.Col(relation.A(r, "a")))
}

func qc(t *testing.T, f any) {
	t.Helper()
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Join output size never exceeds the product's; every join row satisfies
// the predicate.
func TestPropJoinBoundedByProduct(t *testing.T) {
	qc(t, func(ls, rs []byte, op byte) bool {
		l, r := seedRel("L", ls), seedRel("R", rs)
		p := seedPred(op, "L", "R")
		jn, err := Join(l, r, p)
		if err != nil {
			return false
		}
		if jn.Len() > l.Len()*r.Len() {
			return false
		}
		bound := predicate.MustBind(p, jn.Scheme())
		for i := 0; i < jn.Len(); i++ {
			if !bound.Holds(jn.RawRow(i)) {
				return false
			}
		}
		return true
	})
}

// The outerjoin's cardinality is at least max(|join|, |L|) and at most
// |join| + |L|.
func TestPropOuterjoinCardinality(t *testing.T) {
	qc(t, func(ls, rs []byte, op byte) bool {
		l, r := seedRel("L", ls), seedRel("R", rs)
		p := seedPred(op, "L", "R")
		jn, err := Join(l, r, p)
		if err != nil {
			return false
		}
		oj, err := LeftOuterJoin(l, r, p)
		if err != nil {
			return false
		}
		if oj.Len() < jn.Len() || oj.Len() < l.Len() || oj.Len() > jn.Len()+l.Len() {
			return false
		}
		return true
	})
}

// Semijoin and antijoin partition the left input exactly.
func TestPropSemiAntiPartition(t *testing.T) {
	qc(t, func(ls, rs []byte, op byte) bool {
		l, r := seedRel("L", ls), seedRel("R", rs)
		p := seedPred(op, "L", "R")
		sj, err1 := Semijoin(l, r, p)
		aj, err2 := Antijoin(l, r, p)
		if err1 != nil || err2 != nil {
			return false
		}
		u, err := Union(sj, aj)
		if err != nil {
			return false
		}
		return u.EqualBag(l)
	})
}

// The full outerjoin contains the left outerjoin of either orientation.
func TestPropFullOuterSupersets(t *testing.T) {
	qc(t, func(ls, rs []byte, op byte) bool {
		l, r := seedRel("L", ls), seedRel("R", rs)
		p := seedPred(op, "L", "R")
		fo, err := FullOuterJoin(l, r, p)
		if err != nil {
			return false
		}
		lo, err := LeftOuterJoin(l, r, p)
		if err != nil {
			return false
		}
		ro, err := LeftOuterJoin(r, l, p)
		if err != nil {
			return false
		}
		return fo.Len() >= lo.Len() && fo.Len() >= ro.Len() &&
			fo.Len() <= lo.Len()+ro.Len()
	})
}

// Restriction is idempotent and monotone shrinking.
func TestPropRestrictIdempotent(t *testing.T) {
	qc(t, func(ls []byte, k uint8) bool {
		l := seedRel("L", ls)
		p := predicate.EqConst(relation.A("L", "a"), relation.Int(int64(k%5)))
		once, err := Restrict(l, p)
		if err != nil {
			return false
		}
		twice, err := Restrict(once, p)
		if err != nil {
			return false
		}
		return once.Len() <= l.Len() && twice.EqualBag(once)
	})
}

// Union cardinality is additive; dedup projection never grows.
func TestPropUnionAndProject(t *testing.T) {
	qc(t, func(ls, rs []byte) bool {
		l, r := seedRel("L", ls), seedRel("R", rs)
		u, err := Union(l, r)
		if err != nil {
			return false
		}
		if u.Len() != l.Len()+r.Len() {
			return false
		}
		pj, err := Project(l, []relation.Attr{relation.A("L", "a")}, true)
		if err != nil {
			return false
		}
		return pj.Len() <= l.Len() && !pj.HasDuplicates()
	})
}

// GOJ contains the join, and its extra rows are null everywhere outside S
// with an S-projection drawn from the left input.
func TestPropGOJStructure(t *testing.T) {
	qc(t, func(ls, rs []byte, op byte) bool {
		l, r := seedRel("L", ls), seedRel("R", rs)
		p := seedPred(op, "L", "R")
		s := []relation.Attr{relation.A("L", "a")}
		jn, err := Join(l, r, p)
		if err != nil {
			return false
		}
		goj, err := GeneralizedOuterJoin(l, r, p, s)
		if err != nil {
			return false
		}
		if goj.Len() < jn.Len() {
			return false
		}
		extras := goj.Len() - jn.Len()
		// Extras are bounded by the distinct S-projections of L.
		pl, err := Project(l, s, true)
		if err != nil {
			return false
		}
		return extras <= pl.Len()
	})
}

// GroupBy: group count never exceeds input rows; COUNT(*) totals match.
func TestPropGroupByTotals(t *testing.T) {
	qc(t, func(ls []byte) bool {
		l := seedRel("L", ls)
		out, err := GroupBy(l, []relation.Attr{relation.A("L", "a")},
			[]Agg{{Kind: CountRows, As: relation.A("o", "n")}})
		if err != nil {
			return false
		}
		if out.Len() > l.Len() {
			return false
		}
		var total int64
		for i := 0; i < out.Len(); i++ {
			total += out.Row(i).At(1).AsInt()
		}
		return total == int64(l.Len())
	})
}
