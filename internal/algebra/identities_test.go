package algebra

// Machine-checked versions of the paper's algebraic identities (§2.2
// identities 1–10, §2.3 identities 11–13, §6.2 identities 15–16), replacing
// the proofs the paper defers to the [GALI89] working paper. Each identity
// is evaluated on many randomized databases; preconditions (predicate
// strongness, duplicate-freeness) are honored where stated and violated in
// the negative tests.

import (
	"math/rand"
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// genRel produces a random single-column relation named rel with values
// drawn from a small domain (to force matches) plus occasional nulls.
func genRel(rnd *rand.Rand, rel string, maxRows int, nullable bool) *relation.Relation {
	r := relation.New(relation.SchemeOf(rel, "a"))
	n := rnd.Intn(maxRows + 1)
	for i := 0; i < n; i++ {
		if nullable && rnd.Intn(6) == 0 {
			r.MustAppend(relation.Null())
			continue
		}
		r.MustAppend(relation.Int(int64(rnd.Intn(4))))
	}
	return r
}

// genRelOver is genRel over an existing scheme (for identities that union
// two relations of the same scheme).
func genRelOver(rnd *rand.Rand, sch *relation.Scheme, maxRows int) *relation.Relation {
	r := relation.New(sch)
	n := rnd.Intn(maxRows + 1)
	for i := 0; i < n; i++ {
		vals := make([]relation.Value, sch.Len())
		for j := range vals {
			if rnd.Intn(6) == 0 {
				vals[j] = relation.Null()
			} else {
				vals[j] = relation.Int(int64(rnd.Intn(4)))
			}
		}
		r.AppendRaw(vals)
	}
	return r
}

// genPred produces a random comparison between the single columns of two
// relations. Comparisons are always strong w.r.t. both sides.
func genPred(rnd *rand.Rand, l, r string) predicate.Predicate {
	ops := []predicate.CmpOp{predicate.EqOp, predicate.NeOp, predicate.LtOp,
		predicate.LeOp, predicate.GtOp, predicate.GeOp}
	// Bias toward equality so joins are neither empty nor everything.
	op := predicate.EqOp
	if rnd.Intn(3) == 0 {
		op = ops[rnd.Intn(len(ops))]
	}
	return predicate.Cmp(op, predicate.Col(relation.A(l, "a")), predicate.Col(relation.A(r, "a")))
}

// nonStrongPred produces "l.a = r.a or r.a is null" — not strong w.r.t. r
// (Example 3's P_bc shape).
func nonStrongPred(l, r string) predicate.Predicate {
	return predicate.NewOr(
		predicate.Eq(relation.A(l, "a"), relation.A(r, "a")),
		predicate.NewIsNull(relation.A(r, "a")),
	)
}

// ev unwraps an operator result, panicking on error (generator-produced
// inputs are always well-formed, so an error is a test bug).
func ev(r *relation.Relation, err error) *relation.Relation {
	if err != nil {
		panic(err)
	}
	return r
}

const identityTrials = 120

func eachTrial(t *testing.T, f func(t *testing.T, rnd *rand.Rand, trial int)) {
	t.Helper()
	rnd := rand.New(rand.NewSource(42))
	for trial := 0; trial < identityTrials; trial++ {
		f(t, rnd, trial)
	}
}

func checkEqual(t *testing.T, trial int, name string, lhs, rhs *relation.Relation) {
	t.Helper()
	if !lhs.EqualBag(rhs) {
		t.Fatalf("trial %d: identity %s violated\nLHS:\n%v\nRHS:\n%v", trial, name, lhs, rhs)
	}
}

// Identity 1: (X −pxy Y) −(pxz∧pyz) Z = X −(pxy∧pxz) (Y −pyz Z).
// P_xz is optional; when present the conjunct moves between the operators
// (the query graph has a cycle).
func TestIdentity01JoinAssociativity(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genRel(rnd, "X", 6, true), genRel(rnd, "Y", 6, true), genRel(rnd, "Z", 6, true)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		withXZ := rnd.Intn(2) == 0
		var pxz predicate.Predicate
		if withXZ {
			pxz = genPred(rnd, "X", "Z")
		}

		lhsOuter := predicate.Predicate(pyz)
		rhsInnerPred := predicate.Predicate(pxy)
		if withXZ {
			lhsOuter = predicate.NewAnd(pxz, pyz)
			rhsInnerPred = predicate.NewAnd(pxy, pxz)
		}
		lhs := ev(Join(ev(Join(x, y, pxy)), z, lhsOuter))
		rhs := ev(Join(x, ev(Join(y, z, pyz)), rhsInnerPred))
		checkEqual(t, trial, "1", lhs, rhs)
	})
}

// Identity 2: (X −pxy Y) ▷pyz Z = X −pxy (Y ▷pyz Z).
func TestIdentity02JoinAntijoin(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genRel(rnd, "X", 6, true), genRel(rnd, "Y", 6, true), genRel(rnd, "Z", 6, true)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		lhs := ev(Antijoin(ev(Join(x, y, pxy)), z, pyz))
		rhs := ev(Join(x, ev(Antijoin(y, z, pyz)), pxy))
		checkEqual(t, trial, "2", lhs, rhs)
	})
}

// Identity 3: (X ◁pxy Y) ▷pyz Z = X ◁pxy (Y ▷pyz Z); in prefix form,
// antijoins against Y from either side commute:
// AJ(AJ(Y,X), Z) = AJ(AJ(Y,Z), X).
func TestIdentity03AntijoinCommute(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genRel(rnd, "X", 6, true), genRel(rnd, "Y", 6, true), genRel(rnd, "Z", 6, true)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		lhs := ev(Antijoin(ev(Antijoin(y, x, pxy)), z, pyz))
		rhs := ev(Antijoin(ev(Antijoin(y, z, pyz)), x, pxy))
		checkEqual(t, trial, "3", lhs, rhs)
	})
}

// Identity 4: X − (Y ∪ Z) = (X − Y) ∪ (X − Z), with Y, Z over one scheme.
func TestIdentity04JoinDistributesRight(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		sch := relation.SchemeOf("Y", "a")
		x := genRel(rnd, "X", 6, true)
		y, z := genRelOver(rnd, sch, 5), genRelOver(rnd, sch, 5)
		p := genPred(rnd, "X", "Y")
		lhs := ev(Join(x, ev(Union(y, z)), p))
		rhs := ev(Union(ev(Join(x, y, p)), ev(Join(x, z, p))))
		checkEqual(t, trial, "4", lhs, rhs)
	})
}

// Identity 5: (Y ∪ Z) − X = (Y − X) ∪ (Z − X).
func TestIdentity05JoinDistributesLeft(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		sch := relation.SchemeOf("Y", "a")
		x := genRel(rnd, "X", 6, true)
		y, z := genRelOver(rnd, sch, 5), genRelOver(rnd, sch, 5)
		p := genPred(rnd, "Y", "X")
		lhs := ev(Join(ev(Union(y, z)), x, p))
		rhs := ev(Union(ev(Join(y, x, p)), ev(Join(z, x, p))))
		checkEqual(t, trial, "5", lhs, rhs)
	})
}

// Identity 6: (Y ∪ Z) ▷ X = (Y ▷ X) ∪ (Z ▷ X).
func TestIdentity06AntijoinDistributesLeft(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		sch := relation.SchemeOf("Y", "a")
		x := genRel(rnd, "X", 6, true)
		y, z := genRelOver(rnd, sch, 5), genRelOver(rnd, sch, 5)
		p := genPred(rnd, "Y", "X")
		lhs := ev(Antijoin(ev(Union(y, z)), x, p))
		rhs := ev(Union(ev(Antijoin(y, x, p)), ev(Antijoin(z, x, p))))
		checkEqual(t, trial, "6", lhs, rhs)
	})
}

// Identity 7 (pseudo-distributivity of antijoin):
// X ▷pxy Y = X ▷pxy (Y −pyz Z ∪ Y ▷pyz Z).
func TestIdentity07AntijoinPseudoDistributivity(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genRel(rnd, "X", 6, true), genRel(rnd, "Y", 6, true), genRel(rnd, "Z", 6, true)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		lhs := ev(Antijoin(x, y, pxy))
		inner := ev(Union(ev(Join(y, z, pyz)), ev(Antijoin(y, z, pyz))))
		rhs := ev(Antijoin(x, inner, pxy))
		checkEqual(t, trial, "7", lhs, rhs)
	})
}

// Identities 8 and 9: with P_yz strong w.r.t. Y, and the antijoin result
// padded to sch(X) ∪ sch(Y) per the union convention:
//
//	(X ▷pxy Y) −pyz Z = ∅            (8)
//	(X ▷pxy Y) ▷pyz Z = X ▷pxy Y     (9)
func TestIdentity0809StrongPredicateOnPaddedAntijoin(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genRel(rnd, "X", 6, true), genRel(rnd, "Y", 6, true), genRel(rnd, "Z", 6, true)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		if !predicate.StrongWRTScheme(pyz, y.Scheme()) {
			t.Fatal("generator invariant: comparisons are strong")
		}
		aj := ev(Antijoin(x, y, pxy))
		padded, err := aj.PadTo(relation.MustScheme(
			append(x.Scheme().Attrs(), y.Scheme().Attrs()...)...))
		if err != nil {
			t.Fatal(err)
		}
		join := ev(Join(padded, z, pyz))
		if join.Len() != 0 {
			t.Fatalf("trial %d: identity 8 violated:\n%v", trial, join)
		}
		keep := ev(Antijoin(padded, z, pyz))
		checkEqual(t, trial, "9", keep, padded)
	})
}

// Identity 10: X → Y = (X − Y) ∪ (X ▷ Y) — outerjoin as join plus padded
// antijoin.
func TestIdentity10OuterjoinExpansion(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y := genRel(rnd, "X", 8, true), genRel(rnd, "Y", 8, true)
		p := genPred(rnd, "X", "Y")
		lhs := ev(LeftOuterJoin(x, y, p))
		rhs := ev(Union(ev(Join(x, y, p)), ev(Antijoin(x, y, p))))
		checkEqual(t, trial, "10", lhs, rhs)
	})
}

// Identity 11: (X −pxy Y) →pyz Z = X −pxy (Y →pyz Z).
func TestIdentity11JoinThenOuterjoin(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genRel(rnd, "X", 6, true), genRel(rnd, "Y", 6, true), genRel(rnd, "Z", 6, true)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		lhs := ev(LeftOuterJoin(ev(Join(x, y, pxy)), z, pyz))
		rhs := ev(Join(x, ev(LeftOuterJoin(y, z, pyz)), pxy))
		checkEqual(t, trial, "11", lhs, rhs)
	})
}

// Identity 12: (X →pxy Y) →pyz Z = X →pxy (Y →pyz Z) when P_yz is strong
// w.r.t. Y. Our generated comparisons are always strong.
func TestIdentity12OuterjoinAssociativity(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genRel(rnd, "X", 6, true), genRel(rnd, "Y", 6, true), genRel(rnd, "Z", 6, true)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		lhs := ev(LeftOuterJoin(ev(LeftOuterJoin(x, y, pxy)), z, pyz))
		rhs := ev(LeftOuterJoin(x, ev(LeftOuterJoin(y, z, pyz)), pxy))
		checkEqual(t, trial, "12", lhs, rhs)
	})
}

// Identity 13: (X ←pxy Y) →pyz Z = X ←pxy (Y →pyz Z). In prefix form with
// the symmetric arrow resolved: OJ(OJ(Y,X,pxy), Z, pyz) =
// OJ(OJ(Y,Z,pyz), X, pxy) — outerjoins hanging off Y on both sides
// commute.
func TestIdentity13OuterjoinsCommute(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genRel(rnd, "X", 6, true), genRel(rnd, "Y", 6, true), genRel(rnd, "Z", 6, true)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		lhs := ev(LeftOuterJoin(ev(LeftOuterJoin(y, x, pxy)), z, pyz))
		rhs := ev(LeftOuterJoin(ev(LeftOuterJoin(y, z, pyz)), x, pxy))
		checkEqual(t, trial, "13", lhs, rhs)
	})
}

// TestExample3NonStrong reproduces the paper's Example 3 exactly (E4):
// with A = {(1)}, B = {(2, null)}, C = {(3)}, P_ab = (A.a = B.b1) and
// P_bc = (B.b2 = C.c or B.b2 is null), identity 12 fails because P_bc is
// not strong with respect to B.
func TestExample3NonStrong(t *testing.T) {
	a := relation.FromRows("A", []string{"a"}, []any{1})
	b := relation.FromRows("B", []string{"b1", "b2"}, []any{2, nil})
	c := relation.FromRows("C", []string{"c"}, []any{3})

	pab := predicate.Eq(relation.A("A", "a"), relation.A("B", "b1"))
	pbc := nonStrongPred("C", "B") // B.a? no — build explicitly below
	_ = pbc
	pbcExact := predicate.NewOr(
		predicate.Eq(relation.A("B", "b2"), relation.A("C", "c")),
		predicate.NewIsNull(relation.A("B", "b2")),
	)
	if predicate.StrongWRTScheme(pbcExact, b.Scheme()) {
		t.Fatal("P_bc must not be strong w.r.t. B")
	}

	lhs := ev(LeftOuterJoin(ev(LeftOuterJoin(a, b, pab)), c, pbcExact))
	rhs := ev(LeftOuterJoin(a, ev(LeftOuterJoin(b, c, pbcExact)), pab))
	if lhs.EqualBag(rhs) {
		t.Fatalf("Example 3 should break identity 12 without strongness:\nLHS:\n%v\nRHS:\n%v", lhs, rhs)
	}
	// LHS: (A→B) = {(1,-,-)}; P_bc on all-null B is True via "is null", so
	// the padded tuple joins with c: {(1,-,-,3)}.
	if lhs.Len() != 1 || !lhs.Row(0).At(1).IsNull() || lhs.Row(0).At(3) != relation.Int(3) {
		t.Errorf("LHS unexpected:\n%v", lhs)
	}
	// RHS: (B→C) = {(2,-,3)} (b2 null matches via is-null); A→... finds no
	// match on A.a=B.b1 (1≠2) so pads: {(1,-,-,-)}.
	if rhs.Len() != 1 || !rhs.Row(0).At(3).IsNull() {
		t.Errorf("RHS unexpected:\n%v", rhs)
	}
}

// TestIdentity12NeedsStrongness searches randomized databases with the
// non-strong predicate shape and verifies violations of identity 12 do
// occur (the identity's precondition is tight).
func TestIdentity12NeedsStrongness(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	violated := false
	for trial := 0; trial < 300 && !violated; trial++ {
		x, y, z := genRel(rnd, "X", 4, true), genRel(rnd, "Y", 4, true), genRel(rnd, "Z", 4, true)
		pxy := genPred(rnd, "X", "Y")
		pyz := nonStrongPred("Z", "Y") // "Z.a = Y.a or Y.a is null": not strong wrt Y
		lhs := ev(LeftOuterJoin(ev(LeftOuterJoin(x, y, pxy)), z, pyz))
		rhs := ev(LeftOuterJoin(x, ev(LeftOuterJoin(y, z, pyz)), pxy))
		if !lhs.EqualBag(rhs) {
			violated = true
		}
	}
	if !violated {
		t.Error("expected to find identity-12 violations with a non-strong predicate")
	}
}

// genDedupRel is genRel with duplicates removed (GOJ identities assume
// duplicate-free relations).
func genDedupRel(rnd *rand.Rand, rel string, maxRows int) *relation.Relation {
	return genRel(rnd, rel, maxRows, true).Dedup()
}

// TestGOJGeneralizesJoinAndOuterjoin: GOJ[∅] behaves like join on
// non-empty results, and GOJ[sch(X)] = outerjoin on duplicate-free X.
func TestGOJGeneralizesJoinAndOuterjoin(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y := genDedupRel(rnd, "X", 6), genDedupRel(rnd, "Y", 6)
		p := genPred(rnd, "X", "Y")
		goj := ev(GeneralizedOuterJoin(x, y, p, x.Scheme().Attrs()))
		oj := ev(LeftOuterJoin(x, y, p))
		checkEqual(t, trial, "GOJ[sch(X)] = OJ", goj, oj)
	})
}

func TestGOJEmptyS(t *testing.T) {
	x := relation.FromRows("X", []string{"a"}, []any{1}, []any{2})
	y := relation.FromRows("Y", []string{"b"}, []any{1})
	p := predicate.Eq(relation.A("X", "a"), relation.A("Y", "b"))

	// Non-empty join: GOJ[∅] = JN.
	goj := ev(GeneralizedOuterJoin(x, y, p, nil))
	jn := ev(Join(x, y, p))
	if !goj.EqualBag(jn) {
		t.Errorf("GOJ[∅] with matches must equal join:\n%v", goj)
	}
	// Empty join, non-empty X: one all-null row.
	yNone := relation.FromRows("Y", []string{"b"}, []any{99})
	goj2 := ev(GeneralizedOuterJoin(x, yNone, p, nil))
	if goj2.Len() != 1 || !goj2.Row(0).At(0).IsNull() {
		t.Errorf("GOJ[∅] with empty join must be one null row:\n%v", goj2)
	}
	// Empty X: empty result.
	xEmpty := relation.New(relation.SchemeOf("X", "a"))
	goj3 := ev(GeneralizedOuterJoin(xEmpty, y, p, nil))
	if goj3.Len() != 0 {
		t.Errorf("GOJ[∅] on empty X must be empty:\n%v", goj3)
	}
}

func TestGOJRefinesDayal(t *testing.T) {
	// x1 matches y1 and y2; only y1 matches z. GOJ[sch(X)] after (X→Y)
	// must NOT add an unmatched (x1, y2, -) row because x1's S-projection
	// already appears in the join — the refinement over Generalized-Join.
	x := relation.FromRows("X", []string{"a"}, []any{1})
	y := relation.FromRows("Y", []string{"a", "b"}, []any{1, 10}, []any{1, 20})
	z := relation.FromRows("Z", []string{"c"}, []any{10})
	pxy := predicate.Eq(relation.A("X", "a"), relation.A("Y", "a"))
	pyz := predicate.Eq(relation.A("Y", "b"), relation.A("Z", "c"))

	oj := ev(LeftOuterJoin(x, y, pxy))
	goj := ev(GeneralizedOuterJoin(oj, z, pyz, x.Scheme().Attrs()))
	want := ev(LeftOuterJoin(x, ev(Join(y, z, pyz)), pxy))
	if !goj.EqualBag(want) {
		t.Fatalf("GOJ refinement broken:\ngot:\n%v\nwant:\n%v", goj, want)
	}
	if goj.Len() != 1 {
		t.Fatalf("expected exactly the single join row:\n%v", goj)
	}
}

// Identity 15: X OJ (Y JN Z) = (X OJ Y) GOJ[sch(X)] Z, on duplicate-free
// relations with strong predicates of shapes P_xy and P_yz.
func TestIdentity15GOJReassociation(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genDedupRel(rnd, "X", 6), genDedupRel(rnd, "Y", 6), genDedupRel(rnd, "Z", 6)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		lhs := ev(LeftOuterJoin(x, ev(Join(y, z, pyz)), pxy))
		rhs := ev(GeneralizedOuterJoin(ev(LeftOuterJoin(x, y, pxy)), z, pyz, x.Scheme().Attrs()))
		checkEqual(t, trial, "15", lhs, rhs)
	})
}

// Identity 16: X JN (Y GOJ[S] Z) = (X JN Y) GOJ[S ∪ sch(X)] Z, when
// S ⊆ sch(Y) contains all X–Y join attributes.
func TestIdentity16GOJJoinPushdown(t *testing.T) {
	eachTrial(t, func(t *testing.T, rnd *rand.Rand, trial int) {
		x, y, z := genDedupRel(rnd, "X", 6), genDedupRel(rnd, "Y", 6), genDedupRel(rnd, "Z", 6)
		pxy, pyz := genPred(rnd, "X", "Y"), genPred(rnd, "Y", "Z")
		s := y.Scheme().Attrs() // S = sch(Y) ⊇ join attrs of Y
		lhs := ev(Join(x, ev(GeneralizedOuterJoin(y, z, pyz, s)), pxy))
		sUnionX := append(append([]relation.Attr(nil), s...), x.Scheme().Attrs()...)
		rhs := ev(GeneralizedOuterJoin(ev(Join(x, y, pxy)), z, pyz, sUnionX))
		checkEqual(t, trial, "16", lhs, rhs)
	})
}
