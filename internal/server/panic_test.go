package server

import (
	"strings"
	"testing"

	"freejoin/internal/obs"
)

// TestPanicIsolationContract drives an injected panic through every
// lifecycle point the hook exposes — command dispatch, planning, and
// execution (where the admission grant is held) — and asserts the
// blast radius contract at each: the panicking query gets a typed
// internal_error response with the panic message, the stack lands in
// the tracer ring for the slow-query log, oj_server_panics_total
// increments, the grant drains back to the pools, and every other
// session keeps answering correctly. The process, of course, survives.
func TestPanicIsolationContract(t *testing.T) {
	for _, point := range []string{"dispatch", "plan", "execute"} {
		t.Run(point, func(t *testing.T) {
			srv := startTestServer(t, Config{
				MaxConcurrent: 2,
				PoolBytes:     1 << 20,
				QueryMemBytes: 1 << 10,
			})
			core := srv.Core()
			victim := dialServer(t, srv.Addr())
			bystander := dialServer(t, srv.Addr())
			victim.mustOK("table BOOMBAIT(a) = (1), (2)")
			victim.mustOK("table CALM(a) = (1), (2)")
			victim.mustOK("table CALM2(a) = (1), (2)")

			// Panic only on queries naming the bait relation, only at the
			// point under test — the bystander's traffic passes through the
			// same hook unharmed.
			pt := point
			SetPanicHook(func(p, label string) {
				if p == pt && strings.Contains(label, "BOOMBAIT") {
					panic("injected panic at " + p)
				}
			})
			defer SetPanicHook(nil)

			panics0 := obs.ServerPanics.Value()
			r := victim.send("query BOOMBAIT -[BOOMBAIT.a = CALM.a] CALM")
			if r.OK || r.Code != CodeInternal {
				t.Fatalf("panicked query = %+v, want code %s", r, CodeInternal)
			}
			if !strings.Contains(r.Error, "injected panic at "+pt) {
				t.Fatalf("panic message lost: %q", r.Error)
			}
			if got := obs.ServerPanics.Value(); got != panics0+1 {
				t.Fatalf("oj_server_panics_total = %d, want %d", got, panics0+1)
			}

			// The stack is preserved for the slow-query log.
			var stacked bool
			for _, rec := range core.Tracer().Ring().Snapshot() {
				if rec.Stack != "" && strings.Contains(rec.Err, "injected panic at "+pt) {
					stacked = true
					if !strings.Contains(rec.Stack, "goroutine") {
						t.Fatalf("stack does not look like a stack: %.80q", rec.Stack)
					}
				}
			}
			if !stacked {
				t.Fatal("no traced record carries the panic stack")
			}

			// The grant drained even when the panic fired mid-lifecycle
			// with the grant held.
			if st := core.Admission().Stats(); st.Active != 0 || st.UsedBytes != 0 {
				t.Fatalf("admission leaked across panic: %+v", st)
			}

			// The panicking session survives on the same connection, and
			// so does everyone else.
			if r := victim.mustOK("query CALM -[CALM.a = CALM2.a] CALM2"); r.Rows != 2 {
				t.Fatalf("victim session after panic = %+v", r)
			}
			if r := bystander.mustOK("query CALM -[CALM.a = CALM2.a] CALM2"); r.Rows != 2 {
				t.Fatalf("bystander after panic = %+v", r)
			}
		})
	}
}

// Tracer reconciliation across panics: a panicked query is a failure,
// so started = completed + failed + rejected still holds.
func TestPanicCountsAsFailure(t *testing.T) {
	srv := startTestServer(t, Config{})
	c := dialServer(t, srv.Addr())
	c.mustOK("table BOOMBAIT(a) = (1)")

	SetPanicHook(func(p, label string) {
		if p == "execute" && strings.Contains(label, "BOOMBAIT") {
			panic("boom")
		}
	})
	defer SetPanicHook(nil)

	started0 := obs.QueriesStarted.Value()
	failed0 := obs.QueriesFailed.Value()
	if r := c.send("query BOOMBAIT"); r.OK || r.Code != CodeInternal {
		t.Fatalf("panicked query = %+v", r)
	}
	if s, f := obs.QueriesStarted.Value()-started0, obs.QueriesFailed.Value()-failed0; s != 1 || f != 1 {
		t.Fatalf("tracer saw started=%d failed=%d for one panicked query, want 1/1", s, f)
	}
	if act := obs.QueriesActive.Value(); act != 0 {
		t.Fatalf("%d queries left active after panic", act)
	}
}
