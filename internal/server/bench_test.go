package server

import (
	"math/rand"
	"testing"

	"freejoin/internal/workload"
)

// BenchmarkServerConcurrent16 drives 16 concurrent TCP clients of mixed
// query shapes (the metamorphic mix, plan cache warm) through one
// server and reports end-to-end latency percentiles alongside the
// standard per-op time:
//
//	p50-ns/op, p95-ns/op, p99-ns/op
//
// benchjson files these custom units under "extra" in the dated
// baseline, so concurrency latency drift is tracked across PRs like
// ns/op drift.
func BenchmarkServerConcurrent16(b *testing.B) {
	const clients = 16
	srv := startTestServer(b, Config{MaxConcurrent: 8, QueueDepth: 64})
	core := srv.Core()

	rnd := rand.New(rand.NewSource(1))
	queries, names := workload.QueryMix(rnd, 8)
	for _, name := range names {
		core.Catalog().AddRelation(name, workload.RandomRelation(rnd, name, 40))
	}
	conns := make([]*testClient, clients)
	for i := range conns {
		conns[i] = dialServer(b, srv.Addr())
	}
	// Warm the shared plan cache so the steady state is measured.
	for _, q := range queries {
		conns[0].mustOK("query " + q)
	}

	perClient := (b.N + clients - 1) / clients
	b.ResetTimer()
	d := &workload.Driver{
		Clients:   clients,
		PerClient: perClient,
		Exec: func(client, iter int) workload.Outcome {
			q := queries[(client*perClient+iter)%len(queries)]
			r := conns[client].send("query " + q)
			switch {
			case r.OK:
				return workload.OutcomeOK
			case r.Code == CodeAdmissionRejected:
				return workload.OutcomeRejected
			default:
				return workload.OutcomeFailed
			}
		},
	}
	rep := d.Run()
	b.StopTimer()
	if rep.OK() == 0 {
		b.Fatalf("no successful queries: %s", rep)
	}
	b.ReportMetric(float64(rep.Percentile(0.50).Nanoseconds()), "p50-ns/op")
	b.ReportMetric(float64(rep.Percentile(0.95).Nanoseconds()), "p95-ns/op")
	b.ReportMetric(float64(rep.Percentile(0.99).Nanoseconds()), "p99-ns/op")
}
