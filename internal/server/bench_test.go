package server

import (
	"math/rand"
	"testing"
	"time"

	"freejoin/internal/chaos"
	"freejoin/internal/workload"
)

// BenchmarkServerConcurrent16 drives 16 concurrent TCP clients of mixed
// query shapes (the metamorphic mix, plan cache warm) through one
// server and reports end-to-end latency percentiles alongside the
// standard per-op time:
//
//	p50-ns/op, p95-ns/op, p99-ns/op
//
// benchjson files these custom units under "extra" in the dated
// baseline, so concurrency latency drift is tracked across PRs like
// ns/op drift.
func BenchmarkServerConcurrent16(b *testing.B) {
	const clients = 16
	srv := startTestServer(b, Config{MaxConcurrent: 8, QueueDepth: 64})
	core := srv.Core()

	rnd := rand.New(rand.NewSource(1))
	queries, names := workload.QueryMix(rnd, 8)
	for _, name := range names {
		core.Catalog().AddRelation(name, workload.RandomRelation(rnd, name, 40))
	}
	conns := make([]*testClient, clients)
	for i := range conns {
		conns[i] = dialServer(b, srv.Addr())
	}
	// Warm the shared plan cache so the steady state is measured.
	for _, q := range queries {
		conns[0].mustOK("query " + q)
	}

	perClient := (b.N + clients - 1) / clients
	b.ResetTimer()
	d := &workload.Driver{
		Clients:   clients,
		PerClient: perClient,
		Exec: func(client, iter int) workload.Outcome {
			q := queries[(client*perClient+iter)%len(queries)]
			r := conns[client].send("query " + q)
			switch {
			case r.OK:
				return workload.OutcomeOK
			case r.Code == CodeAdmissionRejected:
				return workload.OutcomeRejected
			default:
				return workload.OutcomeFailed
			}
		},
	}
	rep := d.Run()
	b.StopTimer()
	if rep.OK() == 0 {
		b.Fatalf("no successful queries: %s", rep)
	}
	b.ReportMetric(float64(rep.Percentile(0.50).Nanoseconds()), "p50-ns/op")
	b.ReportMetric(float64(rep.Percentile(0.95).Nanoseconds()), "p95-ns/op")
	b.ReportMetric(float64(rep.Percentile(0.99).Nanoseconds()), "p99-ns/op")
}

// BenchmarkChaosSoakGoodput measures goodput under the chaos-soak fault
// profile: 16 retrying workload.Clients against a listener injecting a
// 10% per-I/O fault mix. Reported units:
//
//	goodput-pct   fraction of requests that completed OK, ×100
//	retries/op    client retry attempts amortized per request
//	p99-ns/op     end-to-end latency including backoff sleeps
//
// The dated benchjson baseline tracks goodput-pct so a regression in
// retry/backoff or fault handling shows up as a number, not a flake.
func BenchmarkChaosSoakGoodput(b *testing.B) {
	const clients = 16
	srv := startTestServer(b, Config{
		MaxConcurrent: 8,
		QueueDepth:    64,
		IdleTimeout:   2 * time.Second,
		WriteTimeout:  2 * time.Second,
		ShedWait:      50 * time.Millisecond,
		Chaos:         &chaos.Config{Seed: chaosSoakSeed, Rate: 0.10, MaxStall: time.Millisecond},
	})
	core := srv.Core()

	rnd := rand.New(rand.NewSource(chaosSoakSeed))
	queries, names := workload.QueryMix(rnd, 8)
	for _, name := range names {
		core.Catalog().AddRelation(name, workload.RandomRelation(rnd, name, 40))
	}
	cls := make([]*workload.Client, clients)
	for i := range cls {
		cls[i] = &workload.Client{
			Addr:        srv.Addr(),
			Rand:        rand.New(rand.NewSource(chaosSoakSeed + int64(i))),
			BaseBackoff: time.Millisecond,
			MaxBackoff:  20 * time.Millisecond,
		}
	}
	// Warm the shared plan cache so the steady state is measured. Chaos
	// is already live on the wire, so warmup is best-effort.
	for _, q := range queries {
		cls[0].Query(q)
	}

	perClient := (b.N + clients - 1) / clients
	b.ResetTimer()
	d := &workload.Driver{
		Clients:   clients,
		PerClient: perClient,
		Exec: func(client, iter int) workload.Outcome {
			resp, err := cls[client].Query(queries[(client*perClient+iter)%len(queries)])
			switch {
			case err == nil && resp.OK:
				return workload.OutcomeOK
			case resp.Code == CodeAdmissionRejected || resp.Code == CodeRetryAfter:
				return workload.OutcomeRejected
			default:
				return workload.OutcomeFailed
			}
		},
	}
	rep := d.Run()
	b.StopTimer()
	if rep.OK() == 0 {
		b.Fatalf("no successful queries: %s", rep)
	}
	retries := 0
	for _, cl := range cls {
		retries += cl.Retries
		cl.Close()
	}
	b.ReportMetric(100*float64(rep.OK())/float64(rep.Total), "goodput-pct")
	b.ReportMetric(float64(retries)/float64(rep.Total), "retries/op")
	b.ReportMetric(float64(rep.Percentile(0.99).Nanoseconds()), "p99-ns/op")
}
