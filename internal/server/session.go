package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"freejoin/internal/exec"
	"freejoin/internal/expr"
	"freejoin/internal/obs"
	"freejoin/internal/optimizer"
	"freejoin/internal/parse"
	"freejoin/internal/relation"
)

// Response is the one-line JSON answer to every protocol command.
type Response struct {
	OK     bool   `json:"ok"`
	Output string `json:"output,omitempty"`
	Rows   int64  `json:"rows,omitempty"`
	Tuples int64  `json:"tuples,omitempty"`
	Cache  string `json:"cache,omitempty"` // plan-cache outcome (hit/miss/...)
	Plan   string `json:"plan,omitempty"`
	Error  string `json:"error,omitempty"`
	Code   string `json:"code,omitempty"` // machine-readable error class
	// RetryAfterMS hints when a shed client should try again
	// (retry_after and queue-full admission rejections).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// Error codes carried in Response.Code.
const (
	CodeUsage             = "usage"
	CodeParse             = "parse"
	CodePlan              = "plan"
	CodeExec              = "exec"
	CodeResource          = "resource"
	CodeCancelled         = "cancelled"
	CodeAdmissionRejected = "admission_rejected"
	CodeUnknownCommand    = "unknown_command"
	// CodeInternal: a panic was caught by per-session isolation; the
	// query failed but the server keeps serving.
	CodeInternal = "internal_error"
	// CodeProtocol: the client broke wire framing (oversized or
	// malformed line); the connection closes after the response.
	CodeProtocol = "protocol_error"
	// CodeIdleTimeout: the session sent nothing for the idle window.
	CodeIdleTimeout = "idle_timeout"
	// CodeDraining: the server is shutting down gracefully and takes no
	// new queries.
	CodeDraining = "draining"
	// CodeRetryAfter: load-shed; the response carries retry_after_ms.
	CodeRetryAfter = "retry_after"
)

func errResp(code string, err error) Response {
	return Response{Error: err.Error(), Code: code}
}

// panicHook is a test seam: when set, it is called at named lifecycle
// points ("dispatch", "plan", "execute") with the command label, and may
// panic — the panic-isolation contract test drives every point and
// asserts the blast radius stays inside the one query.
var panicHook atomic.Pointer[func(point, label string)]

// SetPanicHook installs (or, with nil, removes) the lifecycle panic
// hook. Test-only; not for production use.
func SetPanicHook(f func(point, label string)) {
	if f == nil {
		panicHook.Store(nil)
		return
	}
	panicHook.Store(&f)
}

func firePanicPoint(point, label string) {
	if f := panicHook.Load(); f != nil {
		(*f)(point, label)
	}
}

// SafeExec is Exec behind the per-session panic barrier: a panic
// anywhere in command handling becomes a typed internal_error response
// with the stack preserved in the tracer (and the slow-query log), and
// the server keeps serving. Connection goroutines call this, never Exec
// directly.
func (s *Session) SafeExec(ctx context.Context, line string) (resp Response) {
	defer func() {
		if p := recover(); p != nil {
			obs.ServerPanics.Inc()
			s.core.tracer.RecordPanic(line, p, debug.Stack())
			resp = errResp(CodeInternal, fmt.Errorf("internal error: panic: %v", p))
		}
	}()
	return s.Exec(ctx, line)
}

// Session is one client's state over the shared core: its resource
// limits (seeded from the server defaults, adjustable with "set") and
// its prepared statements. A session is used by one connection goroutine
// at a time; all cross-session state lives in the core.
type Session struct {
	core *Core

	timeout  time.Duration
	memLimit int64 // per-query memory grant request
	spill    bool
	useCache bool   // whether this session consults the shared plan cache
	strategy string // planner strategy ("" → dp); see optimizer.Optimizer.Strategy
	// batchSize selects vectorized execution: 0 = batched with the
	// default size, optimizer.BatchOff = row-at-a-time, >0 = rows per
	// batch. Part of the plan-cache fingerprint.
	batchSize int

	prepared map[string]*preparedStmt
}

type preparedStmt struct {
	src string
	q   *expr.Node
}

// NewSession builds a session with the core's default limits.
func NewSession(core *Core) *Session {
	return &Session{
		core:      core,
		timeout:   core.cfg.Timeout,
		memLimit:  core.cfg.QueryMemBytes,
		spill:     core.cfg.Spill,
		useCache:  core.plans != nil,
		strategy:  core.cfg.Strategy,
		batchSize: core.cfg.BatchSize,
		prepared:  make(map[string]*preparedStmt),
	}
}

const sessionHelp = `commands (one per line; every answer is one JSON line):
  ping                                        liveness check
  table NAME(col, ...) = (v, ...), (v, ...)   define a table; null for nulls
  index NAME col                              build a hash index
  tables                                      list tables
  query EXPR                                  optimize and execute an expression
  explain EXPR                                show the chosen plan (no execution)
  prepare NAME EXPR                           parse and plan a named query once
  execute NAME                                run a prepared query (plan-cache hit)
  set timeout DUR|off                         per-query deadline, admission wait included
  set memory_limit N[KB|MB]|off               per-query memory grant request
  set spill on|off                            spill to disk on memory budget trips
  set plan_cache on|off                       consult the shared plan cache
  set strategy dp|yannakakis|auto             planner for reorderable queries
  set batch_size N|off|default                rows per execution batch (off = row-at-a-time)
  set                                         show current limits
  stats                                       admission/pool/cache snapshot
  quit                                        close the session`

// Exec runs one protocol command. ctx is the server's base context:
// cancelling it (shutdown) aborts in-flight executions.
func (s *Session) Exec(ctx context.Context, line string) Response {
	cmd, rest, _ := strings.Cut(strings.TrimSpace(line), " ")
	rest = strings.TrimSpace(rest)
	firePanicPoint("dispatch", line)
	switch strings.ToLower(cmd) {
	case "ping":
		return Response{OK: true, Output: "pong"}
	case "help":
		return Response{OK: true, Output: sessionHelp}
	case "table":
		return s.cmdTable(rest)
	case "index":
		return s.cmdIndex(rest)
	case "tables":
		return s.cmdTables()
	case "query":
		q, err := parse.Expr(rest)
		if err != nil {
			return errResp(CodeParse, err)
		}
		resp, _ := s.runQuery(ctx, "query "+rest, q, false)
		return resp
	case "explain":
		return s.cmdExplain(rest)
	case "prepare":
		return s.cmdPrepare(rest)
	case "execute":
		ps, ok := s.prepared[rest]
		if !ok || rest == "" {
			return errResp(CodeUsage, fmt.Errorf("no prepared query %q (use prepare NAME EXPR)", rest))
		}
		resp, _ := s.runQuery(ctx, "execute "+rest+": "+ps.src, ps.q, false)
		return resp
	case "set":
		return s.cmdSet(rest)
	case "stats":
		return s.cmdStats()
	default:
		return errResp(CodeUnknownCommand, fmt.Errorf("unknown command %q (try help)", cmd))
	}
}

func (s *Session) cmdTable(rest string) Response {
	name, rel, err := parse.TableLiteral(rest)
	if err != nil {
		return errResp(CodeUsage, err)
	}
	s.core.cat.AddRelation(name, rel)
	return Response{OK: true, Output: fmt.Sprintf("table %s: %d rows", name, rel.Len()),
		Rows: int64(rel.Len())}
}

func (s *Session) cmdIndex(rest string) Response {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return errResp(CodeUsage, fmt.Errorf("usage: index TABLE col"))
	}
	t, err := s.core.cat.Table(parts[0])
	if err != nil {
		return errResp(CodeUsage, err)
	}
	if _, err := t.BuildHashIndex(parts[1]); err != nil {
		return errResp(CodeUsage, err)
	}
	return Response{OK: true, Output: fmt.Sprintf("hash index on %s.%s", parts[0], parts[1])}
}

func (s *Session) cmdTables() Response {
	names := s.core.cat.Tables()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t, err := s.core.cat.Table(n)
		if err != nil {
			continue // dropped between list and lookup
		}
		fmt.Fprintf(&b, "%s%s  (%d rows)\n", n, t.Scheme(), t.Relation().Len())
	}
	return Response{OK: true, Output: strings.TrimRight(b.String(), "\n"), Rows: int64(len(names))}
}

func (s *Session) cmdExplain(rest string) Response {
	if rest == "" {
		return errResp(CodeUsage, fmt.Errorf("usage: explain EXPR"))
	}
	q, err := parse.Expr(rest)
	if err != nil {
		return errResp(CodeParse, err)
	}
	o := s.newOptimizer()
	p, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		return errResp(CodePlan, err)
	}
	return Response{OK: true, Output: optimizer.Explain(p, tr), Plan: p.Tree(),
		Cache: tr.CacheOutcome}
}

func (s *Session) cmdPrepare(rest string) Response {
	name, src, found := strings.Cut(rest, " ")
	src = strings.TrimSpace(src)
	if !found || name == "" || src == "" {
		return errResp(CodeUsage, fmt.Errorf("usage: prepare NAME EXPR"))
	}
	q, err := parse.Expr(src)
	if err != nil {
		return errResp(CodeParse, err)
	}
	o := s.newOptimizer()
	_, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		return errResp(CodePlan, err)
	}
	s.prepared[name] = &preparedStmt{src: src, q: q}
	return Response{OK: true, Output: "prepared " + name, Cache: tr.CacheOutcome}
}

func (s *Session) cmdSet(rest string) Response {
	if rest == "" {
		cache := "off"
		if s.useCache && s.core.plans != nil {
			cache = fmt.Sprintf("on (cap %d, %d cached)", s.core.plans.Cap(), s.core.plans.Len())
		}
		strategy := s.strategy
		if strategy == "" {
			strategy = "dp"
		}
		return Response{OK: true, Output: fmt.Sprintf(
			"timeout: %s\nmemory_limit: %s\nspill: %s\nplan_cache: %s\nstrategy: %s\nbatch_size: %s",
			orOff(s.timeout.String(), s.timeout == 0),
			orOff(fmt.Sprintf("%d bytes", s.memLimit), s.memLimit == 0),
			orOff("on", !s.spill),
			cache, strategy, batchSizeString(s.batchSize))}
	}
	name, val, _ := strings.Cut(rest, " ")
	val = strings.TrimSpace(val)
	switch strings.ToLower(name) {
	case "timeout":
		if strings.EqualFold(val, "off") {
			s.timeout = 0
			return Response{OK: true, Output: "timeout off"}
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return errResp(CodeUsage, fmt.Errorf("usage: set timeout DUR|off (e.g. 500ms)"))
		}
		s.timeout = d
		return Response{OK: true, Output: "timeout " + d.String()}
	case "memory_limit":
		if strings.EqualFold(val, "off") {
			s.memLimit = 0
			return Response{OK: true, Output: "memory_limit off"}
		}
		n, err := parse.Bytes(val)
		if err != nil {
			return errResp(CodeUsage, err)
		}
		s.memLimit = n
		return Response{OK: true, Output: fmt.Sprintf("memory_limit %d bytes", n)}
	case "spill":
		switch {
		case strings.EqualFold(val, "on"):
			s.spill = true
			return Response{OK: true, Output: "spill on"}
		case strings.EqualFold(val, "off"):
			s.spill = false
			return Response{OK: true, Output: "spill off"}
		default:
			return errResp(CodeUsage, fmt.Errorf("usage: set spill on|off"))
		}
	case "plan_cache":
		switch {
		case strings.EqualFold(val, "on"):
			if s.core.plans == nil {
				return errResp(CodeUsage, fmt.Errorf("plan cache disabled server-wide"))
			}
			s.useCache = true
			return Response{OK: true, Output: "plan_cache on"}
		case strings.EqualFold(val, "off"):
			s.useCache = false
			return Response{OK: true, Output: "plan_cache off"}
		default:
			return errResp(CodeUsage, fmt.Errorf("usage: set plan_cache on|off"))
		}
	case "strategy":
		switch strings.ToLower(val) {
		case "dp":
			s.strategy = ""
			return Response{OK: true, Output: "strategy dp"}
		case "yannakakis", "auto":
			s.strategy = strings.ToLower(val)
			return Response{OK: true, Output: "strategy " + s.strategy}
		default:
			return errResp(CodeUsage, fmt.Errorf("usage: set strategy dp|yannakakis|auto"))
		}
	case "batch_size":
		switch {
		case strings.EqualFold(val, "off"):
			s.batchSize = optimizer.BatchOff
		case strings.EqualFold(val, "default") || strings.EqualFold(val, "on"):
			s.batchSize = 0
		default:
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return errResp(CodeUsage, fmt.Errorf("usage: set batch_size N|off|default"))
			}
			s.batchSize = n
		}
		return Response{OK: true, Output: "batch_size " + batchSizeString(s.batchSize)}
	default:
		return errResp(CodeUsage, fmt.Errorf("usage: set timeout|memory_limit|spill|plan_cache|strategy|batch_size VALUE|off"))
	}
}

func (s *Session) cmdStats() Response {
	st := s.core.adm.Stats()
	cfg := s.core.adm.Config()
	var b strings.Builder
	fmt.Fprintf(&b, "active: %d/%d\nqueued: %d/%d\npool: %d/%d bytes\nspill_pool: %d/%d bytes\ntables: %d\n",
		st.Active, cfg.MaxConcurrent, st.Queued, cfg.QueueDepth,
		st.UsedBytes, cfg.PoolBytes, st.UsedSpillBytes, cfg.SpillPoolBytes,
		len(s.core.cat.Tables()))
	if s.core.plans != nil {
		fmt.Fprintf(&b, "plan_cache: %d/%d", s.core.plans.Len(), s.core.plans.Cap())
	} else {
		fmt.Fprint(&b, "plan_cache: off")
	}
	return Response{OK: true, Output: b.String()}
}

func orOff(s string, off bool) string {
	if off {
		return "off"
	}
	return s
}

// newOptimizer builds an optimizer carrying the session's planner
// configuration over the shared catalog and plan cache.
func (s *Session) newOptimizer() *optimizer.Optimizer {
	o := optimizer.New(s.core.cat)
	if s.useCache {
		o.Cache = s.core.plans
	}
	o.Spill = s.spill
	o.Strategy = s.strategy
	o.BatchSize = s.batchSize
	return o
}

// batchSizeString renders the batch-size setting: "off" for the
// row-at-a-time mode, the default size when unset, or the explicit
// rows-per-batch count.
func batchSizeString(n int) string {
	switch {
	case n == optimizer.BatchOff:
		return "off"
	case n == 0:
		return fmt.Sprintf("%d (default)", exec.DefaultBatchSize)
	default:
		return strconv.Itoa(n)
	}
}

// runQuery is the query lifecycle: trace, admit (queueing under the
// session deadline), plan, execute under the granted governor, release.
// The returned relation backs in-process correctness checks; protocol
// clients read the rendered Output.
func (s *Session) runQuery(ctx context.Context, label string, q *expr.Node, withPlan bool) (resp Response, outRel *relation.Relation) {
	qt := s.core.tracer.Start(label)
	// Panic isolation, registered before the grant's deferred Release so
	// it runs last (LIFO): by the time the panic is converted to a typed
	// response, the admission grant is already back in the pools.
	defer func() {
		if p := recover(); p != nil {
			obs.ServerPanics.Inc()
			qt.FinishPanic(p, debug.Stack())
			resp, outRel = errResp(CodeInternal, fmt.Errorf("internal error: panic: %v", p)), nil
		}
	}()
	if s.core.Draining() {
		err := errors.New("server draining: not accepting new queries")
		qt.Reject(err)
		return errResp(CodeDraining, err), nil
	}
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}

	// Admission: the deadline covers the queue wait, so a saturated
	// server times a query out rather than holding its client forever.
	var spillNeed int64
	if s.spill {
		spillNeed = s.core.cfg.QuerySpillBytes
	}
	waitDone := qt.Span("admission")
	admitStart := time.Now()
	grant, err := s.core.adm.Acquire(ctx, s.memLimit, spillNeed)
	qt.SetAdmissionWait(time.Since(admitStart))
	waitDone()
	if err != nil {
		if IsAdmissionRejected(err) {
			qt.Reject(err)
			return rejectionResp(err), nil
		}
		qt.Finish(err)
		return errResp(CodeCancelled, err), nil
	}
	defer grant.Release()

	firePanicPoint("plan", label)
	o := s.newOptimizer()
	t0 := time.Now()
	p, tr, err := o.PlanQueryTrace(q)
	if err != nil {
		qt.Finish(err)
		return errResp(CodePlan, err), nil
	}
	qt.AddSpans(optimizer.PhaseSpans(tr, t0, time.Since(t0)))
	firePanicPoint("execute", label)

	var gov *exec.Governor
	if grant.Bytes() > 0 || grant.SpillBytes() > 0 {
		gov = exec.NewGovernor(0, grant.Bytes())
		if grant.SpillBytes() > 0 {
			gov.SetSpillLimit(grant.SpillBytes())
		}
	}
	ec := exec.NewExecContext(ctx, gov)
	if s.spill {
		ec.EnableSpill(exec.SpillConfig{Dir: s.core.cfg.SpillDir})
	}
	// Live progress and profile attribution: the caller-owned counters
	// stream rows/tuples-so-far to /debug/queries?live=1 while the query
	// runs, and the pprof goroutine labels (inherited by every goroutine
	// the execution spawns — ParallelHashJoin workers, spill writers) let
	// a CPU profile slice by query_id/fingerprint/strategy.
	var c exec.Counters
	qt.SetLabels(tr.Strategy, tr.Fingerprint)
	qt.AttachProgress(c.RowsProduced, c.TuplesRetrieved, gov)
	execDone := qt.Span("execute")
	var out *relation.Relation
	obs.WithQueryLabels(ctx, qt.Rec.ID, tr.Fingerprint, tr.Strategy, func(context.Context) {
		out, err = o.ExecuteCtxCounted(ec, p, &c)
	})
	execDone()
	qt.Rec.Strategy = tr.Strategy
	qt.Rec.FallbackReason = tr.FallbackReason
	qt.Rec.PlanTree = p.Tree()
	qt.Rec.Rows = c.RowsProduced()
	qt.Rec.Tuples = c.TuplesRetrieved()
	qt.Finish(err)
	if err != nil {
		return errResp(classifyExecErr(err), err), nil
	}
	resp = Response{OK: true, Output: out.String(), Rows: int64(out.Len()),
		Tuples: c.TuplesRetrieved(), Cache: tr.CacheOutcome}
	if withPlan {
		resp.Plan = p.Tree()
	}
	return resp, out
}

// rejectionResp maps an admission rejection onto the wire: load sheds
// are typed retry_after with the hint in retry_after_ms (the one code a
// well-behaved client backs off and retries on); queue-full and
// oversized stay admission_rejected, with the hint attached when the
// server has one.
func rejectionResp(err error) Response {
	resp := errResp(CodeAdmissionRejected, err)
	var ar *AdmissionRejectedError
	if errors.As(err, &ar) {
		if ar.Reason == RejectOverload {
			resp.Code = CodeRetryAfter
		}
		if ar.RetryAfter > 0 {
			resp.RetryAfterMS = max(1, ar.RetryAfter.Milliseconds())
		}
	}
	return resp
}

// classifyExecErr maps an execution error to a protocol error code.
func classifyExecErr(err error) string {
	var re *exec.ResourceError
	if errors.As(err, &re) {
		switch re.Kind {
		case exec.Cancelled, exec.DeadlineExceeded:
			return CodeCancelled
		default:
			return CodeResource
		}
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return CodeCancelled
	}
	return CodeExec
}
