package server

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"freejoin/internal/obs"
)

// A line over the configured maximum draws a typed protocol_error and
// the connection closes — the regression for the unbounded read-buffer
// hole (a client could previously stream an arbitrarily long line into
// server memory).
func TestServerMaxLineProtocolError(t *testing.T) {
	srv := startTestServer(t, Config{MaxLineBytes: 256})
	c := dialServer(t, srv.Addr())
	before := obs.ServerProtocolErrors.Value()

	if _, err := c.conn.Write([]byte("query " + strings.Repeat("x", 4096) + "\n")); err != nil {
		t.Fatal(err)
	}
	r := c.recv()
	if r.OK || r.Code != CodeProtocol {
		t.Fatalf("oversized line = %+v, want code %s", r, CodeProtocol)
	}
	if got := obs.ServerProtocolErrors.Value(); got != before+1 {
		t.Fatalf("oj_server_protocol_errors_total = %d, want %d", got, before+1)
	}
	// The connection is closed after the typed response.
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var junk Response
	if err := c.dec.Decode(&junk); err == nil {
		t.Fatalf("connection still serving after protocol error: %+v", junk)
	}
	// The server itself keeps serving.
	c2 := dialServer(t, srv.Addr())
	c2.mustOK("ping")
}

// An idle session is disconnected with a typed idle_timeout response
// after the configured quiet period.
func TestServerIdleTimeout(t *testing.T) {
	srv := startTestServer(t, Config{IdleTimeout: 80 * time.Millisecond})
	c := dialServer(t, srv.Addr())
	c.mustOK("ping")

	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var r Response
	if err := c.dec.Decode(&r); err != nil {
		t.Fatalf("expected an idle_timeout response, read error: %v", err)
	}
	if r.OK || r.Code != CodeIdleTimeout {
		t.Fatalf("idle disconnect = %+v, want code %s", r, CodeIdleTimeout)
	}
	if err := c.dec.Decode(&r); err == nil {
		t.Fatalf("connection still serving after idle timeout: %+v", r)
	}
}

// A session that is quiet only because its command is still executing
// is busy, not idle: the read deadline must re-arm instead of killing
// the connection out from under a long query.
func TestServerBusyQueryOutlivesIdleTimeout(t *testing.T) {
	srv := startTestServer(t, Config{
		IdleTimeout:   60 * time.Millisecond,
		MaxConcurrent: 1,
		QueueDepth:    4,
	})
	c := dialServer(t, srv.Addr())
	c.mustOK("table R(a) = (1)")
	c.mustOK("table S(a) = (1)")

	// Pin the only slot so the query waits in admission for several idle
	// windows before executing.
	g, err := srv.Core().Admission().Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(250 * time.Millisecond)
		g.Release()
	}()
	r := c.send("query R -[R.a = S.a] S")
	if !r.OK || r.Rows != 1 {
		t.Fatalf("long-running query under idle timeout = %+v", r)
	}
}

// A client vanishing mid-execute must cancel its query and drain its
// admission grant: the kill-conn regression. The query here is pinned
// in the admission queue (indistinguishable from a slow execute for
// cleanup purposes — the grant and queue slot are the held resources),
// the connection is severed, and every pool must drain to zero while
// the rest of the server keeps answering.
func TestServerKillConnMidExecuteReleasesResources(t *testing.T) {
	spillDir := t.TempDir()
	srv := startTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    4,
		PoolBytes:     1 << 20,
		QueryMemBytes: 1 << 10,
		SpillDir:      spillDir,
	})
	core := srv.Core()
	baseline := runtime.NumGoroutine()

	c := dialServer(t, srv.Addr())
	c.mustOK("table R(a) = (1)")
	c.mustOK("table S(a) = (1)")

	g, err := core.Admission().Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	failed0 := obs.QueriesFailed.Value()

	// Fire the query and sever the connection while it waits.
	if _, err := fmt.Fprintln(c.conn, "query R -[R.a = S.a] S"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "query queued", func() bool { return core.Admission().Stats().Queued == 1 })
	c.conn.Close()

	// The reader goroutine observes the dead client and cancels the
	// in-flight query: the queue drains without the slot ever freeing.
	waitFor(t, "queue drained after kill", func() bool { return core.Admission().Stats().Queued == 0 })
	waitFor(t, "query counted failed", func() bool { return obs.QueriesFailed.Value() > failed0 })

	g.Release()
	waitFor(t, "pools drained", func() bool {
		st := core.Admission().Stats()
		return st.Active == 0 && st.UsedBytes == 0 && st.UsedSpillBytes == 0
	})

	// The rest of the server is unharmed.
	c2 := dialServer(t, srv.Addr())
	if r := c2.mustOK("query R -[R.a = S.a] S"); r.Rows != 1 {
		t.Fatalf("post-kill query = %+v", r)
	}
	c2.send("quit")

	if runs, _ := filepath.Glob(filepath.Join(spillDir, "ojspill-*")); len(runs) != 0 {
		t.Fatalf("%d spill run files leaked: %v", len(runs), runs)
	}
	waitForGoroutines(t, baseline)
}

// Load shedding: once the smoothed queue wait is over the threshold,
// new queries are turned away with the typed retry_after code and a
// positive retry hint, /healthz degrades, and the shedder recovers by
// decay once the pressure is gone.
func TestServerLoadSheddingRetryAfter(t *testing.T) {
	srv := startTestServer(t, Config{
		MaxConcurrent: 1,
		QueueDepth:    8,
		ShedWait:      5 * time.Millisecond,
	})
	core := srv.Core()
	c := dialServer(t, srv.Addr())
	c.mustOK("table R(a) = (1)")
	c.mustOK("table S(a) = (1)")

	g, err := core.Admission().Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Teach the EWMA a painful queue wait (the seam the shedder smooths).
	for i := 0; i < 4; i++ {
		core.Admission().noteWait(80 * time.Millisecond)
	}
	if !core.Admission().Shedding() {
		t.Fatal("shedder not active after repeated long waits")
	}
	if h := core.Health(); h != "degraded" {
		t.Fatalf("health while shedding = %q, want degraded", h)
	}
	sheds0 := obs.ServerSheds.Value()
	r := c.send("query R -[R.a = S.a] S")
	if r.OK || r.Code != CodeRetryAfter {
		t.Fatalf("shed response = %+v, want code %s", r, CodeRetryAfter)
	}
	if r.RetryAfterMS < 1 {
		t.Fatalf("shed response carries no retry hint: %+v", r)
	}
	if got := obs.ServerSheds.Value(); got != sheds0+1 {
		t.Fatalf("oj_server_sheds_total = %d, want %d", got, sheds0+1)
	}

	// Decay: with the queue quiet the EWMA halves away and service
	// resumes.
	g.Release()
	waitFor(t, "shedder recovered by decay", func() bool { return !core.Admission().Shedding() })
	if h := core.Health(); h != "ok" {
		t.Fatalf("health after recovery = %q, want ok", h)
	}
	if r := c.mustOK("query R -[R.a = S.a] S"); r.Rows != 1 {
		t.Fatalf("post-recovery query = %+v", r)
	}
}

// Graceful drain: queries in flight at drain time run to completion,
// new queries get the typed draining code, new connections are refused,
// and Drain returns with everything released.
func TestServerGracefulDrain(t *testing.T) {
	srv := startTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 4})
	core := srv.Core()
	c1 := dialServer(t, srv.Addr())
	c1.mustOK("table R(a) = (1)")
	c1.mustOK("table S(a) = (1)")
	c2 := dialServer(t, srv.Addr())

	// An in-flight query: pinned in the admission queue when the drain
	// begins, it must still complete successfully.
	g, err := core.Admission().Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	inflight := make(chan Response, 1)
	go func() { inflight <- c1.send("query R -[R.a = S.a] S") }()
	waitFor(t, "query queued", func() bool { return core.Admission().Stats().Queued == 1 })

	drainErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { drainErr <- srv.Drain(ctx) }()
	waitFor(t, "core draining", func() bool { return core.Draining() })
	if h := srv.Health(); h != "draining" {
		t.Fatalf("health during drain = %q, want draining", h)
	}

	// New queries on existing connections get the typed code and count
	// as rejections, not failures.
	rejected0 := obs.QueriesRejected.Value()
	if r := c2.send("query R -[R.a = S.a] S"); r.OK || r.Code != CodeDraining {
		t.Fatalf("query during drain = %+v, want code %s", r, CodeDraining)
	}
	if got := obs.QueriesRejected.Value(); got != rejected0+1 {
		t.Fatalf("draining rejection not counted: %d, want %d", got, rejected0+1)
	}
	// New connections are refused (listener closed).
	if conn, err := net.DialTimeout("tcp", srv.Addr(), 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("listener still accepting during drain")
	}

	// Release the slot: the in-flight query completes OK and the drain
	// finishes cleanly.
	g.Release()
	if r := <-inflight; !r.OK || r.Rows != 1 {
		t.Fatalf("in-flight query during drain = %+v, want success", r)
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := core.Admission().Stats(); st.Active != 0 || st.Queued != 0 || st.UsedBytes != 0 {
		t.Fatalf("admission not drained: %+v", st)
	}
}

// waitFor polls cond until it holds, failing after 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
