package server

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"freejoin/internal/obs"
	"freejoin/internal/parse"
	"freejoin/internal/relation"
	"freejoin/internal/workload"
)

// TestServerConcurrentSoak is the mixed-traffic soak: 16 clients (half
// over TCP, half in-process sessions) hammer one shared core with five
// traffic classes at once — prepared plan-cache hits, cold misses,
// governor-tripping queries, spilling queries and immediately-cancelled
// queries — under a deliberately small admission configuration so
// queueing, shedding and backpressure all happen concurrently.
//
// Invariants checked:
//   - every OK result is bag-correct against a single-threaded reference
//     (in-process clients compare full relations, TCP clients row counts)
//   - the tracer reconciles: started = completed + failed + rejected,
//     and no query is left active
//   - admission never overcommits and ends fully drained
//   - no spill run file and no goroutine outlives the server
func TestServerConcurrentSoak(t *testing.T) {
	const (
		clients   = 16
		perClient = 15
		slots     = 4
		queue     = 4
	)
	spillDir := t.TempDir()
	srv := startTestServer(t, Config{
		MaxConcurrent: slots,
		QueueDepth:    queue,
		PoolBytes:     1 << 20,
		SpillDir:      spillDir,
	})
	core := srv.Core()

	// Shared database and query mix from the metamorphic generator.
	rnd := rand.New(rand.NewSource(42))
	queries, names := workload.QueryMix(rnd, 12)
	for _, name := range names {
		core.Catalog().AddRelation(name, workload.RandomRelation(rnd, name, 60))
	}

	// Single-threaded reference results (also warms the plan cache).
	refSess := NewSession(core)
	refs := make([]*relation.Relation, len(queries))
	for i, q := range queries {
		node, err := parse.Expr(q)
		if err != nil {
			t.Fatalf("mix query %q: %v", q, err)
		}
		resp, rel := refSess.runQuery(context.Background(), "ref", node, false)
		if !resp.OK {
			t.Fatalf("reference run of %q failed: %s", q, resp.Error)
		}
		refs[i] = rel
	}

	started0 := obs.QueriesStarted.Value()
	completed0 := obs.QueriesCompleted.Value()
	failed0 := obs.QueriesFailed.Value()
	rejected0 := obs.QueriesRejected.Value()
	active0 := obs.QueriesActive.Value()
	conns0 := obs.ServerConnectionsActive.Value()
	qdepth0 := obs.AdmissionQueueDepth.Value()
	goroutines0 := runtime.NumGoroutine()

	// TCP clients: one connection each, configured for their class.
	tcp := make([]*testClient, clients/2)
	for i := range tcp {
		tcp[i] = dialServer(t, srv.Addr())
		configureTCPClient(t, tcp[i], workload.KindFor(nil, i), queries)
	}
	// Every dialed connection is on the books (the hello implies the
	// server registered it before serving).
	if d := obs.ServerConnectionsActive.Value() - conns0; d != int64(len(tcp)) {
		t.Errorf("oj_server_connections_active delta = %d after dialing, want %d", d, len(tcp))
	}
	// In-process clients: one session each over the same core.
	sessions := make([]*Session, clients/2)
	for i := range sessions {
		sessions[i] = NewSession(core)
		configureSession(sessions[i], workload.KindFor(nil, i))
	}

	var mu sync.Mutex // guards bag-equality failures collected from goroutines
	var bagErrs []string
	d := &workload.Driver{
		Clients:   clients,
		PerClient: perClient,
		Exec: func(client, iter int) workload.Outcome {
			qi := (client*perClient + iter) % len(queries)
			if client < clients/2 {
				return tcpRequest(tcp[client], workload.KindFor(nil, client), qi, queries[qi], refs[qi], &mu, &bagErrs)
			}
			sess := sessions[client-clients/2]
			kind := workload.KindFor(nil, client-clients/2)
			return sessionRequest(sess, kind, queries[qi], refs[qi], &mu, &bagErrs)
		},
	}
	rep := d.Run()
	for _, e := range bagErrs {
		t.Error(e)
	}
	t.Logf("soak: %s", rep)

	if rep.Total != clients*perClient {
		t.Fatalf("drove %d requests, want %d", rep.Total, clients*perClient)
	}
	if rep.OK() == 0 {
		t.Fatal("soak produced no successful queries")
	}
	if rep.Failed() == 0 {
		t.Fatal("cancelled class produced no failures — the mix is not mixed")
	}

	// Tracer reconciliation over exactly the driver's queries.
	started := obs.QueriesStarted.Value() - started0
	completed := obs.QueriesCompleted.Value() - completed0
	failed := obs.QueriesFailed.Value() - failed0
	rejected := obs.QueriesRejected.Value() - rejected0
	if started != int64(rep.Total) {
		t.Errorf("tracer started %d queries, driver sent %d", started, rep.Total)
	}
	if started != completed+failed+rejected {
		t.Errorf("tracer does not reconcile: started %d != completed %d + failed %d + rejected %d",
			started, completed, failed, rejected)
	}
	if int64(rep.OK()) != completed || int64(rep.Rejected()) != rejected {
		t.Errorf("driver/tracer disagree: ok %d vs completed %d, rejected %d vs %d",
			rep.OK(), completed, rep.Rejected(), rejected)
	}
	if act := obs.QueriesActive.Value() - active0; act != 0 {
		t.Errorf("%d queries still active after the soak", act)
	}

	// Admission fully drained, and the queue-depth gauge agrees.
	if st := core.Admission().Stats(); st.Active != 0 || st.Queued != 0 || st.UsedBytes != 0 || st.UsedSpillBytes != 0 {
		t.Errorf("admission not drained: %+v", st)
	}
	if d := obs.AdmissionQueueDepth.Value() - qdepth0; d != 0 {
		t.Errorf("oj_admission_queue_depth did not drain: delta %d", d)
	}

	// Shut everything down; nothing may leak.
	for _, c := range tcp {
		c.send("quit")
		c.conn.Close()
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Connection teardown is asynchronous (each serveConn decrements on
	// its way out), so the gauge drains shortly after Close.
	waitFor(t, "oj_server_connections_active drained", func() bool {
		return obs.ServerConnectionsActive.Value() == conns0
	})
	if runs, _ := filepath.Glob(filepath.Join(spillDir, "ojspill-*")); len(runs) != 0 {
		t.Errorf("%d spill run files leaked: %v", len(runs), runs)
	}
	waitForGoroutines(t, goroutines0)
}

// configureTCPClient applies a traffic class to a protocol session.
func configureTCPClient(t *testing.T, c *testClient, kind workload.MixKind, queries []string) {
	t.Helper()
	switch kind {
	case workload.KindPreparedHit:
		for i, q := range queries {
			c.mustOK(fmt.Sprintf("prepare q%d %s", i, q))
		}
	case workload.KindColdMiss:
		c.mustOK("set plan_cache off")
	case workload.KindGovernorTrip:
		c.mustOK("set memory_limit 64B")
	case workload.KindSpilling:
		c.mustOK("set memory_limit 512B")
		c.mustOK("set spill on")
	case workload.KindCancelled:
		c.mustOK("set timeout 1ns")
	}
}

// configureSession applies a traffic class to an in-process session.
func configureSession(s *Session, kind workload.MixKind) {
	switch kind {
	case workload.KindColdMiss:
		s.useCache = false
	case workload.KindGovernorTrip:
		s.memLimit = 64
	case workload.KindSpilling:
		s.memLimit = 512
		s.spill = true
	case workload.KindCancelled:
		s.timeout = time.Nanosecond
	}
}

// tcpRequest issues one protocol query and classifies the outcome,
// checking row counts for successes.
func tcpRequest(c *testClient, kind workload.MixKind, qi int, query string, ref *relation.Relation, mu *sync.Mutex, bagErrs *[]string) workload.Outcome {
	var r Response
	if kind == workload.KindPreparedHit {
		r = c.send(fmt.Sprintf("execute q%d", qi))
	} else {
		r = c.send("query " + query)
	}
	switch {
	case r.OK:
		if int(r.Rows) != ref.Len() {
			mu.Lock()
			*bagErrs = append(*bagErrs, fmt.Sprintf("%s(%s): got %d rows, reference %d", kind, query, r.Rows, ref.Len()))
			mu.Unlock()
		}
		return workload.OutcomeOK
	case r.Code == CodeAdmissionRejected:
		return workload.OutcomeRejected
	default:
		return workload.OutcomeFailed
	}
}

// sessionRequest issues one in-process query and compares full bags on
// success.
func sessionRequest(s *Session, kind workload.MixKind, query string, ref *relation.Relation, mu *sync.Mutex, bagErrs *[]string) workload.Outcome {
	node, err := parse.Expr(query)
	if err != nil {
		mu.Lock()
		*bagErrs = append(*bagErrs, fmt.Sprintf("parse %q: %v", query, err))
		mu.Unlock()
		return workload.OutcomeFailed
	}
	resp, rel := s.runQuery(context.Background(), string(kind)+" "+query, node, false)
	switch {
	case resp.OK:
		if !rel.EqualBag(ref) {
			mu.Lock()
			*bagErrs = append(*bagErrs, fmt.Sprintf("%s(%s): result diverges from reference bag", kind, query))
			mu.Unlock()
		}
		return workload.OutcomeOK
	case resp.Code == CodeAdmissionRejected:
		return workload.OutcomeRejected
	default:
		return workload.OutcomeFailed
	}
}

// waitForGoroutines polls until the goroutine count settles back to the
// baseline (small slack for runtime helpers), failing after 5s.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			stacks := string(buf[:runtime.Stack(buf, true)])
			t.Fatalf("goroutines leaked: %d before, %d after\n%s", baseline, n,
				clipStacks(stacks))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func clipStacks(s string) string {
	if len(s) > 4000 {
		return s[:4000] + "\n...(clipped)"
	}
	return s
}
