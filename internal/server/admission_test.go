package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionImmediate(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2, PoolBytes: 100})
	g1, err := a.Acquire(context.Background(), 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := a.Acquire(context.Background(), 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Active != 2 || st.UsedBytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
	g1.Release()
	g2.Release()
	st = a.Stats()
	if st.Active != 0 || st.UsedBytes != 0 {
		t.Fatalf("stats after release = %+v", st)
	}
}

func TestAdmissionOversizedRejected(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 2, PoolBytes: 100})
	_, err := a.Acquire(context.Background(), 101, 0)
	var rej *AdmissionRejectedError
	if !errors.As(err, &rej) || rej.Reason != RejectOversized {
		t.Fatalf("want oversized rejection, got %v", err)
	}
	if !IsAdmissionRejected(err) {
		t.Fatal("IsAdmissionRejected(oversized) = false")
	}
	// Spill pool checked independently.
	a = NewAdmission(AdmissionConfig{SpillPoolBytes: 50})
	_, err = a.Acquire(context.Background(), 0, 51)
	if !errors.As(err, &rej) || rej.Reason != RejectOversized {
		t.Fatalf("want spill-oversized rejection, got %v", err)
	}
}

func TestAdmissionQueueFullRejected(t *testing.T) {
	// One slot, no queue: the second concurrent query is shed, not queued.
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, QueueDepth: -1})
	g, err := a.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Acquire(context.Background(), 0, 0)
	var rej *AdmissionRejectedError
	if !errors.As(err, &rej) || rej.Reason != RejectQueueFull {
		t.Fatalf("want queue-full rejection, got %v", err)
	}
	if rej.Active != 1 {
		t.Fatalf("rejection snapshot = %+v", rej)
	}
	g.Release()
	// The slot is free again.
	g2, err := a.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2.Release()
}

func TestAdmissionQueueFIFO(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 8})
	g, err := a.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Enqueue three waiters; record the order they are admitted in.
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	ready := make(chan struct{}, 3)
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Serialize enqueue order: waiter i enqueues only after
			// waiter i-1 is in the queue.
			for a.Stats().Queued < i-1 {
				time.Sleep(time.Millisecond)
			}
			ready <- struct{}{}
			gi, err := a.Acquire(context.Background(), 0, 0)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			gi.Release()
		}(i)
	}
	// Wait until all three are queued, then release the slot.
	for i := 0; i < 3; i++ {
		<-ready
	}
	for a.Stats().Queued < 3 {
		time.Sleep(time.Millisecond)
	}
	g.Release()
	wg.Wait()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("admission order = %v, want FIFO [1 2 3]", order)
	}
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxConcurrent: 1, QueueDepth: 8})
	g, err := a.Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 0, 0)
		errc <- err
	}()
	for a.Stats().Queued < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v", err)
	}
	if q := a.Stats().Queued; q != 0 {
		t.Fatalf("cancelled waiter still queued: %d", q)
	}
	g.Release()
	// The pool must be fully recovered even if the release raced the
	// cancellation (the handed-back grant path).
	st := a.Stats()
	if st.Active != 0 || st.UsedBytes != 0 {
		t.Fatalf("stats after cancel+release = %+v", st)
	}
}

// Admission must never overcommit: under a storm of concurrent
// acquire/release cycles the granted bytes stay within the pool and the
// active count within the slots.
func TestAdmissionNeverOvercommits(t *testing.T) {
	const (
		slots = 4
		pool  = 1000
		per   = 300 // 3 fit, 4th must wait
	)
	a := NewAdmission(AdmissionConfig{MaxConcurrent: slots, QueueDepth: 64, PoolBytes: pool})
	var peakViolations atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				g, err := a.Acquire(context.Background(), per, 0)
				if err != nil {
					continue // queue-full shed is fine; overcommit is not
				}
				st := a.Stats()
				if st.Active > slots || st.UsedBytes > pool {
					peakViolations.Add(1)
				}
				g.Release()
				g.Release() // double release must be harmless
			}
		}()
	}
	wg.Wait()
	if n := peakViolations.Load(); n > 0 {
		t.Fatalf("admission overcommitted %d times", n)
	}
	st := a.Stats()
	if st.Active != 0 || st.UsedBytes != 0 || st.Queued != 0 {
		t.Fatalf("pool not fully recovered: %+v", st)
	}
}
