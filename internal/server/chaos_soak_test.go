package server

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"freejoin/internal/chaos"
	"freejoin/internal/obs"
	"freejoin/internal/parse"
	"freejoin/internal/workload"
)

// chaosSoakSeed fixes the fault schedule; `make chaos` replays it.
const chaosSoakSeed = 20260808

// TestChaosSoak is the end-to-end goodput contract under injected
// faults: 16 retrying clients of mixed shapes (cache hits, governor
// trips, spilling queries, panic bait) drive one server whose listener
// injects a 10% per-I/O fault mix — connection drops at arbitrary byte
// offsets, partial writes, stalls, corrupted command bytes, garbage
// injection — while a panic hook fires inside query execution. The
// server must degrade only in typed, accounted ways:
//
//   - every response that arrives intact and OK is bag-correct against
//     a single-threaded reference (sorted rendered lines)
//   - every panic surfaces as internal_error on the bait queries only
//   - the tracer reconciles: started = completed + failed + rejected,
//     nothing left active
//   - admission pools, spill files and goroutines all drain to zero
//   - goodput stays real: at least half the requests succeed through
//     the faults, and zero would mean the chaos config ate everything
func TestChaosSoak(t *testing.T) {
	const (
		clients   = 16
		perClient = 12
	)
	spillDir := t.TempDir()
	srv := startTestServer(t, Config{
		MaxConcurrent:   4,
		QueueDepth:      8,
		PoolBytes:       1 << 20,
		SpillPoolBytes:  1 << 20,
		QueryMemBytes:   1 << 16,
		QuerySpillBytes: 1 << 18,
		SpillDir:        spillDir,
		IdleTimeout:     2 * time.Second,
		WriteTimeout:    2 * time.Second,
		ShedWait:        50 * time.Millisecond,
		Chaos:           &chaos.Config{Seed: chaosSoakSeed, Rate: 0.10, MaxStall: 2 * time.Millisecond},
		MetricsAddr:     "127.0.0.1:0",
		Pprof:           true,
		RuntimeSample:   20 * time.Millisecond,
	})
	core := srv.Core()

	rnd := rand.New(rand.NewSource(chaosSoakSeed))
	queries, names := workload.QueryMix(rnd, 10)
	for _, name := range names {
		core.Catalog().AddRelation(name, workload.RandomRelation(rnd, name, 50))
	}
	core.Catalog().AddRelation("PANICBAIT", workload.RandomRelation(rnd, "PANICBAIT", 10))

	// Single-threaded reference bags, as sorted rendered lines — the
	// comparison TCP clients can make, robust to row order across plans.
	refSess := NewSession(core)
	refs := make([]string, len(queries))
	for i, q := range queries {
		node, err := parse.Expr(q)
		if err != nil {
			t.Fatalf("mix query %q: %v", q, err)
		}
		resp, _ := refSess.runQuery(context.Background(), "ref", node, false)
		if !resp.OK {
			t.Fatalf("reference run of %q failed: %s", q, resp.Error)
		}
		refs[i] = sortedLines(resp.Output)
	}

	// Injected panics ride along: every bait query panics mid-execute,
	// with the admission grant held.
	SetPanicHook(func(p, label string) {
		if p == "execute" && strings.Contains(label, "PANICBAIT") {
			panic("chaos soak injected panic")
		}
	})
	defer SetPanicHook(nil)

	started0 := obs.QueriesStarted.Value()
	completed0 := obs.QueriesCompleted.Value()
	failed0 := obs.QueriesFailed.Value()
	rejected0 := obs.QueriesRejected.Value()
	active0 := obs.QueriesActive.Value()
	panics0 := obs.ServerPanics.Value()
	injected0 := chaosInjections()
	goroutines0 := runtime.NumGoroutine()

	cls := make([]*workload.Client, clients)
	for i := range cls {
		cls[i] = &workload.Client{
			Addr:        srv.Addr(),
			Rand:        rand.New(rand.NewSource(chaosSoakSeed + int64(i))),
			MaxAttempts: 4,
			RetryBudget: 2 * time.Second,
			BaseBackoff: time.Millisecond,
			MaxBackoff:  50 * time.Millisecond,
		}
		// Two stressed traffic classes: tiny governed grants (typed
		// resource trips) and spilling execution (run files under chaos).
		// Config commands ride the same faulty wire; a lost set only
		// shifts that client's class, never correctness.
		switch i % 5 {
		case 3:
			cls[i].Do("set memory_limit 64B", true)
		case 4:
			cls[i].Do("set memory_limit 2KB", true)
			cls[i].Do("set spill on", true)
		}
	}

	var mu sync.Mutex
	var soakErrs []string
	note := func(format string, args ...any) {
		mu.Lock()
		soakErrs = append(soakErrs, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	d := &workload.Driver{
		Clients:   clients,
		PerClient: perClient,
		Exec: func(client, iter int) workload.Outcome {
			cl := cls[client]
			if iter%6 == 5 { // panic bait
				// The hook panics on every executed bait query, so OK can
				// never come back. A chaos fault can eat the command's
				// bytes first (idle_timeout, dropped conn) — those are
				// fine; the panics>0 assertion below proves the isolation
				// path itself was exercised.
				resp, err := cl.Do("query PANICBAIT", true)
				if err == nil && resp.OK {
					note("bait query succeeded: %+v", resp)
				}
				return workload.OutcomeFailed
			}
			qi := (client*perClient + iter) % len(queries)
			resp, err := cl.Query(queries[qi])
			switch {
			case err != nil:
				// Connection killed by an injected fault with the outcome
				// unknown, or retries exhausted: a failure, but when a typed
				// rejection was the last word it stays a rejection.
				if resp.Code == CodeAdmissionRejected || resp.Code == CodeRetryAfter {
					return workload.OutcomeRejected
				}
				return workload.OutcomeFailed
			case resp.OK:
				// A completed query is bag-correct or it is a bug — no
				// chaos fault, governor class or retry path excuses a
				// wrong answer that claims OK.
				if got := sortedLines(resp.Output); got != refs[qi] {
					note("client %d query %d diverges from reference bag", client, qi)
				}
				return workload.OutcomeOK
			case resp.Code == CodeInternal:
				note("non-bait query drew internal_error: %s", resp.Error)
				return workload.OutcomeFailed
			default:
				// Typed errors under chaos: parse/unknown_command from
				// corrupted or garbage-glued lines, resource trips from the
				// governed class, protocol/idle hygiene codes, cancelled
				// from dropped peers. All clean failures.
				return workload.OutcomeFailed
			}
		},
	}
	// The monitoring surface is scraped throughout the chaos run: the
	// metrics listener is not behind the fault injector, so /metrics,
	// the live-query view and the pprof index must answer cleanly while
	// the query side drops, stalls and panics. Runs under -race, so any
	// scrape-vs-execution race is a failure, not a flake.
	scrapeStop := make(chan struct{})
	scrapeDone := make(chan struct{})
	mon := "http://" + srv.MetricsAddr()
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-scrapeStop:
				return
			default:
			}
			for _, path := range []string{
				"/metrics", "/metrics?exemplars=1",
				"/debug/queries", "/debug/queries?live=1",
				"/healthz", "/debug/pprof/cmdline",
			} {
				if _, err := getBody(mon + path); err != nil {
					note("monitoring scrape %s: %v", path, err)
					return
				}
			}
			var live []obs.LiveQuery
			if err := getJSON(mon+"/debug/queries?live=1", &live); err != nil {
				note("live view not decodable mid-chaos: %v", err)
				return
			}
		}
	}()

	rep := d.Run()
	close(scrapeStop)
	<-scrapeDone
	for _, cl := range cls {
		cl.Close()
	}
	for _, e := range soakErrs {
		t.Error(e)
	}
	t.Logf("chaos soak: %s (panics=%d injections=%d)", rep,
		obs.ServerPanics.Value()-panics0, chaosInjections()-injected0)

	// Goodput through the faults.
	if rep.Total != clients*perClient {
		t.Fatalf("drove %d requests, want %d", rep.Total, clients*perClient)
	}
	if rep.OK() < rep.Total/2 {
		t.Errorf("goodput collapsed: %d/%d requests succeeded", rep.OK(), rep.Total)
	}
	// The chaos layer actually fired, and so did the panics.
	if chaosInjections() == injected0 {
		t.Error("no faults were injected — the soak tested nothing")
	}
	if obs.ServerPanics.Value() == panics0 {
		t.Error("no panics fired — the bait class tested nothing")
	}

	// Tracer reconciliation: retries re-execute queries, so the driver
	// total is a floor, and the identity must hold exactly.
	started := obs.QueriesStarted.Value() - started0
	completed := obs.QueriesCompleted.Value() - completed0
	failed := obs.QueriesFailed.Value() - failed0
	rejected := obs.QueriesRejected.Value() - rejected0
	if started != completed+failed+rejected {
		t.Errorf("tracer does not reconcile: started %d != completed %d + failed %d + rejected %d",
			started, completed, failed, rejected)
	}
	if act := obs.QueriesActive.Value() - active0; act != 0 {
		t.Errorf("%d queries still active after the soak", act)
	}

	// Everything drains: admission, spill files, goroutines.
	waitFor(t, "admission drained", func() bool {
		st := core.Admission().Stats()
		return st.Active == 0 && st.Queued == 0 && st.UsedBytes == 0 && st.UsedSpillBytes == 0
	})
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if runs, _ := filepath.Glob(filepath.Join(spillDir, "ojspill-*")); len(runs) != 0 {
		t.Errorf("%d spill run files leaked: %v", len(runs), runs)
	}
	waitForGoroutines(t, goroutines0)
}

// sortedLines canonicalizes a rendered relation for bag comparison:
// identical bags render the same multiset of lines in some order.
func sortedLines(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// chaosInjections sums the oj_chaos_injections_total series.
func chaosInjections() int64 {
	return obs.ChaosDrops.Value() + obs.ChaosPartialWrites.Value() +
		obs.ChaosStalls.Value() + obs.ChaosCorruptions.Value() + obs.ChaosInjected.Value()
}
