// Package server is the long-running concurrent query server: many TCP
// sessions speaking a line/JSON protocol over one shared-everything core
// (one catalog, one plan cache, one tracer), with admission control
// drawing per-query governor budgets from process-wide memory and spill
// pools.
package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"freejoin/internal/obs"
)

// Admission defaults; AdmissionConfig zero values resolve to these.
const (
	DefaultMaxConcurrent = 8
	DefaultQueueDepth    = 32
)

// RejectReason classifies why admission turned a query away.
type RejectReason uint8

const (
	// RejectQueueFull: the concurrency slots and the wait queue are both
	// full — the server is saturated and sheds load instead of queueing
	// without bound.
	RejectQueueFull RejectReason = iota + 1
	// RejectOversized: the query's budget request exceeds the whole
	// pool, so it could never be admitted; waiting would deadlock it at
	// the queue head.
	RejectOversized
	// RejectOverload: the load shedder turned the query away early
	// because the smoothed admission queue-wait latency is over the
	// configured threshold — queueing would only add latency to a
	// saturated server. Carries a retry_after hint.
	RejectOverload
)

func (r RejectReason) String() string {
	switch r {
	case RejectQueueFull:
		return "queue_full"
	case RejectOversized:
		return "oversized"
	case RejectOverload:
		return "overload"
	default:
		return "unknown"
	}
}

// AdmissionRejectedError is the typed error for a query the server
// refused to run. It is a rejection (shed load), not a failure: the
// tracer counts it under oj_queries_rejected_total, preserving
// started = completed + failed + rejected.
type AdmissionRejectedError struct {
	Reason RejectReason
	Active int   // queries holding a slot at decision time
	Queued int   // queries waiting at decision time
	Need   int64 // bytes requested (oversized only)
	Pool   int64 // capacity of the pool the request exceeded (oversized only)
	// RetryAfter hints when the client should try again (load shedding
	// and queue-full rejections; zero when the server has no estimate).
	RetryAfter time.Duration
}

func (e *AdmissionRejectedError) Error() string {
	switch e.Reason {
	case RejectOversized:
		return fmt.Sprintf("admission rejected (oversized): request of %d bytes exceeds the whole pool of %d bytes", e.Need, e.Pool)
	case RejectOverload:
		return fmt.Sprintf("admission rejected (overload): queue wait over threshold, retry after %s", e.RetryAfter)
	default:
		return fmt.Sprintf("admission rejected (queue full): %d active, %d queued", e.Active, e.Queued)
	}
}

// IsAdmissionRejected reports whether err is an admission rejection.
func IsAdmissionRejected(err error) bool {
	var r *AdmissionRejectedError
	return errors.As(err, &r)
}

// AdmissionConfig sizes the admission controller. Zero values mean the
// defaults for the counts and "unlimited" for the byte pools; a
// negative QueueDepth disables waiting entirely (admit or reject).
type AdmissionConfig struct {
	MaxConcurrent  int   // concurrency slots (0 → DefaultMaxConcurrent)
	QueueDepth     int   // wait-queue bound (0 → DefaultQueueDepth, <0 → no queue)
	PoolBytes      int64 // process-wide memory pool (0 → unlimited)
	SpillPoolBytes int64 // process-wide spill pool (0 → unlimited)
	// ShedWait turns on latency-driven load shedding: when the smoothed
	// queue-wait latency exceeds this threshold, new requests are
	// rejected up front with RejectOverload and a retry_after hint
	// instead of queueing behind an already-saturated server. 0 disables
	// shedding.
	ShedWait time.Duration
}

func (c AdmissionConfig) maxConcurrent() int {
	if c.MaxConcurrent <= 0 {
		return DefaultMaxConcurrent
	}
	return c.MaxConcurrent
}

func (c AdmissionConfig) queueDepth() int {
	switch {
	case c.QueueDepth < 0:
		return 0
	case c.QueueDepth == 0:
		return DefaultQueueDepth
	default:
		return c.QueueDepth
	}
}

// Admission gates query execution over shared resources: a bounded
// number of concurrent queries, each holding a byte grant from the
// process-wide memory and spill pools. Requests that do not fit wait in
// a bounded FIFO queue; a full queue or an impossible request rejects
// with a typed *AdmissionRejectedError so clients can back off.
//
// Promotion is strict FIFO: a release admits waiters from the head and
// stops at the first that does not fit, so a large request cannot be
// starved by a stream of small ones slipping past it.
type Admission struct {
	cfg AdmissionConfig

	mu        sync.Mutex
	active    int
	usedBytes int64
	usedSpill int64
	waiters   *list.List // of *waiter, FIFO

	// Load-shedding state: an exponentially weighted moving average of
	// queue-wait latency, decayed toward zero between observations so a
	// burst's high EWMA does not shed traffic long after the queue has
	// drained.
	waitEWMA   time.Duration
	waitSample time.Time // when waitEWMA was last updated
}

type waiter struct {
	mem, spill int64
	ready      chan *Grant // buffered 1: a releaser hands the grant over
}

// NewAdmission builds an admission controller.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{cfg: cfg, waiters: list.New()}
}

// Config returns the resolved configuration.
func (a *Admission) Config() AdmissionConfig {
	cfg := a.cfg
	cfg.MaxConcurrent = a.cfg.maxConcurrent()
	cfg.QueueDepth = a.cfg.queueDepth()
	return cfg
}

// AdmissionStats is a point-in-time snapshot for status reporting.
type AdmissionStats struct {
	Active         int   `json:"active"`
	Queued         int   `json:"queued"`
	UsedBytes      int64 `json:"used_bytes"`
	UsedSpillBytes int64 `json:"used_spill_bytes"`
}

// Stats snapshots the controller state.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{Active: a.active, Queued: a.waiters.Len(),
		UsedBytes: a.usedBytes, UsedSpillBytes: a.usedSpill}
}

// shedHalfLife bounds how fast the queue-wait EWMA decays toward zero
// between observations (never faster than this half-life).
const shedHalfLife = 100 * time.Millisecond

// noteWait folds one observed queue wait into the EWMA (0.8 history /
// 0.2 sample). Cancelled waits count too: a client giving up after a
// long queue wait is exactly the signal shedding exists to act on.
func (a *Admission) noteWait(wait time.Duration) {
	if a.cfg.ShedWait <= 0 {
		return
	}
	a.mu.Lock()
	now := time.Now()
	a.waitEWMA = time.Duration(0.8*float64(a.decayedWaitLocked(now)) + 0.2*float64(wait))
	a.waitSample = now
	a.mu.Unlock()
}

// decayedWaitLocked returns the EWMA decayed for the time elapsed since
// the last observation, so a quiet server forgets a past burst instead
// of shedding forever. Caller holds mu.
func (a *Admission) decayedWaitLocked(now time.Time) time.Duration {
	if a.waitEWMA <= 0 {
		return 0
	}
	hl := a.cfg.ShedWait
	if hl < shedHalfLife {
		hl = shedHalfLife
	}
	elapsed := now.Sub(a.waitSample)
	if elapsed <= 0 {
		return a.waitEWMA
	}
	return time.Duration(float64(a.waitEWMA) * math.Pow(0.5, float64(elapsed)/float64(hl)))
}

// QueueWait returns the current (decayed) smoothed queue-wait latency.
func (a *Admission) QueueWait() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.decayedWaitLocked(time.Now())
}

// Shedding reports whether the load shedder is currently rejecting new
// work; the server's /healthz reports "degraded" while this is true.
func (a *Admission) Shedding() bool {
	if a.cfg.ShedWait <= 0 {
		return false
	}
	return a.QueueWait() > a.cfg.ShedWait
}

// retryAfterLocked estimates when a rejected client should try again:
// the current smoothed queue wait, floored at the shed threshold so the
// hint is never uselessly small. Caller holds mu.
func (a *Admission) retryAfterLocked(now time.Time) time.Duration {
	hint := a.decayedWaitLocked(now)
	if a.cfg.ShedWait > 0 && hint < a.cfg.ShedWait {
		hint = a.cfg.ShedWait
	}
	return hint
}

// Acquire asks for a concurrency slot plus mem bytes from the memory
// pool and spill bytes from the spill pool. It returns a *Grant to
// Release when the query finishes, an *AdmissionRejectedError when the
// server sheds the query, or ctx.Err() when the context expires while
// waiting in the queue (a failure of this query, not a rejection).
func (a *Admission) Acquire(ctx context.Context, mem, spill int64) (*Grant, error) {
	if mem < 0 {
		mem = 0
	}
	if spill < 0 {
		spill = 0
	}
	if a.cfg.PoolBytes > 0 && mem > a.cfg.PoolBytes {
		obs.AdmissionOversized.Inc()
		return nil, &AdmissionRejectedError{Reason: RejectOversized, Need: mem, Pool: a.cfg.PoolBytes}
	}
	if a.cfg.SpillPoolBytes > 0 && spill > a.cfg.SpillPoolBytes {
		obs.AdmissionOversized.Inc()
		return nil, &AdmissionRejectedError{Reason: RejectOversized, Need: spill, Pool: a.cfg.SpillPoolBytes}
	}

	a.mu.Lock()
	// Admit immediately only when nobody is waiting — otherwise this
	// request would jump the FIFO queue.
	if a.waiters.Len() == 0 && a.fitsLocked(mem, spill) {
		g := a.admitLocked(mem, spill)
		a.mu.Unlock()
		obs.AdmissionAdmitted.Inc()
		return g, nil
	}
	now := time.Now()
	if a.cfg.ShedWait > 0 && a.decayedWaitLocked(now) > a.cfg.ShedWait {
		// The queue's smoothed wait is over threshold: queueing this
		// request would only add latency it is unlikely to survive. Shed
		// it now with a hint of when to come back.
		hint := a.retryAfterLocked(now)
		act, q := a.active, a.waiters.Len()
		a.mu.Unlock()
		obs.ServerSheds.Inc()
		return nil, &AdmissionRejectedError{Reason: RejectOverload, Active: act, Queued: q, RetryAfter: hint}
	}
	if a.waiters.Len() >= a.cfg.queueDepth() {
		act, q := a.active, a.waiters.Len()
		hint := a.retryAfterLocked(now)
		a.mu.Unlock()
		obs.AdmissionQueueFull.Inc()
		return nil, &AdmissionRejectedError{Reason: RejectQueueFull, Active: act, Queued: q, RetryAfter: hint}
	}
	w := &waiter{mem: mem, spill: spill, ready: make(chan *Grant, 1)}
	el := a.waiters.PushBack(w)
	a.mu.Unlock()
	obs.AdmissionQueuedTotal.Inc()
	obs.AdmissionQueueDepth.Inc()
	t0 := time.Now()

	select {
	case g := <-w.ready:
		obs.AdmissionQueueDepth.Dec()
		obs.AdmissionWaitLatency.Observe(time.Since(t0).Seconds())
		obs.AdmissionAdmitted.Inc()
		a.noteWait(time.Since(t0))
		return g, nil
	case <-ctx.Done():
		a.mu.Lock()
		a.waiters.Remove(el) // no-op if a releaser already popped us
		a.mu.Unlock()
		obs.AdmissionQueueDepth.Dec()
		obs.AdmissionCancelled.Inc()
		a.noteWait(time.Since(t0))
		select {
		case g := <-w.ready:
			// Lost the race: a releaser granted us just as the context
			// expired. Hand the budget straight back so it is not leaked.
			g.Release()
		default:
		}
		return nil, ctx.Err()
	}
}

// fitsLocked reports whether a request fits right now. Caller holds mu.
func (a *Admission) fitsLocked(mem, spill int64) bool {
	if a.active >= a.cfg.maxConcurrent() {
		return false
	}
	if a.cfg.PoolBytes > 0 && a.usedBytes+mem > a.cfg.PoolBytes {
		return false
	}
	if a.cfg.SpillPoolBytes > 0 && a.usedSpill+spill > a.cfg.SpillPoolBytes {
		return false
	}
	return true
}

// admitLocked charges the pools and builds the grant. Caller holds mu.
func (a *Admission) admitLocked(mem, spill int64) *Grant {
	a.active++
	a.usedBytes += mem
	a.usedSpill += spill
	a.publishLocked()
	return &Grant{a: a, mem: mem, spill: spill}
}

// publishLocked mirrors the controller state into the gauges.
func (a *Admission) publishLocked() {
	obs.AdmissionActive.Set(int64(a.active))
	obs.AdmissionPoolUsed.Set(a.usedBytes)
	obs.AdmissionSpillPoolUsed.Set(a.usedSpill)
}

// Grant is an admitted query's hold on a concurrency slot and its pool
// bytes. Release is idempotent, so a deferred Release composes with an
// early one on the error path.
type Grant struct {
	a          *Admission
	mem, spill int64
	released   atomic.Bool
}

// Bytes is the memory budget granted (0 = ungoverned).
func (g *Grant) Bytes() int64 { return g.mem }

// SpillBytes is the spill budget granted (0 = ungoverned).
func (g *Grant) SpillBytes() int64 { return g.spill }

// Release returns the slot and bytes to the pools and promotes waiters
// from the queue head while they fit.
func (g *Grant) Release() {
	if g == nil || g.released.Swap(true) {
		return
	}
	a := g.a
	a.mu.Lock()
	a.active--
	a.usedBytes -= g.mem
	a.usedSpill -= g.spill
	for e := a.waiters.Front(); e != nil; {
		w := e.Value.(*waiter)
		if !a.fitsLocked(w.mem, w.spill) {
			break
		}
		next := e.Next()
		a.waiters.Remove(e)
		w.ready <- a.admitLocked(w.mem, w.spill)
		e = next
	}
	a.publishLocked()
	a.mu.Unlock()
}
