package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"freejoin/internal/expr"
	"freejoin/internal/obs"
	"freejoin/internal/parse"
	"freejoin/internal/pprofparse"
	"freejoin/internal/workload"
)

// TestServerSoakProfileAttribution is the continuous-profiling contract
// end to end: while 16 in-process runners keep the core saturated, the
// monitoring side is scraped concurrently —
//
//   - /debug/pprof/profile (1s CPU profile) resolves samples back to
//     query_id and fingerprint goroutine labels, so profiling data is
//     attributable per query without any cooperation from the profiler
//   - /debug/queries?live=1 snapshots are consistent: rows-so-far never
//     decreases for a given query ID, and phases are published
//   - /metrics carries the runtime oj_go_* gauges and, with
//     ?exemplars=1, latency-bucket exemplars naming recent query IDs
//
// The profile assertions skip (never flake) when the OS profiler
// delivers no samples at all, but with 16 busy runners for the whole
// window that is a pathological machine, not a normal run.
func TestServerSoakProfileAttribution(t *testing.T) {
	const runners = 16
	srv := startTestServer(t, Config{
		MaxConcurrent: 4,
		QueueDepth:    runners, // deep enough that nothing is shed
		PoolBytes:     1 << 20,
		MetricsAddr:   "127.0.0.1:0",
		Pprof:         true,
		RuntimeSample: 10 * time.Millisecond,
	})
	core := srv.Core()
	base := "http://" + srv.MetricsAddr()

	rnd := rand.New(rand.NewSource(7))
	queries, names := workload.QueryMix(rnd, 8)
	for _, name := range names {
		core.Catalog().AddRelation(name, workload.RandomRelation(rnd, name, 80))
	}
	nodes := make([]*expr.Node, len(queries))
	for i, q := range queries {
		node, err := parse.Expr(q)
		if err != nil {
			t.Fatalf("mix query %q: %v", q, err)
		}
		nodes[i] = node
	}

	// Load: each runner loops its own session until stop. In-process
	// sessions keep the CPU in parse/optimize/execute, where the pprof
	// labels live.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < runners; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sess := NewSession(core)
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sess.runQuery(context.Background(), "profile soak", nodes[i%len(nodes)], false)
			}
		}(r)
	}

	// Scraper: hammers the read-only monitoring surface while queries
	// run, checking live-progress monotonicity per query ID.
	maxRows := make(map[uint64]int64)
	sawLive := false
	var scrapeErrs []string
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var live []obs.LiveQuery
			if err := getJSON(base+"/debug/queries?live=1", &live); err != nil {
				scrapeErrs = append(scrapeErrs, fmt.Sprintf("live scrape: %v", err))
				return
			}
			for _, lq := range live {
				sawLive = true
				if lq.Rows < maxRows[lq.ID] {
					scrapeErrs = append(scrapeErrs,
						fmt.Sprintf("query %d rows went backwards: %d after %d", lq.ID, lq.Rows, maxRows[lq.ID]))
					return
				}
				maxRows[lq.ID] = lq.Rows
			}
			if _, err := getBody(base + "/metrics"); err != nil {
				scrapeErrs = append(scrapeErrs, fmt.Sprintf("metrics scrape: %v", err))
				return
			}
		}
	}()

	// The profile capture is the pacing element: the handler blocks for
	// the requested second while the load and the scrapers run.
	profBody, err := getBody(base + "/debug/pprof/profile?seconds=1")
	close(stop)
	wg.Wait()
	<-scrapeDone
	if err != nil {
		t.Fatalf("profile capture: %v", err)
	}
	for _, e := range scrapeErrs {
		t.Error(e)
	}
	if !sawLive {
		t.Error("live view never showed an in-flight query under 16 runners")
	}

	// Post-load monitoring state: runtime gauges and latency exemplars.
	metricsBody, err := getBody(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metricsBody, "oj_go_goroutines") {
		t.Error("/metrics missing runtime gauge oj_go_goroutines")
	}
	if strings.Contains(metricsBody, "# {query_id=") {
		t.Error("plain /metrics scrape leaked exemplars")
	}
	omBody, err := getBody(base + "/metrics?exemplars=1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(omBody, `oj_query_duration_seconds`) || !strings.Contains(omBody, "# {query_id=") {
		t.Error("?exemplars=1 scrape carries no latency exemplars")
	}

	// The captured CPU profile attributes to queries by label.
	prof, err := pprofparse.Parse(bytes.NewReader([]byte(profBody)))
	if err != nil {
		t.Fatalf("parse captured profile: %v", err)
	}
	vi := prof.Index("cpu")
	if vi < 0 {
		vi = prof.Index("samples")
	}
	if vi < 0 {
		t.Fatalf("profile has no cpu sample type: %v", prof.SampleTypes)
	}
	total := prof.Total(vi)
	if total == 0 {
		t.Skip("profiler delivered zero samples (overloaded machine); nothing to attribute")
	}
	var labeled int64
	for id, v := range prof.ByLabel("query_id", vi) {
		if id != "" {
			labeled += v
		}
	}
	if labeled == 0 {
		t.Errorf("no CPU samples carry query_id labels (total %d)", total)
	}
	if len(prof.LabelValues("fingerprint")) == 0 {
		t.Error("no CPU samples carry fingerprint labels")
	}
	t.Logf("profile soak: %d/%d samples attributed across %d query IDs, %d fingerprints",
		labeled, total, len(prof.LabelValues("query_id")), len(prof.LabelValues("fingerprint")))
}

// getBody GETs a monitoring URL and returns the body, insisting on 200.
func getBody(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b), nil
}

// getJSON GETs a monitoring URL and decodes the JSON body into v.
func getJSON(url string, v any) error {
	body, err := getBody(url)
	if err != nil {
		return err
	}
	return json.Unmarshal([]byte(body), v)
}
