package server

import (
	"context"
	"encoding/json"
	"testing"
)

// FuzzProtocol drives the full command surface — dispatch, the
// table/index/value parsers behind it, set, prepare/execute, query —
// with arbitrary single lines, including the corrupted (0x01-laced) and
// garbage-glued shapes the chaos layer produces. The contract: Exec
// never panics (panics here would be caught by SafeExec in production,
// but the fuzzer treats any as a bug to fix), and every response
// marshals to one JSON line.
func FuzzProtocol(f *testing.F) {
	for _, seed := range []string{
		"ping",
		"help",
		"table R(a, b) = (1, 10), (2, 20)",
		"index R a",
		"tables",
		"query R -[R.a = S.a] S",
		"explain R ->[R.a = S.a] S",
		"prepare p1 R -[R.a = S.a] S",
		"execute p1",
		"set timeout 50ms",
		"set memory_limit 8KB",
		"set spill on",
		"set plan_cache off",
		"stats",
		"query \x01R -[R.a\x01= S.a] S",
		"ZZZZZZZZquery R",
		"table \x01(a) = (1)",
		"query ((((",
		"set memory_limit 99999999999999999999GB",
		"prepare",
		"execute",
		"",
		"  --comment",
		"\x00\x01\x02\x03",
	} {
		f.Add(seed)
	}
	core, err := NewCore(Config{
		MaxConcurrent: 2,
		PoolBytes:     1 << 20,
		QueryMemBytes: 1 << 16,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, line string) {
		// A fresh session per input over the shared core, like one TCP
		// connection's worth of state.
		sess := NewSession(core)
		resp := sess.Exec(context.Background(), line)
		if _, err := json.Marshal(resp); err != nil {
			t.Fatalf("response for %q does not marshal: %v", line, err)
		}
		if !resp.OK && resp.Code == "" {
			t.Fatalf("error response for %q carries no code: %+v", line, resp)
		}
	})
}
