package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"freejoin/internal/chaos"
	"freejoin/internal/exec/spill"
	"freejoin/internal/obs"
)

// Server accepts TCP connections on cfg.Addr and runs one Session per
// connection over the shared Core. The protocol is line-oriented: the
// client sends one command per line (the ojshell command syntax), the
// server answers with exactly one JSON-encoded Response per line.
//
// Close is graceful and idempotent: it stops accepting, cancels the
// base context (aborting in-flight executions through their
// ExecContexts), unblocks connection reads, and waits for every
// connection goroutine to exit — no goroutine, listener or connection
// outlives it.
type Server struct {
	core *Core
	ln   net.Listener
	mon  *obs.Server // optional monitoring HTTP side

	baseCtx context.Context
	cancel  context.CancelFunc

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg         sync.WaitGroup // connection goroutines
	acceptDone chan struct{}  // closed when the accept loop returns
	closed     atomic.Bool

	lnOnce sync.Once // listener close is idempotent (Drain then Close)
	lnErr  error

	nextSession atomic.Int64
	inflight    atomic.Int64 // commands executing right now (Drain polls this)
	swept       int          // stale spill files reclaimed at startup
}

// Start builds the core, sweeps stale spill run files from the spill
// directory, binds the listeners and begins serving.
func Start(cfg Config) (*Server, error) {
	core, err := NewCore(cfg)
	if err != nil {
		return nil, err
	}
	return StartWithCore(cfg, core)
}

// StartWithCore serves an existing core — tests preload catalogs and
// inspect shared state through it.
func StartWithCore(cfg Config, core *Core) (*Server, error) {
	dir := cfg.SpillDir
	if dir == "" {
		dir = os.TempDir()
	}
	// A previous server killed mid-query may have orphaned spill run
	// files; reclaim the disk before this process writes its own.
	swept, _ := spill.SweepStale(dir, 0)

	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listener: %w", err)
	}
	if cfg.Chaos != nil {
		ln = chaos.WrapListener(ln, *cfg.Chaos)
	}
	var mon *obs.Server
	if cfg.MetricsAddr != "" {
		mon, err = obs.StartServerOpts(cfg.MetricsAddr, obs.ServerOptions{
			Tracer:       core.tracer,
			Health:       core.Health,
			Pprof:        cfg.Pprof,
			RuntimeEvery: cfg.RuntimeSample,
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		core:       core,
		ln:         ln,
		mon:        mon,
		baseCtx:    ctx,
		cancel:     cancel,
		conns:      make(map[net.Conn]struct{}),
		acceptDone: make(chan struct{}),
		swept:      swept,
	}
	go s.acceptLoop()
	return s, nil
}

// Addr is the resolved query-protocol address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr is the resolved monitoring address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.mon == nil {
		return ""
	}
	return s.mon.Addr()
}

// Core exposes the shared state (tests preload tables through it).
func (s *Server) Core() *Core { return s.core }

// SweptSpillFiles is how many stale spill run files startup reclaimed.
func (s *Server) SweptSpillFiles() int { return s.swept }

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		obs.ServerConnectionsActive.Inc()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// Connection-hygiene sentinel errors from readLine.
var (
	errLineTooLong = errors.New("protocol line exceeds the server's maximum line length")
	errIdleTimeout = errors.New("idle timeout: no command received")
)

// readLine reads one newline-terminated line, enforcing the max-line
// bound and the idle timeout. The busy flag marks a command mid-
// execution: a read-deadline expiry then is a client patiently awaiting
// its response, not an idle session, so the deadline is re-armed instead
// of disconnecting.
func (s *Server) readLine(conn net.Conn, r *bufio.Reader, busy *atomic.Bool) (string, error) {
	maxLine := s.core.cfg.maxLineBytes()
	idle := s.core.cfg.idleTimeout()
	var buf []byte
	for {
		if idle > 0 {
			conn.SetReadDeadline(time.Now().Add(idle))
		}
		frag, err := r.ReadSlice('\n')
		buf = append(buf, frag...)
		if maxLine > 0 && len(buf) > maxLine {
			return "", errLineTooLong
		}
		switch {
		case err == nil:
			return strings.TrimRight(string(buf), "\r\n"), nil
		case err == bufio.ErrBufferFull:
			continue
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			if busy.Load() {
				continue
			}
			return "", errIdleTimeout
		}
		return "", err
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		obs.ServerConnectionsActive.Dec()
	}()
	// The connection context parents every command execution: server
	// shutdown cancels it through baseCtx, and the reader goroutine
	// cancels it the moment the client vanishes — so a mid-execute
	// disconnect aborts the query and drains its grant instead of running
	// for a client that will never read the answer.
	connCtx, connCancel := context.WithCancel(s.baseCtx)
	defer connCancel()

	write := func(resp Response) bool {
		buf, err := json.Marshal(resp)
		if err != nil {
			return false
		}
		if wt := s.core.cfg.writeTimeout(); wt > 0 {
			conn.SetWriteDeadline(time.Now().Add(wt))
		}
		_, err = conn.Write(append(buf, '\n'))
		return err == nil
	}

	id := s.nextSession.Add(1)
	sess := NewSession(s.core)
	if !write(Response{OK: true,
		Output: fmt.Sprintf("freejoin server session %d (help for commands)", id)}) {
		return
	}

	// Reads run in their own goroutine so the main loop can multiplex
	// incoming lines against connection cancellation.
	type readResult struct {
		line string
		err  error
	}
	lines := make(chan readResult)
	var busy atomic.Bool
	go func() {
		r := bufio.NewReaderSize(conn, 4096)
		for {
			line, err := s.readLine(conn, r, &busy)
			if err != nil && !errors.Is(err, errLineTooLong) && !errors.Is(err, errIdleTimeout) {
				// Disconnect (EOF, reset, injected drop): cancel first so an
				// executing command aborts now, not when it finishes.
				connCancel()
				return
			}
			select {
			case lines <- readResult{line, err}:
			case <-connCtx.Done():
				return
			}
			if err != nil {
				return
			}
		}
	}()

	for {
		select {
		case <-connCtx.Done():
			return
		case rr := <-lines:
			if rr.err != nil {
				// Protocol and idle violations get one typed response
				// before the connection closes.
				switch {
				case errors.Is(rr.err, errLineTooLong):
					obs.ServerProtocolErrors.Inc()
					write(errResp(CodeProtocol, fmt.Errorf("%w (%d bytes)", rr.err, s.core.cfg.maxLineBytes())))
				case errors.Is(rr.err, errIdleTimeout):
					write(errResp(CodeIdleTimeout, rr.err))
				}
				return
			}
			line := strings.TrimSpace(rr.line)
			if line == "" || strings.HasPrefix(line, "--") {
				continue
			}
			if line == "quit" || line == "exit" || line == `\q` {
				write(Response{OK: true, Output: "bye"})
				return
			}
			busy.Store(true)
			s.inflight.Add(1)
			resp := sess.SafeExec(connCtx, line)
			s.inflight.Add(-1)
			busy.Store(false)
			if !write(resp) {
				return
			}
		}
	}
}

// closeListener closes the query listener exactly once; Drain and Close
// both stop accepting, in either order.
func (s *Server) closeListener() error {
	s.lnOnce.Do(func() { s.lnErr = s.ln.Close() })
	return s.lnErr
}

// Health reports the server's /healthz status: "draining" during
// graceful shutdown, "degraded" while shedding load, "ok" otherwise.
func (s *Server) Health() string { return s.core.Health() }

// Drain shuts the server down gracefully: stop accepting connections,
// reject new queries with a typed "draining" code, let every in-flight
// command run to completion, then Close. ctx bounds the wait; on expiry
// the remaining work is aborted by Close and ctx.Err() is returned.
func (s *Server) Drain(ctx context.Context) error {
	if s == nil {
		return nil
	}
	s.core.StartDraining()
	s.closeListener()
	<-s.acceptDone
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		st := s.core.adm.Stats()
		if st.Active == 0 && st.Queued == 0 && s.inflight.Load() == 0 {
			return s.Close()
		}
		select {
		case <-ctx.Done():
			s.Close()
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close shuts the server down. Safe to call repeatedly and on nil; for
// a graceful shutdown that finishes in-flight queries first, use Drain.
func (s *Server) Close() error {
	if s == nil || s.closed.Swap(true) {
		return nil
	}
	// Abort in-flight executions first so connection goroutines finish
	// their current command quickly...
	s.cancel()
	// ...stop accepting...
	err := s.closeListener()
	<-s.acceptDone
	// ...unblock reads so every connection goroutine observes EOF...
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// ...and wait for them all.
	s.wg.Wait()
	if s.mon != nil {
		if merr := s.mon.Close(); err == nil {
			err = merr
		}
	}
	// Close the file-backed slow-query log (if configured) now that no
	// query can append to it.
	s.core.tracer.Slow().CloseJSONFile()
	return err
}
