package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"freejoin/internal/exec/spill"
	"freejoin/internal/obs"
)

// Server accepts TCP connections on cfg.Addr and runs one Session per
// connection over the shared Core. The protocol is line-oriented: the
// client sends one command per line (the ojshell command syntax), the
// server answers with exactly one JSON-encoded Response per line.
//
// Close is graceful and idempotent: it stops accepting, cancels the
// base context (aborting in-flight executions through their
// ExecContexts), unblocks connection reads, and waits for every
// connection goroutine to exit — no goroutine, listener or connection
// outlives it.
type Server struct {
	core *Core
	ln   net.Listener
	mon  *obs.Server // optional monitoring HTTP side

	baseCtx context.Context
	cancel  context.CancelFunc

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg         sync.WaitGroup // connection goroutines
	acceptDone chan struct{}  // closed when the accept loop returns
	closed     atomic.Bool

	nextSession atomic.Int64
	swept       int // stale spill files reclaimed at startup
}

// Start builds the core, sweeps stale spill run files from the spill
// directory, binds the listeners and begins serving.
func Start(cfg Config) (*Server, error) {
	core, err := NewCore(cfg)
	if err != nil {
		return nil, err
	}
	return StartWithCore(cfg, core)
}

// StartWithCore serves an existing core — tests preload catalogs and
// inspect shared state through it.
func StartWithCore(cfg Config, core *Core) (*Server, error) {
	dir := cfg.SpillDir
	if dir == "" {
		dir = os.TempDir()
	}
	// A previous server killed mid-query may have orphaned spill run
	// files; reclaim the disk before this process writes its own.
	swept, _ := spill.SweepStale(dir, 0)

	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("server: listener: %w", err)
	}
	var mon *obs.Server
	if cfg.MetricsAddr != "" {
		mon, err = obs.StartServer(cfg.MetricsAddr, nil, core.tracer.Ring())
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		core:       core,
		ln:         ln,
		mon:        mon,
		baseCtx:    ctx,
		cancel:     cancel,
		conns:      make(map[net.Conn]struct{}),
		acceptDone: make(chan struct{}),
		swept:      swept,
	}
	go s.acceptLoop()
	return s, nil
}

// Addr is the resolved query-protocol address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsAddr is the resolved monitoring address ("" when disabled).
func (s *Server) MetricsAddr() string {
	if s.mon == nil {
		return ""
	}
	return s.mon.Addr()
}

// Core exposes the shared state (tests preload tables through it).
func (s *Server) Core() *Core { return s.core }

// SweptSpillFiles is how many stale spill run files startup reclaimed.
func (s *Server) SweptSpillFiles() int { return s.swept }

func (s *Server) acceptLoop() {
	defer close(s.acceptDone)
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	id := s.nextSession.Add(1)
	sess := NewSession(s.core)
	enc := json.NewEncoder(conn)
	if err := enc.Encode(Response{OK: true,
		Output: fmt.Sprintf("freejoin server session %d (help for commands)", id)}); err != nil {
		return
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		if line == "quit" || line == "exit" || line == `\q` {
			enc.Encode(Response{OK: true, Output: "bye"})
			return
		}
		if err := enc.Encode(sess.Exec(s.baseCtx, line)); err != nil {
			return
		}
	}
}

// Close shuts the server down gracefully. Safe to call repeatedly and
// on nil.
func (s *Server) Close() error {
	if s == nil || s.closed.Swap(true) {
		return nil
	}
	// Abort in-flight executions first so connection goroutines finish
	// their current command quickly...
	s.cancel()
	// ...stop accepting...
	err := s.ln.Close()
	<-s.acceptDone
	// ...unblock reads so every connection goroutine observes EOF...
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// ...and wait for them all.
	s.wg.Wait()
	if s.mon != nil {
		if merr := s.mon.Close(); err == nil {
			err = merr
		}
	}
	return err
}
