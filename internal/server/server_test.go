package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"freejoin/internal/optimizer"
)

// testClient is one protocol connection: send a command line, decode
// the one-line JSON response.
type testClient struct {
	t    testing.TB
	conn net.Conn
	dec  *json.Decoder
}

func dialServer(t testing.TB, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	c := &testClient{t: t, conn: conn, dec: json.NewDecoder(conn)}
	t.Cleanup(func() { conn.Close() })
	hello := c.recv()
	if !hello.OK || !strings.Contains(hello.Output, "session") {
		t.Fatalf("hello = %+v", hello)
	}
	return c
}

func (c *testClient) recv() Response {
	c.t.Helper()
	var r Response
	if err := c.dec.Decode(&r); err != nil {
		c.t.Fatalf("decode response: %v", err)
	}
	return r
}

func (c *testClient) send(line string) Response {
	c.t.Helper()
	if _, err := fmt.Fprintln(c.conn, line); err != nil {
		c.t.Fatalf("send %q: %v", line, err)
	}
	return c.recv()
}

func (c *testClient) mustOK(line string) Response {
	c.t.Helper()
	r := c.send(line)
	if !r.OK {
		c.t.Fatalf("%q failed: %s (%s)", line, r.Error, r.Code)
	}
	return r
}

func startTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	srv, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServerEndToEnd(t *testing.T) {
	srv := startTestServer(t, Config{})
	c := dialServer(t, srv.Addr())

	if r := c.mustOK("ping"); r.Output != "pong" {
		t.Fatalf("ping = %+v", r)
	}
	c.mustOK("table R(a, b) = (1, 10), (2, 20), (3, 30)")
	c.mustOK("table S(a, c) = (2, 'x'), (3, 'y'), (4, 'z')")
	c.mustOK("index R a")
	if r := c.mustOK("tables"); r.Rows != 2 {
		t.Fatalf("tables = %+v", r)
	}

	q := "R -[R.a = S.a] S"
	r := c.mustOK("query " + q)
	if r.Rows != 2 || r.Tuples == 0 {
		t.Fatalf("join result = %+v", r)
	}
	if !strings.Contains(r.Output, "R.a") {
		t.Fatalf("rendered output missing header: %q", r.Output)
	}

	if r := c.mustOK("explain " + q); r.Plan == "" || !strings.Contains(r.Output, "plan") {
		t.Fatalf("explain = %+v", r)
	}

	c.mustOK("prepare pq " + q)
	r = c.mustOK("execute pq")
	if r.Rows != 2 {
		t.Fatalf("execute = %+v", r)
	}
	if r.Cache != "hit" {
		t.Fatalf("prepared re-execution should hit the plan cache, got %q", r.Cache)
	}

	if r := c.mustOK("set"); !strings.Contains(r.Output, "timeout: off") {
		t.Fatalf("set = %+v", r)
	}
	c.mustOK("set timeout 5s")
	c.mustOK("set memory_limit 64KB")
	if r := c.mustOK("set"); !strings.Contains(r.Output, "65536 bytes") {
		t.Fatalf("set after memory_limit = %+v", r)
	}
	if r := c.mustOK("stats"); !strings.Contains(r.Output, "tables: 2") {
		t.Fatalf("stats = %+v", r)
	}

	// Error codes.
	if r := c.send("query R -["); r.OK || r.Code != CodeParse {
		t.Fatalf("parse error = %+v", r)
	}
	if r := c.send("bogus"); r.OK || r.Code != CodeUnknownCommand {
		t.Fatalf("unknown command = %+v", r)
	}
	if r := c.send("execute nothere"); r.OK || r.Code != CodeUsage {
		t.Fatalf("missing prepared = %+v", r)
	}

	if r := c.send("quit"); !r.OK || r.Output != "bye" {
		t.Fatalf("quit = %+v", r)
	}
}

// "set strategy yannakakis" forces the acyclic fast path session-wide:
// explain shows semireduce steps, the query still answers correctly, and
// flipping back to dp is not served the yannakakis plan from the shared
// cache (the strategy keys the fingerprint).
func TestServerSetStrategy(t *testing.T) {
	srv := startTestServer(t, Config{})
	c := dialServer(t, srv.Addr())
	c.mustOK("table R(a) = (1), (2)")
	c.mustOK("table S(a) = (2), (3)")
	c.mustOK("table T(a) = (2), (4)")
	if r := c.mustOK("set"); !strings.Contains(r.Output, "strategy: dp") {
		t.Fatalf("default set output missing strategy:\n%s", r.Output)
	}
	c.mustOK("set strategy yannakakis")
	if r := c.mustOK("set"); !strings.Contains(r.Output, "strategy: yannakakis") {
		t.Fatalf("set output missing strategy:\n%s", r.Output)
	}
	q := "(R -[R.a = S.a] S) -[S.a = T.a] T"
	if r := c.mustOK("explain " + q); !strings.Contains(r.Output, "semireduce") {
		t.Fatalf("yannakakis explain missing semireduce:\n%s", r.Output)
	}
	if r := c.mustOK("query " + q); r.Rows != 1 {
		t.Fatalf("query rows = %d, want 1", r.Rows)
	}
	if r := c.send("set strategy bogus"); r.OK || r.Code != CodeUsage {
		t.Fatalf("bogus strategy = %+v", r)
	}
	c.mustOK("set strategy dp")
	if r := c.mustOK("explain " + q); strings.Contains(r.Output, "semireduce") {
		t.Fatalf("dp explain served the yannakakis plan:\n%s", r.Output)
	}
}

// Config.Strategy seeds every new session's planner strategy.
func TestServerStrategyDefault(t *testing.T) {
	srv := startTestServer(t, Config{Strategy: "auto"})
	c := dialServer(t, srv.Addr())
	if r := c.mustOK("set"); !strings.Contains(r.Output, "strategy: auto") {
		t.Fatalf("set output missing configured strategy:\n%s", r.Output)
	}
}

// Sessions share one catalog and one plan cache: a table defined in one
// session is queryable from another, and a plan cached by one session is
// a hit for the next.
func TestServerSharedCoreAcrossSessions(t *testing.T) {
	srv := startTestServer(t, Config{})
	c1 := dialServer(t, srv.Addr())
	c1.mustOK("table T(a) = (1), (2)")
	c1.mustOK("table U(a) = (2), (3)")
	q := "T ->[T.a = U.a] U"
	first := c1.mustOK("query " + q)
	if first.Cache != "miss" {
		t.Fatalf("first execution cache = %q", first.Cache)
	}

	c2 := dialServer(t, srv.Addr())
	second := c2.mustOK("query " + q)
	if second.Cache != "hit" {
		t.Fatalf("cross-session cache = %q, want hit", second.Cache)
	}
	if second.Rows != first.Rows {
		t.Fatalf("rows diverge across sessions: %d vs %d", second.Rows, first.Rows)
	}
}

// With the only slot pinned and no wait queue, the server sheds load
// with a typed admission rejection rather than overcommitting.
func TestServerAdmissionRejectsWhenSaturated(t *testing.T) {
	srv := startTestServer(t, Config{MaxConcurrent: 1, QueueDepth: -1})
	c := dialServer(t, srv.Addr())
	c.mustOK("table R(a) = (1)")
	c.mustOK("table S(a) = (1)")

	g, err := srv.Core().Admission().Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := c.send("query R -[R.a = S.a] S")
	if r.OK || r.Code != CodeAdmissionRejected {
		t.Fatalf("saturated query = %+v, want %s", r, CodeAdmissionRejected)
	}
	g.Release()
	if r := c.mustOK("query R -[R.a = S.a] S"); r.Rows != 1 {
		t.Fatalf("after release = %+v", r)
	}
}

// A session deadline covers the admission wait: a query stuck in the
// queue times out as cancelled (a failure), not rejected.
func TestServerTimeoutWhileQueued(t *testing.T) {
	srv := startTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 8})
	c := dialServer(t, srv.Addr())
	c.mustOK("table R(a) = (1)")
	c.mustOK("table S(a) = (1)")
	c.mustOK("set timeout 50ms")

	g, err := srv.Core().Admission().Acquire(context.Background(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	start := time.Now()
	r := c.send("query R -[R.a = S.a] S")
	if r.OK || r.Code != CodeCancelled {
		t.Fatalf("queued timeout = %+v, want %s", r, CodeCancelled)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("timeout took %v", d)
	}
}

// A per-query memory request larger than the whole pool is rejected as
// oversized immediately — waiting could never help.
func TestServerOversizedRequestRejected(t *testing.T) {
	srv := startTestServer(t, Config{PoolBytes: 1 << 10})
	c := dialServer(t, srv.Addr())
	c.mustOK("table R(a) = (1)")
	c.mustOK("table S(a) = (1)")
	c.mustOK("set memory_limit 1MB")
	r := c.send("query R -[R.a = S.a] S")
	if r.OK || r.Code != CodeAdmissionRejected {
		t.Fatalf("oversized = %+v", r)
	}
	if !strings.Contains(r.Error, "oversized") {
		t.Fatalf("oversized error text = %q", r.Error)
	}
}

// A tiny per-query grant trips the governor mid-join: a typed resource
// failure, and the pool is returned.
func TestServerGovernorTrip(t *testing.T) {
	srv := startTestServer(t, Config{PoolBytes: 1 << 20})
	c := dialServer(t, srv.Addr())
	var rows []string
	for i := 0; i < 200; i++ {
		rows = append(rows, fmt.Sprintf("(%d)", i%5))
	}
	c.mustOK("table big(a) = " + strings.Join(rows, ", "))
	var rows2 []string
	for i := 0; i < 200; i++ {
		rows2 = append(rows2, fmt.Sprintf("(%d)", i%5))
	}
	c.mustOK("table big2(b) = " + strings.Join(rows2, ", "))
	c.mustOK("set memory_limit 64B")
	r := c.send("query big -[big.a = big2.b] big2")
	if r.OK || r.Code != CodeResource {
		t.Fatalf("governor trip = %+v, want %s", r, CodeResource)
	}
	if st := srv.Core().Admission().Stats(); st.Active != 0 || st.UsedBytes != 0 {
		t.Fatalf("pool leaked after trip: %+v", st)
	}
}

// Close is graceful: connected clients observe EOF, repeated Close is
// a no-op, and the metrics side shuts down with the server.
func TestServerGracefulClose(t *testing.T) {
	srv := startTestServer(t, Config{MetricsAddr: "127.0.0.1:0"})
	if srv.MetricsAddr() == "" {
		t.Fatal("metrics side not started")
	}
	metricsAddr := srv.MetricsAddr()
	c := dialServer(t, srv.Addr())
	c.mustOK("ping")
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The client connection is closed out from under us.
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var r Response
	if err := c.dec.Decode(&r); err == nil {
		t.Fatal("connection still alive after Close")
	}
	// Both listeners are really gone.
	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("query listener still accepting after Close")
	}
	if conn, err := net.DialTimeout("tcp", metricsAddr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Fatal("metrics listener still accepting after Close")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
}

// "set batch_size off" flips a session to the row-at-a-time evaluators
// and must not be served the batched plan from the shared cache (the
// batch mode keys the fingerprint); results agree across modes.
func TestServerSetBatchSize(t *testing.T) {
	srv := startTestServer(t, Config{})
	c := dialServer(t, srv.Addr())
	c.mustOK("table R(a) = (1), (2)")
	c.mustOK("table S(a) = (2), (3)")
	if r := c.mustOK("set"); !strings.Contains(r.Output, "batch_size: 1024 (default)") {
		t.Fatalf("default set output missing batch_size:\n%s", r.Output)
	}
	q := "R ->[R.a = S.a] S"
	if r := c.mustOK("query " + q); r.Rows != 2 {
		t.Fatalf("batched query rows = %d, want 2", r.Rows)
	}
	c.mustOK("set batch_size off")
	r := c.mustOK("query " + q)
	if r.Rows != 2 {
		t.Fatalf("row-mode query rows = %d, want 2", r.Rows)
	}
	if r.Cache == "hit" {
		t.Fatalf("row-mode query hit the batched plan in the shared cache")
	}
	c.mustOK("set batch_size 128")
	if r := c.mustOK("set"); !strings.Contains(r.Output, "batch_size: 128") {
		t.Fatalf("set output missing explicit batch_size:\n%s", r.Output)
	}
	if r := c.send("set batch_size -3"); r.OK || r.Code != CodeUsage {
		t.Fatalf("bad batch_size = %+v", r)
	}
}

// Config.BatchSize seeds every new session's execution mode.
func TestServerBatchSizeDefault(t *testing.T) {
	srv := startTestServer(t, Config{BatchSize: optimizer.BatchOff})
	c := dialServer(t, srv.Addr())
	if r := c.mustOK("set"); !strings.Contains(r.Output, "batch_size: off") {
		t.Fatalf("seeded set output missing batch_size off:\n%s", r.Output)
	}
}
