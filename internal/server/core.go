package server

import (
	"time"

	"freejoin/internal/obs"
	"freejoin/internal/plancache"
	"freejoin/internal/storage"
)

// Config parameterizes the server: the listen addresses, the admission
// controller sizing, and the per-query defaults sessions start from
// (sessions may lower their own limits with "set", never exceed the
// pools).
type Config struct {
	Addr        string // TCP address for the query protocol ("" → 127.0.0.1:0)
	MetricsAddr string // optional HTTP /metrics,/debug/queries,/healthz address

	MaxConcurrent  int   // concurrent queries (0 → DefaultMaxConcurrent)
	QueueDepth     int   // admission wait-queue bound (0 → DefaultQueueDepth, <0 → none)
	PoolBytes      int64 // process-wide memory pool (0 → unlimited)
	SpillPoolBytes int64 // process-wide spill pool (0 → unlimited)

	QueryMemBytes   int64         // default per-query memory grant (0 → ungoverned)
	QuerySpillBytes int64         // per-query spill grant when spill is on (0 → ungoverned)
	Timeout         time.Duration // default per-query deadline, admission wait included (0 → none)

	PlanCache int    // shared plan-cache capacity (0 → DefaultCapacity, <0 → disabled)
	Spill     bool   // default spill-to-disk mode for new sessions
	SpillDir  string // spill run-file directory ("" → OS temp dir)

	SnapshotPath string // optional .fjdb catalog snapshot to restore at startup
}

// Core is the shared-everything state all sessions execute over: one
// catalog (one stats epoch), one plan cache, one tracer ring, one
// admission controller. Sessions are cheap; the core is the server.
type Core struct {
	cfg    Config
	cat    *storage.Catalog
	plans  *plancache.Cache
	tracer *obs.Tracer
	adm    *Admission
}

// NewCore builds the shared core for cfg. When cfg.SnapshotPath names a
// catalog snapshot it is restored into the fresh catalog.
func NewCore(cfg Config) (*Core, error) {
	cat := storage.NewCatalog()
	if cfg.SnapshotPath != "" {
		restored, err := storage.LoadCatalogFile(cfg.SnapshotPath)
		if err != nil {
			return nil, err
		}
		cat = restored
	}
	var plans *plancache.Cache
	switch {
	case cfg.PlanCache > 0:
		plans = plancache.New(cfg.PlanCache)
	case cfg.PlanCache == 0:
		plans = plancache.New(plancache.DefaultCapacity)
	}
	return &Core{
		cfg:    cfg,
		cat:    cat,
		plans:  plans,
		tracer: obs.NewTracer(),
		adm: NewAdmission(AdmissionConfig{
			MaxConcurrent:  cfg.MaxConcurrent,
			QueueDepth:     cfg.QueueDepth,
			PoolBytes:      cfg.PoolBytes,
			SpillPoolBytes: cfg.SpillPoolBytes,
		}),
	}, nil
}

// Catalog returns the shared catalog (safe for concurrent use).
func (c *Core) Catalog() *storage.Catalog { return c.cat }

// Plans returns the shared plan cache (nil when disabled).
func (c *Core) Plans() *plancache.Cache { return c.plans }

// Tracer returns the server's query tracer.
func (c *Core) Tracer() *obs.Tracer { return c.tracer }

// Admission returns the admission controller.
func (c *Core) Admission() *Admission { return c.adm }
