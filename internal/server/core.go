package server

import (
	"sync/atomic"
	"time"

	"freejoin/internal/chaos"
	"freejoin/internal/obs"
	"freejoin/internal/plancache"
	"freejoin/internal/storage"
)

// Connection-hygiene defaults; Config zero values resolve to these, and
// negative values disable the bound entirely.
const (
	// DefaultMaxLineBytes bounds one protocol line (command or value
	// payload). Longer lines get a typed protocol_error instead of
	// unbounded buffering.
	DefaultMaxLineBytes = 1 << 20
	// DefaultIdleTimeout disconnects sessions that send nothing for this
	// long (while no command is executing).
	DefaultIdleTimeout = 5 * time.Minute
	// DefaultWriteTimeout bounds one response write; a client that stops
	// reading cannot wedge a session goroutine forever.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultSlowLogMaxBytes caps the slow-query JSONL file before it
	// rotates to <path>.1 (at most double this on disk).
	DefaultSlowLogMaxBytes = int64(64 << 20)
)

// Config parameterizes the server: the listen addresses, the admission
// controller sizing, and the per-query defaults sessions start from
// (sessions may lower their own limits with "set", never exceed the
// pools).
type Config struct {
	Addr        string // TCP address for the query protocol ("" → 127.0.0.1:0)
	MetricsAddr string // optional HTTP /metrics,/debug/queries,/healthz address

	MaxConcurrent  int   // concurrent queries (0 → DefaultMaxConcurrent)
	QueueDepth     int   // admission wait-queue bound (0 → DefaultQueueDepth, <0 → none)
	PoolBytes      int64 // process-wide memory pool (0 → unlimited)
	SpillPoolBytes int64 // process-wide spill pool (0 → unlimited)

	QueryMemBytes   int64         // default per-query memory grant (0 → ungoverned)
	QuerySpillBytes int64         // per-query spill grant when spill is on (0 → ungoverned)
	Timeout         time.Duration // default per-query deadline, admission wait included (0 → none)

	PlanCache int    // shared plan-cache capacity (0 → DefaultCapacity, <0 → disabled)
	Spill     bool   // default spill-to-disk mode for new sessions
	SpillDir  string // spill run-file directory ("" → OS temp dir)
	Strategy  string // default planner strategy for new sessions ("" → dp)

	// BatchSize is the default vectorized-execution mode for new
	// sessions: 0 runs batched with exec.DefaultBatchSize,
	// optimizer.BatchOff (-1) forces row-at-a-time evaluators, and a
	// positive value sets the rows per batch.
	BatchSize int

	SnapshotPath string // optional .fjdb catalog snapshot to restore at startup

	// Connection hygiene (0 → the defaults above, <0 → disabled).
	MaxLineBytes int           // longest accepted protocol line
	IdleTimeout  time.Duration // disconnect idle sessions after this long
	WriteTimeout time.Duration // per-response write deadline

	// ShedWait enables queue-wait-latency load shedding (see
	// AdmissionConfig.ShedWait). 0 disables.
	ShedWait time.Duration

	// Pprof mounts net/http/pprof on the monitoring server (requires
	// MetricsAddr). Off by default: profiling endpoints expose stacks.
	Pprof bool
	// RuntimeSample, when > 0, runs a background runtime/metrics sampler
	// at this period for the monitoring server's lifetime (scrape-time
	// sampling happens regardless).
	RuntimeSample time.Duration

	// SlowQuery sets the slow-query threshold (0 → off); queries at or
	// over it are recorded in the slow-query log.
	SlowQuery time.Duration
	// SlowQueryLog, when non-empty, appends slow-query records as JSON
	// lines to this file, rotated to <path>.1 at SlowQueryLogMaxBytes
	// (DefaultSlowLogMaxBytes when 0) so a long soak cannot fill the disk.
	SlowQueryLog         string
	SlowQueryLogMaxBytes int64

	// Chaos, when non-nil and enabled, wraps the query listener in the
	// fault-injection layer — a dev/test mode, never for production.
	Chaos *chaos.Config
}

func (c Config) maxLineBytes() int {
	switch {
	case c.MaxLineBytes < 0:
		return 0 // unbounded
	case c.MaxLineBytes == 0:
		return DefaultMaxLineBytes
	default:
		return c.MaxLineBytes
	}
}

func (c Config) idleTimeout() time.Duration {
	switch {
	case c.IdleTimeout < 0:
		return 0 // disabled
	case c.IdleTimeout == 0:
		return DefaultIdleTimeout
	default:
		return c.IdleTimeout
	}
}

func (c Config) writeTimeout() time.Duration {
	switch {
	case c.WriteTimeout < 0:
		return 0 // disabled
	case c.WriteTimeout == 0:
		return DefaultWriteTimeout
	default:
		return c.WriteTimeout
	}
}

// Core is the shared-everything state all sessions execute over: one
// catalog (one stats epoch), one plan cache, one tracer ring, one
// admission controller. Sessions are cheap; the core is the server.
type Core struct {
	cfg    Config
	cat    *storage.Catalog
	plans  *plancache.Cache
	tracer *obs.Tracer
	adm    *Admission

	// draining flips once at the start of a graceful shutdown: sessions
	// still connected get typed "draining" rejections for new queries
	// while in-flight ones run to completion.
	draining atomic.Bool
}

// NewCore builds the shared core for cfg. When cfg.SnapshotPath names a
// catalog snapshot it is restored into the fresh catalog.
func NewCore(cfg Config) (*Core, error) {
	cat := storage.NewCatalog()
	if cfg.SnapshotPath != "" {
		restored, err := storage.LoadCatalogFile(cfg.SnapshotPath)
		if err != nil {
			return nil, err
		}
		cat = restored
	}
	var plans *plancache.Cache
	switch {
	case cfg.PlanCache > 0:
		plans = plancache.New(cfg.PlanCache)
	case cfg.PlanCache == 0:
		plans = plancache.New(plancache.DefaultCapacity)
	}
	core := &Core{
		cfg:    cfg,
		cat:    cat,
		plans:  plans,
		tracer: obs.NewTracer(),
		adm: NewAdmission(AdmissionConfig{
			MaxConcurrent:  cfg.MaxConcurrent,
			QueueDepth:     cfg.QueueDepth,
			PoolBytes:      cfg.PoolBytes,
			SpillPoolBytes: cfg.SpillPoolBytes,
			ShedWait:       cfg.ShedWait,
		}),
	}
	if cfg.SlowQuery > 0 {
		core.tracer.Slow().SetThreshold(cfg.SlowQuery)
	}
	if cfg.SlowQueryLog != "" {
		maxBytes := cfg.SlowQueryLogMaxBytes
		if maxBytes == 0 {
			maxBytes = DefaultSlowLogMaxBytes
		}
		if err := core.tracer.Slow().SetJSONFile(cfg.SlowQueryLog, maxBytes); err != nil {
			return nil, err
		}
	}
	return core, nil
}

// Catalog returns the shared catalog (safe for concurrent use).
func (c *Core) Catalog() *storage.Catalog { return c.cat }

// Plans returns the shared plan cache (nil when disabled).
func (c *Core) Plans() *plancache.Cache { return c.plans }

// Tracer returns the server's query tracer.
func (c *Core) Tracer() *obs.Tracer { return c.tracer }

// Admission returns the admission controller.
func (c *Core) Admission() *Admission { return c.adm }

// StartDraining flips the core into drain mode; new queries reject with
// a typed "draining" code. Returns false if already draining.
func (c *Core) StartDraining() bool { return !c.draining.Swap(true) }

// Draining reports whether the core is shutting down gracefully.
func (c *Core) Draining() bool { return c.draining.Load() }

// Health summarizes the core for /healthz: "draining" during graceful
// shutdown, "degraded" while the load shedder is rejecting new work,
// "ok" otherwise.
func (c *Core) Health() string {
	switch {
	case c.draining.Load():
		return "draining"
	case c.adm.Shedding():
		return "degraded"
	default:
		return "ok"
	}
}
