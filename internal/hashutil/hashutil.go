// Package hashutil provides the FNV-1a hash used across the system:
// the executor partitions join keys with Sum32, and the plan cache
// fingerprints canonical query-graph text with the 64-bit streaming
// Hash64. Both match the stdlib hash/fnv parameters exactly; keeping
// one local implementation avoids the stdlib's interface allocation on
// the executor's per-row hot path while guaranteeing the two callers
// can never drift apart.
package hashutil

// FNV-1a parameters (Fowler–Noll–Vo).
const (
	offset32 = 2166136261
	prime32  = 16777619

	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Sum32 returns the 32-bit FNV-1a hash of b.
func Sum32(b []byte) uint32 {
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}

// Sum64 returns the 64-bit FNV-1a hash of b.
func Sum64(b []byte) uint64 {
	h := New64()
	h.Write(b)
	return h.Sum64()
}

// Hash64 is a streaming 64-bit FNV-1a hasher. The zero value is NOT
// ready to use; construct with New64.
type Hash64 uint64

// New64 returns a streaming 64-bit FNV-1a hasher seeded with the
// canonical offset basis.
func New64() *Hash64 {
	h := Hash64(offset64)
	return &h
}

// Write mixes b into the hash.
func (h *Hash64) Write(b []byte) {
	x := uint64(*h)
	for _, c := range b {
		x ^= uint64(c)
		x *= prime64
	}
	*h = Hash64(x)
}

// WriteString mixes s into the hash without allocating.
func (h *Hash64) WriteString(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= prime64
	}
	*h = Hash64(x)
}

// WriteByte mixes a single byte into the hash. It is used as a field
// separator so that adjacent fields cannot collide by concatenation.
func (h *Hash64) WriteByte(c byte) error {
	x := uint64(*h)
	x ^= uint64(c)
	x *= prime64
	*h = Hash64(x)
	return nil
}

// Sum64 returns the current hash value.
func (h *Hash64) Sum64() uint64 { return uint64(*h) }
