package hashutil

import (
	"hash/fnv"
	"math/rand"
	"testing"
)

// The local FNV-1a must agree with the stdlib byte for byte: the
// executor's partitioner and the plan-cache fingerprint both lean on
// this single implementation, so equivalence with hash/fnv pins the
// algorithm against accidental edits.
func TestSum32MatchesStdlib(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		b := make([]byte, rnd.Intn(64))
		rnd.Read(b)
		ref := fnv.New32a()
		ref.Write(b)
		if got, want := Sum32(b), ref.Sum32(); got != want {
			t.Fatalf("Sum32(%v) = %#x, stdlib fnv-1a = %#x", b, got, want)
		}
	}
	if got, want := Sum32(nil), uint32(2166136261); got != want {
		t.Fatalf("Sum32(nil) = %#x, want offset basis %#x", got, want)
	}
}

func TestSum64MatchesStdlib(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		b := make([]byte, rnd.Intn(64))
		rnd.Read(b)
		ref := fnv.New64a()
		ref.Write(b)
		if got, want := Sum64(b), ref.Sum64(); got != want {
			t.Fatalf("Sum64(%v) = %#x, stdlib fnv-1a = %#x", b, got, want)
		}
	}
}

// Streaming writes in any chunking must equal a single Sum64 over the
// concatenation, and the string/byte variants must match the byte one.
func TestHash64Streaming(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		b := make([]byte, 1+rnd.Intn(64))
		rnd.Read(b)
		h := New64()
		for off := 0; off < len(b); {
			n := 1 + rnd.Intn(len(b)-off)
			h.Write(b[off : off+n])
			off += n
		}
		if got, want := h.Sum64(), Sum64(b); got != want {
			t.Fatalf("chunked Write = %#x, Sum64 = %#x", got, want)
		}

		hs := New64()
		hs.WriteString(string(b))
		if got, want := hs.Sum64(), Sum64(b); got != want {
			t.Fatalf("WriteString = %#x, Sum64 = %#x", got, want)
		}

		hb := New64()
		for _, c := range b {
			hb.WriteByte(c)
		}
		if got, want := hb.Sum64(), Sum64(b); got != want {
			t.Fatalf("WriteByte loop = %#x, Sum64 = %#x", got, want)
		}
	}
}
