package storage

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV importer never panics and, for accepted
// inputs, produces a relation that survives a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	for _, seed := range []string{
		"a,b\n1,2\n",
		"a\n\n",
		"x,y,z\n1,2.5,hi\n,,\n",
		"a,b\n\"quo,ted\",2\n",
		"a,b\n1\n",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		rel, err := ReadCSV(strings.NewReader(src), "R")
		if err != nil {
			return
		}
		var buf strings.Builder
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("write of accepted relation failed: %v", err)
		}
		back, err := ReadCSV(strings.NewReader(buf.String()), "R")
		if err != nil {
			t.Fatalf("round trip does not parse: %v", err)
		}
		// Value kinds may narrow (a string "1" becomes Int on re-read
		// only if it was written without quotes — WriteCSV writes raw
		// text — so compare row/column counts rather than exact values).
		if back.Len() != rel.Len() || back.Scheme().Len() != rel.Scheme().Len() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				rel.Len(), rel.Scheme().Len(), back.Len(), back.Scheme().Len())
		}
	})
}
