package storage

import (
	"fmt"
	"sync"
	"testing"

	"freejoin/internal/relation"
)

func concRel(name string, rows int) *relation.Relation {
	r := relation.New(relation.SchemeOf(name, "a", "b"))
	for i := 0; i < rows; i++ {
		r.AppendRaw([]relation.Value{relation.Int(int64(i)), relation.Int(int64(i % 3))})
	}
	return r
}

// The shared-catalog race: a query server plans and executes against one
// catalog while other sessions add tables and build indexes. Run with
// -race; the assertions are secondary to the detector.
func TestCatalogConcurrentAddLookup(t *testing.T) {
	cat := NewCatalog()
	cat.AddRelation("R", concRel("R", 64))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // writers: re-add R, add fresh tables, build indexes
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					cat.AddRelation("R", concRel("R", 64))
				case 1:
					cat.AddRelation(fmt.Sprintf("W%d_%d", w, i), concRel("W", 8))
				default:
					if tab, err := cat.Table("R"); err == nil {
						if _, err := tab.BuildHashIndex("a"); err != nil {
							t.Error(err)
							return
						}
					}
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // readers: lookups, stats, index probes, epoch reads
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tab, err := cat.Table("R")
				if err != nil {
					t.Error(err)
					return
				}
				st := tab.Stats()
				if st.Rows != 64 {
					t.Errorf("R stats rows = %d; want 64", st.Rows)
					return
				}
				if idx, ok := tab.HashIndexOn("a"); ok && idx.Col() != "a" {
					t.Error("index column mismatch")
					return
				}
				_ = cat.Tables()
				_ = cat.StatsEpoch()
			}
		}()
	}
	close(stop)
	wg.Wait()
}

// Concurrent first uses of Stats must memoize one consistent value.
func TestTableStatsConcurrent(t *testing.T) {
	tab := NewTable("R", concRel("R", 100))
	var wg sync.WaitGroup
	stats := make([]*TableStats, 8)
	for i := range stats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i] = tab.Stats()
		}(i)
	}
	wg.Wait()
	for i, st := range stats {
		if st.Rows != 100 || st.Distinct["a"] != 100 {
			t.Fatalf("goroutine %d saw inconsistent stats: %+v", i, st)
		}
	}
}
