package storage

import (
	"testing"

	"freejoin/internal/relation"
)

// The stats epoch must advance on every planning-relevant change —
// adding tables, building indexes — and must be unique across catalogs
// so a process-wide plan cache can never confuse two catalogs.
func TestStatsEpoch(t *testing.T) {
	c := NewCatalog()
	e0 := c.StatsEpoch()
	if e0 == 0 {
		t.Fatalf("fresh catalog epoch = 0; want a drawn epoch")
	}

	r := relation.New(relation.SchemeOf("R", "a"))
	r.AppendRaw([]relation.Value{relation.Int(1)})
	tab := c.AddRelation("R", r)
	e1 := c.StatsEpoch()
	if e1 <= e0 {
		t.Fatalf("epoch after Add = %d; want > %d", e1, e0)
	}

	if _, err := tab.BuildHashIndex("a"); err != nil {
		t.Fatal(err)
	}
	e2 := c.StatsEpoch()
	if e2 <= e1 {
		t.Fatalf("epoch after BuildHashIndex = %d; want > %d", e2, e1)
	}

	if _, err := tab.BuildOrderedIndex("a"); err != nil {
		t.Fatal(err)
	}
	e3 := c.StatsEpoch()
	if e3 <= e2 {
		t.Fatalf("epoch after BuildOrderedIndex = %d; want > %d", e3, e2)
	}

	// A second catalog must never share epoch values with the first.
	c2 := NewCatalog()
	if c2.StatsEpoch() <= e3 {
		t.Fatalf("second catalog epoch = %d; want > %d (process-unique)", c2.StatsEpoch(), e3)
	}
}
