package storage

import (
	"context"
	"errors"
	"testing"

	"freejoin/internal/relation"
	"freejoin/internal/resource"
)

func faultTable(t *testing.T) *Table {
	t.Helper()
	r := relation.FromRows("R", []string{"k"}, []any{1}, []any{2}, []any{3}, []any{4})
	return NewTable("R", r)
}

func drainFault(fi *FaultIterator) (int, error) {
	if err := fi.Open(nil); err != nil {
		return 0, err
	}
	n := 0
	for {
		_, ok, err := fi.Next()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, fi.Close()
		}
		n++
	}
}

func TestFaultNone(t *testing.T) {
	ft := NewFaultTable(faultTable(t), Fault{})
	fi := ft.Iterator()
	n, err := drainFault(fi)
	if err != nil || n != 4 {
		t.Fatalf("clean pass: n=%d err=%v", n, err)
	}
	if !fi.Balanced() {
		t.Error("clean pass must balance Open/Close")
	}
}

func TestFaultOpen(t *testing.T) {
	fi := NewFaultTable(faultTable(t), Fault{FailOpen: true}).Iterator()
	err := fi.Open(nil)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("open fault = %v", err)
	}
	if fi.Close() != nil {
		t.Error("close after failed open must succeed (inner never opened)")
	}
}

func TestFaultAfterRows(t *testing.T) {
	fi := NewFaultTable(faultTable(t), Fault{FailNext: true, FailAfter: 2}).Iterator()
	n, err := drainFault(fi)
	if !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("after-2 fault: n=%d err=%v", n, err)
	}
	// A disciplined caller stops; an undisciplined one is audited.
	if fi.NextAfterError != 0 {
		t.Fatal("no violation yet")
	}
	fi.Next()
	if fi.NextAfterError != 1 {
		t.Error("Next after error must be counted as a violation")
	}
}

func TestFaultClose(t *testing.T) {
	fi := NewFaultTable(faultTable(t), Fault{FailClose: true}).Iterator()
	n, err := drainFault(fi)
	if !errors.Is(err, ErrInjected) || n != 4 {
		t.Fatalf("close fault: n=%d err=%v", n, err)
	}
}

func TestFaultProbabilisticDeterminism(t *testing.T) {
	f := Fault{Prob: 0.3, Seed: 42}
	a, aerr := drainFault(NewFaultTable(faultTable(t), f).Iterator())
	b, berr := drainFault(NewFaultTable(faultTable(t), f).Iterator())
	if a != b || (aerr == nil) != (berr == nil) {
		t.Errorf("same seed must fail identically: (%d,%v) vs (%d,%v)", a, aerr, b, berr)
	}
	// Prob 1 always fails on the first Next.
	n, err := drainFault(NewFaultTable(faultTable(t), Fault{Prob: 1, Seed: 7}).Iterator())
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Errorf("prob=1: n=%d err=%v", n, err)
	}
}

func TestFaultCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	fi := NewFaultTable(faultTable(t), Fault{FailNext: true, Err: sentinel}).Iterator()
	_, err := drainFault(fi)
	if !errors.Is(err, sentinel) {
		t.Fatalf("custom error not propagated: %v", err)
	}
}

func TestFaultIteratorHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fi := NewFaultTable(faultTable(t), Fault{}).Iterator()
	if err := fi.Open(resource.NewContext(ctx, nil)); err == nil {
		t.Fatal("open under a cancelled context must fail")
	}
}

func TestFaultReOpenResets(t *testing.T) {
	fi := NewFaultTable(faultTable(t), Fault{FailNext: true, FailAfter: 3}).Iterator()
	n1, err1 := drainFault(fi)
	fi.Close()
	n2, err2 := drainFault(fi)
	fi.Close()
	if n1 != n2 || (err1 == nil) != (err2 == nil) {
		t.Errorf("re-open must reset the row counter: (%d,%v) vs (%d,%v)", n1, err1, n2, err2)
	}
	if !fi.Balanced() {
		t.Error("re-open cycles must stay balanced")
	}
}
