// Package storage provides the in-memory storage substrate the physical
// executor and optimizer run on: tables with hash and ordered indexes, a
// catalog with per-column statistics, and the index-lookup access path
// that Example 1's cost argument relies on ("assume that these keys have
// indexes").
package storage

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"freejoin/internal/relation"
)

// statsEpoch is the process-wide statistics-epoch source. Every catalog
// draws its epoch values from this single counter, so an epoch value is
// never reused — not within one catalog, and not across catalogs either.
// That matters because the plan cache is process-wide: a shell `restore`
// swaps in a brand-new catalog, and if epochs restarted at zero the new
// catalog could alias a cached plan optimized for the old one.
var statsEpoch atomic.Uint64

// Table is a named relation plus its indexes and statistics. The
// relation itself is immutable once the table is built; the mutable
// side state (index maps, the lazily memoized statistics, the catalog
// hook) is guarded by mu so a query server can plan and execute against
// a table while another session builds an index on it.
type Table struct {
	name string
	rel  *relation.Relation

	mu      sync.RWMutex
	hash    map[string]*HashIndex    // by column name
	ordered map[string]*OrderedIndex // by column name
	stats   *TableStats

	// onChange is set when the table joins a catalog; it bumps the
	// catalog's stats epoch whenever the table's planning-relevant state
	// changes (new indexes change the available access paths).
	onChange func()
}

// NewTable wraps a relation as a table. The relation is owned by the
// table afterwards: callers must not append to it (indexes and stats are
// built once).
func NewTable(name string, rel *relation.Relation) *Table {
	return &Table{
		name:    name,
		rel:     rel,
		hash:    map[string]*HashIndex{},
		ordered: map[string]*OrderedIndex{},
	}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Relation returns the underlying relation.
func (t *Table) Relation() *relation.Relation { return t.rel }

// Scheme returns the table's scheme.
func (t *Table) Scheme() *relation.Scheme { return t.rel.Scheme() }

// changed notifies the owning catalog (if any) that planning-relevant
// table state changed.
func (t *Table) changed() {
	t.mu.RLock()
	fn := t.onChange
	t.mu.RUnlock()
	if fn != nil {
		fn()
	}
}

// setOnChange installs the catalog hook (under the table lock, so a
// concurrent index build observes either the old or the new hook, not a
// torn write).
func (t *Table) setOnChange(fn func()) {
	t.mu.Lock()
	t.onChange = fn
	t.mu.Unlock()
}

// colIndex resolves a column name (unqualified) to its position.
func (t *Table) colIndex(col string) (int, error) {
	i := t.rel.Scheme().IndexOf(relation.Attr{Rel: t.name, Name: col})
	if i < 0 {
		return 0, fmt.Errorf("storage: table %s has no column %s", t.name, col)
	}
	return i, nil
}

// BuildHashIndex builds (or rebuilds) a hash index on the column. Null
// keys are not indexed — they can never equi-match.
func (t *Table) BuildHashIndex(col string) (*HashIndex, error) {
	pos, err := t.colIndex(col)
	if err != nil {
		return nil, err
	}
	idx := &HashIndex{table: t, col: col, pos: pos, buckets: make(map[string][]int, t.rel.Len())}
	var buf []byte
	intOnly := true
	for i := 0; i < t.rel.Len(); i++ {
		v := t.rel.RawRow(i)[pos]
		if v.IsNull() {
			continue
		}
		if v.Kind() != relation.KindInt {
			intOnly = false
		}
		buf = relation.AppendJoinKey(buf[:0], v)
		idx.buckets[string(buf)] = append(idx.buckets[string(buf)], i)
	}
	if intOnly && len(idx.buckets) > 0 {
		idx.buildIntTable()
	}
	t.mu.Lock()
	t.hash[col] = idx
	t.mu.Unlock()
	t.changed()
	return idx, nil
}

// HashIndexOn returns the hash index on col, if built.
func (t *Table) HashIndexOn(col string) (*HashIndex, bool) {
	t.mu.RLock()
	idx, ok := t.hash[col]
	t.mu.RUnlock()
	return idx, ok
}

// BuildOrderedIndex builds (or rebuilds) an ordered index on the column.
// Nulls sort first but are excluded from range scans.
func (t *Table) BuildOrderedIndex(col string) (*OrderedIndex, error) {
	pos, err := t.colIndex(col)
	if err != nil {
		return nil, err
	}
	idx := &OrderedIndex{table: t, col: col, pos: pos, order: make([]int, t.rel.Len())}
	for i := range idx.order {
		idx.order[i] = i
	}
	sort.SliceStable(idx.order, func(a, b int) bool {
		return t.rel.RawRow(idx.order[a])[pos].Compare(t.rel.RawRow(idx.order[b])[pos]) < 0
	})
	t.mu.Lock()
	t.ordered[col] = idx
	t.mu.Unlock()
	t.changed()
	return idx, nil
}

// OrderedIndexOn returns the ordered index on col, if built.
func (t *Table) OrderedIndexOn(col string) (*OrderedIndex, bool) {
	t.mu.RLock()
	idx, ok := t.ordered[col]
	t.mu.RUnlock()
	return idx, ok
}

// HashIndex maps join-key encodings to row positions. When every
// indexed key is an integer, a flat open-addressed probe table serves
// lookups without encoding (or allocating) a key, and usually off a
// single cache line.
type HashIndex struct {
	table   *Table
	col     string
	pos     int
	buckets map[string][]int
	// Int probe table, built iff every indexed key is an integer:
	// islots resolves a key to an (off, n) window of ipos, the flat row
	// positions grouped per key in ascending row order.
	islots []intSlot
	ipos   []int
	ishift uint
	imask  uint64
}

// intSlot is one probe-table slot; n == 0 marks an empty slot.
type intSlot struct {
	key    int64
	off, n int32
}

// intHashMult is the fibonacci multiply-shift constant (2^64 / phi).
const intHashMult = 0x9E3779B97F4A7C15

// buildIntTable lays the int keys out open-addressed with linear
// probing: a generic map probe costs a hashed bucket walk plus pointer
// chases per lookup, while a flat slot array resolves most probes from
// the one cache line the hash lands on. Sized to stay under 50% load.
func (ix *HashIndex) buildIntTable() {
	t := ix.table
	bits := 4
	for 1<<bits < 2*len(ix.buckets) {
		bits++
	}
	ix.islots = make([]intSlot, 1<<bits)
	ix.ishift = uint(64 - bits)
	ix.imask = uint64(len(ix.islots) - 1)
	for i := 0; i < t.rel.Len(); i++ {
		v := t.rel.RawRow(i)[ix.pos]
		if v.IsNull() {
			continue
		}
		ix.claimIntSlot(v.AsInt()).n++
	}
	var off int32
	for i := range ix.islots {
		if ix.islots[i].n > 0 {
			ix.islots[i].off = off
			off += ix.islots[i].n
		}
	}
	ix.ipos = make([]int, off)
	fill := make([]int32, len(ix.islots))
	for i := 0; i < t.rel.Len(); i++ {
		v := t.rel.RawRow(i)[ix.pos]
		if v.IsNull() {
			continue
		}
		si := ix.intSlotIdx(v.AsInt())
		s := &ix.islots[si]
		ix.ipos[int(s.off)+int(fill[si])] = i
		fill[si]++
	}
}

// claimIntSlot returns the slot for k, claiming an empty one on a miss
// (build-time only; every claim is followed by an n++ so empties stay
// distinguishable).
func (ix *HashIndex) claimIntSlot(k int64) *intSlot {
	i := (uint64(k) * intHashMult) >> ix.ishift
	for {
		s := &ix.islots[i]
		if s.n == 0 {
			s.key = k
			return s
		}
		if s.key == k {
			return s
		}
		i = (i + 1) & ix.imask
	}
}

// intSlotIdx returns the slot index holding k, or -1.
func (ix *HashIndex) intSlotIdx(k int64) int {
	i := (uint64(k) * intHashMult) >> ix.ishift
	for {
		s := &ix.islots[i]
		if s.n == 0 {
			return -1
		}
		if s.key == k {
			return int(i)
		}
		i = (i + 1) & ix.imask
	}
}

// lookupInt is the probe-table lookup for an int64 join key.
func (ix *HashIndex) lookupInt(k int64) []int {
	if si := ix.intSlotIdx(k); si >= 0 {
		s := &ix.islots[si]
		e := int(s.off) + int(s.n)
		return ix.ipos[s.off:e:e]
	}
	return nil
}

// IntSpan is a resolved probe: N matching rows starting at Off in the
// index's flat positions array (N == 0 means no match).
type IntSpan struct {
	Off, N int32
}

// LookupIntSpans resolves one probe per span slot — the key of row i is
// vals[i*stride+col] — against the int probe table, or reports false if
// the index has none. Batching the probes into one tight loop matters
// more than it looks: each probe is a cache miss on a table far larger
// than L2, and a load-only loop keeps many line fills in flight where
// one probe per emitted row serializes them (the reorder window fills
// with emission work between loads). It also pays the non-inlinable
// call overhead once per batch instead of once per row.
func (ix *HashIndex) LookupIntSpans(vals []relation.Value, stride, col int, spans []IntSpan) bool {
	if ix.islots == nil {
		return false
	}
	islots, shift, mask := ix.islots, ix.ishift, ix.imask
	for i := range spans {
		v := vals[i*stride+col]
		var k int64
		if v.Kind() == relation.KindInt {
			k = v.AsInt()
		} else if kk, ok := intJoinKey(v); ok {
			k = kk
		} else {
			spans[i] = IntSpan{}
			continue
		}
		si := (uint64(k) * intHashMult) >> shift
		for {
			s := &islots[si]
			if s.n == 0 {
				spans[i] = IntSpan{}
				break
			}
			if s.key == k {
				spans[i] = IntSpan{Off: s.off, N: s.n}
				break
			}
			si = (si + 1) & mask
		}
	}
	return true
}

// SpanRows returns the row positions a span resolved to.
func (ix *HashIndex) SpanRows(sp IntSpan) []int {
	e := int(sp.Off) + int(sp.N)
	return ix.ipos[sp.Off:e:e]
}

// Col returns the indexed column name.
func (ix *HashIndex) Col() string { return ix.col }

// Lookup returns the positions of rows whose key equals v (never matches
// null). Integer keys on an all-int index probe without allocating.
func (ix *HashIndex) Lookup(v relation.Value) []int {
	if v.IsNull() {
		return nil
	}
	if ix.islots != nil {
		if k, ok := intJoinKey(v); ok {
			return ix.lookupInt(k)
		}
		return nil // an all-int index holds no non-numeric keys
	}
	return ix.buckets[string(relation.AppendJoinKey(nil, v))]
}

// intJoinKey maps v to the int64 it equi-matches under the join-key
// encoding (an integral float matches the equal int), if any.
func intJoinKey(v relation.Value) (int64, bool) {
	switch v.Kind() {
	case relation.KindInt:
		return v.AsInt(), true
	case relation.KindFloat:
		f := v.AsFloat()
		if f == math.Trunc(f) && f >= -9.2e18 && f <= 9.2e18 {
			return int64(f), true
		}
	}
	return 0, false
}

// LookupKey is Lookup reusing buf as key-encoding scratch, for probe
// loops that cannot afford the per-call allocation; it returns the
// positions and the (possibly grown) buffer.
func (ix *HashIndex) LookupKey(buf []byte, v relation.Value) ([]int, []byte) {
	if v.IsNull() {
		return nil, buf
	}
	if ix.islots != nil {
		if k, ok := intJoinKey(v); ok {
			return ix.lookupInt(k), buf
		}
		return nil, buf
	}
	buf = relation.AppendJoinKey(buf[:0], v)
	return ix.buckets[string(buf)], buf
}

// Buckets returns the number of distinct keys.
func (ix *HashIndex) Buckets() int { return len(ix.buckets) }

// OrderedIndex keeps row positions sorted by a column, enabling range
// scans and ordered iteration (merge joins).
type OrderedIndex struct {
	table *Table
	col   string
	pos   int
	order []int
}

// Col returns the indexed column name.
func (ix *OrderedIndex) Col() string { return ix.col }

// Range returns the positions of rows with lo <= col <= hi (null bounds
// mean unbounded on that side); null column values never match.
func (ix *OrderedIndex) Range(lo, hi relation.Value) []int {
	rel := ix.table.rel
	// Lower bound: first non-null position >= lo.
	start := sort.Search(len(ix.order), func(i int) bool {
		v := rel.RawRow(ix.order[i])[ix.pos]
		if v.IsNull() {
			return false // nulls sort first; skip
		}
		if lo.IsNull() {
			return true
		}
		return v.Compare(lo) >= 0
	})
	end := sort.Search(len(ix.order), func(i int) bool {
		v := rel.RawRow(ix.order[i])[ix.pos]
		if v.IsNull() {
			return false
		}
		if hi.IsNull() {
			return false
		}
		return v.Compare(hi) > 0
	})
	if hi.IsNull() {
		end = len(ix.order)
	}
	if start >= end {
		return nil
	}
	return ix.order[start:end]
}

// TableStats carries the optimizer's statistics for one table.
type TableStats struct {
	Rows     int
	Distinct map[string]int // per-column number of distinct non-null values
	NullFrac map[string]float64
}

// Stats returns the table's statistics, computing them on first use.
// Concurrent first uses compute once; the memoized value is shared and
// must be treated as immutable.
func (t *Table) Stats() *TableStats {
	t.mu.RLock()
	st := t.stats
	t.mu.RUnlock()
	if st != nil {
		return st
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stats != nil {
		return t.stats
	}
	st = &TableStats{
		Rows:     t.rel.Len(),
		Distinct: map[string]int{},
		NullFrac: map[string]float64{},
	}
	sch := t.rel.Scheme()
	for c := 0; c < sch.Len(); c++ {
		seen := map[string]struct{}{}
		nulls := 0
		var buf []byte
		for i := 0; i < t.rel.Len(); i++ {
			v := t.rel.RawRow(i)[c]
			if v.IsNull() {
				nulls++
				continue
			}
			buf = relation.AppendJoinKey(buf[:0], v)
			seen[string(buf)] = struct{}{}
		}
		name := sch.At(c).Name
		st.Distinct[name] = len(seen)
		if t.rel.Len() > 0 {
			st.NullFrac[name] = float64(nulls) / float64(t.rel.Len())
		}
	}
	t.stats = st
	return st
}

// Catalog is a set of tables. It implements expr.Source (by table
// relation) and the optimizer's scheme/statistics lookups. All methods
// are safe for concurrent use: a query server shares one catalog across
// every session, so lookups race with Adds from other sessions.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	epoch  atomic.Uint64 // current stats epoch; see StatsEpoch
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	c := &Catalog{tables: map[string]*Table{}}
	c.bumpEpoch()
	return c
}

// StatsEpoch returns the catalog's current statistics epoch. The epoch
// advances whenever table membership or planning-relevant table state
// (indexes, hence statistics and access paths) changes, and the values
// are unique process-wide: a plan cached under one epoch is never valid
// under any other, so cache entries keyed by (fingerprint, epoch) go
// stale the instant the data they were costed against changes.
func (c *Catalog) StatsEpoch() uint64 { return c.epoch.Load() }

// bumpEpoch advances the catalog to a fresh, process-unique epoch.
func (c *Catalog) bumpEpoch() { c.epoch.Store(statsEpoch.Add(1)) }

// Add registers a table, replacing any previous table of the same name.
// The table becomes visible before the epoch bump: a concurrent planner
// that observes the new epoch is therefore guaranteed to also observe
// the new table, so a plan can go stale-but-cached only in the window
// the plan cache's insert-time epoch revalidation closes.
func (c *Catalog) Add(t *Table) {
	c.mu.Lock()
	c.tables[t.Name()] = t
	c.mu.Unlock()
	t.setOnChange(c.bumpEpoch)
	c.bumpEpoch()
}

// AddRelation wraps and registers a relation under its name.
func (c *Catalog) AddRelation(name string, rel *relation.Relation) *Table {
	t := NewTable(name, rel)
	c.Add(t)
	return t
}

// Table returns a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	t, ok := c.tables[name]
	c.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: unknown table %s", name)
	}
	return t, nil
}

// Tables lists the table names, sorted.
func (c *Catalog) Tables() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Relation implements expr.Source.
func (c *Catalog) Relation(name string) (*relation.Relation, error) {
	t, err := c.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Relation(), nil
}

// Scheme implements core.SchemeSource.
func (c *Catalog) Scheme(name string) (*relation.Scheme, error) {
	t, err := c.Table(name)
	if err != nil {
		return nil, err
	}
	return t.Scheme(), nil
}
