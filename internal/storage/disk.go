package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"freejoin/internal/relation"
)

// Binary catalog snapshots: a compact, versioned format for persisting a
// whole catalog (schemes, rows, and which indexes to rebuild) to disk.
// Layout (all integers little-endian):
//
//	magic "FJDB" | u16 version | u32 tableCount
//	per table: str name | u32 cols | per col (str rel, str attr)
//	           u32 hashIndexCount | per index str column
//	           u64 rowCount | rows…
//	per value: u8 kind | payload (bool: u8; int: i64; float: f64 bits;
//	           string: str; null: nothing)
//
// Strings are u32 length + bytes. Indexes are rebuilt on load (they are
// derived state, so snapshots stay small and versions stay simple).

const (
	diskMagic   = "FJDB"
	diskVersion = 1
)

// SaveCatalog writes a snapshot of every table to w.
func SaveCatalog(w io.Writer, c *Catalog) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(diskMagic); err != nil {
		return fmt.Errorf("storage: snapshot: %w", err)
	}
	names := c.Tables()
	if err := writeU16(bw, diskVersion); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		t, err := c.Table(name)
		if err != nil {
			return err
		}
		if err := writeString(bw, name); err != nil {
			return err
		}
		sch := t.Scheme()
		if err := writeU32(bw, uint32(sch.Len())); err != nil {
			return err
		}
		for i := 0; i < sch.Len(); i++ {
			a := sch.At(i)
			if err := writeString(bw, a.Rel); err != nil {
				return err
			}
			if err := writeString(bw, a.Name); err != nil {
				return err
			}
		}
		var idxCols []string
		for i := 0; i < sch.Len(); i++ {
			if _, ok := t.HashIndexOn(sch.At(i).Name); ok {
				idxCols = append(idxCols, sch.At(i).Name)
			}
		}
		if err := writeU32(bw, uint32(len(idxCols))); err != nil {
			return err
		}
		for _, col := range idxCols {
			if err := writeString(bw, col); err != nil {
				return err
			}
		}
		rel := t.Relation()
		if err := binary.Write(bw, binary.LittleEndian, uint64(rel.Len())); err != nil {
			return err
		}
		for i := 0; i < rel.Len(); i++ {
			for _, v := range rel.RawRow(i) {
				if err := writeValue(bw, v); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// LoadCatalog reads a snapshot into a fresh catalog, rebuilding the
// recorded hash indexes.
func LoadCatalog(r io.Reader) (*Catalog, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(diskMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != diskMagic {
		return nil, fmt.Errorf("storage: not a catalog snapshot")
	}
	version, err := readU16(br)
	if err != nil {
		return nil, err
	}
	if version != diskVersion {
		return nil, fmt.Errorf("storage: snapshot version %d not supported", version)
	}
	tables, err := readU32(br)
	if err != nil {
		return nil, err
	}
	cat := NewCatalog()
	for ti := uint32(0); ti < tables; ti++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		cols, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if cols == 0 || cols > 1<<16 {
			return nil, fmt.Errorf("storage: snapshot table %s has implausible column count %d", name, cols)
		}
		attrs := make([]relation.Attr, cols)
		for ci := range attrs {
			rel, err := readString(br)
			if err != nil {
				return nil, err
			}
			attr, err := readString(br)
			if err != nil {
				return nil, err
			}
			attrs[ci] = relation.Attr{Rel: rel, Name: attr}
		}
		scheme, err := relation.NewScheme(attrs...)
		if err != nil {
			return nil, fmt.Errorf("storage: snapshot table %s: %w", name, err)
		}
		idxCount, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if idxCount > cols {
			return nil, fmt.Errorf("storage: snapshot table %s has %d indexes over %d columns", name, idxCount, cols)
		}
		idxCols := make([]string, idxCount)
		for i := range idxCols {
			if idxCols[i], err = readString(br); err != nil {
				return nil, err
			}
		}
		var rowCount uint64
		if err := binary.Read(br, binary.LittleEndian, &rowCount); err != nil {
			return nil, fmt.Errorf("storage: snapshot row count: %w", err)
		}
		rel := relation.New(scheme)
		for ri := uint64(0); ri < rowCount; ri++ {
			row := make([]relation.Value, cols)
			for ci := range row {
				if row[ci], err = readValue(br); err != nil {
					return nil, fmt.Errorf("storage: snapshot table %s row %d: %w", name, ri, err)
				}
			}
			rel.AppendRaw(row)
		}
		t := cat.AddRelation(name, rel)
		for _, col := range idxCols {
			if _, err := t.BuildHashIndex(col); err != nil {
				return nil, fmt.Errorf("storage: snapshot index: %w", err)
			}
		}
	}
	return cat, nil
}

// SaveCatalogFile writes a snapshot to path.
func SaveCatalogFile(path string, c *Catalog) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	if err := SaveCatalog(f, c); err != nil {
		return err
	}
	return f.Sync()
}

// LoadCatalogFile reads a snapshot from path.
func LoadCatalogFile(path string) (*Catalog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	return LoadCatalog(f)
}

// value kind tags on disk.
const (
	diskNull uint8 = iota
	diskBool
	diskInt
	diskFloat
	diskString
)

func writeValue(w io.Writer, v relation.Value) error {
	switch v.Kind() {
	case relation.KindNull:
		return writeU8(w, diskNull)
	case relation.KindBool:
		if err := writeU8(w, diskBool); err != nil {
			return err
		}
		if v.AsBool() {
			return writeU8(w, 1)
		}
		return writeU8(w, 0)
	case relation.KindInt:
		if err := writeU8(w, diskInt); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, v.AsInt())
	case relation.KindFloat:
		if err := writeU8(w, diskFloat); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, math.Float64bits(v.AsFloat()))
	case relation.KindString:
		if err := writeU8(w, diskString); err != nil {
			return err
		}
		return writeString(w, v.AsString())
	default:
		return fmt.Errorf("storage: cannot serialize value kind %v", v.Kind())
	}
}

func readValue(r *bufio.Reader) (relation.Value, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return relation.Value{}, err
	}
	switch kind {
	case diskNull:
		return relation.Null(), nil
	case diskBool:
		b, err := r.ReadByte()
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Bool(b != 0), nil
	case diskInt:
		var i int64
		if err := binary.Read(r, binary.LittleEndian, &i); err != nil {
			return relation.Value{}, err
		}
		return relation.Int(i), nil
	case diskFloat:
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return relation.Value{}, err
		}
		return relation.Float(math.Float64frombits(bits)), nil
	case diskString:
		s, err := readString(r)
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Str(s), nil
	default:
		return relation.Value{}, fmt.Errorf("storage: unknown value tag %d", kind)
	}
}

func writeU8(w io.Writer, v uint8) error {
	_, err := w.Write([]byte{v})
	return err
}

func writeU16(w io.Writer, v uint16) error {
	return binary.Write(w, binary.LittleEndian, v)
}

func writeU32(w io.Writer, v uint32) error {
	return binary.Write(w, binary.LittleEndian, v)
}

func readU16(r io.Reader) (uint16, error) {
	var v uint16
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

// maxDiskString caps string lengths so corrupted snapshots cannot force
// huge allocations.
const maxDiskString = 1 << 24

func writeString(w io.Writer, s string) error {
	if len(s) > maxDiskString {
		return fmt.Errorf("storage: string too long to serialize (%d bytes)", len(s))
	}
	if err := writeU32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > maxDiskString {
		return "", fmt.Errorf("storage: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
