package storage

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"freejoin/internal/relation"
)

func snapshotCatalog(t *testing.T) *Catalog {
	t.Helper()
	cat := NewCatalog()
	cat.AddRelation("R", relation.FromRows("R", []string{"k", "s", "f", "b", "n"},
		[]any{1, "ada", 2.5, true, nil},
		[]any{2, "", math.Inf(1), false, nil},
		[]any{-9, "uni\x00code ✓", -0.0, true, 7},
	))
	cat.AddRelation("Empty", relation.New(relation.SchemeOf("Empty", "x")))
	tb, _ := cat.Table("R")
	if _, err := tb.BuildHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCatalogSnapshotRoundTrip(t *testing.T) {
	cat := snapshotCatalog(t)
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, cat); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCatalog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tables()) != 2 {
		t.Fatalf("tables = %v", back.Tables())
	}
	orig, _ := cat.Relation("R")
	got, err := back.Relation("R")
	if err != nil || !got.EqualBag(orig) {
		t.Fatalf("R did not round trip:\n%v\nvs\n%v", got, orig)
	}
	// Scheme column order preserved.
	if !got.Scheme().Equal(orig.Scheme()) {
		t.Error("scheme order lost")
	}
	// Hash index rebuilt.
	tb, _ := back.Table("R")
	if _, ok := tb.HashIndexOn("k"); !ok {
		t.Error("hash index not rebuilt")
	}
	// Empty table survives.
	e, err := back.Relation("Empty")
	if err != nil || e.Len() != 0 {
		t.Error("empty table lost")
	}
}

func TestCatalogSnapshotFiles(t *testing.T) {
	cat := snapshotCatalog(t)
	path := filepath.Join(t.TempDir(), "snap.fjdb")
	if err := SaveCatalogFile(path, cat); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCatalogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tables()) != 2 {
		t.Fatal("file round trip lost tables")
	}
	if _, err := LoadCatalogFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file must fail")
	}
	if err := SaveCatalogFile(filepath.Join(t.TempDir(), "no", "dir"), cat); err == nil {
		t.Error("unwritable path must fail")
	}
}

func TestLoadCatalogRejectsCorruption(t *testing.T) {
	cat := snapshotCatalog(t)
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, cat); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("NOPE1234"),
		"short header":  good[:5],
		"truncated":     good[:len(good)/2],
		"truncated row": good[:len(good)-3],
	}
	// Version bump.
	vb := append([]byte(nil), good...)
	vb[4] = 99
	cases["bad version"] = vb
	// Implausible column count.
	cc := append([]byte(nil), good...)
	// tableCount at offset 6..9; first table: name len at 10. Corrupt a
	// random interior byte instead of computing offsets: set many bytes
	// high to trip a plausibility check or a read failure.
	for i := 10; i < 30 && i < len(cc); i++ {
		cc[i] = 0xFF
	}
	cases["garbage body"] = cc

	for name, data := range cases {
		if _, err := LoadCatalog(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corruption must be rejected", name)
		}
	}
}

func TestSnapshotValueKinds(t *testing.T) {
	// NaN round trips bit-exactly via Float64bits.
	cat := NewCatalog()
	r := relation.New(relation.SchemeOf("T", "f"))
	r.AppendRaw([]relation.Value{relation.Float(math.NaN())})
	cat.AddRelation("T", r)
	var buf bytes.Buffer
	if err := SaveCatalog(&buf, cat); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCatalog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := back.Relation("T")
	if !math.IsNaN(rel.Row(0).At(0).AsFloat()) {
		t.Error("NaN lost")
	}
}
