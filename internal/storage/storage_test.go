package storage

import (
	"testing"

	"freejoin/internal/relation"
)

func sampleTable() *Table {
	rel := relation.FromRows("R", []string{"k", "v"},
		[]any{1, "a"}, []any{2, "b"}, []any{2, "c"}, []any{nil, "d"}, []any{5, "e"})
	return NewTable("R", rel)
}

func TestTableBasics(t *testing.T) {
	tb := sampleTable()
	if tb.Name() != "R" || tb.Relation().Len() != 5 {
		t.Fatal("table construction broken")
	}
	if tb.Scheme().Len() != 2 {
		t.Fatal("scheme broken")
	}
	if _, err := tb.colIndex("nope"); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestHashIndex(t *testing.T) {
	tb := sampleTable()
	if _, ok := tb.HashIndexOn("k"); ok {
		t.Fatal("index should not exist yet")
	}
	idx, err := tb.BuildHashIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := tb.HashIndexOn("k"); !ok || got != idx {
		t.Fatal("index not registered")
	}
	if idx.Col() != "k" {
		t.Error("Col broken")
	}
	if rows := idx.Lookup(relation.Int(2)); len(rows) != 2 {
		t.Errorf("Lookup(2) = %v", rows)
	}
	if rows := idx.Lookup(relation.Int(99)); rows != nil {
		t.Errorf("Lookup(99) = %v", rows)
	}
	if rows := idx.Lookup(relation.Null()); rows != nil {
		t.Error("null lookups never match")
	}
	// Int/float key canonicalization.
	if rows := idx.Lookup(relation.Float(2.0)); len(rows) != 2 {
		t.Errorf("Lookup(2.0) = %v (join-key canonicalization)", rows)
	}
	if idx.Buckets() != 3 { // keys 1, 2, 5 (null excluded)
		t.Errorf("Buckets = %d", idx.Buckets())
	}
	if _, err := tb.BuildHashIndex("nope"); err == nil {
		t.Error("indexing unknown column must fail")
	}
}

func TestOrderedIndex(t *testing.T) {
	tb := sampleTable()
	idx, err := tb.BuildOrderedIndex("k")
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := tb.OrderedIndexOn("k"); !ok || got != idx {
		t.Fatal("index not registered")
	}
	if idx.Col() != "k" {
		t.Error("Col broken")
	}
	keyAt := func(pos int) int64 {
		return tb.Relation().RawRow(pos)[0].AsInt()
	}
	rows := idx.Range(relation.Int(2), relation.Int(5))
	if len(rows) != 3 {
		t.Fatalf("Range(2,5) = %v", rows)
	}
	for _, p := range rows {
		if k := keyAt(p); k < 2 || k > 5 {
			t.Errorf("row %d key %d out of range", p, k)
		}
	}
	// Unbounded below.
	if rows := idx.Range(relation.Null(), relation.Int(1)); len(rows) != 1 || keyAt(rows[0]) != 1 {
		t.Errorf("Range(-inf,1) = %v", rows)
	}
	// Unbounded above.
	if rows := idx.Range(relation.Int(5), relation.Null()); len(rows) != 1 {
		t.Errorf("Range(5,inf) = %v", rows)
	}
	// Fully unbounded: all non-null rows.
	if rows := idx.Range(relation.Null(), relation.Null()); len(rows) != 4 {
		t.Errorf("Range(-inf,inf) = %v", rows)
	}
	// Empty range.
	if rows := idx.Range(relation.Int(7), relation.Int(9)); len(rows) != 0 {
		t.Errorf("Range(7,9) = %v", rows)
	}
	if _, err := tb.BuildOrderedIndex("nope"); err == nil {
		t.Error("indexing unknown column must fail")
	}
}

func TestStats(t *testing.T) {
	tb := sampleTable()
	st := tb.Stats()
	if st.Rows != 5 {
		t.Errorf("Rows = %d", st.Rows)
	}
	if st.Distinct["k"] != 3 || st.Distinct["v"] != 5 {
		t.Errorf("Distinct = %v", st.Distinct)
	}
	if st.NullFrac["k"] != 0.2 || st.NullFrac["v"] != 0 {
		t.Errorf("NullFrac = %v", st.NullFrac)
	}
	if tb.Stats() != st {
		t.Error("stats must be cached")
	}
	empty := NewTable("E", relation.New(relation.SchemeOf("E", "x")))
	est := empty.Stats()
	if est.Rows != 0 || est.NullFrac["x"] != 0 {
		t.Errorf("empty stats = %+v", est)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	tb := sampleTable()
	c.Add(tb)
	c.AddRelation("S", relation.FromRows("S", []string{"x"}, []any{1}))

	got, err := c.Table("R")
	if err != nil || got != tb {
		t.Fatal("Table lookup broken")
	}
	if _, err := c.Table("NOPE"); err == nil {
		t.Error("unknown table must fail")
	}
	names := c.Tables()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("Tables = %v", names)
	}
	rel, err := c.Relation("S")
	if err != nil || rel.Len() != 1 {
		t.Error("Relation broken")
	}
	if _, err := c.Relation("NOPE"); err == nil {
		t.Error("Relation of unknown table must fail")
	}
	sch, err := c.Scheme("R")
	if err != nil || sch.Len() != 2 {
		t.Error("Scheme broken")
	}
	if _, err := c.Scheme("NOPE"); err == nil {
		t.Error("Scheme of unknown table must fail")
	}
}
