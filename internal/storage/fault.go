// Fault injection: wrappers that make a table or iterator fail on
// demand — on Open, on Close, after N rows, or probabilistically from a
// seeded RNG. The executor's error-path contract test drives every
// operator over these wrappers to prove errors propagate, children are
// closed, and no goroutine or buffer leaks past a failure.
package storage

import (
	"errors"
	"fmt"
	"math/rand"

	"freejoin/internal/obs"
	"freejoin/internal/relation"
	"freejoin/internal/resource"
)

// ErrInjected is the default error produced by an injected fault.
var ErrInjected = errors.New("storage: injected fault")

// Fault configures where a FaultIterator fails. The zero value injects
// nothing.
type Fault struct {
	// FailOpen makes Open fail (the inner iterator is not opened).
	FailOpen bool
	// FailClose makes Close fail (after closing the inner iterator).
	FailClose bool
	// FailNext makes Next fail once FailAfter rows have been delivered;
	// FailAfter 0 fails the first Next.
	FailNext  bool
	FailAfter int
	// Prob injects a failure on each Next with this probability, drawn
	// from a rand.Rand seeded with Seed (deterministic per seed).
	Prob float64
	Seed int64
	// Err overrides the injected error; nil means ErrInjected.
	Err error
	// Panic makes a firing fault panic instead of returning an error —
	// the adversarial case the server's per-session panic isolation must
	// absorb: a panic out of an operator's Next mid-execution.
	Panic bool
}

// error mints the injected error; it is called exactly when a
// configured fault fires, so it doubles as the metrics hook. With Panic
// set it never returns.
func (f Fault) error() error {
	obs.FaultInjections.Inc()
	err := f.Err
	if err == nil {
		err = ErrInjected
	}
	if f.Panic {
		panic(fmt.Sprintf("storage: injected panic: %v", err))
	}
	return err
}

// faultInner is the iterator shape FaultIterator wraps and exposes. It is
// structurally identical to exec.Iterator (both use the shared
// resource.ExecContext), so a FaultIterator can stand anywhere in an
// operator tree without storage importing exec.
type faultInner interface {
	Scheme() *relation.Scheme
	Open(*resource.ExecContext) error
	Next() ([]relation.Value, bool, error)
	Close() error
}

// FaultIterator wraps an iterator and injects the configured fault. It
// also audits the caller's error contract: Open/Close call counts are
// recorded, and Next calls arriving after the iterator already returned
// an error are counted as violations instead of producing rows.
type FaultIterator struct {
	inner     faultInner
	fault     Fault
	rng       *rand.Rand
	opened    bool
	failed    bool
	rows      int
	succOpens int

	// OpenCalls and CloseCalls count lifecycle calls across re-opens.
	OpenCalls, CloseCalls int
	// NextAfterError counts contract violations: Next after an error.
	NextAfterError int
}

// NewFaultIterator wraps inner with the fault configuration.
func NewFaultIterator(inner faultInner, f Fault) *FaultIterator {
	fi := &FaultIterator{inner: inner, fault: f}
	if f.Prob > 0 {
		fi.rng = rand.New(rand.NewSource(f.Seed))
	}
	return fi
}

// Scheme implements the iterator contract.
func (fi *FaultIterator) Scheme() *relation.Scheme { return fi.inner.Scheme() }

// Open implements the iterator contract.
func (fi *FaultIterator) Open(ec *resource.ExecContext) error {
	fi.OpenCalls++
	fi.failed = false
	fi.rows = 0
	if fi.fault.FailOpen {
		fi.failed = true
		return fmt.Errorf("open %s: %w", fi.inner.Scheme(), fi.fault.error())
	}
	if err := fi.inner.Open(ec); err != nil {
		fi.failed = true
		return err
	}
	fi.opened = true
	fi.succOpens++
	return nil
}

// Next implements the iterator contract.
func (fi *FaultIterator) Next() ([]relation.Value, bool, error) {
	if fi.failed {
		fi.NextAfterError++
		return nil, false, fi.fault.error()
	}
	if fi.fault.FailNext && fi.rows >= fi.fault.FailAfter {
		fi.failed = true
		return nil, false, fmt.Errorf("next after %d rows: %w", fi.rows, fi.fault.error())
	}
	if fi.rng != nil && fi.rng.Float64() < fi.fault.Prob {
		fi.failed = true
		return nil, false, fmt.Errorf("next (probabilistic): %w", fi.fault.error())
	}
	row, ok, err := fi.inner.Next()
	if err != nil {
		fi.failed = true
		return nil, false, err
	}
	if ok {
		fi.rows++
	}
	return row, ok, nil
}

// Close implements the iterator contract. The inner iterator is closed
// even when the fault makes Close itself report failure.
func (fi *FaultIterator) Close() error {
	fi.CloseCalls++
	var err error
	if fi.opened {
		fi.opened = false
		err = fi.inner.Close()
	}
	if fi.fault.FailClose {
		return fmt.Errorf("close %s: %w", fi.inner.Scheme(), fi.fault.error())
	}
	return err
}

// Balanced reports whether every successful Open was matched by at least
// one Close (Close is idempotent, so extra Closes are fine; a missing
// one is a leak; a failed Open acquired nothing and needs none).
func (fi *FaultIterator) Balanced() bool { return !fi.opened && fi.CloseCalls >= fi.succOpens }

// tableIter is a minimal row iterator over a table, used by FaultTable so
// fault tests don't need the exec package.
type tableIter struct {
	rel *relation.Relation
	ec  *resource.ExecContext
	pos int
	buf []relation.Value
}

func (ti *tableIter) Scheme() *relation.Scheme { return ti.rel.Scheme() }

func (ti *tableIter) Open(ec *resource.ExecContext) error {
	ti.ec = ec
	ti.pos = 0
	return ti.ec.Err("faultscan")
}

func (ti *tableIter) Next() ([]relation.Value, bool, error) {
	if err := ti.ec.Err("faultscan"); err != nil {
		return nil, false, err
	}
	if ti.pos >= ti.rel.Len() {
		return nil, false, nil
	}
	if ti.buf == nil {
		ti.buf = make([]relation.Value, ti.rel.Scheme().Len())
	}
	// Serve a copy from a reused buffer: callers own the row until their
	// next Next and may mutate it; base storage must not alias it.
	copy(ti.buf, ti.rel.RawRow(ti.pos))
	ti.pos++
	return ti.buf, true, nil
}

func (ti *tableIter) Close() error { return nil }

// FaultTable pairs a table with a fault configuration; Iterator vends
// fault-injecting scans over the table's rows.
type FaultTable struct {
	table *Table
	fault Fault
}

// NewFaultTable wraps t so scans over it fail per f.
func NewFaultTable(t *Table, f Fault) *FaultTable { return &FaultTable{table: t, fault: f} }

// Table returns the wrapped table.
func (ft *FaultTable) Table() *Table { return ft.table }

// Iterator returns a new fault-injecting scan over the table.
func (ft *FaultTable) Iterator() *FaultIterator {
	return NewFaultIterator(&tableIter{rel: ft.table.Relation()}, ft.fault)
}
