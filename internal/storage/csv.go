package storage

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"freejoin/internal/relation"
)

// CSV import/export, so the shell and downstream users can move real
// data in and out. The first record is the header (column names); field
// types are inferred per value: integer, then float, then string; an
// empty field is null.

// ReadCSV reads a relation named relName from CSV data. The header row
// supplies the column names; every record must match its width.
func ReadCSV(r io.Reader, relName string) (*relation.Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("storage: csv header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("storage: csv header is empty")
	}
	seen := map[string]bool{}
	for _, col := range header {
		if col == "" {
			return nil, fmt.Errorf("storage: csv header has an empty column name")
		}
		if seen[col] {
			return nil, fmt.Errorf("storage: csv header repeats column %q", col)
		}
		seen[col] = true
	}
	rel := relation.New(relation.SchemeOf(relName, header...))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return rel, nil
		}
		if err != nil {
			return nil, fmt.Errorf("storage: csv: %w", err)
		}
		line++
		if len(rec) != len(header) {
			return nil, fmt.Errorf("storage: csv line %d has %d fields, want %d", line, len(rec), len(header))
		}
		row := make([]relation.Value, len(rec))
		for i, f := range rec {
			row[i] = inferValue(f)
		}
		rel.AppendRaw(row)
	}
}

// inferValue parses a CSV field: empty → null, then int, float, string.
func inferValue(f string) relation.Value {
	if f == "" {
		return relation.Null()
	}
	if i, err := strconv.ParseInt(f, 10, 64); err == nil {
		return relation.Int(i)
	}
	if fl, err := strconv.ParseFloat(f, 64); err == nil {
		return relation.Float(fl)
	}
	return relation.Str(f)
}

// WriteCSV writes the relation with a header of unqualified column names;
// nulls become empty fields.
func WriteCSV(w io.Writer, rel *relation.Relation) error {
	cw := csv.NewWriter(w)
	sch := rel.Scheme()
	header := make([]string, sch.Len())
	for i := 0; i < sch.Len(); i++ {
		header[i] = sch.At(i).Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("storage: csv write: %w", err)
	}
	rec := make([]string, sch.Len())
	for i := 0; i < rel.Len(); i++ {
		row := rel.RawRow(i)
		for c, v := range row {
			if v.IsNull() {
				rec[c] = ""
			} else {
				rec[c] = v.String()
			}
		}
		// encoding/csv writes a single empty field as a blank line, which
		// readers then skip; quote it explicitly so the row survives.
		if len(rec) == 1 && rec[0] == "" {
			cw.Flush()
			if err := cw.Error(); err != nil {
				return fmt.Errorf("storage: csv write: %w", err)
			}
			if _, err := io.WriteString(w, "\"\"\n"); err != nil {
				return fmt.Errorf("storage: csv write: %w", err)
			}
			continue
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("storage: csv write: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSVFile reads path into the catalog under name.
func (c *Catalog) LoadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	rel, err := ReadCSV(f, name)
	if err != nil {
		return nil, err
	}
	return c.AddRelation(name, rel), nil
}

// SaveCSVFile writes the named table to path.
func (c *Catalog) SaveCSVFile(name, path string) error {
	t, err := c.Table(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	return WriteCSV(f, t.Relation())
}
