package storage

import (
	"path/filepath"
	"strings"
	"testing"

	"freejoin/internal/relation"
)

func TestReadCSVInference(t *testing.T) {
	src := "id,score,name\n1,2.5,ada\n2,,bob\n,3.0,\n"
	rel, err := ReadCSV(strings.NewReader(src), "R")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 || rel.Scheme().Len() != 3 {
		t.Fatalf("shape: %v", rel)
	}
	r0 := rel.Row(0)
	if r0.At(0) != relation.Int(1) || r0.At(1) != relation.Float(2.5) || r0.At(2) != relation.Str("ada") {
		t.Errorf("row 0 = %v", r0)
	}
	if !rel.Row(1).At(1).IsNull() || !rel.Row(2).At(0).IsNull() || !rel.Row(2).At(2).IsNull() {
		t.Error("empty fields must be null")
	}
	if rel.Scheme().At(0) != relation.A("R", "id") {
		t.Error("columns must be qualified by the relation name")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "R"); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n"), "R"); err == nil {
		t.Error("ragged record must fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,\"b\n1,2\n"), "R"); err == nil {
		t.Error("malformed quoting must fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	rel := relation.FromRows("R", []string{"a", "b"},
		[]any{1, "x,with comma"}, []any{nil, "line\nbreak"}, []any{2.5, nil})
	var buf strings.Builder
	if err := WriteCSV(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()), "R")
	if err != nil {
		t.Fatal(err)
	}
	if !back.EqualBag(rel) {
		t.Fatalf("round trip mismatch:\nin:\n%v\nout:\n%v", rel, back)
	}
}

func TestCSVFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.csv")
	cat := NewCatalog()
	cat.AddRelation("R", relation.FromRows("R", []string{"a"}, []any{1}, []any{2}))
	if err := cat.SaveCSVFile("R", path); err != nil {
		t.Fatal(err)
	}
	cat2 := NewCatalog()
	tb, err := cat2.LoadCSVFile("S", path)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Relation().Len() != 2 {
		t.Fatalf("loaded %d rows", tb.Relation().Len())
	}
	if err := cat.SaveCSVFile("NOPE", path); err == nil {
		t.Error("saving unknown table must fail")
	}
	if _, err := cat2.LoadCSVFile("X", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("loading missing file must fail")
	}
	if err := cat.SaveCSVFile("R", filepath.Join(dir, "nodir", "x.csv")); err == nil {
		t.Error("unwritable path must fail")
	}
}
