package workload

import (
	"math/rand"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func TestRandomNiceGraphIsNice(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		g := RandomNiceGraph(rnd, 1+rnd.Intn(4), rnd.Intn(4))
		if ok, reason := g.IsNice(); !ok {
			t.Fatalf("trial %d: generated graph not nice (%s):\n%v", trial, reason, g)
		}
		if ok, reason := g.IsNiceDefinitional(); !ok {
			t.Fatalf("trial %d: definitional check fails (%s):\n%v", trial, reason, g)
		}
		// Strongness holds for every outer edge (comparisons are strong).
		for _, e := range g.Edges() {
			refs := relation.NewAttrSet()
			for a := range e.Pred.Attrs() {
				if a.Rel == e.V {
					refs.Add(a)
				}
			}
			if len(refs) > 0 && !predicate.StrongWRT(e.Pred, refs) {
				t.Fatalf("generated predicate not strong: %v", e)
			}
		}
	}
}

func TestRandomConnectedGraph(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	nice, notNice := 0, 0
	for trial := 0; trial < 400; trial++ {
		g := RandomConnectedGraph(rnd, 2+rnd.Intn(5))
		if !g.Connected() {
			t.Fatalf("trial %d: graph not connected:\n%v", trial, g)
		}
		if ok, _ := g.IsNice(); ok {
			nice++
		} else {
			notNice++
		}
	}
	if nice == 0 || notNice == 0 {
		t.Errorf("generator should produce both nice and non-nice graphs: %d/%d", nice, notNice)
	}
}

func TestRandomSemiGraphSatisfiesExtension(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		g := RandomSemiGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3), 1+rnd.Intn(3))
		if !g.HasSemiEdges() {
			t.Fatal("generator must add semijoin edges")
		}
		if ok, reason := g.IsNiceSemi(); !ok {
			t.Fatalf("trial %d: %s\n%v", trial, reason, g)
		}
		// Theorem 1's own checker must reject it (semijoin edges are out
		// of scope there).
		if ok, _ := g.IsNice(); ok {
			t.Fatal("IsNice must reject semijoin graphs")
		}
	}
}

func TestDeterministicTopologies(t *testing.T) {
	if g := JoinChainGraph(4); g.NumNodes() != 4 || len(g.Edges()) != 3 {
		t.Error("JoinChainGraph shape")
	}
	if g := OuterChainGraph(3); g.NumNodes() != 3 || len(g.Edges()) != 2 {
		t.Error("OuterChainGraph shape")
	} else if ok, _ := g.IsNice(); !ok {
		t.Error("outer chain must be nice")
	}
	if g := StarGraph(5); g.NumNodes() != 6 || len(g.Edges()) != 5 {
		t.Error("StarGraph shape")
	}
	g := CoreWithTreesGraph(3, 2)
	if g.NumNodes() != 5 || len(g.Edges()) != 4 {
		t.Error("CoreWithTreesGraph shape")
	}
	if ok, _ := g.IsNice(); !ok {
		t.Error("CoreWithTreesGraph must be nice")
	}
}

func TestRandomDBCoversNodes(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	g := RandomNiceGraph(rnd, 3, 2)
	db := RandomDB(rnd, g, 6)
	if len(db) != g.NumNodes() {
		t.Fatalf("db has %d relations, graph %d nodes", len(db), g.NumNodes())
	}
	for _, n := range g.Nodes() {
		r, err := expr.DB(db).Relation(n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Scheme().Len() != len(NodeColumns) {
			t.Errorf("relation %s scheme %v", n, r.Scheme())
		}
		if r.Len() > 6 {
			t.Errorf("relation %s too large: %d", n, r.Len())
		}
	}
}

func TestUniformRelation(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	r := UniformRelation(rnd, "R", 100, 10)
	if r.Len() != 100 {
		t.Fatalf("rows = %d", r.Len())
	}
	seen := map[int64]bool{}
	for i := 0; i < r.Len(); i++ {
		row := r.Row(i)
		k := row.At(0).AsInt()
		if seen[k] {
			t.Fatal("key column must be unique")
		}
		seen[k] = true
		if b := row.At(1).AsInt(); b < 0 || b >= 10 {
			t.Fatalf("b out of domain: %d", b)
		}
	}
}

func TestNodeNameOverflow(t *testing.T) {
	if nodeName(0) != "A" || nodeName(25) != "Z" || nodeName(26) != "N26" {
		t.Error("nodeName broken")
	}
}

func TestNonStrongPredicateShape(t *testing.T) {
	p := NonStrongPredicate("X", "Y")
	yAttrs := relation.NewAttrSet(relation.A("Y", "a"))
	if predicate.StrongWRT(p, yAttrs) {
		t.Error("NonStrongPredicate must not be strong wrt its null-supplied side")
	}
	xAttrs := relation.NewAttrSet(relation.A("X", "a"))
	if predicate.StrongWRT(p, xAttrs) {
		t.Error("disjunction with is-null is not strong wrt X either")
	}
}
