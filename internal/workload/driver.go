package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"freejoin/internal/expr"
)

// Outcome classifies one driver request, mirroring the tracer's
// accounting: every request is OK, Failed (errors and cancellations) or
// Rejected (shed by admission control).
type Outcome uint8

const (
	OutcomeOK Outcome = iota
	OutcomeFailed
	OutcomeRejected
)

// Driver runs a concurrent client workload and aggregates outcome
// counts and latency percentiles. Exec performs one request (client i,
// iteration j) against the system under test and classifies the result;
// it is called from Clients goroutines at once and must be safe for
// that.
type Driver struct {
	Clients   int // concurrent client goroutines
	PerClient int // requests each client issues
	Exec      func(client, iter int) Outcome
}

// Run drives the workload to completion and reports.
func (d *Driver) Run() Report {
	rep := Report{ByOutcome: make(map[Outcome]int)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < d.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < d.PerClient; i++ {
				t0 := time.Now()
				out := d.Exec(c, i)
				lat := time.Since(t0)
				mu.Lock()
				rep.Total++
				rep.ByOutcome[out]++
				rep.Latencies = append(rep.Latencies, lat)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	sort.Slice(rep.Latencies, func(i, j int) bool { return rep.Latencies[i] < rep.Latencies[j] })
	return rep
}

// Report aggregates a driver run: outcome counts and the sorted
// per-request latencies (all outcomes — a rejection's fast path is part
// of the served latency distribution).
type Report struct {
	Total     int
	ByOutcome map[Outcome]int
	Latencies []time.Duration // sorted ascending
}

// OK, Failed and Rejected are the outcome counts.
func (r Report) OK() int       { return r.ByOutcome[OutcomeOK] }
func (r Report) Failed() int   { return r.ByOutcome[OutcomeFailed] }
func (r Report) Rejected() int { return r.ByOutcome[OutcomeRejected] }

// Percentile returns the q-quantile latency (q in [0,1], e.g. 0.95)
// using the nearest-rank method on the sorted sample.
func (r Report) Percentile(q float64) time.Duration {
	n := len(r.Latencies)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return r.Latencies[0]
	}
	if q >= 1 {
		return r.Latencies[n-1]
	}
	rank := int(q*float64(n)+0.5) - 1 // nearest rank, 0-based
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return r.Latencies[rank]
}

// String renders the report in one line for logs and bench output.
func (r Report) String() string {
	return fmt.Sprintf("total=%d ok=%d failed=%d rejected=%d p50=%v p95=%v p99=%v",
		r.Total, r.OK(), r.Failed(), r.Rejected(),
		r.Percentile(0.50), r.Percentile(0.95), r.Percentile(0.99))
}

// QueryMix draws n query expression strings from the metamorphic
// generator: random nice graphs (join core plus outerjoin trees), each
// rendered as a random one of its implementing trees, so a mixed
// workload exercises different shapes that must agree on results. The
// returned names are every relation the queries mention (generator node
// names A, B, C, ...); callers load those tables before driving.
func QueryMix(rnd *rand.Rand, n int) (queries []string, names []string) {
	seen := make(map[string]bool)
	for len(queries) < n {
		g := RandomNiceGraph(rnd, 2+rnd.Intn(2), rnd.Intn(2))
		its, err := expr.EnumerateITs(g, true)
		if err != nil || len(its) == 0 {
			continue
		}
		q := its[rnd.Intn(len(its))]
		queries = append(queries, q.StringWithPreds())
		for _, name := range g.Nodes() {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Strings(names)
	return queries, names
}

// MixKind labels the traffic classes of the server soak workload.
type MixKind string

const (
	KindPreparedHit  MixKind = "prepared_hit"
	KindColdMiss     MixKind = "cold_miss"
	KindGovernorTrip MixKind = "governor_trip"
	KindSpilling     MixKind = "spilling"
	KindCancelled    MixKind = "cancelled"
)

// DefaultMix is the standard five-way traffic mix, round-robined across
// clients so every class runs concurrently with every other.
var DefaultMix = []MixKind{KindPreparedHit, KindColdMiss, KindGovernorTrip, KindSpilling, KindCancelled}

// KindFor assigns client c its traffic class from mix (round-robin).
func KindFor(mix []MixKind, c int) MixKind {
	if len(mix) == 0 {
		mix = DefaultMix
	}
	return mix[c%len(mix)]
}

// FormatMix renders a mix for logs.
func FormatMix(mix []MixKind) string {
	parts := make([]string, len(mix))
	for i, k := range mix {
		parts[i] = string(k)
	}
	return strings.Join(parts, ",")
}
