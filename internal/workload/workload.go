// Package workload generates randomized query graphs, expression trees
// and databases for the test suite and the benchmark harness: random nice
// graphs (join core + outward outerjoin trees), arbitrary connected
// graphs, chain/star topologies, and matching random databases.
package workload

import (
	"fmt"
	"math/rand"

	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// NodeColumns is the column list every generated ground relation carries.
var NodeColumns = []string{"a", "b"}

// RandomPredicate returns a comparison between random columns of u and v.
// Comparisons are always strong w.r.t. both sides; equality is biased so
// generated joins are neither empty nor full products.
func RandomPredicate(rnd *rand.Rand, u, v string) predicate.Predicate {
	ops := []predicate.CmpOp{predicate.EqOp, predicate.NeOp, predicate.LtOp,
		predicate.LeOp, predicate.GtOp, predicate.GeOp}
	op := predicate.EqOp
	if rnd.Intn(3) == 0 {
		op = ops[rnd.Intn(len(ops))]
	}
	uc := NodeColumns[rnd.Intn(len(NodeColumns))]
	vc := NodeColumns[rnd.Intn(len(NodeColumns))]
	return predicate.Cmp(op, predicate.Col(relation.A(u, uc)), predicate.Col(relation.A(v, vc)))
}

// NonStrongPredicate returns "u.a = v.a or v.a is null", which is not
// strong with respect to v (the Example 3 shape).
func NonStrongPredicate(u, v string) predicate.Predicate {
	return predicate.NewOr(
		predicate.Eq(relation.A(u, "a"), relation.A(v, "a")),
		predicate.NewIsNull(relation.A(v, "a")),
	)
}

// nodeName returns the name of generated node i: A, B, ..., Z, N26, N27...
func nodeName(i int) string {
	if i < 26 {
		return string(rune('A' + i))
	}
	return fmt.Sprintf("N%d", i)
}

// RandomNiceGraph builds a random graph satisfying the theorem's
// topology: a connected join core of coreNodes relations (random spanning
// tree plus optional extra join edges, possibly cyclic) with outerNodes
// further relations attached as outward-directed outerjoin trees. Every
// generated predicate is a comparison, hence strong. The result always
// passes IsNice.
func RandomNiceGraph(rnd *rand.Rand, coreNodes, outerNodes int) *graph.Graph {
	if coreNodes < 1 {
		coreNodes = 1
	}
	g := graph.New()
	g.MustAddNode(nodeName(0))
	// Join core: spanning tree + extras.
	for i := 1; i < coreNodes; i++ {
		u, v := nodeName(i), nodeName(rnd.Intn(i))
		mustAdd(g.AddJoinEdge(u, v, RandomPredicate(rnd, u, v)))
	}
	for k := rnd.Intn(coreNodes); k > 0; k-- {
		i, j := rnd.Intn(coreNodes), rnd.Intn(coreNodes)
		if i != j {
			// Ignore rejections from parallel-edge rules (collapse is fine).
			_ = g.AddJoinEdge(nodeName(i), nodeName(j), RandomPredicate(rnd, nodeName(i), nodeName(j)))
		}
	}
	// Outerjoin forest: each new node hangs off any existing node that is
	// either in the core or already an outerjoin-tree node, directed
	// outward. Attaching below a non-core node extends that tree.
	for i := coreNodes; i < coreNodes+outerNodes; i++ {
		u := nodeName(rnd.Intn(i)) // any existing node
		v := nodeName(i)
		mustAdd(g.AddOuterEdge(u, v, RandomPredicate(rnd, u, v)))
	}
	return g
}

// RandomTreeGraph is RandomNiceGraph restricted to tree topologies: the
// join core is a bare random spanning tree (no extra edges, so the whole
// graph has exactly n-1 edges) with the usual outward outerjoin forest.
// Every sample is nice AND acyclic — the shape the Yannakakis fast path
// accepts.
func RandomTreeGraph(rnd *rand.Rand, coreNodes, outerNodes int) *graph.Graph {
	if coreNodes < 1 {
		coreNodes = 1
	}
	g := graph.New()
	g.MustAddNode(nodeName(0))
	for i := 1; i < coreNodes; i++ {
		u, v := nodeName(i), nodeName(rnd.Intn(i))
		mustAdd(g.AddJoinEdge(u, v, RandomPredicate(rnd, u, v)))
	}
	for i := coreNodes; i < coreNodes+outerNodes; i++ {
		u := nodeName(rnd.Intn(i))
		v := nodeName(i)
		mustAdd(g.AddOuterEdge(u, v, RandomPredicate(rnd, u, v)))
	}
	return g
}

// RandomConnectedGraph builds an arbitrary connected graph: a spanning
// tree plus extra edges, each independently join or outerjoin with random
// orientation. Most larger samples are not nice.
func RandomConnectedGraph(rnd *rand.Rand, n int) *graph.Graph {
	g := graph.New()
	g.MustAddNode(nodeName(0))
	add := func(u, v string) {
		switch rnd.Intn(3) {
		case 0:
			_ = g.AddJoinEdge(u, v, RandomPredicate(rnd, u, v))
		case 1:
			_ = g.AddOuterEdge(u, v, RandomPredicate(rnd, u, v))
		default:
			_ = g.AddOuterEdge(v, u, RandomPredicate(rnd, v, u))
		}
	}
	for i := 1; i < n; i++ {
		add(nodeName(i), nodeName(rnd.Intn(i)))
	}
	for k := rnd.Intn(n); k > 0; k-- {
		i, j := rnd.Intn(n), rnd.Intn(n)
		if i != j {
			add(nodeName(i), nodeName(j))
		}
	}
	return g
}

// JoinChainGraph returns the pure join chain A - B - ... of n nodes.
func JoinChainGraph(n int) *graph.Graph {
	g := graph.New()
	g.MustAddNode(nodeName(0))
	for i := 1; i < n; i++ {
		u, v := nodeName(i-1), nodeName(i)
		mustAdd(g.AddJoinEdge(u, v, predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))))
	}
	return g
}

// OuterChainGraph returns the outerjoin chain A -> B -> ... of n nodes.
func OuterChainGraph(n int) *graph.Graph {
	g := graph.New()
	g.MustAddNode(nodeName(0))
	for i := 1; i < n; i++ {
		u, v := nodeName(i-1), nodeName(i)
		mustAdd(g.AddOuterEdge(u, v, predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))))
	}
	return g
}

// StarGraph returns a join star: center A joined to k leaves.
func StarGraph(k int) *graph.Graph {
	g := graph.New()
	g.MustAddNode(nodeName(0))
	for i := 1; i <= k; i++ {
		u, v := nodeName(0), nodeName(i)
		mustAdd(g.AddJoinEdge(u, v, predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))))
	}
	return g
}

// CoreWithTreesGraph returns a join chain core of coreN nodes with one
// outerjoin chain of outerN nodes hanging off the last core node — the
// Fig. 2 shape, deterministic (for benches).
func CoreWithTreesGraph(coreN, outerN int) *graph.Graph {
	g := graph.New()
	g.MustAddNode(nodeName(0))
	for i := 1; i < coreN; i++ {
		u, v := nodeName(i-1), nodeName(i)
		mustAdd(g.AddJoinEdge(u, v, predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))))
	}
	for i := coreN; i < coreN+outerN; i++ {
		u, v := nodeName(i-1), nodeName(i)
		mustAdd(g.AddOuterEdge(u, v, predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))))
	}
	return g
}

// RandomSemiGraph builds a random graph satisfying the §6.3 extension's
// conditions: a RandomNiceGraph core plus semiNodes pendant relations,
// each consumed by a semijoin edge whose source is any non-null-supplied
// existing node. Every sample passes IsNiceSemi.
func RandomSemiGraph(rnd *rand.Rand, coreNodes, outerNodes, semiNodes int) *graph.Graph {
	g := RandomNiceGraph(rnd, coreNodes, outerNodes)
	// Identify nodes that are not null-supplied (no incoming outer edge).
	nullSupplied := map[string]bool{}
	for _, e := range g.Edges() {
		if e.Kind == graph.OuterEdge {
			nullSupplied[e.V] = true
		}
	}
	var sources []string
	for _, n := range g.Nodes() {
		if !nullSupplied[n] {
			sources = append(sources, n)
		}
	}
	base := g.NumNodes()
	for i := 0; i < semiNodes; i++ {
		u := sources[rnd.Intn(len(sources))]
		v := nodeName(base + i)
		mustAdd(g.AddSemiEdge(u, v, RandomPredicate(rnd, u, v)))
	}
	return g
}

// RandomDB builds a database for a graph: every node receives a relation
// over NodeColumns with up to maxRows rows of small-domain integers and
// occasional nulls (domain smallness forces join matches).
func RandomDB(rnd *rand.Rand, g *graph.Graph, maxRows int) expr.DB {
	db := expr.DB{}
	for _, n := range g.Nodes() {
		db[n] = RandomRelation(rnd, n, maxRows)
	}
	return db
}

// RandomRelation builds one random relation over NodeColumns.
func RandomRelation(rnd *rand.Rand, name string, maxRows int) *relation.Relation {
	r := relation.New(relation.SchemeOf(name, NodeColumns...))
	rows := rnd.Intn(maxRows + 1)
	for i := 0; i < rows; i++ {
		vals := make([]relation.Value, len(NodeColumns))
		for j := range vals {
			if rnd.Intn(7) == 0 {
				vals[j] = relation.Null()
			} else {
				vals[j] = relation.Int(int64(rnd.Intn(4)))
			}
		}
		r.AppendRaw(vals)
	}
	return r
}

// DanglingDB builds a database where, per relation, a configurable
// fraction of rows dangles: their values draw from a per-relation
// disjoint high domain no equality against any other relation can reach,
// so every equijoin drops them (outerjoins pad them). The surviving
// joinable rows are skewed toward a hot value. frac maps a relation name
// to its dangling fraction in [0, 1]; names missing from the map use
// def. The shape is the Yannakakis stress case — most of every input is
// dead weight a full reducer deletes before any join materializes.
func DanglingDB(rnd *rand.Rand, g *graph.Graph, maxRows int, def float64, frac map[string]float64) expr.DB {
	db := expr.DB{}
	for i, n := range g.Nodes() {
		f, ok := frac[n]
		if !ok {
			f = def
		}
		db[n] = DanglingRelation(rnd, n, maxRows, f, int64(1000*(i+1)))
	}
	return db
}

// RandomDanglingDB is DanglingDB with one uniform dangling fraction.
func RandomDanglingDB(rnd *rand.Rand, g *graph.Graph, maxRows int, frac float64) expr.DB {
	return DanglingDB(rnd, g, maxRows, frac, nil)
}

// DanglingRelation builds one relation over NodeColumns with up to
// maxRows rows of which ~frac dangle. A dangling row's columns all come
// from [offset, offset+32) — callers give each relation a disjoint
// offset (well above the joinable domain) so dangling rows match nothing
// anywhere under equality. Joinable rows use the usual small domain with
// occasional nulls, skewed so about half land on the hot value 0.
func DanglingRelation(rnd *rand.Rand, name string, maxRows int, frac float64, offset int64) *relation.Relation {
	r := relation.New(relation.SchemeOf(name, NodeColumns...))
	rows := rnd.Intn(maxRows + 1)
	for i := 0; i < rows; i++ {
		dangling := rnd.Float64() < frac
		vals := make([]relation.Value, len(NodeColumns))
		for j := range vals {
			switch {
			case dangling:
				vals[j] = relation.Int(offset + rnd.Int63n(32))
			case rnd.Intn(7) == 0:
				vals[j] = relation.Null()
			case rnd.Intn(2) == 0:
				vals[j] = relation.Int(0) // hot value: skew
			default:
				vals[j] = relation.Int(int64(rnd.Intn(4)))
			}
		}
		r.AppendRaw(vals)
	}
	return r
}

// UniformRelation builds a relation of exactly n rows with key column "a"
// holding 0..n-1 and "b" holding values uniform in [0, domain). It is the
// deterministic table used by the benchmark harness.
func UniformRelation(rnd *rand.Rand, name string, n int, domain int64) *relation.Relation {
	r := relation.New(relation.SchemeOf(name, NodeColumns...))
	for i := 0; i < n; i++ {
		r.AppendRaw([]relation.Value{
			relation.Int(int64(i)),
			relation.Int(rnd.Int63n(domain)),
		})
	}
	return r
}

func mustAdd(err error) {
	if err != nil {
		panic(err)
	}
}
