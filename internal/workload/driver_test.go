package workload

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"freejoin/internal/expr"
	"freejoin/internal/parse"
)

func TestDriverCountsAndConcurrency(t *testing.T) {
	var calls atomic.Int64
	var peak atomic.Int64
	var inFlight atomic.Int64
	d := &Driver{
		Clients:   8,
		PerClient: 25,
		Exec: func(client, iter int) Outcome {
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			calls.Add(1)
			switch (client + iter) % 3 {
			case 0:
				return OutcomeOK
			case 1:
				return OutcomeFailed
			default:
				return OutcomeRejected
			}
		},
	}
	rep := d.Run()
	if calls.Load() != 200 || rep.Total != 200 {
		t.Fatalf("calls = %d, total = %d", calls.Load(), rep.Total)
	}
	if rep.OK()+rep.Failed()+rep.Rejected() != rep.Total {
		t.Fatalf("outcomes do not reconcile: %s", rep)
	}
	if len(rep.Latencies) != 200 {
		t.Fatalf("latencies = %d", len(rep.Latencies))
	}
	if peak.Load() < 2 {
		t.Fatalf("clients never overlapped (peak %d)", peak.Load())
	}
}

func TestReportPercentiles(t *testing.T) {
	rep := Report{ByOutcome: map[Outcome]int{}}
	for i := 1; i <= 100; i++ {
		rep.Latencies = append(rep.Latencies, time.Duration(i)*time.Millisecond)
	}
	rep.Total = 100
	if p := rep.Percentile(0.50); p != 50*time.Millisecond {
		t.Errorf("p50 = %v", p)
	}
	if p := rep.Percentile(0.95); p != 95*time.Millisecond {
		t.Errorf("p95 = %v", p)
	}
	if p := rep.Percentile(0.99); p != 99*time.Millisecond {
		t.Errorf("p99 = %v", p)
	}
	if p := rep.Percentile(1); p != 100*time.Millisecond {
		t.Errorf("p100 = %v", p)
	}
	if p := rep.Percentile(0); p != 1*time.Millisecond {
		t.Errorf("p0 = %v", p)
	}
	if p := (Report{}).Percentile(0.5); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
}

// Every generated query string must parse back (the server protocol is
// text) and only mention tables in the returned name set.
func TestQueryMixRoundTrips(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	queries, names := QueryMix(rnd, 20)
	if len(queries) != 20 || len(names) == 0 {
		t.Fatalf("mix = %d queries over %d names", len(queries), len(names))
	}
	known := make(map[string]bool)
	for _, n := range names {
		known[n] = true
	}
	for _, q := range queries {
		node, err := parse.Expr(q)
		if err != nil {
			t.Fatalf("generated query does not parse: %q: %v", q, err)
		}
		g, err := expr.GraphOf(node)
		if err != nil {
			t.Fatalf("no graph for %q: %v", q, err)
		}
		for _, n := range g.Nodes() {
			if !known[n] {
				t.Fatalf("query %q uses table %q missing from names %v", q, n, names)
			}
		}
	}
}

func TestKindFor(t *testing.T) {
	if k := KindFor(nil, 0); k != KindPreparedHit {
		t.Fatalf("default mix first = %v", k)
	}
	if k := KindFor(DefaultMix, 7); k != DefaultMix[7%len(DefaultMix)] {
		t.Fatalf("round robin broken: %v", k)
	}
}
