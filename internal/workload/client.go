package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"
)

// Resp is the client-side decoding of the server's one-line JSON
// response. It is deliberately a wire-level type (json tags matching
// the protocol), not a reuse of the server's internal struct: the
// client depends on the protocol contract only, and the package stays
// importable from the server's own tests.
type Resp struct {
	OK           bool   `json:"ok"`
	Output       string `json:"output"`
	Rows         int64  `json:"rows"`
	Tuples       int64  `json:"tuples"`
	Cache        string `json:"cache"`
	Plan         string `json:"plan"`
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// The typed-retryable response codes: the server refused these requests
// before executing them, so a retry can never double-apply.
const (
	CodeAdmissionRejected = "admission_rejected"
	CodeRetryAfter        = "retry_after"
)

// Client is a retrying line/JSON protocol client for the query server,
// encoding the retry contract the chaos soak verifies:
//
//   - Typed-retryable responses (admission_rejected, retry_after) are
//     retried for any command: the server rejected before executing, so
//     a retry can never double-apply. The retry_after_ms hint floors
//     the backoff sleep.
//   - Connection errors with zero response bytes are retried only for
//     idempotent commands — the request may have executed with its
//     answer lost, which only a read can tolerate.
//   - A connection error after the first response byte is never
//     retried: the command ran and its outcome is unknown.
//
// Backoff is decorrelated jitter (sleep drawn from [base, 3·prev],
// capped), bounded by both MaxAttempts and the total sleep RetryBudget,
// so a dying server sheds clients instead of accumulating them.
//
// A Client owns one connection and is not safe for concurrent use; the
// soak gives each goroutine its own.
type Client struct {
	Addr string

	MaxAttempts int           // tries per request (0 → 4)
	RetryBudget time.Duration // total backoff sleep per request (0 → 1s)
	BaseBackoff time.Duration // backoff lower bound (0 → 2ms)
	MaxBackoff  time.Duration // backoff upper bound (0 → 250ms)
	DialTimeout time.Duration // per-dial bound (0 → 5s)
	Rand        *rand.Rand    // jitter source (nil → seeded from Addr len; set for determinism)

	// Retries counts backoff retries issued (observability for tests).
	Retries int

	conn net.Conn
	r    *bufio.Reader
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 4
	}
	return c.MaxAttempts
}

func (c *Client) retryBudget() time.Duration {
	if c.RetryBudget <= 0 {
		return time.Second
	}
	return c.RetryBudget
}

func (c *Client) baseBackoff() time.Duration {
	if c.BaseBackoff <= 0 {
		return 2 * time.Millisecond
	}
	return c.BaseBackoff
}

func (c *Client) maxBackoff() time.Duration {
	if c.MaxBackoff <= 0 {
		return 250 * time.Millisecond
	}
	return c.MaxBackoff
}

func (c *Client) rng() *rand.Rand {
	if c.Rand == nil {
		c.Rand = rand.New(rand.NewSource(int64(len(c.Addr)) + 1))
	}
	return c.Rand
}

// Close releases the client's connection. Safe on an unconnected client.
func (c *Client) Close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.r = nil
	}
}

// connect dials and consumes the server hello line.
func (c *Client) connect() error {
	if c.conn != nil {
		return nil
	}
	dt := c.DialTimeout
	if dt <= 0 {
		dt = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.Addr, dt)
	if err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	if _, err := r.ReadString('\n'); err != nil {
		conn.Close()
		return fmt.Errorf("reading hello: %w", err)
	}
	c.conn, c.r = conn, r
	return nil
}

// retryableCode reports whether a typed response code means "the server
// refused before executing — safe to retry anything".
func retryableCode(code string) bool {
	return code == CodeAdmissionRejected || code == CodeRetryAfter
}

// try sends one request and reads one response.
// sent=false means the request never reached a connection (dial
// failure); gotBytes reports whether any response bytes arrived before
// a read error.
func (c *Client) try(line string) (resp Resp, sent, gotBytes bool, err error) {
	if err := c.connect(); err != nil {
		return Resp{}, false, false, err
	}
	if _, err := c.conn.Write([]byte(line + "\n")); err != nil {
		c.Close()
		return Resp{}, true, false, err
	}
	raw, err := c.r.ReadString('\n')
	if err != nil {
		c.Close()
		return Resp{}, true, len(raw) > 0, err
	}
	if err := json.Unmarshal([]byte(raw), &resp); err != nil {
		// A truncated or garbled response line: the command ran but its
		// answer is unreadable — same class as a post-first-byte reset.
		c.Close()
		return Resp{}, true, true, fmt.Errorf("garbled response: %w", err)
	}
	return resp, true, true, nil
}

// Do runs one command with the retry contract above. idempotent marks
// commands safe to re-execute (reads: query, execute, explain, stats).
// The last response observed is returned with the terminal error, so
// callers can still read its typed code.
func (c *Client) Do(line string, idempotent bool) (Resp, error) {
	prev := c.baseBackoff()
	var slept time.Duration
	var lastResp Resp
	var lastErr error
	for attempt := 1; ; attempt++ {
		resp, sent, gotBytes, err := c.try(line)
		switch {
		case err == nil && !retryableCode(resp.Code):
			return resp, nil // served (success or non-retryable typed error)
		case err == nil:
			lastResp, lastErr = resp, fmt.Errorf("server rejected: %s (%s)", resp.Error, resp.Code)
		case !sent:
			lastResp, lastErr = Resp{}, fmt.Errorf("connect %s: %w", c.Addr, err)
		case !gotBytes && idempotent:
			lastResp, lastErr = Resp{}, fmt.Errorf("connection lost before response: %w", err)
		default:
			// Response partially received, or a non-idempotent command's
			// connection died: the outcome is unknown — do not retry.
			return Resp{}, err
		}
		if attempt >= c.maxAttempts() {
			return lastResp, fmt.Errorf("giving up after %d attempts: %w", attempt, lastErr)
		}
		sleep := c.backoff(&prev, lastResp.RetryAfterMS)
		if slept+sleep > c.retryBudget() {
			return lastResp, fmt.Errorf("retry budget exhausted after %d attempts: %w", attempt, lastErr)
		}
		time.Sleep(sleep)
		slept += sleep
		c.Retries++
	}
}

// Query runs "query EXPR" (idempotent) with retries.
func (c *Client) Query(expr string) (Resp, error) {
	return c.Do("query "+strings.TrimSpace(expr), true)
}

// backoff draws the next decorrelated-jitter sleep: uniform in
// [base, 3·prev] capped at MaxBackoff, floored by the server's
// retry_after_ms hint when one was given.
func (c *Client) backoff(prev *time.Duration, hintMS int64) time.Duration {
	base := c.baseBackoff()
	hi := 3 * *prev
	if hi < base {
		hi = base
	}
	sleep := base
	if span := int64(hi - base); span > 0 {
		sleep = base + time.Duration(c.rng().Int63n(span+1))
	}
	if hint := time.Duration(hintMS) * time.Millisecond; hint > sleep {
		sleep = hint
	}
	if mx := c.maxBackoff(); sleep > mx {
		sleep = mx
	}
	*prev = sleep
	return sleep
}
