package exec

import (
	"time"

	"freejoin/internal/obs"
)

// SpanTree synthesizes per-operator trace spans from an executed stats
// tree, for export alongside the pipeline's phase spans. The stats tree
// records inclusive durations but no start timestamps, so the layout is
// reconstructed: the root span starts at start (normally the execute
// phase's start) and each node's children are laid out back to back
// from their parent's start — the paper's implementing tree rendered as
// a timeline. Because a parent's inclusive WallTime covers the child
// calls it triggered, parent spans contain their children up to timer
// granularity.
//
// Spans are returned in pre-order with Depth set to the node's depth,
// mirroring StatsNode.Walk, so callers (and the span/stats consistency
// property test) can zip the two trees. Every plan node yields exactly
// one span — operators that never executed (an index join's inner
// table) appear with zero duration — and a span carries an error
// exactly when its node recorded one.
func SpanTree(root *StatsNode, start time.Time) []obs.Span {
	if root == nil {
		return nil
	}
	var out []obs.Span
	var place func(n *StatsNode, at time.Time, depth int)
	place = func(n *StatsNode, at time.Time, depth int) {
		sp := obs.Span{
			Name:  n.Label,
			Cat:   "operator",
			Start: at,
			Dur:   n.Stats.WallTime,
			Depth: depth,
		}
		if n.Err != nil {
			sp.Err = n.Err.Error()
		}
		out = append(out, sp)
		t := at
		for _, c := range n.Children {
			place(c, t, depth+1)
			t = t.Add(c.Stats.WallTime)
		}
	}
	place(root, start, 0)
	return out
}
