package exec

import (
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// The shared operator inventory. Every physical operator is registered
// here exactly once, and the generic suites are all driven off this one
// map — the iterator contract (contract_test.go), the per-child
// fault-injection matrix, the failed-Open governor drain, and the
// cancelled-context fail-fast check (faults_test.go). Adding an
// operator means adding one entry; the suites pick it up without any
// further hand-maintained lists.

// opCase describes one operator: how many fault-injectable child
// positions it has and how to build it over those children. Position 0
// reads R, position 1 (binary operators) reads S. Leaf operators have
// no child position; their error paths are exercised by the context
// tests in faults_test.go.
type opCase struct {
	children int
	build    func(t *testing.T, ch []Iterator) Iterator
}

// operatorRegistry enumerates every physical operator over the shared
// contract tables (see contractTables). Each build must produce a
// non-empty result on clean children, so the contract suite can tell a
// working operator from one that silently emits nothing.
func operatorRegistry(t *testing.T, rt, st *storage.Table, c *Counters) map[string]opCase {
	t.Helper()
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	key := predicate.Eq(rk, sk)
	must := func(it Iterator, err error) Iterator {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return it
	}
	cases := map[string]opCase{
		"scan":         {0, func(t *testing.T, ch []Iterator) Iterator { return NewScan(rt, c) }},
		"relationscan": {0, func(t *testing.T, ch []Iterator) Iterator { return NewRelationScan(rt.Relation()) }},
		"indexscan": {0, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewIndexScan(st, "k", relation.Int(2), c))
		}},
		"filter": {1, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewFilter(ch[0],
				predicate.Cmp(predicate.GtOp, predicate.Col(rk), predicate.Const(relation.Int(1)))))
		}},
		"project": {1, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewProject(ch[0], []relation.Attr{rk}, false))
		}},
		"project-dedup": {1, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewProject(ch[0], []relation.Attr{rk}, true))
		}},
		"sort": {1, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewSort(ch[0], []relation.Attr{rk}))
		}},
		"nestedloop": {2, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewNestedLoopJoin(ch[0], ch[1], key, InnerMode))
		}},
		"indexjoin": {1, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewIndexJoin(ch[0], st, "k", rk, nil, InnerMode, c))
		}},
		"mergejoin": {2, func(t *testing.T, ch []Iterator) Iterator {
			// Merge join consumes sorted inputs; the sorts ride along so
			// the faults also traverse a materializing middleman.
			return must(NewMergeJoin(
				must(NewSort(ch[0], []relation.Attr{rk})),
				must(NewSort(ch[1], []relation.Attr{sk})), rk, sk, InnerMode))
		}},
		"parallelhashjoin": {2, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewParallelHashJoin(ch[0], ch[1], rk, sk, InnerMode, 3))
		}},
		"hashgoj": {2, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewHashGOJ(ch[0], ch[1],
				[]relation.Attr{rk}, []relation.Attr{sk}, []relation.Attr{rk, relation.A("R", "v")}))
		}},
		"semireduce": {2, func(t *testing.T, ch []Iterator) Iterator {
			// Pure equi predicate: the hash-filter fast path.
			return must(NewSemiReduce(ch[0], ch[1], key))
		}},
		"semireduce-scan": {2, func(t *testing.T, ch []Iterator) Iterator {
			// Non-equi predicate: the materialize-and-scan path.
			return must(NewSemiReduce(ch[0], ch[1],
				predicate.Cmp(predicate.LtOp, predicate.Col(rk), predicate.Col(sk))))
		}},
		"instrumented": {1, func(t *testing.T, ch []Iterator) Iterator {
			return Instrument(ch[0], "probe", c)
		}},
		"fault": {1, func(t *testing.T, ch []Iterator) Iterator {
			return storage.NewFaultIterator(ch[0], storage.Fault{})
		}},
	}
	for name, mode := range map[string]JoinMode{
		"hashjoin": InnerMode, "hashjoin-outer": LeftOuterMode, "hashjoin-semi": SemiMode, "hashjoin-anti": AntiMode,
	} {
		mode := mode
		cases[name] = opCase{2, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewHashJoin(ch[0], ch[1], []relation.Attr{rk}, []relation.Attr{sk}, nil, mode))
		}}
	}
	// The batch evaluators run through the same contract/fault/ownership
	// suites via their Iterator side (Next over the batch cursor). A tiny
	// batch size forces multiple refills over the 5-row inputs.
	const bsz = 2
	cases["batchscan"] = opCase{0, func(t *testing.T, ch []Iterator) Iterator { return NewBatchScan(rt, c, bsz) }}
	cases["batchrelationscan"] = opCase{0, func(t *testing.T, ch []Iterator) Iterator {
		return NewBatchRelationScan(rt.Relation(), bsz)
	}}
	cases["batchfilter"] = opCase{1, func(t *testing.T, ch []Iterator) Iterator {
		return must(NewBatchFilter(ch[0],
			predicate.Cmp(predicate.GtOp, predicate.Col(rk), predicate.Const(relation.Int(1))), bsz))
	}}
	cases["batchproject"] = opCase{1, func(t *testing.T, ch []Iterator) Iterator {
		return must(NewBatchProject(ch[0], []relation.Attr{rk}, false, bsz))
	}}
	cases["batchproject-dedup"] = opCase{1, func(t *testing.T, ch []Iterator) Iterator {
		return must(NewBatchProject(ch[0], []relation.Attr{rk}, true, bsz))
	}}
	cases["batchsemireduce"] = opCase{2, func(t *testing.T, ch []Iterator) Iterator {
		return must(NewBatchSemiReduce(ch[0], ch[1], key, bsz))
	}}
	cases["batchindexjoin"] = opCase{1, func(t *testing.T, ch []Iterator) Iterator {
		return must(NewBatchIndexJoin(ch[0], st, "k", rk, nil, InnerMode, c, bsz))
	}}
	for name, mode := range map[string]JoinMode{
		"batchhashjoin": InnerMode, "batchhashjoin-outer": LeftOuterMode,
		"batchhashjoin-semi": SemiMode, "batchhashjoin-anti": AntiMode,
	} {
		mode := mode
		cases[name] = opCase{2, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewBatchHashJoin(ch[0], ch[1], []relation.Attr{rk}, []relation.Attr{sk}, nil, mode, bsz))
		}}
	}
	for name, mode := range map[string]JoinMode{
		"batchnestedloop": InnerMode, "batchnestedloop-outer": LeftOuterMode,
		"batchnestedloop-semi": SemiMode, "batchnestedloop-anti": AntiMode,
	} {
		mode := mode
		cases[name] = opCase{2, func(t *testing.T, ch []Iterator) Iterator {
			return must(NewBatchNestedLoopJoin(ch[0], ch[1], key, mode, bsz))
		}}
	}
	return cases
}

// buildChildren vends fault-wrapped scans: position at gets the fault,
// the others are clean wrappers (so their lifecycle is audited too).
func buildChildren(rt, st *storage.Table, n, at int, f storage.Fault) ([]Iterator, []*storage.FaultIterator) {
	tables := []*storage.Table{rt, st}
	ch := make([]Iterator, n)
	fis := make([]*storage.FaultIterator, n)
	for i := 0; i < n; i++ {
		cfg := storage.Fault{}
		if i == at {
			cfg = f
		}
		fi := storage.NewFaultTable(tables[i], cfg).Iterator()
		ch[i], fis[i] = fi, fi
	}
	return ch, fis
}
