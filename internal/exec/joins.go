package exec

import (
	"errors"
	"fmt"

	"freejoin/internal/obs"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// JoinMode selects the join-family semantics of a physical join.
type JoinMode uint8

// Join modes. LeftOuterMode preserves the left (outer/probe) input.
const (
	InnerMode JoinMode = iota
	LeftOuterMode
	SemiMode
	AntiMode
)

// String returns the mode name.
func (m JoinMode) String() string {
	switch m {
	case InnerMode:
		return "inner"
	case LeftOuterMode:
		return "leftouter"
	case SemiMode:
		return "semi"
	case AntiMode:
		return "anti"
	default:
		return fmt.Sprintf("JoinMode(%d)", uint8(m))
	}
}

// outputScheme computes a join's output scheme for a mode: semi/anti
// output only left rows.
func outputScheme(l, r *relation.Scheme, mode JoinMode) (*relation.Scheme, error) {
	if mode == SemiMode || mode == AntiMode {
		return l, nil
	}
	sch, err := l.Concat(r)
	if err != nil {
		return nil, fmt.Errorf("exec: join schemes overlap: %w", err)
	}
	return sch, nil
}

// HashJoin joins two inputs on equi-key columns: the right input is built
// into a hash table at Open, the left probes. A residual predicate (the
// non-equi remainder, if any) filters matches.
//
// When the optimizer marks an index-based alternative available (see
// SetFallback), a memory-budget trip while building the hash table
// degrades gracefully: the partial build is released and the join
// delegates to the index strategy instead of aborting.
type HashJoin struct {
	left, right Iterator
	scheme      *relation.Scheme
	lkeys       []int
	rkeys       []int
	residual    *predicate.Bound
	mode        JoinMode
	mkFallback  func(left Iterator) (Iterator, error)

	ec        *ExecContext
	held      hold
	table     map[string][][]relation.Value
	tableRows int
	pending   [][]relation.Value
	rwidth    int
	delegate  Iterator // non-nil after a graceful degradation
}

// NewHashJoin builds a hash join on leftKeys = rightKeys (attribute lists
// of equal length). residual may be nil.
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []relation.Attr, residual predicate.Predicate, mode JoinMode) (*HashJoin, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: hash join needs matching non-empty key lists")
	}
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	h := &HashJoin{left: left, right: right, scheme: sch, mode: mode, rwidth: right.Scheme().Len()}
	for _, a := range leftKeys {
		p := left.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: hash join key %s not in left scheme", a)
		}
		h.lkeys = append(h.lkeys, p)
	}
	for _, a := range rightKeys {
		p := right.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: hash join key %s not in right scheme", a)
		}
		h.rkeys = append(h.rkeys, p)
	}
	if residual != nil {
		full, err := left.Scheme().Concat(right.Scheme())
		if err != nil {
			return nil, err
		}
		b, err := predicate.Bind(residual, full)
		if err != nil {
			return nil, fmt.Errorf("exec: hash join residual: %w", err)
		}
		h.residual = &b
	}
	return h, nil
}

// SetFallback registers a degradation path: when the hash-table build
// trips the memory budget, mk is invoked with the (not yet opened) left
// input and the resulting iterator — typically an IndexJoin over the
// same key — serves the join instead. The iterator must produce the same
// bag over the same output scheme.
func (h *HashJoin) SetFallback(mk func(left Iterator) (Iterator, error)) { h.mkFallback = mk }

// DegradedTo returns the substitute iterator after a graceful
// degradation, or nil when the hash strategy ran.
func (h *HashJoin) DegradedTo() Iterator { return h.delegate }

// Scheme implements Iterator.
func (h *HashJoin) Scheme() *relation.Scheme { return h.scheme }

// Open implements Iterator: builds the hash table from the right input.
func (h *HashJoin) Open(ec *ExecContext) error {
	h.held.release(h.ec) // re-Open without Close: drop any stale charge
	h.ec = ec
	h.delegate = nil
	if err := ec.Err("hashjoin"); err != nil {
		return err
	}
	rows, err := materialize(h.right, ec, "hashjoin", &h.held)
	if err != nil {
		h.held.release(ec)
		var re *ResourceError
		if h.mkFallback != nil && errors.As(err, &re) && re.Kind == MemoryExceeded {
			fb, ferr := h.mkFallback(h.left)
			if ferr != nil {
				return err // keep the original trip
			}
			if oerr := fb.Open(ec); oerr != nil {
				return oerr
			}
			ec.Governor().Note("hashjoin: memory budget trip, degraded to index strategy")
			obs.GovernorDegradations.Inc()
			h.delegate = fb
			return nil
		}
		return err
	}
	h.table = make(map[string][][]relation.Value, len(rows))
	h.tableRows = 0
	var buf []byte
build:
	for _, row := range rows {
		buf = buf[:0]
		for _, k := range h.rkeys {
			if row[k].IsNull() {
				continue build
			}
			buf = relation.AppendJoinKey(buf, row[k])
		}
		h.table[string(buf)] = append(h.table[string(buf)], row)
		h.tableRows++
	}
	h.pending = nil
	if err := h.left.Open(ec); err != nil {
		h.table = nil
		h.tableRows = 0
		h.held.release(ec)
		return err
	}
	return nil
}

// BufferedRows implements Buffered.
func (h *HashJoin) BufferedRows() int {
	if h.delegate != nil {
		if b, ok := h.delegate.(Buffered); ok {
			return b.BufferedRows()
		}
		return 0
	}
	return h.tableRows + len(h.pending)
}

// Next implements Iterator.
func (h *HashJoin) Next() ([]relation.Value, bool, error) {
	if h.delegate != nil {
		return h.delegate.Next()
	}
	for {
		if len(h.pending) > 0 {
			out := h.pending[0]
			h.pending = h.pending[1:]
			return out, true, nil
		}
		lrow, ok, err := h.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matches := h.probe(lrow)
		switch h.mode {
		case InnerMode, LeftOuterMode:
			for _, rrow := range matches {
				h.pending = append(h.pending, concatRows(lrow, rrow))
			}
			if len(matches) == 0 && h.mode == LeftOuterMode {
				return padRight(lrow, h.rwidth), true, nil
			}
		case SemiMode:
			if len(matches) > 0 {
				return lrow, true, nil
			}
		case AntiMode:
			if len(matches) == 0 {
				return lrow, true, nil
			}
		}
	}
}

// probe returns the right rows matching lrow (keys plus residual).
func (h *HashJoin) probe(lrow []relation.Value) [][]relation.Value {
	var buf []byte
	for _, k := range h.lkeys {
		if lrow[k].IsNull() {
			return nil
		}
		buf = relation.AppendJoinKey(buf, lrow[k])
	}
	candidates := h.table[string(buf)]
	if h.residual == nil {
		return candidates
	}
	var out [][]relation.Value
	for _, rrow := range candidates {
		if h.residual.Holds(concatRows(lrow, rrow)) {
			out = append(out, rrow)
		}
	}
	return out
}

// Close implements Iterator: the build table (and its governor charge) is
// released. After a degradation the substitute iterator is closed instead
// (it owns the left child).
func (h *HashJoin) Close() error {
	h.table = nil
	h.tableRows = 0
	h.pending = nil
	h.held.release(h.ec)
	if h.delegate != nil {
		// The delegate stays recorded (DegradedTo) until a re-Open resets
		// it; the substitute owns the left child, so it closes it.
		return h.delegate.Close()
	}
	return h.left.Close()
}

// NestedLoopJoin joins on an arbitrary predicate; the right input is
// materialized once at Open.
type NestedLoopJoin struct {
	left, right Iterator
	scheme      *relation.Scheme
	bound       predicate.Bound
	mode        JoinMode

	ec      *ExecContext
	held    hold
	rrows   [][]relation.Value
	rwidth  int
	pending [][]relation.Value
}

// NewNestedLoopJoin builds a nested-loop join with predicate p.
func NewNestedLoopJoin(left, right Iterator, p predicate.Predicate, mode JoinMode) (*NestedLoopJoin, error) {
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	full, err := left.Scheme().Concat(right.Scheme())
	if err != nil {
		return nil, err
	}
	b, err := predicate.Bind(p, full)
	if err != nil {
		return nil, fmt.Errorf("exec: nested-loop predicate: %w", err)
	}
	return &NestedLoopJoin{left: left, right: right, scheme: sch, bound: b,
		mode: mode, rwidth: right.Scheme().Len()}, nil
}

// Scheme implements Iterator.
func (n *NestedLoopJoin) Scheme() *relation.Scheme { return n.scheme }

// Open implements Iterator.
func (n *NestedLoopJoin) Open(ec *ExecContext) error {
	n.held.release(n.ec) // re-Open without Close: drop any stale charge
	n.ec = ec
	if err := ec.Err("nestedloop"); err != nil {
		return err
	}
	rows, err := materialize(n.right, ec, "nestedloop", &n.held)
	if err != nil {
		n.held.release(ec)
		return err
	}
	n.rrows = rows
	n.pending = nil
	if err := n.left.Open(ec); err != nil {
		n.rrows = nil
		n.held.release(ec)
		return err
	}
	return nil
}

// Next implements Iterator.
func (n *NestedLoopJoin) Next() ([]relation.Value, bool, error) {
	for {
		if len(n.pending) > 0 {
			out := n.pending[0]
			n.pending = n.pending[1:]
			return out, true, nil
		}
		lrow, ok, err := n.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matched := false
		for _, rrow := range n.rrows {
			full := concatRows(lrow, rrow)
			if !n.bound.Holds(full) {
				continue
			}
			matched = true
			switch n.mode {
			case InnerMode, LeftOuterMode:
				n.pending = append(n.pending, full)
			case SemiMode, AntiMode:
				// Existence decided; stop scanning.
			}
			if n.mode == SemiMode || n.mode == AntiMode {
				break
			}
		}
		switch n.mode {
		case LeftOuterMode:
			if !matched {
				return padRight(lrow, n.rwidth), true, nil
			}
		case SemiMode:
			if matched {
				return lrow, true, nil
			}
		case AntiMode:
			if !matched {
				return lrow, true, nil
			}
		}
	}
}

// BufferedRows implements Buffered.
func (n *NestedLoopJoin) BufferedRows() int { return len(n.rrows) + len(n.pending) }

// Close implements Iterator: the materialized inner input is released.
func (n *NestedLoopJoin) Close() error {
	n.rrows = nil
	n.pending = nil
	n.held.release(n.ec)
	return n.left.Close()
}

// IndexJoin drives the join from the left input and fetches matching
// inner rows through a hash index on a base table — the access path of
// Example 1's cheap plan. Each fetched inner row counts as one retrieved
// tuple.
type IndexJoin struct {
	left     Iterator
	inner    *storage.Table
	index    *storage.HashIndex
	outerKey int
	scheme   *relation.Scheme
	residual *predicate.Bound
	mode     JoinMode
	counters *Counters

	ec      *ExecContext
	pending [][]relation.Value
	iwidth  int
}

// NewIndexJoin probes inner's hash index on idxCol with the value of
// outerKey in each left row. residual may be nil.
func NewIndexJoin(left Iterator, inner *storage.Table, idxCol string, outerKey relation.Attr,
	residual predicate.Predicate, mode JoinMode, c *Counters) (*IndexJoin, error) {
	idx, ok := inner.HashIndexOn(idxCol)
	if !ok {
		return nil, fmt.Errorf("exec: table %s has no hash index on %s", inner.Name(), idxCol)
	}
	kp := left.Scheme().IndexOf(outerKey)
	if kp < 0 {
		return nil, fmt.Errorf("exec: outer key %s not in left scheme %s", outerKey, left.Scheme())
	}
	sch, err := outputScheme(left.Scheme(), inner.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	j := &IndexJoin{left: left, inner: inner, index: idx, outerKey: kp, scheme: sch,
		mode: mode, counters: c, iwidth: inner.Scheme().Len()}
	if residual != nil {
		full, err := left.Scheme().Concat(inner.Scheme())
		if err != nil {
			return nil, err
		}
		b, err := predicate.Bind(residual, full)
		if err != nil {
			return nil, fmt.Errorf("exec: index join residual: %w", err)
		}
		j.residual = &b
	}
	return j, nil
}

// Scheme implements Iterator.
func (j *IndexJoin) Scheme() *relation.Scheme { return j.scheme }

// Open implements Iterator.
func (j *IndexJoin) Open(ec *ExecContext) error {
	j.ec = ec
	if err := ec.Err("indexjoin"); err != nil {
		return err
	}
	j.pending = nil
	return j.left.Open(ec)
}

// Next implements Iterator.
func (j *IndexJoin) Next() ([]relation.Value, bool, error) {
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			return out, true, nil
		}
		lrow, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matched := false
		for _, pos := range j.index.Lookup(lrow[j.outerKey]) {
			irow := j.inner.Relation().RawRow(pos)
			if j.counters != nil {
				j.counters.IncTuples()
			}
			full := concatRows(lrow, irow)
			if j.residual != nil && !j.residual.Holds(full) {
				continue
			}
			matched = true
			if j.mode == InnerMode || j.mode == LeftOuterMode {
				j.pending = append(j.pending, full)
			} else {
				break
			}
		}
		switch j.mode {
		case LeftOuterMode:
			if !matched {
				return padRight(lrow, j.iwidth), true, nil
			}
		case SemiMode:
			if matched {
				return lrow, true, nil
			}
		case AntiMode:
			if !matched {
				return lrow, true, nil
			}
		}
	}
}

// BufferedRows implements Buffered (only the per-probe match buffer).
func (j *IndexJoin) BufferedRows() int { return len(j.pending) }

// Close implements Iterator.
func (j *IndexJoin) Close() error { j.pending = nil; return j.left.Close() }

// MergeJoin equi-joins two inputs sorted on their key columns. Inner and
// left-outer modes are supported; duplicates on both sides produce the
// full cross product of each matching group.
type MergeJoin struct {
	left, right Iterator
	scheme      *relation.Scheme
	lkey, rkey  int
	mode        JoinMode
	rwidth      int

	ec           *ExecContext
	held         hold
	lrows, rrows [][]relation.Value
	li, ri       int
	pending      [][]relation.Value
}

// NewMergeJoin joins inputs that must already be sorted ascending on
// leftKey / rightKey (wrap with NewSort otherwise).
func NewMergeJoin(left, right Iterator, leftKey, rightKey relation.Attr, mode JoinMode) (*MergeJoin, error) {
	if mode != InnerMode && mode != LeftOuterMode {
		return nil, fmt.Errorf("exec: merge join supports inner and leftouter modes, got %s", mode)
	}
	lk := left.Scheme().IndexOf(leftKey)
	rk := right.Scheme().IndexOf(rightKey)
	if lk < 0 || rk < 0 {
		return nil, fmt.Errorf("exec: merge join keys missing from schemes")
	}
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	return &MergeJoin{left: left, right: right, scheme: sch, lkey: lk, rkey: rk,
		mode: mode, rwidth: right.Scheme().Len()}, nil
}

// Scheme implements Iterator.
func (m *MergeJoin) Scheme() *relation.Scheme { return m.scheme }

// Open implements Iterator. Inputs are materialized: group-wise cross
// products need random access within runs.
func (m *MergeJoin) Open(ec *ExecContext) error {
	m.held.release(m.ec) // re-Open without Close: drop any stale charge
	m.ec = ec
	if err := ec.Err("mergejoin"); err != nil {
		return err
	}
	var err error
	if m.lrows, err = materialize(m.left, ec, "mergejoin", &m.held); err != nil {
		m.lrows = nil
		m.held.release(ec)
		return err
	}
	if m.rrows, err = materialize(m.right, ec, "mergejoin", &m.held); err != nil {
		m.lrows, m.rrows = nil, nil
		m.held.release(ec)
		return err
	}
	m.li, m.ri = 0, 0
	m.pending = nil
	return nil
}

// Next implements Iterator.
func (m *MergeJoin) Next() ([]relation.Value, bool, error) {
	for {
		if len(m.pending) > 0 {
			out := m.pending[0]
			m.pending = m.pending[1:]
			return out, true, nil
		}
		if m.li >= len(m.lrows) {
			return nil, false, nil
		}
		lrow := m.lrows[m.li]
		lv := lrow[m.lkey]
		if lv.IsNull() {
			// Null keys never match.
			m.li++
			if m.mode == LeftOuterMode {
				return padRight(lrow, m.rwidth), true, nil
			}
			continue
		}
		// Advance right past smaller (or null) keys.
		for m.ri < len(m.rrows) {
			rv := m.rrows[m.ri][m.rkey]
			if !rv.IsNull() && rv.Compare(lv) >= 0 {
				break
			}
			m.ri++
		}
		// Collect the right run equal to lv.
		matched := 0
		for k := m.ri; k < len(m.rrows); k++ {
			rv := m.rrows[k][m.rkey]
			if rv.IsNull() || rv.Compare(lv) != 0 {
				break
			}
			m.pending = append(m.pending, concatRows(lrow, m.rrows[k]))
			matched++
		}
		m.li++
		if matched == 0 && m.mode == LeftOuterMode {
			return padRight(lrow, m.rwidth), true, nil
		}
	}
}

// BufferedRows implements Buffered.
func (m *MergeJoin) BufferedRows() int { return len(m.lrows) + len(m.rrows) + len(m.pending) }

// Close implements Iterator: both materialized inputs (and their governor
// charge) are released.
func (m *MergeJoin) Close() error {
	m.lrows, m.rrows, m.pending = nil, nil, nil
	m.held.release(m.ec)
	return nil
}
