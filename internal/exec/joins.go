package exec

import (
	"bytes"
	"errors"
	"fmt"

	"freejoin/internal/exec/spill"
	"freejoin/internal/hashutil"
	"freejoin/internal/obs"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// JoinMode selects the join-family semantics of a physical join.
type JoinMode uint8

// Join modes. LeftOuterMode preserves the left (outer/probe) input.
const (
	InnerMode JoinMode = iota
	LeftOuterMode
	SemiMode
	AntiMode
)

// String returns the mode name.
func (m JoinMode) String() string {
	switch m {
	case InnerMode:
		return "inner"
	case LeftOuterMode:
		return "leftouter"
	case SemiMode:
		return "semi"
	case AntiMode:
		return "anti"
	default:
		return fmt.Sprintf("JoinMode(%d)", uint8(m))
	}
}

// outputScheme computes a join's output scheme for a mode: semi/anti
// output only left rows.
func outputScheme(l, r *relation.Scheme, mode JoinMode) (*relation.Scheme, error) {
	if mode == SemiMode || mode == AntiMode {
		return l, nil
	}
	sch, err := l.Concat(r)
	if err != nil {
		return nil, fmt.Errorf("exec: join schemes overlap: %w", err)
	}
	return sch, nil
}

// HashJoin joins two inputs on equi-key columns: the right input is built
// into a hash table at Open, the left probes. A residual predicate (the
// non-equi remainder, if any) filters matches.
//
// A memory-budget trip while building the hash table degrades
// gracefully instead of aborting. When spilling is enabled on the
// execution context, the join switches to a grace hash join: both
// inputs are hash-partitioned to disk and each partition pair is joined
// with an in-memory table, recursively re-partitioning pairs that still
// exceed the budget (see openGrace). Otherwise, when the optimizer
// marked an index-based alternative available (see SetFallback), the
// partial build is released and the join delegates to the index
// strategy.
type HashJoin struct {
	left, right Iterator
	scheme      *relation.Scheme
	lkeys       []int
	rkeys       []int
	residual    *predicate.Bound
	mode        JoinMode
	mkFallback  func(left Iterator) (Iterator, error)

	ec        *ExecContext
	held      hold
	arena     rowArena
	table     map[string][][]relation.Value
	tableRows int
	pending   [][]relation.Value
	rwidth    int
	delegate  Iterator   // non-nil after an index degradation
	grace     *graceJoin // non-nil after a grace-hash spill
	spst      SpillStats
}

// joinKey appends row's join key at positions keys to buf; null reports
// a null key column (null keys never match any row).
func joinKey(buf []byte, row []relation.Value, keys []int) ([]byte, bool) {
	for _, k := range keys {
		if row[k].IsNull() {
			return buf, true
		}
		buf = relation.AppendJoinKey(buf, row[k])
	}
	return buf, false
}

// NewHashJoin builds a hash join on leftKeys = rightKeys (attribute lists
// of equal length). residual may be nil.
func NewHashJoin(left, right Iterator, leftKeys, rightKeys []relation.Attr, residual predicate.Predicate, mode JoinMode) (*HashJoin, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: hash join needs matching non-empty key lists")
	}
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	h := &HashJoin{left: left, right: right, scheme: sch, mode: mode, rwidth: right.Scheme().Len()}
	for _, a := range leftKeys {
		p := left.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: hash join key %s not in left scheme", a)
		}
		h.lkeys = append(h.lkeys, p)
	}
	for _, a := range rightKeys {
		p := right.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: hash join key %s not in right scheme", a)
		}
		h.rkeys = append(h.rkeys, p)
	}
	if residual != nil {
		full, err := left.Scheme().Concat(right.Scheme())
		if err != nil {
			return nil, err
		}
		b, err := predicate.Bind(residual, full)
		if err != nil {
			return nil, fmt.Errorf("exec: hash join residual: %w", err)
		}
		h.residual = &b
	}
	return h, nil
}

// SetFallback registers a degradation path: when the hash-table build
// trips the memory budget, mk is invoked with the (not yet opened) left
// input and the resulting iterator — typically an IndexJoin over the
// same key — serves the join instead. The iterator must produce the same
// bag over the same output scheme.
func (h *HashJoin) SetFallback(mk func(left Iterator) (Iterator, error)) { h.mkFallback = mk }

// DegradedTo returns the substitute iterator after a graceful
// degradation, or nil when the hash strategy ran.
func (h *HashJoin) DegradedTo() Iterator { return h.delegate }

// Scheme implements Iterator.
func (h *HashJoin) Scheme() *relation.Scheme { return h.scheme }

// Open implements Iterator: builds the hash table from the right input.
func (h *HashJoin) Open(ec *ExecContext) error {
	h.held.release(h.ec) // re-Open without Close: drop any stale charge
	h.dropGrace(h.ec)    // ... and any stale spill state
	h.ec = ec
	h.delegate = nil
	h.spst = SpillStats{}
	if err := ec.Err("hashjoin"); err != nil {
		return err
	}
	if err := h.right.Open(ec); err != nil {
		h.right.Close()
		return h.degradeOrFail(ec, err)
	}
	// Drain the build side charging row by row, so a budget trip can
	// hand the partial buffer straight to the grace spill path.
	var rows [][]relation.Value
	for {
		row, ok, err := h.right.Next()
		if err != nil {
			h.right.Close()
			h.held.release(ec)
			return h.degradeOrFail(ec, err)
		}
		if !ok {
			break
		}
		if cerr := h.held.charge(ec, "hashjoin", row); cerr != nil {
			if spillable(ec, cerr) {
				return h.openGrace(ec, rows, row)
			}
			h.right.Close()
			h.held.release(ec)
			return h.degradeOrFail(ec, cerr)
		}
		// The build side buffers past the child's next Next: copy.
		rows = append(rows, h.arena.copyRow(row))
	}
	if err := h.right.Close(); err != nil {
		h.held.release(ec)
		return err
	}
	h.buildTable(rows)
	h.pending = nil
	if err := h.left.Open(ec); err != nil {
		h.table = nil
		h.tableRows = 0
		h.held.release(ec)
		return err
	}
	return nil
}

// buildTable indexes rows by join key. Null-key rows are dropped: they
// can never match, and for the null-supplying modes only the left side
// decides emission.
func (h *HashJoin) buildTable(rows [][]relation.Value) {
	h.table = make(map[string][][]relation.Value, len(rows))
	h.tableRows = 0
	var buf []byte
	for _, row := range rows {
		key, null := joinKey(buf[:0], row, h.rkeys)
		buf = key
		if null {
			continue
		}
		h.table[string(key)] = append(h.table[string(key)], row)
		h.tableRows++
	}
}

// degradeOrFail is the spill-disabled degradation path: on a memory
// trip with a registered index alternative, the join delegates to it;
// any other error is surfaced as-is.
func (h *HashJoin) degradeOrFail(ec *ExecContext, err error) error {
	var re *ResourceError
	if h.mkFallback == nil || !errors.As(err, &re) || re.Kind != MemoryExceeded {
		return err
	}
	fb, ferr := h.mkFallback(h.left)
	if ferr != nil {
		return err // keep the original trip
	}
	if oerr := fb.Open(ec); oerr != nil {
		return oerr
	}
	ec.Governor().Note("hashjoin: memory budget trip, degraded to index strategy")
	obs.GovernorDegradations.Inc()
	h.delegate = fb
	return nil
}

// BufferedRows implements Buffered.
func (h *HashJoin) BufferedRows() int {
	if h.delegate != nil {
		if b, ok := h.delegate.(Buffered); ok {
			return b.BufferedRows()
		}
		return 0
	}
	return h.tableRows + len(h.pending)
}

// SpillInfo implements Spiller.
func (h *HashJoin) SpillInfo() SpillStats { return h.spst }

// Next implements Iterator.
func (h *HashJoin) Next() ([]relation.Value, bool, error) {
	if h.delegate != nil {
		return h.delegate.Next()
	}
	if h.grace != nil {
		return h.graceNext()
	}
	for {
		if len(h.pending) > 0 {
			out := h.pending[0]
			h.pending = h.pending[1:]
			return out, true, nil
		}
		lrow, ok, err := h.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matches := h.probe(lrow)
		switch h.mode {
		case InnerMode, LeftOuterMode:
			for _, rrow := range matches {
				h.pending = append(h.pending, concatRows(lrow, rrow))
			}
			if len(matches) == 0 && h.mode == LeftOuterMode {
				return padRight(lrow, h.rwidth), true, nil
			}
		case SemiMode:
			if len(matches) > 0 {
				return lrow, true, nil
			}
		case AntiMode:
			if len(matches) == 0 {
				return lrow, true, nil
			}
		}
	}
}

// probe returns the right rows matching lrow (keys plus residual).
func (h *HashJoin) probe(lrow []relation.Value) [][]relation.Value {
	key, null := joinKey(nil, lrow, h.lkeys)
	if null {
		return nil
	}
	candidates := h.table[string(key)]
	if h.residual == nil {
		return candidates
	}
	var out [][]relation.Value
	for _, rrow := range candidates {
		if h.residual.Holds(concatRows(lrow, rrow)) {
			out = append(out, rrow)
		}
	}
	return out
}

// Close implements Iterator: the build table (and its governor charge) is
// released, along with every live spill run. After a degradation the
// substitute iterator is closed instead (it owns the left child).
func (h *HashJoin) Close() error {
	h.table = nil
	h.tableRows = 0
	h.pending = nil
	h.held.release(h.ec)
	h.dropGrace(h.ec)
	if h.delegate != nil {
		// The delegate stays recorded (DegradedTo) until a re-Open resets
		// it; the substitute owns the left child, so it closes it.
		return h.delegate.Close()
	}
	return h.left.Close()
}

// graceJoin is the spilled state of a HashJoin after a build-side
// budget trip: both inputs hash-partitioned to disk, plus the work list
// of partition pairs still to join.
type graceJoin struct {
	parts    int
	maxDepth int

	work []gracePair // partition pairs still to join (LIFO)

	cur gracePair     // partition currently probed via the hash table
	lrd *spill.Reader // cur's left (probe) reader

	nullLeft *spill.Run // null-key left rows (leftouter pads, anti emits)
	nullRd   *spill.Reader

	// Block-nested streaming of a pair that stays over budget even at
	// maxDepth (heavy key skew): every left row scans the right run.
	// Memory stays O(1), so this terminal mode always completes.
	stream   bool
	spair    gracePair
	slrd     *spill.Reader
	scur     []relation.Value
	smatched bool
	srd      *spill.Reader

	// Every writer and run ever created, so cleanup after an error or
	// early Close can be exhaustive: Abort and Drop are idempotent
	// no-ops for writers already finished and runs already dropped.
	writers []*spill.Writer
	runs    []*spill.Run

	kbuf []byte // join-key scratch
	hbuf []byte // salted-hash scratch
}

// gracePair is one partition pair: the right (build) and left (probe)
// rows whose salted key hash landed in the same bucket. depth is the
// number of partitioning passes that produced it.
type gracePair struct {
	r, l  *spill.Run
	depth int
}

// bucket assigns a join key to a partition. The salt (the partitioning
// depth) changes the hash at each recursion level, so a bucket that
// collided at one level spreads out at the next.
func (g *graceJoin) bucket(key []byte, salt int) int {
	g.hbuf = append(g.hbuf[:0], byte(salt))
	g.hbuf = append(g.hbuf, key...)
	return int(hashutil.Sum32(g.hbuf) % uint32(g.parts))
}

// dropGrace aborts every in-flight writer, drops every live run (both
// idempotent), closes open readers and detaches the grace state.
func (h *HashJoin) dropGrace(ec *ExecContext) {
	g := h.grace
	if g == nil {
		return
	}
	for _, rd := range []*spill.Reader{g.lrd, g.nullRd, g.slrd, g.srd} {
		if rd != nil {
			rd.Close()
		}
	}
	for _, w := range g.writers {
		w.Abort()
	}
	for _, r := range g.runs {
		r.Drop(ec)
	}
	h.grace = nil
}

// newPartWriters opens one spill writer per partition, registering them
// for cleanup.
func (h *HashJoin) newPartWriters(ec *ExecContext) ([]*spill.Writer, error) {
	g := h.grace
	ws := make([]*spill.Writer, g.parts)
	for i := range ws {
		w, err := spill.NewWriter(ec, "hashjoin")
		if err != nil {
			return nil, err
		}
		ws[i] = w
		g.writers = append(g.writers, w)
	}
	return ws, nil
}

// finishWriters seals the partition writers into runs, registering them
// for cleanup and counting them into the spill stats.
func (h *HashJoin) finishWriters(ws []*spill.Writer) ([]*spill.Run, error) {
	g := h.grace
	runs := make([]*spill.Run, len(ws))
	for i, w := range ws {
		run, err := w.Finish()
		if err != nil {
			return nil, err
		}
		runs[i] = run
		g.runs = append(g.runs, run)
		h.spst.Runs++
		h.spst.Bytes += run.Bytes
	}
	return runs, nil
}

// partWrite routes row to the partition its salted key hash selects.
// Null-key rows are dropped — callers that must keep them (the probe
// side of null-supplying modes) divert them before calling.
func (h *HashJoin) partWrite(ws []*spill.Writer, row []relation.Value, keys []int, salt int) error {
	g := h.grace
	key, null := joinKey(g.kbuf[:0], row, keys)
	g.kbuf = key
	if null {
		return nil
	}
	return ws[g.bucket(key, salt)].Append(row)
}

// openGrace converts a tripped in-memory build into a grace hash join:
// the buffered build rows, the row whose charge tripped, and the rest
// of the right input are hash-partitioned to disk, then the probe side
// is partitioned the same way, seeding one partition pair per bucket.
func (h *HashJoin) openGrace(ec *ExecContext, buffered [][]relation.Value, tripRow []relation.Value) error {
	g := &graceJoin{parts: ec.Spill().Fanout(), maxDepth: ec.Spill().Recursion()}
	h.grace = g
	h.pending = nil
	fail := func(err error, closeRight, closeLeft bool) error {
		if closeRight {
			h.right.Close()
		}
		if closeLeft {
			h.left.Close()
		}
		h.held.release(ec)
		h.dropGrace(ec)
		return err
	}
	ws, err := h.newPartWriters(ec)
	if err != nil {
		return fail(err, true, false)
	}
	for _, row := range buffered {
		if err := h.partWrite(ws, row, h.rkeys, 0); err != nil {
			return fail(err, true, false)
		}
	}
	if err := h.partWrite(ws, tripRow, h.rkeys, 0); err != nil {
		return fail(err, true, false)
	}
	h.held.release(ec) // the build rows now live on disk under the spill budget
	for {
		row, ok, nerr := h.right.Next()
		if nerr != nil {
			return fail(nerr, true, false)
		}
		if !ok {
			break
		}
		if err := h.partWrite(ws, row, h.rkeys, 0); err != nil {
			return fail(err, true, false)
		}
	}
	if err := h.right.Close(); err != nil {
		return fail(err, false, false)
	}
	rruns, err := h.finishWriters(ws)
	if err != nil {
		return fail(err, false, false)
	}

	// Partition the probe side the same way. Null-key left rows go to a
	// dedicated run when the mode emits unmatched left rows; otherwise
	// they are dropped (they can never match).
	var nullW *spill.Writer
	if h.mode == LeftOuterMode || h.mode == AntiMode {
		w, werr := spill.NewWriter(ec, "hashjoin")
		if werr != nil {
			return fail(werr, false, false)
		}
		g.writers = append(g.writers, w)
		nullW = w
	}
	lws, err := h.newPartWriters(ec)
	if err != nil {
		return fail(err, false, false)
	}
	if err := h.left.Open(ec); err != nil {
		return fail(err, false, false)
	}
	for {
		row, ok, nerr := h.left.Next()
		if nerr != nil {
			return fail(nerr, false, true)
		}
		if !ok {
			break
		}
		key, null := joinKey(g.kbuf[:0], row, h.lkeys)
		g.kbuf = key
		if null {
			if nullW != nil {
				if err := nullW.Append(row); err != nil {
					return fail(err, false, true)
				}
			}
			continue
		}
		if err := lws[g.bucket(key, 0)].Append(row); err != nil {
			return fail(err, false, true)
		}
	}
	if err := h.left.Close(); err != nil {
		return fail(err, false, false)
	}
	lruns, err := h.finishWriters(lws)
	if err != nil {
		return fail(err, false, false)
	}
	if nullW != nil {
		run, ferr := nullW.Finish()
		if ferr != nil {
			return fail(ferr, false, false)
		}
		g.runs = append(g.runs, run)
		h.spst.Runs++
		h.spst.Bytes += run.Bytes
		if run.Rows > 0 {
			g.nullLeft = run
		} else {
			run.Drop(ec)
		}
	}
	for i := len(rruns) - 1; i >= 0; i-- {
		g.work = append(g.work, gracePair{r: rruns[i], l: lruns[i], depth: 1})
	}
	h.spst.Partitions += int64(g.parts)
	obs.SpillPartitions.Add(int64(g.parts))
	obs.GovernorDegradations.Inc()
	ec.Governor().Note(fmt.Sprintf("hashjoin: memory budget trip, grace hash join spilling to %d partitions", g.parts))
	return nil
}

// loadPartition builds the in-memory hash table for pair's build run
// and opens its probe run. A budget trip during the load either splits
// the pair one level deeper or, at the recursion bound, switches the
// pair to the streaming block-nested scan.
func (h *HashJoin) loadPartition(ec *ExecContext, pair gracePair) error {
	g := h.grace
	rd, err := pair.r.Open()
	if err != nil {
		return err
	}
	h.table = make(map[string][][]relation.Value)
	h.tableRows = 0
	var buf []byte
	for {
		row, ok, rerr := rd.Next()
		if rerr != nil {
			rd.Close()
			h.releaseTable(ec)
			return rerr
		}
		if !ok {
			break
		}
		if cerr := h.held.charge(ec, "hashjoin", row); cerr != nil {
			rd.Close()
			h.releaseTable(ec)
			if !spillable(ec, cerr) {
				return cerr
			}
			if pair.depth >= g.maxDepth {
				return h.startStream(ec, pair)
			}
			return h.splitPair(ec, pair)
		}
		key, null := joinKey(buf[:0], row, h.rkeys)
		buf = key
		if null {
			continue
		}
		h.table[string(key)] = append(h.table[string(key)], row)
		h.tableRows++
	}
	rd.Close()
	lrd, err := pair.l.Open()
	if err != nil {
		h.releaseTable(ec)
		return err
	}
	g.cur, g.lrd = pair, lrd
	return nil
}

func (h *HashJoin) releaseTable(ec *ExecContext) {
	h.table = nil
	h.tableRows = 0
	h.held.release(ec)
}

// repartition re-buckets a run with the next salt, producing one run
// per partition.
func (h *HashJoin) repartition(ec *ExecContext, run *spill.Run, keys []int, salt int) ([]*spill.Run, error) {
	ws, err := h.newPartWriters(ec)
	if err != nil {
		return nil, err
	}
	rd, err := run.Open()
	if err != nil {
		return nil, err
	}
	for {
		row, ok, rerr := rd.Next()
		if rerr != nil {
			rd.Close()
			return nil, rerr
		}
		if !ok {
			break
		}
		if werr := h.partWrite(ws, row, keys, salt); werr != nil {
			rd.Close()
			return nil, werr
		}
	}
	rd.Close()
	return h.finishWriters(ws)
}

// splitPair re-partitions an over-budget pair one level deeper and
// queues the resulting sub-pairs.
func (h *HashJoin) splitPair(ec *ExecContext, pair gracePair) error {
	g := h.grace
	rruns, err := h.repartition(ec, pair.r, h.rkeys, pair.depth)
	if err != nil {
		return err
	}
	lruns, err := h.repartition(ec, pair.l, h.lkeys, pair.depth)
	if err != nil {
		return err
	}
	pair.r.Drop(ec)
	pair.l.Drop(ec)
	for i := len(rruns) - 1; i >= 0; i-- {
		g.work = append(g.work, gracePair{r: rruns[i], l: lruns[i], depth: pair.depth + 1})
	}
	h.spst.Partitions += int64(g.parts)
	obs.SpillPartitions.Add(int64(g.parts))
	ec.Governor().Note(fmt.Sprintf("hashjoin: re-partitioning over-budget partition at depth %d", pair.depth))
	return nil
}

// startStream switches a pair that is still over budget at the
// recursion bound (heavy key skew re-partitioning cannot shrink) to
// the block-nested scan.
func (h *HashJoin) startStream(ec *ExecContext, pair gracePair) error {
	g := h.grace
	lrd, err := pair.l.Open()
	if err != nil {
		return err
	}
	g.spair, g.slrd = pair, lrd
	g.scur, g.srd = nil, nil
	g.stream = true
	ec.Governor().Note(fmt.Sprintf("hashjoin: partition over budget at depth %d, block-nested streaming", pair.depth))
	return nil
}

// graceMatch reports whether a left/right row pair joins: equal
// non-null keys plus the residual predicate.
func (h *HashJoin) graceMatch(lrow, rrow []relation.Value) bool {
	lkey, lnull := joinKey(nil, lrow, h.lkeys)
	if lnull {
		return false
	}
	rkey, rnull := joinKey(nil, rrow, h.rkeys)
	if rnull {
		return false
	}
	if !bytes.Equal(lkey, rkey) {
		return false
	}
	return h.residual == nil || h.residual.Holds(concatRows(lrow, rrow))
}

// graceNext drives the spilled join: stream the current block-nested
// pair if one is active, probe the currently loaded partition, load the
// next pair from the work list, and finally emit the null-key left tail.
func (h *HashJoin) graceNext() ([]relation.Value, bool, error) {
	g := h.grace
	ec := h.ec
	for {
		if len(h.pending) > 0 {
			out := h.pending[0]
			h.pending = h.pending[1:]
			return out, true, nil
		}
		if err := ec.Err("hashjoin"); err != nil {
			return nil, false, err
		}
		switch {
		case g.stream:
			if g.scur == nil {
				lrow, ok, err := g.slrd.Next()
				if err != nil {
					return nil, false, err
				}
				if !ok {
					g.slrd.Close()
					g.slrd = nil
					g.spair.l.Drop(ec)
					g.spair.r.Drop(ec)
					g.stream = false
					continue
				}
				rd, err := g.spair.r.Open()
				if err != nil {
					return nil, false, err
				}
				g.scur, g.smatched, g.srd = lrow, false, rd
			}
			rrow, ok, err := g.srd.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				g.srd.Close()
				g.srd = nil
				lrow := g.scur
				g.scur = nil
				switch h.mode {
				case LeftOuterMode:
					if !g.smatched {
						return padRight(lrow, h.rwidth), true, nil
					}
				case SemiMode:
					if g.smatched {
						return lrow, true, nil
					}
				case AntiMode:
					if !g.smatched {
						return lrow, true, nil
					}
				}
				continue
			}
			if !h.graceMatch(g.scur, rrow) {
				continue
			}
			g.smatched = true
			switch h.mode {
			case InnerMode, LeftOuterMode:
				return concatRows(g.scur, rrow), true, nil
			case SemiMode:
				g.srd.Close()
				g.srd = nil
				lrow := g.scur
				g.scur = nil
				return lrow, true, nil
			case AntiMode:
				g.srd.Close()
				g.srd = nil
				g.scur = nil
			}

		case g.lrd != nil:
			lrow, ok, err := g.lrd.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				g.lrd.Close()
				g.lrd = nil
				g.cur.l.Drop(ec)
				g.cur.r.Drop(ec)
				h.releaseTable(ec)
				continue
			}
			matches := h.probe(lrow)
			switch h.mode {
			case InnerMode, LeftOuterMode:
				for _, rrow := range matches {
					h.pending = append(h.pending, concatRows(lrow, rrow))
				}
				if len(matches) == 0 && h.mode == LeftOuterMode {
					return padRight(lrow, h.rwidth), true, nil
				}
			case SemiMode:
				if len(matches) > 0 {
					return lrow, true, nil
				}
			case AntiMode:
				if len(matches) == 0 {
					return lrow, true, nil
				}
			}

		case len(g.work) > 0:
			pair := g.work[len(g.work)-1]
			g.work = g.work[:len(g.work)-1]
			if pair.r.Rows == 0 && pair.l.Rows == 0 {
				pair.r.Drop(ec)
				pair.l.Drop(ec)
				continue
			}
			if err := h.loadPartition(ec, pair); err != nil {
				return nil, false, err
			}

		case g.nullLeft != nil:
			if g.nullRd == nil {
				rd, err := g.nullLeft.Open()
				if err != nil {
					return nil, false, err
				}
				g.nullRd = rd
			}
			row, ok, err := g.nullRd.Next()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				g.nullRd.Close()
				g.nullRd = nil
				g.nullLeft.Drop(ec)
				g.nullLeft = nil
				continue
			}
			if h.mode == LeftOuterMode {
				return padRight(row, h.rwidth), true, nil
			}
			return row, true, nil // AntiMode: null left key never matches

		default:
			return nil, false, nil
		}
	}
}

// NestedLoopJoin joins on an arbitrary predicate; the right input is
// materialized once at Open. When the materialization trips the memory
// budget with spilling enabled, the inner input moves to a single spill
// run instead, and Next re-scans the run once per left row.
type NestedLoopJoin struct {
	left, right Iterator
	scheme      *relation.Scheme
	bound       predicate.Bound
	mode        JoinMode

	ec      *ExecContext
	held    hold
	arena   rowArena
	rrows   [][]relation.Value
	rwidth  int
	pending [][]relation.Value

	rrun       *spill.Run // inner input on disk after a budget trip
	rrd        *spill.Reader
	cur        []relation.Value // left row currently scanning rrun
	curMatched bool
	spst       SpillStats
}

// NewNestedLoopJoin builds a nested-loop join with predicate p.
func NewNestedLoopJoin(left, right Iterator, p predicate.Predicate, mode JoinMode) (*NestedLoopJoin, error) {
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	full, err := left.Scheme().Concat(right.Scheme())
	if err != nil {
		return nil, err
	}
	b, err := predicate.Bind(p, full)
	if err != nil {
		return nil, fmt.Errorf("exec: nested-loop predicate: %w", err)
	}
	return &NestedLoopJoin{left: left, right: right, scheme: sch, bound: b,
		mode: mode, rwidth: right.Scheme().Len()}, nil
}

// Scheme implements Iterator.
func (n *NestedLoopJoin) Scheme() *relation.Scheme { return n.scheme }

// Open implements Iterator.
func (n *NestedLoopJoin) Open(ec *ExecContext) error {
	n.held.release(n.ec) // re-Open without Close: drop any stale charge
	n.dropRun(n.ec)      // ... and any stale spill run
	n.ec = ec
	n.rrows, n.pending, n.cur = nil, nil, nil
	n.spst = SpillStats{}
	if err := ec.Err("nestedloop"); err != nil {
		return err
	}
	if err := n.right.Open(ec); err != nil {
		n.right.Close()
		return err
	}
	for {
		row, ok, err := n.right.Next()
		if err != nil {
			n.right.Close()
			n.held.release(ec)
			return err
		}
		if !ok {
			break
		}
		if cerr := n.held.charge(ec, "nestedloop", row); cerr != nil {
			if !spillable(ec, cerr) {
				n.right.Close()
				n.held.release(ec)
				return cerr
			}
			if serr := n.spillRight(ec, row); serr != nil {
				n.right.Close()
				n.held.release(ec)
				n.dropRun(ec)
				return serr
			}
			break
		}
		n.rrows = append(n.rrows, n.arena.copyRow(row))
	}
	if err := n.right.Close(); err != nil {
		n.rrows = nil
		n.held.release(ec)
		n.dropRun(ec)
		return err
	}
	if err := n.left.Open(ec); err != nil {
		n.rrows = nil
		n.held.release(ec)
		n.dropRun(ec)
		return err
	}
	return nil
}

// spillRight moves the inner input to a single spill run: the rows
// buffered so far, the row whose charge tripped, then the rest of the
// right stream.
func (n *NestedLoopJoin) spillRight(ec *ExecContext, tripRow []relation.Value) error {
	w, err := spill.NewWriter(ec, "nestedloop")
	if err != nil {
		return err
	}
	for _, row := range n.rrows {
		if werr := w.Append(row); werr != nil {
			w.Abort()
			return werr
		}
	}
	if werr := w.Append(tripRow); werr != nil {
		w.Abort()
		return werr
	}
	n.rrows = nil
	n.held.release(ec)
	for {
		row, ok, nerr := n.right.Next()
		if nerr != nil {
			w.Abort()
			return nerr
		}
		if !ok {
			break
		}
		if werr := w.Append(row); werr != nil {
			w.Abort()
			return werr
		}
	}
	run, ferr := w.Finish()
	if ferr != nil {
		return ferr
	}
	n.rrun = run
	n.spst.Runs++
	n.spst.Bytes += run.Bytes
	obs.GovernorDegradations.Inc()
	ec.Governor().Note("nestedloop: memory budget trip, spilling inner input to disk")
	return nil
}

// dropRun releases the spill run and its reader, if any.
func (n *NestedLoopJoin) dropRun(ec *ExecContext) {
	if n.rrd != nil {
		n.rrd.Close()
		n.rrd = nil
	}
	if n.rrun != nil {
		n.rrun.Drop(ec)
		n.rrun = nil
	}
}

// spilledNext is the Next loop of the spilled mode: each left row opens
// a fresh sequential scan of the inner run, emitting matches one at a
// time (no pending buffer, so memory stays flat).
func (n *NestedLoopJoin) spilledNext() ([]relation.Value, bool, error) {
	for {
		if n.cur == nil {
			if err := n.ec.Err("nestedloop"); err != nil {
				return nil, false, err
			}
			lrow, ok, err := n.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			rd, err := n.rrun.Open()
			if err != nil {
				return nil, false, err
			}
			n.cur, n.curMatched, n.rrd = lrow, false, rd
		}
		rrow, ok, err := n.rrd.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			n.rrd.Close()
			n.rrd = nil
			lrow := n.cur
			n.cur = nil
			switch n.mode {
			case LeftOuterMode:
				if !n.curMatched {
					return padRight(lrow, n.rwidth), true, nil
				}
			case SemiMode:
				if n.curMatched {
					return lrow, true, nil
				}
			case AntiMode:
				if !n.curMatched {
					return lrow, true, nil
				}
			}
			continue
		}
		full := concatRows(n.cur, rrow)
		if !n.bound.Holds(full) {
			continue
		}
		n.curMatched = true
		switch n.mode {
		case InnerMode, LeftOuterMode:
			return full, true, nil
		case SemiMode:
			n.rrd.Close()
			n.rrd = nil
			lrow := n.cur
			n.cur = nil
			return lrow, true, nil
		case AntiMode:
			n.rrd.Close()
			n.rrd = nil
			n.cur = nil
		}
	}
}

// Next implements Iterator.
func (n *NestedLoopJoin) Next() ([]relation.Value, bool, error) {
	if n.rrun != nil {
		return n.spilledNext()
	}
	for {
		if len(n.pending) > 0 {
			out := n.pending[0]
			n.pending = n.pending[1:]
			return out, true, nil
		}
		lrow, ok, err := n.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matched := false
		for _, rrow := range n.rrows {
			full := concatRows(lrow, rrow)
			if !n.bound.Holds(full) {
				continue
			}
			matched = true
			switch n.mode {
			case InnerMode, LeftOuterMode:
				n.pending = append(n.pending, full)
			case SemiMode, AntiMode:
				// Existence decided; stop scanning.
			}
			if n.mode == SemiMode || n.mode == AntiMode {
				break
			}
		}
		switch n.mode {
		case LeftOuterMode:
			if !matched {
				return padRight(lrow, n.rwidth), true, nil
			}
		case SemiMode:
			if matched {
				return lrow, true, nil
			}
		case AntiMode:
			if !matched {
				return lrow, true, nil
			}
		}
	}
}

// BufferedRows implements Buffered.
func (n *NestedLoopJoin) BufferedRows() int { return len(n.rrows) + len(n.pending) }

// SpillInfo implements Spiller.
func (n *NestedLoopJoin) SpillInfo() SpillStats { return n.spst }

// Close implements Iterator: the materialized inner input (or its spill
// run) is released.
func (n *NestedLoopJoin) Close() error {
	n.rrows = nil
	n.pending = nil
	n.cur = nil
	n.held.release(n.ec)
	n.dropRun(n.ec)
	return n.left.Close()
}

// IndexJoin drives the join from the left input and fetches matching
// inner rows through a hash index on a base table — the access path of
// Example 1's cheap plan. Each fetched inner row counts as one retrieved
// tuple.
type IndexJoin struct {
	left     Iterator
	inner    *storage.Table
	index    *storage.HashIndex
	outerKey int
	scheme   *relation.Scheme
	residual *predicate.Bound
	mode     JoinMode
	counters *Counters

	ec      *ExecContext
	pending [][]relation.Value
	iwidth  int
}

// NewIndexJoin probes inner's hash index on idxCol with the value of
// outerKey in each left row. residual may be nil.
func NewIndexJoin(left Iterator, inner *storage.Table, idxCol string, outerKey relation.Attr,
	residual predicate.Predicate, mode JoinMode, c *Counters) (*IndexJoin, error) {
	idx, ok := inner.HashIndexOn(idxCol)
	if !ok {
		return nil, fmt.Errorf("exec: table %s has no hash index on %s", inner.Name(), idxCol)
	}
	kp := left.Scheme().IndexOf(outerKey)
	if kp < 0 {
		return nil, fmt.Errorf("exec: outer key %s not in left scheme %s", outerKey, left.Scheme())
	}
	sch, err := outputScheme(left.Scheme(), inner.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	j := &IndexJoin{left: left, inner: inner, index: idx, outerKey: kp, scheme: sch,
		mode: mode, counters: c, iwidth: inner.Scheme().Len()}
	if residual != nil {
		full, err := left.Scheme().Concat(inner.Scheme())
		if err != nil {
			return nil, err
		}
		b, err := predicate.Bind(residual, full)
		if err != nil {
			return nil, fmt.Errorf("exec: index join residual: %w", err)
		}
		j.residual = &b
	}
	return j, nil
}

// Scheme implements Iterator.
func (j *IndexJoin) Scheme() *relation.Scheme { return j.scheme }

// Open implements Iterator.
func (j *IndexJoin) Open(ec *ExecContext) error {
	j.ec = ec
	if err := ec.Err("indexjoin"); err != nil {
		return err
	}
	j.pending = nil
	return j.left.Open(ec)
}

// Next implements Iterator.
func (j *IndexJoin) Next() ([]relation.Value, bool, error) {
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			return out, true, nil
		}
		lrow, ok, err := j.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		matched := false
		for _, pos := range j.index.Lookup(lrow[j.outerKey]) {
			irow := j.inner.Relation().RawRow(pos)
			if j.counters != nil {
				j.counters.IncTuples()
			}
			full := concatRows(lrow, irow)
			if j.residual != nil && !j.residual.Holds(full) {
				continue
			}
			matched = true
			if j.mode == InnerMode || j.mode == LeftOuterMode {
				j.pending = append(j.pending, full)
			} else {
				break
			}
		}
		switch j.mode {
		case LeftOuterMode:
			if !matched {
				return padRight(lrow, j.iwidth), true, nil
			}
		case SemiMode:
			if matched {
				return lrow, true, nil
			}
		case AntiMode:
			if !matched {
				return lrow, true, nil
			}
		}
	}
}

// BufferedRows implements Buffered (only the per-probe match buffer).
func (j *IndexJoin) BufferedRows() int { return len(j.pending) }

// Close implements Iterator.
func (j *IndexJoin) Close() error { j.pending = nil; return j.left.Close() }

// MergeJoin equi-joins two inputs sorted on their key columns. Inner and
// left-outer modes are supported; duplicates on both sides produce the
// full cross product of each matching group.
//
// Both inputs stream: only the current right-side equal-key group is
// buffered (and charged to the governor). A group that trips the memory
// budget with spilling enabled moves to a spill run, re-scanned once
// per matching left row.
type MergeJoin struct {
	left, right Iterator
	scheme      *relation.Scheme
	lkey, rkey  int
	mode        JoinMode
	rwidth      int

	ec      *ExecContext
	held    hold
	arena   rowArena
	group   [][]relation.Value // current right equal-key group (charged)
	gkey    relation.Value     // group key, valid while hasGroup()
	grun    *spill.Run         // group on disk after a budget trip
	lcur    []relation.Value   // left row currently streaming grun matches
	grd     *spill.Reader
	rnext   []relation.Value // lookahead right row beyond the group
	rdone   bool
	pending [][]relation.Value
	spst    SpillStats
}

// NewMergeJoin joins inputs that must already be sorted ascending on
// leftKey / rightKey (wrap with NewSort otherwise).
func NewMergeJoin(left, right Iterator, leftKey, rightKey relation.Attr, mode JoinMode) (*MergeJoin, error) {
	if mode != InnerMode && mode != LeftOuterMode {
		return nil, fmt.Errorf("exec: merge join supports inner and leftouter modes, got %s", mode)
	}
	lk := left.Scheme().IndexOf(leftKey)
	rk := right.Scheme().IndexOf(rightKey)
	if lk < 0 || rk < 0 {
		return nil, fmt.Errorf("exec: merge join keys missing from schemes")
	}
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	return &MergeJoin{left: left, right: right, scheme: sch, lkey: lk, rkey: rk,
		mode: mode, rwidth: right.Scheme().Len()}, nil
}

// Scheme implements Iterator.
func (m *MergeJoin) Scheme() *relation.Scheme { return m.scheme }

// Open implements Iterator: both inputs are opened; nothing is buffered
// until Next reaches the first right-side group.
func (m *MergeJoin) Open(ec *ExecContext) error {
	m.held.release(m.ec) // re-Open without Close: drop any stale charge
	m.dropGroupRun(m.ec) // ... and any stale spilled group
	m.ec = ec
	m.group, m.pending, m.rnext, m.lcur = nil, nil, nil, nil
	m.rdone = false
	m.spst = SpillStats{}
	if err := ec.Err("mergejoin"); err != nil {
		return err
	}
	if err := m.left.Open(ec); err != nil {
		m.left.Close()
		return err
	}
	if err := m.right.Open(ec); err != nil {
		m.left.Close()
		m.right.Close()
		return err
	}
	return nil
}

// hasGroup reports whether a right-side group (in memory or spilled) is
// current.
func (m *MergeJoin) hasGroup() bool { return len(m.group) > 0 || m.grun != nil }

// needAdvance reports whether the right side must move forward to reach
// a group with key >= lv.
func (m *MergeJoin) needAdvance(lv relation.Value) bool {
	if m.hasGroup() {
		return m.gkey.Compare(lv) < 0
	}
	return !m.rdone || m.rnext != nil
}

// advanceGroup discards the current group and buffers the next run of
// equal-key right rows (null keys skipped: they never match). A budget
// trip mid-group spills the whole group to disk.
func (m *MergeJoin) advanceGroup() error {
	m.group = nil
	m.held.release(m.ec) // only the group is charged
	m.dropGroupRun(m.ec)
	for {
		var row []relation.Value
		if m.rnext != nil {
			row, m.rnext = m.rnext, nil
		} else if m.rdone {
			return nil
		} else {
			var ok bool
			var err error
			row, ok, err = m.right.Next()
			if err != nil {
				return err
			}
			if !ok {
				m.rdone = true
				return nil
			}
		}
		rv := row[m.rkey]
		if rv.IsNull() {
			continue
		}
		if len(m.group) == 0 {
			m.gkey = rv
		} else if m.gkey.Compare(rv) != 0 {
			// The lookahead row outlives the child's next Next: copy.
			m.rnext = m.arena.copyRow(row)
			return nil
		}
		if err := m.held.charge(m.ec, "mergejoin", row); err != nil {
			if !spillable(m.ec, err) {
				return err
			}
			return m.spillGroup(row)
		}
		m.group = append(m.group, m.arena.copyRow(row))
	}
}

// spillGroup moves the current group — the rows buffered so far, the
// row whose charge tripped, and the rest of the equal-key run — to a
// spill run.
func (m *MergeJoin) spillGroup(tripRow []relation.Value) error {
	w, err := spill.NewWriter(m.ec, "mergejoin")
	if err != nil {
		return err
	}
	for _, row := range m.group {
		if werr := w.Append(row); werr != nil {
			w.Abort()
			return werr
		}
	}
	if werr := w.Append(tripRow); werr != nil {
		w.Abort()
		return werr
	}
	m.group = nil
	m.held.release(m.ec)
	for {
		var row []relation.Value
		if m.rnext != nil {
			row, m.rnext = m.rnext, nil
		} else if m.rdone {
			break
		} else {
			var ok bool
			var nerr error
			row, ok, nerr = m.right.Next()
			if nerr != nil {
				w.Abort()
				return nerr
			}
			if !ok {
				m.rdone = true
				break
			}
		}
		rv := row[m.rkey]
		if rv.IsNull() {
			continue
		}
		if m.gkey.Compare(rv) != 0 {
			m.rnext = m.arena.copyRow(row)
			break
		}
		if werr := w.Append(row); werr != nil {
			w.Abort()
			return werr
		}
	}
	run, ferr := w.Finish()
	if ferr != nil {
		return ferr
	}
	m.grun = run
	m.spst.Runs++
	m.spst.Bytes += run.Bytes
	obs.GovernorDegradations.Inc()
	m.ec.Governor().Note("mergejoin: memory budget trip, spilling right-side group to disk")
	return nil
}

// dropGroupRun releases the spilled group and its reader, if any.
func (m *MergeJoin) dropGroupRun(ec *ExecContext) {
	if m.grd != nil {
		m.grd.Close()
		m.grd = nil
	}
	if m.grun != nil {
		m.grun.Drop(ec)
		m.grun = nil
	}
}

// Next implements Iterator.
func (m *MergeJoin) Next() ([]relation.Value, bool, error) {
	for {
		if len(m.pending) > 0 {
			out := m.pending[0]
			m.pending = m.pending[1:]
			return out, true, nil
		}
		// Streaming the current left row against a spilled group.
		if m.grd != nil {
			rrow, ok, err := m.grd.Next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				return concatRows(m.lcur, rrow), true, nil
			}
			m.grd.Close()
			m.grd, m.lcur = nil, nil
			continue
		}
		lrow, ok, err := m.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		lv := lrow[m.lkey]
		if lv.IsNull() {
			// Null keys never match.
			if m.mode == LeftOuterMode {
				return padRight(lrow, m.rwidth), true, nil
			}
			continue
		}
		// Advance right-side groups until the group key reaches lv.
		for m.needAdvance(lv) {
			if err := m.advanceGroup(); err != nil {
				return nil, false, err
			}
		}
		if m.hasGroup() && m.gkey.Compare(lv) == 0 {
			if m.grun != nil {
				rd, oerr := m.grun.Open()
				if oerr != nil {
					return nil, false, oerr
				}
				m.lcur, m.grd = lrow, rd
				continue
			}
			for _, rrow := range m.group {
				m.pending = append(m.pending, concatRows(lrow, rrow))
			}
			continue
		}
		if m.mode == LeftOuterMode {
			return padRight(lrow, m.rwidth), true, nil
		}
	}
}

// BufferedRows implements Buffered.
func (m *MergeJoin) BufferedRows() int { return len(m.group) + len(m.pending) }

// SpillInfo implements Spiller.
func (m *MergeJoin) SpillInfo() SpillStats { return m.spst }

// Close implements Iterator: the group buffer (and its governor charge),
// any spilled group, and both children are released.
func (m *MergeJoin) Close() error {
	m.group, m.pending, m.rnext, m.lcur = nil, nil, nil, nil
	m.held.release(m.ec)
	m.dropGroupRun(m.ec)
	m.rdone = false
	err := m.left.Close()
	if rerr := m.right.Close(); err == nil {
		err = rerr
	}
	return err
}
