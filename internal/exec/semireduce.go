package exec

import (
	"fmt"

	"freejoin/internal/exec/spill"
	"freejoin/internal/obs"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// SemiReduce filters its left input down to the rows with at least one
// match in the right input — the physical semijoin step of the
// Yannakakis full-reducer program. It emits left rows unchanged (the
// output scheme is the left scheme), so a chain of SemiReduce operators
// composes into a reducer without widening any tuple.
//
// For a pure equi predicate the right input collapses into a hash
// filter of distinct join keys (much smaller than a hash join's build
// table: dangling probe rows cost one lookup, duplicate build keys cost
// nothing). Any other predicate materializes the right input and scans
// it per left row, stopping at the first match.
//
// A memory-budget trip while building the filter degrades gracefully
// when spilling is enabled: the right input moves to a single spill run
// and Next re-scans the run per left row (memory stays flat). Without
// spill the typed resource error propagates.
type SemiReduce struct {
	left, right Iterator
	pred        predicate.Predicate
	bound       predicate.Bound // over left ++ right, for scan and spilled modes
	equi        bool
	lkeys       []int
	rkeys       []int

	ec    *ExecContext
	held  hold
	arena rowArena
	keys  map[string]struct{} // equi mode: distinct right-side join keys
	rrows [][]relation.Value  // scan mode: materialized right input
	kbuf  []byte

	rrun *spill.Run // right input on disk after a budget trip
	rrd  *spill.Reader
	cur  []relation.Value // left row currently scanning rrun

	spst    SpillStats
	rowsIn  int64
	rowsOut int64
}

// NewSemiReduce builds a semijoin filter left ⋉ right on p.
func NewSemiReduce(left, right Iterator, p predicate.Predicate) (*SemiReduce, error) {
	full, err := left.Scheme().Concat(right.Scheme())
	if err != nil {
		return nil, fmt.Errorf("exec: semireduce schemes overlap: %w", err)
	}
	b, err := predicate.Bind(p, full)
	if err != nil {
		return nil, fmt.Errorf("exec: semireduce predicate: %w", err)
	}
	s := &SemiReduce{left: left, right: right, pred: p, bound: b}
	if la, ra, ok := predicate.EquiParts(p, left.Scheme(), right.Scheme()); ok {
		s.equi = true
		for _, a := range la {
			s.lkeys = append(s.lkeys, left.Scheme().IndexOf(a))
		}
		for _, a := range ra {
			s.rkeys = append(s.rkeys, right.Scheme().IndexOf(a))
		}
	}
	return s, nil
}

// Scheme implements Iterator: semijoins emit left rows unchanged.
func (s *SemiReduce) Scheme() *relation.Scheme { return s.left.Scheme() }

// Equi reports whether the operator runs the hash-filter fast path.
func (s *SemiReduce) Equi() bool { return s.equi }

// ReduceStats returns the rows that entered and survived the filter
// since the last Open — the per-operator reduction ratio.
func (s *SemiReduce) ReduceStats() (in, out int64) { return s.rowsIn, s.rowsOut }

// Open implements Iterator: the right input is drained into the key
// filter (equi) or a row buffer (otherwise), then the left input opens.
func (s *SemiReduce) Open(ec *ExecContext) error {
	s.held.release(s.ec) // re-Open without Close: drop any stale charge
	s.dropRun(s.ec)      // ... and any stale spill run
	s.ec = ec
	s.keys, s.rrows, s.cur = nil, nil, nil
	s.spst = SpillStats{}
	s.rowsIn, s.rowsOut = 0, 0
	if err := ec.Err("semireduce"); err != nil {
		return err
	}
	if err := s.right.Open(ec); err != nil {
		s.right.Close()
		return err
	}
	if s.equi {
		s.keys = make(map[string]struct{})
	}
	for {
		row, ok, err := s.right.Next()
		if err != nil {
			s.right.Close()
			s.held.release(ec)
			return err
		}
		if !ok {
			break
		}
		if s.equi {
			key, null := joinKey(s.kbuf[:0], row, s.rkeys)
			s.kbuf = key[:0]
			if null {
				continue // null keys never match; the filter can skip them
			}
			if _, dup := s.keys[string(key)]; dup {
				continue
			}
			if cerr := s.held.charge(ec, "semireduce", row); cerr != nil {
				if !spillable(ec, cerr) {
					s.right.Close()
					s.held.release(ec)
					return cerr
				}
				if serr := s.spillRight(ec, row); serr != nil {
					s.right.Close()
					s.held.release(ec)
					s.dropRun(ec)
					return serr
				}
				break
			}
			s.keys[string(key)] = struct{}{}
			continue
		}
		if cerr := s.held.charge(ec, "semireduce", row); cerr != nil {
			if !spillable(ec, cerr) {
				s.right.Close()
				s.held.release(ec)
				return cerr
			}
			if serr := s.spillRight(ec, row); serr != nil {
				s.right.Close()
				s.held.release(ec)
				s.dropRun(ec)
				return serr
			}
			break
		}
		s.rrows = append(s.rrows, s.arena.copyRow(row))
	}
	if err := s.right.Close(); err != nil {
		s.keys, s.rrows = nil, nil
		s.held.release(ec)
		s.dropRun(ec)
		return err
	}
	if err := s.left.Open(ec); err != nil {
		s.keys, s.rrows = nil, nil
		s.held.release(ec)
		s.dropRun(ec)
		return err
	}
	return nil
}

// spillRight moves the right input to a single spill run: the rows (or
// filter keys' source rows) buffered so far are already accounted in
// rrows/keys — for the equi mode the buffered keys are discarded and
// every remaining right row goes to disk, because the run must carry
// full rows for the predicate scan. tripRow is the row whose charge
// tripped the budget.
func (s *SemiReduce) spillRight(ec *ExecContext, tripRow []relation.Value) error {
	w, err := spill.NewWriter(ec, "semireduce")
	if err != nil {
		return err
	}
	abort := func(werr error) error {
		w.Abort()
		return werr
	}
	// The in-memory prefix: materialized rows (scan mode) go to the run
	// verbatim. Equi mode buffered only distinct keys, not rows, so the
	// prefix is unrecoverable from the filter alone — but every buffered
	// key came from a row, and the filter semantics only need each
	// distinct key represented once. Synthesize a minimal row per key?
	// No: the run scan evaluates the full predicate over real rows, so
	// equi mode replays nothing and instead keeps the partial filter as
	// a fast pre-check alongside the run.
	for _, row := range s.rrows {
		if werr := w.Append(row); werr != nil {
			return abort(werr)
		}
	}
	if werr := w.Append(tripRow); werr != nil {
		return abort(werr)
	}
	s.rrows = nil
	s.held.release(ec)
	for {
		row, ok, nerr := s.right.Next()
		if nerr != nil {
			return abort(nerr)
		}
		if !ok {
			break
		}
		if werr := w.Append(row); werr != nil {
			return abort(werr)
		}
	}
	run, ferr := w.Finish()
	if ferr != nil {
		return ferr
	}
	s.rrun = run
	s.spst.Runs++
	s.spst.Bytes += run.Bytes
	obs.GovernorDegradations.Inc()
	ec.Governor().Note("semireduce: memory budget trip, spilling filter input to disk")
	return nil
}

// dropRun releases the spill run and its reader, if any.
func (s *SemiReduce) dropRun(ec *ExecContext) {
	if s.rrd != nil {
		s.rrd.Close()
		s.rrd = nil
	}
	if s.rrun != nil {
		s.rrun.Drop(ec)
		s.rrun = nil
	}
}

// Next implements Iterator.
func (s *SemiReduce) Next() ([]relation.Value, bool, error) {
	if s.rrun != nil {
		return s.spilledNext()
	}
	for {
		lrow, ok, err := s.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		s.rowsIn++
		obs.SemiReduceInputRows.Inc()
		match := false
		if s.equi {
			key, null := joinKey(s.kbuf[:0], lrow, s.lkeys)
			s.kbuf = key[:0]
			if !null {
				_, match = s.keys[string(key)]
			}
		} else {
			for _, rrow := range s.rrows {
				if s.bound.Holds(concatRows(lrow, rrow)) {
					match = true
					break
				}
			}
		}
		if match {
			s.rowsOut++
			obs.SemiReduceOutputRows.Inc()
			return lrow, true, nil
		}
	}
}

// spilledNext is the Next loop of the spilled mode: each left row first
// consults the partial in-memory filter (equi mode), then scans the
// run, emitting the row on the first predicate match. No pending
// buffer, so memory stays flat.
func (s *SemiReduce) spilledNext() ([]relation.Value, bool, error) {
	for {
		if s.cur == nil {
			if err := s.ec.Err("semireduce"); err != nil {
				return nil, false, err
			}
			lrow, ok, err := s.left.Next()
			if err != nil || !ok {
				return nil, false, err
			}
			s.rowsIn++
			obs.SemiReduceInputRows.Inc()
			if s.equi && len(s.keys) > 0 {
				key, null := joinKey(s.kbuf[:0], lrow, s.lkeys)
				s.kbuf = key[:0]
				if !null {
					if _, hit := s.keys[string(key)]; hit {
						s.rowsOut++
						obs.SemiReduceOutputRows.Inc()
						return lrow, true, nil
					}
				}
			}
			rd, err := s.rrun.Open()
			if err != nil {
				return nil, false, err
			}
			s.cur, s.rrd = lrow, rd
		}
		rrow, ok, err := s.rrd.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			s.rrd.Close()
			s.rrd = nil
			s.cur = nil
			continue
		}
		if s.bound.Holds(concatRows(s.cur, rrow)) {
			s.rrd.Close()
			s.rrd = nil
			lrow := s.cur
			s.cur = nil
			s.rowsOut++
			obs.SemiReduceOutputRows.Inc()
			return lrow, true, nil
		}
	}
}

// BufferedRows implements Buffered: the filter keys and materialized
// rows currently held.
func (s *SemiReduce) BufferedRows() int { return len(s.keys) + len(s.rrows) }

// SpillInfo implements Spiller.
func (s *SemiReduce) SpillInfo() SpillStats { return s.spst }

// Close implements Iterator: the filter (or its spill run) is released.
func (s *SemiReduce) Close() error {
	s.keys = nil
	s.rrows = nil
	s.cur = nil
	s.held.release(s.ec)
	s.dropRun(s.ec)
	return s.left.Close()
}
