package exec

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"freejoin/internal/obs"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// The span/stats consistency property: SpanTree must be a faithful
// timeline rendering of an executed StatsNode tree, whatever the
// operator and however the run ended. Checked over the same operator
// inventory and fault configurations as the error-path contract:
//
//  1. one span per plan node, in pre-order, names and depths matching
//     StatsNode.Walk (zip property);
//  2. a parent span's duration covers the sum of its children's within
//     timer-granularity tolerance (WallTime is inclusive);
//  3. a span carries an error exactly when its node recorded one;
//  4. child spans are laid out back to back inside the parent's
//     interval, starting at the parent's start.

// instrumentCase builds an operator from the operator registry with every child
// position individually instrumented, then instruments the root, so the
// resulting StatsNode tree has real parent/child structure.
func instrumentCase(t *testing.T, fc opCase, rt, st *storage.Table, c *Counters, at int, f storage.Fault) (*Instrumented, []*storage.FaultIterator) {
	t.Helper()
	ch, fis := buildChildren(rt, st, fc.children, at, f)
	nodes := make([]*StatsNode, fc.children)
	for i := range ch {
		w := Instrument(ch[i], "child", c)
		ch[i], nodes[i] = w, w.Node()
	}
	root := Instrument(fc.build(t, ch), "root", c, nodes...)
	return root, fis
}

// checkSpanTree asserts the four properties against the node tree.
func checkSpanTree(t *testing.T, root *StatsNode, spans []obs.Span, start time.Time) {
	t.Helper()
	// Timer granularity: each Open/Next takes two time.Now readings, so
	// allow a generous fixed slack per comparison.
	const tolerance = 2 * time.Millisecond

	// (1) zip: same count, names, and depths in pre-order.
	var nodes []*StatsNode
	var depths []int
	root.Walk(func(depth int, n *StatsNode) {
		nodes = append(nodes, n)
		depths = append(depths, depth)
	})
	if len(spans) != len(nodes) {
		t.Fatalf("span count = %d, node count = %d", len(spans), len(nodes))
	}
	for i, sp := range spans {
		if sp.Name != nodes[i].Label {
			t.Errorf("span %d name = %q, node label = %q", i, sp.Name, nodes[i].Label)
		}
		if sp.Depth != depths[i] {
			t.Errorf("span %d depth = %d, node depth = %d", i, sp.Depth, depths[i])
		}
		if sp.Cat != "operator" {
			t.Errorf("span %d category = %q, want operator", i, sp.Cat)
		}
		if sp.Dur != nodes[i].Stats.WallTime {
			t.Errorf("span %d dur = %v, node wall time = %v", i, sp.Dur, nodes[i].Stats.WallTime)
		}
		// (3) errors exactly on errored nodes.
		if (sp.Err != "") != (nodes[i].Err != nil) {
			t.Errorf("span %d err = %q, node err = %v", i, sp.Err, nodes[i].Err)
		}
	}
	// (2) parent covers children; (4) children tile the parent's start.
	if spans[0].Start != start {
		t.Errorf("root span starts at %v, want %v", spans[0].Start, start)
	}
	i := 0
	var check func(parent int)
	check = func(parent int) {
		n := nodes[parent]
		var childSum time.Duration
		at := spans[parent].Start
		for range n.Children {
			i++
			child := i
			if spans[child].Start != at {
				t.Errorf("child span %d starts at %v, want %v (back-to-back layout)",
					child, spans[child].Start, at)
			}
			childSum += spans[child].Dur
			at = at.Add(spans[child].Dur)
			check(child)
		}
		if spans[parent].Dur+tolerance < childSum {
			t.Errorf("parent span %d dur %v + tolerance < child sum %v",
				parent, spans[parent].Dur, childSum)
		}
	}
	check(0)
}

// TestSpanTreeProperty drives every operator clean and under each fault
// configuration, then checks the SpanTree properties on the resulting
// stats tree.
func TestSpanTreeProperty(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	faults := []struct {
		name string
		f    storage.Fault
	}{
		{"clean", storage.Fault{}},
		{"open", storage.Fault{FailOpen: true}},
		{"next-first", storage.Fault{FailNext: true, FailAfter: 0}},
		{"next-midstream", storage.Fault{FailNext: true, FailAfter: 2}},
	}
	for name, fc := range operatorRegistry(t, rt, st, &c) {
		positions := fc.children
		if positions == 0 {
			positions = 1 // leaf operators still get a clean run
		}
		for pos := 0; pos < positions; pos++ {
			for _, fault := range faults {
				if fc.children == 0 && fault.name != "clean" {
					continue // no child to inject into
				}
				t.Run(name+"/"+fault.name, func(t *testing.T) {
					root, _ := instrumentCase(t, fc, rt, st, &c, pos, fault.f)
					start := time.Now()
					runCycle(root, NewExecContext(context.Background(), NewGovernor(0, 0)))
					spans := SpanTree(root.Node(), start)
					checkSpanTree(t, root.Node(), spans, start)
				})
			}
		}
	}
}

// TestSpanTreeNotExecuted: a plan node that never ran (an index join's
// inner table) must still yield a span — with zero duration and no
// error.
func TestSpanTreeNotExecuted(t *testing.T) {
	ran := &StatsNode{Label: "indexjoin", Stats: Stats{Opens: 1, WallTime: time.Millisecond}}
	inner := &StatsNode{Label: "inner-table"} // present in the plan, never opened
	ran.Children = []*StatsNode{inner}
	start := time.Now()
	spans := SpanTree(ran, start)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[1].Dur != 0 || spans[1].Err != "" {
		t.Errorf("non-executed span = %+v, want zero duration and no error", spans[1])
	}
}

// TestSpanTreeNil: a nil tree yields no spans.
func TestSpanTreeNil(t *testing.T) {
	if spans := SpanTree(nil, time.Now()); spans != nil {
		t.Errorf("SpanTree(nil) = %v, want nil", spans)
	}
}

// TestConcurrentCountersScrape runs instrumented parallel hash joins
// while other goroutines continuously read the shared Counters and
// scrape the process metrics registry — the race detector (make race /
// the CI metrics job) verifies the atomic counter rewrite actually
// makes cross-goroutine scraping safe.
func TestConcurrentCountersScrape(t *testing.T) {
	rrel := relation.New(relation.SchemeOf("R", "k"))
	srel := relation.New(relation.SchemeOf("S", "k"))
	for i := 0; i < 300; i++ {
		rrel.AppendRaw([]relation.Value{relation.Int(int64(i % 30))})
		srel.AppendRaw([]relation.Value{relation.Int(int64(i % 30))})
	}
	rt := storage.NewTable("R", rrel)
	st := storage.NewTable("S", srel)

	var c Counters
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // scrape the shared counters
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				_ = c.TuplesRetrieved()
				_ = c.RowsProduced()
			}
		}
	}()
	go func() { // scrape the process registry (Prometheus text)
		defer wg.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-done:
				return
			default:
				buf.Reset()
				obs.Default.WritePrometheus(&buf)
			}
		}
	}()

	for run := 0; run < 5; run++ {
		p, err := NewParallelHashJoin(
			Instrument(NewScan(rt, &c), "scan R", &c),
			Instrument(NewScan(st, &c), "scan S", &c),
			relation.A("R", "k"), relation.A("S", "k"), InnerMode, 4)
		if err != nil {
			t.Fatal(err)
		}
		root := Instrument(p, "parallel join", &c)
		if _, err := CollectCtx(NewExecContext(context.Background(), nil), root, &c); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if c.TuplesRetrieved() == 0 || c.RowsProduced() == 0 {
		t.Error("counters did not accumulate across runs")
	}
}
