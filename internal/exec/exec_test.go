package exec

import (
	"math/rand"
	"testing"

	"freejoin/internal/algebra"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

func randRel(rnd *rand.Rand, name string, n int) *relation.Relation {
	r := relation.New(relation.SchemeOf(name, "k", "v"))
	for i := 0; i < n; i++ {
		var k relation.Value
		if rnd.Intn(6) == 0 {
			k = relation.Null()
		} else {
			k = relation.Int(int64(rnd.Intn(5)))
		}
		r.AppendRaw([]relation.Value{k, relation.Int(int64(rnd.Intn(5)))})
	}
	return r
}

func scanOf(t *testing.T, name string, rel *relation.Relation, c *Counters) (*Scan, *storage.Table) {
	t.Helper()
	tb := storage.NewTable(name, rel)
	return NewScan(tb, c), tb
}

// refFor computes the expected result of a physical join mode via the
// reference algebra.
func refFor(t *testing.T, mode JoinMode, l, r *relation.Relation, p predicate.Predicate) *relation.Relation {
	t.Helper()
	var out *relation.Relation
	var err error
	switch mode {
	case InnerMode:
		out, err = algebra.Join(l, r, p)
	case LeftOuterMode:
		out, err = algebra.LeftOuterJoin(l, r, p)
	case SemiMode:
		out, err = algebra.Semijoin(l, r, p)
	case AntiMode:
		out, err = algebra.Antijoin(l, r, p)
	}
	if err != nil {
		t.Fatal(err)
	}
	return out
}

var allModes = []JoinMode{InnerMode, LeftOuterMode, SemiMode, AntiMode}

func TestScanAndCollect(t *testing.T) {
	rel := relation.FromRows("R", []string{"k", "v"}, []any{1, 2}, []any{3, 4})
	var c Counters
	s, _ := scanOf(t, "R", rel, &c)
	out, err := Collect(s, &c)
	if err != nil {
		t.Fatal(err)
	}
	if !out.EqualBag(rel) {
		t.Error("scan must reproduce the table")
	}
	if c.TuplesRetrieved() != 2 || c.RowsProduced() != 2 {
		t.Errorf("counters = tuples %d rows %d", c.TuplesRetrieved(), c.RowsProduced())
	}
}

func TestIndexScan(t *testing.T) {
	rel := relation.FromRows("R", []string{"k", "v"},
		[]any{1, "a"}, []any{2, "b"}, []any{2, "c"}, []any{nil, "d"})
	tb := storage.NewTable("R", rel)
	if _, err := NewIndexScan(tb, "k", relation.Int(2), nil); err == nil {
		t.Fatal("missing index must fail")
	}
	if _, err := tb.BuildHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	var c Counters
	is, err := NewIndexScan(tb, "k", relation.Int(2), &c)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(is, &c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || c.TuplesRetrieved() != 2 {
		t.Fatalf("rows=%d retrieved=%d", out.Len(), c.TuplesRetrieved())
	}
	// Miss.
	is2, _ := NewIndexScan(tb, "k", relation.Int(99), nil)
	out2, _ := Collect(is2, nil)
	if out2.Len() != 0 {
		t.Error("miss must return no rows")
	}
	// Null key never matches.
	is3, _ := NewIndexScan(tb, "k", relation.Null(), nil)
	out3, _ := Collect(is3, nil)
	if out3.Len() != 0 {
		t.Error("null key must return no rows")
	}
}

func TestFilter(t *testing.T) {
	rel := relation.FromRows("R", []string{"k", "v"}, []any{1, 2}, []any{3, 4}, []any{nil, 9})
	s, _ := scanOf(t, "R", rel, nil)
	p := predicate.Cmp(predicate.GtOp, predicate.Col(relation.A("R", "k")), predicate.Const(relation.Int(1)))
	f, err := NewFilter(s, p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := algebra.Restrict(rel, p)
	if !out.EqualBag(want) {
		t.Errorf("filter mismatch:\n%v\nvs\n%v", out, want)
	}
	s2, _ := scanOf(t, "R", rel, nil)
	if _, err := NewFilter(s2, predicate.NewIsNull(relation.A("Z", "z"))); err == nil {
		t.Error("unbindable filter must fail")
	}
}

func TestProject(t *testing.T) {
	rel := relation.FromRows("R", []string{"k", "v"}, []any{1, 2}, []any{1, 3}, []any{1, 2})
	attrs := []relation.Attr{relation.A("R", "k")}

	s, _ := scanOf(t, "R", rel, nil)
	p, err := NewProject(s, attrs, false)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Collect(p, nil)
	want, _ := algebra.Project(rel, attrs, false)
	if !out.EqualBag(want) {
		t.Error("bag projection mismatch")
	}

	s2, _ := scanOf(t, "R", rel, nil)
	p2, _ := NewProject(s2, attrs, true)
	out2, _ := Collect(p2, nil)
	want2, _ := algebra.Project(rel, attrs, true)
	if !out2.EqualBag(want2) {
		t.Error("dedup projection mismatch")
	}

	s3, _ := scanOf(t, "R", rel, nil)
	if _, err := NewProject(s3, []relation.Attr{relation.A("Z", "z")}, false); err == nil {
		t.Error("unknown attribute must fail")
	}
}

func TestSort(t *testing.T) {
	rel := relation.FromRows("R", []string{"k", "v"}, []any{3, 1}, []any{1, 2}, []any{nil, 3}, []any{2, 4})
	s, _ := scanOf(t, "R", rel, nil)
	so, err := NewSort(s, []relation.Attr{relation.A("R", "k")})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(so, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatal("sort must preserve rows")
	}
	for i := 1; i < out.Len(); i++ {
		if out.Row(i-1).At(0).Compare(out.Row(i).At(0)) > 0 {
			t.Fatal("not sorted")
		}
	}
	if !out.Row(0).At(0).IsNull() {
		t.Error("nulls sort first")
	}
	s2, _ := scanOf(t, "R", rel, nil)
	if _, err := NewSort(s2, []relation.Attr{relation.A("Z", "z")}); err == nil {
		t.Error("unknown sort attribute must fail")
	}
}

func TestHashJoinAllModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	key := predicate.Eq(relation.A("R", "k"), relation.A("S", "k"))
	for trial := 0; trial < 40; trial++ {
		lrel := randRel(rnd, "R", rnd.Intn(10))
		rrel := randRel(rnd, "S", rnd.Intn(10))
		for _, mode := range allModes {
			ls, _ := scanOf(t, "R", lrel, nil)
			rs, _ := scanOf(t, "S", rrel, nil)
			hj, err := NewHashJoin(ls, rs,
				[]relation.Attr{relation.A("R", "k")}, []relation.Attr{relation.A("S", "k")},
				nil, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Collect(hj, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := refFor(t, mode, lrel, rrel, key)
			if !got.EqualBag(want) {
				t.Fatalf("trial %d mode %s: hash join mismatch\ngot:\n%v\nwant:\n%v", trial, mode, got, want)
			}
		}
	}
}

func TestHashJoinResidual(t *testing.T) {
	rnd := rand.New(rand.NewSource(18))
	full := predicate.NewAnd(
		predicate.Eq(relation.A("R", "k"), relation.A("S", "k")),
		predicate.Cmp(predicate.LtOp, predicate.Col(relation.A("R", "v")), predicate.Col(relation.A("S", "v"))))
	residual := predicate.Cmp(predicate.LtOp, predicate.Col(relation.A("R", "v")), predicate.Col(relation.A("S", "v")))
	for trial := 0; trial < 30; trial++ {
		lrel := randRel(rnd, "R", rnd.Intn(10))
		rrel := randRel(rnd, "S", rnd.Intn(10))
		for _, mode := range allModes {
			ls, _ := scanOf(t, "R", lrel, nil)
			rs, _ := scanOf(t, "S", rrel, nil)
			hj, err := NewHashJoin(ls, rs,
				[]relation.Attr{relation.A("R", "k")}, []relation.Attr{relation.A("S", "k")},
				residual, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := Collect(hj, nil)
			want := refFor(t, mode, lrel, rrel, full)
			if !got.EqualBag(want) {
				t.Fatalf("trial %d mode %s: residual hash join mismatch", trial, mode)
			}
		}
	}
}

func TestHashJoinErrors(t *testing.T) {
	lrel := randRel(rand.New(rand.NewSource(1)), "R", 3)
	rrel := randRel(rand.New(rand.NewSource(2)), "S", 3)
	ls, _ := scanOf(t, "R", lrel, nil)
	rs, _ := scanOf(t, "S", rrel, nil)
	if _, err := NewHashJoin(ls, rs, nil, nil, nil, InnerMode); err == nil {
		t.Error("empty key list must fail")
	}
	if _, err := NewHashJoin(ls, rs,
		[]relation.Attr{relation.A("Z", "z")}, []relation.Attr{relation.A("S", "k")}, nil, InnerMode); err == nil {
		t.Error("bad left key must fail")
	}
	if _, err := NewHashJoin(ls, rs,
		[]relation.Attr{relation.A("R", "k")}, []relation.Attr{relation.A("Z", "z")}, nil, InnerMode); err == nil {
		t.Error("bad right key must fail")
	}
}

func TestNestedLoopJoinAllModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(19))
	p := predicate.Cmp(predicate.GtOp, predicate.Col(relation.A("R", "k")), predicate.Col(relation.A("S", "k")))
	for trial := 0; trial < 40; trial++ {
		lrel := randRel(rnd, "R", rnd.Intn(10))
		rrel := randRel(rnd, "S", rnd.Intn(10))
		for _, mode := range allModes {
			ls, _ := scanOf(t, "R", lrel, nil)
			rs, _ := scanOf(t, "S", rrel, nil)
			nl, err := NewNestedLoopJoin(ls, rs, p, mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Collect(nl, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := refFor(t, mode, lrel, rrel, p)
			if !got.EqualBag(want) {
				t.Fatalf("trial %d mode %s: NL join mismatch\ngot:\n%v\nwant:\n%v", trial, mode, got, want)
			}
		}
	}
}

func TestIndexJoinAllModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(20))
	key := predicate.Eq(relation.A("R", "k"), relation.A("S", "k"))
	for trial := 0; trial < 40; trial++ {
		lrel := randRel(rnd, "R", rnd.Intn(10))
		rrel := randRel(rnd, "S", rnd.Intn(10))
		inner := storage.NewTable("S", rrel)
		if _, err := inner.BuildHashIndex("k"); err != nil {
			t.Fatal(err)
		}
		for _, mode := range allModes {
			ls, _ := scanOf(t, "R", lrel, nil)
			ij, err := NewIndexJoin(ls, inner, "k", relation.A("R", "k"), nil, mode, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Collect(ij, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := refFor(t, mode, lrel, rrel, key)
			if !got.EqualBag(want) {
				t.Fatalf("trial %d mode %s: index join mismatch\ngot:\n%v\nwant:\n%v", trial, mode, got, want)
			}
		}
	}
}

func TestIndexJoinCountsRetrievedTuples(t *testing.T) {
	// 1-row outer, large indexed inner: the Example 1 effect — only the
	// matching inner tuples are retrieved.
	outer := relation.FromRows("R", []string{"k", "v"}, []any{500, 0})
	innerRel := relation.New(relation.SchemeOf("S", "k", "v"))
	for i := 0; i < 10000; i++ {
		innerRel.AppendRaw([]relation.Value{relation.Int(int64(i)), relation.Int(0)})
	}
	inner := storage.NewTable("S", innerRel)
	if _, err := inner.BuildHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	var c Counters
	ls, _ := scanOf(t, "R", outer, &c)
	ij, err := NewIndexJoin(ls, inner, "k", relation.A("R", "k"), nil, InnerMode, &c)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(ij, &c)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
	if c.TuplesRetrieved() != 2 { // 1 outer + 1 indexed fetch
		t.Errorf("TuplesRetrieved = %d, want 2", c.TuplesRetrieved())
	}
}

func TestIndexJoinErrors(t *testing.T) {
	lrel := randRel(rand.New(rand.NewSource(3)), "R", 3)
	inner := storage.NewTable("S", randRel(rand.New(rand.NewSource(4)), "S", 3))
	ls, _ := scanOf(t, "R", lrel, nil)
	if _, err := NewIndexJoin(ls, inner, "k", relation.A("R", "k"), nil, InnerMode, nil); err == nil {
		t.Error("missing index must fail")
	}
	if _, err := inner.BuildHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndexJoin(ls, inner, "k", relation.A("Z", "z"), nil, InnerMode, nil); err == nil {
		t.Error("bad outer key must fail")
	}
}

func TestMergeJoin(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	key := predicate.Eq(relation.A("R", "k"), relation.A("S", "k"))
	for trial := 0; trial < 40; trial++ {
		lrel := randRel(rnd, "R", rnd.Intn(10))
		rrel := randRel(rnd, "S", rnd.Intn(10))
		for _, mode := range []JoinMode{InnerMode, LeftOuterMode} {
			ls, _ := scanOf(t, "R", lrel, nil)
			rs, _ := scanOf(t, "S", rrel, nil)
			lsort, err := NewSort(ls, []relation.Attr{relation.A("R", "k")})
			if err != nil {
				t.Fatal(err)
			}
			rsort, err := NewSort(rs, []relation.Attr{relation.A("S", "k")})
			if err != nil {
				t.Fatal(err)
			}
			mj, err := NewMergeJoin(lsort, rsort, relation.A("R", "k"), relation.A("S", "k"), mode)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Collect(mj, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := refFor(t, mode, lrel, rrel, key)
			if !got.EqualBag(want) {
				t.Fatalf("trial %d mode %s: merge join mismatch\ngot:\n%v\nwant:\n%v", trial, mode, got, want)
			}
		}
	}
}

func TestMergeJoinErrors(t *testing.T) {
	lrel := randRel(rand.New(rand.NewSource(5)), "R", 3)
	rrel := randRel(rand.New(rand.NewSource(6)), "S", 3)
	ls, _ := scanOf(t, "R", lrel, nil)
	rs, _ := scanOf(t, "S", rrel, nil)
	if _, err := NewMergeJoin(ls, rs, relation.A("R", "k"), relation.A("S", "k"), AntiMode); err == nil {
		t.Error("anti mode unsupported")
	}
	if _, err := NewMergeJoin(ls, rs, relation.A("Z", "z"), relation.A("S", "k"), InnerMode); err == nil {
		t.Error("bad key must fail")
	}
}

func TestJoinModeString(t *testing.T) {
	for m, want := range map[JoinMode]string{
		InnerMode: "inner", LeftOuterMode: "leftouter", SemiMode: "semi", AntiMode: "anti",
	} {
		if m.String() != want {
			t.Errorf("%d renders %q", m, m.String())
		}
	}
	if JoinMode(9).String() == "" {
		t.Error("unknown mode rendering")
	}
}

func TestJoinSchemeOverlapRejected(t *testing.T) {
	rel := randRel(rand.New(rand.NewSource(7)), "R", 3)
	s1, _ := scanOf(t, "R", rel, nil)
	s2, _ := scanOf(t, "R", rel, nil)
	if _, err := NewNestedLoopJoin(s1, s2, predicate.TruePred, InnerMode); err == nil {
		t.Error("overlapping schemes must fail")
	}
}
