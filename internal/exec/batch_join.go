package exec

import (
	"errors"
	"fmt"

	"freejoin/internal/hashutil"
	"freejoin/internal/obs"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// BatchHashJoin is the vectorized hash join: the right input is drained
// a batch at a time into a flat value arena indexed by an open-addressed
// hash table (no per-row map or key-string allocations), and the left
// input probes batch by batch, emitting concatenated / padded rows into
// a reused output batch. Governor accounting is amortized: one Reserve
// per build batch instead of one per row.
//
// A memory-budget trip during the build delegates to the row HashJoin
// over the same children: the arena is released, the right child is
// closed, and the row join re-opens it and brings its full degradation
// machinery — grace-hash spilling when the context allows it, the
// optimizer's index fallback (SetFallback) otherwise, and the typed
// resource error when neither applies.
type BatchHashJoin struct {
	left, right Iterator
	lattrs      []relation.Attr
	rattrs      []relation.Attr
	residualP   predicate.Predicate
	scheme      *relation.Scheme
	lkeys       []int
	rkeys       []int
	residual    *predicate.Bound
	mode        JoinMode
	mkFallback  func(left Iterator) (Iterator, error)
	size        int
	rwidth      int

	ec   *ExecContext
	held hold

	// Build arena: brows rows of rwidth values, each with its join-key
	// bytes in one arena and a precomputed hash for fast chain rejection.
	bvals    []relation.Value
	brows    int
	keyBytes []byte
	koff     []int32 // per build row: start offset into keyBytes
	hashes   []uint32
	heads    []int32 // open-addressed: bucket -> first row index (-1 empty)
	chain    []int32 // row -> next row in the same bucket (-1 end)
	mask     uint32

	// Probe state.
	bleft BatchIterator
	lb    *Batch
	lpos  int
	ldone bool
	kbuf  []byte
	crow  []relation.Value // scratch concat row for the residual

	// A left row whose match chain outgrew the output batch: emission
	// resumes here on the next NextBatch. The row stays valid because the
	// left child is not advanced until its batch is fully processed.
	pendRow     []relation.Value
	pendHash    uint32
	pendIdx     int32
	pendMatched bool

	out *Batch
	cur batchCursor

	delegate Iterator // row HashJoin after a build memory trip
}

// NewBatchHashJoin mirrors NewHashJoin with a configured batch size
// (size <= 0 means DefaultBatchSize or the execution context override).
func NewBatchHashJoin(left, right Iterator, leftKeys, rightKeys []relation.Attr, residual predicate.Predicate, mode JoinMode, size int) (*BatchHashJoin, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: hash join needs matching non-empty key lists")
	}
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	h := &BatchHashJoin{
		left: left, right: right,
		lattrs: leftKeys, rattrs: rightKeys, residualP: residual,
		scheme: sch, mode: mode, size: size,
		rwidth:  right.Scheme().Len(),
		pendIdx: -1,
	}
	for _, a := range leftKeys {
		p := left.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: hash join key %s not in left scheme", a)
		}
		h.lkeys = append(h.lkeys, p)
	}
	for _, a := range rightKeys {
		p := right.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: hash join key %s not in right scheme", a)
		}
		h.rkeys = append(h.rkeys, p)
	}
	if residual != nil {
		full, err := left.Scheme().Concat(right.Scheme())
		if err != nil {
			return nil, err
		}
		b, err := predicate.Bind(residual, full)
		if err != nil {
			return nil, fmt.Errorf("exec: hash join residual: %w", err)
		}
		h.residual = &b
	}
	return h, nil
}

// SetFallback registers the index degradation path, forwarded to the
// row hash join if a build trip delegates to it.
func (h *BatchHashJoin) SetFallback(mk func(left Iterator) (Iterator, error)) { h.mkFallback = mk }

// DegradedTo returns the row hash join serving the query after a build
// memory trip, or nil when the batch path ran.
func (h *BatchHashJoin) DegradedTo() Iterator { return h.delegate }

// Scheme implements Iterator.
func (h *BatchHashJoin) Scheme() *relation.Scheme { return h.scheme }

// Open implements Iterator: builds the arena from the right input a
// batch at a time.
func (h *BatchHashJoin) Open(ec *ExecContext) error {
	h.resetBuild(h.ec) // re-Open without Close: drop stale arena + charge
	h.ec = ec
	if h.delegate != nil {
		// A prior execution delegated: the row join owns the children and
		// any grace-hash spill state. Close it (idempotent if the plan was
		// closed normally) before rebuilding over the same children, or a
		// re-Open-without-Close would leak its runs.
		h.delegate.Close()
		h.delegate = nil
	}
	h.cur.reset()
	h.lb, h.lpos, h.ldone = nil, 0, false
	h.pendRow, h.pendIdx, h.pendMatched = nil, -1, false
	if err := ec.Err("hashjoin"); err != nil {
		return err
	}
	size := resolveBatchSize(ec, h.size)
	h.out = ensureBatch(h.out, h.scheme, size)
	h.bleft = Batching(h.left, size)
	bright := Batching(h.right, size)
	if err := h.right.Open(ec); err != nil {
		h.right.Close()
		return h.tripToRow(ec, err)
	}
	for {
		b, ok, err := bright.NextBatch()
		if err != nil {
			h.right.Close()
			h.resetBuild(ec)
			return h.tripToRow(ec, err)
		}
		if !ok {
			break
		}
		// Amortized accounting: one reservation per build batch.
		if cerr := h.held.chargeN(ec, "hashjoin", int64(b.Len()), b.Bytes()); cerr != nil {
			h.right.Close()
			h.resetBuild(ec)
			return h.tripToRow(ec, cerr)
		}
		h.appendBuild(b)
	}
	if err := h.right.Close(); err != nil {
		h.resetBuild(ec)
		return err
	}
	h.buildIndex()
	if err := h.left.Open(ec); err != nil {
		h.resetBuild(ec)
		return err
	}
	return nil
}

// tripToRow delegates a MemoryExceeded build failure to the row
// HashJoin over the same children (the right child has been closed and
// will be re-opened by the delegate, which the iterator contract makes
// a full reset). Non-memory errors propagate unchanged.
func (h *BatchHashJoin) tripToRow(ec *ExecContext, err error) error {
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != MemoryExceeded {
		return err
	}
	d, derr := NewHashJoin(h.left, h.right, h.lattrs, h.rattrs, h.residualP, h.mode)
	if derr != nil {
		return err // keep the original trip
	}
	if h.mkFallback != nil {
		d.SetFallback(h.mkFallback)
	}
	ec.Governor().Note("hashjoin: batch build memory trip, delegating to row hash join")
	obs.GovernorDegradations.Inc()
	if oerr := d.Open(ec); oerr != nil {
		return oerr
	}
	h.delegate = d
	return nil
}

// appendBuild copies a right batch's non-null-key rows into the arena.
func (h *BatchHashJoin) appendBuild(b *Batch) {
	n := b.Len()
	for i := 0; i < n; i++ {
		null := false
		for _, k := range h.rkeys {
			if b.IsNull(i, k) {
				null = true
				break
			}
		}
		if null {
			continue // null keys never match; only the left side drives emission
		}
		row := b.Row(i)
		start := len(h.keyBytes)
		kb := h.keyBytes
		for _, k := range h.rkeys {
			kb = relation.AppendJoinKey(kb, row[k])
		}
		h.keyBytes = kb
		h.koff = append(h.koff, int32(start))
		h.hashes = append(h.hashes, hashutil.Sum32(kb[start:]))
		h.bvals = append(h.bvals, row...)
		h.brows++
	}
}

// buildIndex lays the open-addressed chains over the arena.
func (h *BatchHashJoin) buildIndex() {
	n := 16
	for n < 2*h.brows {
		n <<= 1
	}
	h.mask = uint32(n - 1)
	if cap(h.heads) >= n {
		h.heads = h.heads[:n]
	} else {
		h.heads = make([]int32, n)
	}
	for i := range h.heads {
		h.heads[i] = -1
	}
	if cap(h.chain) >= h.brows {
		h.chain = h.chain[:h.brows]
	} else {
		h.chain = make([]int32, h.brows)
	}
	for i := 0; i < h.brows; i++ {
		b := h.hashes[i] & h.mask
		h.chain[i] = h.heads[b]
		h.heads[b] = int32(i)
	}
}

// buildRow returns build row j as a view into the arena.
func (h *BatchHashJoin) buildRow(j int32) []relation.Value {
	s := int(j) * h.rwidth
	e := s + h.rwidth
	return h.bvals[s:e:e]
}

// keyEnd returns the end offset of build row j's key bytes.
func (h *BatchHashJoin) keyEnd(j int32) int32 {
	if int(j)+1 < len(h.koff) {
		return h.koff[j+1]
	}
	return int32(len(h.keyBytes))
}

// keyEq reports whether build row j's key equals the current probe key
// in kbuf.
func (h *BatchHashJoin) keyEq(j int32) bool {
	return string(h.keyBytes[h.koff[j]:h.keyEnd(j)]) == string(h.kbuf)
}

// matches applies the residual (if any) to lrow ++ build row j.
func (h *BatchHashJoin) matches(lrow []relation.Value, j int32) bool {
	if h.residual == nil {
		return true
	}
	crow := h.crow[:0]
	crow = append(crow, lrow...)
	crow = append(crow, h.buildRow(j)...)
	h.crow = crow
	return h.residual.Holds(crow)
}

// chainHasMatch walks bucket chain idx for a key/residual match.
func (h *BatchHashJoin) chainHasMatch(lrow []relation.Value, hash uint32, idx int32) bool {
	for j := idx; j >= 0; j = h.chain[j] {
		if h.hashes[j] != hash || !h.keyEq(j) {
			continue
		}
		if h.matches(lrow, j) {
			return true
		}
	}
	return false
}

// NextBatch implements BatchIterator: the probe loop.
func (h *BatchHashJoin) NextBatch() (*Batch, bool, error) {
	if h.delegate != nil {
		return h.delegateBatch()
	}
	if err := h.ec.Err("hashjoin"); err != nil {
		return nil, false, err
	}
	out := h.out
	out.Reset()
	for {
		// Resume a suspended match chain before advancing the probe.
		if h.pendRow != nil {
			h.drainChain(out)
			if out.Full() {
				return out, true, nil
			}
		}
		if h.lb == nil || h.lpos >= h.lb.Len() {
			if h.ldone {
				break
			}
			b, ok, err := h.bleft.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				h.ldone = true
				break
			}
			h.lb, h.lpos = b, 0
		}
		for h.lpos < h.lb.Len() && !out.Full() && h.pendRow == nil {
			h.probeRow(out, h.lpos)
			h.lpos++
		}
		if out.Full() {
			return out, true, nil
		}
	}
	if out.Len() == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// probeRow probes left row i of the current batch, emitting into out.
// Inner/outer rows with matches hand off to the pending chain walk.
func (h *BatchHashJoin) probeRow(out *Batch, i int) {
	// Null bitmap short-circuit: a null key column feeds straight into
	// the 3VL outcome (no match) without evaluating the key equality.
	null := false
	for _, k := range h.lkeys {
		if h.lb.IsNull(i, k) {
			null = true
			break
		}
	}
	lrow := h.lb.Row(i)
	if null {
		switch h.mode {
		case LeftOuterMode:
			out.AppendPad(lrow)
		case AntiMode:
			out.AppendRow(lrow)
		}
		return
	}
	kb := h.kbuf[:0]
	for _, k := range h.lkeys {
		kb = relation.AppendJoinKey(kb, lrow[k])
	}
	h.kbuf = kb
	hash := hashutil.Sum32(kb)
	idx := h.heads[hash&h.mask]
	switch h.mode {
	case InnerMode, LeftOuterMode:
		if idx < 0 {
			// Empty bucket: resolve the miss inline.
			if h.mode == LeftOuterMode {
				out.AppendPad(lrow)
			}
			return
		}
		h.pendRow, h.pendHash, h.pendIdx, h.pendMatched = lrow, hash, idx, false
	case SemiMode:
		if h.chainHasMatch(lrow, hash, idx) {
			out.AppendRow(lrow)
		}
	case AntiMode:
		if !h.chainHasMatch(lrow, hash, idx) {
			out.AppendRow(lrow)
		}
	}
}

// drainChain emits the pending row's matches until the chain or the
// output batch is exhausted. kbuf holds the pending row's key and is
// not touched until the chain completes.
func (h *BatchHashJoin) drainChain(out *Batch) {
	for h.pendIdx >= 0 && !out.Full() {
		j := h.pendIdx
		h.pendIdx = h.chain[j]
		if h.hashes[j] != h.pendHash || !h.keyEq(j) {
			continue
		}
		if !h.matches(h.pendRow, j) {
			continue
		}
		h.pendMatched = true
		out.AppendConcat(h.pendRow, h.buildRow(j))
	}
	if h.pendIdx < 0 {
		if h.mode == LeftOuterMode && !h.pendMatched {
			if out.Full() {
				return // pad on the next call; pendRow stays set
			}
			out.AppendPad(h.pendRow)
		}
		h.pendRow = nil
	}
}

// delegateBatch serves the row delegate's stream re-batched.
func (h *BatchHashJoin) delegateBatch() (*Batch, bool, error) {
	out := h.out
	out.Reset()
	for !out.Full() {
		row, ok, err := h.delegate.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		out.AppendRow(row)
	}
	if out.Len() == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Next implements Iterator through the batch cursor (or the delegate
// directly, avoiding a pointless re-batching round trip).
func (h *BatchHashJoin) Next() ([]relation.Value, bool, error) {
	if h.delegate != nil {
		return h.delegate.Next()
	}
	return h.cur.next(h.NextBatch)
}

// resetBuild drops the arena and returns its governor charge, keeping
// the allocations for reuse within this Open cycle.
func (h *BatchHashJoin) resetBuild(ec *ExecContext) {
	h.bvals = h.bvals[:0]
	h.keyBytes = h.keyBytes[:0]
	h.koff = h.koff[:0]
	h.hashes = h.hashes[:0]
	h.brows = 0
	h.held.release(ec)
}

// BufferedRows implements Buffered: the arena's row count (or the
// delegate's buffer).
func (h *BatchHashJoin) BufferedRows() int {
	if h.delegate != nil {
		if b, ok := h.delegate.(Buffered); ok {
			return b.BufferedRows()
		}
		return 0
	}
	return h.brows
}

// SpillInfo implements Spiller: only the row delegate can spill.
func (h *BatchHashJoin) SpillInfo() SpillStats {
	if h.delegate != nil {
		if s, ok := h.delegate.(Spiller); ok {
			return s.SpillInfo()
		}
	}
	return SpillStats{}
}

// Close implements Iterator: the arena (and its charge) is released.
// After a delegation the row join owns both children and closes them.
func (h *BatchHashJoin) Close() error {
	h.cur.reset()
	h.out = releaseBatch(h.out)
	h.lb, h.pendRow, h.pendIdx = nil, nil, -1
	if h.delegate != nil {
		return h.delegate.Close()
	}
	h.resetBuild(h.ec)
	h.bvals, h.keyBytes, h.koff, h.hashes = nil, nil, nil, nil
	h.heads, h.chain = nil, nil
	return h.left.Close()
}

// BatchSemiReduce is the vectorized equi-mode SemiReduce: the right
// input's distinct join keys land in a key-bytes arena behind an
// open-addressed set, and each left batch is compacted in place down to
// the rows whose key is present — the semijoin never copies surviving
// rows. Only pure equi predicates qualify (NewBatchSemiReduce rejects
// anything else; the optimizer lowers those to the row operator).
//
// Governor accounting is amortized per batch over the newly retained
// distinct keys. A memory trip delegates to the row SemiReduce over the
// same children, which brings the spill-to-disk path.
type BatchSemiReduce struct {
	left, right Iterator
	pred        predicate.Predicate
	lkeys       []int
	rkeys       []int
	size        int

	ec   *ExecContext
	held hold

	keyBytes []byte
	koff     []int32
	hashes   []uint32
	nkeys    int
	heads    []int32
	chain    []int32
	mask     uint32

	bleft BatchIterator
	kbuf  []byte
	out   *Batch // delegate mode only: re-batching buffer
	cur   batchCursor

	rowsIn  int64
	rowsOut int64

	delegate *SemiReduce
}

// NewBatchSemiReduce builds the vectorized semijoin filter; p must be a
// pure equi predicate over left/right.
func NewBatchSemiReduce(left, right Iterator, p predicate.Predicate, size int) (*BatchSemiReduce, error) {
	la, ra, ok := predicate.EquiParts(p, left.Scheme(), right.Scheme())
	if !ok {
		return nil, fmt.Errorf("exec: batch semireduce requires a pure equi predicate")
	}
	s := &BatchSemiReduce{left: left, right: right, pred: p, size: size}
	for _, a := range la {
		s.lkeys = append(s.lkeys, left.Scheme().IndexOf(a))
	}
	for _, a := range ra {
		s.rkeys = append(s.rkeys, right.Scheme().IndexOf(a))
	}
	return s, nil
}

// Scheme implements Iterator: semijoins emit left rows unchanged.
func (s *BatchSemiReduce) Scheme() *relation.Scheme { return s.left.Scheme() }

// Equi reports the hash-filter fast path (always true for the batch
// operator).
func (s *BatchSemiReduce) Equi() bool { return true }

// ReduceStats returns the rows that entered and survived the filter
// since the last Open.
func (s *BatchSemiReduce) ReduceStats() (in, out int64) {
	if s.delegate != nil {
		return s.delegate.ReduceStats()
	}
	return s.rowsIn, s.rowsOut
}

// DegradedTo returns the row SemiReduce serving the query after a
// memory trip, or nil.
func (s *BatchSemiReduce) DegradedTo() Iterator {
	if s.delegate != nil {
		return s.delegate
	}
	return nil
}

// Open implements Iterator: drains the right input into the key set.
func (s *BatchSemiReduce) Open(ec *ExecContext) error {
	s.resetKeys(s.ec) // re-Open without Close: drop stale set + charge
	s.ec = ec
	if s.delegate != nil {
		// Close a prior execution's delegate (idempotent) so its state
		// cannot leak across a re-Open without Close.
		s.delegate.Close()
		s.delegate = nil
	}
	s.cur.reset()
	s.rowsIn, s.rowsOut = 0, 0
	if err := ec.Err("semireduce"); err != nil {
		return err
	}
	size := resolveBatchSize(ec, s.size)
	s.bleft = Batching(s.left, size)
	bright := Batching(s.right, size)
	if err := s.right.Open(ec); err != nil {
		s.right.Close()
		return err
	}
	s.rehash(16)
	for {
		b, ok, err := bright.NextBatch()
		if err != nil {
			s.right.Close()
			s.resetKeys(ec)
			return err
		}
		if !ok {
			break
		}
		newRows, newBytes := s.insertBatch(b)
		// Charge only the retained (newly distinct) keys, once per batch.
		if cerr := s.held.chargeN(ec, "semireduce", newRows, newBytes); cerr != nil {
			s.right.Close()
			s.resetKeys(ec)
			return s.tripToRow(ec, cerr)
		}
	}
	if err := s.right.Close(); err != nil {
		s.resetKeys(ec)
		return err
	}
	if err := s.left.Open(ec); err != nil {
		s.resetKeys(ec)
		return err
	}
	return nil
}

// tripToRow delegates a MemoryExceeded trip to the row SemiReduce over
// the same children (its spill path handles the budget); other errors
// propagate unchanged.
func (s *BatchSemiReduce) tripToRow(ec *ExecContext, err error) error {
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != MemoryExceeded {
		return err
	}
	d, derr := NewSemiReduce(s.left, s.right, s.pred)
	if derr != nil {
		return err // keep the original trip
	}
	ec.Governor().Note("semireduce: batch build memory trip, delegating to row semireduce")
	obs.GovernorDegradations.Inc()
	if oerr := d.Open(ec); oerr != nil {
		return oerr
	}
	s.delegate = d
	return nil
}

// rehash (re)builds the open-addressed index over the first nkeys keys
// with at least n buckets.
func (s *BatchSemiReduce) rehash(n int) {
	for n < 16 || n < 2*s.nkeys {
		n <<= 1
	}
	if cap(s.heads) >= n {
		s.heads = s.heads[:n]
	} else {
		s.heads = make([]int32, n)
	}
	for i := range s.heads {
		s.heads[i] = -1
	}
	s.mask = uint32(n - 1)
	if cap(s.chain) >= s.nkeys {
		s.chain = s.chain[:s.nkeys]
	} else {
		s.chain = append(s.chain[:cap(s.chain)], make([]int32, s.nkeys-cap(s.chain))...)
	}
	for i := 0; i < s.nkeys; i++ {
		b := s.hashes[i] & s.mask
		s.chain[i] = s.heads[b]
		s.heads[b] = int32(i)
	}
}

func (s *BatchSemiReduce) keyEnd(j int32) int32 {
	if int(j)+1 < len(s.koff) {
		return s.koff[j+1]
	}
	return int32(len(s.keyBytes))
}

// lookup reports whether the key in kb (with hash) is in the set.
func (s *BatchSemiReduce) lookup(kb []byte, hash uint32) bool {
	for j := s.heads[hash&s.mask]; j >= 0; j = s.chain[j] {
		if s.hashes[j] == hash && string(s.keyBytes[s.koff[j]:s.keyEnd(j)]) == string(kb) {
			return true
		}
	}
	return false
}

// insertBatch adds a right batch's distinct non-null keys to the set,
// returning the count and byte estimate of the retained source rows.
func (s *BatchSemiReduce) insertBatch(b *Batch) (rows, bytes int64) {
	n := b.Len()
	for i := 0; i < n; i++ {
		null := false
		for _, k := range s.rkeys {
			if b.IsNull(i, k) {
				null = true
				break
			}
		}
		if null {
			continue // null keys never match; the filter can skip them
		}
		row := b.Row(i)
		kb := s.kbuf[:0]
		for _, k := range s.rkeys {
			kb = relation.AppendJoinKey(kb, row[k])
		}
		s.kbuf = kb
		hash := hashutil.Sum32(kb)
		if s.lookup(kb, hash) {
			continue
		}
		start := len(s.keyBytes)
		s.keyBytes = append(s.keyBytes, kb...)
		s.koff = append(s.koff, int32(start))
		s.hashes = append(s.hashes, hash)
		j := int32(s.nkeys)
		s.nkeys++
		if 2*s.nkeys > len(s.heads) {
			s.rehash(2 * len(s.heads))
		} else {
			bkt := hash & s.mask
			s.chain = append(s.chain, s.heads[bkt])
			s.heads[bkt] = j
		}
		rows++
		bytes += rowBytes(row)
	}
	return rows, bytes
}

// NextBatch implements BatchIterator: left batches compacted in place.
func (s *BatchSemiReduce) NextBatch() (*Batch, bool, error) {
	if s.delegate != nil {
		return s.delegateBatch()
	}
	if err := s.ec.Err("semireduce"); err != nil {
		return nil, false, err
	}
	for {
		b, ok, err := s.bleft.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		n := b.Len()
		s.rowsIn += int64(n)
		obs.SemiReduceInputRows.Add(int64(n))
		keep := 0
		for i := 0; i < n; i++ {
			null := false
			for _, k := range s.lkeys {
				if b.IsNull(i, k) {
					null = true
					break
				}
			}
			if null {
				continue // a null key cannot match any right row
			}
			row := b.Row(i)
			kb := s.kbuf[:0]
			for _, k := range s.lkeys {
				kb = relation.AppendJoinKey(kb, row[k])
			}
			s.kbuf = kb
			if !s.lookup(kb, hashutil.Sum32(kb)) {
				continue
			}
			b.MoveRow(keep, i)
			keep++
		}
		if keep == 0 {
			continue // fully reduced batch: pull the next one
		}
		b.Truncate(keep)
		s.rowsOut += int64(keep)
		obs.SemiReduceOutputRows.Add(int64(keep))
		return b, true, nil
	}
}

// delegateBatch serves the row delegate's stream re-batched.
func (s *BatchSemiReduce) delegateBatch() (*Batch, bool, error) {
	if s.out == nil {
		s.out = NewBatch(s.Scheme(), resolveBatchSize(s.ec, s.size))
	}
	out := s.out
	out.Reset()
	for !out.Full() {
		row, ok, err := s.delegate.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		out.AppendRow(row)
	}
	if out.Len() == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Next implements Iterator through the batch cursor (or the delegate
// directly).
func (s *BatchSemiReduce) Next() ([]relation.Value, bool, error) {
	if s.delegate != nil {
		return s.delegate.Next()
	}
	return s.cur.next(s.NextBatch)
}

// resetKeys drops the key set and returns its governor charge.
func (s *BatchSemiReduce) resetKeys(ec *ExecContext) {
	s.keyBytes = s.keyBytes[:0]
	s.koff = s.koff[:0]
	s.hashes = s.hashes[:0]
	s.chain = s.chain[:0]
	s.nkeys = 0
	s.held.release(ec)
}

// BufferedRows implements Buffered: the distinct keys held (or the
// delegate's buffer).
func (s *BatchSemiReduce) BufferedRows() int {
	if s.delegate != nil {
		return s.delegate.BufferedRows()
	}
	return s.nkeys
}

// SpillInfo implements Spiller: only the row delegate can spill.
func (s *BatchSemiReduce) SpillInfo() SpillStats {
	if s.delegate != nil {
		return s.delegate.SpillInfo()
	}
	return SpillStats{}
}

// Close implements Iterator: the key set (and its charge) is released.
// After a delegation the row operator owns both children.
func (s *BatchSemiReduce) Close() error {
	s.cur.reset()
	s.out = releaseBatch(s.out)
	if s.delegate != nil {
		return s.delegate.Close()
	}
	s.resetKeys(s.ec)
	s.keyBytes, s.koff, s.hashes, s.heads, s.chain = nil, nil, nil, nil, nil
	return s.left.Close()
}
