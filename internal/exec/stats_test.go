package exec

import (
	"fmt"
	"sync"
	"testing"

	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// TestInstrumentStats checks the per-operator accounting: rows out, base
// tuples attributed by counter deltas (inclusive at the join, exclusive
// via SelfTuples), and peak buffered rows on a blocking operator.
func TestInstrumentStats(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	rk, sk := relation.A("R", "k"), relation.A("S", "k")

	wrapR := Instrument(NewScan(rt, &c), "scan R", &c)
	wrapS := Instrument(NewScan(st, &c), "scan S", &c)
	hj, err := NewHashJoin(wrapR, wrapS, []relation.Attr{rk}, []relation.Attr{sk}, nil, InnerMode)
	if err != nil {
		t.Fatal(err)
	}
	root := Instrument(hj, "join", &c, wrapR.Node(), wrapS.Node())

	out, err := Collect(root, &c)
	if err != nil {
		t.Fatal(err)
	}
	n := root.Node()
	if got := n.Stats.RowsOut; got != int64(out.Len()) {
		t.Errorf("join RowsOut = %d, want %d", got, out.Len())
	}
	if got := wrapR.Node().Stats.TuplesRetrieved; got != int64(rt.Relation().Len()) {
		t.Errorf("scan R tuples = %d, want %d", got, rt.Relation().Len())
	}
	if got := wrapS.Node().Stats.TuplesRetrieved; got != int64(st.Relation().Len()) {
		t.Errorf("scan S tuples = %d, want %d", got, st.Relation().Len())
	}
	// Inclusive at the root covers both scans; the join itself touches no
	// base table.
	if got, want := n.Stats.TuplesRetrieved, int64(rt.Relation().Len()+st.Relation().Len()); got != want {
		t.Errorf("join inclusive tuples = %d, want %d", got, want)
	}
	if got := n.SelfTuples(); got != 0 {
		t.Errorf("hash join SelfTuples = %d, want 0", got)
	}
	if got, want := n.RowsIn(), wrapR.Node().Stats.RowsOut+wrapS.Node().Stats.RowsOut; got != want {
		t.Errorf("join RowsIn = %d, want %d", got, want)
	}
	if n.Stats.PeakBuffered == 0 {
		t.Error("hash join PeakBuffered = 0, want > 0 (it materializes the build side)")
	}
	if !n.Executed() || n.Stats.Opens != 1 {
		t.Errorf("join Opens = %d, want 1", n.Stats.Opens)
	}
	// NextCalls includes the end-of-stream call.
	if got := n.Stats.NextCalls; got != int64(out.Len())+1 {
		t.Errorf("join NextCalls = %d, want %d", got, out.Len()+1)
	}
}

// TestInstrumentIndexJoinAttribution checks that an index join's lookups
// are attributed to the join itself, not to any child — the paper's
// Example 1 effect made visible per operator.
func TestInstrumentIndexJoinAttribution(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	rk := relation.A("R", "k")

	wrapR := Instrument(NewScan(rt, &c), "scan R", &c)
	ij, err := NewIndexJoin(wrapR, st, "k", rk, nil, InnerMode, &c)
	if err != nil {
		t.Fatal(err)
	}
	root := Instrument(ij, "indexjoin", &c, wrapR.Node())
	out, err := Collect(root, &c)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: R keys 2,2,3 hit S rows {2a,2b,3c} → 2+2+1 lookups retrieved.
	if got := root.Node().SelfTuples(); got != int64(out.Len()) {
		t.Errorf("index join SelfTuples = %d, want %d (one per fetched match)", got, out.Len())
	}
	if got := wrapR.Node().Stats.TuplesRetrieved; got != int64(rt.Relation().Len()) {
		t.Errorf("outer scan tuples = %d, want %d", got, rt.Relation().Len())
	}
}

// TestInstrumentedParallelRace runs several instrumented trees rooted at
// ParallelHashJoin concurrently (each with its own Counters). Under
// `go test -race` this proves the instrumentation adds no shared state to
// the operator's internal worker pool.
func TestInstrumentedParallelRace(t *testing.T) {
	rt, st := contractTables(t)
	rk, sk := relation.A("R", "k"), relation.A("S", "k")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var c Counters
			wrapR := Instrument(NewScan(rt, &c), "scan R", &c)
			wrapS := Instrument(NewScan(st, &c), "scan S", &c)
			pj, err := NewParallelHashJoin(wrapR, wrapS, rk, sk, InnerMode, 4)
			if err != nil {
				errs <- err
				return
			}
			root := Instrument(pj, "parallel join", &c, wrapR.Node(), wrapS.Node())
			out, err := Collect(root, &c)
			if err != nil {
				errs <- err
				return
			}
			if root.Node().Stats.RowsOut != int64(out.Len()) {
				errs <- fmt.Errorf("RowsOut = %d, want %d", root.Node().Stats.RowsOut, out.Len())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkProjectDedup measures the deduplicating projection, whose key
// encoding reuses a scratch buffer across rows instead of allocating one
// per input row.
func BenchmarkProjectDedup(b *testing.B) {
	rel := relation.New(relation.SchemeOf("R", "k", "v"))
	for i := 0; i < 4096; i++ {
		rel.AppendRaw([]relation.Value{relation.Int(int64(i % 64)), relation.Int(int64(i))})
	}
	tb := storage.NewTable("R", rel)
	proj, err := NewProject(NewScan(tb, nil), []relation.Attr{relation.A("R", "k")}, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := proj.Open(nil); err != nil {
			b.Fatal(err)
		}
		for {
			_, ok, err := proj.Next()
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				break
			}
		}
		if err := proj.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestInstrumentStatsResetOnReopen drives an instrumented hash join
// into the grace-hash degradation (a tiny byte budget with spill on)
// and re-opens it: the second cycle's stats — NextCalls, RowsOut,
// TuplesRetrieved, and SpillStats — must describe that cycle alone, not
// accumulate onto the first. Opens stays cumulative: it counts cycles.
func TestInstrumentStatsResetOnReopen(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	rk, sk := relation.A("R", "k"), relation.A("S", "k")
	hj, err := NewHashJoin(NewScan(rt, &c), NewScan(st, &c), []relation.Attr{rk}, []relation.Attr{sk}, nil, InnerMode)
	if err != nil {
		t.Fatal(err)
	}
	root := Instrument(hj, "join", &c)
	ec, gov, dir := spillCtx(t, 120)

	drain := func() int {
		t.Helper()
		rows := 0
		if err := root.Open(ec); err != nil {
			t.Fatal(err)
		}
		for {
			_, ok, err := root.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			rows++
		}
		if err := root.Close(); err != nil {
			t.Fatal(err)
		}
		return rows
	}

	rows1 := drain()
	first := root.Node().Stats
	if rows1 == 0 {
		t.Fatal("join produced no rows")
	}
	if !first.Spill.Spilled() {
		t.Fatalf("budget of 120 bytes did not force the grace-hash path: %+v", first.Spill)
	}
	rows2 := drain()
	second := root.Node().Stats
	if rows2 != rows1 {
		t.Fatalf("re-opened join changed its output: %d rows then %d", rows1, rows2)
	}
	if second.Opens != 2 {
		t.Errorf("Opens = %d, want 2 (cumulative across cycles)", second.Opens)
	}
	// Everything else is per-cycle: equal to the first run, not doubled.
	first.Opens, second.Opens = 0, 0
	first.WallTime, second.WallTime = 0, 0
	if first != second {
		t.Errorf("re-Open accumulated stats instead of resetting:\nfirst  %+v\nsecond %+v", first, second)
	}
	checkSpillDrained(t, gov, dir)
}
