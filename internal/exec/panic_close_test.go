package exec

import (
	"context"
	"testing"

	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// A panic out of an operator's Next mid-collection (the adversarial
// storage.Fault{Panic: true} case) must still close the iterator on the
// unwind: the governor charges, buffers and spill state an open
// iterator holds are released by Close, and the server's per-session
// recovery above us depends on nothing leaking past the panic.
func TestCollectClosesIteratorOnPanic(t *testing.T) {
	rel := relation.New(relation.SchemeOf("R", "k"))
	for i := 0; i < 8; i++ {
		rel.AppendRaw([]relation.Value{relation.Int(int64(i))})
	}
	ft := storage.NewFaultTable(storage.NewTable("R", rel),
		storage.Fault{FailNext: true, FailAfter: 3, Panic: true})
	fi := ft.Iterator()

	gov := NewGovernor(0, 1<<20)
	ec := NewExecContext(context.Background(), gov)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		CollectCtx(ec, fi, nil)
	}()
	if recovered == nil {
		t.Fatal("injected Next panic did not propagate")
	}
	if !fi.Balanced() {
		t.Fatalf("iterator not closed on panic unwind: opens=%d closes=%d",
			fi.OpenCalls, fi.CloseCalls)
	}
	if gov.UsedBytes() != 0 {
		t.Fatalf("governor holds %d bytes after panic unwind", gov.UsedBytes())
	}
}

// The panic-safety defer must not double-close on the normal path: a
// clean collection closes exactly once.
func TestCollectClosesOnceOnSuccess(t *testing.T) {
	rel := relation.New(relation.SchemeOf("R", "k"))
	rel.AppendRaw([]relation.Value{relation.Int(1)})
	ft := storage.NewFaultTable(storage.NewTable("R", rel), storage.Fault{})
	fi := ft.Iterator()
	if _, err := CollectCtx(NewExecContext(context.Background(), nil), fi, nil); err != nil {
		t.Fatal(err)
	}
	if fi.CloseCalls != 1 {
		t.Fatalf("clean collection closed %d times, want exactly 1", fi.CloseCalls)
	}
}
