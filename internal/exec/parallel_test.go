package exec

import (
	"math/rand"
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func TestParallelHashJoinAllModes(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	key := predicate.Eq(relation.A("R", "k"), relation.A("S", "k"))
	for trial := 0; trial < 40; trial++ {
		lrel := randRel(rnd, "R", rnd.Intn(20))
		rrel := randRel(rnd, "S", rnd.Intn(20))
		for _, mode := range allModes {
			for _, workers := range []int{0, 1, 3} {
				ls, _ := scanOf(t, "R", lrel, nil)
				rs, _ := scanOf(t, "S", rrel, nil)
				pj, err := NewParallelHashJoin(ls, rs,
					relation.A("R", "k"), relation.A("S", "k"), mode, workers)
				if err != nil {
					t.Fatal(err)
				}
				got, err := Collect(pj, nil)
				if err != nil {
					t.Fatal(err)
				}
				want := refFor(t, mode, lrel, rrel, key)
				if !got.EqualBag(want) {
					t.Fatalf("trial %d mode %s workers %d: parallel join mismatch\ngot:\n%v\nwant:\n%v",
						trial, mode, workers, got, want)
				}
			}
		}
	}
}

func TestParallelHashJoinErrors(t *testing.T) {
	lrel := randRel(rand.New(rand.NewSource(1)), "R", 3)
	rrel := randRel(rand.New(rand.NewSource(2)), "S", 3)
	ls, _ := scanOf(t, "R", lrel, nil)
	rs, _ := scanOf(t, "S", rrel, nil)
	if _, err := NewParallelHashJoin(ls, rs, relation.A("Z", "z"), relation.A("S", "k"), InnerMode, 2); err == nil {
		t.Error("bad left key must fail")
	}
	if _, err := NewParallelHashJoin(ls, rs, relation.A("R", "k"), relation.A("Z", "z"), InnerMode, 2); err == nil {
		t.Error("bad right key must fail")
	}
	if _, err := NewParallelHashJoin(ls, ls, relation.A("R", "k"), relation.A("R", "k"), InnerMode, 2); err == nil {
		t.Error("overlapping schemes must fail")
	}
}
