package exec

import (
	"math/rand"
	"testing"

	"freejoin/internal/algebra"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// TestHashGOJMatchesAlgebra: the streaming operator agrees with the eqn
// (14) reference implementation on random inputs and random S choices.
func TestHashGOJMatchesAlgebra(t *testing.T) {
	rnd := rand.New(rand.NewSource(33))
	key := predicate.Eq(relation.A("R", "k"), relation.A("S", "k"))
	for trial := 0; trial < 60; trial++ {
		lrel := randRel(rnd, "R", rnd.Intn(12))
		rrel := randRel(rnd, "S", rnd.Intn(12))
		var s []relation.Attr
		switch rnd.Intn(3) {
		case 0:
			s = []relation.Attr{relation.A("R", "k")}
		case 1:
			s = []relation.Attr{relation.A("R", "v")}
		default:
			s = lrel.Scheme().Attrs()
		}
		want, err := algebra.GeneralizedOuterJoin(lrel, rrel, key, s)
		if err != nil {
			t.Fatal(err)
		}
		ls, _ := scanOf(t, "R", lrel, nil)
		rs, _ := scanOf(t, "S", rrel, nil)
		goj, err := NewHashGOJ(ls, rs,
			[]relation.Attr{relation.A("R", "k")}, []relation.Attr{relation.A("S", "k")}, s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Collect(goj, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualBag(want) {
			t.Fatalf("trial %d (S=%v): hash GOJ mismatch\ngot:\n%v\nwant:\n%v", trial, s, got, want)
		}
	}
}

func TestHashGOJAsOuterjoin(t *testing.T) {
	// GOJ[sch(X)] on duplicate-free X behaves as the left outerjoin.
	lrel := relation.FromRows("R", []string{"k", "v"},
		[]any{1, 10}, []any{2, 20}, []any{nil, 30})
	rrel := relation.FromRows("S", []string{"k", "w"},
		[]any{1, 100}, []any{1, 101})
	key := predicate.Eq(relation.A("R", "k"), relation.A("S", "k"))
	want, err := algebra.LeftOuterJoin(lrel, rrel, key)
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := scanOf(t, "R", lrel, nil)
	rs, _ := scanOf(t, "S", rrel, nil)
	goj, err := NewHashGOJ(ls, rs,
		[]relation.Attr{relation.A("R", "k")}, []relation.Attr{relation.A("S", "k")},
		lrel.Scheme().Attrs())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(goj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualBag(want) {
		t.Fatalf("GOJ[sch(X)] != outerjoin:\n%v\nvs\n%v", got, want)
	}
}

func TestHashGOJErrors(t *testing.T) {
	lrel := randRel(rand.New(rand.NewSource(1)), "R", 3)
	rrel := randRel(rand.New(rand.NewSource(2)), "S", 3)
	ls, _ := scanOf(t, "R", lrel, nil)
	rs, _ := scanOf(t, "S", rrel, nil)
	rk := []relation.Attr{relation.A("S", "k")}
	lk := []relation.Attr{relation.A("R", "k")}
	if _, err := NewHashGOJ(ls, rs, nil, nil, nil); err == nil {
		t.Error("empty keys must fail")
	}
	if _, err := NewHashGOJ(ls, rs, []relation.Attr{relation.A("Z", "z")}, rk, nil); err == nil {
		t.Error("bad left key must fail")
	}
	if _, err := NewHashGOJ(ls, rs, lk, []relation.Attr{relation.A("Z", "z")}, nil); err == nil {
		t.Error("bad right key must fail")
	}
	if _, err := NewHashGOJ(ls, rs, lk, rk, []relation.Attr{relation.A("Z", "z")}); err == nil {
		t.Error("S outside the left scheme must fail")
	}
}
