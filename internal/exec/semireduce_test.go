package exec

import (
	"context"
	"testing"

	"freejoin/internal/obs"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// SemiReduce-specific behavior on top of the generic registry suites:
// the hash-filter vs. scan path split, bag equality against the
// nested-loop semijoin oracle, spill-mode equivalence, and the
// reduction-ratio accounting the Yannakakis observability rides on.

func semiOracle(t *testing.T, rt, st *storage.Table, p predicate.Predicate) *relation.Relation {
	t.Helper()
	nl, err := NewNestedLoopJoin(NewScan(rt, nil), NewScan(st, nil), p, SemiMode)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Collect(nl, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestSemiReducePathsMatchOracle(t *testing.T) {
	rt, st := spillTables(t, 300, 200)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	preds := map[string]predicate.Predicate{
		"equi":     predicate.Eq(rk, sk),
		"non-equi": predicate.Cmp(predicate.LtOp, predicate.Col(rk), predicate.Col(sk)),
	}
	for name, p := range preds {
		t.Run(name, func(t *testing.T) {
			ref := semiOracle(t, rt, st, p)
			s, err := NewSemiReduce(NewScan(rt, nil), NewScan(st, nil), p)
			if err != nil {
				t.Fatal(err)
			}
			if wantEqui := name == "equi"; s.Equi() != wantEqui {
				t.Fatalf("Equi() = %v, want %v", s.Equi(), wantEqui)
			}
			got, err := Collect(s, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ref.EqualBag(got) {
				t.Fatalf("semireduce bag differs from semijoin oracle: want %d rows, got %d",
					ref.Len(), got.Len())
			}
			in, out := s.ReduceStats()
			if in != int64(rt.Relation().Len()) {
				t.Errorf("rows in = %d, want %d", in, rt.Relation().Len())
			}
			if out != int64(got.Len()) {
				t.Errorf("rows out = %d, want %d", out, got.Len())
			}
			if out > in {
				t.Errorf("a filter grew its input: in=%d out=%d", in, out)
			}
		})
	}
}

// TestSemiReduceSpill forces the budget trip in both modes: the bag must
// match the unbudgeted run, the operator must report its run, and the
// governor and spill dir must drain.
func TestSemiReduceSpill(t *testing.T) {
	rt, st := spillTables(t, 300, 200)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	for name, p := range map[string]predicate.Predicate{
		"equi":     predicate.Eq(rk, sk),
		"non-equi": predicate.Cmp(predicate.LtOp, predicate.Col(rk), predicate.Col(sk)),
	} {
		t.Run(name, func(t *testing.T) {
			ref := semiOracle(t, rt, st, p)
			s, err := NewSemiReduce(NewScan(rt, nil), NewScan(st, nil), p)
			if err != nil {
				t.Fatal(err)
			}
			runs0 := obs.SpillRuns.Value()
			ec, gov, dir := spillCtx(t, 96)
			got, err := CollectCtx(ec, s, nil)
			if err != nil {
				t.Fatalf("spilled run failed: %v", err)
			}
			if !ref.EqualBag(got) {
				t.Fatalf("spilled bag differs: want %d rows, got %d", ref.Len(), got.Len())
			}
			if st := s.SpillInfo(); !st.Spilled() || st.Runs == 0 {
				t.Errorf("expected a recorded spill run, got %+v", st)
			}
			if obs.SpillRuns.Value() == runs0 {
				t.Error("oj_spill_runs_total did not move")
			}
			checkSpillDrained(t, gov, dir)
		})
	}
}

// TestSemiReduceNullKeys: null keys match nothing on either side, in
// both modes (the filter drops null build keys, probes with null keys
// miss).
func TestSemiReduceNullKeys(t *testing.T) {
	r := relation.FromRows("R", []string{"k"}, []any{1}, []any{nil}, []any{2})
	s := relation.FromRows("S", []string{"k"}, []any{nil}, []any{2})
	rt, st := storage.NewTable("R", r), storage.NewTable("S", s)
	sr, err := NewSemiReduce(NewScan(rt, nil), NewScan(st, nil),
		predicate.Eq(relation.A("R", "k"), relation.A("S", "k")))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(sr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("want only R(2) to survive, got %d rows:\n%v", got.Len(), got)
	}
}

// TestSemiReduceObsCounters: the process-wide reduction counters absorb
// per-operator traffic.
func TestSemiReduceObsCounters(t *testing.T) {
	rt, st := contractTables(t)
	in0, out0 := obs.SemiReduceInputRows.Value(), obs.SemiReduceOutputRows.Value()
	s, err := NewSemiReduce(NewScan(rt, nil), NewScan(st, nil),
		predicate.Eq(relation.A("R", "k"), relation.A("S", "k")))
	if err != nil {
		t.Fatal(err)
	}
	if err := runCycle(s, NewExecContext(context.Background(), nil)); err != nil {
		t.Fatal(err)
	}
	if d := obs.SemiReduceInputRows.Value() - in0; d != 5 {
		t.Errorf("input counter moved by %d, want 5", d)
	}
	if d := obs.SemiReduceOutputRows.Value() - out0; d != 3 {
		t.Errorf("output counter moved by %d, want 3 (k=2,2,3 survive)", d)
	}
}
