package exec

import (
	"sync"

	"freejoin/internal/relation"
)

// slabPool recycles value slabs (batch backing stores, nested-loop
// chunks) across operator lifetimes. Operators are rebuilt per
// execution, so without recycling each query churns multiple megabytes
// of pointer-bearing slabs and forces a collector cycle — which rescans
// every resident relation — every few queries.
var slabPool sync.Pool

// getSlab returns a value slab with length n. Contents are unspecified;
// callers must overwrite before reading.
func getSlab(n int) []relation.Value {
	if v, ok := slabPool.Get().(*[]relation.Value); ok && cap(*v) >= n {
		return (*v)[:n]
	}
	return make([]relation.Value, n)
}

// putSlab recycles s. The caller yields ownership: the slab must not be
// read or written afterwards.
func putSlab(s []relation.Value) {
	if cap(s) == 0 {
		return
	}
	s = s[:0]
	slabPool.Put(&s)
}

// releaseBatch recycles a batch's backing slab and neutralizes the
// batch; it always returns nil so callers can clear their field in the
// same statement (making a second Close a no-op on an already-released
// batch).
func releaseBatch(b *Batch) *Batch {
	if b != nil {
		putSlab(b.vals)
		b.vals = nil
	}
	return nil
}

// DefaultBatchSize is the number of rows a batch operator accumulates
// per NextBatch call when no explicit size is configured. 1024 rows of
// 40-byte Values keeps a typical batch within L2 while amortizing the
// per-call interface and governor costs ~1000x.
const DefaultBatchSize = 1024

// Batch is a row-slab of tuples: Len() rows of Width() values stored
// contiguously in a single backing slice, plus a null bitmap with one
// bit per (row, column) slot. The bitmap is maintained by the append
// methods and mirrors relation.Value.IsNull; batch operators use it for
// O(1) null tests feeding S2's 3-valued predicate logic — a null join
// key short-circuits to the outerjoin padding / anti-join branch
// without ever running the equality predicate, and outer padding sets
// the padded columns' bits wholesale.
//
// Ownership follows the iterator contract: a batch returned by
// NextBatch is owned by the producer and valid only until the caller's
// next NextBatch/Next/Close on that producer. The caller MAY mutate it
// in place (filters compact survivors into the same slab); producers
// never re-read a batch they have emitted.
type Batch struct {
	scheme  *relation.Scheme
	width   int
	n       int
	capRows int
	vals    []relation.Value // n*width values, row-major
	nulls   []uint64         // bit i*width+j set iff Row(i)[j] is null
}

// NewBatch returns an empty batch over scheme with capacity rows
// preallocated.
func NewBatch(scheme *relation.Scheme, capacity int) *Batch {
	if capacity <= 0 {
		capacity = DefaultBatchSize
	}
	w := scheme.Len()
	return &Batch{
		scheme:  scheme,
		width:   w,
		capRows: capacity,
		vals:    getSlab(capacity * w)[:0],
		nulls:   make([]uint64, (capacity*w+63)/64),
	}
}

// Scheme returns the batch's row scheme.
func (b *Batch) Scheme() *relation.Scheme { return b.scheme }

// Len returns the number of rows currently in the batch.
func (b *Batch) Len() int { return b.n }

// Width returns the number of columns per row.
func (b *Batch) Width() int { return b.width }

// Cap returns the row capacity the batch was allocated with.
func (b *Batch) Cap() int { return b.capRows }

// Full reports whether the batch has reached its allocated capacity.
func (b *Batch) Full() bool { return b.n >= b.capRows }

// Reset empties the batch for reuse, keeping the allocations.
func (b *Batch) Reset() {
	b.vals = b.vals[:0]
	b.n = 0
	for i := range b.nulls {
		b.nulls[i] = 0
	}
}

// Row returns the i-th row as a view into the slab. The view is valid
// under the same ownership rules as the batch itself.
func (b *Batch) Row(i int) []relation.Value {
	s := i * b.width
	e := s + b.width
	return b.vals[s:e:e]
}

// IsNull reports whether column col of row i is null, from the bitmap.
func (b *Batch) IsNull(i, col int) bool {
	bit := i*b.width + col
	return b.nulls[bit>>6]&(1<<(uint(bit)&63)) != 0
}

func (b *Batch) setNull(i, col int) {
	bit := i*b.width + col
	b.growNulls(bit)
	b.nulls[bit>>6] |= 1 << (uint(bit) & 63)
}

// growNulls ensures the bitmap covers bit (appends past the original
// capacity grow the slab; the bitmap must follow).
func (b *Batch) growNulls(bit int) {
	for len(b.nulls) <= bit>>6 {
		b.nulls = append(b.nulls, 0)
	}
}

// noteRowNulls records the null bits of the just-appended row i by
// scanning its values.
func (b *Batch) noteRowNulls(i int) {
	row := b.Row(i)
	base := i * b.width
	b.growNulls(base + b.width - 1)
	for j := range row {
		if row[j].IsNull() {
			b.nulls[(base+j)>>6] |= 1 << (uint(base+j) & 63)
		}
	}
}

// AppendRow copies row into the batch and updates the null bitmap.
func (b *Batch) AppendRow(row []relation.Value) {
	b.vals = append(b.vals, row...)
	i := b.n
	b.n++
	b.noteRowNulls(i)
}

// AppendConcat appends the concatenation of a left and right row — the
// hash-join match emission — without an intermediate allocation.
func (b *Batch) AppendConcat(l, r []relation.Value) {
	b.vals = append(b.vals, l...)
	b.vals = append(b.vals, r...)
	i := b.n
	b.n++
	b.noteRowNulls(i)
}

// AppendPad appends row padded with nulls up to the batch width — the
// outerjoin null-padding emission. The padded columns' null bits are set
// directly; row's bits are scanned.
func (b *Batch) AppendPad(row []relation.Value) {
	b.vals = append(b.vals, row...)
	for j := len(row); j < b.width; j++ {
		b.vals = append(b.vals, relation.Value{})
	}
	i := b.n
	b.n++
	b.noteRowNulls(i)
}

// MoveRow copies row src over row dst within the batch (dst <= src) —
// the in-place compaction a batch filter uses — and fixes the bitmap.
func (b *Batch) MoveRow(dst, src int) {
	if dst == src {
		return
	}
	copy(b.Row(dst), b.Row(src))
	base := dst * b.width
	row := b.Row(dst)
	for j := range row {
		bit := base + j
		if row[j].IsNull() {
			b.nulls[bit>>6] |= 1 << (uint(bit) & 63)
		} else {
			b.nulls[bit>>6] &^= 1 << (uint(bit) & 63)
		}
	}
}

// Truncate shortens the batch to n rows.
func (b *Batch) Truncate(n int) {
	if n < b.n {
		b.vals = b.vals[:n*b.width]
		b.n = n
	}
}

// Bytes estimates the resident size of the batch's rows for governor
// byte accounting, in one pass (the per-batch analogue of rowBytes).
func (b *Batch) Bytes() int64 {
	n := int64(len(b.vals)) * 40
	for i := range b.vals {
		if b.vals[i].Kind() == relation.KindString {
			n += int64(len(b.vals[i].AsString()))
		}
	}
	return n
}

// appendToRelation copies the batch's rows into out. Each row gets a
// fresh sub-slice of one per-batch slab, so the result does not alias
// the (reused) batch.
func (b *Batch) appendToRelation(out *relation.Relation) {
	if b.n == 0 {
		return
	}
	slab := make([]relation.Value, len(b.vals))
	copy(slab, b.vals)
	for i := 0; i < b.n; i++ {
		s := i * b.width
		e := s + b.width
		out.AppendRaw(slab[s:e:e])
	}
}

// BatchIterator is an Iterator that can also hand rows up a batch at a
// time. Batch operators implement both: NextBatch is the fast path, and
// Next serves the same stream row by row through an internal cursor so
// a batch operator slots under any row-at-a-time parent (and the full
// contract/fault suites). Callers must not interleave Next and
// NextBatch on one instance.
type BatchIterator interface {
	Iterator
	NextBatch() (*Batch, bool, error)
}

// Batching adapts an iterator to the batch interface. If it already is
// a BatchIterator it is returned unchanged; otherwise the adapter
// accumulates up to size rows per NextBatch into a reused batch. The
// copy is safe under the ownership contract (the child's row is copied
// before the child's next Next).
func Batching(it Iterator, size int) BatchIterator {
	if bi, ok := it.(BatchIterator); ok {
		return bi
	}
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &batchAdapter{child: it, size: size}
}

type batchAdapter struct {
	child Iterator
	size  int
	out   *Batch
}

func (a *batchAdapter) Scheme() *relation.Scheme { return a.child.Scheme() }

func (a *batchAdapter) Open(ec *ExecContext) error { return a.child.Open(ec) }

func (a *batchAdapter) Next() ([]relation.Value, bool, error) { return a.child.Next() }

func (a *batchAdapter) NextBatch() (*Batch, bool, error) {
	if a.out == nil {
		a.out = NewBatch(a.child.Scheme(), a.size)
	}
	a.out.Reset()
	for a.out.Len() < a.size {
		row, ok, err := a.child.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		a.out.AppendRow(row)
	}
	if a.out.Len() == 0 {
		return nil, false, nil
	}
	return a.out, true, nil
}

func (a *batchAdapter) Close() error {
	a.out = releaseBatch(a.out)
	return a.child.Close()
}

// BufferedRows forwards the child's count: the adapter's own batch is
// transient output, not buffered input.
func (a *batchAdapter) BufferedRows() int {
	if b, ok := a.child.(Buffered); ok {
		return b.BufferedRows()
	}
	return 0
}

// batchCursor serves a batch stream row by row for the Iterator side of
// a batch operator. The operator's NextBatch must not reset its output
// batch until the next NextBatch call, so rows stay valid while the
// cursor walks them.
type batchCursor struct {
	b   *Batch
	pos int
}

func (c *batchCursor) reset() { c.b, c.pos = nil, 0 }

// next pulls rows through nb, refilling from the batch stream.
func (c *batchCursor) next(nb func() (*Batch, bool, error)) ([]relation.Value, bool, error) {
	for {
		if c.b != nil && c.pos < c.b.Len() {
			row := c.b.Row(c.pos)
			c.pos++
			return row, true, nil
		}
		b, ok, err := nb()
		if err != nil || !ok {
			c.b = nil
			return nil, false, err
		}
		c.b, c.pos = b, 0
	}
}
