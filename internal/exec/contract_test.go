package exec

import (
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// The iterator contract every operator must honor:
//
//  1. Open → drain → Close, then Open → drain again, yields the same bag
//     (operators must fully reset internal state on re-Open);
//  2. Close is idempotent;
//  3. a Buffered operator reports zero buffered rows once closed (its
//     materialized state must actually be released, not merely ignored).

// contractTables builds the shared inputs: R(k,v) with duplicate and null
// keys, and S(k,w) with a hash index on k.
func contractTables(t *testing.T) (*storage.Table, *storage.Table) {
	t.Helper()
	r := relation.FromRows("R", []string{"k", "v"},
		[]any{1, 10}, []any{2, 20}, []any{2, 21}, []any{3, 30}, []any{nil, 40})
	s := relation.FromRows("S", []string{"k", "w"},
		[]any{2, "a"}, []any{2, "b"}, []any{3, "c"}, []any{5, "d"})
	rt := storage.NewTable("R", r)
	st := storage.NewTable("S", s)
	if _, err := st.BuildHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	return rt, st
}

func contractCases(t *testing.T, rt, st *storage.Table, c *Counters) map[string]func() Iterator {
	t.Helper()
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	key := predicate.Eq(rk, sk)
	mk := func(it Iterator, err error) func() Iterator {
		if err != nil {
			t.Fatal(err)
		}
		return func() Iterator { return it }
	}
	cases := map[string]func() Iterator{
		"scan":         func() Iterator { return NewScan(rt, c) },
		"relationscan": func() Iterator { return NewRelationScan(rt.Relation()) },
	}
	cases["indexscan"] = mk(NewIndexScan(st, "k", relation.Int(2), c))
	cases["filter"] = mk(NewFilter(NewScan(rt, c),
		predicate.Cmp(predicate.GtOp, predicate.Col(rk), predicate.Const(relation.Int(1)))))
	cases["project"] = mk(NewProject(NewScan(rt, c), []relation.Attr{rk}, false))
	cases["project-dedup"] = mk(NewProject(NewScan(rt, c), []relation.Attr{rk}, true))
	cases["sort"] = mk(NewSort(NewScan(rt, c), []relation.Attr{rk}))
	for name, mode := range map[string]JoinMode{
		"hashjoin": InnerMode, "hashjoin-outer": LeftOuterMode, "hashjoin-semi": SemiMode, "hashjoin-anti": AntiMode,
	} {
		cases[name] = mk(NewHashJoin(NewScan(rt, c), NewScan(st, c),
			[]relation.Attr{rk}, []relation.Attr{sk}, nil, mode))
	}
	cases["nestedloop"] = mk(NewNestedLoopJoin(NewScan(rt, c), NewScan(st, c), key, InnerMode))
	cases["indexjoin"] = mk(NewIndexJoin(NewScan(rt, c), st, "k", rk, nil, InnerMode, c))
	sortR, err := NewSort(NewScan(rt, c), []relation.Attr{rk})
	if err != nil {
		t.Fatal(err)
	}
	sortS, err := NewSort(NewScan(st, c), []relation.Attr{sk})
	if err != nil {
		t.Fatal(err)
	}
	cases["mergejoin"] = mk(NewMergeJoin(sortR, sortS, rk, sk, InnerMode))
	cases["parallelhashjoin"] = mk(NewParallelHashJoin(NewScan(rt, c), NewScan(st, c), rk, sk, InnerMode, 3))
	cases["hashgoj"] = mk(NewHashGOJ(NewScan(rt, c), NewScan(st, c),
		[]relation.Attr{rk}, []relation.Attr{sk}, []relation.Attr{rk, relation.A("R", "v")}))
	hj, err := NewHashJoin(NewScan(rt, c), NewScan(st, c),
		[]relation.Attr{rk}, []relation.Attr{sk}, nil, InnerMode)
	if err != nil {
		t.Fatal(err)
	}
	cases["instrumented"] = func() Iterator { return Instrument(hj, "join", c) }
	// The fault wrapper with no fault configured is itself an operator and
	// must honor the same contract.
	ft := storage.NewFaultTable(rt, storage.Fault{})
	cases["fault"] = func() Iterator { return ft.Iterator() }
	return cases
}

// drainBag runs one full Open → drain → Close cycle.
func drainBag(t *testing.T, it Iterator) *relation.Relation {
	t.Helper()
	if err := it.Open(nil); err != nil {
		t.Fatal(err)
	}
	out := relation.New(it.Scheme())
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out.AppendRaw(row)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIteratorContract(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	for name, mk := range contractCases(t, rt, st, &c) {
		t.Run(name, func(t *testing.T) {
			it := mk()
			first := drainBag(t, it)
			if first.Len() == 0 {
				t.Fatal("contract case produced no rows; the inputs must exercise the operator")
			}
			if b, ok := it.(Buffered); ok {
				if n := b.BufferedRows(); n != 0 {
					t.Errorf("BufferedRows() = %d after Close, want 0 (buffers must be released)", n)
				}
			}
			if err := it.Close(); err != nil {
				t.Fatalf("second Close must be a no-op, got %v", err)
			}
			second := drainBag(t, it)
			if !first.EqualBag(second) {
				t.Errorf("re-opened iterator changed its bag:\nfirst (%d rows):\n%vsecond (%d rows):\n%v",
					first.Len(), first, second.Len(), second)
			}
		})
	}
}
