package exec

import (
	"testing"

	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// The iterator contract every operator must honor:
//
//  1. Open → drain → Close, then Open → drain again, yields the same bag
//     (operators must fully reset internal state on re-Open);
//  2. Close is idempotent;
//  3. a Buffered operator reports zero buffered rows once closed (its
//     materialized state must actually be released, not merely ignored).

// contractTables builds the shared inputs: R(k,v) with duplicate and null
// keys, and S(k,w) with a hash index on k.
func contractTables(t *testing.T) (*storage.Table, *storage.Table) {
	t.Helper()
	r := relation.FromRows("R", []string{"k", "v"},
		[]any{1, 10}, []any{2, 20}, []any{2, 21}, []any{3, 30}, []any{nil, 40})
	s := relation.FromRows("S", []string{"k", "w"},
		[]any{2, "a"}, []any{2, "b"}, []any{3, "c"}, []any{5, "d"})
	rt := storage.NewTable("R", r)
	st := storage.NewTable("S", s)
	if _, err := st.BuildHashIndex("k"); err != nil {
		t.Fatal(err)
	}
	return rt, st
}

// contractCases derives the contract inventory from the shared operator
// registry (registry_test.go): every registered operator is built over
// clean (fault-free, still lifecycle-audited) children.
func contractCases(t *testing.T, rt, st *storage.Table, c *Counters) map[string]func() Iterator {
	t.Helper()
	reg := operatorRegistry(t, rt, st, c)
	cases := make(map[string]func() Iterator, len(reg))
	for name, oc := range reg {
		oc := oc
		cases[name] = func() Iterator {
			ch, _ := buildChildren(rt, st, oc.children, -1, storage.Fault{})
			return oc.build(t, ch)
		}
	}
	return cases
}

// drainBag runs one full Open → drain → Close cycle.
func drainBag(t *testing.T, it Iterator) *relation.Relation {
	t.Helper()
	if err := it.Open(nil); err != nil {
		t.Fatal(err)
	}
	out := relation.New(it.Scheme())
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		// The ownership contract says row is only valid until the next
		// Next/Close; retaining it across calls requires a copy. (The
		// batch evaluators really do reuse the backing slab, so aliasing
		// here corrupts the drained bag.)
		out.AppendRaw(relation.CopyRow(row))
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestIteratorContract(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	for name, mk := range contractCases(t, rt, st, &c) {
		t.Run(name, func(t *testing.T) {
			it := mk()
			first := drainBag(t, it)
			if first.Len() == 0 {
				t.Fatal("contract case produced no rows; the inputs must exercise the operator")
			}
			if b, ok := it.(Buffered); ok {
				if n := b.BufferedRows(); n != 0 {
					t.Errorf("BufferedRows() = %d after Close, want 0 (buffers must be released)", n)
				}
			}
			if err := it.Close(); err != nil {
				t.Fatalf("second Close must be a no-op, got %v", err)
			}
			second := drainBag(t, it)
			if !first.EqualBag(second) {
				t.Errorf("re-opened iterator changed its bag:\nfirst (%d rows):\n%vsecond (%d rows):\n%v",
					first.Len(), first, second.Len(), second)
			}
		})
	}
}
