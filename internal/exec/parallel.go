package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"freejoin/internal/hashutil"
	"freejoin/internal/relation"
)

// errStopped is the internal sentinel a partition join returns when it
// stops because the shared context was cancelled — either by the outer
// execution context or by a peer worker's error. The worker translates
// it: outer cancellations become recorded ResourceErrors, peer-triggered
// stops stay silent (the peer's own error is the one to report).
var errStopped = errors.New("exec: parallel join partition stopped")

// ParallelHashJoin is a partitioned (grace-style) equijoin: both inputs
// are materialized, hash-partitioned on the join key, and the partitions
// are joined by a pool of workers. It supports the same inner/outer/semi/
// anti modes as HashJoin and produces identical bags (row order differs).
// It is the concurrency ablation for the serial hash join: worthwhile on
// large inputs, pure overhead on small ones (see BenchmarkParallelJoin).
//
// Governance: workers pull partitions from a channel and poll the
// execution context between row batches, so cancellation and deadlines
// stop a running join; output rows are charged to the governor by each
// worker (the accounting is atomic). The first worker error cancels the
// remaining workers, and when several partitions fail the error of the
// lowest-numbered partition is returned — deterministic regardless of
// scheduling.
type ParallelHashJoin struct {
	left, right Iterator
	scheme      *relation.Scheme
	lkey, rkey  int
	mode        JoinMode
	workers     int
	rwidth      int

	ec   *ExecContext
	held hold
	out  [][]relation.Value
	pos  int
}

// NewParallelHashJoin joins on a single key pair with the given worker
// count (0 means GOMAXPROCS).
func NewParallelHashJoin(left, right Iterator, leftKey, rightKey relation.Attr, mode JoinMode, workers int) (*ParallelHashJoin, error) {
	lk := left.Scheme().IndexOf(leftKey)
	rk := right.Scheme().IndexOf(rightKey)
	if lk < 0 || rk < 0 {
		return nil, fmt.Errorf("exec: parallel join keys missing from schemes")
	}
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelHashJoin{left: left, right: right, scheme: sch,
		lkey: lk, rkey: rk, mode: mode, workers: workers,
		rwidth: right.Scheme().Len()}, nil
}

// Scheme implements Iterator.
func (p *ParallelHashJoin) Scheme() *relation.Scheme { return p.scheme }

// Open implements Iterator: partitions, joins in parallel, and buffers
// the result.
func (p *ParallelHashJoin) Open(ec *ExecContext) error {
	p.held.release(p.ec) // re-Open without Close: drop any stale charge
	p.ec = ec
	p.out = nil
	p.pos = 0
	if err := ec.Err("parallel"); err != nil {
		return err
	}
	lrows, err := materialize(p.left, ec, "parallel", &p.held)
	if err != nil {
		p.held.release(ec)
		return err
	}
	rrows, err := materialize(p.right, ec, "parallel", &p.held)
	if err != nil {
		p.held.release(ec)
		return err
	}

	// More partitions than workers so a slow partition doesn't leave the
	// pool idle, and so cancellation between partitions is responsive.
	nparts := p.workers * 4
	lparts := make([][][]relation.Value, nparts)
	rparts := make([][][]relation.Value, nparts)
	var nullLeft [][]relation.Value // left rows with null keys (outer/anti only)
	var buf []byte
	for _, row := range lrows {
		v := row[p.lkey]
		if v.IsNull() {
			nullLeft = append(nullLeft, row)
			continue
		}
		buf = relation.AppendJoinKey(buf[:0], v)
		h := hashutil.Sum32(buf) % uint32(nparts)
		lparts[h] = append(lparts[h], row)
	}
	for _, row := range rrows {
		v := row[p.rkey]
		if v.IsNull() {
			continue
		}
		buf = relation.AppendJoinKey(buf[:0], v)
		h := hashutil.Sum32(buf) % uint32(nparts)
		rparts[h] = append(rparts[h], row)
	}

	ctx, cancel := context.WithCancel(ec.Context())
	defer cancel()

	parts := make(chan int, nparts)
	for i := 0; i < nparts; i++ {
		parts <- i
	}
	close(parts)

	results := make([][][]relation.Value, nparts)
	errs := make([]error, nparts)
	var mu sync.Mutex // guards p.held merging
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range parts {
				out, local, err := p.joinPartition(ctx, ec, lparts[idx], rparts[idx])
				if err == errStopped {
					// Outer cancellation is a real error; a peer-triggered
					// stop is silent — the peer reports its own error.
					if eerr := ec.Err("parallel"); eerr != nil {
						errs[idx] = eerr
					}
					return
				}
				if err != nil {
					errs[idx] = err
					cancel() // stop the other workers promptly
					return
				}
				results[idx] = out
				mu.Lock()
				p.held.rows += local.rows
				p.held.bytes += local.bytes
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Deterministic error selection: lowest-numbered failed partition.
	for _, werr := range errs {
		if werr != nil {
			p.out = nil
			p.held.release(ec)
			return werr
		}
	}

	p.out = p.out[:0]
	for _, res := range results {
		p.out = append(p.out, res...)
	}
	// Null-keyed left rows never match: pad or emit per mode.
	for _, row := range nullLeft {
		var padded []relation.Value
		switch p.mode {
		case LeftOuterMode:
			padded = padRight(row, p.rwidth)
		case AntiMode:
			padded = row
		default:
			continue
		}
		if err := p.held.charge(ec, "parallel", padded); err != nil {
			p.out = nil
			p.held.release(ec)
			return err
		}
		p.out = append(p.out, padded)
	}
	p.pos = 0
	return nil
}

// joinPartition runs the serial hash-join logic on one partition,
// charging output rows to the governor and polling the context between
// row batches. On success the local reservation is returned for the
// caller to merge; on error it has already been released.
func (p *ParallelHashJoin) joinPartition(ctx context.Context, ec *ExecContext, lrows, rrows [][]relation.Value) ([][]relation.Value, hold, error) {
	governed := ec.Governor() != nil
	var local hold
	stop := func(err error) ([][]relation.Value, hold, error) {
		local.release(ec)
		return nil, hold{}, err
	}
	table := make(map[string][][]relation.Value, len(rrows))
	var buf []byte
	for i, row := range rrows {
		if i&63 == 0 {
			select {
			case <-ctx.Done():
				return stop(errStopped)
			default:
			}
		}
		buf = relation.AppendJoinKey(buf[:0], row[p.rkey])
		table[string(buf)] = append(table[string(buf)], row)
	}
	var out [][]relation.Value
	emit := func(row []relation.Value) error {
		if governed {
			if err := local.charge(ec, "parallel", row); err != nil {
				return err
			}
		}
		out = append(out, row)
		return nil
	}
	for i, lrow := range lrows {
		if i&63 == 0 {
			select {
			case <-ctx.Done():
				return stop(errStopped)
			default:
			}
		}
		buf = relation.AppendJoinKey(buf[:0], lrow[p.lkey])
		matches := table[string(buf)]
		switch p.mode {
		case InnerMode, LeftOuterMode:
			for _, rrow := range matches {
				if err := emit(concatRows(lrow, rrow)); err != nil {
					return stop(err)
				}
			}
			if len(matches) == 0 && p.mode == LeftOuterMode {
				if err := emit(padRight(lrow, p.rwidth)); err != nil {
					return stop(err)
				}
			}
		case SemiMode:
			if len(matches) > 0 {
				if err := emit(lrow); err != nil {
					return stop(err)
				}
			}
		case AntiMode:
			if len(matches) == 0 {
				if err := emit(lrow); err != nil {
					return stop(err)
				}
			}
		}
	}
	return out, local, nil
}

// Next implements Iterator.
func (p *ParallelHashJoin) Next() ([]relation.Value, bool, error) {
	if p.pos >= len(p.out) {
		return nil, false, nil
	}
	row := p.out[p.pos]
	p.pos++
	return row, true, nil
}

// BufferedRows implements Buffered.
func (p *ParallelHashJoin) BufferedRows() int { return len(p.out) }

// Close implements Iterator: the buffered join result (and its governor
// charge) is released.
func (p *ParallelHashJoin) Close() error {
	p.out = nil
	p.held.release(p.ec)
	return nil
}
