package exec

import (
	"fmt"
	"runtime"
	"sync"

	"freejoin/internal/relation"
)

// ParallelHashJoin is a partitioned (grace-style) equijoin: both inputs
// are materialized, hash-partitioned on the join key, and the partitions
// are joined by a pool of workers. It supports the same inner/outer/semi/
// anti modes as HashJoin and produces identical bags (row order differs).
// It is the concurrency ablation for the serial hash join: worthwhile on
// large inputs, pure overhead on small ones (see BenchmarkParallelJoin).
type ParallelHashJoin struct {
	left, right Iterator
	scheme      *relation.Scheme
	lkey, rkey  int
	mode        JoinMode
	workers     int
	rwidth      int

	out [][]relation.Value
	pos int
}

// NewParallelHashJoin joins on a single key pair with the given worker
// count (0 means GOMAXPROCS).
func NewParallelHashJoin(left, right Iterator, leftKey, rightKey relation.Attr, mode JoinMode, workers int) (*ParallelHashJoin, error) {
	lk := left.Scheme().IndexOf(leftKey)
	rk := right.Scheme().IndexOf(rightKey)
	if lk < 0 || rk < 0 {
		return nil, fmt.Errorf("exec: parallel join keys missing from schemes")
	}
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelHashJoin{left: left, right: right, scheme: sch,
		lkey: lk, rkey: rk, mode: mode, workers: workers,
		rwidth: right.Scheme().Len()}, nil
}

// Scheme implements Iterator.
func (p *ParallelHashJoin) Scheme() *relation.Scheme { return p.scheme }

// Open implements Iterator: partitions, joins in parallel, and buffers
// the result.
func (p *ParallelHashJoin) Open() error {
	lrows, err := materialize(p.left)
	if err != nil {
		return err
	}
	rrows, err := materialize(p.right)
	if err != nil {
		return err
	}
	n := p.workers
	lparts := make([][][]relation.Value, n)
	rparts := make([][][]relation.Value, n)
	var nullLeft [][]relation.Value // left rows with null keys (outer/anti only)
	var buf []byte
	for _, row := range lrows {
		v := row[p.lkey]
		if v.IsNull() {
			nullLeft = append(nullLeft, row)
			continue
		}
		buf = relation.AppendJoinKey(buf[:0], v)
		h := fnv32(buf) % uint32(n)
		lparts[h] = append(lparts[h], row)
	}
	for _, row := range rrows {
		v := row[p.rkey]
		if v.IsNull() {
			continue
		}
		buf = relation.AppendJoinKey(buf[:0], v)
		h := fnv32(buf) % uint32(n)
		rparts[h] = append(rparts[h], row)
	}

	results := make([][][]relation.Value, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = p.joinPartition(lparts[w], rparts[w])
		}(w)
	}
	wg.Wait()

	p.out = p.out[:0]
	for _, res := range results {
		p.out = append(p.out, res...)
	}
	// Null-keyed left rows never match: pad or emit per mode.
	for _, row := range nullLeft {
		switch p.mode {
		case LeftOuterMode:
			p.out = append(p.out, padRight(row, p.rwidth))
		case AntiMode:
			p.out = append(p.out, row)
		}
	}
	p.pos = 0
	return nil
}

// joinPartition runs the serial hash-join logic on one partition.
func (p *ParallelHashJoin) joinPartition(lrows, rrows [][]relation.Value) [][]relation.Value {
	table := make(map[string][][]relation.Value, len(rrows))
	var buf []byte
	for _, row := range rrows {
		buf = relation.AppendJoinKey(buf[:0], row[p.rkey])
		table[string(buf)] = append(table[string(buf)], row)
	}
	var out [][]relation.Value
	for _, lrow := range lrows {
		buf = relation.AppendJoinKey(buf[:0], lrow[p.lkey])
		matches := table[string(buf)]
		switch p.mode {
		case InnerMode, LeftOuterMode:
			for _, rrow := range matches {
				out = append(out, concatRows(lrow, rrow))
			}
			if len(matches) == 0 && p.mode == LeftOuterMode {
				out = append(out, padRight(lrow, p.rwidth))
			}
		case SemiMode:
			if len(matches) > 0 {
				out = append(out, lrow)
			}
		case AntiMode:
			if len(matches) == 0 {
				out = append(out, lrow)
			}
		}
	}
	return out
}

// Next implements Iterator.
func (p *ParallelHashJoin) Next() ([]relation.Value, bool, error) {
	if p.pos >= len(p.out) {
		return nil, false, nil
	}
	row := p.out[p.pos]
	p.pos++
	return row, true, nil
}

// BufferedRows implements Buffered.
func (p *ParallelHashJoin) BufferedRows() int { return len(p.out) }

// Close implements Iterator: the buffered join result is released.
func (p *ParallelHashJoin) Close() error {
	p.out = nil
	return nil
}

// fnv32 is the FNV-1a hash over the key encoding.
func fnv32(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}
