package exec

import (
	"fmt"

	"freejoin/internal/relation"
)

// HashGOJ computes the generalized outerjoin GOJ[S][p](left, right) of
// §6.2 with the "slightly modified join algorithm" the paper promises: a
// hash join over the equi-keys that additionally tracks which distinct
// S-projections of the left input appeared in at least one join row; at
// end-of-stream the missing projections are emitted padded with nulls.
type HashGOJ struct {
	left, right Iterator
	scheme      *relation.Scheme
	lkeys       []int
	rkeys       []int
	spos        []int // S columns within the left scheme
	soutPos     []int // S columns within the output scheme
	mode        JoinMode

	ec        *ExecContext
	held      hold
	table     map[string][][]relation.Value
	tableRows int
	matched   map[string]struct{}         // S-projections seen in join rows
	all       map[string][]relation.Value // every distinct S-projection of the left input
	order     []string                    // first-seen order of S-projections
	pending   [][]relation.Value
	tail      int  // index into order while draining unmatched projections
	drained   bool // left input exhausted
}

// NewHashGOJ builds the operator. s must be attributes of the left
// scheme.
func NewHashGOJ(left, right Iterator, leftKeys, rightKeys []relation.Attr, s []relation.Attr) (*HashGOJ, error) {
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: hash GOJ needs matching non-empty key lists")
	}
	sch, err := left.Scheme().Concat(right.Scheme())
	if err != nil {
		return nil, fmt.Errorf("exec: GOJ schemes overlap: %w", err)
	}
	g := &HashGOJ{left: left, right: right, scheme: sch, mode: InnerMode}
	for _, a := range leftKeys {
		p := left.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: GOJ key %s not in left scheme", a)
		}
		g.lkeys = append(g.lkeys, p)
	}
	for _, a := range rightKeys {
		p := right.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: GOJ key %s not in right scheme", a)
		}
		g.rkeys = append(g.rkeys, p)
	}
	for _, a := range s {
		p := left.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: GOJ projection attribute %s not in left scheme", a)
		}
		g.spos = append(g.spos, p)
		g.soutPos = append(g.soutPos, sch.IndexOf(a))
	}
	return g, nil
}

// Scheme implements Iterator.
func (g *HashGOJ) Scheme() *relation.Scheme { return g.scheme }

// Open implements Iterator.
func (g *HashGOJ) Open(ec *ExecContext) error {
	g.held.release(g.ec) // re-Open without Close: drop any stale charge
	g.ec = ec
	if err := ec.Err("goj"); err != nil {
		return err
	}
	rows, err := materialize(g.right, ec, "goj", &g.held)
	if err != nil {
		g.held.release(ec)
		return err
	}
	g.table = make(map[string][][]relation.Value, len(rows))
	g.tableRows = 0
	var buf []byte
build:
	for _, row := range rows {
		buf = buf[:0]
		for _, k := range g.rkeys {
			if row[k].IsNull() {
				continue build
			}
			buf = relation.AppendJoinKey(buf, row[k])
		}
		g.table[string(buf)] = append(g.table[string(buf)], row)
		g.tableRows++
	}
	g.matched = map[string]struct{}{}
	g.all = map[string][]relation.Value{}
	g.order = nil
	g.pending = nil
	g.tail = 0
	g.drained = false
	if err := g.left.Open(ec); err != nil {
		g.table = nil
		g.tableRows = 0
		g.held.release(ec)
		return err
	}
	return nil
}

// sKey computes the duplicate-free S-projection key of a left row.
func (g *HashGOJ) sKey(lrow []relation.Value) string {
	var buf []byte
	for _, p := range g.spos {
		buf = relation.AppendKey(buf, lrow[p])
	}
	return string(buf)
}

// Next implements Iterator.
func (g *HashGOJ) Next() ([]relation.Value, bool, error) {
	for {
		if len(g.pending) > 0 {
			out := g.pending[0]
			g.pending = g.pending[1:]
			return out, true, nil
		}
		if g.drained {
			// Emit the S-projections that never joined, padded.
			for g.tail < len(g.order) {
				key := g.order[g.tail]
				g.tail++
				if _, ok := g.matched[key]; ok {
					continue
				}
				proj := g.all[key]
				row := make([]relation.Value, g.scheme.Len())
				for i, dst := range g.soutPos {
					row[dst] = proj[i]
				}
				return row, true, nil
			}
			return nil, false, nil
		}
		lrow, ok, err := g.left.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.drained = true
			continue
		}
		skey := g.sKey(lrow)
		if _, seen := g.all[skey]; !seen {
			proj := make([]relation.Value, len(g.spos))
			for i, p := range g.spos {
				proj[i] = lrow[p]
			}
			// The S-projection set grows with the stream; charge it.
			if err := g.held.charge(g.ec, "goj", proj); err != nil {
				return nil, false, err
			}
			g.all[skey] = proj
			g.order = append(g.order, skey)
		}
		var buf []byte
		nullKey := false
		for _, k := range g.lkeys {
			if lrow[k].IsNull() {
				nullKey = true
				break
			}
			buf = relation.AppendJoinKey(buf, lrow[k])
		}
		if nullKey {
			continue
		}
		for _, rrow := range g.table[string(buf)] {
			g.matched[skey] = struct{}{}
			g.pending = append(g.pending, concatRows(lrow, rrow))
		}
	}
}

// BufferedRows implements Buffered.
func (g *HashGOJ) BufferedRows() int { return g.tableRows + len(g.all) + len(g.pending) }

// Close implements Iterator: the build table and S-projection sets (and
// their governor charge) are released.
func (g *HashGOJ) Close() error {
	g.table, g.matched, g.all = nil, nil, nil
	g.tableRows = 0
	g.pending, g.order = nil, nil
	g.held.release(g.ec)
	return g.left.Close()
}
