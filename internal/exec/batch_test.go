package exec

import (
	"context"
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// Unit coverage for the batch layer itself: the null bitmap, the
// row/batch adapter round-trip, boundary batch sizes, trip delegation,
// and the single-row stream mode of the batch nested-loop join — with
// regression tests for the two ownership bugs the vectorization work
// surfaced (re-Open leaking a stale delegate's spill run, and the peek
// leaving the left child doubly opened across a delegation).

// TestBatchNullBitmap checks every append path maintains the bitmap:
// copied rows, concatenated rows, null padding, and in-place moves.
func TestBatchNullBitmap(t *testing.T) {
	sch, err := relation.NewScheme(relation.A("R", "a"), relation.A("R", "b"), relation.A("S", "c"))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(sch, 4)

	b.AppendRow([]relation.Value{relation.Int(1), relation.Null(), relation.Str("x")})
	b.AppendConcat([]relation.Value{relation.Null(), relation.Int(2)}, []relation.Value{relation.Null()})
	b.AppendPad([]relation.Value{relation.Int(3)}) // b, c padded with nulls

	want := [][]bool{
		{false, true, false},
		{true, false, true},
		{false, true, true},
	}
	for i, row := range want {
		for j, null := range row {
			if got := b.IsNull(i, j); got != null {
				t.Errorf("IsNull(%d,%d) = %v, want %v", i, j, got, null)
			}
		}
	}

	// Compaction: moving row 2 over row 1 must rewrite row 1's bits
	// (clearing stale ones), as the batch filter relies on.
	b.MoveRow(1, 2)
	for j, null := range want[2] {
		if got := b.IsNull(1, j); got != null {
			t.Errorf("after MoveRow, IsNull(1,%d) = %v, want %v", j, got, null)
		}
	}

	// Reset clears everything; a fresh append starts from clean bits.
	b.Reset()
	b.AppendRow([]relation.Value{relation.Int(9), relation.Int(9), relation.Str("y")})
	for j := 0; j < 3; j++ {
		if b.IsNull(0, j) {
			t.Errorf("after Reset, IsNull(0,%d) = true on a non-null row", j)
		}
	}
}

// TestBatchingAdapterRoundTrip drains the same input through the row
// interface, the batch adapter, and a batch operator's row cursor, and
// requires identical bags at awkward batch sizes (1, a non-divisor of
// the input length, and one larger than the whole input).
func TestBatchingAdapterRoundTrip(t *testing.T) {
	rt, _ := contractTables(t)
	ref, err := Collect(NewScan(rt, &Counters{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{1, 2, 3, 100} {
		// Row child behind the adapter, drained by batches.
		var c Counters
		a := Batching(NewScan(rt, &c), size)
		if err := a.Open(nil); err != nil {
			t.Fatal(err)
		}
		got := relation.New(a.Scheme())
		for {
			b, ok, err := a.NextBatch()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if b.Len() == 0 || b.Len() > size {
				t.Fatalf("size %d: batch of %d rows", size, b.Len())
			}
			b.appendToRelation(got)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		if !got.EqualBag(ref) {
			t.Errorf("size %d: adapter bag differs (%d rows, want %d)", size, got.Len(), ref.Len())
		}

		// Batch operator drained row by row through its cursor.
		rows, err := Collect(NewBatchScan(rt, &c, size), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !rows.EqualBag(ref) {
			t.Errorf("size %d: BatchScan row cursor bag differs", size)
		}
	}
}

// TestBatchHashJoinTripDelegates forces the batched build over budget
// with spilling on and checks the join degrades to the row hash join —
// observable through DegradedTo — which completes through its
// grace-hash path, still producing the right bag.
func TestBatchHashJoinTripDelegates(t *testing.T) {
	rt, st := contractTables(t)
	rk, sk := relation.A("R", "k"), relation.A("S", "k")
	mk := func() *BatchHashJoin {
		var c Counters
		h, err := NewBatchHashJoin(NewScan(rt, &c), NewScan(st, &c),
			[]relation.Attr{rk}, []relation.Attr{sk}, nil, InnerMode, 2)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	ref, err := Collect(mk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Len() == 0 {
		t.Fatal("join produced no rows")
	}

	h := mk()
	ec, gov, dir := spillCtx(t, 150)
	got, err := CollectCtx(ec, h, nil)
	if err != nil {
		t.Fatalf("tripped join should delegate, not fail: %v", err)
	}
	if h.DegradedTo() == nil {
		t.Fatal("150-byte budget did not force delegation to the row join")
	}
	if !got.EqualBag(ref) {
		t.Errorf("delegated bag differs: %d rows, want %d", got.Len(), ref.Len())
	}
	checkSpillDrained(t, gov, dir)
}

// TestBatchNestedLoopStreamMode pins the single-driving-row fast path:
// a one-row left input streams the right side without materializing it,
// so even a budget far too small for the right side never trips — in
// every join mode, including the 3VL null-key short-circuit.
func TestBatchNestedLoopStreamMode(t *testing.T) {
	mkRight := func() *relation.Relation {
		rows := make([][]any, 50)
		for i := range rows {
			rows[i] = []any{i % 5}
		}
		return relation.FromRows("S", []string{"k"}, rows...)
	}
	right := mkRight()
	rk, sk := relation.A("R", "k"), relation.A("S", "k")
	key := predicate.Eq(rk, sk)

	cases := []struct {
		name     string
		leftKey  any
		mode     JoinMode
		wantRows int
	}{
		{"inner-match", 2, InnerMode, 10},
		{"inner-miss", 9, InnerMode, 0},
		{"outer-match", 2, LeftOuterMode, 10},
		{"outer-miss", 9, LeftOuterMode, 1},      // null-padded
		{"outer-nullkey", nil, LeftOuterMode, 1}, // 3VL short-circuit
		{"semi-match", 2, SemiMode, 1},
		{"semi-nullkey", nil, SemiMode, 0},
		{"anti-miss", 9, AntiMode, 1},
		{"anti-nullkey", nil, AntiMode, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			left := relation.FromRows("R", []string{"k"}, [][]any{{tc.leftKey}}...)
			n, err := NewBatchNestedLoopJoin(
				NewRelationScan(left), NewRelationScan(right), key, tc.mode, 8)
			if err != nil {
				t.Fatal(err)
			}
			// A 96-byte budget cannot hold the 50-row right side; only
			// the streaming path passes without tripping or spilling.
			gov := NewGovernor(0, 96)
			ec := NewExecContext(context.Background(), gov)
			got, err := CollectCtx(ec, n, nil)
			if err != nil {
				t.Fatalf("stream mode tripped the budget: %v", err)
			}
			if n.DegradedTo() != nil {
				t.Fatal("single-row left delegated instead of streaming")
			}
			if got.Len() != tc.wantRows {
				t.Errorf("rows = %d, want %d\n%v", got.Len(), tc.wantRows, got)
			}
			if gov.UsedBytes() != 0 {
				t.Errorf("governor holds %d bytes after Close", gov.UsedBytes())
			}
		})
	}
}

// TestBatchNestedLoopStreamContract re-runs the iterator contract on a
// streaming-mode join: re-Open yields the same bag and Close is
// idempotent (the stream state must fully reset).
func TestBatchNestedLoopStreamContract(t *testing.T) {
	left := relation.FromRows("R", []string{"k"}, []any{2})
	right := relation.FromRows("S", []string{"k"}, []any{1}, []any{2}, []any{2}, []any{3})
	n, err := NewBatchNestedLoopJoin(
		NewRelationScan(left), NewRelationScan(right),
		predicate.Eq(relation.A("R", "k"), relation.A("S", "k")), LeftOuterMode, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := drainBag(t, n)
	if first.Len() != 2 {
		t.Fatalf("first drain: %d rows, want 2", first.Len())
	}
	if err := n.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	second := drainBag(t, n)
	if !first.EqualBag(second) {
		t.Errorf("re-opened streaming join changed its bag:\n%v\nvs\n%v", first, second)
	}
}

// TestBatchReopenClosesStaleDelegate is the regression test for the
// spill leak the metamorphic oracle caught: an operator whose previous
// execution delegated to the row join (with live spill state) is
// re-opened WITHOUT an intervening Close — the iterator contract allows
// this — and must close the stale delegate first. Before the fix the
// delegate's spill run leaked its governor reservation and run file.
func TestBatchReopenClosesStaleDelegate(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	n, err := NewBatchNestedLoopJoin(NewScan(rt, &c), NewScan(st, &c),
		predicate.Eq(relation.A("R", "k"), relation.A("S", "k")), InnerMode, 2)
	if err != nil {
		t.Fatal(err)
	}
	ec, gov, dir := spillCtx(t, 96)

	// Cycle 1: the build trips, delegates to the row join, which spills.
	if err := n.Open(ec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Next(); err != nil {
		t.Fatal(err)
	}
	if n.DegradedTo() == nil {
		t.Fatal("96-byte budget did not force delegation")
	}

	// Cycle 2: re-Open without Close, drain fully, Close.
	if err := n.Open(ec); err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := n.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	checkSpillDrained(t, gov, dir)
}

// TestBatchStreamTripDelegationBalancesLeft is the regression test for
// the double-open leak: the Open-time peek holds the left child open,
// and a memory trip during the right build delegates to the row join
// which re-opens both children. The delegation must close the peeked
// left child first, or its open count leaks (audited by the fault
// iterator's lifecycle counters).
func TestBatchStreamTripDelegationBalancesLeft(t *testing.T) {
	rt, st := contractTables(t)
	lf := storage.NewFaultTable(rt, storage.Fault{}).Iterator()
	rf := storage.NewFaultTable(st, storage.Fault{}).Iterator()
	n, err := NewBatchNestedLoopJoin(lf, rf,
		predicate.Eq(relation.A("R", "k"), relation.A("S", "k")), InnerMode, 2)
	if err != nil {
		t.Fatal(err)
	}
	ec, gov, dir := spillCtx(t, 96)
	if _, err := CollectCtx(ec, n, nil); err != nil {
		t.Fatal(err)
	}
	if n.DegradedTo() == nil {
		t.Fatal("96-byte budget did not force delegation")
	}
	for name, f := range map[string]*storage.FaultIterator{"left": lf, "right": rf} {
		if f.OpenCalls != f.CloseCalls {
			t.Errorf("%s child leaked: opens=%d closes=%d", name, f.OpenCalls, f.CloseCalls)
		}
	}
	checkSpillDrained(t, gov, dir)
}
