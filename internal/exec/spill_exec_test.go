package exec

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// Spill-to-disk correctness: every blocking operator run under a byte
// budget that previously produced MemoryExceeded must now complete by
// spilling, produce a bag identical to the unbudgeted run, report its
// spill activity through SpillStats, return every spill-budget byte,
// and leave no run files behind.

// spillCtx builds a governed context with a tiny byte budget and
// spilling directed at a per-test temp dir.
func spillCtx(t *testing.T, limitBytes int64) (*ExecContext, *Governor, string) {
	t.Helper()
	dir := t.TempDir()
	gov := NewGovernor(0, limitBytes)
	ec := NewExecContext(context.Background(), gov)
	ec.EnableSpill(SpillConfig{Dir: dir})
	return ec, gov, dir
}

// checkSpillDrained asserts the post-Close spill obligations: memory and
// spill budgets fully returned, no ojspill-* files left in dir.
func checkSpillDrained(t *testing.T, gov *Governor, dir string) {
	t.Helper()
	if n := gov.UsedRows(); n != 0 {
		t.Errorf("governor holds %d rows after Close", n)
	}
	if n := gov.UsedBytes(); n != 0 {
		t.Errorf("governor holds %d bytes after Close", n)
	}
	if n := gov.UsedSpillBytes(); n != 0 {
		t.Errorf("governor holds %d spill bytes after Close", n)
	}
	files, err := filepath.Glob(filepath.Join(dir, "ojspill-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Errorf("%d run files leaked in %s: %v", len(files), dir, files)
	}
}

// spillTables builds R(k,v) and S(k,w) with duplicate keys, nulls, and
// enough rows that a few-hundred-byte budget cannot hold either side.
func spillTables(t *testing.T, nr, ns int) (*storage.Table, *storage.Table) {
	t.Helper()
	rnd := rand.New(rand.NewSource(41))
	r := relation.New(relation.SchemeOf("R", "k", "v"))
	for i := 0; i < nr; i++ {
		k := relation.Int(int64(rnd.Intn(12)))
		if rnd.Intn(9) == 0 {
			k = relation.Null()
		}
		r.AppendRaw([]relation.Value{k, relation.Int(int64(i))})
	}
	s := relation.New(relation.SchemeOf("S", "k", "w"))
	for i := 0; i < ns; i++ {
		k := relation.Int(int64(rnd.Intn(12)))
		if rnd.Intn(9) == 0 {
			k = relation.Null()
		}
		s.AppendRaw([]relation.Value{k, relation.Str("w" + string(rune('a'+i%26)))})
	}
	return storage.NewTable("R", r), storage.NewTable("S", s)
}

// spiller digs the operator out of wrappers to read its SpillStats.
func spillInfo(t *testing.T, it Iterator) SpillStats {
	t.Helper()
	sp, ok := it.(Spiller)
	if !ok {
		t.Fatalf("%T does not implement Spiller", it)
	}
	return sp.SpillInfo()
}

func TestExternalSortSpill(t *testing.T) {
	rt, _ := spillTables(t, 1000, 0)
	by := []relation.Attr{relation.A("R", "k")}
	mk := func() *Sort {
		s, err := NewSort(NewScan(rt, nil), by)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	want, err := Collect(mk(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: without spill this budget trips.
	gov0 := NewGovernor(0, 512)
	if _, err := CollectCtx(NewExecContext(context.Background(), gov0), mk(), nil); err == nil {
		t.Fatal("512-byte budget without spill should trip")
	}

	ec, gov, dir := spillCtx(t, 512)
	s := mk()
	got, err := CollectCtx(ec, s, nil)
	if err != nil {
		t.Fatalf("spilling sort failed: %v", err)
	}
	if !want.EqualBag(got) {
		t.Errorf("spilled sort bag differs: want %d rows, got %d", want.Len(), got.Len())
	}
	// Output must still be sorted on the key (nulls ordered consistently).
	var prev relation.Value
	for i := 0; i < got.Len(); i++ {
		v := got.RawRow(i)[0]
		if i > 0 && prev.Compare(v) > 0 {
			t.Fatalf("row %d out of order: %v after %v", i, v, prev)
		}
		prev = v
	}
	sp := s.SpillInfo()
	if !sp.Spilled() || sp.Runs < 2 {
		t.Errorf("external sort should report multiple spilled runs, got %+v", sp)
	}
	// 1000 rows at ≤ ~6 rows per 512-byte run is far more than the merge
	// fan-in, so intermediate passes must have happened.
	if sp.MergePasses < 2 {
		t.Errorf("expected intermediate merge passes, got %+v", sp)
	}
	checkSpillDrained(t, gov, dir)
}

func TestGraceHashJoinSpill(t *testing.T) {
	rt, st := spillTables(t, 300, 300)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	for _, mode := range []JoinMode{InnerMode, LeftOuterMode, SemiMode, AntiMode} {
		t.Run(mode.String(), func(t *testing.T) {
			mk := func() *HashJoin {
				h, err := NewHashJoin(NewScan(rt, nil), NewScan(st, nil),
					[]relation.Attr{rk}, []relation.Attr{sk}, nil, mode)
				if err != nil {
					t.Fatal(err)
				}
				return h
			}
			want, err := Collect(mk(), nil)
			if err != nil {
				t.Fatal(err)
			}

			ec, gov, dir := spillCtx(t, 600)
			h := mk()
			got, err := CollectCtx(ec, h, nil)
			if err != nil {
				t.Fatalf("grace hash join failed: %v", err)
			}
			if !want.EqualBag(got) {
				t.Errorf("grace bag differs: want %d rows, got %d\nwant:\n%vgot:\n%v",
					want.Len(), got.Len(), want, got)
			}
			sp := h.SpillInfo()
			if !sp.Spilled() || sp.Partitions == 0 {
				t.Errorf("grace join should report runs and partitions, got %+v", sp)
			}
			checkSpillDrained(t, gov, dir)

			found := false
			for _, ev := range gov.Events() {
				if ev != "" {
					found = true
				}
			}
			if !found {
				t.Error("grace degradation should be noted as a governor event")
			}
		})
	}
}

// TestGraceHashJoinSkew: every row shares one key, so no amount of
// re-partitioning shrinks the partition. The join must bottom out in the
// block-nested streaming fallback and still complete correctly.
func TestGraceHashJoinSkew(t *testing.T) {
	r := relation.New(relation.SchemeOf("R", "k", "v"))
	s := relation.New(relation.SchemeOf("S", "k", "w"))
	for i := 0; i < 120; i++ {
		r.AppendRaw([]relation.Value{relation.Int(7), relation.Int(int64(i))})
		s.AppendRaw([]relation.Value{relation.Int(7), relation.Int(int64(i * 2))})
	}
	rt, st := storage.NewTable("R", r), storage.NewTable("S", s)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	for _, mode := range []JoinMode{InnerMode, SemiMode} {
		t.Run(mode.String(), func(t *testing.T) {
			mk := func() *HashJoin {
				h, err := NewHashJoin(NewScan(rt, nil), NewScan(st, nil),
					[]relation.Attr{rk}, []relation.Attr{sk}, nil, mode)
				if err != nil {
					t.Fatal(err)
				}
				return h
			}
			want, err := Collect(mk(), nil)
			if err != nil {
				t.Fatal(err)
			}
			ec, gov, dir := spillCtx(t, 400)
			h := mk()
			got, err := CollectCtx(ec, h, nil)
			if err != nil {
				t.Fatalf("skewed grace join failed: %v", err)
			}
			if !want.EqualBag(got) {
				t.Errorf("skewed grace bag differs: want %d rows, got %d", want.Len(), got.Len())
			}
			checkSpillDrained(t, gov, dir)
		})
	}
}

func TestNestedLoopJoinSpill(t *testing.T) {
	rt, st := spillTables(t, 60, 200)
	pred := predicate.Eq(relation.A("R", "k"), relation.A("S", "k"))
	for _, mode := range []JoinMode{InnerMode, LeftOuterMode, SemiMode, AntiMode} {
		t.Run(mode.String(), func(t *testing.T) {
			mk := func() *NestedLoopJoin {
				n, err := NewNestedLoopJoin(NewScan(rt, nil), NewScan(st, nil), pred, mode)
				if err != nil {
					t.Fatal(err)
				}
				return n
			}
			want, err := Collect(mk(), nil)
			if err != nil {
				t.Fatal(err)
			}
			ec, gov, dir := spillCtx(t, 500)
			n := mk()
			got, err := CollectCtx(ec, n, nil)
			if err != nil {
				t.Fatalf("spilled nested loop failed: %v", err)
			}
			if !want.EqualBag(got) {
				t.Errorf("spilled NL bag differs: want %d rows, got %d", want.Len(), got.Len())
			}
			if sp := n.SpillInfo(); !sp.Spilled() {
				t.Errorf("nested loop should report its spilled inner run, got %+v", sp)
			}
			checkSpillDrained(t, gov, dir)
		})
	}
}

func TestMergeJoinSpill(t *testing.T) {
	// Heavy duplicate keys so right-side groups overflow the budget.
	r := relation.New(relation.SchemeOf("R", "k", "v"))
	s := relation.New(relation.SchemeOf("S", "k", "w"))
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		k := relation.Int(int64(rnd.Intn(3)))
		if rnd.Intn(11) == 0 {
			k = relation.Null()
		}
		r.AppendRaw([]relation.Value{k, relation.Int(int64(i))})
		s.AppendRaw([]relation.Value{k, relation.Int(int64(i * 3))})
	}
	rt, st := storage.NewTable("R", r), storage.NewTable("S", s)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	for _, mode := range []JoinMode{InnerMode, LeftOuterMode} {
		t.Run(mode.String(), func(t *testing.T) {
			// Merge join needs sorted inputs; sort them via governed
			// external sorts so the whole pipeline runs under the budget.
			mkGov := func() (Iterator, *Sort, *MergeJoin) {
				ls, err := NewSort(NewScan(rt, nil), []relation.Attr{rk})
				if err != nil {
					t.Fatal(err)
				}
				rs, err := NewSort(NewScan(st, nil), []relation.Attr{sk})
				if err != nil {
					t.Fatal(err)
				}
				m, err := NewMergeJoin(ls, rs, rk, sk, mode)
				if err != nil {
					t.Fatal(err)
				}
				return m, ls, m
			}
			it, _, _ := mkGov()
			want, err := Collect(it, nil)
			if err != nil {
				t.Fatal(err)
			}
			ec, gov, dir := spillCtx(t, 600)
			it2, ls, m := mkGov()
			got, err := CollectCtx(ec, it2, nil)
			if err != nil {
				t.Fatalf("spilled merge join failed: %v", err)
			}
			if !want.EqualBag(got) {
				t.Errorf("spilled merge bag differs: want %d rows, got %d", want.Len(), got.Len())
			}
			if sp := ls.SpillInfo(); !sp.Spilled() {
				t.Errorf("feeding sort should have spilled, got %+v", sp)
			}
			if sp := m.SpillInfo(); !sp.Spilled() {
				t.Errorf("merge join should have spilled a duplicate-key group, got %+v", sp)
			}
			checkSpillDrained(t, gov, dir)
		})
	}
}

// TestSpillBudgetExceeded: the spill-bytes budget is itself governed;
// when it is too small the run must abort with a typed SpillExceeded
// error and still clean up every file and reservation.
func TestSpillBudgetExceeded(t *testing.T) {
	rt, _ := spillTables(t, 1000, 0)
	s, err := NewSort(NewScan(rt, nil), []relation.Attr{relation.A("R", "k")})
	if err != nil {
		t.Fatal(err)
	}
	ec, gov, dir := spillCtx(t, 512)
	gov.SetSpillLimit(2048) // a fraction of what 1000 rows need
	_, cerr := CollectCtx(ec, s, nil)
	var re *ResourceError
	if !errors.As(cerr, &re) || re.Kind != SpillExceeded {
		t.Fatalf("want SpillExceeded, got %v", cerr)
	}
	checkSpillDrained(t, gov, dir)
}

// TestFailedOpenDrainsGovernor is the regression for the hash-join
// partial-build leak: when any child fault makes an operator's Open
// fail, every governor charge taken during that Open must already be
// released when Open returns — before Close runs — across the whole
// 18-operator inventory and every child position.
func TestFailedOpenDrainsGovernor(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	faults := []struct {
		name string
		f    storage.Fault
	}{
		{"open", storage.Fault{FailOpen: true}},
		{"next-first", storage.Fault{FailNext: true, FailAfter: 0}},
		{"next-midstream", storage.Fault{FailNext: true, FailAfter: 2}},
	}
	for name, fc := range operatorRegistry(t, rt, st, &c) {
		for pos := 0; pos < fc.children; pos++ {
			for _, fault := range faults {
				t.Run(name+"/"+fault.name, func(t *testing.T) {
					ch, _ := buildChildren(rt, st, fc.children, pos, fault.f)
					it := fc.build(t, ch)
					gov := NewGovernor(0, 0)
					err := it.Open(NewExecContext(context.Background(), gov))
					if err == nil {
						// Streaming operators defer the fault to Next; that
						// path is covered by TestErrorPathContract.
						it.Close()
						return
					}
					if n := gov.UsedRows(); n != 0 {
						t.Errorf("failed Open left %d rows charged before Close", n)
					}
					if n := gov.UsedBytes(); n != 0 {
						t.Errorf("failed Open left %d bytes charged before Close", n)
					}
					it.Close()
					if gov.UsedRows() != 0 || gov.UsedBytes() != 0 {
						t.Error("Close re-acquired or failed to keep governor drained")
					}
				})
			}
		}
	}
}

// TestTripDuringOpenCloseSafe: every buffering operator whose Open (or
// first Next) trips a 1-row budget must survive Close — twice — with
// buffers released and the governor drained. Guards the Sort mid-build
// trip regression.
func TestTripDuringOpenCloseSafe(t *testing.T) {
	rt, st := contractTables(t)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	builders := map[string]func(t *testing.T) Iterator{
		"sort": func(t *testing.T) Iterator {
			s, err := NewSort(NewScan(rt, nil), []relation.Attr{rk})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"nestedloop": func(t *testing.T) Iterator {
			n, err := NewNestedLoopJoin(NewScan(rt, nil), NewScan(st, nil),
				predicate.Eq(rk, sk), InnerMode)
			if err != nil {
				t.Fatal(err)
			}
			return n
		},
		"mergejoin": func(t *testing.T) Iterator {
			m, err := NewMergeJoin(NewScan(rt, nil), NewScan(st, nil), rk, sk, InnerMode)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
		"goj": func(t *testing.T) Iterator {
			g, err := NewHashGOJ(NewScan(rt, nil), NewScan(st, nil),
				[]relation.Attr{rk}, []relation.Attr{sk}, []relation.Attr{rk})
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		"parallel": func(t *testing.T) Iterator {
			p, err := NewParallelHashJoin(NewScan(rt, nil), NewScan(st, nil), rk, sk, InnerMode, 2)
			if err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for _, mode := range []JoinMode{InnerMode, LeftOuterMode, SemiMode, AntiMode} {
		mode := mode
		builders["hashjoin-"+mode.String()] = func(t *testing.T) Iterator {
			h, err := NewHashJoin(NewScan(rt, nil), NewScan(st, nil),
				[]relation.Attr{rk}, []relation.Attr{sk}, nil, mode)
			if err != nil {
				t.Fatal(err)
			}
			return h
		}
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			it := build(t)
			gov := NewGovernor(1, 0)
			err := it.Open(NewExecContext(context.Background(), gov))
			if err == nil {
				// Streaming operators trip at Next instead.
				for {
					_, ok, nerr := it.Next()
					if nerr != nil {
						err = nerr
						break
					}
					if !ok {
						break
					}
				}
			}
			var re *ResourceError
			if !errors.As(err, &re) || re.Kind != MemoryExceeded {
				t.Fatalf("want a MemoryExceeded trip, got %v", err)
			}
			if cerr := it.Close(); cerr != nil {
				t.Fatalf("Close after trip: %v", cerr)
			}
			if cerr := it.Close(); cerr != nil {
				t.Fatalf("second Close after trip: %v", cerr)
			}
			if b, ok := it.(Buffered); ok && b.BufferedRows() != 0 {
				t.Errorf("BufferedRows = %d after Close", b.BufferedRows())
			}
			if gov.UsedRows() != 0 || gov.UsedBytes() != 0 {
				t.Errorf("governor not drained: rows=%d bytes=%d", gov.UsedRows(), gov.UsedBytes())
			}
		})
	}
}

// TestSpillFaultOracle reruns the fault-injection matrix with spilling
// enabled under a tiny byte budget: whatever faults are injected, a
// governed spilled run either fails with the injected error or produces
// exactly the bag of the clean in-memory run — and always tears down
// files and reservations.
func TestSpillFaultOracle(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	faults := []storage.Fault{
		{},
		{FailOpen: true},
		{FailNext: true, FailAfter: 0},
		{FailNext: true, FailAfter: 2},
		{FailClose: true},
		{Prob: 0.4, Seed: 3},
		{Prob: 0.4, Seed: 9},
	}
	for name, fc := range operatorRegistry(t, rt, st, &c) {
		// Clean reference bag, in memory and ungoverned.
		chRef, _ := buildChildren(rt, st, fc.children, -1, storage.Fault{})
		ref, err := Collect(fc.build(t, chRef), nil)
		if err != nil {
			t.Fatalf("%s: clean run failed: %v", name, err)
		}
		for pos := 0; pos < fc.children; pos++ {
			for fi, fault := range faults {
				t.Run(name, func(t *testing.T) {
					ch, fis := buildChildren(rt, st, fc.children, pos, fault)
					it := fc.build(t, ch)
					ec, gov, dir := spillCtx(t, 300)
					got, err := CollectCtx(ec, it, nil)
					var re *ResourceError
					if err == nil {
						if !ref.EqualBag(got) {
							t.Errorf("fault %d: spilled bag differs from clean in-memory run\nwant %d rows, got %d",
								fi, ref.Len(), got.Len())
						}
					} else if !errors.Is(err, storage.ErrInjected) &&
						!(errors.As(err, &re) && re.Kind == MemoryExceeded) {
						// Operators without a spill path (parallel hash join,
						// hash GOJ) may trip the budget; that is a typed,
						// clean failure, not an oracle violation.
						t.Errorf("fault %d: error is neither injected nor a typed trip: %v", fi, err)
					}
					checkInvariants(t, it, fis, gov)
					checkSpillDrained(t, gov, dir)
				})
			}
		}
	}
}
