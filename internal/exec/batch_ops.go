package exec

import (
	"fmt"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// resolveBatchSize picks the batch size an operator opens with: the
// execution context's override when set, else the operator's configured
// size, else the default.
func resolveBatchSize(ec *ExecContext, configured int) int {
	if n := ec.BatchRows(); n > 0 {
		return n
	}
	if configured > 0 {
		return configured
	}
	return DefaultBatchSize
}

// ensureBatch returns out if it matches the wanted scheme and capacity,
// else a fresh batch; either way the result is empty.
func ensureBatch(out *Batch, scheme *relation.Scheme, size int) *Batch {
	if out == nil || out.Scheme() != scheme || out.Cap() != size {
		return NewBatch(scheme, size)
	}
	out.Reset()
	return out
}

// BatchScan is Scan a batch at a time: each NextBatch copies up to size
// base-table rows into a reused slab, with one error check and one
// counter update per batch instead of per row.
type BatchScan struct {
	table    *storage.Table
	counters *Counters
	size     int

	ec   *ExecContext
	pos  int
	rows int
	out  *Batch
	cur  batchCursor
}

// NewBatchScan returns a batched full-table scan; size <= 0 means
// DefaultBatchSize (or the execution context's override).
func NewBatchScan(t *storage.Table, c *Counters, size int) *BatchScan {
	return &BatchScan{table: t, counters: c, size: size}
}

// Scheme implements Iterator.
func (s *BatchScan) Scheme() *relation.Scheme { return s.table.Scheme() }

// Open implements Iterator.
func (s *BatchScan) Open(ec *ExecContext) error {
	s.ec = ec
	s.pos = 0
	s.rows = s.table.Relation().Len()
	s.out = ensureBatch(s.out, s.table.Scheme(), resolveBatchSize(ec, s.size))
	s.cur.reset()
	return ec.Err("scan")
}

// NextBatch implements BatchIterator.
func (s *BatchScan) NextBatch() (*Batch, bool, error) {
	if err := s.ec.Err("scan"); err != nil {
		return nil, false, err
	}
	if s.pos >= s.rows {
		return nil, false, nil
	}
	s.out.Reset()
	rel := s.table.Relation()
	n := s.out.Cap()
	if left := s.rows - s.pos; left < n {
		n = left
	}
	for i := 0; i < n; i++ {
		s.out.AppendRow(rel.RawRow(s.pos + i))
	}
	s.pos += n
	s.counters.AddTuples(int64(n))
	return s.out, true, nil
}

// Next implements Iterator through the batch cursor.
func (s *BatchScan) Next() ([]relation.Value, bool, error) {
	return s.cur.next(s.NextBatch)
}

// Close implements Iterator.
func (s *BatchScan) Close() error {
	s.cur.reset()
	s.out = releaseBatch(s.out)
	return nil
}

// BatchRelationScan is RelationScan a batch at a time (no base-tuple
// accounting — the input is a materialized intermediate).
type BatchRelationScan struct {
	rel  *relation.Relation
	size int

	ec  *ExecContext
	pos int
	out *Batch
	cur batchCursor
}

// NewBatchRelationScan wraps a relation as a batch iterator.
func NewBatchRelationScan(rel *relation.Relation, size int) *BatchRelationScan {
	return &BatchRelationScan{rel: rel, size: size}
}

// Scheme implements Iterator.
func (s *BatchRelationScan) Scheme() *relation.Scheme { return s.rel.Scheme() }

// Open implements Iterator.
func (s *BatchRelationScan) Open(ec *ExecContext) error {
	s.ec = ec
	s.pos = 0
	s.out = ensureBatch(s.out, s.rel.Scheme(), resolveBatchSize(ec, s.size))
	s.cur.reset()
	return ec.Err("relationscan")
}

// NextBatch implements BatchIterator.
func (s *BatchRelationScan) NextBatch() (*Batch, bool, error) {
	if err := s.ec.Err("relationscan"); err != nil {
		return nil, false, err
	}
	if s.pos >= s.rel.Len() {
		return nil, false, nil
	}
	s.out.Reset()
	n := s.out.Cap()
	if left := s.rel.Len() - s.pos; left < n {
		n = left
	}
	for i := 0; i < n; i++ {
		s.out.AppendRow(s.rel.RawRow(s.pos + i))
	}
	s.pos += n
	return s.out, true, nil
}

// Next implements Iterator through the batch cursor.
func (s *BatchRelationScan) Next() ([]relation.Value, bool, error) {
	return s.cur.next(s.NextBatch)
}

// Close implements Iterator.
func (s *BatchRelationScan) Close() error {
	s.cur.reset()
	s.out = releaseBatch(s.out)
	return nil
}

// BatchFilter applies a predicate a batch at a time, compacting
// survivors in place in the child's batch — the ownership contract lets
// the caller overwrite a batch it was handed, so filtering allocates
// and copies nothing.
type BatchFilter struct {
	child Iterator
	bound predicate.Bound
	size  int

	bchild BatchIterator
	cur    batchCursor
}

// NewBatchFilter compiles p against the child's scheme; size <= 0 means
// DefaultBatchSize for the adapter when the child is row-at-a-time.
func NewBatchFilter(child Iterator, p predicate.Predicate, size int) (*BatchFilter, error) {
	b, err := predicate.Bind(p, child.Scheme())
	if err != nil {
		return nil, fmt.Errorf("exec: filter: %w", err)
	}
	return &BatchFilter{child: child, bound: b, size: size}, nil
}

// Scheme implements Iterator.
func (f *BatchFilter) Scheme() *relation.Scheme { return f.child.Scheme() }

// Open implements Iterator.
func (f *BatchFilter) Open(ec *ExecContext) error {
	if err := ec.Err("filter"); err != nil {
		return err
	}
	f.bchild = Batching(f.child, resolveBatchSize(ec, f.size))
	f.cur.reset()
	return f.child.Open(ec)
}

// NextBatch implements BatchIterator.
func (f *BatchFilter) NextBatch() (*Batch, bool, error) {
	for {
		b, ok, err := f.bchild.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		keep := 0
		for i := 0; i < b.Len(); i++ {
			if f.bound.Holds(b.Row(i)) {
				b.MoveRow(keep, i)
				keep++
			}
		}
		if keep == 0 {
			continue // fully filtered batch: pull the next one
		}
		b.Truncate(keep)
		return b, true, nil
	}
}

// Next implements Iterator through the batch cursor.
func (f *BatchFilter) Next() ([]relation.Value, bool, error) {
	return f.cur.next(f.NextBatch)
}

// Close implements Iterator.
func (f *BatchFilter) Close() error {
	f.cur.reset()
	return f.child.Close()
}

// BatchProject projects a batch at a time into a reused output batch,
// optionally deduplicating (the dedup set retains one key string per
// distinct projected row and is charged to the governor, as in Project).
type BatchProject struct {
	child  Iterator
	scheme *relation.Scheme
	pos    []int
	dedup  bool
	size   int

	bchild BatchIterator
	ec     *ExecContext
	held   hold
	seen   map[string]struct{}
	key    []byte
	out    *Batch
	cur    batchCursor
}

// NewBatchProject builds a batched projection onto attrs.
func NewBatchProject(child Iterator, attrs []relation.Attr, dedup bool, size int) (*BatchProject, error) {
	sch, err := child.Scheme().Project(attrs)
	if err != nil {
		return nil, fmt.Errorf("exec: project: %w", err)
	}
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		pos[i] = child.Scheme().IndexOf(a)
	}
	return &BatchProject{child: child, scheme: sch, pos: pos, dedup: dedup, size: size}, nil
}

// Scheme implements Iterator.
func (p *BatchProject) Scheme() *relation.Scheme { return p.scheme }

// Open implements Iterator.
func (p *BatchProject) Open(ec *ExecContext) error {
	if err := ec.Err("project"); err != nil {
		return err
	}
	p.held.release(p.ec) // re-Open without Close: drop any stale charge
	p.ec = ec
	size := resolveBatchSize(ec, p.size)
	p.bchild = Batching(p.child, size)
	p.out = ensureBatch(p.out, p.scheme, size)
	p.cur.reset()
	if p.dedup {
		p.seen = map[string]struct{}{}
	}
	return p.child.Open(ec)
}

// NextBatch implements BatchIterator.
func (p *BatchProject) NextBatch() (*Batch, bool, error) {
	row := make([]relation.Value, len(p.pos))
	for {
		b, ok, err := p.bchild.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		p.out.Reset()
		for i := 0; i < b.Len(); i++ {
			src := b.Row(i)
			for j, c := range p.pos {
				row[j] = src[c]
			}
			if p.dedup {
				buf := p.key[:0]
				for _, v := range row {
					buf = relation.AppendKey(buf, v)
				}
				p.key = buf
				if _, dup := p.seen[string(buf)]; dup {
					continue
				}
				if err := p.held.charge(p.ec, "project", row); err != nil {
					return nil, false, err
				}
				p.seen[string(buf)] = struct{}{}
			}
			p.out.AppendRow(row)
		}
		if p.out.Len() == 0 {
			continue // all duplicates: pull the next batch
		}
		return p.out, true, nil
	}
}

// Next implements Iterator through the batch cursor.
func (p *BatchProject) Next() ([]relation.Value, bool, error) {
	return p.cur.next(p.NextBatch)
}

// BufferedRows implements Buffered: the dedup set's size.
func (p *BatchProject) BufferedRows() int { return len(p.seen) }

// Close implements Iterator: the dedup set is released.
func (p *BatchProject) Close() error {
	p.seen = nil
	p.cur.reset()
	p.out = releaseBatch(p.out)
	p.held.release(p.ec)
	return p.child.Close()
}
