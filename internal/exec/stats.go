package exec

import (
	"errors"
	"time"

	"freejoin/internal/relation"
)

// Stats accumulates per-operator runtime measurements — the observability
// counterpart of the paper's Example 1 argument. Where Counters is one
// global tally per execution, Stats is collected per operator by the
// Instrument wrapper, so EXPLAIN ANALYZE can show where inside a plan the
// effort (tuples, rows, time, memory) was actually spent.
//
// TuplesRetrieved and WallTime are inclusive of the operator's subtree:
// a parent's Next covers the child Next calls it triggers. Exclusive
// ("self") figures are derived by StatsNode.SelfTuples / SelfTime.
type Stats struct {
	// Opens counts Open calls (re-opens included).
	Opens int64
	// NextCalls counts Next calls, including the final end-of-stream one.
	NextCalls int64
	// RowsOut counts rows this operator emitted.
	RowsOut int64
	// TuplesRetrieved counts base-table tuples fetched by this operator's
	// subtree while it ran (scans, index scans and index-join lookups).
	TuplesRetrieved int64
	// PeakBuffered is the largest number of rows the operator held
	// materialized at once (sorts, hash tables, join buffers); zero for
	// streaming operators.
	PeakBuffered int64
	// WallTime is the total time spent inside Open and Next, children
	// included.
	WallTime time.Duration
	// Spill counts the operator's spill-to-disk activity (zero unless a
	// budget trip moved it to the external path).
	Spill SpillStats
}

// SpillStats counts one operator's spill-to-disk activity: run files
// written, grace-hash partitions created, bytes encoded to disk, and
// external-sort merge passes (the final streaming pass included).
type SpillStats struct {
	Runs        int64
	Partitions  int64
	Bytes       int64
	MergePasses int64
}

// Spilled reports whether any spill activity happened.
func (s SpillStats) Spilled() bool { return s.Runs > 0 || s.Partitions > 0 }

// Spiller is implemented by operators with an external-memory path
// (external sort, grace hash join, spilling nested-loop join);
// SpillInfo reports the activity of the current/latest Open cycle so
// instrumentation can surface it in EXPLAIN ANALYZE.
type Spiller interface {
	SpillInfo() SpillStats
}

// StatsNode is one operator's entry in an instrumented plan tree: a
// display label, the optimizer's estimates (copied in at build time), the
// collected runtime stats, and the child entries. The tree parallels the
// physical operator tree.
type StatsNode struct {
	Label string
	// EstRows and EstCost are the optimizer's estimates for this node;
	// EstRows < 0 means no estimate is attached (auxiliary operators such
	// as the sorts a merge join inserts).
	EstRows float64
	EstCost float64

	Stats    Stats
	Children []*StatsNode

	// Err is the first error this operator surfaced (from Open or Next),
	// so an aborted EXPLAIN ANALYZE can point at the failing node.
	Err error
}

// RowsIn returns the rows this operator pulled from its instrumented
// children (the sum of their RowsOut).
func (n *StatsNode) RowsIn() int64 {
	var in int64
	for _, c := range n.Children {
		in += c.Stats.RowsOut
	}
	return in
}

// SelfTuples returns the base tuples retrieved by this operator alone,
// excluding its children's share of the inclusive count. An index join's
// lookups, for example, are attributed to the join, not to its leaves.
func (n *StatsNode) SelfTuples() int64 {
	t := n.Stats.TuplesRetrieved
	for _, c := range n.Children {
		t -= c.Stats.TuplesRetrieved
	}
	return t
}

// SelfTime returns the wall time spent in this operator alone.
func (n *StatsNode) SelfTime() time.Duration {
	d := n.Stats.WallTime
	for _, c := range n.Children {
		d -= c.Stats.WallTime
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Executed reports whether the operator ran at all. An index join's inner
// table, for instance, appears in the plan but is never opened as an
// iterator — its tuples are fetched by the parent through the index.
func (n *StatsNode) Executed() bool { return n.Stats.Opens > 0 || n.Stats.NextCalls > 0 }

// Walk visits the node and every descendant in pre-order.
func (n *StatsNode) Walk(f func(depth int, n *StatsNode)) { n.walk(0, f) }

func (n *StatsNode) walk(depth int, f func(depth int, n *StatsNode)) {
	f(depth, n)
	for _, c := range n.Children {
		c.walk(depth+1, f)
	}
}

// Buffered is implemented by operators that materialize rows (sorts, hash
// and merge joins); BufferedRows reports how many rows are currently held
// so the instrumentation can track peak memory pressure, and the iterator
// contract can assert buffers are released on Close.
type Buffered interface {
	BufferedRows() int
}

// Instrumented wraps an iterator and records per-call statistics into a
// StatsNode. Instrumentation is strictly opt-in: an uninstrumented plan
// contains no wrappers and pays no cost (see BenchmarkStatsOverhead).
type Instrumented struct {
	child    Iterator
	buffered Buffered // child, if it materializes rows; else nil
	spiller  Spiller  // child, if it can spill to disk; else nil
	counters *Counters
	node     *StatsNode
}

// Instrument wraps child, attributing base-tuple retrieval deltas of c
// (which may be nil) to the new node. children are the stats nodes of the
// operator's already-instrumented inputs.
func Instrument(child Iterator, label string, c *Counters, children ...*StatsNode) *Instrumented {
	b, _ := child.(Buffered)
	sp, _ := child.(Spiller)
	return &Instrumented{
		child:    child,
		buffered: b,
		spiller:  sp,
		counters: c,
		node:     &StatsNode{Label: label, EstRows: -1, EstCost: -1, Children: children},
	}
}

// Node returns the stats entry the wrapper records into.
func (w *Instrumented) Node() *StatsNode { return w.node }

// Scheme implements Iterator.
func (w *Instrumented) Scheme() *relation.Scheme { return w.child.Scheme() }

// Open implements Iterator. Re-opening resets the node's per-run
// counters (and SpillStats) instead of accumulating into them: after a
// governor trip re-runs a subtree, or a fallback re-opens a child, the
// stats describe the cycle that actually produced the output, not the
// sum of the aborted attempt and the retry. Opens itself stays
// cumulative — it counts the cycles.
func (w *Instrumented) Open(ec *ExecContext) error {
	w.node.Stats = Stats{Opens: w.node.Stats.Opens}
	start := time.Now()
	var t0 int64
	if w.counters != nil {
		t0 = w.counters.TuplesRetrieved()
	}
	err := w.child.Open(ec)
	if w.counters != nil {
		w.node.Stats.TuplesRetrieved += w.counters.TuplesRetrieved() - t0
	}
	w.node.Stats.WallTime += time.Since(start)
	w.node.Stats.Opens++
	w.observeBuffer()
	return w.noteErr(err)
}

// Next implements Iterator.
func (w *Instrumented) Next() ([]relation.Value, bool, error) {
	start := time.Now()
	var t0 int64
	if w.counters != nil {
		t0 = w.counters.TuplesRetrieved()
	}
	row, ok, err := w.child.Next()
	if w.counters != nil {
		w.node.Stats.TuplesRetrieved += w.counters.TuplesRetrieved() - t0
	}
	w.node.Stats.WallTime += time.Since(start)
	w.node.Stats.NextCalls++
	if ok {
		w.node.Stats.RowsOut++
	}
	if w.buffered != nil || w.spiller != nil {
		w.observeBuffer()
	}
	return row, ok, w.noteErr(err)
}

// noteErr records the first error crossing this wrapper and, for typed
// resource errors, stamps the plan-node label of the tripping operator.
// The innermost wrapper the error crosses wins, so the label names the
// operator that actually tripped, not an ancestor.
func (w *Instrumented) noteErr(err error) error {
	if err == nil {
		return nil
	}
	if w.node.Err == nil {
		w.node.Err = err
	}
	var re *ResourceError
	if errors.As(err, &re) && re.Node == "" {
		re.Node = w.node.Label
	}
	return err
}

// Close implements Iterator.
func (w *Instrumented) Close() error { return w.child.Close() }

// BatchInstrumented is Instrumented over a batch-capable child: it
// preserves the NextBatch fast path, recording per-batch stat deltas
// (one NextCalls tick and one RowsOut += Len per batch) so
// instrumentation does not reintroduce the per-row costs batching
// removed.
type BatchInstrumented struct {
	*Instrumented
	bchild BatchIterator
}

// NextBatch implements BatchIterator.
func (w *BatchInstrumented) NextBatch() (*Batch, bool, error) {
	start := time.Now()
	var t0 int64
	if w.counters != nil {
		t0 = w.counters.TuplesRetrieved()
	}
	b, ok, err := w.bchild.NextBatch()
	if w.counters != nil {
		w.node.Stats.TuplesRetrieved += w.counters.TuplesRetrieved() - t0
	}
	w.node.Stats.WallTime += time.Since(start)
	w.node.Stats.NextCalls++
	if ok {
		w.node.Stats.RowsOut += int64(b.Len())
	}
	if w.buffered != nil || w.spiller != nil {
		w.observeBuffer()
	}
	return b, ok, w.noteErr(err)
}

// InstrumentIterator is Instrument preserving the child's batch
// capability: a BatchIterator child comes back wrapped as a
// BatchIterator, anything else as the plain row wrapper. The returned
// StatsNode is the entry the wrapper records into.
func InstrumentIterator(child Iterator, label string, c *Counters, children ...*StatsNode) (Iterator, *StatsNode) {
	w := Instrument(child, label, c, children...)
	if bc, ok := child.(BatchIterator); ok {
		return &BatchInstrumented{Instrumented: w, bchild: bc}, w.Node()
	}
	return w, w.Node()
}

func (w *Instrumented) observeBuffer() {
	if w.buffered != nil {
		if n := int64(w.buffered.BufferedRows()); n > w.node.Stats.PeakBuffered {
			w.node.Stats.PeakBuffered = n
		}
	}
	if w.spiller != nil {
		w.node.Stats.Spill = w.spiller.SpillInfo()
	}
}
