// Package exec is the physical execution engine: Volcano-style iterators
// over the storage layer, with scan/index-lookup accounting. The counter
// of tuples retrieved from base tables is the cost measure of the paper's
// Example 1 ("the first expression retrieves 2·10⁷+1 tuples, and the
// second retrieves only 3").
package exec

import (
	"fmt"
	"sort"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// Counters accumulates execution effort across a plan.
type Counters struct {
	// TuplesRetrieved counts rows fetched from base tables, by full scans
	// and by index lookups — the paper's Example 1 metric.
	TuplesRetrieved int64
	// RowsProduced counts rows emitted by the operator tree's root.
	RowsProduced int64
}

// Iterator is the Volcano operator interface. Next returns the next row
// and true, or false at end of stream. Rows must be treated as immutable
// by consumers.
type Iterator interface {
	Scheme() *relation.Scheme
	Open() error
	Next() ([]relation.Value, bool, error)
	Close() error
}

// Collect drains an iterator into a relation, updating RowsProduced.
func Collect(it Iterator, c *Counters) (*relation.Relation, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	out := relation.New(it.Scheme())
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		out.AppendRaw(row)
		if c != nil {
			c.RowsProduced++
		}
	}
	return out, nil
}

// Scan reads every row of a table.
type Scan struct {
	table    *storage.Table
	counters *Counters
	pos      int
}

// NewScan returns a full-table scan.
func NewScan(t *storage.Table, c *Counters) *Scan {
	return &Scan{table: t, counters: c}
}

// Scheme implements Iterator.
func (s *Scan) Scheme() *relation.Scheme { return s.table.Scheme() }

// Open implements Iterator.
func (s *Scan) Open() error { s.pos = 0; return nil }

// Next implements Iterator.
func (s *Scan) Next() ([]relation.Value, bool, error) {
	if s.pos >= s.table.Relation().Len() {
		return nil, false, nil
	}
	row := s.table.Relation().RawRow(s.pos)
	s.pos++
	if s.counters != nil {
		s.counters.TuplesRetrieved++
	}
	return row, true, nil
}

// Close implements Iterator.
func (s *Scan) Close() error { return nil }

// IndexScan fetches only the rows of a table whose indexed column equals
// a constant — the access path a pushed-down equality restriction earns
// when the column has a hash index. Each fetched row counts as one
// retrieved tuple.
type IndexScan struct {
	table    *storage.Table
	index    *storage.HashIndex
	value    relation.Value
	counters *Counters
	rows     []int
	pos      int
}

// NewIndexScan builds an index scan on the table's hash index over col.
func NewIndexScan(t *storage.Table, col string, v relation.Value, c *Counters) (*IndexScan, error) {
	idx, ok := t.HashIndexOn(col)
	if !ok {
		return nil, fmt.Errorf("exec: table %s has no hash index on %s", t.Name(), col)
	}
	return &IndexScan{table: t, index: idx, value: v, counters: c}, nil
}

// Scheme implements Iterator.
func (s *IndexScan) Scheme() *relation.Scheme { return s.table.Scheme() }

// Open implements Iterator.
func (s *IndexScan) Open() error {
	s.rows = s.index.Lookup(s.value)
	s.pos = 0
	return nil
}

// Next implements Iterator.
func (s *IndexScan) Next() ([]relation.Value, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.table.Relation().RawRow(s.rows[s.pos])
	s.pos++
	if s.counters != nil {
		s.counters.TuplesRetrieved++
	}
	return row, true, nil
}

// Close implements Iterator.
func (s *IndexScan) Close() error { return nil }

// RelationScan iterates an in-memory relation that is not a catalog
// table (e.g. a materialized intermediate); it does not count as base
// tuple retrieval.
type RelationScan struct {
	rel *relation.Relation
	pos int
}

// NewRelationScan wraps a relation as an iterator.
func NewRelationScan(rel *relation.Relation) *RelationScan {
	return &RelationScan{rel: rel}
}

// Scheme implements Iterator.
func (s *RelationScan) Scheme() *relation.Scheme { return s.rel.Scheme() }

// Open implements Iterator.
func (s *RelationScan) Open() error { s.pos = 0; return nil }

// Next implements Iterator.
func (s *RelationScan) Next() ([]relation.Value, bool, error) {
	if s.pos >= s.rel.Len() {
		return nil, false, nil
	}
	row := s.rel.RawRow(s.pos)
	s.pos++
	return row, true, nil
}

// Close implements Iterator.
func (s *RelationScan) Close() error { return nil }

// Filter applies a predicate to its child's rows.
type Filter struct {
	child Iterator
	bound predicate.Bound
}

// NewFilter compiles p against the child's scheme.
func NewFilter(child Iterator, p predicate.Predicate) (*Filter, error) {
	b, err := predicate.Bind(p, child.Scheme())
	if err != nil {
		return nil, fmt.Errorf("exec: filter: %w", err)
	}
	return &Filter{child: child, bound: b}, nil
}

// Scheme implements Iterator.
func (f *Filter) Scheme() *relation.Scheme { return f.child.Scheme() }

// Open implements Iterator.
func (f *Filter) Open() error { return f.child.Open() }

// Next implements Iterator.
func (f *Filter) Next() ([]relation.Value, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.bound.Holds(row) {
			return row, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.child.Close() }

// Project restricts rows to a subset of attributes, optionally removing
// duplicates.
type Project struct {
	child  Iterator
	scheme *relation.Scheme
	pos    []int
	dedup  bool
	seen   map[string]struct{}
	key    []byte // scratch buffer for dedup keys, reused across rows
}

// NewProject builds a projection onto attrs.
func NewProject(child Iterator, attrs []relation.Attr, dedup bool) (*Project, error) {
	sch, err := child.Scheme().Project(attrs)
	if err != nil {
		return nil, fmt.Errorf("exec: project: %w", err)
	}
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		pos[i] = child.Scheme().IndexOf(a)
	}
	return &Project{child: child, scheme: sch, pos: pos, dedup: dedup}, nil
}

// Scheme implements Iterator.
func (p *Project) Scheme() *relation.Scheme { return p.scheme }

// Open implements Iterator.
func (p *Project) Open() error {
	if p.dedup {
		p.seen = map[string]struct{}{}
	}
	return p.child.Open()
}

// Next implements Iterator.
func (p *Project) Next() ([]relation.Value, bool, error) {
	for {
		row, ok, err := p.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		out := make([]relation.Value, len(p.pos))
		for i, c := range p.pos {
			out[i] = row[c]
		}
		if p.dedup {
			buf := p.key[:0]
			for _, v := range out {
				buf = relation.AppendKey(buf, v)
			}
			p.key = buf
			if _, dup := p.seen[string(buf)]; dup {
				continue
			}
			p.seen[string(buf)] = struct{}{}
		}
		return out, true, nil
	}
}

// Close implements Iterator: the dedup set is released.
func (p *Project) Close() error {
	p.seen = nil
	return p.child.Close()
}

// Sort materializes and orders its input by the given columns (ascending,
// nulls first), enabling merge joins and deterministic output.
type Sort struct {
	child Iterator
	by    []int
	rows  [][]relation.Value
	pos   int
}

// NewSort orders by the listed attributes of the child's scheme.
func NewSort(child Iterator, by []relation.Attr) (*Sort, error) {
	pos := make([]int, len(by))
	for i, a := range by {
		p := child.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: sort: attribute %s not in scheme %s", a, child.Scheme())
		}
		pos[i] = p
	}
	return &Sort{child: child, by: pos}, nil
}

// Scheme implements Iterator.
func (s *Sort) Scheme() *relation.Scheme { return s.child.Scheme() }

// Open implements Iterator.
func (s *Sort) Open() error {
	if err := s.child.Open(); err != nil {
		return err
	}
	defer s.child.Close()
	s.rows = s.rows[:0]
	for {
		row, ok, err := s.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		s.rows = append(s.rows, row)
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, c := range s.by {
			if cmp := s.rows[i][c].Compare(s.rows[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	s.pos = 0
	return nil
}

// Next implements Iterator.
func (s *Sort) Next() ([]relation.Value, bool, error) {
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// Close implements Iterator: the materialized input is released (a Sort
// that merely finished streaming would otherwise pin every input row for
// the lifetime of the plan).
func (s *Sort) Close() error {
	s.rows = nil
	return nil
}

// BufferedRows implements Buffered.
func (s *Sort) BufferedRows() int { return len(s.rows) }

// materialize drains an iterator into memory (used by blocking joins).
func materialize(it Iterator) ([][]relation.Value, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var rows [][]relation.Value
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return rows, nil
		}
		rows = append(rows, row)
	}
}

func concatRows(a, b []relation.Value) []relation.Value {
	out := make([]relation.Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func padRight(a []relation.Value, n int) []relation.Value {
	out := make([]relation.Value, len(a)+n)
	copy(out, a)
	return out
}
