// Package exec is the physical execution engine: Volcano-style iterators
// over the storage layer, with scan/index-lookup accounting. The counter
// of tuples retrieved from base tables is the cost measure of the paper's
// Example 1 ("the first expression retrieves 2·10⁷+1 tuples, and the
// second retrieves only 3").
//
// Every Open takes an *ExecContext (may be nil = ungoverned) carrying a
// context.Context and an optional Governor, so cancellation, deadlines
// and memory budgets propagate into every operator, including the
// blocking ones that materialize their inputs. Operators that buffer rows
// charge the governor as they buffer and release the charge on Close; a
// trip surfaces as a typed *ResourceError naming the operator.
//
// The error contract (enforced by faults_test.go for every operator):
// an Open that returns an error has already closed any children it opened
// and released any buffers and governor charges it acquired; after Next
// returns an error the operator never calls a child's Next again; Close
// is idempotent and always releases buffers and charges.
package exec

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"freejoin/internal/exec/spill"
	"freejoin/internal/obs"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/resource"
	"freejoin/internal/storage"
)

// Re-exports: the governance types live in internal/resource (below both
// exec and storage); exec is their primary consumer and public face.
type (
	// ExecContext carries cancellation, deadline and memory budget state
	// through Open. A nil *ExecContext means ungoverned execution.
	ExecContext = resource.ExecContext
	// Governor enforces memory budgets over buffered rows.
	Governor = resource.Governor
	// ResourceError is the typed error of a cancelled, timed-out or
	// over-budget execution.
	ResourceError = resource.ResourceError
	// Kind classifies a ResourceError.
	Kind = resource.Kind
	// SpillConfig enables and parameterizes spill-to-disk execution;
	// attach one with ExecContext.EnableSpill.
	SpillConfig = resource.SpillConfig
)

// Resource error kinds (see resource.Kind).
const (
	Cancelled        = resource.Cancelled
	DeadlineExceeded = resource.DeadlineExceeded
	MemoryExceeded   = resource.MemoryExceeded
	SpillExceeded    = resource.SpillExceeded
)

// spillable reports whether err is a memory-budget trip that the
// spill-to-disk paths can absorb: spilling must be enabled on the
// context and the error must be a MemoryExceeded governor trip (a
// cancellation or deadline aborts regardless).
func spillable(ec *ExecContext, err error) bool {
	if ec.Spill() == nil {
		return false
	}
	var re *ResourceError
	return errors.As(err, &re) && re.Kind == MemoryExceeded
}

// NewGovernor returns a governor with the given row/byte budgets (zero
// disables a limit).
func NewGovernor(limitRows, limitBytes int64) *Governor {
	return resource.NewGovernor(limitRows, limitBytes)
}

// NewExecContext builds an execution context from a context and an
// optional governor; both may be nil.
var NewExecContext = resource.NewContext

// Counters accumulates execution effort across a plan. The fields are
// atomic so that a monitoring scrape (or any other goroutine — a
// ParallelHashJoin worker, a progress reporter) can read them while the
// executing goroutine updates them; today every *writer* is the single
// executing goroutine (scans and index lookups run serially, parallel
// join workers charge the governor but not the counters), and the
// atomics make the cross-goroutine *reads* race-free. All methods are
// nil-safe: a nil *Counters counts nothing and reads zero.
type Counters struct {
	tuplesRetrieved atomic.Int64
	rowsProduced    atomic.Int64
}

// TuplesRetrieved returns the rows fetched from base tables, by full
// scans and by index lookups — the paper's Example 1 metric.
func (c *Counters) TuplesRetrieved() int64 {
	if c == nil {
		return 0
	}
	return c.tuplesRetrieved.Load()
}

// RowsProduced returns the rows emitted by the operator tree's root.
func (c *Counters) RowsProduced() int64 {
	if c == nil {
		return 0
	}
	return c.rowsProduced.Load()
}

// IncTuples counts one base-table tuple retrieval.
func (c *Counters) IncTuples() {
	if c != nil {
		c.tuplesRetrieved.Add(1)
	}
}

// IncRows counts one row emitted by the plan root.
func (c *Counters) IncRows() {
	if c != nil {
		c.rowsProduced.Add(1)
	}
}

// AddTuples counts n base-table tuple retrievals — the per-batch
// variant of IncTuples.
func (c *Counters) AddTuples(n int64) {
	if c != nil && n > 0 {
		c.tuplesRetrieved.Add(n)
	}
}

// AddRows counts n rows emitted by the plan root — the per-batch
// variant of IncRows.
func (c *Counters) AddRows(n int64) {
	if c != nil && n > 0 {
		c.rowsProduced.Add(n)
	}
}

// Iterator is the Volcano operator interface. Next returns the next row
// and true, or false at end of stream. Rows must be treated as immutable
// by consumers. Open accepts a nil ExecContext (ungoverned execution).
type Iterator interface {
	Scheme() *relation.Scheme
	Open(ec *ExecContext) error
	Next() ([]relation.Value, bool, error)
	Close() error
}

// rowBytes estimates the resident size of a row for byte budgets: the
// Value struct itself plus string payloads.
func rowBytes(row []relation.Value) int64 {
	n := int64(len(row)) * 40 // unsafe.Sizeof(relation.Value{}) on 64-bit
	for _, v := range row {
		if v.Kind() == relation.KindString {
			n += int64(len(v.AsString()))
		}
	}
	return n
}

// hold tracks one operator's outstanding governor reservation so it can
// be released exactly once, on Close or on an Open error path.
type hold struct {
	rows, bytes int64
}

// charge reserves one row against the budget on behalf of op.
func (h *hold) charge(ec *ExecContext, op string, row []relation.Value) error {
	b := rowBytes(row)
	if err := ec.Reserve(op, 1, b); err != nil {
		return err
	}
	h.rows++
	h.bytes += b
	return nil
}

// chargeN reserves rows/bytes in one governor call — the per-batch
// variant of charge that amortizes the accounting over a whole batch.
func (h *hold) chargeN(ec *ExecContext, op string, rows, bytes int64) error {
	if rows == 0 && bytes == 0 {
		return nil
	}
	if err := ec.Reserve(op, rows, bytes); err != nil {
		return err
	}
	h.rows += rows
	h.bytes += bytes
	return nil
}

// release returns the entire outstanding reservation.
func (h *hold) release(ec *ExecContext) {
	if h.rows != 0 || h.bytes != 0 {
		ec.Release(h.rows, h.bytes)
		h.rows, h.bytes = 0, 0
	}
}

// arenaChunkRows is how many row copies share one rowArena slab.
const arenaChunkRows = 1024

// rowArena amortizes retained-row copies. Under the ownership contract
// every buffered row must be a copy (the producer may reuse its
// storage), and a per-row make puts one allocation on every build-side
// row; the arena carves copies out of chunked slabs instead — one
// allocation per arenaChunkRows rows. A chunk stays alive as long as
// any row sliced from it does, so at most one chunk of slack outlives
// the buffer that retained it.
type rowArena struct {
	free []relation.Value
}

// copyRow returns a stable copy of row carved from the arena.
func (a *rowArena) copyRow(row []relation.Value) []relation.Value {
	w := len(row)
	if w == 0 {
		return []relation.Value{}
	}
	if len(a.free) < w {
		a.free = make([]relation.Value, arenaChunkRows*w)
	}
	dst := a.free[:w:w]
	copy(dst, row)
	a.free = a.free[w:]
	return dst
}

// Collect drains an iterator into a relation, updating RowsProduced.
// The iterator is always closed, including on mid-stream errors; a Close
// error surfaces when the drain itself succeeded.
func Collect(it Iterator, c *Counters) (*relation.Relation, error) {
	return CollectCtx(nil, it, c)
}

// CollectCtx is Collect under an execution context: cancellation,
// deadlines and memory budgets govern the drain. When counters are
// attached the process-wide metrics absorb the execution's effort (rows
// produced, tuples retrieved) on the way out, error or not — nested
// drains that pass nil counters (a GOJ materializing its inputs) stay
// out of the cumulative figures.
func CollectCtx(ec *ExecContext, it Iterator, c *Counters) (*relation.Relation, error) {
	if c != nil {
		t0 := c.TuplesRetrieved()
		r0 := c.RowsProduced()
		defer func() {
			obs.TuplesRetrieved.Add(c.TuplesRetrieved() - t0)
			obs.RowsProduced.Add(c.RowsProduced() - r0)
		}()
	}
	if err := it.Open(ec); err != nil {
		// The operator contract releases its own state on a failed Open;
		// Close here is a harmless idempotent safety net.
		it.Close()
		return nil, err
	}
	// The iterator must be closed on every exit — including a panic
	// unwinding out of Next (an injected fault, a bug in an operator):
	// Close releases governor charges, buffers and spill run files, so a
	// session-level recover() finds nothing leaked.
	closed := false
	defer func() {
		if !closed {
			it.Close()
		}
	}()
	out := relation.New(it.Scheme())
	if bi, ok := it.(BatchIterator); ok {
		// Batch drain: one NextBatch call and one slab copy per batch.
		for {
			b, ok, err := bi.NextBatch()
			if err != nil {
				closed = true
				it.Close()
				return nil, err
			}
			if !ok {
				break
			}
			b.appendToRelation(out)
			c.AddRows(int64(b.Len()))
		}
	} else {
		var arena rowArena
		for {
			row, ok, err := it.Next()
			if err != nil {
				closed = true
				it.Close()
				return nil, err
			}
			if !ok {
				break
			}
			// The row is only valid until the next Next; keep a copy.
			out.AppendRaw(arena.copyRow(row))
			c.IncRows()
		}
	}
	closed = true
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// Scan reads every row of a table. Rows are served from a reused
// per-iterator buffer: handing out base-table storage directly would let
// a caller exercising its ownership right to mutate the row corrupt the
// table.
type Scan struct {
	table    *storage.Table
	counters *Counters
	ec       *ExecContext
	pos      int
	buf      []relation.Value
}

// NewScan returns a full-table scan.
func NewScan(t *storage.Table, c *Counters) *Scan {
	return &Scan{table: t, counters: c}
}

// Scheme implements Iterator.
func (s *Scan) Scheme() *relation.Scheme { return s.table.Scheme() }

// Open implements Iterator.
func (s *Scan) Open(ec *ExecContext) error {
	s.ec = ec
	s.pos = 0
	return ec.Err("scan")
}

// Next implements Iterator.
func (s *Scan) Next() ([]relation.Value, bool, error) {
	if err := s.ec.Err("scan"); err != nil {
		return nil, false, err
	}
	if s.pos >= s.table.Relation().Len() {
		return nil, false, nil
	}
	if s.buf == nil {
		s.buf = make([]relation.Value, s.table.Scheme().Len())
	}
	copy(s.buf, s.table.Relation().RawRow(s.pos))
	s.pos++
	if s.counters != nil {
		s.counters.IncTuples()
	}
	return s.buf, true, nil
}

// Close implements Iterator.
func (s *Scan) Close() error { return nil }

// IndexScan fetches only the rows of a table whose indexed column equals
// a constant — the access path a pushed-down equality restriction earns
// when the column has a hash index. Each fetched row counts as one
// retrieved tuple.
type IndexScan struct {
	table    *storage.Table
	index    *storage.HashIndex
	value    relation.Value
	counters *Counters
	ec       *ExecContext
	rows     []int
	pos      int
	buf      []relation.Value
}

// NewIndexScan builds an index scan on the table's hash index over col.
func NewIndexScan(t *storage.Table, col string, v relation.Value, c *Counters) (*IndexScan, error) {
	idx, ok := t.HashIndexOn(col)
	if !ok {
		return nil, fmt.Errorf("exec: table %s has no hash index on %s", t.Name(), col)
	}
	return &IndexScan{table: t, index: idx, value: v, counters: c}, nil
}

// Scheme implements Iterator.
func (s *IndexScan) Scheme() *relation.Scheme { return s.table.Scheme() }

// Open implements Iterator.
func (s *IndexScan) Open(ec *ExecContext) error {
	s.ec = ec
	if err := ec.Err("indexscan"); err != nil {
		return err
	}
	s.rows = s.index.Lookup(s.value)
	s.pos = 0
	return nil
}

// Next implements Iterator.
func (s *IndexScan) Next() ([]relation.Value, bool, error) {
	if err := s.ec.Err("indexscan"); err != nil {
		return nil, false, err
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	if s.buf == nil {
		s.buf = make([]relation.Value, s.table.Scheme().Len())
	}
	copy(s.buf, s.table.Relation().RawRow(s.rows[s.pos]))
	s.pos++
	if s.counters != nil {
		s.counters.IncTuples()
	}
	return s.buf, true, nil
}

// Close implements Iterator.
func (s *IndexScan) Close() error { return nil }

// RelationScan iterates an in-memory relation that is not a catalog
// table (e.g. a materialized intermediate); it does not count as base
// tuple retrieval.
type RelationScan struct {
	rel *relation.Relation
	ec  *ExecContext
	pos int
	buf []relation.Value
}

// NewRelationScan wraps a relation as an iterator.
func NewRelationScan(rel *relation.Relation) *RelationScan {
	return &RelationScan{rel: rel}
}

// Scheme implements Iterator.
func (s *RelationScan) Scheme() *relation.Scheme { return s.rel.Scheme() }

// Open implements Iterator.
func (s *RelationScan) Open(ec *ExecContext) error {
	s.ec = ec
	s.pos = 0
	return ec.Err("relationscan")
}

// Next implements Iterator.
func (s *RelationScan) Next() ([]relation.Value, bool, error) {
	if err := s.ec.Err("relationscan"); err != nil {
		return nil, false, err
	}
	if s.pos >= s.rel.Len() {
		return nil, false, nil
	}
	if s.buf == nil {
		s.buf = make([]relation.Value, s.rel.Scheme().Len())
	}
	copy(s.buf, s.rel.RawRow(s.pos))
	s.pos++
	return s.buf, true, nil
}

// Close implements Iterator.
func (s *RelationScan) Close() error { return nil }

// Filter applies a predicate to its child's rows.
type Filter struct {
	child Iterator
	bound predicate.Bound
}

// NewFilter compiles p against the child's scheme.
func NewFilter(child Iterator, p predicate.Predicate) (*Filter, error) {
	b, err := predicate.Bind(p, child.Scheme())
	if err != nil {
		return nil, fmt.Errorf("exec: filter: %w", err)
	}
	return &Filter{child: child, bound: b}, nil
}

// Scheme implements Iterator.
func (f *Filter) Scheme() *relation.Scheme { return f.child.Scheme() }

// Open implements Iterator.
func (f *Filter) Open(ec *ExecContext) error {
	if err := ec.Err("filter"); err != nil {
		return err
	}
	return f.child.Open(ec)
}

// Next implements Iterator.
func (f *Filter) Next() ([]relation.Value, bool, error) {
	for {
		row, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.bound.Holds(row) {
			return row, true, nil
		}
	}
}

// Close implements Iterator.
func (f *Filter) Close() error { return f.child.Close() }

// Project restricts rows to a subset of attributes, optionally removing
// duplicates.
type Project struct {
	child  Iterator
	scheme *relation.Scheme
	pos    []int
	dedup  bool
	ec     *ExecContext
	held   hold
	seen   map[string]struct{}
	key    []byte // scratch buffer for dedup keys, reused across rows
}

// NewProject builds a projection onto attrs.
func NewProject(child Iterator, attrs []relation.Attr, dedup bool) (*Project, error) {
	sch, err := child.Scheme().Project(attrs)
	if err != nil {
		return nil, fmt.Errorf("exec: project: %w", err)
	}
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		pos[i] = child.Scheme().IndexOf(a)
	}
	return &Project{child: child, scheme: sch, pos: pos, dedup: dedup}, nil
}

// Scheme implements Iterator.
func (p *Project) Scheme() *relation.Scheme { return p.scheme }

// Open implements Iterator.
func (p *Project) Open(ec *ExecContext) error {
	if err := ec.Err("project"); err != nil {
		return err
	}
	p.held.release(p.ec) // re-Open without Close: drop any stale charge
	p.ec = ec
	if p.dedup {
		p.seen = map[string]struct{}{}
	}
	return p.child.Open(ec)
}

// Next implements Iterator.
func (p *Project) Next() ([]relation.Value, bool, error) {
	for {
		row, ok, err := p.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		out := make([]relation.Value, len(p.pos))
		for i, c := range p.pos {
			out[i] = row[c]
		}
		if p.dedup {
			buf := p.key[:0]
			for _, v := range out {
				buf = relation.AppendKey(buf, v)
			}
			p.key = buf
			if _, dup := p.seen[string(buf)]; dup {
				continue
			}
			// The dedup set retains one projected row per distinct key.
			if err := p.held.charge(p.ec, "project", out); err != nil {
				return nil, false, err
			}
			p.seen[string(buf)] = struct{}{}
		}
		return out, true, nil
	}
}

// Close implements Iterator: the dedup set is released.
func (p *Project) Close() error {
	p.seen = nil
	p.held.release(p.ec)
	return p.child.Close()
}

// Sort orders its input by the given columns (ascending, nulls first),
// enabling merge joins and deterministic output. In memory it is a plain
// materializing sort; when the governor trips the memory budget and the
// context enables spilling, it becomes an external merge sort — sorted
// runs are written to disk as the budget fills, reduced to at most
// mergeFanIn runs by intermediate merge passes, and streamed through a
// final k-way merge on Next.
type Sort struct {
	child Iterator
	by    []int
	ec    *ExecContext
	held  hold
	rows  [][]relation.Value
	arena rowArena
	pos   int

	runs  []*spill.Run
	merge *runMerge
	spst  SpillStats
}

// mergeFanIn bounds the number of runs a single merge reads at once;
// more runs than this are first reduced by intermediate merge passes.
const mergeFanIn = 16

// NewSort orders by the listed attributes of the child's scheme.
func NewSort(child Iterator, by []relation.Attr) (*Sort, error) {
	pos := make([]int, len(by))
	for i, a := range by {
		p := child.Scheme().IndexOf(a)
		if p < 0 {
			return nil, fmt.Errorf("exec: sort: attribute %s not in scheme %s", a, child.Scheme())
		}
		pos[i] = p
	}
	return &Sort{child: child, by: pos}, nil
}

// Scheme implements Iterator.
func (s *Sort) Scheme() *relation.Scheme { return s.child.Scheme() }

// Open implements Iterator.
func (s *Sort) Open(ec *ExecContext) error {
	s.held.release(s.ec) // re-Open without Close: drop any stale charge
	s.reset(s.ec)        // ... and any stale spill state
	s.ec = ec
	s.spst = SpillStats{}
	if err := ec.Err("sort"); err != nil {
		return err
	}
	s.rows = s.rows[:0]
	s.pos = 0
	if err := s.child.Open(ec); err != nil {
		s.child.Close()
		return err
	}
	for {
		row, ok, err := s.child.Next()
		if err != nil {
			return s.abort(ec, err)
		}
		if !ok {
			break
		}
		if cerr := s.held.charge(ec, "sort", row); cerr != nil {
			// Budget full: flush the buffer as a sorted run and retry. A
			// retry failure means a single row exceeds the budget on its
			// own — nothing left to spill.
			if !spillable(ec, cerr) || len(s.rows) == 0 {
				return s.abort(ec, cerr)
			}
			if serr := s.spillRun(ec); serr != nil {
				return s.abort(ec, serr)
			}
			if cerr = s.held.charge(ec, "sort", row); cerr != nil {
				return s.abort(ec, cerr)
			}
		}
		s.rows = append(s.rows, s.arena.copyRow(row))
	}
	if err := s.child.Close(); err != nil {
		return s.fail(ec, err)
	}
	if len(s.runs) == 0 {
		s.sortRows() // everything fit: plain in-memory sort
		return nil
	}
	// External path: spill the tail so the merge is uniform over runs,
	// reduce to the merge fan-in, and stream the final pass on Next.
	if len(s.rows) > 0 {
		if err := s.spillRun(ec); err != nil {
			return s.fail(ec, err)
		}
	}
	if err := s.reduceRuns(ec); err != nil {
		return s.fail(ec, err)
	}
	m, err := newRunMerge(s.runs, s.by)
	if err != nil {
		return s.fail(ec, err)
	}
	s.merge = m
	s.spst.MergePasses++ // the final streaming pass
	return nil
}

// abort is the mid-drain error path: the child is closed and every
// buffer, run and charge is released before err is returned.
func (s *Sort) abort(ec *ExecContext, err error) error {
	s.child.Close()
	return s.fail(ec, err)
}

// fail releases everything Open accumulated and returns err.
func (s *Sort) fail(ec *ExecContext, err error) error {
	s.rows, s.pos = nil, 0
	s.held.release(ec)
	s.reset(ec)
	return err
}

// reset drops spill state (runs and the merge) against ec.
func (s *Sort) reset(ec *ExecContext) {
	if s.merge != nil {
		s.merge.Close()
		s.merge = nil
	}
	for _, r := range s.runs {
		r.Drop(ec)
	}
	s.runs = nil
}

// sortRows orders the in-memory buffer by the sort columns.
func (s *Sort) sortRows() {
	sort.SliceStable(s.rows, func(i, j int) bool {
		return lessRows(s.rows[i], s.rows[j], s.by)
	})
}

// spillRun sorts the buffer, writes it to a new run file, and releases
// the buffer's governor charge (the rows now live on disk, charged
// against the spill budget instead).
func (s *Sort) spillRun(ec *ExecContext) error {
	s.sortRows()
	w, err := spill.NewWriter(ec, "sort")
	if err != nil {
		return err
	}
	for _, row := range s.rows {
		if err := w.Append(row); err != nil {
			w.Abort()
			return err
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	s.runs = append(s.runs, run)
	s.spst.Runs++
	s.spst.Bytes += run.Bytes
	s.rows = s.rows[:0]
	s.held.release(ec)
	return nil
}

// reduceRuns merges groups of mergeFanIn runs into single longer runs
// until at most mergeFanIn remain, counting one merge pass per sweep.
func (s *Sort) reduceRuns(ec *ExecContext) error {
	for len(s.runs) > mergeFanIn {
		var next []*spill.Run
		rest := s.runs
		for len(rest) > 0 {
			n := len(rest)
			if n > mergeFanIn {
				n = mergeFanIn
			}
			group := rest[:n]
			merged, err := s.mergeToRun(ec, group)
			if err != nil {
				// Keep the live set consistent for cleanup by the caller.
				s.runs = append(next, rest...)
				return err
			}
			for _, r := range group {
				r.Drop(ec)
			}
			rest = rest[n:]
			next = append(next, merged)
		}
		s.runs = next
		s.spst.MergePasses++
	}
	return nil
}

// mergeToRun merges a group of sorted runs into one new run file.
func (s *Sort) mergeToRun(ec *ExecContext, group []*spill.Run) (*spill.Run, error) {
	m, err := newRunMerge(group, s.by)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	w, err := spill.NewWriter(ec, "sort")
	if err != nil {
		return nil, err
	}
	for {
		if err := ec.Err("sort"); err != nil {
			w.Abort()
			return nil, err
		}
		row, ok, err := m.Next()
		if err != nil {
			w.Abort()
			return nil, err
		}
		if !ok {
			break
		}
		if err := w.Append(row); err != nil {
			w.Abort()
			return nil, err
		}
	}
	run, err := w.Finish()
	if err != nil {
		return nil, err
	}
	s.spst.Runs++
	s.spst.Bytes += run.Bytes
	return run, nil
}

// Next implements Iterator.
func (s *Sort) Next() ([]relation.Value, bool, error) {
	if s.merge != nil {
		if err := s.ec.Err("sort"); err != nil {
			return nil, false, err
		}
		return s.merge.Next()
	}
	if s.pos >= len(s.rows) {
		return nil, false, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, true, nil
}

// Close implements Iterator: the materialized input is released (a Sort
// that merely finished streaming would otherwise pin every input row for
// the lifetime of the plan), run files are deleted and their spill-byte
// charges returned.
func (s *Sort) Close() error {
	s.rows = nil
	s.held.release(s.ec)
	s.reset(s.ec)
	return nil
}

// BufferedRows implements Buffered. In the external phase the in-memory
// buffer is empty; the merge holds at most mergeFanIn head rows, which
// are not counted (nor charged).
func (s *Sort) BufferedRows() int { return len(s.rows) }

// SpillInfo implements Spiller.
func (s *Sort) SpillInfo() SpillStats { return s.spst }

// lessRows compares rows on the given columns (Value.Compare order,
// nulls first); the strict inequality keeps merges stable.
func lessRows(a, b []relation.Value, by []int) bool {
	for _, c := range by {
		if cmp := a[c].Compare(b[c]); cmp != 0 {
			return cmp < 0
		}
	}
	return false
}

// runMerge is the k-way merge over sorted runs behind the external
// sort's Next: every run contributes its head row, and each Next emits
// the least head. With at most mergeFanIn runs, a linear scan of the
// heads beats heap bookkeeping.
type runMerge struct {
	by    []int
	rds   []*spill.Reader
	heads [][]relation.Value // nil entry = run exhausted
}

// newRunMerge opens every run and primes the heads; on error whatever
// was opened is closed again.
func newRunMerge(runs []*spill.Run, by []int) (*runMerge, error) {
	m := &runMerge{by: by}
	for _, run := range runs {
		rd, err := run.Open()
		if err != nil {
			m.Close()
			return nil, err
		}
		m.rds = append(m.rds, rd)
		head, ok, err := rd.Next()
		if err != nil {
			m.Close()
			return nil, err
		}
		if !ok {
			head = nil
		}
		m.heads = append(m.heads, head)
	}
	return m, nil
}

// Next emits the least remaining row across all runs. Ties go to the
// earliest run — runs are spilled in input order and sorted stably, so
// the merge output is stable too.
func (m *runMerge) Next() ([]relation.Value, bool, error) {
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best < 0 || lessRows(h, m.heads[best], m.by) {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	row := m.heads[best]
	next, ok, err := m.rds[best].Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		m.heads[best] = next
	} else {
		m.heads[best] = nil
	}
	return row, true, nil
}

// Close releases every reader. The runs themselves belong to the Sort.
func (m *runMerge) Close() {
	for _, rd := range m.rds {
		rd.Close()
	}
	m.rds, m.heads = nil, nil
}

// materialize drains an iterator into memory (used by blocking joins),
// charging each buffered row to the governor on behalf of op when h is
// non-nil. The child is closed on every path; on error the caller still
// owns (and must release) whatever h accumulated.
func materialize(it Iterator, ec *ExecContext, op string, h *hold) ([][]relation.Value, error) {
	if err := it.Open(ec); err != nil {
		it.Close()
		return nil, err
	}
	var rows [][]relation.Value
	var arena rowArena
	for {
		row, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		if h != nil {
			if err := h.charge(ec, op, row); err != nil {
				it.Close()
				return nil, err
			}
		}
		rows = append(rows, arena.copyRow(row))
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}

func concatRows(a, b []relation.Value) []relation.Value {
	out := make([]relation.Value, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func padRight(a []relation.Value, n int) []relation.Value {
	out := make([]relation.Value, len(a)+n)
	copy(out, a)
	return out
}
