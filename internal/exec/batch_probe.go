package exec

import (
	"errors"
	"fmt"

	"freejoin/internal/obs"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// BatchIndexJoin is the vectorized IndexJoin: left batches drive hash
// probes into the inner table's index, and matches are emitted as
// concatenated (or null-padded) rows into a reused output batch.
// Retrieved-tuple accounting is amortized to one counter update per
// batch. The index and inner relation are static, so a probe whose
// match list outgrows the output batch can suspend and resume on the
// next call without copying anything.
type BatchIndexJoin struct {
	left     Iterator
	inner    *storage.Table
	index    *storage.HashIndex
	outerKey int
	scheme   *relation.Scheme
	residual *predicate.Bound
	mode     JoinMode
	counters *Counters
	iwidth   int
	size     int

	ec      *ExecContext
	bleft   BatchIterator
	lb      *Batch
	lpos    int
	ldone   bool
	crow    []relation.Value // scratch concat row for the residual
	fetched int64            // tuples fetched since the last flush

	// A probe whose matches outgrew the output batch: emission resumes
	// at pendPositions[pendPos]. The row stays valid because the left
	// child is not advanced until its batch is fully processed.
	pendRow       []relation.Value
	pendPositions []int
	pendPos       int

	// Per-left-batch probe results from the index's vectorized span
	// lookup; empty (and unused) when the index has no int probe table.
	spans    []storage.IntSpan
	useSpans bool

	out *Batch
	cur batchCursor
}

// NewBatchIndexJoin mirrors NewIndexJoin with a configured batch size
// (size <= 0 means DefaultBatchSize or the execution context override).
func NewBatchIndexJoin(left Iterator, inner *storage.Table, idxCol string, outerKey relation.Attr,
	residual predicate.Predicate, mode JoinMode, c *Counters, size int) (*BatchIndexJoin, error) {
	idx, ok := inner.HashIndexOn(idxCol)
	if !ok {
		return nil, fmt.Errorf("exec: table %s has no hash index on %s", inner.Name(), idxCol)
	}
	kp := left.Scheme().IndexOf(outerKey)
	if kp < 0 {
		return nil, fmt.Errorf("exec: outer key %s not in left scheme %s", outerKey, left.Scheme())
	}
	sch, err := outputScheme(left.Scheme(), inner.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	j := &BatchIndexJoin{left: left, inner: inner, index: idx, outerKey: kp, scheme: sch,
		mode: mode, counters: c, iwidth: inner.Scheme().Len(), size: size}
	if residual != nil {
		full, err := left.Scheme().Concat(inner.Scheme())
		if err != nil {
			return nil, err
		}
		b, err := predicate.Bind(residual, full)
		if err != nil {
			return nil, fmt.Errorf("exec: index join residual: %w", err)
		}
		j.residual = &b
	}
	return j, nil
}

// Scheme implements Iterator.
func (j *BatchIndexJoin) Scheme() *relation.Scheme { return j.scheme }

// Open implements Iterator.
func (j *BatchIndexJoin) Open(ec *ExecContext) error {
	j.ec = ec
	if err := ec.Err("indexjoin"); err != nil {
		return err
	}
	size := resolveBatchSize(ec, j.size)
	j.out = ensureBatch(j.out, j.scheme, size)
	j.bleft = Batching(j.left, size)
	j.lb, j.lpos, j.ldone = nil, 0, false
	j.pendRow, j.pendPositions, j.pendPos = nil, nil, 0
	j.fetched = 0
	j.cur.reset()
	return j.left.Open(ec)
}

// residualHolds applies the residual (if any) to lrow ++ irow.
func (j *BatchIndexJoin) residualHolds(lrow, irow []relation.Value) bool {
	if j.residual == nil {
		return true
	}
	crow := j.crow[:0]
	crow = append(crow, lrow...)
	crow = append(crow, irow...)
	j.crow = crow
	return j.residual.Holds(crow)
}

// NextBatch implements BatchIterator, flushing the amortized
// retrieved-tuple count once per batch.
func (j *BatchIndexJoin) NextBatch() (*Batch, bool, error) {
	b, ok, err := j.nextBatch()
	if j.fetched > 0 {
		j.counters.AddTuples(j.fetched)
		j.fetched = 0
	}
	return b, ok, err
}

func (j *BatchIndexJoin) nextBatch() (*Batch, bool, error) {
	if err := j.ec.Err("indexjoin"); err != nil {
		return nil, false, err
	}
	out := j.out
	out.Reset()
	for {
		// Resume a suspended match list before advancing the probe.
		if j.pendRow != nil {
			j.drainPend(out)
			if out.Full() {
				return out, true, nil
			}
		}
		if j.lb == nil || j.lpos >= j.lb.Len() {
			if j.ldone {
				break
			}
			b, ok, err := j.bleft.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				j.ldone = true
				break
			}
			j.lb, j.lpos = b, 0
			if cap(j.spans) < b.Len() {
				j.spans = make([]storage.IntSpan, b.Len())
			}
			j.useSpans = j.index.LookupIntSpans(b.vals, b.width, j.outerKey, j.spans[:b.Len()])
		}
		for j.lpos < j.lb.Len() && !out.Full() && j.pendRow == nil {
			j.probeRow(out, j.lpos)
			j.lpos++
		}
		if out.Full() {
			return out, true, nil
		}
	}
	if out.Len() == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// probeRow probes left row i of the current batch against the index,
// emitting into out. Each fetched inner row counts as one retrieved
// tuple, as in the row operator.
func (j *BatchIndexJoin) probeRow(out *Batch, i int) {
	lrow := j.lb.Row(i)
	var positions []int
	if j.useSpans {
		positions = j.index.SpanRows(j.spans[i])
	} else {
		positions = j.index.Lookup(lrow[j.outerKey])
	}
	rel := j.inner.Relation()
	matched := false
	for pi := 0; pi < len(positions); pi++ {
		irow := rel.RawRow(positions[pi])
		j.fetched++
		if !j.residualHolds(lrow, irow) {
			continue
		}
		matched = true
		if j.mode == InnerMode || j.mode == LeftOuterMode {
			out.AppendConcat(lrow, irow)
			if out.Full() && pi+1 < len(positions) {
				// Matched already, so completion needs no miss handling.
				j.pendRow, j.pendPositions, j.pendPos = lrow, positions, pi+1
				return
			}
		} else {
			break
		}
	}
	switch j.mode {
	case LeftOuterMode:
		if !matched {
			out.AppendPad(lrow)
		}
	case SemiMode:
		if matched {
			out.AppendRow(lrow)
		}
	case AntiMode:
		if !matched {
			out.AppendRow(lrow)
		}
	}
}

// drainPend emits the suspended probe's remaining matches until the
// list or the output batch is exhausted.
func (j *BatchIndexJoin) drainPend(out *Batch) {
	rel := j.inner.Relation()
	for j.pendPos < len(j.pendPositions) && !out.Full() {
		irow := rel.RawRow(j.pendPositions[j.pendPos])
		j.pendPos++
		j.fetched++
		if !j.residualHolds(j.pendRow, irow) {
			continue
		}
		out.AppendConcat(j.pendRow, irow)
	}
	if j.pendPos >= len(j.pendPositions) {
		j.pendRow, j.pendPositions = nil, nil
	}
}

// Next implements Iterator through the batch cursor.
func (j *BatchIndexJoin) Next() ([]relation.Value, bool, error) {
	return j.cur.next(j.NextBatch)
}

// Close implements Iterator.
func (j *BatchIndexJoin) Close() error {
	j.cur.reset()
	j.out = releaseBatch(j.out)
	j.lb, j.pendRow, j.pendPositions = nil, nil, nil
	return j.left.Close()
}

// BatchNestedLoopJoin is the vectorized NestedLoopJoin: the right input
// is materialized once at Open into a flat value slab (one copy per
// batch, not per row), and each left row scans the slab, emitting into
// a reused output batch. Governor accounting is amortized per build
// batch.
//
// A memory-budget trip during the materialization delegates to the row
// NestedLoopJoin over the same children, which brings the spill-run
// path for the inner input.
type BatchNestedLoopJoin struct {
	left, right Iterator
	pred        predicate.Predicate
	scheme      *relation.Scheme
	bound       predicate.Bound
	mode        JoinMode
	rwidth      int
	size        int

	// Pure-equi fast path: compare key columns directly instead of
	// assembling a concat row for the compiled predicate.
	equi     bool
	eqL, eqR []int

	ec   *ExecContext
	held hold

	// The materialized right input, one flat slab per drained batch —
	// append-free chunks avoid the reallocation churn of growing one
	// slab to the full input size.
	chunks []nlChunk
	rrows  int

	bleft BatchIterator
	lb    *Batch
	lpos  int
	ldone bool
	crow  []relation.Value // scratch concat row for the predicate

	// The left row currently scanning the slab; emission resumes at
	// chunk pendChunk, row pendOff on the next call when the output
	// batch fills.
	pendRow     []relation.Value
	pendChunk   int
	pendOff     int
	pendMatched bool

	// Single-driving-row streaming mode: when the left input turns out
	// to be exactly one row, the rescan loop is degenerate and the right
	// input streams through once instead of being materialized (and
	// charged). slrow is a copy of the driving row (the peek-ahead pull
	// that proves the left is exhausted invalidates the original).
	stream    bool
	slrow     []relation.Value
	sdone     bool
	smatched  bool
	bright    BatchIterator
	rightOpen bool
	srb       *Batch // right batch suspended mid-emission
	srpos     int

	out *Batch
	cur batchCursor

	delegate Iterator // row NestedLoopJoin after a build memory trip
}

// NewBatchNestedLoopJoin mirrors NewNestedLoopJoin with a configured
// batch size.
func NewBatchNestedLoopJoin(left, right Iterator, p predicate.Predicate, mode JoinMode, size int) (*BatchNestedLoopJoin, error) {
	sch, err := outputScheme(left.Scheme(), right.Scheme(), mode)
	if err != nil {
		return nil, err
	}
	full, err := left.Scheme().Concat(right.Scheme())
	if err != nil {
		return nil, err
	}
	b, err := predicate.Bind(p, full)
	if err != nil {
		return nil, fmt.Errorf("exec: nested-loop predicate: %w", err)
	}
	n := &BatchNestedLoopJoin{left: left, right: right, pred: p, scheme: sch, bound: b,
		mode: mode, rwidth: right.Scheme().Len(), size: size}
	if la, ra, ok := predicate.EquiParts(p, left.Scheme(), right.Scheme()); ok {
		n.equi = true
		for i := range la {
			n.eqL = append(n.eqL, left.Scheme().IndexOf(la[i]))
			n.eqR = append(n.eqR, right.Scheme().IndexOf(ra[i]))
		}
	}
	return n, nil
}

// DegradedTo returns the row join serving the query after a build
// memory trip, or nil when the batch path ran.
func (n *BatchNestedLoopJoin) DegradedTo() Iterator { return n.delegate }

// Scheme implements Iterator.
func (n *BatchNestedLoopJoin) Scheme() *relation.Scheme { return n.scheme }

// Open implements Iterator: peeks the left input, then either streams
// the right side (single driving row) or materializes it a batch at a
// time.
func (n *BatchNestedLoopJoin) Open(ec *ExecContext) error {
	n.resetBuild(n.ec) // re-Open without Close: drop stale slab + charge
	if n.rightOpen {
		n.rightOpen = false
		n.right.Close()
	}
	n.ec = ec
	if n.delegate != nil {
		// A prior execution delegated: the row join owns the children and
		// any spill run. Close it (idempotent if the plan was closed
		// normally) before rebuilding over the same children, or a
		// re-Open-without-Close would leak its run.
		n.delegate.Close()
		n.delegate = nil
	}
	n.cur.reset()
	n.lb, n.lpos, n.ldone = nil, 0, false
	n.pendRow, n.pendChunk, n.pendOff, n.pendMatched = nil, 0, 0, false
	n.stream, n.sdone, n.smatched = false, false, false
	n.srb, n.srpos = nil, 0
	if err := ec.Err("nestedloop"); err != nil {
		return err
	}
	size := resolveBatchSize(ec, n.size)
	n.out = ensureBatch(n.out, n.scheme, size)
	n.bleft = Batching(n.left, size)
	n.bright = Batching(n.right, size)
	if err := n.left.Open(ec); err != nil {
		return err
	}
	lb, ok, err := n.bleft.NextBatch()
	if err != nil {
		return err
	}
	if !ok {
		// Empty left input: run the normal build anyway so governor and
		// fault behavior are unchanged; the probe loop emits nothing.
		n.ldone = true
		return n.buildRight(ec)
	}
	if lb.Len() == 1 {
		n.slrow = append(n.slrow[:0], lb.Row(0)...)
		lb2, more, err := n.bleft.NextBatch()
		if err != nil {
			return err
		}
		if !more {
			n.stream = true
			n.ldone = true
			if oerr := n.right.Open(ec); oerr != nil {
				n.right.Close()
				return oerr
			}
			n.rightOpen = true
			return nil
		}
		// More left input after all: replay the buffered row through the
		// normal probe path, then continue from the current batch.
		n.pendRow, n.pendChunk, n.pendOff, n.pendMatched = n.slrow, 0, 0, false
		n.lb, n.lpos = lb2, 0
		return n.buildRight(ec)
	}
	n.lb, n.lpos = lb, 0
	return n.buildRight(ec)
}

// buildRight materializes the right input into chunks, delegating to
// the row join on a memory trip.
func (n *BatchNestedLoopJoin) buildRight(ec *ExecContext) error {
	if err := n.right.Open(ec); err != nil {
		n.right.Close()
		return n.tripToRow(ec, err)
	}
	for {
		b, ok, err := n.bright.NextBatch()
		if err != nil {
			n.right.Close()
			n.resetBuild(ec)
			return n.tripToRow(ec, err)
		}
		if !ok {
			break
		}
		// Amortized accounting: one reservation per build batch.
		if cerr := n.held.chargeN(ec, "nestedloop", int64(b.Len()), b.Bytes()); cerr != nil {
			n.right.Close()
			n.resetBuild(ec)
			return n.tripToRow(ec, cerr)
		}
		vals := getSlab(len(b.vals))
		copy(vals, b.vals)
		n.chunks = append(n.chunks, nlChunk{vals: vals, rows: b.Len()})
		n.rrows += b.Len()
	}
	if err := n.right.Close(); err != nil {
		n.resetBuild(ec)
		return err
	}
	return nil
}

// tripToRow delegates a MemoryExceeded build failure to the row
// NestedLoopJoin over the same children (the right child has been
// closed; the delegate re-opens it, a full reset under the iterator
// contract, and brings the spill-run path). Non-memory errors propagate
// unchanged.
func (n *BatchNestedLoopJoin) tripToRow(ec *ExecContext, err error) error {
	var re *ResourceError
	if !errors.As(err, &re) || re.Kind != MemoryExceeded {
		return err
	}
	d, derr := NewNestedLoopJoin(n.left, n.right, n.pred, n.mode)
	if derr != nil {
		return err // keep the original trip
	}
	// The peek opened the left child; the delegate's Open re-opens it,
	// so balance the lifecycle here or the extra open leaks.
	if cerr := n.left.Close(); cerr != nil {
		return cerr
	}
	ec.Governor().Note("nestedloop: batch build memory trip, delegating to row nested loop")
	obs.GovernorDegradations.Inc()
	if oerr := d.Open(ec); oerr != nil {
		return oerr
	}
	n.delegate = d
	return nil
}

// nlChunk is one materialized right batch: rows*width values in a slab.
type nlChunk struct {
	vals []relation.Value
	rows int
}

// NextBatch implements BatchIterator: the probe loop.
func (n *BatchNestedLoopJoin) NextBatch() (*Batch, bool, error) {
	if n.delegate != nil {
		return n.delegateBatch()
	}
	if err := n.ec.Err("nestedloop"); err != nil {
		return nil, false, err
	}
	if n.stream {
		return n.streamBatch()
	}
	out := n.out
	out.Reset()
	for {
		if n.pendRow != nil {
			n.drainPend(out)
			if out.Full() {
				return out, true, nil
			}
		}
		if n.lb == nil || n.lpos >= n.lb.Len() {
			if n.ldone {
				break
			}
			b, ok, err := n.bleft.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				n.ldone = true
				break
			}
			n.lb, n.lpos = b, 0
		}
		for n.lpos < n.lb.Len() && !out.Full() && n.pendRow == nil {
			n.pendRow, n.pendChunk, n.pendOff, n.pendMatched = n.lb.Row(n.lpos), 0, 0, false
			n.lpos++
			n.drainPend(out)
		}
		if out.Full() {
			return out, true, nil
		}
	}
	if out.Len() == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// streamBatch is the single-driving-row probe: right batches stream
// through once, matches emit immediately, and nothing is materialized.
func (n *BatchNestedLoopJoin) streamBatch() (*Batch, bool, error) {
	if n.sdone {
		return nil, false, nil
	}
	out := n.out
	out.Reset()
	lrow := n.slrow
	if n.equi {
		for _, k := range n.eqL {
			if lrow[k].IsNull() {
				// 3VL: a null key matches nothing; resolve the row
				// without touching the right input.
				return n.streamFinish(out)
			}
		}
	}
	var crow []relation.Value
	if !n.equi {
		w := len(lrow) + n.rwidth
		if cap(n.crow) < w {
			n.crow = make([]relation.Value, w)
		}
		crow = n.crow[:w]
		copy(crow, lrow)
	}
	for {
		if n.srb == nil || n.srpos >= n.srb.Len() {
			b, ok, err := n.bright.NextBatch()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				return n.streamFinish(out)
			}
			n.srb, n.srpos = b, 0
		}
		for n.srpos < n.srb.Len() {
			rrow := n.srb.Row(n.srpos)
			n.srpos++
			if n.equi {
				hit := true
				for k := range n.eqL {
					rv := rrow[n.eqR[k]]
					if rv.IsNull() || lrow[n.eqL[k]].Compare(rv) != 0 {
						hit = false
						break
					}
				}
				if !hit {
					continue
				}
			} else {
				copy(crow[len(lrow):], rrow)
				if !n.bound.Holds(crow) {
					continue
				}
			}
			n.smatched = true
			switch n.mode {
			case InnerMode, LeftOuterMode:
				out.AppendConcat(lrow, rrow)
				if out.Full() {
					return out, true, nil
				}
			case SemiMode, AntiMode:
				// Existence resolved: the rest of the stream is moot.
				return n.streamFinish(out)
			}
		}
	}
}

// streamFinish emits the driving row's miss/existence result and closes
// the (possibly unexhausted) right input.
func (n *BatchNestedLoopJoin) streamFinish(out *Batch) (*Batch, bool, error) {
	n.sdone = true
	n.srb, n.srpos = nil, 0
	if n.rightOpen {
		n.rightOpen = false
		if err := n.right.Close(); err != nil {
			return nil, false, err
		}
	}
	switch n.mode {
	case LeftOuterMode:
		if !n.smatched {
			out.AppendPad(n.slrow)
		}
	case SemiMode:
		if n.smatched {
			out.AppendRow(n.slrow)
		}
	case AntiMode:
		if !n.smatched {
			out.AppendRow(n.slrow)
		}
	}
	if out.Len() == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// drainPend scans the chunks for the current left row, emitting until
// the input or the output batch is exhausted. The final miss/existence
// row is deferred to the next call if the batch fills first.
func (n *BatchNestedLoopJoin) drainPend(out *Batch) {
	lrow := n.pendRow
	if n.equi {
		// 3VL short-circuit: a null left key matches nothing, so the
		// whole scan resolves to a miss without touching the slab.
		for _, k := range n.eqL {
			if lrow[k].IsNull() {
				n.pendChunk, n.pendOff = len(n.chunks), 0
				break
			}
		}
	}
	var crow []relation.Value
	if !n.equi {
		// The left prefix of the scratch concat row is fixed for the
		// whole scan; only the right suffix changes per candidate.
		w := len(lrow) + n.rwidth
		if cap(n.crow) < w {
			n.crow = make([]relation.Value, w)
		}
		crow = n.crow[:w]
		copy(crow, lrow)
	}
scan:
	for n.pendChunk < len(n.chunks) && !out.Full() {
		ch := &n.chunks[n.pendChunk]
		for n.pendOff < ch.rows {
			s := n.pendOff * n.rwidth
			rrow := ch.vals[s : s+n.rwidth : s+n.rwidth]
			n.pendOff++
			if n.equi {
				hit := true
				for k := range n.eqL {
					rv := rrow[n.eqR[k]]
					if rv.IsNull() || lrow[n.eqL[k]].Compare(rv) != 0 {
						hit = false
						break
					}
				}
				if !hit {
					continue
				}
			} else {
				copy(crow[len(lrow):], rrow)
				if !n.bound.Holds(crow) {
					continue
				}
			}
			n.pendMatched = true
			switch n.mode {
			case InnerMode, LeftOuterMode:
				out.AppendConcat(lrow, rrow)
				if out.Full() {
					break scan
				}
			case SemiMode, AntiMode:
				n.pendChunk, n.pendOff = len(n.chunks), 0 // existence decided
				break scan
			}
		}
		if n.pendOff >= ch.rows {
			n.pendChunk++
			n.pendOff = 0
		}
	}
	if n.pendChunk >= len(n.chunks) {
		switch n.mode {
		case LeftOuterMode:
			if !n.pendMatched {
				if out.Full() {
					return // emit on the next call; pendRow stays set
				}
				out.AppendPad(lrow)
			}
		case SemiMode:
			if n.pendMatched {
				if out.Full() {
					return
				}
				out.AppendRow(lrow)
			}
		case AntiMode:
			if !n.pendMatched {
				if out.Full() {
					return
				}
				out.AppendRow(lrow)
			}
		}
		n.pendRow = nil
	}
}

// delegateBatch serves the row delegate's stream re-batched.
func (n *BatchNestedLoopJoin) delegateBatch() (*Batch, bool, error) {
	out := n.out
	out.Reset()
	for !out.Full() {
		row, ok, err := n.delegate.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		out.AppendRow(row)
	}
	if out.Len() == 0 {
		return nil, false, nil
	}
	return out, true, nil
}

// Next implements Iterator through the batch cursor (or the delegate
// directly).
func (n *BatchNestedLoopJoin) Next() ([]relation.Value, bool, error) {
	if n.delegate != nil {
		return n.delegate.Next()
	}
	return n.cur.next(n.NextBatch)
}

// resetBuild drops the slab and returns its governor charge, keeping
// the allocation for reuse within this Open cycle.
func (n *BatchNestedLoopJoin) resetBuild(ec *ExecContext) {
	for i := range n.chunks {
		putSlab(n.chunks[i].vals)
		n.chunks[i].vals = nil
	}
	n.chunks = n.chunks[:0]
	n.rrows = 0
	n.held.release(ec)
}

// BufferedRows implements Buffered: the slab's row count (or the
// delegate's buffer).
func (n *BatchNestedLoopJoin) BufferedRows() int {
	if n.delegate != nil {
		if b, ok := n.delegate.(Buffered); ok {
			return b.BufferedRows()
		}
		return 0
	}
	return n.rrows
}

// SpillInfo implements Spiller: only the row delegate can spill.
func (n *BatchNestedLoopJoin) SpillInfo() SpillStats {
	if n.delegate != nil {
		if s, ok := n.delegate.(Spiller); ok {
			return s.SpillInfo()
		}
	}
	return SpillStats{}
}

// Close implements Iterator: the slab (and its charge) is released.
// After a delegation the row join owns both children and closes them.
func (n *BatchNestedLoopJoin) Close() error {
	n.cur.reset()
	n.out = releaseBatch(n.out)
	n.lb, n.pendRow, n.srb = nil, nil, nil
	if n.delegate != nil {
		return n.delegate.Close()
	}
	var rerr error
	if n.rightOpen {
		n.rightOpen = false
		rerr = n.right.Close()
	}
	n.resetBuild(n.ec)
	n.chunks = nil
	lerr := n.left.Close()
	if rerr != nil {
		return rerr
	}
	return lerr
}
