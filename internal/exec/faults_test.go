package exec

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// The error-path contract, the fault-injection sibling of
// contract_test.go. Every operator must:
//
//  1. propagate an injected child error (Open, mid-stream Next, Close)
//     instead of hanging, panicking, or silently truncating;
//  2. leave every child it opened closed once the operator itself is
//     closed — including when a later step of its own Open failed;
//  3. never call Next on a child that already returned an error;
//  4. release its buffers (BufferedRows == 0) and its governor charges
//     after Close, error or not;
//  5. fail fast with a typed *ResourceError when opened under a
//     cancelled or deadline-expired context;
//  6. leak no goroutines (fenced check around ParallelHashJoin).
//
// The operator inventory lives in registry_test.go (operatorRegistry):
// every suite below iterates that one registry, so a new operator is
// covered by registering it once.

// runCycle performs one governed Open → drain → Close cycle and returns
// the first error from any phase (Close errors included — they must not
// be swallowed).
func runCycle(it Iterator, ec *ExecContext) error {
	if err := it.Open(ec); err != nil {
		it.Close()
		return err
	}
	for {
		_, ok, err := it.Next()
		if err != nil {
			it.Close()
			return err
		}
		if !ok {
			break
		}
	}
	return it.Close()
}

// checkInvariants asserts the post-Close obligations: audited children
// balanced and never Next-ed after an error, buffers released, governor
// drained.
func checkInvariants(t *testing.T, it Iterator, fis []*storage.FaultIterator, gov *Governor) {
	t.Helper()
	for i, fi := range fis {
		if fi.NextAfterError > 0 {
			t.Errorf("child %d: %d Next calls after an error", i, fi.NextAfterError)
		}
		if !fi.Balanced() {
			t.Errorf("child %d leaked: opens=%d closes=%d", i, fi.OpenCalls, fi.CloseCalls)
		}
	}
	if b, ok := it.(Buffered); ok {
		if n := b.BufferedRows(); n != 0 {
			t.Errorf("BufferedRows() = %d after Close, want 0", n)
		}
	}
	if n := gov.UsedRows(); n != 0 {
		t.Errorf("governor still holds %d rows after Close", n)
	}
	if n := gov.UsedBytes(); n != 0 {
		t.Errorf("governor still holds %d bytes after Close", n)
	}
}

// TestErrorPathContract drives every operator over every child position
// with faults on Open, on the first Next, mid-stream, on Close, and
// probabilistically — asserting propagation and clean teardown each time.
func TestErrorPathContract(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	faults := []struct {
		name      string
		f         storage.Fault
		mustError bool
	}{
		{"open", storage.Fault{FailOpen: true}, true},
		{"next-first", storage.Fault{FailNext: true, FailAfter: 0}, true},
		{"next-midstream", storage.Fault{FailNext: true, FailAfter: 2}, true},
		{"close", storage.Fault{FailClose: true}, true},
		{"probabilistic", storage.Fault{Prob: 0.5, Seed: 1}, false},
	}
	for name, fc := range operatorRegistry(t, rt, st, &c) {
		for pos := 0; pos < fc.children; pos++ {
			for _, fault := range faults {
				t.Run(name+"/"+fault.name+"/child", func(t *testing.T) {
					ch, fis := buildChildren(rt, st, fc.children, pos, fault.f)
					it := fc.build(t, ch)
					gov := NewGovernor(0, 0)
					err := runCycle(it, NewExecContext(context.Background(), gov))
					if fault.mustError && err == nil {
						t.Errorf("injected %s fault on child %d was swallowed", fault.name, pos)
					}
					if err != nil && !errors.Is(err, storage.ErrInjected) {
						t.Errorf("error lost its cause: %v", err)
					}
					checkInvariants(t, it, fis, gov)
				})
			}
		}
	}
}

// TestCancelledContextFailsFast opens every registered operator under an
// already-cancelled context: each must return a typed Cancelled
// *ResourceError from Open and tear down cleanly.
func TestCancelledContextFailsFast(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, fc := range operatorRegistry(t, rt, st, &c) {
		t.Run(name, func(t *testing.T) {
			ch, fis := buildChildren(rt, st, fc.children, -1, storage.Fault{})
			it := fc.build(t, ch)
			gov := NewGovernor(0, 0)
			err := runCycle(it, NewExecContext(ctx, gov))
			var re *ResourceError
			if !errors.As(err, &re) || re.Kind != Cancelled {
				t.Fatalf("want Cancelled ResourceError, got %v", err)
			}
			checkInvariants(t, it, fis, gov)
		})
	}
}

// TestExpiredDeadline runs a representative materializing pipeline under
// an expired deadline.
func TestExpiredDeadline(t *testing.T) {
	rt, st := contractTables(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	hj, err := NewHashJoin(NewScan(rt, nil), NewScan(st, nil),
		[]relation.Attr{relation.A("R", "k")}, []relation.Attr{relation.A("S", "k")}, nil, InnerMode)
	if err != nil {
		t.Fatal(err)
	}
	rerr := runCycle(hj, NewExecContext(ctx, nil))
	var re *ResourceError
	if !errors.As(rerr, &re) || re.Kind != DeadlineExceeded {
		t.Fatalf("want DeadlineExceeded, got %v", rerr)
	}
	if !errors.Is(rerr, context.DeadlineExceeded) {
		t.Error("cause must unwrap to context.DeadlineExceeded")
	}
}

// TestMemoryBudgetTrips puts each buffering operator under a 1-row
// budget: the trip must surface as a typed MemoryExceeded error naming
// the operator, and the governor must be fully drained after Close.
func TestMemoryBudgetTrips(t *testing.T) {
	rt, st := contractTables(t)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	builders := map[string]func(t *testing.T) (Iterator, string){
		"sort": func(t *testing.T) (Iterator, string) {
			s, err := NewSort(NewScan(rt, nil), []relation.Attr{rk})
			if err != nil {
				t.Fatal(err)
			}
			return s, "sort"
		},
		"hashjoin": func(t *testing.T) (Iterator, string) {
			h, err := NewHashJoin(NewScan(rt, nil), NewScan(st, nil),
				[]relation.Attr{rk}, []relation.Attr{sk}, nil, InnerMode)
			if err != nil {
				t.Fatal(err)
			}
			return h, "hashjoin"
		},
		"nestedloop": func(t *testing.T) (Iterator, string) {
			n, err := NewNestedLoopJoin(NewScan(rt, nil), NewScan(st, nil),
				predicate.Eq(rk, sk), InnerMode)
			if err != nil {
				t.Fatal(err)
			}
			return n, "nestedloop"
		},
		"mergejoin": func(t *testing.T) (Iterator, string) {
			m, err := NewMergeJoin(NewScan(rt, nil), NewScan(st, nil), rk, sk, InnerMode)
			if err != nil {
				t.Fatal(err)
			}
			return m, "mergejoin"
		},
		"goj": func(t *testing.T) (Iterator, string) {
			g, err := NewHashGOJ(NewScan(rt, nil), NewScan(st, nil),
				[]relation.Attr{rk}, []relation.Attr{sk}, []relation.Attr{rk})
			if err != nil {
				t.Fatal(err)
			}
			return g, "goj"
		},
		"parallel": func(t *testing.T) (Iterator, string) {
			p, err := NewParallelHashJoin(NewScan(rt, nil), NewScan(st, nil), rk, sk, InnerMode, 2)
			if err != nil {
				t.Fatal(err)
			}
			return p, "parallel"
		},
		"semireduce": func(t *testing.T) (Iterator, string) {
			s, err := NewSemiReduce(NewScan(rt, nil), NewScan(st, nil), predicate.Eq(rk, sk))
			if err != nil {
				t.Fatal(err)
			}
			return s, "semireduce"
		},
		"semireduce-scan": func(t *testing.T) (Iterator, string) {
			s, err := NewSemiReduce(NewScan(rt, nil), NewScan(st, nil),
				predicate.Cmp(predicate.LtOp, predicate.Col(rk), predicate.Col(sk)))
			if err != nil {
				t.Fatal(err)
			}
			return s, "semireduce"
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			it, op := build(t)
			gov := NewGovernor(1, 0)
			err := runCycle(it, NewExecContext(context.Background(), gov))
			var re *ResourceError
			if !errors.As(err, &re) || re.Kind != MemoryExceeded {
				t.Fatalf("want MemoryExceeded, got %v", err)
			}
			if re.Operator != op {
				t.Errorf("tripping operator = %q, want %q", re.Operator, op)
			}
			if gov.UsedRows() != 0 {
				t.Errorf("governor holds %d rows after Close", gov.UsedRows())
			}
		})
	}
}

// TestHashJoinGracefulDegradation: a hash join with a marked index
// fallback must, when its build side trips the budget, serve the same
// bag through the index strategy instead of aborting — in all four join
// modes.
func TestHashJoinGracefulDegradation(t *testing.T) {
	rt, st := contractTables(t)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	for _, mode := range []JoinMode{InnerMode, LeftOuterMode, SemiMode, AntiMode} {
		t.Run(mode.String(), func(t *testing.T) {
			mkJoin := func() *HashJoin {
				h, err := NewHashJoin(NewScan(rt, nil), NewScan(st, nil),
					[]relation.Attr{rk}, []relation.Attr{sk}, nil, mode)
				if err != nil {
					t.Fatal(err)
				}
				return h
			}
			want, err := Collect(mkJoin(), nil)
			if err != nil {
				t.Fatal(err)
			}

			h := mkJoin()
			h.SetFallback(func(left Iterator) (Iterator, error) {
				return NewIndexJoin(left, st, "k", rk, nil, mode, nil)
			})
			gov := NewGovernor(1, 0) // the 4-row build side cannot fit
			got, err := CollectCtx(NewExecContext(context.Background(), gov), h, nil)
			if err != nil {
				t.Fatalf("degraded run failed: %v", err)
			}
			if h.DegradedTo() == nil {
				t.Fatal("join should have degraded to the index strategy")
			}
			if !want.EqualBag(got) {
				t.Errorf("degraded bag differs:\nwant (%d rows):\n%vgot (%d rows):\n%v",
					want.Len(), want, got.Len(), got)
			}
			if gov.UsedRows() != 0 {
				t.Errorf("governor holds %d rows after degraded run", gov.UsedRows())
			}
			if evs := gov.Events(); len(evs) < 2 {
				t.Errorf("expected trip + degradation events, got %v", evs)
			}
		})
	}
}

// TestHashJoinFallbackNotTakenWithoutTrip: with room in the budget the
// fallback must stay dormant.
func TestHashJoinFallbackNotTakenWithoutTrip(t *testing.T) {
	rt, st := contractTables(t)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	h, err := NewHashJoin(NewScan(rt, nil), NewScan(st, nil),
		[]relation.Attr{rk}, []relation.Attr{sk}, nil, InnerMode)
	if err != nil {
		t.Fatal(err)
	}
	h.SetFallback(func(left Iterator) (Iterator, error) {
		return NewIndexJoin(left, st, "k", rk, nil, InnerMode, nil)
	})
	gov := NewGovernor(1000, 0)
	if _, err := CollectCtx(NewExecContext(context.Background(), gov), h, nil); err != nil {
		t.Fatal(err)
	}
	if h.DegradedTo() != nil {
		t.Error("fallback must not engage within budget")
	}
}

// TestParallelWorkerErrorDeterministic: a governor trip inside the
// worker pool must cancel the remaining workers, surface a typed error,
// and leave nothing reserved — repeatably.
func TestParallelWorkerErrorDeterministic(t *testing.T) {
	// Large enough inputs that output charging inside workers trips after
	// the input charge is admitted.
	rrel := relation.New(relation.SchemeOf("R", "k"))
	srel := relation.New(relation.SchemeOf("S", "k"))
	for i := 0; i < 200; i++ {
		rrel.AppendRaw([]relation.Value{relation.Int(int64(i % 20))})
		srel.AppendRaw([]relation.Value{relation.Int(int64(i % 20))})
	}
	rt := storage.NewTable("R", rrel)
	st := storage.NewTable("S", srel)
	var kinds []Kind
	for run := 0; run < 3; run++ {
		p, err := NewParallelHashJoin(NewScan(rt, nil), NewScan(st, nil),
			relation.A("R", "k"), relation.A("S", "k"), InnerMode, 4)
		if err != nil {
			t.Fatal(err)
		}
		gov := NewGovernor(450, 0) // inputs fit (400), the 2000-row output cannot
		cerr := runCycle(p, NewExecContext(context.Background(), gov))
		var re *ResourceError
		if !errors.As(cerr, &re) {
			t.Fatalf("run %d: want ResourceError, got %v", run, cerr)
		}
		kinds = append(kinds, re.Kind)
		if gov.UsedRows() != 0 {
			t.Fatalf("run %d: governor holds %d rows", run, gov.UsedRows())
		}
	}
	for _, k := range kinds {
		if k != MemoryExceeded {
			t.Errorf("kinds across runs = %v, want all MemoryExceeded", kinds)
		}
	}
}

// TestParallelHashJoinNoGoroutineLeak fences runtime.NumGoroutine around
// repeated parallel joins under faults, cancellation, and budget trips:
// the worker pool must always drain.
func TestParallelHashJoinNoGoroutineLeak(t *testing.T) {
	rt, st := contractTables(t)
	rk := relation.A("R", "k")
	sk := relation.A("S", "k")
	runtime.GC()
	before := runtime.NumGoroutine()

	for i := 0; i < 20; i++ {
		// Mid-stream child fault.
		lf := storage.NewFaultTable(rt, storage.Fault{FailNext: true, FailAfter: 1}).Iterator()
		p, err := NewParallelHashJoin(lf, NewScan(st, nil), rk, sk, InnerMode, 4)
		if err != nil {
			t.Fatal(err)
		}
		runCycle(p, nil)

		// Budget trip inside the pool.
		p2, err := NewParallelHashJoin(NewScan(rt, nil), NewScan(st, nil), rk, sk, InnerMode, 4)
		if err != nil {
			t.Fatal(err)
		}
		runCycle(p2, NewExecContext(context.Background(), NewGovernor(6, 0)))

		// Cancellation racing the workers.
		ctx, cancel := context.WithCancel(context.Background())
		p3, err := NewParallelHashJoin(NewScan(rt, nil), NewScan(st, nil), rk, sk, InnerMode, 4)
		if err != nil {
			t.Fatal(err)
		}
		go cancel()
		runCycle(p3, NewExecContext(ctx, nil))
		cancel()
	}

	// Workers exit synchronously before Open returns (wg.Wait), but give
	// the runtime a moment to reap anything in flight.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestCollectClosesOnError: Collect must close the iterator on a
// mid-stream error and must propagate a Close error instead of
// swallowing it.
func TestCollectClosesOnError(t *testing.T) {
	rt, _ := contractTables(t)
	fi := storage.NewFaultTable(rt, storage.Fault{FailNext: true, FailAfter: 1}).Iterator()
	if _, err := Collect(fi, nil); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("mid-stream error lost: %v", err)
	}
	if !fi.Balanced() {
		t.Error("Collect must close the iterator after a mid-stream error")
	}

	cf := storage.NewFaultTable(rt, storage.Fault{FailClose: true}).Iterator()
	if _, err := Collect(cf, nil); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Close error swallowed: %v", err)
	}
}
