package exec

import (
	"strings"
	"testing"

	"freejoin/internal/relation"
	"freejoin/internal/storage"
)

// The row-ownership contract, exercised to its legal extremes across
// the whole operator registry:
//
//   - A producer's row is valid only until the caller's next
//     Next/Close on that producer. poisonIterator scribbles over every
//     row it handed out the moment the caller advances, so a parent
//     that retained the row by reference instead of copying surfaces
//     the sentinel in its output bag.
//   - A caller MAY mutate a row it was handed (filters compact in
//     place). drainScribbled overwrites every received row after
//     copying it, so a producer that re-reads rows it already emitted
//     computes garbage and fails the bag comparison.

const poisonMark = "__POISON__"

// poisonIterator wraps a child and scribbles over the row it handed out
// as soon as the caller advances or closes. The child's own row is
// copied first (scribbling the child's storage directly would corrupt
// the base table, not test the parent).
type poisonIterator struct {
	child Iterator
	last  []relation.Value
}

func (p *poisonIterator) Scheme() *relation.Scheme { return p.child.Scheme() }

func (p *poisonIterator) Open(ec *ExecContext) error {
	p.last = nil
	return p.child.Open(ec)
}

func (p *poisonIterator) scribble() {
	for i := range p.last {
		p.last[i] = relation.Str(poisonMark)
	}
	p.last = nil
}

func (p *poisonIterator) Next() ([]relation.Value, bool, error) {
	p.scribble()
	row, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, ok, err
	}
	p.last = relation.CopyRow(row)
	return p.last, true, nil
}

func (p *poisonIterator) Close() error {
	p.scribble()
	return p.child.Close()
}

// drainScribbled drains it, copying each row for the result bag and then
// overwriting the producer's copy in place — the mutation a compacting
// caller is allowed to make.
func drainScribbled(t *testing.T, it Iterator) *relation.Relation {
	t.Helper()
	if err := it.Open(nil); err != nil {
		t.Fatal(err)
	}
	out := relation.New(it.Scheme())
	for {
		row, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		out.AppendRaw(relation.CopyRow(row))
		for i := range row {
			row[i] = relation.Str(poisonMark)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// assertUnpoisoned fails if any value in the bag carries the sentinel —
// direct evidence an operator aliased a child row it did not own.
func assertUnpoisoned(t *testing.T, bag *relation.Relation) {
	t.Helper()
	for i := 0; i < bag.Len(); i++ {
		for _, v := range bag.RawRow(i) {
			if v.Kind() == relation.KindString && strings.Contains(v.AsString(), poisonMark) {
				t.Fatalf("output row %d aliases a child row the operator did not own:\n%v", i, bag.RawRow(i))
			}
		}
	}
}

// TestOwnershipRegistry runs every registered operator against both
// ownership probes and compares each bag against the clean reference.
func TestOwnershipRegistry(t *testing.T) {
	rt, st := contractTables(t)
	var c Counters
	for name, oc := range operatorRegistry(t, rt, st, &c) {
		oc := oc
		t.Run(name, func(t *testing.T) {
			chRef, _ := buildChildren(rt, st, oc.children, -1, storage.Fault{})
			ref := drainBag(t, oc.build(t, chRef))

			// Probe 1: poisoned children. The wrapped fault iterators keep
			// auditing the lifecycle underneath.
			chP, _ := buildChildren(rt, st, oc.children, -1, storage.Fault{})
			for i := range chP {
				chP[i] = &poisonIterator{child: chP[i]}
			}
			poisoned := drainBag(t, oc.build(t, chP))
			assertUnpoisoned(t, poisoned)
			if !ref.EqualBag(poisoned) {
				t.Errorf("bag changed under poisoned children (operator retained rows it did not own):\nwant %d rows:\n%vgot %d rows:\n%v",
					ref.Len(), ref, poisoned.Len(), poisoned)
			}

			// Probe 2: a scribbling caller. Producers must never re-read
			// rows they have already emitted.
			chS, _ := buildChildren(rt, st, oc.children, -1, storage.Fault{})
			scribbled := drainScribbled(t, oc.build(t, chS))
			if !ref.EqualBag(scribbled) {
				t.Errorf("bag changed under a scribbling caller (operator re-read emitted rows):\nwant %d rows:\n%vgot %d rows:\n%v",
					ref.Len(), ref, scribbled.Len(), scribbled)
			}
		})
	}
}
