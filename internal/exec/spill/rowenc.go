package spill

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"freejoin/internal/relation"
)

// Row encoding: uvarint arity, then one value after another. Each value
// is a one-byte kind tag followed by its payload — nothing for null,
// 0/1 for bool, a zigzag varint for int, 8 big-endian bits for float,
// a uvarint length plus raw bytes for string. The encoding is
// self-delimiting, so runs concatenate rows with no framing, and unlike
// relation.AppendKey it round-trips every value exactly (AppendKey is an
// ordering/identity key, not a codec).
const (
	tagNull  = 'N'
	tagFalse = 'F'
	tagTrue  = 'T'
	tagInt   = 'I'
	tagFloat = 'D'
	tagStr   = 'S'
)

// appendRow appends the encoding of row to b.
func appendRow(b []byte, row []relation.Value) []byte {
	b = binary.AppendUvarint(b, uint64(len(row)))
	for _, v := range row {
		switch v.Kind() {
		case relation.KindNull:
			b = append(b, tagNull)
		case relation.KindBool:
			if v.AsBool() {
				b = append(b, tagTrue)
			} else {
				b = append(b, tagFalse)
			}
		case relation.KindInt:
			b = append(b, tagInt)
			b = binary.AppendVarint(b, v.AsInt())
		case relation.KindFloat:
			b = append(b, tagFloat)
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.AsFloat()))
		case relation.KindString:
			s := v.AsString()
			b = append(b, tagStr)
			b = binary.AppendUvarint(b, uint64(len(s)))
			b = append(b, s...)
		}
	}
	return b
}

// readRow decodes one row from br, returning (nil, nil) at a clean end
// of stream and an error on a truncated or corrupt run.
func readRow(br *bufio.Reader) ([]relation.Value, error) {
	arity, err := binary.ReadUvarint(br)
	if err != nil {
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("spill: corrupt run: %w", err)
	}
	row := make([]relation.Value, arity)
	for i := range row {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, truncated(err)
		}
		switch tag {
		case tagNull:
			row[i] = relation.Null()
		case tagFalse:
			row[i] = relation.Bool(false)
		case tagTrue:
			row[i] = relation.Bool(true)
		case tagInt:
			n, err := binary.ReadVarint(br)
			if err != nil {
				return nil, truncated(err)
			}
			row[i] = relation.Int(n)
		case tagFloat:
			var buf [8]byte
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, truncated(err)
			}
			row[i] = relation.Float(math.Float64frombits(binary.BigEndian.Uint64(buf[:])))
		case tagStr:
			n, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, truncated(err)
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, truncated(err)
			}
			row[i] = relation.Str(string(buf))
		default:
			return nil, fmt.Errorf("spill: corrupt run: unknown value tag %q", tag)
		}
	}
	return row, nil
}

func truncated(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("spill: truncated run")
	}
	return fmt.Errorf("spill: corrupt run: %w", err)
}
