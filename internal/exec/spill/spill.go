// Package spill implements governed spill-to-disk run files for the
// external-memory execution paths: the external merge sort and the grace
// hash join. A Writer streams rows into a temp file in a compact binary
// encoding, charging the governor's spill-bytes budget as it goes;
// Finish seals the file into a Run, which can be opened for sequential
// re-reading any number of times and is deleted (and its byte charge
// released) by Drop.
//
// The package sits below internal/exec (which consumes it) and above
// internal/resource (whose ExecContext carries the SpillConfig and the
// spill budget), mirroring how exec itself layers over resource.
package spill

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"freejoin/internal/obs"
	"freejoin/internal/relation"
	"freejoin/internal/resource"
)

// Enabled reports whether the context allows spilling to disk.
func Enabled(ec *resource.ExecContext) bool { return ec.Spill() != nil }

// Writer streams rows into a new spill run file. Append charges the
// governor's spill budget with each row's encoded size; the caller must
// end the writer with exactly one of Finish (sealing a Run that now owns
// the file and the charge) or Abort (deleting the file and releasing the
// charge).
type Writer struct {
	ec    *resource.ExecContext
	op    string
	f     *os.File
	bw    *bufio.Writer
	buf   []byte
	rows  int64
	bytes int64
	start time.Time
	done  bool
}

// NewWriter creates a run file in the context's spill directory on
// behalf of op (the operator name used in resource errors). The
// directory is created if it does not exist yet.
func NewWriter(ec *resource.ExecContext, op string) (*Writer, error) {
	dir := ec.Spill().Directory()
	f, err := os.CreateTemp(dir, Prefix+"*.run")
	if errors.Is(err, os.ErrNotExist) {
		if err = os.MkdirAll(dir, 0o755); err == nil {
			f, err = os.CreateTemp(dir, Prefix+"*.run")
		}
	}
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &Writer{ec: ec, op: op, f: f, bw: bufio.NewWriter(f), start: time.Now()}, nil
}

// Append encodes and writes one row, charging its encoded size against
// the spill budget. On error (including a spill-budget trip) the writer
// still owns its charge: call Abort.
func (w *Writer) Append(row []relation.Value) error {
	w.buf = appendRow(w.buf[:0], row)
	n := int64(len(w.buf))
	if err := w.ec.ReserveSpill(w.op, n); err != nil {
		return err
	}
	w.bytes += n
	w.rows++
	if _, err := w.bw.Write(w.buf); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	return nil
}

// Rows returns the rows appended so far.
func (w *Writer) Rows() int64 { return w.rows }

// Finish flushes and seals the run. The returned Run owns the file and
// the spill-byte charge; on error the writer aborts itself first.
func (w *Writer) Finish() (*Run, error) {
	if w.done {
		return nil, fmt.Errorf("spill: writer already finished")
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return nil, fmt.Errorf("spill: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.Abort()
		return nil, fmt.Errorf("spill: %w", err)
	}
	w.done = true
	obs.SpillRuns.Inc()
	obs.SpillBytes.Add(w.bytes)
	obs.SpillWriteLatency.ObserveDuration(time.Since(w.start))
	return &Run{path: w.f.Name(), Rows: w.rows, Bytes: w.bytes}, nil
}

// Abort discards an unfinished run: the file is removed and the
// accumulated spill-byte charge released. Safe to call after a failed
// Append or Finish; a no-op after a successful Finish.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.f.Name())
	w.ec.ReleaseSpill(w.bytes)
	w.bytes = 0
}

// Run is a sealed spill file: Rows rows over Bytes encoded bytes, held
// against the governor's spill budget until Drop.
type Run struct {
	path    string
	Rows    int64
	Bytes   int64
	dropped bool
}

// Open returns a sequential reader over the run. A run may be opened
// many times (the nested-loop spill path re-scans per outer row).
func (r *Run) Open() (*Reader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	return &Reader{f: f, br: bufio.NewReader(f)}, nil
}

// Drop deletes the run file and releases its spill-byte charge.
// Idempotent; any open Readers keep working on the unlinked file.
func (r *Run) Drop(ec *resource.ExecContext) {
	if r == nil || r.dropped {
		return
	}
	r.dropped = true
	os.Remove(r.path)
	ec.ReleaseSpill(r.Bytes)
}

// Reader iterates a run's rows in write order.
type Reader struct {
	f  *os.File
	br *bufio.Reader
}

// Next returns the next row, or false at end of run.
func (r *Reader) Next() ([]relation.Value, bool, error) {
	row, err := readRow(r.br)
	if err != nil {
		return nil, false, err
	}
	if row == nil {
		return nil, false, nil
	}
	return row, true, nil
}

// Close releases the underlying file handle. Idempotent.
func (r *Reader) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// Prefix is the filename prefix of every spill run file this package
// creates (the CreateTemp pattern is Prefix + random + ".run").
const Prefix = "ojspill-"

// DefaultStaleAge is the age past which SweepStale considers an
// orphaned run file dead. Live queries hold their runs for seconds to
// minutes; an hour-old run can only belong to a process that died
// mid-query.
const DefaultStaleAge = time.Hour

// SweepStale removes ojspill-* run files in dir whose modification time
// is older than olderThan (DefaultStaleAge when olderThan <= 0),
// returning how many were removed. Run files are normally deleted by
// Drop/Abort, but a process killed mid-query orphans whatever it had on
// disk; the server and shell sweep their spill directory on startup.
// The age threshold keeps a sweep from deleting run files a concurrently
// running process still owns (the default spill dir is the shared OS
// temp dir). Missing directories are not an error — there is simply
// nothing to sweep.
func SweepStale(dir string, olderThan time.Duration) (int, error) {
	if olderThan <= 0 {
		olderThan = DefaultStaleAge
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("spill: sweep %s: %w", dir, err)
	}
	cutoff := time.Now().Add(-olderThan)
	removed := 0
	var firstErr error
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), Prefix) {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			if firstErr == nil && !errors.Is(err, os.ErrNotExist) {
				firstErr = err
			}
			continue
		}
		removed++
	}
	return removed, firstErr
}
