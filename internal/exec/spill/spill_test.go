package spill

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"freejoin/internal/relation"
	"freejoin/internal/resource"
)

func randomValue(rnd *rand.Rand) relation.Value {
	switch rnd.Intn(6) {
	case 0:
		return relation.Null()
	case 1:
		return relation.Bool(rnd.Intn(2) == 0)
	case 2:
		return relation.Int(rnd.Int63() - rnd.Int63())
	case 3:
		return relation.Float(math.Float64frombits(rnd.Uint64()))
	case 4:
		return relation.Str("")
	default:
		b := make([]byte, rnd.Intn(40))
		rnd.Read(b)
		return relation.Str(string(b))
	}
}

// identical is Value.Identical plus bit-exact NaN equality (NaN != NaN
// under ==, but the codec must still round-trip the bits).
func identical(a, b relation.Value) bool {
	if a.Kind() == relation.KindFloat && b.Kind() == relation.KindFloat {
		return math.Float64bits(a.AsFloat()) == math.Float64bits(b.AsFloat())
	}
	return a.Identical(b)
}

func spillCtx(t *testing.T, gov *resource.Governor) *resource.ExecContext {
	t.Helper()
	ec := resource.NewContext(nil, gov)
	ec.EnableSpill(resource.SpillConfig{Dir: t.TempDir()})
	return ec
}

// Every value kind must round-trip exactly through a run file,
// including NaN floats, empty and binary strings, and zero-arity rows.
func TestRunRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(27))
	ec := spillCtx(t, nil)
	var want [][]relation.Value
	w, err := NewWriter(ec, "test")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		row := make([]relation.Value, rnd.Intn(6))
		for j := range row {
			row[j] = randomValue(rnd)
		}
		if err := w.Append(row); err != nil {
			t.Fatal(err)
		}
		want = append(want, row)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Rows != int64(len(want)) {
		t.Fatalf("run.Rows = %d, want %d", run.Rows, len(want))
	}
	// Two sequential scans must both see the full content.
	for scan := 0; scan < 2; scan++ {
		rd, err := run.Open()
		if err != nil {
			t.Fatal(err)
		}
		for i, wrow := range want {
			row, ok, err := rd.Next()
			if err != nil || !ok {
				t.Fatalf("scan %d row %d: ok=%v err=%v", scan, i, ok, err)
			}
			if len(row) != len(wrow) {
				t.Fatalf("scan %d row %d: arity %d, want %d", scan, i, len(row), len(wrow))
			}
			for j := range row {
				if !identical(row[j], wrow[j]) {
					t.Fatalf("scan %d row %d col %d: %v (%s), want %v (%s)",
						scan, i, j, row[j], row[j].Kind(), wrow[j], wrow[j].Kind())
				}
			}
		}
		if _, ok, err := rd.Next(); ok || err != nil {
			t.Fatalf("scan %d: expected clean EOF, ok=%v err=%v", scan, ok, err)
		}
		if err := rd.Close(); err != nil {
			t.Fatal(err)
		}
	}
	run.Drop(ec)
}

// The writer charges the governor's spill budget per encoded row; Drop
// releases it. Exceeding the budget surfaces a typed SpillExceeded and
// Abort rolls the partial charge back.
func TestSpillBudget(t *testing.T) {
	gov := resource.NewGovernor(0, 0)
	gov.SetSpillLimit(64)
	ec := spillCtx(t, gov)

	w, err := NewWriter(ec, "test")
	if err != nil {
		t.Fatal(err)
	}
	row := []relation.Value{relation.Str("0123456789012345678901234567890123456789")}
	if err := w.Append(row); err != nil {
		t.Fatal(err)
	}
	if gov.UsedSpillBytes() == 0 {
		t.Fatal("Append did not charge the spill budget")
	}
	err = w.Append(row)
	var re *resource.ResourceError
	if !errors.As(err, &re) || re.Kind != resource.SpillExceeded {
		t.Fatalf("second Append = %v, want SpillExceeded", err)
	}
	w.Abort()
	if got := gov.UsedSpillBytes(); got != 0 {
		t.Fatalf("after Abort: %d spill bytes still held", got)
	}

	// Within budget: Finish transfers the charge to the Run, Drop frees it.
	w, err = NewWriter(ec, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(row); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := gov.UsedSpillBytes(); got != run.Bytes {
		t.Fatalf("after Finish: %d spill bytes held, want %d", got, run.Bytes)
	}
	run.Drop(ec)
	run.Drop(ec) // idempotent
	if got := gov.UsedSpillBytes(); got != 0 {
		t.Fatalf("after Drop: %d spill bytes still held", got)
	}
}

// Run files live in the configured directory and are gone after Drop /
// Abort — the temp-dir leak check the make target relies on.
func TestSpillFileLifecycle(t *testing.T) {
	dir := t.TempDir()
	ec := resource.NewContext(nil, nil)
	ec.EnableSpill(resource.SpillConfig{Dir: dir})

	files := func() []string {
		m, err := filepath.Glob(filepath.Join(dir, "ojspill-*"))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	w, err := NewWriter(ec, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]relation.Value{relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	if len(files()) != 1 {
		t.Fatalf("expected 1 run file, got %v", files())
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	w.Abort() // no-op after Finish: must not unlink the sealed run
	if len(files()) != 1 {
		t.Fatalf("Abort after Finish removed the sealed run: %v", files())
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	run.Drop(ec) // open reader keeps working on the unlinked file
	if len(files()) != 0 {
		t.Fatalf("expected no run files after Drop, got %v", files())
	}
	if _, ok, err := rd.Next(); !ok || err != nil {
		t.Fatalf("read after Drop: ok=%v err=%v", ok, err)
	}
	rd.Close()

	w, err = NewWriter(ec, "test")
	if err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if len(files()) != 0 {
		t.Fatalf("expected no run files after Abort, got %v", files())
	}
}

// A truncated run surfaces a decode error instead of a silent short read.
func TestTruncatedRun(t *testing.T) {
	ec := spillCtx(t, nil)
	w, err := NewWriter(ec, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]relation.Value{relation.Str("hello world")}); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	path := rd.f.Name()
	rd.Close()
	if err := os.Truncate(path, run.Bytes-4); err != nil {
		t.Fatal(err)
	}
	rd, err = run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, ok, err := rd.Next(); err == nil {
		t.Fatalf("truncated run read: ok=%v, want error", ok)
	}
	run.Drop(ec)
}

// A spill directory that does not exist yet must be created on first
// use, not surface as an abort mid-query.
func TestWriterCreatesMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "not", "yet", "created")
	ec := resource.NewContext(nil, nil)
	ec.EnableSpill(resource.SpillConfig{Dir: dir})
	w, err := NewWriter(ec, "test")
	if err != nil {
		t.Fatalf("NewWriter into a missing dir: %v", err)
	}
	if err := w.Append([]relation.Value{relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rd.Next(); err != nil || !ok {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	rd.Close()
	run.Drop(ec)
	if files, _ := filepath.Glob(filepath.Join(dir, "ojspill-*")); len(files) != 0 {
		t.Fatalf("run files leaked: %v", files)
	}
	_ = os.RemoveAll(dir)
}

// Startup sweep: run files orphaned by a dead process (old mtime) are
// removed; fresh files — possibly owned by a live process sharing the
// directory — and non-spill files survive.
func TestSweepStale(t *testing.T) {
	dir := t.TempDir()
	mk := func(name string, age time.Duration) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		old := time.Now().Add(-age)
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
		return path
	}
	stale1 := mk(Prefix+"dead1.run", 2*time.Hour)
	stale2 := mk(Prefix+"dead2.run", 90*time.Minute)
	fresh := mk(Prefix+"live.run", time.Minute)
	other := mk("unrelated.dat", 3*time.Hour)

	n, err := SweepStale(dir, 0) // 0 = DefaultStaleAge (1h)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("swept %d files; want 2", n)
	}
	for _, gone := range []string{stale1, stale2} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Errorf("%s survived the sweep", gone)
		}
	}
	for _, kept := range []string{fresh, other} {
		if _, err := os.Stat(kept); err != nil {
			t.Errorf("%s was wrongly swept: %v", kept, err)
		}
	}
	// A second sweep finds nothing; a missing directory is not an error.
	if n, err := SweepStale(dir, 0); err != nil || n != 0 {
		t.Fatalf("re-sweep = (%d, %v); want (0, nil)", n, err)
	}
	if n, err := SweepStale(filepath.Join(dir, "nope"), 0); err != nil || n != 0 {
		t.Fatalf("missing-dir sweep = (%d, %v); want (0, nil)", n, err)
	}
	// An explicit age overrides the default: everything older than 30s.
	mkOld := mk(Prefix+"recent.run", 10*time.Minute)
	if n, err := SweepStale(dir, 30*time.Second); err != nil || n != 2 {
		t.Fatalf("aged sweep = (%d, %v); want (2, nil) [%s, %s]", n, err, fresh, mkOld)
	}
}
