package graph

import (
	"fmt"

	"freejoin/internal/predicate"
)

// JoinTree is a rooted arrangement of a tree-shaped query graph: the
// skeleton of the Yannakakis acyclic fast path. The root is chosen so
// that every outer edge points parent → child (preserved side above the
// null-supplied side), which is what makes the semijoin reducer below
// sound for outerjoins: a preserved tuple dangling with respect to a
// null-supplied child must survive reduction, so the bottom-up pass may
// only shrink a parent across plain join edges.
type JoinTree struct {
	g        *Graph
	root     string
	parent   map[string]string // node → parent; absent for the root
	edge     map[string]Edge   // node → the edge connecting it to its parent
	children map[string][]string
	order    []string // BFS pre-order from the root
}

// ReducerStep is one semijoin of the full-reducer program:
// Target ⋉= Source on Pred. TopDown distinguishes the second pass
// (child reduced by its already-reduced parent) from the first
// (parent reduced by an already-reduced child).
type ReducerStep struct {
	Target  string
	Source  string
	Pred    predicate.Predicate
	TopDown bool
}

// String renders the step as "Target ⋉ Source (pass)".
func (s ReducerStep) String() string {
	pass := "up"
	if s.TopDown {
		pass = "down"
	}
	return fmt.Sprintf("%s ⋉ %s (%s)", s.Target, s.Source, pass)
}

// BuildJoinTree roots a tree-shaped query graph for the Yannakakis fast
// path. It errors when the graph is not applicable: empty, carrying
// semijoin edges, disconnected, cyclic (more than n-1 edges), or shaped
// so that no root orients every outer edge parent → child.
func BuildJoinTree(g *Graph) (*JoinTree, error) {
	switch {
	case g == nil || g.NumNodes() == 0:
		return nil, fmt.Errorf("graph: join tree over empty graph")
	case g.HasSemiEdges():
		return nil, fmt.Errorf("graph: join tree over semijoin edges")
	case len(g.Edges()) != g.NumNodes()-1:
		return nil, fmt.Errorf("graph: join tree needs a tree (%d nodes, %d edges)",
			g.NumNodes(), len(g.Edges()))
	case !g.Connected():
		return nil, fmt.Errorf("graph: join tree over disconnected graph")
	}

	// Root at the first node (insertion order, for determinism) that is
	// not null-supplied by any outer edge. In a nice graph these are
	// exactly the core nodes, and rooting at any of them orients every
	// outer edge outward; one always exists in a tree, because n-1 edges
	// cannot point at all n nodes.
	consumed := map[string]bool{}
	for _, e := range g.Edges() {
		if e.Kind == OuterEdge {
			consumed[e.V] = true
		}
	}
	root := ""
	for _, n := range g.Nodes() {
		if !consumed[n] {
			root = n
			break
		}
	}
	if root == "" {
		return nil, fmt.Errorf("graph: every node is null-supplied; no join-tree root")
	}

	jt := &JoinTree{
		g:        g,
		root:     root,
		parent:   make(map[string]string, g.NumNodes()),
		edge:     make(map[string]Edge, g.NumNodes()),
		children: make(map[string][]string, g.NumNodes()),
	}
	jt.order = append(jt.order, root)
	seen := map[string]bool{root: true}
	for at := 0; at < len(jt.order); at++ {
		n := jt.order[at]
		for _, e := range g.Edges() {
			if !e.Touches(n) {
				continue
			}
			c := e.Other(n)
			if seen[c] {
				continue
			}
			seen[c] = true
			jt.parent[c] = n
			jt.edge[c] = e
			jt.children[n] = append(jt.children[n], c)
			jt.order = append(jt.order, c)
		}
	}
	// Defensive: the tree-and-connected checks above make full coverage
	// a given, but a partial BFS would corrupt the reducer silently.
	if len(jt.order) != g.NumNodes() {
		return nil, fmt.Errorf("graph: join tree covered %d of %d nodes", len(jt.order), g.NumNodes())
	}
	// Every outer edge must now point parent → child: the preserved side
	// (U) above the null-supplied side (V). A tree that cannot be rooted
	// this way (e.g. two outer edges meeting head-on) is not a nice
	// graph, and reducing across a misoriented outer edge would delete
	// preserved tuples whose null-padded rows belong in the output.
	for c, e := range jt.edge {
		if e.Kind == OuterEdge && e.V != c {
			return nil, fmt.Errorf("graph: outer edge %s misoriented in join tree rooted at %s", e, root)
		}
	}
	return jt, nil
}

// Root returns the root node.
func (jt *JoinTree) Root() string { return jt.root }

// Order returns the BFS pre-order from the root (parents before
// children).
func (jt *JoinTree) Order() []string { return append([]string(nil), jt.order...) }

// PostOrder returns the reverse of Order: every child before its
// parent.
func (jt *JoinTree) PostOrder() []string {
	out := make([]string, len(jt.order))
	for i, n := range jt.order {
		out[len(out)-1-i] = n
	}
	return out
}

// Children returns n's children in discovery order.
func (jt *JoinTree) Children(n string) []string {
	return append([]string(nil), jt.children[n]...)
}

// Parent returns n's parent and the connecting edge; ok is false for
// the root.
func (jt *JoinTree) Parent(n string) (parent string, e Edge, ok bool) {
	p, ok := jt.parent[n]
	if !ok {
		return "", Edge{}, false
	}
	return p, jt.edge[n], true
}

// ReducerProgram returns the full-reducer semijoin program in execution
// order: a bottom-up pass (each parent reduced by its already-reduced
// children, join edges only) followed by a top-down pass (each child
// reduced by its already-reduced parent, every edge kind).
//
// Why the asymmetry: across an outer edge U → V the U side is
// preserved, so a U-tuple with no V-match still produces a null-padded
// output row — reducing U by V would delete it (unsound). Reducing V by
// U is always sound: a V-tuple appears in the output only alongside a
// matching U-tuple. Plain join edges are sound in both directions.
// After the program runs, every surviving tuple contributes to at least
// one output row, which is the Yannakakis guarantee that intermediate
// join results never exceed the final result.
func (jt *JoinTree) ReducerProgram() []ReducerStep {
	var steps []ReducerStep
	for _, n := range jt.PostOrder() {
		p, e, ok := jt.Parent(n)
		if !ok || e.Kind != JoinEdge {
			continue
		}
		steps = append(steps, ReducerStep{Target: p, Source: n, Pred: e.Pred})
	}
	for _, n := range jt.Order() {
		p, e, ok := jt.Parent(n)
		if !ok {
			continue
		}
		steps = append(steps, ReducerStep{Target: n, Source: p, Pred: e.Pred, TopDown: true})
	}
	return steps
}
