package graph

import (
	"strings"
	"testing"
)

func mustSemi(t *testing.T, g *Graph, u, v string) {
	t.Helper()
	if err := g.AddSemiEdge(u, v, p(u, v)); err != nil {
		t.Fatal(err)
	}
}

func TestAddSemiEdge(t *testing.T) {
	g := New()
	mustSemi(t, g, "A", "B")
	if !g.HasSemiEdges() {
		t.Fatal("HasSemiEdges broken")
	}
	if err := g.AddSemiEdge("A", "A", p("A", "A")); err == nil {
		t.Error("self-loop must fail")
	}
	if err := g.AddSemiEdge("B", "A", p("B", "A")); err == nil {
		t.Error("parallel semi edge must fail")
	}
	if err := g.AddJoinEdge("A", "B", p("A", "B")); err == nil {
		t.Error("join parallel to semi must fail")
	}
	if !strings.Contains(g.Edges()[0].String(), "A ~> B") {
		t.Errorf("semi edge renders %q", g.Edges()[0])
	}
	if SemiEdge.String() != "semijoin" {
		t.Error("kind name")
	}
	if !strings.Contains(g.DOT(), "style=dashed") {
		t.Error("DOT must mark semi edges")
	}
}

func TestTheorem1CheckersRejectSemiEdges(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	mustSemi(t, g, "A", "C")
	if ok, reason := g.IsNiceLemma1(); ok || !strings.Contains(reason, "semijoin") {
		t.Errorf("IsNiceLemma1 = %v %q", ok, reason)
	}
	if ok, _ := g.IsNiceDefinitional(); ok {
		t.Error("IsNiceDefinitional must reject semi edges")
	}
}

func TestWithoutSemiEdges(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	mustSemi(t, g, "A", "C")
	sk := g.WithoutSemiEdges()
	if sk.NumNodes() != 2 || len(sk.Edges()) != 1 || sk.HasNode("C") {
		t.Fatalf("skeleton = %v", sk)
	}
	// A consumed node with other edges stays.
	h := New()
	mustSemi(t, h, "A", "B")
	mustJoin(t, h, "B", "C")
	sk2 := h.WithoutSemiEdges()
	if !sk2.HasNode("B") || len(sk2.Edges()) != 1 {
		t.Fatalf("skeleton2 = %v", sk2)
	}
}

func TestIsNiceSemiPositive(t *testing.T) {
	cases := []func() *Graph{
		func() *Graph { // single semijoin pair
			g := New()
			mustSemi(t, g, "A", "B")
			return g
		},
		func() *Graph { // pendant semijoin off a join core
			g := New()
			mustJoin(t, g, "A", "B")
			mustSemi(t, g, "A", "Z")
			return g
		},
		func() *Graph { // two semijoins off the same node
			g := New()
			mustJoin(t, g, "A", "B")
			mustSemi(t, g, "A", "X")
			mustSemi(t, g, "A", "Y")
			return g
		},
		func() *Graph { // semijoin + outward outerjoin, disjoint targets
			g := New()
			mustJoin(t, g, "A", "B")
			mustOuter(t, g, "B", "C")
			mustSemi(t, g, "A", "Z")
			return g
		},
	}
	for i, mk := range cases {
		g := mk()
		if ok, reason := g.IsNiceSemi(); !ok {
			t.Errorf("case %d should be nice-with-semi: %s\n%v", i, reason, g)
		}
	}
}

func TestIsNiceSemiForbiddenPatterns(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Graph
	}{
		{"semijoin edges in series (§6.3)", func() *Graph {
			g := New()
			mustSemi(t, g, "A", "B")
			mustSemi(t, g, "B", "C")
			return g
		}},
		{"consumed node also joins", func() *Graph {
			g := New()
			mustSemi(t, g, "A", "B")
			mustJoin(t, g, "B", "C")
			return g
		}},
		{"consumed node also null-supplied", func() *Graph {
			g := New()
			mustSemi(t, g, "A", "B")
			mustOuter(t, g, "C", "B")
			return g
		}},
		{"null-supplied source", func() *Graph {
			g := New()
			mustOuter(t, g, "A", "B")
			mustSemi(t, g, "B", "C")
			return g
		}},
		{"skeleton not nice", func() *Graph {
			g := New()
			mustOuter(t, g, "A", "B")
			mustJoin(t, g, "B", "C") // X -> Y - Z already forbidden
			mustSemi(t, g, "C", "Z")
			return g
		}},
		{"disconnected", func() *Graph {
			g := New()
			mustSemi(t, g, "A", "B")
			g.MustAddNode("Q")
			return g
		}},
	}
	for _, tc := range cases {
		if ok, _ := tc.mk().IsNiceSemi(); ok {
			t.Errorf("%s must be rejected", tc.name)
		}
	}
}

func TestIsNiceSemiCoincidesWithoutSemiEdges(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	mustOuter(t, g, "B", "C")
	ok1, _ := g.IsNice()
	ok2, _ := g.IsNiceSemi()
	if ok1 != ok2 || !ok1 {
		t.Error("IsNiceSemi must agree with IsNice on semi-free graphs")
	}
}
