package graph

import (
	"strings"
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func eq(t *testing.T, u, v string) predicate.Predicate {
	t.Helper()
	return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
}

// treeFixture builds A -J- B, B ->O C, B -J- D: a join core {A, B, D}
// with one outer child C hanging off B.
func treeFixture(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, n := range []string{"A", "B", "C", "D"} {
		g.MustAddNode(n)
	}
	if err := g.AddJoinEdge("A", "B", eq(t, "A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOuterEdge("B", "C", eq(t, "B", "C")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddJoinEdge("B", "D", eq(t, "B", "D")); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildJoinTreeShape(t *testing.T) {
	jt, err := BuildJoinTree(treeFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	if jt.Root() != "A" {
		t.Fatalf("root = %s, want A (first non-null-supplied node)", jt.Root())
	}
	if got := strings.Join(jt.Order(), " "); got != "A B C D" {
		t.Fatalf("order = %q", got)
	}
	if got := strings.Join(jt.PostOrder(), " "); got != "D C B A" {
		t.Fatalf("post-order = %q", got)
	}
	if got := strings.Join(jt.Children("B"), " "); got != "C D" {
		t.Fatalf("children(B) = %q", got)
	}
	p, e, ok := jt.Parent("C")
	if !ok || p != "B" || e.Kind != OuterEdge {
		t.Fatalf("parent(C) = %s %v %v", p, e, ok)
	}
	if _, _, ok := jt.Parent("A"); ok {
		t.Fatal("root must have no parent")
	}
}

func TestReducerProgram(t *testing.T) {
	jt, err := BuildJoinTree(treeFixture(t))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range jt.ReducerProgram() {
		got = append(got, s.String())
		if s.Pred == nil {
			t.Fatalf("step %s lost its predicate", s)
		}
	}
	// Bottom-up touches only the join edges (reducing B by its
	// null-supplied child C would delete preserved dangling tuples);
	// top-down covers every edge.
	want := []string{
		"B ⋉ D (up)",
		"A ⋉ B (up)",
		"B ⋉ A (down)",
		"C ⋉ B (down)",
		"D ⋉ B (down)",
	}
	if strings.Join(got, "; ") != strings.Join(want, "; ") {
		t.Fatalf("program = %v, want %v", got, want)
	}
}

func TestBuildJoinTreeRejects(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if _, err := BuildJoinTree(New()); err == nil {
			t.Fatal("want error")
		}
	})
	t.Run("cyclic", func(t *testing.T) {
		g := New()
		for _, n := range []string{"A", "B", "C"} {
			g.MustAddNode(n)
		}
		for _, e := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "A"}} {
			if err := g.AddJoinEdge(e[0], e[1], eq(t, e[0], e[1])); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := BuildJoinTree(g); err == nil || !strings.Contains(err.Error(), "tree") {
			t.Fatalf("err = %v, want tree-shape rejection", err)
		}
	})
	t.Run("disconnected", func(t *testing.T) {
		g := New()
		for _, n := range []string{"A", "B", "C", "D"} {
			g.MustAddNode(n)
		}
		for _, e := range [][2]string{{"A", "B"}, {"B", "C"}, {"C", "A"}} {
			if err := g.AddJoinEdge(e[0], e[1], eq(t, e[0], e[1])); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := BuildJoinTree(g); err == nil {
			t.Fatal("want error for disconnected graph")
		}
	})
	t.Run("semijoin edges", func(t *testing.T) {
		g := New()
		g.MustAddNode("A")
		g.MustAddNode("B")
		if err := g.AddSemiEdge("A", "B", eq(t, "A", "B")); err != nil {
			t.Fatal(err)
		}
		if _, err := BuildJoinTree(g); err == nil || !strings.Contains(err.Error(), "semijoin") {
			t.Fatalf("err = %v, want semijoin rejection", err)
		}
	})
	t.Run("misoriented outer", func(t *testing.T) {
		// A -> B <- C: two preserved sides feed one null-supplied node;
		// no root can orient both outer edges parent → child.
		g := New()
		for _, n := range []string{"A", "B", "C"} {
			g.MustAddNode(n)
		}
		if err := g.AddOuterEdge("A", "B", eq(t, "A", "B")); err != nil {
			t.Fatal(err)
		}
		if err := g.AddOuterEdge("C", "B", eq(t, "C", "B")); err != nil {
			t.Fatal(err)
		}
		if _, err := BuildJoinTree(g); err == nil || !strings.Contains(err.Error(), "misoriented") {
			t.Fatalf("err = %v, want misoriented-outer rejection", err)
		}
	})
}

func TestBuildJoinTreeOuterChain(t *testing.T) {
	// A -> B -> C roots at A and orients both outer edges outward.
	g := New()
	for _, n := range []string{"A", "B", "C"} {
		g.MustAddNode(n)
	}
	if err := g.AddOuterEdge("A", "B", eq(t, "A", "B")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOuterEdge("B", "C", eq(t, "B", "C")); err != nil {
		t.Fatal(err)
	}
	jt, err := BuildJoinTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if jt.Root() != "A" {
		t.Fatalf("root = %s", jt.Root())
	}
	// All edges are outer, so the bottom-up pass is empty.
	for _, s := range jt.ReducerProgram() {
		if !s.TopDown {
			t.Fatalf("outer-only tree must have no bottom-up steps, got %s", s)
		}
	}
}
