package graph

import (
	"math/rand"
	"testing"
)

func checkBoth(t *testing.T, g *Graph, want bool, label string) {
	t.Helper()
	got1, reason1 := g.IsNiceLemma1()
	got2, reason2 := g.IsNiceDefinitional()
	if got1 != want {
		t.Errorf("%s: IsNiceLemma1 = %v (%s), want %v", label, got1, reason1, want)
	}
	if got2 != want {
		t.Errorf("%s: IsNiceDefinitional = %v (%s), want %v", label, got2, reason2, want)
	}
	if got, _ := g.IsNice(); got != got1 {
		t.Errorf("%s: IsNice disagrees with IsNiceLemma1", label)
	}
}

func TestNiceSingleNode(t *testing.T) {
	g := New()
	g.MustAddNode("R")
	checkBoth(t, g, true, "single node")
}

func TestNicePureJoinChain(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	mustJoin(t, g, "B", "C")
	mustJoin(t, g, "C", "D")
	checkBoth(t, g, true, "join chain")
}

func TestNiceJoinCycle(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	mustJoin(t, g, "B", "C")
	mustJoin(t, g, "C", "A")
	checkBoth(t, g, true, "join cycle is nice (cycles only forbidden for outerjoins)")
}

func TestNicePureOuterChain(t *testing.T) {
	g := New()
	mustOuter(t, g, "A", "B")
	mustOuter(t, g, "B", "C")
	checkBoth(t, g, true, "outer chain")
}

func TestNiceOuterTree(t *testing.T) {
	g := New()
	mustOuter(t, g, "A", "B")
	mustOuter(t, g, "A", "C")
	mustOuter(t, g, "C", "D")
	checkBoth(t, g, true, "outward tree from a single root")
}

// TestFigure2Nice encodes a topology in the spirit of the paper's Fig. 2:
// a connected join core with outerjoin trees growing outward from core
// nodes (DESIGN.md experiment E8).
func TestFigure2Nice(t *testing.T) {
	g := New()
	// Join core: a 4-cycle with a chord.
	mustJoin(t, g, "R", "S")
	mustJoin(t, g, "S", "T")
	mustJoin(t, g, "T", "U")
	mustJoin(t, g, "U", "R")
	mustJoin(t, g, "S", "U")
	// Outerjoin trees going outward.
	mustOuter(t, g, "R", "V")
	mustOuter(t, g, "V", "W")
	mustOuter(t, g, "V", "X")
	mustOuter(t, g, "T", "Y")
	checkBoth(t, g, true, "figure 2 topology")
}

func TestNotNiceOuterIntoJoin(t *testing.T) {
	// X → Y — Z: the graph of Example 2.
	g := New()
	mustOuter(t, g, "X", "Y")
	mustJoin(t, g, "Y", "Z")
	checkBoth(t, g, false, "X -> Y - Z")
}

func TestNotNiceSharedNullSupplier(t *testing.T) {
	// X → Y ← Z.
	g := New()
	mustOuter(t, g, "X", "Y")
	mustOuter(t, g, "Z", "Y")
	checkBoth(t, g, false, "X -> Y <- Z")
}

func TestNotNiceOuterCycle(t *testing.T) {
	g := New()
	mustOuter(t, g, "A", "B")
	mustOuter(t, g, "B", "C")
	mustOuter(t, g, "C", "A")
	checkBoth(t, g, false, "outerjoin cycle")

	// Undirected outer cycle: A → B, A → C, B → ... share endpoints.
	h := New()
	mustOuter(t, h, "A", "B")
	mustOuter(t, h, "A", "C")
	mustOuter(t, h, "B", "D")
	mustOuter(t, h, "C", "D") // D now has two incoming, also a cycle
	checkBoth(t, h, false, "undirected outer cycle")
}

func TestNotNiceDisconnected(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	g.MustAddNode("C")
	checkBoth(t, g, false, "disconnected")
}

func TestNotNiceTwoJoinComponentsBridgedByOuter(t *testing.T) {
	// A—B and C—D cores bridged by B → C: C is null-supplied and touches
	// a join edge.
	g := New()
	mustJoin(t, g, "A", "B")
	mustJoin(t, g, "C", "D")
	mustOuter(t, g, "B", "C")
	checkBoth(t, g, false, "bridged join cores")
}

func TestNiceOuterBelowOuterBranching(t *testing.T) {
	// Core A—B; B → C; C → D and C → E (branching below a non-core node).
	g := New()
	mustJoin(t, g, "A", "B")
	mustOuter(t, g, "B", "C")
	mustOuter(t, g, "C", "D")
	mustOuter(t, g, "C", "E")
	checkBoth(t, g, true, "branching outer tree below core")
}

// randomGraph builds an arbitrary connected graph over n nodes: a random
// spanning tree plus extra random edges, each join or outer with random
// orientation. Many samples are not nice; both checkers must agree on
// every one (Lemma 1, DESIGN.md experiment E9).
func randomGraph(rnd *rand.Rand, n int) *Graph {
	g := New()
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A' + i))
		g.MustAddNode(names[i])
	}
	addRandomEdge := func(u, v string) {
		if rnd.Intn(2) == 0 {
			_ = g.AddJoinEdge(u, v, p(u, v))
		} else if rnd.Intn(2) == 0 {
			_ = g.AddOuterEdge(u, v, p(u, v))
		} else {
			_ = g.AddOuterEdge(v, u, p(v, u))
		}
	}
	for i := 1; i < n; i++ {
		addRandomEdge(names[i], names[rnd.Intn(i)])
	}
	extra := rnd.Intn(n)
	for k := 0; k < extra; k++ {
		i, j := rnd.Intn(n), rnd.Intn(n)
		if i != j {
			addRandomEdge(names[i], names[j])
		}
	}
	return g
}

func TestLemma1Equivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	agreeNice, agreeNot := 0, 0
	for trial := 0; trial < 3000; trial++ {
		g := randomGraph(rnd, 2+rnd.Intn(6))
		got1, r1 := g.IsNiceLemma1()
		got2, r2 := g.IsNiceDefinitional()
		if got1 != got2 {
			t.Fatalf("trial %d: checkers disagree (lemma1=%v %q, def=%v %q) on\n%v",
				trial, got1, r1, got2, r2, g)
		}
		if got1 {
			agreeNice++
		} else {
			agreeNot++
		}
	}
	if agreeNice == 0 || agreeNot == 0 {
		t.Errorf("generator must cover both outcomes: nice=%d notNice=%d", agreeNice, agreeNot)
	}
}

func TestNiceSubgraphObservation(t *testing.T) {
	// "If G' is a connected subgraph of a nice graph G, then G' is also
	// nice." Check on random nice graphs and random connected subsets.
	rnd := rand.New(rand.NewSource(23))
	checked := 0
	for trial := 0; trial < 2000 && checked < 300; trial++ {
		g := randomGraph(rnd, 2+rnd.Intn(6))
		if ok, _ := g.IsNice(); !ok {
			continue
		}
		all := g.AllNodes()
		for s := NodeSet(1); s <= all; s++ {
			if s&all != s || !g.ConnectedSet(s) {
				continue
			}
			sub := g.InducedSubgraph(s)
			if ok, reason := sub.IsNice(); !ok {
				t.Fatalf("connected subgraph of nice graph not nice (%s):\nG=%v\nG'=%v", reason, g, sub)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no subgraphs checked")
	}
}
