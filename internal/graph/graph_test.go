package graph

import (
	"strings"
	"testing"

	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// p returns a placeholder equijoin predicate between u.a and v.a.
func p(u, v string) predicate.Predicate {
	return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
}

func mustJoin(t *testing.T, g *Graph, u, v string) {
	t.Helper()
	if err := g.AddJoinEdge(u, v, p(u, v)); err != nil {
		t.Fatal(err)
	}
}

func mustOuter(t *testing.T, g *Graph, u, v string) {
	t.Helper()
	if err := g.AddOuterEdge(u, v, p(u, v)); err != nil {
		t.Fatal(err)
	}
}

func setOf(t *testing.T, g *Graph, names ...string) NodeSet {
	t.Helper()
	s, err := g.SetOf(names...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAddNodesAndEdges(t *testing.T) {
	g := New()
	g.MustAddNode("R")
	g.MustAddNode("R") // idempotent
	if g.NumNodes() != 1 {
		t.Fatal("AddNode must be idempotent")
	}
	mustJoin(t, g, "R", "S")
	mustOuter(t, g, "S", "T")
	if g.NumNodes() != 3 || len(g.Edges()) != 2 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), len(g.Edges()))
	}
	if !g.HasNode("T") || g.HasNode("X") {
		t.Error("HasNode broken")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	g := New()
	if err := g.AddJoinEdge("R", "R", p("R", "R")); err == nil {
		t.Error("join self-loop must be rejected")
	}
	if err := g.AddOuterEdge("R", "R", p("R", "R")); err == nil {
		t.Error("outer self-loop must be rejected")
	}
}

func TestParallelJoinEdgesCollapse(t *testing.T) {
	g := New()
	p1 := predicate.Eq(relation.A("R", "fname"), relation.A("S", "fname"))
	p2 := predicate.Eq(relation.A("R", "lname"), relation.A("S", "lname"))
	if err := g.AddJoinEdge("R", "S", p1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddJoinEdge("S", "R", p2); err != nil { // reversed orientation
		t.Fatal(err)
	}
	if len(g.Edges()) != 1 {
		t.Fatalf("parallel join edges must collapse, got %d edges", len(g.Edges()))
	}
	got := g.Edges()[0].Pred.String()
	if !strings.Contains(got, "fname") || !strings.Contains(got, "lname") {
		t.Errorf("collapsed predicate = %q", got)
	}
}

func TestMixedParallelEdgesRejected(t *testing.T) {
	g := New()
	mustOuter(t, g, "R", "S")
	if err := g.AddJoinEdge("R", "S", p("R", "S")); err == nil {
		t.Error("join parallel to outerjoin must be rejected")
	}
	if err := g.AddOuterEdge("S", "R", p("S", "R")); err == nil {
		t.Error("second outer edge between same pair must be rejected")
	}

	h := New()
	mustJoin(t, h, "R", "S")
	if err := h.AddOuterEdge("R", "S", p("R", "S")); err == nil {
		t.Error("outerjoin parallel to join must be rejected")
	}
}

func TestNodeSetOps(t *testing.T) {
	g := New()
	for _, n := range []string{"A", "B", "C"} {
		g.MustAddNode(n)
	}
	s := setOf(t, g, "A", "C")
	if !s.Has(0) || s.Has(1) || !s.Has(2) {
		t.Error("SetOf broken")
	}
	if _, err := g.SetOf("A", "Z"); err == nil {
		t.Error("SetOf must reject unknown nodes")
	}
	if s.Count() != 2 {
		t.Error("Count broken")
	}
	names := g.NamesOf(s)
	if len(names) != 2 || names[0] != "A" || names[1] != "C" {
		t.Errorf("NamesOf = %v", names)
	}
	if g.AllNodes() != 0b111 {
		t.Errorf("AllNodes = %b", g.AllNodes())
	}
	if New().AllNodes() != 0 {
		t.Error("empty AllNodes")
	}
}

func TestConnectivity(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	mustOuter(t, g, "B", "C")
	g.MustAddNode("D")
	if g.Connected() {
		t.Error("D is isolated; graph not connected")
	}
	if !g.ConnectedSet(setOf(t, g, "A", "B", "C")) {
		t.Error("A,B,C connected")
	}
	if g.ConnectedSet(setOf(t, g, "A", "C")) {
		t.Error("A,C not connected without B")
	}
	if !g.ConnectedSet(setOf(t, g, "D")) || !g.ConnectedSet(0) {
		t.Error("singletons and empty set are connected")
	}
}

func TestCutAndWithinEdges(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	mustJoin(t, g, "B", "C")
	mustOuter(t, g, "A", "D")
	s1 := setOf(t, g, "A", "B")
	s2 := setOf(t, g, "C", "D")
	cut := g.CutEdges(s1, s2)
	if len(cut) != 2 {
		t.Fatalf("cut = %v", cut)
	}
	within := g.EdgesWithin(s1)
	if len(within) != 1 || within[0].U != "A" {
		t.Fatalf("within = %v", within)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	mustJoin(t, g, "B", "C")
	sub := g.InducedSubgraph(setOf(t, g, "A", "B"))
	if sub.NumNodes() != 2 || len(sub.Edges()) != 1 {
		t.Fatalf("induced: %v", sub)
	}
}

func TestGraphEqual(t *testing.T) {
	mk := func() *Graph {
		g := New()
		mustJoin(t, g, "A", "B")
		mustOuter(t, g, "B", "C")
		return g
	}
	g, h := mk(), mk()
	if !g.Equal(h) {
		t.Error("identical graphs must be Equal")
	}
	// Join edge orientation is canonicalized.
	h2 := New()
	if err := h2.AddJoinEdge("B", "A", p("A", "B")); err != nil {
		t.Fatal(err)
	}
	mustOuter(t, h2, "B", "C")
	if !g.Equal(h2) {
		t.Error("join edge orientation must not matter")
	}
	// Outer edge orientation matters.
	h3 := New()
	mustJoin(t, h3, "A", "B")
	if err := h3.AddOuterEdge("C", "B", p("B", "C")); err != nil {
		t.Fatal(err)
	}
	if g.Equal(h3) {
		t.Error("outer edge orientation must matter")
	}
	h4 := mk()
	mustJoin(t, h4, "C", "D")
	if g.Equal(h4) {
		t.Error("different sizes must not be Equal")
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Edge{U: "A", V: "B", Kind: OuterEdge, Pred: p("A", "B")}
	if e.Other("A") != "B" || e.Other("B") != "A" {
		t.Error("Other broken")
	}
	if !e.Touches("A") || e.Touches("C") {
		t.Error("Touches broken")
	}
	if !strings.Contains(e.String(), "A -> B") {
		t.Errorf("Edge.String = %q", e.String())
	}
	je := Edge{U: "A", V: "B", Kind: JoinEdge, Pred: p("A", "B")}
	if !strings.Contains(je.String(), "A - B") {
		t.Errorf("join Edge.String = %q", je.String())
	}
	if JoinEdge.String() != "join" || OuterEdge.String() != "outerjoin" {
		t.Error("EdgeKind.String broken")
	}
}

func TestStringAndDOT(t *testing.T) {
	g := New()
	mustJoin(t, g, "A", "B")
	mustOuter(t, g, "B", "C")
	g.MustAddNode("Z")
	s := g.String()
	if !strings.Contains(s, "3 edges") && !strings.Contains(s, "2 edges") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(s, "Z (isolated)") {
		t.Errorf("isolated node missing: %q", s)
	}
	dot := g.DOT()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "dir=none") {
		t.Errorf("DOT = %q", dot)
	}
}

func TestNodeLimit(t *testing.T) {
	g := New()
	for i := 0; i < 64; i++ {
		g.MustAddNode(strings.Repeat("x", i+1))
	}
	if err := g.AddNode("overflow"); err == nil {
		t.Error("65th node must be rejected")
	}
}
