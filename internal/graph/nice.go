package graph

import "fmt"

// Niceness analyses. The paper gives two characterizations proved
// equivalent by its Lemma 1; we implement both and property-test their
// agreement (DESIGN.md experiment E9).

// IsNiceLemma1 checks the Lemma 1 form on a connected graph:
//
//  1. there are no cycles composed of outerjoin edges,
//  2. there is no path of the form X → Y — Z (a null-supplied node
//     incident to a join edge), and
//  3. there is no path of the form X → Y ← Z (a node null-supplied by two
//     outerjoins).
//
// It reports ok=false with a human-readable reason naming the violated
// condition. A disconnected graph is not a query graph and is rejected.
func (g *Graph) IsNiceLemma1() (ok bool, reason string) {
	if g.HasSemiEdges() {
		return false, "semijoin edges are outside Theorem 1 (use IsNiceSemi)"
	}
	if !g.Connected() {
		return false, "graph is not connected"
	}
	// Condition 3: at most one incoming outerjoin edge per node, and
	// condition 2: no node with an incoming outerjoin edge touches a join
	// edge.
	for _, n := range g.nodes {
		incoming := 0
		touchesJoin := false
		for _, e := range g.edges {
			if e.Kind == OuterEdge && e.V == n {
				incoming++
			}
			if e.Kind == JoinEdge && e.Touches(n) {
				touchesJoin = true
			}
		}
		if incoming >= 2 {
			return false, fmt.Sprintf("node %s is null-supplied by two outerjoins (X -> Y <- Z)", n)
		}
		if incoming >= 1 && touchesJoin {
			return false, fmt.Sprintf("null-supplied node %s is incident to a join edge (X -> Y - Z)", n)
		}
	}
	// Condition 1: the outerjoin edges, with direction ignored, are
	// acyclic (a forest).
	if g.outerEdgesHaveCycle() {
		return false, "outerjoin edges form a cycle"
	}
	return true, ""
}

// outerEdgesHaveCycle reports whether the undirected graph formed by the
// outerjoin edges alone contains a cycle (union-find over endpoints).
func (g *Graph) outerEdgesHaveCycle() bool {
	parent := make([]int, len(g.nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.edges {
		if e.Kind != OuterEdge {
			continue
		}
		ru, rv := find(g.IndexOf(e.U)), find(g.IndexOf(e.V))
		if ru == rv {
			return true
		}
		parent[ru] = rv
	}
	return false
}

// IsNiceDefinitional checks the definitional form on a connected graph:
// G = G1 ∪ G2 where G1 is connected and has only join edges, G2 is a
// forest of outerjoin edges directed outward (away from the roots), and
// G1 ∩ G2 is exactly the set of forest roots.
func (g *Graph) IsNiceDefinitional() (ok bool, reason string) {
	if g.HasSemiEdges() {
		return false, "semijoin edges are outside Theorem 1 (use IsNiceSemi)"
	}
	if !g.Connected() {
		return false, "graph is not connected"
	}
	// G1's node set: nodes incident to join edges. If there are no join
	// edges, G1 is a single node — the unique root of the outerjoin
	// forest (which must then be a single tree).
	joinNodes := map[string]bool{}
	for _, e := range g.edges {
		if e.Kind == JoinEdge {
			joinNodes[e.U] = true
			joinNodes[e.V] = true
		}
	}
	// G1 must be connected using join edges only.
	if len(joinNodes) > 0 {
		var s NodeSet
		for n := range joinNodes {
			s = s.With(g.IndexOf(n))
		}
		if !g.joinConnected(s) {
			return false, "join edges do not form a connected core"
		}
	}
	// G2: the outerjoin edges must form a forest...
	if g.outerEdgesHaveCycle() {
		return false, "outerjoin edges form a cycle"
	}
	// ... directed outward: walking from any node with an incoming outer
	// edge, that node must have exactly one incoming edge (forest +
	// orientation), and must not belong to G1.
	incoming := map[string]int{}
	for _, e := range g.edges {
		if e.Kind == OuterEdge {
			incoming[e.V]++
		}
	}
	roots := 0
	hasOuter := false
	for _, e := range g.edges {
		if e.Kind != OuterEdge {
			continue
		}
		hasOuter = true
		if incoming[e.V] > 1 {
			return false, fmt.Sprintf("outerjoin edges into %s do not form an outward tree", e.V)
		}
		if joinNodes[e.V] {
			return false, fmt.Sprintf("non-root forest node %s lies in the join core", e.V)
		}
		if incoming[e.U] == 0 {
			// e.U is a forest root: it must lie in G1. With join edges
			// present that means it touches a join edge; without any join
			// edges G1 is a single node, so all roots must coincide.
			if len(joinNodes) > 0 && !joinNodes[e.U] {
				// A root outside the join core is only acceptable if it is
				// an interior node of no tree and G1∩G2 = roots fails.
				return false, fmt.Sprintf("outerjoin tree root %s is not in the join core", e.U)
			}
			roots++
		}
	}
	if len(joinNodes) == 0 && hasOuter {
		// Pure outerjoin graph: count distinct root nodes; must be one.
		rootSet := map[string]bool{}
		for _, e := range g.edges {
			if e.Kind == OuterEdge && incoming[e.U] == 0 {
				rootSet[e.U] = true
			}
		}
		if len(rootSet) != 1 {
			return false, "outerjoin forest without a join core must be a single tree"
		}
	}
	return true, ""
}

// joinConnected reports whether the node set s is connected using join
// edges only.
func (g *Graph) joinConnected(s NodeSet) bool {
	start := 0
	for !s.Has(start) {
		start++
	}
	seen := NodeSet(0).With(start)
	frontier := []int{start}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		name := g.nodes[n]
		for _, e := range g.edges {
			if e.Kind != JoinEdge || !e.Touches(name) {
				continue
			}
			o := g.IndexOf(e.Other(name))
			if s.Has(o) && !seen.Has(o) {
				seen = seen.With(o)
				frontier = append(frontier, o)
			}
		}
	}
	return seen == s
}

// IsNice reports whether the graph is "nice" (the precondition of the
// free-reorderability theorem, with strongness checked separately). It
// uses the Lemma 1 form; IsNiceDefinitional is the cross-check.
func (g *Graph) IsNice() (bool, string) { return g.IsNiceLemma1() }
