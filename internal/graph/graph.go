// Package graph implements the paper's query graphs for Join/Outerjoin
// queries: nodes are ground relations; each join-predicate conjunct
// contributes an undirected edge (parallel join edges between the same
// pair are collapsed into one, conjoining their predicates); each
// outerjoin contributes a single directed edge toward the null-supplied
// relation, labeled with the entire outerjoin predicate.
//
// The package provides the two equivalent "nice graph" tests — the
// definitional one (a connected join core from which outerjoin trees go
// outward) and Lemma 1's forbidden-pattern form — plus the connectivity
// and cut machinery that package expr uses to enumerate implementing
// trees.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"freejoin/internal/predicate"
)

// EdgeKind distinguishes join and outerjoin edges.
type EdgeKind uint8

// Edge kinds. SemiEdge is the §6.3 extension (see semi.go); Theorem 1
// itself covers JoinEdge and OuterEdge only.
const (
	JoinEdge EdgeKind = iota
	OuterEdge
	SemiEdge
)

// String returns the edge-kind name.
func (k EdgeKind) String() string {
	switch k {
	case OuterEdge:
		return "outerjoin"
	case SemiEdge:
		return "semijoin"
	default:
		return "join"
	}
}

// arrow returns the textual edge connector.
func (k EdgeKind) arrow() string {
	switch k {
	case OuterEdge:
		return "->"
	case SemiEdge:
		return "~>"
	default:
		return "-"
	}
}

// Edge is a labeled query-graph edge between two ground relations. For an
// OuterEdge the direction is U → V: U's side is preserved, V is
// null-supplied. For a JoinEdge the (U, V) order is arbitrary.
type Edge struct {
	U, V string
	Kind EdgeKind
	Pred predicate.Predicate
}

// Other returns the endpoint opposite to n.
func (e Edge) Other(n string) string {
	if e.U == n {
		return e.V
	}
	return e.U
}

// Touches reports whether n is an endpoint of the edge.
func (e Edge) Touches(n string) bool { return e.U == n || e.V == n }

// String renders the edge as "U - V", "U -> V" or "U ~> V" with its
// predicate.
func (e Edge) String() string {
	return fmt.Sprintf("%s %s %s [%s]", e.U, e.Kind.arrow(), e.V, e.Pred)
}

// Graph is a query graph. The zero value is empty and ready to use.
// Graphs support at most 64 nodes (node sets are bitmasks), far beyond
// the size at which exhaustive implementing-tree enumeration is feasible.
type Graph struct {
	nodes   []string
	nodeIdx map[string]int
	edges   []Edge
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{nodeIdx: make(map[string]int)}
}

// AddNode adds a ground relation node; adding an existing node is a no-op.
func (g *Graph) AddNode(name string) error {
	if _, ok := g.nodeIdx[name]; ok {
		return nil
	}
	if len(g.nodes) >= 64 {
		return fmt.Errorf("graph: more than 64 nodes")
	}
	g.nodeIdx[name] = len(g.nodes)
	g.nodes = append(g.nodes, name)
	return nil
}

// MustAddNode is AddNode that panics on error.
func (g *Graph) MustAddNode(name string) {
	if err := g.AddNode(name); err != nil {
		panic(err)
	}
}

// HasNode reports whether the node exists.
func (g *Graph) HasNode(name string) bool {
	_, ok := g.nodeIdx[name]
	return ok
}

// Nodes returns the node names in insertion order.
func (g *Graph) Nodes() []string { return append([]string(nil), g.nodes...) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// Edges returns the edges (shared slice; callers must not modify).
func (g *Graph) Edges() []Edge { return g.edges }

// IndexOf returns the bit index of a node in NodeSets, or -1 if the node
// is unknown.
func (g *Graph) IndexOf(name string) int {
	if i, ok := g.nodeIdx[name]; ok {
		return i
	}
	return -1
}

// edgeBetween returns the index in g.edges of the edge joining u and v in
// either orientation, or -1.
func (g *Graph) edgeBetween(u, v string) int {
	for i, e := range g.edges {
		if (e.U == u && e.V == v) || (e.U == v && e.V == u) {
			return i
		}
	}
	return -1
}

// AddJoinEdge adds an undirected join edge labeled p between u and v.
// A parallel join edge is collapsed by conjoining predicates (the paper's
// treatment of multiple conjuncts between the same relations). A parallel
// edge of a different kind is rejected: the paper's operator convention
// (every conjunct references both operands of its operator) makes such a
// query ill-formed, so the graph would be undefined.
func (g *Graph) AddJoinEdge(u, v string, p predicate.Predicate) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on %s", u)
	}
	if err := g.AddNode(u); err != nil {
		return err
	}
	if err := g.AddNode(v); err != nil {
		return err
	}
	if i := g.edgeBetween(u, v); i >= 0 {
		if g.edges[i].Kind != JoinEdge {
			return fmt.Errorf("graph: join edge %s-%s parallel to outerjoin edge: graph undefined", u, v)
		}
		g.edges[i].Pred = predicate.NewAnd(g.edges[i].Pred, p)
		return nil
	}
	g.edges = append(g.edges, Edge{U: u, V: v, Kind: JoinEdge, Pred: p})
	return nil
}

// AddOuterEdge adds a directed outerjoin edge u → v (v null-supplied)
// labeled with the entire outerjoin predicate p. Any parallel edge is
// rejected (see AddJoinEdge); a second outerjoin between the same pair
// cannot arise because a relation is used at most once per query.
func (g *Graph) AddOuterEdge(u, v string, p predicate.Predicate) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on %s", u)
	}
	if err := g.AddNode(u); err != nil {
		return err
	}
	if err := g.AddNode(v); err != nil {
		return err
	}
	if g.edgeBetween(u, v) >= 0 {
		return fmt.Errorf("graph: parallel edge %s,%s involving an outerjoin: graph undefined", u, v)
	}
	g.edges = append(g.edges, Edge{U: u, V: v, Kind: OuterEdge, Pred: p})
	return nil
}

// NodeSet is a bitmask over a graph's node indices.
type NodeSet uint64

// Set reports membership of bit i.
func (s NodeSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// With returns s with bit i set.
func (s NodeSet) With(i int) NodeSet { return s | 1<<uint(i) }

// Count returns the population count.
func (s NodeSet) Count() int {
	n := 0
	for t := s; t != 0; t &= t - 1 {
		n++
	}
	return n
}

// AllNodes returns the set of all nodes.
func (g *Graph) AllNodes() NodeSet {
	if len(g.nodes) == 0 {
		return 0
	}
	return NodeSet(1)<<uint(len(g.nodes)) - 1
}

// SetOf builds a NodeSet from node names. Unknown names — which can
// reach here from user-supplied queries naming tables the catalog does
// not have — are reported as an error rather than a panic.
func (g *Graph) SetOf(names ...string) (NodeSet, error) {
	var s NodeSet
	for _, n := range names {
		i := g.IndexOf(n)
		if i < 0 {
			return 0, fmt.Errorf("graph: unknown node %q", n)
		}
		s = s.With(i)
	}
	return s, nil
}

// NamesOf lists the node names in a set, in index order.
func (g *Graph) NamesOf(s NodeSet) []string {
	var out []string
	for i, n := range g.nodes {
		if s.Has(i) {
			out = append(out, n)
		}
	}
	return out
}

// ConnectedSet reports whether the induced subgraph on s is connected
// (true for the empty set and singletons).
func (g *Graph) ConnectedSet(s NodeSet) bool {
	if s == 0 {
		return true
	}
	// Start from the lowest set bit, flood within s.
	start := 0
	for !s.Has(start) {
		start++
	}
	seen := NodeSet(0).With(start)
	frontier := []int{start}
	for len(frontier) > 0 {
		n := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		name := g.nodes[n]
		for _, e := range g.edges {
			if !e.Touches(name) {
				continue
			}
			o := g.IndexOf(e.Other(name))
			if s.Has(o) && !seen.Has(o) {
				seen = seen.With(o)
				frontier = append(frontier, o)
			}
		}
	}
	return seen == s
}

// Connected reports whether the whole graph is connected. Query graphs
// built from a single query are connected by construction; generated
// graphs may not be.
func (g *Graph) Connected() bool { return g.ConnectedSet(g.AllNodes()) }

// CutEdges returns the edges with one endpoint in s1 and the other in s2.
func (g *Graph) CutEdges(s1, s2 NodeSet) []Edge {
	var out []Edge
	for _, e := range g.edges {
		ui, vi := g.IndexOf(e.U), g.IndexOf(e.V)
		if (s1.Has(ui) && s2.Has(vi)) || (s1.Has(vi) && s2.Has(ui)) {
			out = append(out, e)
		}
	}
	return out
}

// EdgesWithin returns the edges with both endpoints in s.
func (g *Graph) EdgesWithin(s NodeSet) []Edge {
	var out []Edge
	for _, e := range g.edges {
		if s.Has(g.IndexOf(e.U)) && s.Has(g.IndexOf(e.V)) {
			out = append(out, e)
		}
	}
	return out
}

// InducedSubgraph returns the subgraph on the node set s.
func (g *Graph) InducedSubgraph(s NodeSet) *Graph {
	sub := New()
	for i, n := range g.nodes {
		if s.Has(i) {
			sub.MustAddNode(n)
		}
	}
	for _, e := range g.EdgesWithin(s) {
		sub.edges = append(sub.edges, e)
	}
	return sub
}

// Equal reports whether two graphs have the same node set and the same
// edges (kind, orientation for outerjoins, and predicate identity by
// rendered string — predicates are built structurally, so equal strings
// imply equal predicates in practice).
func (g *Graph) Equal(h *Graph) bool {
	if len(g.nodes) != len(h.nodes) || len(g.edges) != len(h.edges) {
		return false
	}
	for _, n := range g.nodes {
		if !h.HasNode(n) {
			return false
		}
	}
	gs := g.edgeStrings()
	hs := h.edgeStrings()
	for i := range gs {
		if gs[i] != hs[i] {
			return false
		}
	}
	return true
}

func (g *Graph) edgeStrings() []string {
	out := make([]string, 0, len(g.edges))
	for _, e := range g.edges {
		u, v := e.U, e.V
		if e.Kind == JoinEdge && u > v {
			u, v = v, u // canonical orientation for undirected edges
		}
		out = append(out, fmt.Sprintf("%s %s %s [%s]", u, e.Kind.arrow(), v, e.Pred))
	}
	sort.Strings(out)
	return out
}

// String renders the graph as one edge per line plus isolated nodes.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph with %d nodes, %d edges\n", len(g.nodes), len(g.edges))
	for _, s := range g.edgeStrings() {
		b.WriteString("  ")
		b.WriteString(s)
		b.WriteByte('\n')
	}
	for _, n := range g.nodes {
		isolated := true
		for _, e := range g.edges {
			if e.Touches(n) {
				isolated = false
				break
			}
		}
		if isolated {
			fmt.Fprintf(&b, "  %s (isolated)\n", n)
		}
	}
	return b.String()
}

// DOT renders the graph in Graphviz dot syntax (outerjoin edges are
// directed, join edges undirected via dir=none).
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph query {\n")
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	for _, e := range g.edges {
		switch e.Kind {
		case OuterEdge:
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.U, e.V, e.Pred.String())
		case SemiEdge:
			fmt.Fprintf(&b, "  %q -> %q [style=dashed, label=%q];\n", e.U, e.V, e.Pred.String())
		default:
			fmt.Fprintf(&b, "  %q -> %q [dir=none, label=%q];\n", e.U, e.V, e.Pred.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}
