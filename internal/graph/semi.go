package graph

import (
	"fmt"

	"freejoin/internal/predicate"
)

// Semijoin edges — the §6.3 outlook, implemented. The paper closes by
// conjecturing that join/semijoin queries admit a free-reorderability
// theorem with "fewer basic transforms" preserving the result, and that
// "semijoin edges in series appear to be an additional forbidden
// subgraph". This file adds the edge kind and the extended niceness test
// IsNiceSemi; the empirical validation that each condition is tight lives
// in package core's tests and in experiment E17.

// AddSemiEdge adds a directed semijoin edge u ~> v: u is the preserved
// (output) side and v the relation the semijoin consumes — after the
// operator, v's attributes are no longer visible. Parallel edges are
// rejected as for outerjoins.
func (g *Graph) AddSemiEdge(u, v string, p predicate.Predicate) error {
	if u == v {
		return fmt.Errorf("graph: self-loop on %s", u)
	}
	if err := g.AddNode(u); err != nil {
		return err
	}
	if err := g.AddNode(v); err != nil {
		return err
	}
	if g.edgeBetween(u, v) >= 0 {
		return fmt.Errorf("graph: parallel edge %s,%s involving a semijoin: graph undefined", u, v)
	}
	g.edges = append(g.edges, Edge{U: u, V: v, Kind: SemiEdge, Pred: p})
	return nil
}

// HasSemiEdges reports whether the graph contains semijoin edges (and is
// therefore outside Theorem 1's scope; use IsNiceSemi).
func (g *Graph) HasSemiEdges() bool {
	for _, e := range g.edges {
		if e.Kind == SemiEdge {
			return true
		}
	}
	return false
}

// WithoutSemiEdges returns a copy of the graph with semijoin edges (and
// the consumed nodes that become isolated) removed — the join/outerjoin
// skeleton the Theorem 1 conditions apply to.
func (g *Graph) WithoutSemiEdges() *Graph {
	keep := map[string]bool{}
	for _, n := range g.nodes {
		keep[n] = true
	}
	out := New()
	// A consumed node stays only if a non-semi edge touches it.
	touched := map[string]bool{}
	for _, e := range g.edges {
		if e.Kind != SemiEdge {
			touched[e.U] = true
			touched[e.V] = true
		}
	}
	consumed := map[string]bool{}
	for _, e := range g.edges {
		if e.Kind == SemiEdge && !touched[e.V] {
			consumed[e.V] = true
		}
	}
	for _, n := range g.nodes {
		if keep[n] && !consumed[n] {
			out.MustAddNode(n)
		}
	}
	for _, e := range g.edges {
		if e.Kind != SemiEdge {
			out.edges = append(out.edges, e)
		}
	}
	return out
}

// IsNiceSemi extends the niceness test to graphs with semijoin edges (the
// §6.3 conjecture, made precise and machine-validated):
//
//  1. with semijoin edges removed, the remaining join/outerjoin graph is
//     nice (a consumed node that carried only its semijoin edge drops out
//     together with the edge);
//  2. the consumed node of every semijoin edge is pendant — its only edge
//     is that semijoin edge. This forbids "semijoin edges in series"
//     (U ~> V ~> W) and semijoins whose consumed relation also joins
//     elsewhere: either way some implementing tree would need the
//     consumed relation's attributes after they are gone;
//  3. the source of a semijoin edge is not null-supplied by an outerjoin:
//     X → Y with Y ~> Z admits the differing trees (X → Y) ⋉ Z and
//     X → (Y ⋉ Z) — padding survives the second but not the first.
//
// When the graph has no semijoin edges this coincides with IsNice.
func (g *Graph) IsNiceSemi() (bool, string) {
	degree := map[string]int{}
	incomingOuter := map[string]bool{}
	for _, e := range g.edges {
		degree[e.U]++
		degree[e.V]++
		if e.Kind == OuterEdge {
			incomingOuter[e.V] = true
		}
	}
	for _, e := range g.edges {
		if e.Kind != SemiEdge {
			continue
		}
		if degree[e.V] != 1 {
			return false, fmt.Sprintf("semijoin-consumed node %s has other edges (series or shared consumption)", e.V)
		}
		if incomingOuter[e.U] {
			return false, fmt.Sprintf("semijoin source %s is null-supplied by an outerjoin", e.U)
		}
	}
	if !g.Connected() {
		return false, "graph is not connected"
	}
	skeleton := g.WithoutSemiEdges()
	if skeleton.NumNodes() == 0 {
		// Degenerate: a graph that is nothing but one semijoin pair.
		return true, ""
	}
	return skeleton.IsNiceLemma1()
}
