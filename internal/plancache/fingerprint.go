// Package plancache implements the prepared-query plan cache: canonical
// fingerprints of query graphs, and an LRU + singleflight cache keyed by
// them with stats-epoch invalidation.
//
// The paper's Theorem 1 is what makes the design sound: every
// implementing tree of a nice query graph with strong predicates
// evaluates to the same result, so the *graph* — not the parse tree the
// user happened to type — is the correct cache key. Two syntactically
// different queries whose graphs coincide may share one optimized plan.
// The fingerprint is therefore computed over a canonical rendering of
// the graph that is invariant under relation order, edge order, join-
// edge orientation, and conjunct order within a predicate.
package plancache

import (
	"fmt"
	"sort"
	"strings"

	"freejoin/internal/graph"
	"freejoin/internal/hashutil"
	"freejoin/internal/predicate"
)

// Fingerprint identifies a query graph (plus caller-supplied planning
// context) canonically. Hash is a 64-bit FNV-1a digest of Canon, used
// for compact display in traces; Canon is the full canonical text and
// is what the cache actually keys on, so hash collisions can never
// alias two distinct queries.
type Fingerprint struct {
	Hash  uint64
	Canon string
}

// String renders the compact hex form used in traces and EXPLAIN.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", f.Hash) }

// Of fingerprints a query graph. The canonical text lists the sorted
// node names, then the edges sorted as lines — join edges with their
// endpoints ordered lexically (they are undirected), outerjoin and
// semijoin edges keeping their direction (it is semantics: the arrow
// points at the null-supplied side) — each labeled with its predicate's
// conjuncts rendered in sorted order. Any extras (canonicalized by the
// caller: residual filters, optimizer configuration) are appended as
// trailing lines. Permuting relations, edges, or conjuncts in the
// source query therefore cannot change the fingerprint.
func Of(g *graph.Graph, extras ...string) Fingerprint {
	var b strings.Builder

	nodes := g.Nodes()
	sort.Strings(nodes)
	b.WriteString("nodes:")
	for _, n := range nodes {
		b.WriteByte(' ')
		b.WriteString(n)
	}
	b.WriteByte('\n')

	lines := make([]string, 0, len(g.Edges()))
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		arrow := "-"
		switch e.Kind {
		case graph.OuterEdge:
			arrow = "->"
		case graph.SemiEdge:
			arrow = "~>"
		default:
			if u > v {
				u, v = v, u
			}
		}
		lines = append(lines, u+" "+arrow+" "+v+" ["+CanonPred(e.Pred)+"]")
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}

	for _, x := range extras {
		b.WriteString(x)
		b.WriteByte('\n')
	}

	canon := b.String()
	h := hashutil.New64()
	h.WriteString(canon)
	return Fingerprint{Hash: h.Sum64(), Canon: canon}
}

// CanonPred renders a predicate with its top-level conjuncts sorted, so
// "R.a = S.a and R.b = S.b" and its reordering fingerprint identically
// (parallel join edges collapse by conjoining in encounter order, which
// the fingerprint must not observe). The optimizer uses it to
// canonicalize pushed-down leaf filters before folding them into the
// fingerprint's extras.
func CanonPred(p predicate.Predicate) string {
	if p == nil {
		return ""
	}
	conj := predicate.Conjuncts(p)
	if len(conj) <= 1 {
		return p.String()
	}
	parts := make([]string, len(conj))
	for i, c := range conj {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, " and ")
}
