package plancache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"freejoin/internal/obs"
)

func fp(s string) Fingerprint { return Fingerprint{Hash: 0, Canon: s} }

func TestCacheHitMiss(t *testing.T) {
	c := New(4)
	calls := 0
	compute := func() (any, error) { calls++; return "plan", nil }

	v, out, err := c.Do(fp("q1"), 1, compute)
	if err != nil || v != "plan" || out != Miss {
		t.Fatalf("first Do = (%v, %v, %v); want (plan, miss, nil)", v, out, err)
	}
	v, out, err = c.Do(fp("q1"), 1, compute)
	if err != nil || v != "plan" || out != Hit {
		t.Fatalf("second Do = (%v, %v, %v); want (plan, hit, nil)", v, out, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times; want 1", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d; want 1", c.Len())
	}
}

// A lookup under a newer stats epoch must not reuse the old plan.
func TestCacheEpochInvalidation(t *testing.T) {
	c := New(4)
	inval0 := obs.PlanCacheInvalidations.Value()
	gen := 0
	compute := func() (any, error) { gen++; return fmt.Sprintf("plan-%d", gen), nil }

	c.Do(fp("q"), 1, compute)
	v, out, _ := c.Do(fp("q"), 2, compute)
	if out != Miss || v != "plan-2" {
		t.Fatalf("epoch-bumped Do = (%v, %v); want (plan-2, miss)", v, out)
	}
	if got := obs.PlanCacheInvalidations.Value() - inval0; got != 1 {
		t.Fatalf("invalidations delta = %d; want 1", got)
	}
	// The refreshed entry now hits under the new epoch.
	if _, out, _ := c.Do(fp("q"), 2, compute); out != Hit {
		t.Fatalf("post-refresh Do outcome = %v; want hit", out)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(2)
	evict0 := obs.PlanCacheEvictions.Value()
	mk := func(s string) func() (any, error) { return func() (any, error) { return s, nil } }

	c.Do(fp("a"), 1, mk("A"))
	c.Do(fp("b"), 1, mk("B"))
	c.Do(fp("a"), 1, mk("A2")) // touch a: b is now LRU
	c.Do(fp("c"), 1, mk("C"))  // evicts b

	if c.Len() != 2 {
		t.Fatalf("Len = %d; want 2", c.Len())
	}
	if _, out, _ := c.Do(fp("a"), 1, mk("A3")); out != Hit {
		t.Fatalf("a should have survived; outcome = %v", out)
	}
	if _, out, _ := c.Do(fp("b"), 1, mk("B2")); out != Miss {
		t.Fatalf("b should have been evicted; outcome = %v", out)
	}
	if got := obs.PlanCacheEvictions.Value() - evict0; got < 1 {
		t.Fatalf("evictions delta = %d; want >= 1", got)
	}
}

// Errors are returned but never cached: the next lookup retries.
func TestCacheErrorNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	fail := func() (any, error) { return nil, boom }
	if _, out, err := c.Do(fp("q"), 1, fail); out != Miss || !errors.Is(err, boom) {
		t.Fatalf("failing Do = (%v, %v)", out, err)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached; Len = %d", c.Len())
	}
	ok := func() (any, error) { return "fine", nil }
	if v, out, err := c.Do(fp("q"), 1, ok); v != "fine" || out != Miss || err != nil {
		t.Fatalf("retry Do = (%v, %v, %v)", v, out, err)
	}
}

// N concurrent identical lookups run compute exactly once; the rest
// coalesce onto the flight. Run with -race.
func TestCacheSingleflight(t *testing.T) {
	c := New(4)
	const n = 32
	var calls atomic.Int64
	gate := make(chan struct{})
	compute := func() (any, error) {
		calls.Add(1)
		<-gate // hold the flight open until every goroutine has arrived
		return "plan", nil
	}

	var started, wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	values := make([]any, n)
	started.Add(n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			started.Done()
			v, out, err := c.Do(fp("q"), 1, compute)
			if err != nil {
				t.Error(err)
			}
			values[i], outcomes[i] = v, out
		}(i)
	}
	started.Wait()
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times; want 1", got)
	}
	misses, coalesced := 0, 0
	for i := range outcomes {
		if values[i] != "plan" {
			t.Fatalf("goroutine %d got %v", i, values[i])
		}
		switch outcomes[i] {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Fatalf("outcomes: %d misses, %d coalesced; want 1, %d", misses, coalesced, n-1)
	}
}

// Flights are scoped per epoch: a lookup under a different epoch must
// not share a plan being optimized against other statistics.
func TestCacheFlightEpochScope(t *testing.T) {
	c := New(4)
	gate := make(chan struct{})
	slow := func() (any, error) { <-gate; return "old", nil }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Do(fp("q"), 1, slow)
	}()

	// Wait until the epoch-1 flight is registered, then look up under
	// epoch 2: it must compute its own plan, not coalesce.
	for c.flightCount() == 0 {
		runtime.Gosched()
	}
	v, out, err := c.Do(fp("q"), 2, func() (any, error) { return "new", nil })
	if err != nil || v != "new" || out != Miss {
		t.Fatalf("epoch-2 Do = (%v, %v, %v); want (new, miss, nil)", v, out, err)
	}
	close(gate)
	wg.Wait()
}

func TestCacheInvalidate(t *testing.T) {
	c := New(4)
	c.Do(fp("a"), 1, func() (any, error) { return 1, nil })
	c.Do(fp("b"), 1, func() (any, error) { return 2, nil })
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("Len after Invalidate = %d; want 0", c.Len())
	}
	if _, out, _ := c.Do(fp("a"), 1, func() (any, error) { return 1, nil }); out != Miss {
		t.Fatalf("post-Invalidate outcome = %v; want miss", out)
	}
}

func TestCacheDefaultCapacity(t *testing.T) {
	c := New(0)
	if c.cap != DefaultCapacity {
		t.Fatalf("cap = %d; want %d", c.cap, DefaultCapacity)
	}
}

// A plan computed against epoch E must not be cached once the catalog
// has moved past E: DoAt re-reads the epoch at insert time and skips the
// insert, so the next lookup re-optimizes instead of serving a plan that
// may mix old and new statistics.
func TestDoAtStaleInsertSkipped(t *testing.T) {
	c := New(4)
	stale0 := obs.PlanCacheStaleSkips.Value()
	var epoch atomic.Uint64
	epoch.Store(1)
	v, out, err := c.DoAt(fp("q"), epoch.Load, func() (any, error) {
		// The catalog changes while the DP runs (a concurrent Add).
		epoch.Store(2)
		return "stale-plan", nil
	})
	if err != nil || out != Miss || v != "stale-plan" {
		t.Fatalf("DoAt = (%v, %v, %v); want (stale-plan, miss, nil)", v, out, err)
	}
	if c.Len() != 0 {
		t.Fatalf("stale plan was cached (Len = %d); want 0", c.Len())
	}
	if got := obs.PlanCacheStaleSkips.Value() - stale0; got != 1 {
		t.Fatalf("stale-skip delta = %d; want 1", got)
	}
	// The next lookup (current epoch) must recompute and cache normally.
	v, out, err = c.DoAt(fp("q"), epoch.Load, func() (any, error) { return "fresh-plan", nil })
	if err != nil || out != Miss || v != "fresh-plan" {
		t.Fatalf("post-skip DoAt = (%v, %v, %v); want (fresh-plan, miss, nil)", v, out, err)
	}
	if _, out, _ = c.DoAt(fp("q"), epoch.Load, func() (any, error) { return "x", nil }); out != Hit {
		t.Fatalf("fresh plan did not hit (outcome %v)", out)
	}
}

// Race-targeted: concurrent epoch bumps and lookups must never let a
// hit observe a plan tagged with an epoch other than the one it was
// computed under. Run with -race.
func TestDoAtConcurrentEpochBumps(t *testing.T) {
	c := New(8)
	var epoch atomic.Uint64
	epoch.Store(1)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the "concurrent Add" driving Table.onChange bumps
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				epoch.Add(1)
				runtime.Gosched()
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v, _, err := c.DoAt(fp("q"), epoch.Load, func() (any, error) {
					// The value records the epoch the "DP" ran under (read
					// after the lookup read, like the real optimizer reading
					// catalog stats).
					return epoch.Load(), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				got := v.(uint64)
				if got > epoch.Load() {
					t.Errorf("plan from the future: computed at %d, now %d", got, epoch.Load())
					return
				}
			}
		}()
	}
	close(stop)
	wg.Wait()
}
