package plancache

import (
	"testing"

	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// FuzzFingerprint decodes an arbitrary byte string into a query-graph
// edge list, builds the graph twice — once as decoded, once with the
// edges reversed, join endpoints flipped, and conjuncts reversed — and
// asserts the two fingerprints are identical. This is the fingerprint's
// core contract (invariance under every rewriting that preserves the
// graph) exercised over machine-generated shapes instead of the
// hand-picked ones in TestFingerprintInvariance.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{0x01})
	f.Add([]byte{0x12, 0x83, 0x24})
	f.Add([]byte{0x01, 0x12, 0x23, 0x34, 0x45, 0x56})
	f.Add([]byte{0x81, 0x92, 0xa3, 0x10, 0x21})
	f.Add([]byte{0xff, 0x00, 0x77, 0x31, 0x13})

	names := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode: each byte is one candidate edge. Low nibble picks the
		// endpoints (u = bits 0-2, v = u XOR (1 + bit 3)), the high bit
		// picks the kind, bits 4-6 vary the predicate columns. Parallel
		// edges (same unordered pair) are dropped so both constructions
		// below succeed deterministically.
		type spec struct {
			u, v  string
			outer bool
			conj  []predicate.Predicate
		}
		var specs []spec
		seen := map[[2]string]bool{}
		for _, b := range data {
			ui := int(b & 0x07)
			vi := ui ^ (1 + int(b>>3&0x01))
			if vi >= len(names) {
				vi %= len(names)
			}
			if ui == vi {
				continue
			}
			u, v := names[ui], names[vi]
			ku, kv := u, v
			if ku > kv {
				ku, kv = kv, ku
			}
			if seen[[2]string{ku, kv}] {
				continue
			}
			seen[[2]string{ku, kv}] = true
			col1 := []string{"a", "b"}[b>>4&0x01]
			col2 := []string{"a", "b"}[b>>5&0x01]
			conj := []predicate.Predicate{
				predicate.Eq(relation.Attr{Rel: u, Name: col1}, relation.Attr{Rel: v, Name: col1}),
			}
			if b>>6&0x01 == 1 && col2 != col1 {
				conj = append(conj,
					predicate.Eq(relation.Attr{Rel: u, Name: col2}, relation.Attr{Rel: v, Name: col2}))
			}
			specs = append(specs, spec{u: u, v: v, outer: b&0x80 != 0, conj: conj})
		}
		if len(specs) == 0 {
			return
		}

		build := func(reversed bool) *graph.Graph {
			g := graph.New()
			order := make([]spec, len(specs))
			copy(order, specs)
			if reversed {
				for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
					order[i], order[j] = order[j], order[i]
				}
			}
			for _, s := range order {
				conj := make([]predicate.Predicate, len(s.conj))
				copy(conj, s.conj)
				u, v := s.u, s.v
				if reversed && !s.outer {
					u, v = v, u // join edges are undirected
					for i, j := 0, len(conj)-1; i < j; i, j = i+1, j-1 {
						conj[i], conj[j] = conj[j], conj[i]
					}
				}
				var err error
				if s.outer {
					err = g.AddOuterEdge(u, v, predicate.NewAnd(conj...))
				} else {
					err = g.AddJoinEdge(u, v, predicate.NewAnd(conj...))
				}
				if err != nil {
					t.Fatalf("edge %s-%s: %v", u, v, err)
				}
			}
			return g
		}

		f1, f2 := Of(build(false)), Of(build(true))
		if f1 != f2 {
			t.Fatalf("fingerprint not invariant under reconstruction:\n--- forward ---\n%s--- reversed ---\n%s", f1.Canon, f2.Canon)
		}
		// Self-consistency: the hex form is derived from the hash alone.
		if f1.String() != f2.String() || len(f1.String()) != 16 {
			t.Fatalf("hex form broken: %q vs %q", f1, f2)
		}
	})
}
