package plancache

import (
	"container/list"
	"sync"
	"time"

	"freejoin/internal/obs"
)

// Outcome classifies what a Cache.Do lookup did.
type Outcome int

// Lookup outcomes. Miss ran the compute function and (on success)
// populated the cache; Hit returned a resident entry; Coalesced waited
// for a concurrent identical miss and shared its result (singleflight).
const (
	Miss Outcome = iota
	Hit
	Coalesced
)

// String returns the outcome name as rendered in optimizer traces.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// DefaultCapacity is the entry bound used when New is given a
// non-positive capacity.
const DefaultCapacity = 128

// Cache is a process-wide plan cache: an LRU over canonical query
// fingerprints with singleflight coalescing and stats-epoch
// invalidation. Values are opaque (the optimizer stores *Plan; keeping
// the type out of this package avoids an import cycle) and must be
// immutable once cached — every hit shares the same value.
//
// Entries are keyed by the fingerprint's full canonical string, not its
// 64-bit hash, so two queries can collide only by being the same query.
// Each entry remembers the stats epoch it was optimized under; a lookup
// whose epoch differs drops the entry and re-optimizes, so stale
// cardinalities can never pin an old plan.
type Cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element // canon -> element in lru
	lru     *list.List               // front = most recently used; values are *entry
	flights map[string]*flight       // canon+epoch -> in-progress optimization
}

type entry struct {
	canon string
	epoch uint64
	value any
}

type flight struct {
	done  chan struct{}
	value any
	err   error
}

// New returns a cache bounded to capacity entries (DefaultCapacity if
// capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

// Cap returns the entry bound the cache was created with.
func (c *Cache) Cap() int {
	return c.cap
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Invalidate drops every resident entry (in-flight optimizations are
// unaffected; they complete and re-populate under their own epoch).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	n := c.lru.Len()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.mu.Unlock()
	if n > 0 {
		obs.PlanCacheInvalidations.Add(int64(n))
		obs.PlanCacheEntries.Add(int64(-n))
	}
}

// flightKey scopes singleflight coalescing to one (query, epoch) pair:
// a lookup under a newer epoch must not share a plan being optimized
// against stale statistics.
func flightKey(canon string, epoch uint64) string {
	var buf [20]byte
	b := append(buf[:0], canon...)
	b = append(b, 0)
	for i := 0; i < 8; i++ {
		b = append(b, byte(epoch>>(8*i)))
	}
	return string(b)
}

// Do looks up the plan for fp at the given fixed stats epoch, calling
// compute to produce it on a miss. Concurrent Do calls with the same
// fingerprint and epoch run compute exactly once; the others block and
// share the result (including an error — an error is never cached, so
// the next lookup retries). The returned Outcome says which path was
// taken. The cached value is shared across callers and must be treated
// as immutable.
func (c *Cache) Do(fp Fingerprint, epoch uint64, compute func() (any, error)) (any, Outcome, error) {
	return c.DoAt(fp, func() uint64 { return epoch }, compute)
}

// DoAt is Do against a live epoch source (typically
// storage.Catalog.StatsEpoch). The epoch is read once before the lookup
// and re-read after compute returns: a plan computed against epoch E is
// cached only if the catalog is still at E at insert time. Without the
// revalidation, a catalog change landing between the lookup and the
// insert (a concurrent Add's Table.onChange bump) would cache a plan
// computed against partly stale statistics under the new epoch, serving
// it until the next bump. The caller still receives the computed plan —
// it is correct to execute, merely not worth caching.
func (c *Cache) DoAt(fp Fingerprint, epochAt func() uint64, compute func() (any, error)) (any, Outcome, error) {
	start := time.Now()
	epoch := epochAt()
	fkey := flightKey(fp.Canon, epoch)

	c.mu.Lock()
	if el, ok := c.entries[fp.Canon]; ok {
		e := el.Value.(*entry)
		if e.epoch == epoch {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			obs.PlanCacheHits.Inc()
			obs.PlanCacheHitLatency.ObserveDuration(time.Since(start))
			return e.value, Hit, nil
		}
		// The world changed since this plan was optimized: drop it and
		// fall through to a fresh optimization.
		c.lru.Remove(el)
		delete(c.entries, fp.Canon)
		obs.PlanCacheInvalidations.Inc()
		obs.PlanCacheEntries.Dec()
	}
	if fl, ok := c.flights[fkey]; ok {
		c.mu.Unlock()
		<-fl.done
		obs.PlanCacheCoalesced.Inc()
		return fl.value, Coalesced, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[fkey] = fl
	c.mu.Unlock()

	value, err := compute()
	fl.value, fl.err = value, err

	c.mu.Lock()
	if c.flights[fkey] == fl {
		delete(c.flights, fkey)
	}
	if err == nil {
		if now := epochAt(); now == epoch {
			c.insertLocked(fp.Canon, epoch, value)
		} else {
			// The catalog moved while compute ran; the result may reflect a
			// mix of old and new statistics. Hand it to the caller but keep
			// it out of the cache.
			obs.PlanCacheStaleSkips.Inc()
		}
	}
	c.mu.Unlock()
	close(fl.done)
	obs.PlanCacheMisses.Inc()
	return value, Miss, err
}

// insertLocked adds or replaces an entry and enforces the LRU bound.
// Callers hold c.mu.
func (c *Cache) insertLocked(canon string, epoch uint64, value any) {
	if el, ok := c.entries[canon]; ok {
		// A racing Do under another epoch populated first; newest wins.
		el.Value = &entry{canon: canon, epoch: epoch, value: value}
		c.lru.MoveToFront(el)
		return
	}
	c.entries[canon] = c.lru.PushFront(&entry{canon: canon, epoch: epoch, value: value})
	obs.PlanCacheEntries.Inc()
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*entry).canon)
		obs.PlanCacheEvictions.Inc()
		obs.PlanCacheEntries.Dec()
	}
}
