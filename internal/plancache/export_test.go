package plancache

// flightCount exposes the in-progress optimization count to tests.
func (c *Cache) flightCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.flights)
}
