package plancache

import (
	"strings"
	"testing"

	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

func eq(u, ua, v, va string) predicate.Predicate {
	return predicate.Eq(relation.Attr{Rel: u, Name: ua}, relation.Attr{Rel: v, Name: va})
}

// Permuting node insertion order, edge insertion order, join-edge
// endpoint orientation, and conjunct order must not change the
// fingerprint: the graph is the key, not the way it was written down.
func TestFingerprintInvariance(t *testing.T) {
	g1 := graph.New()
	g1.MustAddNode("R")
	g1.MustAddNode("S")
	g1.MustAddNode("T")
	if err := g1.AddJoinEdge("R", "S", predicate.NewAnd(eq("R", "a", "S", "a"), eq("R", "b", "S", "b"))); err != nil {
		t.Fatal(err)
	}
	if err := g1.AddOuterEdge("S", "T", eq("S", "a", "T", "a")); err != nil {
		t.Fatal(err)
	}

	// Same graph: nodes in another order, the join edge flipped, its
	// conjuncts swapped, the edges added in reverse.
	g2 := graph.New()
	g2.MustAddNode("T")
	g2.MustAddNode("S")
	if err := g2.AddOuterEdge("S", "T", eq("S", "a", "T", "a")); err != nil {
		t.Fatal(err)
	}
	if err := g2.AddJoinEdge("S", "R", predicate.NewAnd(eq("R", "b", "S", "b"), eq("R", "a", "S", "a"))); err != nil {
		t.Fatal(err)
	}

	f1, f2 := Of(g1), Of(g2)
	if f1 != f2 {
		t.Fatalf("fingerprints differ for the same graph:\n%s\nvs\n%s", f1.Canon, f2.Canon)
	}
	if f1.String() != f2.String() {
		t.Fatalf("hex forms differ: %s vs %s", f1, f2)
	}
}

// Outerjoin direction is semantics (it points at the null-supplied
// side) and must distinguish fingerprints; so must the join/outerjoin
// kind and the predicate itself.
func TestFingerprintSensitivity(t *testing.T) {
	build := func(f func(g *graph.Graph)) Fingerprint {
		g := graph.New()
		g.MustAddNode("R")
		g.MustAddNode("S")
		f(g)
		return Of(g)
	}
	base := build(func(g *graph.Graph) { g.AddOuterEdge("R", "S", eq("R", "a", "S", "a")) })
	flipped := build(func(g *graph.Graph) { g.AddOuterEdge("S", "R", eq("R", "a", "S", "a")) })
	joined := build(func(g *graph.Graph) { g.AddJoinEdge("R", "S", eq("R", "a", "S", "a")) })
	otherPred := build(func(g *graph.Graph) { g.AddOuterEdge("R", "S", eq("R", "b", "S", "b")) })

	for name, other := range map[string]Fingerprint{
		"flipped outerjoin":  flipped,
		"join vs outerjoin":  joined,
		"different predicate": otherPred,
	} {
		if base == other {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}
}

// Extras participate in the key (residual filters, optimizer config).
func TestFingerprintExtras(t *testing.T) {
	g := graph.New()
	g.MustAddNode("R")
	g.MustAddNode("S")
	if err := g.AddJoinEdge("R", "S", eq("R", "a", "S", "a")); err != nil {
		t.Fatal(err)
	}
	plain := Of(g)
	withExtra := Of(g, "filter R: R.a = 1")
	if plain == withExtra {
		t.Fatal("extra did not change the fingerprint")
	}
	if !strings.Contains(withExtra.Canon, "filter R: R.a = 1") {
		t.Fatalf("extra missing from canon:\n%s", withExtra.Canon)
	}
}
