package core

import (
	"math/rand"
	"strings"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/workload"
)

func eqp(u, v string) predicate.Predicate {
	return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
}

func TestAnalyzeNiceStrongQuery(t *testing.T) {
	// ((R - S) -> T): nice graph, strong (equality) outerjoin predicate.
	q := expr.NewOuter(
		expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		expr.NewLeaf("T"), eqp("S", "T"))
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Free || !a.Nice || !a.StrongOK {
		t.Fatalf("analysis = %+v", a)
	}
	if !strings.Contains(a.String(), "freely reorderable") {
		t.Errorf("String = %q", a.String())
	}
	if ok, reason := FreelyReorderable(q); !ok || reason != "" {
		t.Errorf("FreelyReorderable = %v, %q", ok, reason)
	}
}

func TestAnalyzeNonNiceQuery(t *testing.T) {
	// Example 2's graph: R -> (S - T).
	q := expr.NewOuter(expr.NewLeaf("R"),
		expr.NewJoin(expr.NewLeaf("S"), expr.NewLeaf("T"), eqp("S", "T")),
		eqp("R", "S"))
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Free || a.Nice {
		t.Fatalf("Example 2 query must not be nice: %+v", a)
	}
	if a.StrongOK != true {
		t.Error("its predicate is strong; only topology fails")
	}
	if ok, reason := FreelyReorderable(q); ok || !strings.Contains(reason, "not nice") {
		t.Errorf("FreelyReorderable = %v, %q", ok, reason)
	}
}

func TestAnalyzeWeakPredicate(t *testing.T) {
	// R -> S with "R.a = S.a or S.a is null": nice topology, weak predicate.
	q := expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"),
		workload.NonStrongPredicate("R", "S"))
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Free || a.StrongOK || !a.Nice {
		t.Fatalf("analysis = %+v", a)
	}
	if len(a.WeakEdges) != 1 {
		t.Errorf("WeakEdges = %v", a.WeakEdges)
	}
	if !strings.Contains(a.String(), "non-strong") {
		t.Errorf("String = %q", a.String())
	}
}

func TestAnalyzeUndefinedGraph(t *testing.T) {
	q := expr.NewAnti(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S"))
	if _, err := Analyze(q); err == nil {
		t.Fatal("antijoin query has no graph")
	}
	if ok, reason := FreelyReorderable(q); ok || reason == "" {
		t.Error("FreelyReorderable must surface the graph error")
	}
}

// TestTheorem1AllITsEqual is the paper's main theorem, machine-checked
// (DESIGN.md E10): for random nice graphs with strong predicates, every
// implementing tree evaluates to the same result on random databases.
func TestTheorem1AllITsEqual(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	verified := 0
	for trial := 0; trial < 150; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		if a := AnalyzeGraph(g); !a.Free {
			t.Fatalf("trial %d: generator produced non-free graph: %s", trial, a)
		}
		db := workload.RandomDB(rnd, g, 5)
		res, err := Verify(g, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.AllEqual {
			t.Fatalf("trial %d: THEOREM VIOLATION\ngraph:\n%v\ntree A %s:\n%v\ntree B %s:\n%v",
				trial, g, res.WitnessA, res.ResultA, res.WitnessB, res.ResultB)
		}
		verified += res.ITCount
	}
	if verified < 500 {
		t.Errorf("only %d tree evaluations verified; generator too small", verified)
	}
}

// TestNonNiceCounterexamples: for graphs violating niceness, some
// database distinguishes two implementing trees. (Not every non-nice
// graph instance on every database differs, so we search.)
func TestNonNiceCounterexamples(t *testing.T) {
	build := func() []*graph.Graph {
		// X -> Y - Z.
		g1 := graph.New()
		if err := g1.AddOuterEdge("X", "Y", eqp("X", "Y")); err != nil {
			t.Fatal(err)
		}
		if err := g1.AddJoinEdge("Y", "Z", eqp("Y", "Z")); err != nil {
			t.Fatal(err)
		}
		// X -> Y <- Z.
		g2 := graph.New()
		if err := g2.AddOuterEdge("X", "Y", eqp("X", "Y")); err != nil {
			t.Fatal(err)
		}
		if err := g2.AddOuterEdge("Z", "Y", eqp("Z", "Y")); err != nil {
			t.Fatal(err)
		}
		return []*graph.Graph{g1, g2}
	}
	rnd := rand.New(rand.NewSource(5))
	for gi, g := range build() {
		if ok, _ := g.IsNice(); ok {
			t.Fatalf("graph %d should not be nice", gi)
		}
		found := false
		for trial := 0; trial < 400 && !found; trial++ {
			db := workload.RandomDB(rnd, g, 4)
			res, err := Verify(g, db)
			if err != nil {
				t.Fatal(err)
			}
			if !res.AllEqual {
				found = true
			}
		}
		if !found {
			t.Errorf("graph %d: no counterexample database found — non-niceness should matter", gi)
		}
	}
}

// TestWeakPredicateCounterexample: nice topology but a non-strong
// predicate admits differing implementing trees (Example 3 generalized).
func TestWeakPredicateCounterexample(t *testing.T) {
	g := graph.New()
	if err := g.AddOuterEdge("X", "Y", eqp("X", "Y")); err != nil {
		t.Fatal(err)
	}
	if err := g.AddOuterEdge("Y", "Z", workload.NonStrongPredicate("Z", "Y")); err != nil {
		t.Fatal(err)
	}
	if ok, _ := g.IsNice(); !ok {
		t.Fatal("topology is nice; only the predicate is weak")
	}
	if a := AnalyzeGraph(g); a.Free || a.StrongOK {
		t.Fatal("analysis must flag the weak predicate")
	}
	rnd := rand.New(rand.NewSource(6))
	found := false
	for trial := 0; trial < 500 && !found; trial++ {
		db := workload.RandomDB(rnd, g, 4)
		res, err := Verify(g, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllEqual {
			found = true
		}
	}
	if !found {
		t.Error("no counterexample found for the weak predicate")
	}
}

// TestLemma2AllBTsPreserve (E10 support): on nice graphs with strong
// predicates, every *applicable* basic transform preserves the result.
func TestLemma2AllBTsPreserve(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 80; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		db := workload.RandomDB(rnd, g, 5)
		for _, it := range its {
			want, err := it.Eval(db)
			if err != nil {
				t.Fatal(err)
			}
			for _, bt := range expr.ApplicableBTs(it) {
				got, err := bt.Result.Eval(db)
				if err != nil {
					t.Fatal(err)
				}
				if !got.EqualBag(want) {
					t.Fatalf("trial %d: BT %v not result-preserving:\nfrom %s\nto %s",
						trial, bt.Kind, it.StringWithPreds(), bt.Result.StringWithPreds())
				}
				checked++
			}
		}
	}
	if checked < 300 {
		t.Errorf("only %d BTs checked", checked)
	}
}

// TestLemma3BTClosure (E11): on nice graphs, the BT closure of any IT is
// the complete IT set — any tree can be obtained from any other.
func TestLemma3BTClosure(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		all, err := expr.EnumerateITs(g, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(all) > 500 {
			continue // keep the BFS cheap
		}
		start := all[rnd.Intn(len(all))]
		cl, err := expr.Closure(start, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if len(cl) != len(all) {
			t.Fatalf("trial %d: closure %d != IT set %d for\n%v", trial, len(cl), len(all), g)
		}
		for _, it := range all {
			if _, ok := cl[it.StringWithPreds()]; !ok {
				t.Fatalf("trial %d: IT unreachable by BTs: %s", trial, it.StringWithPreds())
			}
		}
	}
}

// TestVerifySample: the statistical verifier agrees with the exhaustive
// one on nice graphs, finds counterexamples on non-nice ones, and scales
// to graphs beyond the exhaustive cap.
func TestVerifySample(t *testing.T) {
	rnd := rand.New(rand.NewSource(44))
	// Positive, over a big chain where exhaustive Verify refuses.
	g := workload.JoinChainGraph(12)
	if _, err := Verify(g, expr.DB{}); err == nil {
		t.Fatal("precondition: chain-12 exceeds the exhaustive cap")
	}
	db := workload.RandomDB(rnd, g, 4)
	res, err := VerifySample(g, db, 20, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllEqual || res.ITCount != 20 {
		t.Fatalf("sample verify on nice chain: %+v", res)
	}

	// Negative: Example 2's graph — sampling finds a counterexample on
	// some database.
	bad := graph.New()
	if err := bad.AddOuterEdge("X", "Y", eqp("X", "Y")); err != nil {
		t.Fatal(err)
	}
	if err := bad.AddJoinEdge("Y", "Z", eqp("Y", "Z")); err != nil {
		t.Fatal(err)
	}
	found := false
	for trial := 0; trial < 300 && !found; trial++ {
		db := workload.RandomDB(rnd, bad, 4)
		res, err := VerifySample(bad, db, 12, rnd)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllEqual {
			found = true
		}
	}
	if !found {
		t.Error("sampling should find the Example 2 counterexample")
	}
	// Default k.
	if res, err := VerifySample(g, db, 0, rnd); err != nil || res.ITCount != 16 {
		t.Errorf("default sample size: %+v %v", res, err)
	}
	// Missing table surfaces as an error.
	if _, err := VerifySample(g, expr.DB{}, 4, rnd); err == nil {
		t.Error("missing relations must error")
	}
}

func TestVerifyCapAndErrors(t *testing.T) {
	// A big chain exceeds the IT cap.
	g := workload.JoinChainGraph(12)
	if _, err := Verify(g, expr.DB{}); err == nil {
		t.Error("verification cap must trigger")
	}
	// Unknown relation surfaces as an eval error.
	g2 := workload.JoinChainGraph(2)
	if _, err := Verify(g2, expr.DB{}); err == nil {
		t.Error("missing relations must error")
	}
	// Disconnected graph.
	g3 := graph.New()
	g3.MustAddNode("R")
	g3.MustAddNode("S")
	if _, err := Verify(g3, expr.DB{}); err == nil {
		t.Error("disconnected graph must error")
	}
}

func TestVerifyQuery(t *testing.T) {
	q := expr.NewOuter(
		expr.NewJoin(expr.NewLeaf("A"), expr.NewLeaf("B"), eqp("A", "B")),
		expr.NewLeaf("C"), eqp("B", "C"))
	rnd := rand.New(rand.NewSource(9))
	db := expr.DB{
		"A": workload.RandomRelation(rnd, "A", 5),
		"B": workload.RandomRelation(rnd, "B", 5),
		"C": workload.RandomRelation(rnd, "C", 5),
	}
	res, err := VerifyQuery(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllEqual || res.ITCount == 0 {
		t.Errorf("result = %+v", res)
	}
	bad := expr.NewAnti(expr.NewLeaf("A"), expr.NewLeaf("B"), eqp("A", "B"))
	if _, err := VerifyQuery(bad, db); err == nil {
		t.Error("undefined graph must error")
	}
}
