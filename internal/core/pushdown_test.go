package core

import (
	"math/rand"
	"strings"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/workload"
)

func restOn(rel string, v int64) predicate.Predicate {
	return predicate.EqConst(relation.A(rel, "a"), relation.Int(v))
}

func TestPushThroughJoin(t *testing.T) {
	q := expr.NewRestrict(
		expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		predicate.NewAnd(restOn("R", 1), restOn("S", 2)))
	got := PushRestrictions(q)
	s := got.StringWithPreds()
	if got.Op != expr.Join {
		t.Fatalf("top restrict should vanish: %s", s)
	}
	if got.Left.Op != expr.Restrict || got.Right.Op != expr.Restrict {
		t.Fatalf("conjuncts should sink to both sides: %s", s)
	}
}

func TestPushThroughOuterjoinPreservedOnly(t *testing.T) {
	q := expr.NewRestrict(
		expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		predicate.NewAnd(restOn("R", 1), restOn("S", 2)))
	got := PushRestrictions(q)
	// R-conjunct sinks to the preserved side; S-conjunct stays above.
	if got.Op != expr.Restrict {
		t.Fatalf("null-side conjunct must stay above: %s", got.StringWithPreds())
	}
	if !strings.Contains(got.Pred.String(), "S.a") {
		t.Errorf("staying conjunct = %v", got.Pred)
	}
	inner := got.Left
	if inner.Op != expr.LeftOuter || inner.Left.Op != expr.Restrict {
		t.Fatalf("preserved-side conjunct did not sink: %s", got.StringWithPreds())
	}
}

func TestPushThroughRightOuter(t *testing.T) {
	q := expr.NewRestrict(
		expr.NewRightOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		restOn("S", 1)) // S is preserved under RightOuter
	got := PushRestrictions(q)
	if got.Op != expr.RightOuter || got.Right.Op != expr.Restrict {
		t.Fatalf("preserved-right conjunct did not sink: %s", got.StringWithPreds())
	}
}

func TestPushMergesCrossConjunctIntoJoin(t *testing.T) {
	cross := predicate.Cmp(predicate.LtOp,
		predicate.Col(relation.A("R", "a")), predicate.Col(relation.A("S", "a")))
	q := expr.NewRestrict(
		expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		cross)
	got := PushRestrictions(q)
	if got.Op != expr.Join {
		t.Fatalf("cross conjunct should merge into the join: %s", got.StringWithPreds())
	}
	if !strings.Contains(got.Pred.String(), "R.a < S.a") {
		t.Errorf("join predicate = %v", got.Pred)
	}
}

func TestPushNestedRestricts(t *testing.T) {
	// σ[R](σ[S](R - S)) collapses and distributes both conjuncts.
	q := expr.NewRestrict(
		expr.NewRestrict(
			expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
			restOn("S", 2)),
		restOn("R", 1))
	got := PushRestrictions(q)
	if got.Op != expr.Join || got.Left.Op != expr.Restrict || got.Right.Op != expr.Restrict {
		t.Fatalf("nested restricts did not distribute: %s", got.StringWithPreds())
	}
}

func TestPushKeepsAboveProjectAndOtherOps(t *testing.T) {
	qp := expr.NewRestrict(
		expr.NewProject(expr.NewLeaf("R"), []relation.Attr{relation.A("R", "a")}, false),
		restOn("R", 1))
	if got := PushRestrictions(qp); got.Op != expr.Restrict || got.Left.Op != expr.Project {
		t.Fatalf("restrict must stay above project: %s", got.StringWithPreds())
	}
	qa := expr.NewRestrict(
		expr.NewAnti(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		restOn("R", 1))
	if got := PushRestrictions(qa); got.Op != expr.Restrict || got.Left.Op != expr.LeftAnti {
		t.Fatalf("restrict must stay above antijoin: %s", got.StringWithPreds())
	}
}

// TestPushdownPreservesResults: randomized queries with layered
// restrictions; pushdown (optionally after Simplify) never changes the
// result.
func TestPushdownPreservesResults(t *testing.T) {
	rnd := rand.New(rand.NewSource(51))
	pushedSomething := false
	for trial := 0; trial < 400; trial++ {
		g := workload.RandomNiceGraph(rnd, 1+rnd.Intn(3), rnd.Intn(3))
		its, err := expr.EnumerateITs(g, true)
		if err != nil {
			t.Fatal(err)
		}
		q := its[rnd.Intn(len(its))]
		rels := q.Relations()
		// Layer 1-2 restrictions over random relations.
		for k := 1 + rnd.Intn(2); k > 0; k-- {
			rel := rels[rnd.Intn(len(rels))]
			q = expr.NewRestrict(q, restOn(rel, int64(rnd.Intn(3))))
		}
		db := workload.RandomDB(rnd, g, 5)
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		for _, withSimplify := range []bool{false, true} {
			in := q
			if withSimplify {
				in, _ = Simplify(in, SimplifyOptions{})
			}
			pushed := PushRestrictions(in)
			if pushed.StringWithPreds() != in.StringWithPreds() {
				pushedSomething = true
			}
			got, err := pushed.Eval(db)
			if err != nil {
				t.Fatalf("trial %d: %v\nq=%s\npushed=%s", trial, err,
					q.StringWithPreds(), pushed.StringWithPreds())
			}
			if !got.EqualBag(want) {
				t.Fatalf("trial %d: pushdown changed the result\nq=%s\npushed=%s",
					trial, q.StringWithPreds(), pushed.StringWithPreds())
			}
		}
	}
	if !pushedSomething {
		t.Error("pushdown never fired")
	}
}

// TestSimplifyThenPushSinksThroughConvertedOuterjoin: the §4 pipeline —
// a strong restriction over the null-supplied side first converts the
// outerjoin (Simplify), then sinks through the now-regular join
// (PushRestrictions).
func TestSimplifyThenPushSinksThroughConvertedOuterjoin(t *testing.T) {
	q := expr.NewRestrict(
		expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eqp("R", "S")),
		restOn("S", 1))
	simplified, n := Simplify(q, SimplifyOptions{})
	if n != 1 {
		t.Fatal("simplify should convert")
	}
	pushed := PushRestrictions(simplified)
	if pushed.Op != expr.Join || pushed.Right.Op != expr.Restrict {
		t.Fatalf("restriction did not reach the base table: %s", pushed.StringWithPreds())
	}
}
