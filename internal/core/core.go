// Package core is the library's public heart: it implements the paper's
// free-reorderability theorem (Theorem 1) as a decision procedure,
// brute-force verification of reorderability by exhaustive implementing-
// tree evaluation, the §4 simplification of outerjoins under strong
// restrictions, and the §6.2 generalized-outerjoin reassociation for
// queries outside the freely-reorderable class.
package core

import (
	"fmt"
	"math/rand"
	"strings"

	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// Analysis is the outcome of checking a query or graph against the
// theorem's two preconditions.
type Analysis struct {
	Graph *graph.Graph

	// Nice reports whether the graph satisfies the topology condition
	// (connected join core with outward outerjoin trees); NiceReason
	// explains a failure in Lemma 1 terms.
	Nice       bool
	NiceReason string

	// StrongOK reports whether every outerjoin predicate is provably
	// strong with respect to the attributes it references from the
	// null-supplied relation; WeakEdges lists the offenders.
	StrongOK  bool
	WeakEdges []graph.Edge

	// Free is the theorem's conclusion: Nice && StrongOK implies every
	// implementing tree of Graph evaluates to the same result.
	Free bool

	// SemiExtension is set when the graph contains semijoin edges, so the
	// topology condition used was IsNiceSemi — the §6.3 extension
	// validated empirically in this library — rather than Theorem 1's
	// nice-graph test.
	SemiExtension bool
}

// String summarizes the analysis.
func (a *Analysis) String() string {
	var b strings.Builder
	if a.Free {
		if a.SemiExtension {
			b.WriteString("freely reorderable (nice graph with pendant semijoins — §6.3 extension — and strong outerjoin predicates)")
		} else {
			b.WriteString("freely reorderable (nice graph, strong outerjoin predicates)")
		}
		return b.String()
	}
	b.WriteString("NOT provably freely reorderable:")
	if !a.Nice {
		fmt.Fprintf(&b, " graph is not nice (%s);", a.NiceReason)
	}
	if !a.StrongOK {
		b.WriteString(" non-strong outerjoin predicate(s):")
		for _, e := range a.WeakEdges {
			fmt.Fprintf(&b, " [%s]", e)
		}
	}
	return b.String()
}

// AnalyzeGraph checks the theorem's preconditions on a query graph.
func AnalyzeGraph(g *graph.Graph) *Analysis {
	a := &Analysis{Graph: g, StrongOK: true}
	if g.HasSemiEdges() {
		a.SemiExtension = true
		a.Nice, a.NiceReason = g.IsNiceSemi()
	} else {
		a.Nice, a.NiceReason = g.IsNice()
	}
	for _, e := range g.Edges() {
		if e.Kind != graph.OuterEdge {
			continue
		}
		// Strong w.r.t. the set of attributes the predicate references
		// from the null-supplied relation (the §2 convention).
		refs := relation.NewAttrSet()
		for attr := range e.Pred.Attrs() {
			if attr.Rel == e.V {
				refs.Add(attr)
			}
		}
		if !predicate.StrongWRT(e.Pred, refs) {
			a.StrongOK = false
			a.WeakEdges = append(a.WeakEdges, e)
		}
	}
	a.Free = a.Nice && a.StrongOK
	return a
}

// Analyze derives graph(q) and checks the theorem's preconditions. The
// error is non-nil when the graph is undefined (see expr.GraphOf), in
// which case the query is outside the theory's scope entirely.
func Analyze(q *expr.Node) (*Analysis, error) {
	g, err := expr.GraphOf(q)
	if err != nil {
		return nil, err
	}
	return AnalyzeGraph(g), nil
}

// FreelyReorderable reports whether q is provably freely reorderable, with
// a reason when it is not. It is the one-call form of Analyze.
func FreelyReorderable(q *expr.Node) (bool, string) {
	a, err := Analyze(q)
	if err != nil {
		return false, err.Error()
	}
	if a.Free {
		return true, ""
	}
	return false, a.String()
}

// VerifyResult reports a brute-force reorderability check: every
// implementing tree of the graph evaluated on one database.
type VerifyResult struct {
	ITCount  int
	AllEqual bool
	// On disagreement, two witness trees and their differing results.
	WitnessA, WitnessB *expr.Node
	ResultA, ResultB   *relation.Relation
	// A semijoin graph can admit an implementing tree that is not even
	// evaluable (a predicate references attributes a semijoin consumed);
	// such a tree also falsifies free reorderability.
	InvalidTree *expr.Node
	InvalidErr  error
}

// maxVerifyITs caps exhaustive verification; graphs beyond this many ITs
// should be checked statistically instead.
const maxVerifyITs = 4096

// Verify exhaustively evaluates every implementing tree of g on src and
// compares results pairwise (by bag equality over the padded union
// scheme). It is the executable counterpart of the definition of free
// reorderability — and the test oracle for Theorem 1.
func Verify(g *graph.Graph, src expr.Source) (*VerifyResult, error) {
	count, err := expr.CountITs(g, false)
	if err != nil {
		return nil, err
	}
	if count > maxVerifyITs {
		return nil, fmt.Errorf("core: %d implementing trees exceed the verification cap %d", count, maxVerifyITs)
	}
	its, err := expr.EnumerateITs(g, false)
	if err != nil {
		return nil, err
	}
	res := &VerifyResult{ITCount: len(its), AllEqual: true}
	var first *relation.Relation
	var firstTree *expr.Node
	for _, it := range its {
		if err := expr.CheckVisibility(it); err != nil {
			res.AllEqual = false
			res.InvalidTree = it
			res.InvalidErr = err
			return res, nil
		}
		out, err := it.Eval(src)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s: %w", it, err)
		}
		if first == nil {
			first, firstTree = out, it
			continue
		}
		if !out.EqualBag(first) {
			res.AllEqual = false
			res.WitnessA, res.WitnessB = firstTree, it
			res.ResultA, res.ResultB = first, out
			return res, nil
		}
	}
	return res, nil
}

// VerifySample is the statistical form of Verify for graphs whose IT
// space exceeds the exhaustive cap: it evaluates k implementing trees
// sampled uniformly from the modulo-reversal enumeration (plus random
// reversals) and compares them pairwise. A clean result is evidence, not
// proof; a disagreement is a definitive counterexample.
func VerifySample(g *graph.Graph, src expr.Source, k int, rnd *rand.Rand) (*VerifyResult, error) {
	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 16
	}
	res := &VerifyResult{AllEqual: true}
	var first *relation.Relation
	var firstTree *expr.Node
	for i := 0; i < k; i++ {
		it := its[rnd.Intn(len(its))]
		// Walk a few random basic transforms to also cover operand orders
		// and shapes the canonical enumeration normalizes away.
		for r := rnd.Intn(3); r > 0; r-- {
			bts := expr.ApplicableBTs(it)
			if len(bts) == 0 {
				break
			}
			it = bts[rnd.Intn(len(bts))].Result
		}
		res.ITCount++
		if err := expr.CheckVisibility(it); err != nil {
			res.AllEqual = false
			res.InvalidTree = it
			res.InvalidErr = err
			return res, nil
		}
		out, err := it.Eval(src)
		if err != nil {
			return nil, fmt.Errorf("core: evaluating %s: %w", it, err)
		}
		if first == nil {
			first, firstTree = out, it
			continue
		}
		if !out.EqualBag(first) {
			res.AllEqual = false
			res.WitnessA, res.WitnessB = firstTree, it
			res.ResultA, res.ResultB = first, out
			return res, nil
		}
	}
	return res, nil
}

// VerifyQuery is Verify on graph(q).
func VerifyQuery(q *expr.Node, src expr.Source) (*VerifyResult, error) {
	g, err := expr.GraphOf(q)
	if err != nil {
		return nil, err
	}
	return Verify(g, src)
}
