package core_test

import (
	"fmt"

	"freejoin/internal/core"
	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
)

// The paper's Theorem 1 as a decision procedure: a join feeding an
// outerjoin (nice graph, strong key predicate) is freely reorderable;
// Example 2's shape is not.
func ExampleFreelyReorderable() {
	eq := func(u, v string) predicate.Predicate {
		return predicate.Eq(relation.A(u, "a"), relation.A(v, "a"))
	}
	good := expr.NewOuter(
		expr.NewJoin(expr.NewLeaf("R"), expr.NewLeaf("S"), eq("R", "S")),
		expr.NewLeaf("T"), eq("S", "T"))
	ok, _ := core.FreelyReorderable(good)
	fmt.Println("(R - S) -> T:", ok)

	bad := expr.NewOuter(expr.NewLeaf("R"),
		expr.NewJoin(expr.NewLeaf("S"), expr.NewLeaf("T"), eq("S", "T")),
		eq("R", "S"))
	ok, reason := core.FreelyReorderable(bad)
	fmt.Println("R -> (S - T):", ok)
	fmt.Println(reason)
	// Output:
	// (R - S) -> T: true
	// R -> (S - T): false
	// NOT provably freely reorderable: graph is not nice (null-supplied node S is incident to a join edge (X -> Y - Z));
}

// Verify evaluates every implementing tree of a query's graph on one
// database — the brute-force oracle behind the theorem tests.
func ExampleVerify() {
	eq := predicate.Eq(relation.A("Dept", "dno"), relation.A("Emp", "dno"))
	q := expr.NewOuter(expr.NewLeaf("Dept"), expr.NewLeaf("Emp"), eq)
	db := expr.DB{
		"Dept": relation.FromRows("Dept", []string{"dno"}, []any{1}, []any{2}),
		"Emp":  relation.FromRows("Emp", []string{"dno"}, []any{1}),
	}
	res, err := core.VerifyQuery(q, db)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("trees: %d, all equal: %v\n", res.ITCount, res.AllEqual)
	// Output:
	// trees: 2, all equal: true
}

// Simplify applies the §4 rule: a restriction that is strong on a
// null-supplied relation converts the outerjoin into a join.
func ExampleSimplify() {
	eq := predicate.Eq(relation.A("R", "a"), relation.A("S", "a"))
	q := expr.NewRestrict(
		expr.NewOuter(expr.NewLeaf("R"), expr.NewLeaf("S"), eq),
		predicate.EqConst(relation.A("S", "a"), relation.Int(1)))
	simplified, n := core.Simplify(q, core.SimplifyOptions{})
	fmt.Println("conversions:", n)
	fmt.Println(simplified)
	// Output:
	// conversions: 1
	// sigma[S.a = 1]((R - S))
}
