package core

import (
	"math/rand"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/predicate"
	"freejoin/internal/relation"
	"freejoin/internal/workload"
)

func foj(l, r string) *expr.Node {
	return expr.NewFullOuter(expr.NewLeaf(l), expr.NewLeaf(r), eqp(l, r))
}

func TestSimplifyFullOuterToLeftOuter(t *testing.T) {
	// σ[R.a = 1](R <-> S): padding of R (from unmatched S tuples) dies.
	q := strongRestrict(foj("R", "S"), "R")
	got, n := Simplify(q, SimplifyOptions{})
	if n != 1 || got.Left.Op != expr.LeftOuter {
		t.Fatalf("want LeftOuter conversion, got %d, %v", n, got)
	}
}

func TestSimplifyFullOuterToRightOuter(t *testing.T) {
	q := strongRestrict(foj("R", "S"), "S")
	got, n := Simplify(q, SimplifyOptions{})
	if n != 1 || got.Left.Op != expr.RightOuter {
		t.Fatalf("want RightOuter conversion, got %d, %v", n, got)
	}
}

func TestSimplifyFullOuterToJoin(t *testing.T) {
	// Strong restrictions on both sides: two fixpoint rounds reach a join.
	q := strongRestrict(strongRestrict(foj("R", "S"), "R"), "S")
	got, n := Simplify(q, SimplifyOptions{})
	if got.Left.Left.Op != expr.Join {
		t.Fatalf("want Join after %d conversions, got %v", n, got)
	}
}

func TestSimplifyFullOuterNoChange(t *testing.T) {
	q := expr.NewRestrict(foj("R", "S"), predicate.NewIsNull(relation.A("R", "a")))
	if _, n := Simplify(q, SimplifyOptions{}); n != 0 {
		t.Fatal("non-strong restriction must not convert a full outerjoin")
	}
}

func TestSimplifyFullOuterRecursesIntoChildren(t *testing.T) {
	// σ[T.a = 1]((R <-> S) -> ... no: put an inner LOJ under a FOJ side.
	// σ[T.a = 1](R <-> (S -> T)): T required converts the FOJ side first?
	// T is in the right subtree of the FOJ, so the FOJ itself becomes a
	// RightOuter; the next round converts the inner S -> T to a join.
	inner := expr.NewOuter(expr.NewLeaf("S"), expr.NewLeaf("T"), eqp("S", "T"))
	q := strongRestrict(expr.NewFullOuter(expr.NewLeaf("R"), inner, eqp("R", "S")), "T")
	got, n := Simplify(q, SimplifyOptions{})
	if n != 2 {
		t.Fatalf("conversions = %d, got %v", n, got)
	}
	if got.Left.Op != expr.RightOuter || got.Left.Right.Op != expr.Join {
		t.Fatalf("shape = %v", got)
	}
}

// TestSimplifyFullOuterPreservesResults: the two-sided conversions never
// change results, on randomized queries and databases.
func TestSimplifyFullOuterPreservesResults(t *testing.T) {
	rnd := rand.New(rand.NewSource(71))
	converted := 0
	for trial := 0; trial < 400; trial++ {
		pxy := workload.RandomPredicate(rnd, "X", "Y")
		pyz := workload.RandomPredicate(rnd, "Y", "Z")
		var q *expr.Node
		switch rnd.Intn(3) {
		case 0:
			q = expr.NewFullOuter(expr.NewLeaf("X"),
				expr.NewFullOuter(expr.NewLeaf("Y"), expr.NewLeaf("Z"), pyz), pxy)
		case 1:
			q = expr.NewFullOuter(
				expr.NewOuter(expr.NewLeaf("X"), expr.NewLeaf("Y"), pxy),
				expr.NewLeaf("Z"), pyz)
		default:
			q = expr.NewOuter(expr.NewLeaf("X"),
				expr.NewFullOuter(expr.NewLeaf("Y"), expr.NewLeaf("Z"), pyz), pxy)
		}
		rel := []string{"X", "Y", "Z"}[rnd.Intn(3)]
		q = expr.NewRestrict(q, predicate.EqConst(relation.A(rel, "a"), relation.Int(int64(rnd.Intn(3)))))
		db := expr.DB{
			"X": workload.RandomRelation(rnd, "X", 5),
			"Y": workload.RandomRelation(rnd, "Y", 5),
			"Z": workload.RandomRelation(rnd, "Z", 5),
		}
		want, err := q.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		simplified, n := Simplify(q, SimplifyOptions{})
		converted += n
		got, err := simplified.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualBag(want) {
			t.Fatalf("trial %d: FOJ simplification changed the result\nq: %s\nsimplified: %s",
				trial, q.StringWithPreds(), simplified.StringWithPreds())
		}
	}
	if converted == 0 {
		t.Error("no conversions exercised")
	}
}

func TestFullOuterHasNoGraph(t *testing.T) {
	if _, err := expr.GraphOf(foj("R", "S")); err == nil {
		t.Fatal("two-sided outerjoin is outside the paper's query graphs")
	}
}
