package core

// Experiment E17: the §6.3 outlook made executable. The paper conjectures
// join/semijoin reorderability has additional forbidden subgraphs —
// "semijoin edges in series" — and fewer preserving transforms. These
// tests validate the IsNiceSemi conditions from both sides: graphs that
// pass have all implementing trees valid and agreeing; each forbidden
// pattern admits an invalid or disagreeing tree.

import (
	"math/rand"
	"testing"

	"freejoin/internal/expr"
	"freejoin/internal/graph"
	"freejoin/internal/workload"
)

// TestSemiExtensionSoundness: random graphs passing IsNiceSemi have every
// implementing tree evaluable and all results equal.
func TestSemiExtensionSoundness(t *testing.T) {
	rnd := rand.New(rand.NewSource(61))
	graphs, trees := 0, 0
	for trial := 0; trial < 120; trial++ {
		g := workload.RandomSemiGraph(rnd, 1+rnd.Intn(3), rnd.Intn(2), 1+rnd.Intn(2))
		if ok, reason := g.IsNiceSemi(); !ok {
			t.Fatalf("generator invariant: %s\n%v", reason, g)
		}
		a := AnalyzeGraph(g)
		if !a.Free || !a.SemiExtension {
			t.Fatalf("analysis should report free via the extension: %+v", a)
		}
		if n, err := expr.CountITs(g, false); err != nil || n > maxVerifyITs {
			continue // keep exhaustive verification cheap
		}
		db := workload.RandomDB(rnd, g, 5)
		res, err := Verify(g, db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.InvalidTree != nil {
			t.Fatalf("trial %d: nice-with-semi graph produced invalid tree %s (%v)\n%v",
				trial, res.InvalidTree, res.InvalidErr, g)
		}
		if !res.AllEqual {
			t.Fatalf("trial %d: EXTENSION VIOLATION\ngraph:\n%v\n%s:\n%v\nvs %s:\n%v",
				trial, g, res.WitnessA, res.ResultA, res.WitnessB, res.ResultB)
		}
		graphs++
		trees += res.ITCount
	}
	if trees < 400 {
		t.Errorf("only %d trees verified", trees)
	}
}

func semiGraph(t *testing.T, build func(g *graph.Graph) error) *graph.Graph {
	t.Helper()
	g := graph.New()
	if err := build(g); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSemiSeriesInvalidTree: semijoin edges in series admit an
// implementing tree whose predicate references consumed attributes — the
// §6.3 forbidden subgraph, witnessed by an invalid tree.
func TestSemiSeriesInvalidTree(t *testing.T) {
	g := semiGraph(t, func(g *graph.Graph) error {
		if err := g.AddSemiEdge("A", "B", eqp("A", "B")); err != nil {
			return err
		}
		return g.AddSemiEdge("B", "C", eqp("B", "C"))
	})
	if ok, _ := g.IsNiceSemi(); ok {
		t.Fatal("series must be rejected by the checker")
	}
	rnd := rand.New(rand.NewSource(62))
	db := workload.RandomDB(rnd, g, 4)
	res, err := Verify(g, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllEqual || res.InvalidTree == nil {
		t.Fatalf("expected an invalid implementing tree, got %+v", res)
	}
	// The invalid tree is (A |x B) |x C (or its reversal): B consumed
	// before the second semijoin needs it.
	if err := expr.CheckVisibility(res.InvalidTree); err == nil {
		t.Error("witness should fail visibility")
	}
}

// TestSemiNullSuppliedSourceDisagrees: X → Y with Y ~> Z admits two valid
// trees with different results — padding survives X → (Y ⋉ Z) but not
// (X → Y) ⋉ Z.
func TestSemiNullSuppliedSourceDisagrees(t *testing.T) {
	g := semiGraph(t, func(g *graph.Graph) error {
		if err := g.AddOuterEdge("X", "Y", eqp("X", "Y")); err != nil {
			return err
		}
		return g.AddSemiEdge("Y", "Z", eqp("Y", "Z"))
	})
	if ok, _ := g.IsNiceSemi(); ok {
		t.Fatal("null-supplied semijoin source must be rejected")
	}
	rnd := rand.New(rand.NewSource(63))
	found := false
	for trial := 0; trial < 500 && !found; trial++ {
		db := workload.RandomDB(rnd, g, 4)
		res, err := Verify(g, db)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllEqual && res.InvalidTree == nil {
			found = true // a genuine semantic disagreement, not invalidity
		}
	}
	if !found {
		t.Error("no semantic counterexample found for the null-supplied semijoin source")
	}
}

// TestSemiConsumedNodeJoinsElsewhere: A ~> B with B — C admits an invalid
// tree ((A ⋉ B) — C needs B's attributes).
func TestSemiConsumedNodeJoinsElsewhere(t *testing.T) {
	g := semiGraph(t, func(g *graph.Graph) error {
		if err := g.AddSemiEdge("A", "B", eqp("A", "B")); err != nil {
			return err
		}
		return g.AddJoinEdge("B", "C", eqp("B", "C"))
	})
	if ok, _ := g.IsNiceSemi(); ok {
		t.Fatal("consumed node with a join edge must be rejected")
	}
	rnd := rand.New(rand.NewSource(64))
	db := workload.RandomDB(rnd, g, 4)
	res, err := Verify(g, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllEqual || res.InvalidTree == nil {
		t.Fatalf("expected an invalid tree, got %+v", res)
	}
}

// TestSemijoinGraphRoundTrip: a semijoin expression's graph regenerates
// trees that include the original.
func TestSemijoinGraphRoundTrip(t *testing.T) {
	q := expr.NewSemi(
		expr.NewJoin(expr.NewLeaf("A"), expr.NewLeaf("B"), eqp("A", "B")),
		expr.NewLeaf("Z"), eqp("A", "Z"))
	g, err := expr.GraphOf(q)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasSemiEdges() {
		t.Fatal("graph must carry the semijoin edge")
	}
	its, err := expr.EnumerateITs(g, true)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, it := range its {
		if it.Equal(q) {
			found = true
		}
		if !expr.Implements(it, g) {
			t.Errorf("IT %s does not implement the graph", it.StringWithPreds())
		}
	}
	if !found {
		t.Errorf("original tree missing from enumeration: %v", its)
	}
	// RightSemi round-trips too.
	rq := &expr.Node{Op: expr.RightSemi, Left: expr.NewLeaf("Z"), Right: expr.NewLeaf("A"), Pred: eqp("A", "Z")}
	rg, err := expr.GraphOf(rq)
	if err != nil {
		t.Fatal(err)
	}
	if rg.Edges()[0].U != "A" || rg.Edges()[0].V != "Z" {
		t.Errorf("RightSemi edge orientation: %v", rg.Edges()[0])
	}
}

// TestVisibility: the static checker on hand-built trees.
func TestVisibility(t *testing.T) {
	// Valid: A |x (B - C)? semijoin consumes (B - C); pred references B —
	// visible inside the right operand at the time of the semijoin.
	ok1 := expr.NewSemi(expr.NewLeaf("A"),
		expr.NewJoin(expr.NewLeaf("B"), expr.NewLeaf("C"), eqp("B", "C")), eqp("A", "B"))
	if err := expr.CheckVisibility(ok1); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	// Invalid: (A |x B) - C on a B-referencing join predicate.
	bad := expr.NewJoin(
		expr.NewSemi(expr.NewLeaf("A"), expr.NewLeaf("B"), eqp("A", "B")),
		expr.NewLeaf("C"), eqp("B", "C"))
	if err := expr.CheckVisibility(bad); err == nil {
		t.Error("invalid tree accepted")
	}
	// Restrict over consumed attributes is invalid too.
	badR := expr.NewRestrict(
		expr.NewSemi(expr.NewLeaf("A"), expr.NewLeaf("B"), eqp("A", "B")),
		eqp("A", "B"))
	if err := expr.CheckVisibility(badR); err == nil {
		t.Error("restrict over consumed attrs accepted")
	}
	// Antijoin consumes its right side as well.
	badAJ := expr.NewJoin(
		expr.NewAnti(expr.NewLeaf("A"), expr.NewLeaf("B"), eqp("A", "B")),
		expr.NewLeaf("C"), eqp("B", "C"))
	if err := expr.CheckVisibility(badAJ); err == nil {
		t.Error("antijoin-consumed attrs accepted")
	}
}
